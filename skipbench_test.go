// Data-skipping benchmark (`make bench-skip`): the clustered query mix with
// zone-map skipping + predicate transfer on vs off, single CPU, regenerating
// BENCH_skip.json. TestSkipSmoke is the CI guard on the same plumbing: it
// asserts the clustered workload actually skips — a refactor that silently
// stops pruning fails the build rather than just losing the speedup.
package smarticeberg_test

import (
	"testing"

	"smarticeberg/internal/bench"
)

// skipBenchRows sizes the clustered table: 25×benchN (50k rows ≈ 49 zone
// blocks at the default) keeps block-level pruning percentages meaningful.
func skipBenchRows() int { return 25 * benchN() }

// BenchmarkSkip runs each skip-mix query with both mechanisms on and off.
// Per-op metrics come from the process-wide skip counters reset around each
// measured loop; only the final calibrated b.N run of each sub-benchmark is
// written to BENCH_skip.json.
func BenchmarkSkip(b *testing.B) {
	tableRows := skipBenchRows()
	cat := bench.NewSkipCatalog(tableRows, 1)
	latest := map[string]bench.SkipBenchRecord{}
	var order []string
	for _, q := range bench.SkipQueries() {
		for _, mode := range []string{"on", "off"} {
			name := q.Name + "/" + mode
			b.Run(name, func(b *testing.B) {
				rec, err := bench.MeasureSkip(cat, q, 1024, 1, b.N, mode == "on")
				if err != nil {
					b.Fatal(err)
				}
				if _, seen := latest[name]; !seen {
					order = append(order, name)
				}
				latest[name] = rec
				b.ReportMetric(rec.RowsPerSec, "rows/s")
				b.ReportMetric(rec.SkippedBlockPct, "skipped-block-%")
				b.ReportMetric(rec.SkippedProbePct, "skipped-probe-%")
			})
		}
	}
	if len(order) > 0 {
		records := make([]bench.SkipBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		fb := bench.MeasureFilterBuild(100000, 10)
		if err := bench.WriteSkipBench("BENCH_skip.json", tableRows, fb, records); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSkipSmoke asserts the skip mechanisms engage on the clustered
// workload: the sorted year column must prune at least half the blocks for
// a year-range query, and the star join must build, transfer, and profit
// from a Bloom filter. Small sizes — this guards wiring, not speed.
func TestSkipSmoke(t *testing.T) {
	cat := bench.NewSkipCatalog(6000, 1)
	qs := bench.SkipQueries()
	byName := map[string]bench.SkipQuery{}
	for _, q := range qs {
		byName[q.Name] = q
	}
	year, err := bench.MeasureSkip(cat, byName["YearSlice"], 1024, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if year.SkippedBlockPct < 50 {
		t.Errorf("YearSlice skipped %.1f%% of blocks (%d/%d), want >= 50%% on the clustered table",
			year.SkippedBlockPct, year.SkippedBlocks, year.TotalBlocks)
	}
	star, err := bench.MeasureSkip(cat, byName["StarTransfer"], 1024, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if star.FiltersBuilt == 0 || star.FiltersTransferred == 0 {
		t.Errorf("StarTransfer built %d / transferred %d filters, want both nonzero",
			star.FiltersBuilt, star.FiltersTransferred)
	}
	if star.SkippedProbes == 0 {
		t.Error("StarTransfer skipped no probe rows — the transferred filter is not filtering")
	}
	// Off must really be off.
	off, err := bench.MeasureSkip(cat, byName["YearSlice"], 1024, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if off.SkippedBlocks != 0 || off.FiltersBuilt != 0 {
		t.Errorf("skipping off still skipped %d blocks / built %d filters",
			off.SkippedBlocks, off.FiltersBuilt)
	}
}
