// Acceptance tests for spill-to-disk execution through the public API: a
// query that cannot fit its memory budget completes byte-identically once
// Options.Spill is on, corruption is detected (never silently wrong), and
// the whole workload stays byte-identical under budget+spill across the row
// and batch pipelines.
package smarticeberg_test

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"smarticeberg"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/spill"
)

// spillSQL aggregates the whole performance table into many small groups —
// the hash table dwarfs every other allocation, so a halved budget can only
// be met by spilling it.
const spillSQL = `
	SELECT playerid, year, COUNT(1), SUM(b_h), MIN(b_hr)
	FROM player_performance
	GROUP BY playerid, year`

func requireEmptyDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill dir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned: %d entries, first %q", len(ents), ents[0].Name())
	}
}

// failingBudget finds a budget the plain (non-spilling) run cannot meet.
func failingBudget(t *testing.T, db *smarticeberg.DB, sql string) int64 {
	t.Helper()
	opts := smarticeberg.AllOptimizations()
	opts.MemoryBudget = 1 << 30
	_, rep, err := db.QueryOpt(sql, opts)
	if err != nil {
		t.Fatalf("measuring run: %v", err)
	}
	if rep.MemoryPeak <= 0 {
		t.Fatalf("measuring run tracked no memory (peak=%d)", rep.MemoryPeak)
	}
	for _, frac := range []int64{2, 3, 4, 6} {
		budget := rep.MemoryPeak / frac
		opts := smarticeberg.AllOptimizations()
		opts.MemoryBudget = budget
		if _, _, err := db.QueryOpt(sql, opts); err != nil {
			if !errors.Is(err, smarticeberg.ErrBudgetExceeded) {
				t.Fatalf("budget=%d: error %v, want ErrBudgetExceeded", budget, err)
			}
			return budget
		}
	}
	t.Fatalf("no fraction of peak %d made the plain run fail; cannot demonstrate spilling", rep.MemoryPeak)
	return 0
}

// TestSpillAcceptance is the headline contract: the exact budget that makes
// the plain run fail with ErrBudgetExceeded completes with Options.Spill —
// byte-identical to the unbudgeted result, reporting the spill rung, and
// leaving the spill directory empty.
func TestSpillAcceptance(t *testing.T) {
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(800, 7)
	want, err := db.Query(spillSQL)
	if err != nil {
		t.Fatal(err)
	}
	budget := failingBudget(t, db, spillSQL)

	opts := smarticeberg.AllOptimizations()
	opts.MemoryBudget = budget
	opts.Spill = true
	opts.SpillDir = t.TempDir()
	got, rep, err := db.QueryOpt(spillSQL, opts)
	if err != nil {
		t.Fatalf("budget=%d with spill: %v", budget, err)
	}
	assertIdenticalResults(t, "spilled aggregation", got, want)
	if !rep.Stats.Degraded() {
		t.Fatalf("spilling run reported no degradation: %+v", rep.Stats)
	}
	found := false
	for _, r := range rep.Stats.Degradations {
		if r == smarticeberg.DegradeSpill {
			found = true
		}
	}
	if !found {
		t.Fatalf("Degradations = %v, want the spill rung", rep.Stats.Degradations)
	}
	requireEmptyDir(t, opts.SpillDir)

	t.Run("explain-analyze", func(t *testing.T) {
		opts.SpillDir = t.TempDir()
		text, _, err := db.ExplainAnalyzeOpts(spillSQL, opts)
		if err != nil {
			t.Fatalf("ExplainAnalyzeOpts: %v", err)
		}
		if !strings.Contains(text, "Degraded: spill") || !strings.Contains(text, "[spilled:") {
			t.Fatalf("analyzed plan does not show the spill annotation:\n%s", text)
		}
		requireEmptyDir(t, opts.SpillDir)
	})
}

// TestSpillCorruptionAcceptance: a corrupted spill frame during the merge is
// never silently wrong — the query either returns the exact unbudgeted rows
// or one typed error wrapping spill.ErrCorrupt — and the spill directory is
// removed either way.
func TestSpillCorruptionAcceptance(t *testing.T) {
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(800, 7)
	want, err := db.Query(spillSQL)
	if err != nil {
		t.Fatal(err)
	}
	budget := failingBudget(t, db, spillSQL)

	defer failpoint.Reset()
	failpoint.Enable(failpoint.SpillCorrupt, failpoint.Once(failpoint.Error(failpoint.ErrInjected)))
	opts := smarticeberg.AllOptimizations()
	opts.MemoryBudget = budget
	opts.Spill = true
	opts.SpillDir = t.TempDir()
	got, _, err := db.QueryOpt(spillSQL, opts)
	failpoint.Reset()
	if err != nil {
		if !errors.Is(err, spill.ErrCorrupt) {
			t.Fatalf("error = %v, want one wrapping spill.ErrCorrupt", err)
		}
	} else {
		assertIdenticalResults(t, "corrupted-then-recovered run", got, want)
	}
	requireEmptyDir(t, opts.SpillDir)
}

// TestSpillEquivalenceSweep runs every workload query, row-mode and batch
// sizes {1, 7, 1024}, under a budget one third of each configuration's
// measured peak with spilling on. Every run must either match its
// unbudgeted twin byte-for-byte or fail with the typed budget error, and
// the sweep as a whole must actually spill somewhere.
func TestSpillEquivalenceSweep(t *testing.T) {
	db := equivDB(t)
	spillActivations := 0
	for _, q := range equivQueries() {
		t.Run(q.Name, func(t *testing.T) {
			for _, size := range []int{0, 1, 7, 1024} {
				label := fmt.Sprintf("batch=%d", size)
				measure := smarticeberg.AllOptimizations()
				measure.BatchSize = size
				measure.MemoryBudget = 1 << 30
				want, rep, err := db.QueryOpt(q.SQL, measure)
				if err != nil {
					t.Fatalf("%s: measuring run: %v", label, err)
				}
				budget := rep.MemoryPeak / 3
				if budget <= 0 {
					continue
				}
				opts := smarticeberg.AllOptimizations()
				opts.BatchSize = size
				opts.MemoryBudget = budget
				opts.Spill = true
				opts.SpillDir = t.TempDir()
				got, rep, err := db.QueryOpt(q.SQL, opts)
				if err != nil {
					if !errors.Is(err, smarticeberg.ErrBudgetExceeded) {
						t.Fatalf("%s: error %v, want ErrBudgetExceeded or success", label, err)
					}
					requireEmptyDir(t, opts.SpillDir)
					continue
				}
				assertIdenticalResults(t, label, got, want)
				for _, r := range rep.Stats.Degradations {
					if r == smarticeberg.DegradeSpill {
						spillActivations++
						break
					}
				}
				requireEmptyDir(t, opts.SpillDir)
			}
		})
	}
	if spillActivations == 0 {
		t.Fatal("no query in the sweep activated spilling — the budget squeeze is ineffective")
	}
}
