package iceberg

import (
	"math/rand"
	"strings"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
)

// listing1SQL is the paper's original market-basket query (Listing 1) —
// note: no item-ordering condition, so 𝕁_L = {bid} alone and memoization by
// static rewrite applies (𝔾_R = {i2.item} ≠ ∅, beyond what NLJP handles).
const listing1SQL = `
	SELECT i1.item, i2.item, COUNT(*)
	FROM Basket i1, Basket i2
	WHERE i1.bid = i2.bid
	GROUP BY i1.item, i2.item
	HAVING COUNT(*) >= 4`

func TestMemoRewriteListing1(t *testing.T) {
	cat := newTestCatalog(t, 2, 80)
	sel, err := sqlparser.ParseSelect(listing1SQL)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, reason, err := RewriteMemo(cat, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten == nil {
		t.Fatalf("rewrite should apply to Listing 1: %s", reason)
	}
	if len(rewritten.With) != 2 {
		t.Fatalf("expected __ljt and __ljr CTEs, got %d", len(rewritten.With))
	}
	base := runBaseline(t, cat, listing1SQL)
	p := engine.NewPlanner(cat)
	op, err := p.PlanSelect(rewritten, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := engine.Run(op)
	if err != nil {
		t.Fatal(err)
	}
	got, want := canonical(rows), canonical(base)
	if len(got) != len(want) {
		t.Fatalf("rewrite returned %d rows, baseline %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestMemoRewriteViaOptions: with only Memo enabled, the basket query of
// Listing 1 must route through the static rewrite (NLJP requires 𝔾_R = ∅)
// and still match the baseline.
func TestMemoRewriteViaOptions(t *testing.T) {
	cat := newTestCatalog(t, 2, 80)
	base := runBaseline(t, cat, listing1SQL)
	res, report := runOpt(t, cat, listing1SQL, Options{Memo: true, UseIndexes: true})
	assertSameRows(t, "listing1 memo", base, res.Rows, report)
	found := false
	for _, n := range report.Blocks[0].Notes {
		if strings.Contains(n, "static rewrite") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the static-rewrite note, got %v", report.Blocks[0].Notes)
	}
}

// TestMemoRewriteSkipsUniqueBindings: adding the item-ordering condition
// puts i1.item into 𝕁_L, making the binding a key of Basket; the rewrite
// must decline.
func TestMemoRewriteSkipsUniqueBindings(t *testing.T) {
	cat := newTestCatalog(t, 2, 80)
	sel, err := sqlparser.ParseSelect(basketSQL)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, reason, err := RewriteMemo(cat, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten != nil {
		t.Fatalf("rewrite should decline when J_L is a key, got a rewrite")
	}
	if !strings.Contains(reason, "key") {
		t.Errorf("reason should mention the key condition: %q", reason)
	}
}

// TestMemoRewriteRandomDifferential fuzzes the static rewrite: whenever it
// applies to a random query, the rewritten SQL must return the baseline
// result on the same instance.
func TestMemoRewriteRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	applied := 0
	iterations := 300
	if testing.Short() {
		iterations = 80
	}
	for iter := 0; iter < iterations; iter++ {
		cat := randomCatalog(rng, rng.Intn(3) > 0, rng.Intn(3) > 0)
		sql := randomIcebergQuery(rng)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		rewritten, _, err := RewriteMemo(cat, sel, nil)
		if err != nil {
			t.Fatalf("iter %d %q: %v", iter, sql, err)
		}
		if rewritten == nil {
			continue
		}
		applied++
		base := runBaseline(t, cat, sql)
		p := engine.NewPlanner(cat)
		op, err := p.PlanSelect(rewritten, nil)
		if err != nil {
			t.Fatalf("iter %d %q: planning rewrite: %v", iter, sql, err)
		}
		rows, err := engine.Run(op)
		if err != nil {
			t.Fatalf("iter %d %q: running rewrite: %v", iter, sql, err)
		}
		got, want := canonical(rows), canonical(base)
		if len(got) != len(want) {
			t.Fatalf("iter %d %q: rewrite %d rows vs baseline %d", iter, sql, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d %q: row %d: %q vs %q", iter, sql, i, want[i], got[i])
			}
		}
	}
	if applied < 10 {
		t.Errorf("rewrite applied to only %d random queries; generator too narrow?", applied)
	}
	t.Logf("static memo rewrite verified on %d random queries", applied)
}
