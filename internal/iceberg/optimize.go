package iceberg

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/fd"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// Options selects which of the paper's techniques the optimizer may apply.
// The zero value disables everything (pure baseline execution).
type Options struct {
	// Apriori enables the generalized a-priori reducers of Section 4.
	Apriori bool
	// Prune enables NLJP cache-based pruning (Section 5).
	Prune bool
	// Memo enables NLJP memoization (Section 6).
	Memo bool
	// CacheIndex builds the pruning-cache index ("CI" in Figure 4).
	CacheIndex bool
	// UseIndexes permits index nested-loop joins in sub-plans ("BT").
	UseIndexes bool
	// BindingOrder controls the order Q_B's bindings are explored in
	// (Section 7 leaves it unspecified and flags it as a lever): "asc" or
	// "desc" sorts bindings by the pruning predicate's range-hint column;
	// "" keeps the plan's natural order.
	BindingOrder string
	// CacheLimit bounds the number of cache entries; the oldest entry is
	// evicted first (the replacement-policy extension of Section 7).
	// Zero means unbounded.
	CacheLimit int
	// Workers sets the NLJP binding-loop parallelism: 0 or 1 runs the
	// sequential loop, w > 1 fans bindings out across w goroutines over a
	// sharded cache, and any negative value selects
	// engine.DefaultWorkers(0) = min(4, GOMAXPROCS). Results are identical
	// for every setting; only cache hit counters may vary.
	Workers int
	// Ctx, when non-nil, carries cancellation and deadlines into the whole
	// execution — planning materializations, the NLJP binding loop, and any
	// fallback plan all observe it mid-stream.
	Ctx context.Context
	// MemBudget caps the query's accounted memory in bytes (0 = unlimited).
	// On pressure the optimizer degrades gracefully: the NLJP cache sheds
	// entries first, then the whole NLJP is abandoned for the baseline
	// plan; only when even the baseline cannot fit does the query fail,
	// with an error wrapping resource.ErrBudgetExceeded.
	MemBudget int64
	// BatchSize > 0 runs every planned query — baseline plans, reducers,
	// memo rewrites, and NLJP's binding-side inner queries — through the
	// engine's vectorized batch pipeline in chunks of that many rows.
	// Results are byte-identical to the row path; 0 keeps row-at-a-time
	// execution.
	BatchSize int
	// Spill lets operators overflow to checksummed disk files instead of
	// failing when MemBudget is exceeded: hash aggregations partition their
	// groups to run files and merge them back (byte-identical results), and
	// the NLJP cache keeps evicted memo entries in an on-disk index. It adds
	// a rung to the degradation ladder between cache-shedding and the
	// baseline fallback. All spill files live in a query-scoped temp
	// directory that is removed when the query ends — on success, error,
	// cancellation, and panic alike.
	Spill bool
	// SpillDir is the parent directory for the query's spill directory;
	// empty means os.TempDir().
	SpillDir string
	// SharedCache, when non-nil together with SharedKey, makes NLJP use a
	// process-wide cache from this service instead of a query-scoped one, so
	// concurrent and consecutive runs of the same query share memo and prune
	// entries. The key must encode everything that determines cache content
	// (query text, table versions, option fingerprint); icebergd computes it.
	// Shared caches charge the service's budget — never MemBudget — and do
	// not use the Spill overflow tier.
	SharedCache *CacheService
	// SharedKey identifies the compatible shared cache; the optimizer
	// appends "#<block>" per query block, since each CTE and the main block
	// run their own NLJP.
	SharedKey string
	// NoSkip disables zone-map block skipping at the scan layer. Skipping is
	// on by default on the batch pipeline, is byte-identical to off, and a
	// fault while building zone maps degrades to an unskipped run (reported
	// as engine.DegradeSkipDisabled).
	NoSkip bool
	// NoTransfer disables sideways predicate transfer (hash joins building
	// Bloom key filters that pre-filter the probe side's scans). On by
	// default on the batch pipeline; never changes results.
	NoTransfer bool
}

// AllOn returns the paper's "all" configuration.
func AllOn() Options {
	return Options{Apriori: true, Prune: true, Memo: true, CacheIndex: true, UseIndexes: true}
}

// Report documents what the optimizer did for one query, including cache
// statistics after execution (Figure 3 plots Stats.Bytes).
type Report struct {
	// Blocks holds one sub-report per query block (CTEs first, outermost
	// block last).
	Blocks []*BlockReport
	// MemoryPeak is the high-water mark of accounted memory in bytes. Only
	// tracked when Options.MemBudget set a budget; 0 otherwise.
	MemoryPeak int64
	// Degradations lists the rungs of the degradation ladder the query
	// descended, in ladder order (cache-shed → spill → baseline-fallback).
	// Empty when the query ran entirely on the fast path.
	Degradations []engine.DegradeReason
	// Spill snapshots the spill manager's IO counters; zero when
	// Options.Spill was off or never engaged.
	Spill spill.Stats
	// Attempts and FinalDegrade record server-side fault recovery: how many
	// execution attempts the query took (1 = no retries) and which
	// degradation-ladder rung the successful attempt ran on ("" = full
	// power). Filled in by the server's retry loop, not by Exec.
	Attempts     int
	FinalDegrade string
}

// BlockReport covers one SELECT block.
type BlockReport struct {
	Name     string // "main" or the CTE name
	Reducers []string
	// ReducerSizes maps a reduced alias to {before, after} row counts.
	ReducerSizes map[string][2]int
	NLJP         string // Describe() output; empty when NLJP was not used
	Stats        CacheStats
	Notes        []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	for _, blk := range r.Blocks {
		fmt.Fprintf(&b, "block %s:\n", blk.Name)
		for _, red := range blk.Reducers {
			fmt.Fprintf(&b, "  a-priori: %s\n", red)
		}
		for alias, sz := range blk.ReducerSizes {
			fmt.Fprintf(&b, "  reduced %s: %d -> %d rows\n", alias, sz[0], sz[1])
		}
		if blk.NLJP != "" {
			b.WriteString(indent(blk.NLJP, "  "))
		}
		for _, note := range blk.Notes {
			fmt.Fprintf(&b, "  note: %s\n", note)
		}
		if blk.Stats.Bindings > 0 {
			fmt.Fprintf(&b, "  cache: %d entries, ~%d bytes; %d bindings, %d memo hits, %d prune hits, %d inner evals\n",
				blk.Stats.Entries, blk.Stats.Bytes, blk.Stats.Bindings,
				blk.Stats.MemoHits, blk.Stats.PruneHits, blk.Stats.InnerEvals)
		}
	}
	if r.Spill.Files > 0 {
		fmt.Fprintf(&b, "spill: %d files, %d frames out (%d bytes), %d frames in, %d overflow puts, %d overflow gets, %d corruptions\n",
			r.Spill.Files, r.Spill.FramesOut, r.Spill.BytesOut, r.Spill.FramesIn,
			r.Spill.OverflowPuts, r.Spill.OverflowGets, r.Spill.Corruptions)
	}
	if len(r.Degradations) > 0 {
		fmt.Fprintf(&b, "degraded: %s\n", strings.Join(engine.DegradeReasonStrings(r.Degradations), ", "))
	}
	if r.Attempts > 1 {
		fmt.Fprintf(&b, "recovered: attempt %d, rung %q\n", r.Attempts, r.FinalDegrade)
	}
	return b.String()
}

// TotalStats sums the cache statistics across blocks.
func (r *Report) TotalStats() CacheStats {
	var t CacheStats
	for _, blk := range r.Blocks {
		t.Entries += blk.Stats.Entries
		t.Bytes += blk.Stats.Bytes
		t.Bindings += blk.Stats.Bindings
		t.MemoHits += blk.Stats.MemoHits
		t.PruneHits += blk.Stats.PruneHits
		t.InnerEvals += blk.Stats.InnerEvals
		t.PruneProbes += blk.Stats.PruneProbes
		t.Degraded = t.Degraded || blk.Stats.Degraded
		t.BudgetEvictions += blk.Stats.BudgetEvictions
		t.SpilledEntries += blk.Stats.SpilledEntries
		t.SpillHits += blk.Stats.SpillHits
		t.SpillCorruptions += blk.Stats.SpillCorruptions
	}
	return t
}

// Exec runs a SELECT with the chosen optimizations, processing WITH blocks
// recursively (each CTE is itself optimized, materialized, and exposed to
// enclosing blocks with derived constraint metadata).
func Exec(cat *storage.Catalog, sel *sqlparser.Select, opts Options) (res *engine.Result, report *Report, err error) {
	report = &Report{}
	// One execution context per query: a single deadline and one budget pool
	// shared by every block, materialization, and fallback.
	ec := engine.NewExecContext(opts.Ctx, resource.NewBudget(opts.MemBudget))
	if opts.Spill {
		mgr, merr := spill.NewManager(opts.SpillDir)
		if merr != nil {
			return nil, report, merr
		}
		ec.SetSpill(mgr)
		// The deferred cleanup runs on success, error, and panic alike:
		// no spill file outlives its query. A cleanup failure surfaces only
		// when the query itself succeeded (leaking temp files silently would
		// hide a real problem; masking the query's own error would hide a
		// bigger one).
		defer func() {
			report.Spill = mgr.Stats()
			report.Degradations = ec.Degradations()
			if cerr := cleanupSpill(mgr); cerr != nil && err == nil {
				res, err = nil, cerr
			}
		}()
	}
	res, err = exec(cat, sel, engine.Env{}, opts, report, "main", ec)
	report.MemoryPeak = ec.Budget().Peak()
	report.Degradations = ec.Degradations()
	return res, report, err
}

// cleanupSpill removes the query's spill directory, containing a panic from
// the removal path (fault injection can arm it) as a typed error so the
// caller's stack never unwinds out of a deferred cleanup.
func cleanupSpill(mgr *spill.Manager) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = engine.NewPanicError("spill cleanup", r)
		}
	}()
	return mgr.Cleanup()
}

func exec(cat *storage.Catalog, sel *sqlparser.Select, env engine.Env, opts Options, report *Report, name string, ec *engine.ExecContext) (*engine.Result, error) {
	for _, cte := range sel.With {
		res, err := exec(cat, cte.Query, env, opts, report, cte.Name, ec)
		if err != nil {
			return nil, fmt.Errorf("CTE %s: %w", cte.Name, err)
		}
		rel := &engine.MaterializedRel{Name: cte.Name, Rows: res.Rows}
		rel.Schema = make(value.Schema, len(res.Columns))
		for i, c := range res.Columns {
			rel.Schema[i] = value.Column{Name: c.Name, Type: c.Type}
		}
		rel.FDs, rel.Positive = deriveResultConstraints(cte.Query, rel.Schema, cat, env)
		rel.Unique = len(rel.FDs.All()) > 0 || cte.Query.Distinct
		env2 := engine.Env{}
		for k, v := range env {
			env2[k] = v
		}
		env2[strings.ToLower(cte.Name)] = rel
		env = env2
	}
	body := *sel
	body.With = nil

	// Lift derived tables into materialized relations so the block becomes
	// analyzable (each subquery is itself optimized recursively).
	if hasDerived(body.From) {
		lifted := make([]sqlparser.TableExpr, len(body.From))
		env2 := engine.Env{}
		for k, v := range env {
			env2[k] = v
		}
		for i, te := range body.From {
			sub, ok := te.(*sqlparser.SubqueryRef)
			if !ok {
				lifted[i] = te
				continue
			}
			liftName := "__dt_" + strings.ToLower(sub.Alias)
			res, err := exec(cat, sub.Query, env, opts, report, liftName, ec)
			if err != nil {
				return nil, fmt.Errorf("derived table %s: %w", sub.Alias, err)
			}
			rel := &engine.MaterializedRel{Name: liftName, Rows: res.Rows}
			rel.Schema = make(value.Schema, len(res.Columns))
			for j, c := range res.Columns {
				rel.Schema[j] = value.Column{Name: c.Name, Type: c.Type}
			}
			rel.FDs, rel.Positive = deriveResultConstraints(sub.Query, rel.Schema, cat, env)
			rel.Unique = len(rel.FDs.All()) > 0 || sub.Query.Distinct
			env2[liftName] = rel
			lifted[i] = &sqlparser.TableRef{Name: liftName, Alias: sub.Alias}
		}
		body.From = lifted
		env = env2
	}

	blk := &BlockReport{Name: name, ReducerSizes: map[string][2]int{}}
	report.Blocks = append(report.Blocks, blk)

	baseline := func(overrides map[string]*engine.MaterializedRel) (*engine.Result, error) {
		p := &engine.Planner{Catalog: cat, UseIndexes: opts.UseIndexes, AliasOverrides: overrides, Exec: ec, BatchSize: opts.BatchSize, Workers: opts.Workers, NoZoneSkip: opts.NoSkip, NoTransfer: opts.NoTransfer}
		op, err := p.PlanSelect(&body, env)
		if err != nil {
			return nil, err
		}
		rows, err := engine.RunExecBatch(ec, op, opts.BatchSize)
		if err != nil {
			return nil, err
		}
		return &engine.Result{Columns: op.Schema(), Rows: rows}, nil
	}

	b, err := analyzeBlock(cat, &body, env)
	if err != nil {
		blk.Notes = append(blk.Notes, "not optimizable: "+err.Error())
		return baseline(nil)
	}

	planner := &engine.Planner{Catalog: cat, UseIndexes: opts.UseIndexes, Exec: ec, BatchSize: opts.BatchSize, Workers: opts.Workers, NoZoneSkip: opts.NoSkip, NoTransfer: opts.NoTransfer}
	overrides := map[string]*engine.MaterializedRel{}
	if opts.Apriori {
		for _, red := range findReducers(b) {
			rel, sizes, err := applyReducer(b, red, planner)
			if err != nil {
				return nil, fmt.Errorf("applying reducer: %w", err)
			}
			blk.Reducers = append(blk.Reducers, red.String())
			blk.ReducerSizes[red.TargetAlias] = sizes
			overrides[strings.ToLower(red.TargetAlias)] = rel
		}
	}

	if opts.Prune || opts.Memo {
		// Each block gets its own shared-cache identity: CTE and main-block
		// NLJPs cache different bindings under the same query key.
		if opts.SharedKey != "" {
			opts.SharedKey += "#" + name
		}
		nljp, err := buildNLJP(b, overrides, opts, ec)
		if err != nil {
			if errors.Is(err, resource.ErrBudgetExceeded) {
				// Degradation ladder, next rung after shed/spill: the NLJP
				// working set does not fit, so abandon the technique and run
				// the baseline plan on the same (now released) budget.
				blk.Notes = append(blk.Notes, "NLJP abandoned ("+err.Error()+"); falling back to baseline plan")
				ec.Degrade(engine.DegradeBaseline)
				return baseline(overrides)
			}
			return nil, fmt.Errorf("building NLJP: %w", err)
		}
		if nljp != nil {
			res, err := nljp.Run()
			blk.NLJP = nljp.Describe()
			blk.Stats = nljp.Stats()
			if blk.Stats.Degraded {
				blk.Notes = append(blk.Notes, fmt.Sprintf(
					"cache degraded under memory budget (%d budget evictions)", blk.Stats.BudgetEvictions))
			}
			nljp.releaseInner()
			if err != nil {
				if errors.Is(err, resource.ErrBudgetExceeded) {
					blk.Notes = append(blk.Notes, "NLJP abandoned mid-run ("+err.Error()+"); falling back to baseline plan")
					ec.Degrade(engine.DegradeBaseline)
					return baseline(overrides)
				}
				return nil, fmt.Errorf("running NLJP: %w", err)
			}
			return res, nil
		}
		blk.Notes = append(blk.Notes, "NLJP not applicable")
	}
	if opts.Memo {
		// Fall back to memoization by static rewrite (Appendix C,
		// Listing 8), which also covers 𝔾_R ≠ ∅.
		rewritten, reason, err := RewriteMemo(cat, &body, env)
		if err != nil {
			return nil, err
		}
		if rewritten != nil {
			blk.Notes = append(blk.Notes, "memoization applied by static rewrite (Listing 8)")
			p := &engine.Planner{Catalog: cat, UseIndexes: opts.UseIndexes, AliasOverrides: overrides, Exec: ec, BatchSize: opts.BatchSize, Workers: opts.Workers, NoZoneSkip: opts.NoSkip, NoTransfer: opts.NoTransfer}
			op, err := p.PlanSelect(rewritten, env)
			if err != nil {
				return nil, fmt.Errorf("planning memo rewrite: %w", err)
			}
			rows, err := engine.RunExecBatch(ec, op, opts.BatchSize)
			if err != nil {
				if errors.Is(err, resource.ErrBudgetExceeded) {
					blk.Notes = append(blk.Notes, "memo rewrite abandoned ("+err.Error()+"); falling back to baseline plan")
					ec.Degrade(engine.DegradeBaseline)
					return baseline(overrides)
				}
				return nil, fmt.Errorf("running memo rewrite: %w", err)
			}
			return &engine.Result{Columns: op.Schema(), Rows: rows}, nil
		}
		if reason != "" {
			blk.Notes = append(blk.Notes, "memo rewrite not applicable: "+reason)
		}
	}
	return baseline(overrides)
}

func hasDerived(from []sqlparser.TableExpr) bool {
	for _, te := range from {
		if _, ok := te.(*sqlparser.SubqueryRef); ok {
			return true
		}
	}
	return false
}

// Describe analyzes a query and reports the rewrites the optimizer would
// perform. It does not execute reducers or the NLJP outer loop, but
// constructing the NLJP description does materialize the inner relation
// (the sub-join the inner query runs against).
func Describe(cat *storage.Catalog, sel *sqlparser.Select, opts Options) (string, error) {
	var b strings.Builder
	env := engine.Env{}
	if err := describeInto(cat, sel, env, opts, &b, "main"); err != nil {
		return "", err
	}
	return b.String(), nil
}

func describeInto(cat *storage.Catalog, sel *sqlparser.Select, env engine.Env, opts Options, out *strings.Builder, name string) error {
	for _, cte := range sel.With {
		if err := describeInto(cat, cte.Query, env, opts, out, cte.Name); err != nil {
			return err
		}
		// Expose schema-only metadata for enclosing analysis.
		rel := &engine.MaterializedRel{Name: cte.Name}
		rel.Schema = schemaOfSelect(cte.Query, cat, env)
		rel.FDs, rel.Positive = deriveResultConstraints(cte.Query, rel.Schema, cat, env)
		rel.Unique = len(rel.FDs.All()) > 0 || cte.Query.Distinct
		env[strings.ToLower(cte.Name)] = rel
	}
	body := *sel
	body.With = nil
	fmt.Fprintf(out, "block %s:\n", name)
	b, err := analyzeBlock(cat, &body, env)
	if err != nil {
		fmt.Fprintf(out, "  baseline (not optimizable: %v)\n", err)
		return nil
	}
	found := false
	if opts.Apriori {
		for _, red := range findReducers(b) {
			fmt.Fprintf(out, "  a-priori: %s\n", red.String())
			found = true
		}
	}
	if opts.Prune || opts.Memo {
		nljp, err := buildNLJP(b, nil, opts, nil)
		if err == nil && nljp != nil {
			out.WriteString(indent(nljp.Describe(), "  "))
			found = true
		}
	}
	if !found {
		fmt.Fprintf(out, "  baseline execution (no applicable technique)\n")
	}
	return nil
}

// schemaOfSelect computes the bare output schema of a SELECT without
// evaluating it (best-effort; used only by Describe).
func schemaOfSelect(sel *sqlparser.Select, cat *storage.Catalog, env engine.Env) value.Schema {
	p := &engine.Planner{Catalog: cat, UseIndexes: true}
	op, err := p.PlanSelect(sel, env)
	if err != nil {
		return nil
	}
	out := make(value.Schema, len(op.Schema()))
	for i, c := range op.Schema() {
		out[i] = value.Column{Name: c.Name, Type: c.Type}
	}
	return out
}

// deriveResultConstraints infers constraint metadata for a SELECT's result:
//   - when the query groups by column references that are all projected, the
//     projected grouping columns functionally determine the whole output;
//   - output columns that are plain references to positive-domain columns,
//     or SUM/AVG/MIN/MAX over them, remain positive; COUNT(*) of a group is
//     at least 1 and therefore positive as well.
func deriveResultConstraints(sel *sqlparser.Select, outSchema value.Schema, cat *storage.Catalog, env engine.Env) (*fd.Set, map[string]bool) {
	fds := fd.NewSet()
	positive := map[string]bool{}
	if outSchema == nil {
		return fds, positive
	}

	// Map each output column to its source expression.
	exprs := make([]sqlparser.Expr, len(outSchema))
	for i, it := range sel.Items {
		if i >= len(outSchema) || it.Star {
			return fds, positive
		}
		exprs[i] = it.Expr
	}

	// Positivity oracle over base tables / env rels in this block.
	isPositiveCol := func(ref *sqlparser.ColRef) bool {
		for _, te := range sel.From {
			tr, ok := te.(*sqlparser.TableRef)
			if !ok {
				continue
			}
			if ref.Qualifier != "" && !strings.EqualFold(tr.AliasName(), ref.Qualifier) {
				continue
			}
			if rel, ok := env[strings.ToLower(tr.Name)]; ok {
				if rel.Positive[strings.ToLower(ref.Name)] {
					return true
				}
				continue
			}
			if t, err := cat.Get(tr.Name); err == nil && t.Positive[strings.ToLower(ref.Name)] {
				return true
			}
		}
		return false
	}

	for i, e := range exprs {
		switch e := e.(type) {
		case *sqlparser.ColRef:
			if isPositiveCol(e) {
				positive[strings.ToLower(outSchema[i].Name)] = true
			}
		case *sqlparser.FuncCall:
			switch e.Name {
			case "COUNT":
				// Groups are non-empty, so COUNT(*) >= 1 > 0.
				if e.Star && len(sel.GroupBy) > 0 {
					positive[strings.ToLower(outSchema[i].Name)] = true
				}
			case "SUM", "AVG", "MIN", "MAX":
				if len(e.Args) == 1 {
					if ref, ok := e.Args[0].(*sqlparser.ColRef); ok && isPositiveCol(ref) {
						positive[strings.ToLower(outSchema[i].Name)] = true
					}
				}
			}
		}
	}

	if len(sel.GroupBy) == 0 {
		return fds, positive
	}
	// Find the output positions of the grouping expressions.
	var keyCols []string
	for _, g := range sel.GroupBy {
		found := ""
		for i, e := range exprs {
			if e != nil && e.String() == g.String() {
				found = strings.ToLower(outSchema[i].Name)
				break
			}
			// Also match an unqualified group-by against a qualified output
			// reference (or vice versa) by bare column name.
			if gr, ok := g.(*sqlparser.ColRef); ok {
				if er, ok2 := e.(*sqlparser.ColRef); ok2 && strings.EqualFold(gr.Name, er.Name) &&
					(gr.Qualifier == "" || er.Qualifier == "" || strings.EqualFold(gr.Qualifier, er.Qualifier)) {
					found = strings.ToLower(outSchema[i].Name)
					break
				}
			}
		}
		if found == "" {
			return fds, positive // a grouping column is not projected
		}
		keyCols = append(keyCols, found)
	}
	all := make([]string, len(outSchema))
	for i, c := range outSchema {
		all[i] = strings.ToLower(c.Name)
	}
	fds.Add(fd.FD{From: keyCols, To: all})
	return fds, positive
}
