package iceberg

import (
	"smarticeberg/internal/expr"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// compileExprForTest compiles a scalar expression for tests.
func compileExprForTest(e sqlparser.Expr, schema value.Schema) (expr.Compiled, error) {
	return expr.Compile(e, schema, nil)
}
