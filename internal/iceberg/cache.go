package iceberg

import (
	"sort"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/value"
)

// CacheStats reports what the NLJP cache did during execution; Figure 3 of
// the paper plots Entries/Bytes, and the ablations use the hit counters.
type CacheStats struct {
	Entries     int
	Bytes       int64 // estimated resident size of the cache
	Bindings    int64 // outer tuples processed
	MemoHits    int64
	PruneHits   int64
	InnerEvals  int64 // inner-query evaluations actually performed
	PruneProbes int64 // cache entries examined by pruning checks
}

// cacheEntry is one cached binding: the 𝕁_L values, the algebraic partials
// of every aggregate of Φ and Λ over R⋉w, the joined-tuple count, and the
// unpromising flag of Definition 5.
type cacheEntry struct {
	binding     []value.Value
	partials    []expr.Partial
	rowCount    int64
	unpromising bool
}

func (e *cacheEntry) sizeBytes() int64 {
	n := int64(48) // struct + slice headers
	for _, v := range e.binding {
		n += 24 + int64(len(v.S))
	}
	n += int64(len(e.partials)) * 56
	return n
}

// cache is the NLJP operator's binding cache (Section 7): a hash map for
// memoization lookups plus a prune list of unpromising entries, optionally
// indexed (the "CI" configuration of Figure 4) by the equality/range hints
// extracted from the pruning predicate. A nonzero limit bounds the entry
// count with first-in-first-out eviction; eviction only loses optimization
// opportunities, never correctness.
type cache struct {
	memo  map[string]*cacheEntry
	stats CacheStats

	pred    *PrunePredicate
	indexed bool
	// With CI: partition by the equality-hint columns, each partition kept
	// sorted ascending by the range-hint column.
	parts map[string]*[]*cacheEntry
	// Without CI (or no hints): a flat list.
	flat []*cacheEntry

	limit int
	fifo  []string // insertion order of binding keys, for eviction
}

func newCache(pred *PrunePredicate, indexed bool, limit int) *cache {
	c := &cache{memo: map[string]*cacheEntry{}, pred: pred, indexed: indexed && pred != nil, limit: limit}
	if c.indexed {
		c.parts = map[string]*[]*cacheEntry{}
	}
	return c
}

// lookup returns the memoized entry for a binding key.
func (c *cache) lookup(key string) (*cacheEntry, bool) {
	e, ok := c.memo[key]
	return e, ok
}

// insert stores a new entry under its binding key and registers unpromising
// entries with the prune structure, evicting the oldest entry when a cache
// limit is configured.
func (c *cache) insert(key string, e *cacheEntry) {
	if c.limit > 0 {
		for len(c.memo) >= c.limit && len(c.fifo) > 0 {
			oldest := c.fifo[0]
			c.fifo = c.fifo[1:]
			if victim, ok := c.memo[oldest]; ok {
				delete(c.memo, oldest)
				c.stats.Bytes -= victim.sizeBytes()
				c.stats.Entries--
				c.removeFromPrune(victim)
			}
		}
		c.fifo = append(c.fifo, key)
	}
	c.memo[key] = e
	c.stats.Entries++
	c.stats.Bytes += e.sizeBytes()
	if c.pred == nil || !e.unpromising {
		return
	}
	if !c.indexed {
		c.flat = append(c.flat, e)
		return
	}
	pk := c.partKey(e.binding)
	lst, ok := c.parts[pk]
	if !ok {
		lst = &[]*cacheEntry{}
		c.parts[pk] = lst
	}
	if c.pred.RangeIdx < 0 {
		*lst = append(*lst, e)
		return
	}
	// Insert keeping ascending order on the range column.
	ri := c.pred.RangeIdx
	i := sort.Search(len(*lst), func(i int) bool {
		cmp, _ := value.Compare((*lst)[i].binding[ri], e.binding[ri])
		return cmp >= 0
	})
	*lst = append(*lst, nil)
	copy((*lst)[i+1:], (*lst)[i:])
	(*lst)[i] = e
}

// removeFromPrune unlinks an evicted entry from the prune structures.
func (c *cache) removeFromPrune(victim *cacheEntry) {
	if c.pred == nil || !victim.unpromising {
		return
	}
	if !c.indexed {
		for i, e := range c.flat {
			if e == victim {
				c.flat = append(c.flat[:i], c.flat[i+1:]...)
				return
			}
		}
		return
	}
	lst, ok := c.parts[c.partKey(victim.binding)]
	if !ok {
		return
	}
	for i, e := range *lst {
		if e == victim {
			*lst = append((*lst)[:i], (*lst)[i+1:]...)
			return
		}
	}
}

func (c *cache) partKey(binding []value.Value) string {
	if len(c.pred.EqIdx) == 0 {
		return ""
	}
	vals := make([]value.Value, len(c.pred.EqIdx))
	for i, j := range c.pred.EqIdx {
		vals[i] = binding[j]
	}
	return value.Key(vals)
}

// pruneMatch implements prune(ℓ, C): is some cached unpromising binding
// subsumption-related to cand so that cand cannot contribute?
func (c *cache) pruneMatch(cand []value.Value) bool {
	if c.pred == nil {
		return false
	}
	if !c.indexed {
		for _, e := range c.flat {
			c.stats.PruneProbes++
			if c.pred.Check(cand, e.binding) {
				return true
			}
		}
		return false
	}
	lst, ok := c.parts[c.partKey(cand)]
	if !ok {
		return false
	}
	entries := *lst
	ri := c.pred.RangeIdx
	if ri < 0 {
		for _, e := range entries {
			c.stats.PruneProbes++
			if c.pred.Check(cand, e.binding) {
				return true
			}
		}
		return false
	}
	if c.pred.RangeCachedGE {
		// Only entries with cached[ri] >= cand[ri] can match: scan the
		// ascending list from the top down and stop at the bound.
		for i := len(entries) - 1; i >= 0; i-- {
			cmp, _ := value.Compare(entries[i].binding[ri], cand[ri])
			if cmp < 0 {
				break
			}
			c.stats.PruneProbes++
			if c.pred.Check(cand, entries[i].binding) {
				return true
			}
		}
		return false
	}
	for _, e := range entries {
		cmp, _ := value.Compare(e.binding[ri], cand[ri])
		if cmp > 0 {
			break
		}
		c.stats.PruneProbes++
		if c.pred.Check(cand, e.binding) {
			return true
		}
	}
	return false
}
