package iceberg

import (
	"sort"
	"sync"
	"sync/atomic"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/value"
)

// CacheStats reports what the NLJP cache did during execution; Figure 3 of
// the paper plots Entries/Bytes, and the ablations use the hit counters.
type CacheStats struct {
	Entries     int
	Bytes       int64 // estimated resident size of the cache
	Bindings    int64 // outer tuples processed
	MemoHits    int64
	PruneHits   int64
	InnerEvals  int64 // inner-query evaluations actually performed
	PruneProbes int64 // cache entries examined by pruning checks

	// Degraded reports that the run hit its memory budget and shed cache
	// entries (or stopped caching) to stay inside it; results are still
	// exact, only the optimization opportunities shrank.
	Degraded bool
	// BudgetEvictions counts entries evicted specifically by budget
	// pressure, as opposed to the configured CacheLimit.
	BudgetEvictions int64

	// SpilledEntries counts evicted entries preserved in the on-disk
	// overflow tier instead of dropped; SpillHits counts memo hits served
	// from it. SpillCorruptions counts overflow entries that failed their
	// checksum (each was dropped and its binding recomputed from source).
	SpilledEntries   int64
	SpillHits        int64
	SpillCorruptions int64
}

// since returns the portion of s accrued after base was snapshotted — how a
// run against a shared cache reports its own counters. Entries and Bytes are
// resident gauges, not counters, and stay absolute; Degraded is sticky (a
// shared cache degraded under pressure is degraded for this run too).
func (s CacheStats) since(base CacheStats) CacheStats {
	s.Bindings -= base.Bindings
	s.MemoHits -= base.MemoHits
	s.PruneHits -= base.PruneHits
	s.InnerEvals -= base.InnerEvals
	s.PruneProbes -= base.PruneProbes
	s.BudgetEvictions -= base.BudgetEvictions
	s.SpilledEntries -= base.SpilledEntries
	s.SpillHits -= base.SpillHits
	s.SpillCorruptions -= base.SpillCorruptions
	return s
}

// statsCounters is the concurrent form of CacheStats: lock-free counters the
// worker goroutines update (batched per chunk where possible) that are
// aggregated into a plain CacheStats snapshot when the run closes.
type statsCounters struct {
	entries     atomic.Int64
	bytes       atomic.Int64
	bindings    atomic.Int64
	memoHits    atomic.Int64
	pruneHits   atomic.Int64
	innerEvals  atomic.Int64
	pruneProbes atomic.Int64
}

func (s *statsCounters) snapshot() CacheStats {
	return CacheStats{
		Entries:     int(s.entries.Load()),
		Bytes:       s.bytes.Load(),
		Bindings:    s.bindings.Load(),
		MemoHits:    s.memoHits.Load(),
		PruneHits:   s.pruneHits.Load(),
		InnerEvals:  s.innerEvals.Load(),
		PruneProbes: s.pruneProbes.Load(),
	}
}

// addLocal folds a worker's locally batched per-binding counters in. The
// per-binding counters (Bindings, MemoHits, PruneHits, InnerEvals) are the
// hottest, so workers accumulate them in plain ints per chunk and flush once
// here rather than contending on the atomics per binding.
func (s *statsCounters) addLocal(l *localStats) {
	s.bindings.Add(l.bindings)
	s.memoHits.Add(l.memoHits)
	s.pruneHits.Add(l.pruneHits)
	s.innerEvals.Add(l.innerEvals)
	*l = localStats{}
}

// localStats is one worker's per-chunk batch of binding-loop counters.
type localStats struct {
	bindings   int64
	memoHits   int64
	pruneHits  int64
	innerEvals int64
}

// cacheEntry is one cached binding: the 𝕁_L values, the algebraic partials
// of every aggregate of Φ and Λ over R⋉w, the joined-tuple count, and the
// unpromising flag of Definition 5. Entries are immutable after insertion,
// which is what lets prune scans read them without locks.
type cacheEntry struct {
	binding     []value.Value
	partials    []expr.Partial
	rowCount    int64
	unpromising bool

	// node links the entry into its shard's flat prune list (nil when the
	// entry is promising or the cache is indexed), giving O(1) unlink on
	// eviction instead of the old O(n) slice scan.
	node *pruneNode
}

func (e *cacheEntry) sizeBytes() int64 {
	n := int64(48) // struct + slice headers
	for _, v := range e.binding {
		n += 24 + int64(len(v.S))
	}
	n += int64(len(e.partials)) * 56
	return n
}

// pruneNode is one element of a shard's flat prune list: an intrusive
// singly-linked list whose next pointers are atomic so prune scans can
// traverse it lock-free while writers (insert, eviction) mutate it under the
// shard mutex. prev is only touched by writers.
type pruneNode struct {
	e    *cacheEntry
	next atomic.Pointer[pruneNode]
	prev *pruneNode
}

// prunePart is one equality-hint partition of the indexed ("CI") prune
// structure: a copy-on-write slice, sorted ascending by the range-hint
// column when one exists. Readers load the published slice atomically and
// scan it without locks; writers copy under the part mutex and republish.
type prunePart struct {
	mu      sync.Mutex
	entries atomic.Pointer[[]*cacheEntry]
}

func (p *prunePart) load() []*cacheEntry {
	if s := p.entries.Load(); s != nil {
		return *s
	}
	return nil
}

// cacheShard is one hash shard of the memoization map, with its own lock,
// FIFO eviction ring, and flat prune list. Sharding by binding-key hash
// keeps concurrent workers off each other's locks; a missed memo or prune
// hit due to an entry published on another core a moment too late costs
// only a recomputation, never correctness.
type cacheShard struct {
	mu        sync.RWMutex
	memo      map[string]*cacheEntry
	fifo      keyRing
	pruneHead atomic.Pointer[pruneNode]
}

// cache is the NLJP operator's binding cache (Section 7): a sharded hash
// map for memoization lookups plus prune structures of unpromising entries,
// optionally indexed (the "CI" configuration of Figure 4) by the
// equality/range hints extracted from the pruning predicate. A nonzero
// limit bounds the entry count with per-shard first-in-first-out eviction;
// eviction only loses optimization opportunities, never correctness. With a
// single shard (the sequential binding loop) eviction is exact global FIFO;
// with several shards each holds ceil(limit/shards) entries, so the bound
// is honored per shard and approximately overall.
type cache struct {
	stats statsCounters

	pred    *PrunePredicate
	indexed bool

	shards    []cacheShard
	shardMask uint32

	// With CI: partition by the equality-hint columns, each partition kept
	// sorted ascending by the range-hint column.
	partsMu sync.RWMutex
	parts   map[string]*prunePart

	// limitPerShard is atomic because budget pressure tightens it mid-run
	// (graceful degradation) while workers read it on every insert.
	limitPerShard atomic.Int64

	// budget, when non-nil, bounds the cache's resident bytes; inserts that
	// do not fit evict oldest-first and, as a last resort, skip caching.
	budget          *resource.Budget
	degraded        atomic.Bool
	budgetEvictions atomic.Int64

	// mgr, when non-nil, enables the overflow tier (cache_spill.go):
	// evicted entries go to an on-disk index instead of being dropped. The
	// index is created lazily on first eviction; overflowOff latches the
	// tier off after any write failure. encBuf is guarded by overflowMu.
	mgr              *spill.Manager
	overflowMu       sync.Mutex
	overflow         *spill.Index
	overflowOff      atomic.Bool
	overflowBytes    atomic.Int64
	encBuf           []byte
	spilledEntries   atomic.Int64
	spillHits        atomic.Int64
	spillCorruptions atomic.Int64
}

// newCache sizes the cache for the given worker count: one shard for the
// sequential loop (preserving exact FIFO semantics), and a power-of-two
// multiple of the worker count otherwise.
func newCache(pred *PrunePredicate, indexed bool, limit, workers int, budget *resource.Budget, mgr *spill.Manager) *cache {
	shardCount := 1
	if workers > 1 {
		for shardCount < workers*4 {
			shardCount <<= 1
		}
		if shardCount > 64 {
			shardCount = 64
		}
	}
	c := &cache{
		pred:      pred,
		indexed:   indexed && pred != nil,
		shards:    make([]cacheShard, shardCount),
		shardMask: uint32(shardCount - 1),
		budget:    budget,
		mgr:       mgr,
	}
	for i := range c.shards {
		c.shards[i].memo = map[string]*cacheEntry{}
	}
	if limit > 0 {
		c.limitPerShard.Store(int64((limit + shardCount - 1) / shardCount))
	}
	if c.indexed {
		c.parts = map[string]*prunePart{}
	}
	return c
}

// snapshot folds the degradation state into the counter snapshot.
func (c *cache) snapshot() CacheStats {
	s := c.stats.snapshot()
	s.Degraded = c.degraded.Load()
	s.BudgetEvictions = c.budgetEvictions.Load()
	s.SpilledEntries = c.spilledEntries.Load()
	s.SpillHits = c.spillHits.Load()
	s.SpillCorruptions = c.spillCorruptions.Load()
	return s
}

// trackFIFO reports whether inserts must maintain the eviction ring: either
// an entry limit is configured or budget pressure may demand evictions.
func (c *cache) trackFIFO() bool {
	return c.limitPerShard.Load() > 0 || c.budget != nil
}

// shardFor hashes a binding key (FNV-1a) to its shard.
func (c *cache) shardFor(key []byte) *cacheShard {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &c.shards[h&c.shardMask]
}

// lookup returns the memoized entry for a binding key. The []byte key is
// compared via the allocation-free string conversion. The error is only ever
// an injected fault (the failpoint models a corrupted or unavailable cache
// tier).
func (c *cache) lookup(key []byte) (*cacheEntry, bool, error) {
	if err := failpoint.Inject(failpoint.CacheLookup); err != nil {
		return nil, false, err
	}
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.memo[string(key)]
	sh.mu.RUnlock()
	if !ok {
		if oe, ohit := c.lookupOverflow(key); ohit {
			return oe, true, nil
		}
	}
	return e, ok, nil
}

// insert stores a new entry under its binding key and registers unpromising
// entries with the prune structure, evicting the shard's oldest entry when
// a cache limit is configured. Concurrent workers may race to insert the
// same key; the first insertion wins and later ones are dropped (the
// entries are semantically identical, so dropping one only discards a
// duplicate allocation).
func (c *cache) insert(key []byte, e *cacheEntry) error {
	if err := failpoint.Inject(failpoint.CacheInsert); err != nil {
		return err
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.memo[string(key)]; dup {
		return nil
	}
	if limit := c.limitPerShard.Load(); limit > 0 {
		for int64(len(sh.memo)) >= limit {
			if !c.evictOldest(sh) {
				break
			}
		}
	}
	if c.budget != nil {
		// Graceful degradation: shed the shard's oldest entries until the
		// new one fits; an insert that cannot fit even into an empty shard
		// is skipped entirely. Either way the run continues — only the cache
		// hit rate suffers, never correctness.
		for c.budget.Reserve("NLJP cache", e.sizeBytes()) != nil {
			if !c.evictOldest(sh) {
				c.markDegraded(sh)
				return nil
			}
			c.budgetEvictions.Add(1)
			c.markDegraded(sh)
		}
	}
	if c.trackFIFO() {
		sh.fifo.push(string(key))
	}
	sh.memo[string(key)] = e
	c.stats.entries.Add(1)
	c.stats.bytes.Add(e.sizeBytes())
	if c.pred != nil && e.unpromising {
		if c.indexed {
			c.insertIndexed(e)
		} else {
			n := &pruneNode{e: e}
			e.node = n
			if head := sh.pruneHead.Load(); head != nil {
				n.next.Store(head)
				head.prev = n
			}
			sh.pruneHead.Store(n)
		}
	}
	return nil
}

// evictOldest removes the shard's oldest resident entry, returning false
// when nothing is left to evict. Called with the shard lock held.
func (c *cache) evictOldest(sh *cacheShard) bool {
	for {
		oldest, ok := sh.fifo.pop()
		if !ok {
			return false
		}
		victim, ok := sh.memo[oldest]
		if !ok {
			continue // key already displaced by a newer entry
		}
		delete(sh.memo, oldest)
		c.stats.bytes.Add(-victim.sizeBytes())
		c.stats.entries.Add(-1)
		if c.budget != nil {
			c.budget.Release(victim.sizeBytes())
		}
		c.removeFromPrune(sh, victim)
		c.spillVictim(oldest, victim)
		return true
	}
}

// markDegraded records budget pressure and, on first pressure, tightens the
// per-shard entry limit to the shard's current occupancy so later inserts
// recycle space instead of repeatedly colliding with the budget.
func (c *cache) markDegraded(sh *cacheShard) {
	if c.degraded.CompareAndSwap(false, true) {
		c.limitPerShard.Store(int64(maxInt(1, len(sh.memo))))
	}
}

// releaseBudget returns the cache's resident bytes to the budget at end of
// run; entries die with the cache.
func (c *cache) releaseBudget() {
	if c.budget != nil {
		c.budget.Release(c.stats.bytes.Load())
	}
}

// insertIndexed registers an unpromising entry with its CI partition,
// keeping the partition's copy-on-write slice sorted on the range column.
func (c *cache) insertIndexed(e *cacheEntry) {
	pk := c.partKey(e.binding)
	c.partsMu.RLock()
	part := c.parts[pk]
	c.partsMu.RUnlock()
	if part == nil {
		c.partsMu.Lock()
		part = c.parts[pk]
		if part == nil {
			part = &prunePart{}
			c.parts[pk] = part
		}
		c.partsMu.Unlock()
	}
	part.mu.Lock()
	old := part.load()
	i := len(old)
	if ri := c.pred.RangeIdx; ri >= 0 {
		i = sort.Search(len(old), func(i int) bool {
			cmp, _ := value.Compare(old[i].binding[ri], e.binding[ri])
			return cmp >= 0
		})
	}
	next := make([]*cacheEntry, len(old)+1)
	copy(next, old[:i])
	next[i] = e
	copy(next[i+1:], old[i:])
	part.entries.Store(&next)
	part.mu.Unlock()
}

// removeFromPrune unlinks an evicted entry from the prune structures, called
// with the entry's shard lock held. An evicted entry never survives in the
// prune index: the flat list unlinks its node in O(1), and the CI partition
// republishes its slice without the victim.
func (c *cache) removeFromPrune(sh *cacheShard, victim *cacheEntry) {
	if c.pred == nil || !victim.unpromising {
		return
	}
	if !c.indexed {
		n := victim.node
		if n == nil {
			return
		}
		nxt := n.next.Load()
		if n.prev == nil {
			sh.pruneHead.Store(nxt)
		} else {
			n.prev.next.Store(nxt)
		}
		if nxt != nil {
			nxt.prev = n.prev
		}
		victim.node = nil
		return
	}
	c.partsMu.RLock()
	part := c.parts[c.partKey(victim.binding)]
	c.partsMu.RUnlock()
	if part == nil {
		return
	}
	part.mu.Lock()
	old := part.load()
	for i, e := range old {
		if e == victim {
			next := make([]*cacheEntry, 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			part.entries.Store(&next)
			break
		}
	}
	part.mu.Unlock()
}

func (c *cache) partKey(binding []value.Value) string {
	if len(c.pred.EqIdx) == 0 {
		return ""
	}
	vals := make([]value.Value, len(c.pred.EqIdx))
	for i, j := range c.pred.EqIdx {
		vals[i] = binding[j]
	}
	return value.Key(vals)
}

// pruneMatch implements prune(ℓ, C): is some cached unpromising binding
// subsumption-related to cand so that cand cannot contribute? Reads are
// lock-free against the published prune entries; an entry published
// concurrently with the scan may be missed, which costs one inner
// evaluation and nothing else.
func (c *cache) pruneMatch(cand []value.Value) bool {
	if c.pred == nil {
		return false
	}
	if !c.indexed {
		var probes int64
		for i := range c.shards {
			for n := c.shards[i].pruneHead.Load(); n != nil; n = n.next.Load() {
				probes++
				if c.pred.Check(cand, n.e.binding) {
					c.stats.pruneProbes.Add(probes)
					return true
				}
			}
		}
		c.stats.pruneProbes.Add(probes)
		return false
	}
	c.partsMu.RLock()
	part := c.parts[c.partKey(cand)]
	c.partsMu.RUnlock()
	if part == nil {
		return false
	}
	entries := part.load()
	ri := c.pred.RangeIdx
	var probes int64
	defer func() { c.stats.pruneProbes.Add(probes) }()
	if ri < 0 {
		for _, e := range entries {
			probes++
			if c.pred.Check(cand, e.binding) {
				return true
			}
		}
		return false
	}
	if c.pred.RangeCachedGE {
		// Only entries with cached[ri] >= cand[ri] can match: scan the
		// ascending list from the top down and stop at the bound.
		for i := len(entries) - 1; i >= 0; i-- {
			cmp, _ := value.Compare(entries[i].binding[ri], cand[ri])
			if cmp < 0 {
				break
			}
			probes++
			if c.pred.Check(cand, entries[i].binding) {
				return true
			}
		}
		return false
	}
	for _, e := range entries {
		cmp, _ := value.Compare(e.binding[ri], cand[ri])
		if cmp > 0 {
			break
		}
		probes++
		if c.pred.Check(cand, e.binding) {
			return true
		}
	}
	return false
}

// pruneResident collects every entry currently registered with the prune
// structures. It exists for invariant checks (tests assert that eviction
// never leaves a prune entry behind) and takes the write locks, so it must
// not be called from the hot path.
func (c *cache) pruneResident() []*cacheEntry {
	var out []*cacheEntry
	if !c.indexed {
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			for n := sh.pruneHead.Load(); n != nil; n = n.next.Load() {
				out = append(out, n.e)
			}
			sh.mu.Unlock()
		}
		return out
	}
	c.partsMu.RLock()
	for _, part := range c.parts {
		part.mu.Lock()
		out = append(out, part.load()...)
		part.mu.Unlock()
	}
	c.partsMu.RUnlock()
	return out
}

// memoHas reports whether a binding key is resident, for tests.
func (c *cache) memoHas(key string) bool {
	_, ok, _ := c.lookup([]byte(key))
	return ok
}

// keyRing is a growable ring buffer of binding keys recording insertion
// order for FIFO eviction. The previous implementation re-sliced a plain
// []string (c.fifo = c.fifo[1:]), which pins the backing array and copies
// on append growth forever; the ring reuses its slots.
type keyRing struct {
	buf  []string
	head int // index of the oldest element
	n    int // number of live elements
}

func (r *keyRing) push(k string) {
	if r.n == len(r.buf) {
		grown := make([]string, maxInt(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = k
	r.n++
}

func (r *keyRing) pop() (string, bool) {
	if r.n == 0 {
		return "", false
	}
	k := r.buf[r.head]
	r.buf[r.head] = "" // release the string for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return k, true
}

func (r *keyRing) len() int { return r.n }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
