package iceberg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/testleak"
)

var errBoom = errors.New("boom: injected by test")

func execOpt(cat *storage.Catalog, sql string, opts Options) (*engine.Result, *Report, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		panic(err)
	}
	return Exec(cat, sel, opts)
}

// TestIcebergFaultMatrix injects one fault at every NLJP failpoint, for the
// sequential and the parallel binding loop, and asserts the optimizer
// surfaces exactly one typed error — never a crash, never a deadlock.
func TestIcebergFaultMatrix(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	points := []string{failpoint.CacheInsert, failpoint.CacheLookup, failpoint.NLJPBinding}
	for _, pt := range points {
		for _, mode := range []string{"error", "panic"} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", pt, mode, workers), func(t *testing.T) {
					testleak.Check(t)
					defer failpoint.Reset()
					if mode == "error" {
						failpoint.Enable(pt, failpoint.Once(failpoint.Error(errBoom)))
					} else {
						failpoint.Enable(pt, failpoint.Once(failpoint.Panic("matrix")))
					}
					opts := AllOn()
					opts.Workers = workers
					_, _, err := execOpt(cat, skybandSQL, opts)
					if err == nil {
						t.Fatal("optimized query succeeded, want injected failure")
					}
					if hits := failpoint.Hits(pt); hits == 0 {
						t.Fatalf("%s: never fired — the site is not reachable", pt)
					}
					if mode == "error" {
						if !errors.Is(err, errBoom) {
							t.Fatalf("error = %v, want the injected errBoom", err)
						}
					} else {
						var pe *engine.PanicError
						if !errors.As(err, &pe) {
							t.Fatalf("error = %v (%T), want *engine.PanicError", err, err)
						}
					}
				})
			}
		}
	}
}

// TestBudgetFallbackDeterministic: a single injected budget failure inside
// the cache makes the optimizer abandon NLJP mid-run and re-run the baseline
// plan — transparently, with identical rows and an explanatory note.
func TestBudgetFallbackDeterministic(t *testing.T) {
	testleak.Check(t)
	cat := newTestCatalog(t, 13, 200)
	base := runBaseline(t, cat, skybandSQL)

	defer failpoint.Reset()
	failpoint.Enable(failpoint.CacheInsert, failpoint.Once(failpoint.Error(
		&resource.BudgetError{Site: "injected", Requested: 1, Used: 1, Limit: 1})))
	res, report, err := execOpt(cat, skybandSQL, AllOn())
	if err != nil {
		t.Fatalf("budget fault must degrade, not fail: %v\nreport:\n%s", err, report.String())
	}
	assertSameRows(t, "skyband after budget fallback", base, res.Rows, report)
	if !strings.Contains(report.String(), "falling back to baseline plan") {
		t.Fatalf("report does not mention the fallback:\n%s", report.String())
	}
}

// TestMemoryBudgetDegradation squeezes the real memory budget just below the
// measured peak of the paper's Figure-1-style queries. The ladder contract:
// any budget either yields exactly the unbudgeted rows (possibly with a
// degraded cache or via baseline fallback) or a typed budget error — and the
// levels just under the peak must demonstrably degrade rather than fail.
func TestMemoryBudgetDegradation(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	// Only skyband must demonstrate degradation: pairs peaks inside its CTE
	// (before the NLJP cache exists), so tight budgets correctly land on the
	// typed-error rung instead. Its sweep still checks the ladder contract.
	requireDegraded := map[string]bool{"skyband": true, "pairs": false}
	for qname, sql := range map[string]string{"skyband": skybandSQL, "pairs": pairsSQL} {
		t.Run(qname, func(t *testing.T) {
			testleak.Check(t)
			base := runBaseline(t, cat, sql)
			// Measure the working set with a budget that can never fail.
			opts := AllOn()
			opts.MemBudget = 1 << 30
			res, report, err := execOpt(cat, sql, opts)
			if err != nil {
				t.Fatalf("measuring run: %v", err)
			}
			assertSameRows(t, qname+" measuring run", base, res.Rows, report)
			peak := report.MemoryPeak
			cacheBytes := report.TotalStats().Bytes
			if peak <= 0 || cacheBytes <= 0 {
				t.Fatalf("measuring run tracked no usage: peak=%d cache=%d", peak, cacheBytes)
			}

			degradedSomewhere := false
			// From exactly-enough down past the degradation window into
			// must-fail territory.
			for _, budget := range []int64{peak, peak - cacheBytes/4, peak - cacheBytes/2, peak - cacheBytes, peak / 2, 1 << 11} {
				if budget <= 0 {
					continue
				}
				opts := AllOn()
				opts.MemBudget = budget
				res, report, err := execOpt(cat, sql, opts)
				if err != nil {
					if !errors.Is(err, resource.ErrBudgetExceeded) {
						t.Fatalf("budget=%d: error %v, want a typed budget error or success", budget, err)
					}
					continue
				}
				assertSameRows(t, fmt.Sprintf("%s budget=%d", qname, budget), base, res.Rows, report)
				if report.TotalStats().Degraded ||
					strings.Contains(report.String(), "falling back to baseline plan") {
					degradedSomewhere = true
				}
			}
			if requireDegraded[qname] && !degradedSomewhere {
				t.Fatalf("%s: no budget level triggered degradation (peak=%d, cache=%d)", qname, peak, cacheBytes)
			}
		})
	}
}

// TestOptimizerCancellation: Options.Ctx reaches every phase — a cancelled
// context stops the optimized query with the typed context error.
func TestOptimizerCancellation(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	t.Run("cancelled", func(t *testing.T) {
		testleak.Check(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := AllOn()
		opts.Ctx = ctx
		_, _, err := execOpt(cat, skybandSQL, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
	})
	t.Run("mid-binding-loop", func(t *testing.T) {
		testleak.Check(t)
		defer failpoint.Reset()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Let a few bindings through, then cancel: the loop's tick checks
		// must stop the run.
		var seen int
		failpoint.Enable(failpoint.NLJPBinding, func(string) error {
			if seen++; seen == 3 {
				cancel()
			}
			return nil
		})
		opts := AllOn()
		opts.Ctx = ctx
		_, _, err := execOpt(cat, skybandSQL, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
	})
}
