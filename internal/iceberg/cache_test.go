package iceberg

import (
	"fmt"
	"math/rand"
	"testing"

	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// TestKeyRingFIFO: the eviction ring yields keys in insertion order across
// growth and wraparound.
func TestKeyRingFIFO(t *testing.T) {
	var r keyRing
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
	// Interleave pushes and pops so head wraps around the backing array.
	next, expect := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.push(fmt.Sprintf("k%04d", next))
			next++
		}
	}
	popCheck := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			k, ok := r.pop()
			if !ok {
				t.Fatalf("ring empty, expected k%04d", expect)
			}
			if want := fmt.Sprintf("k%04d", expect); k != want {
				t.Fatalf("pop = %s, want %s", k, want)
			}
			expect++
		}
	}
	push(3)
	popCheck(2)
	push(10) // forces growth with head != 0
	popCheck(8)
	push(5)
	popCheck(8)
	if r.len() != 0 {
		t.Fatalf("ring not drained: %d left", r.len())
	}
}

func intEntry(i int, unpromising bool) *cacheEntry {
	return &cacheEntry{binding: []value.Value{value.NewInt(int64(i))}, rowCount: 1, unpromising: unpromising}
}

// TestCacheEvictionFIFOOrder: with one shard (the sequential configuration)
// a bounded cache evicts in exact global insertion order.
func TestCacheEvictionFIFOOrder(t *testing.T) {
	c := newCache(nil, false, 3, 1, nil, nil)
	for i := 0; i < 6; i++ {
		e := intEntry(i, false)
		_ = c.insert([]byte(value.Key(e.binding)), e)
	}
	for i := 0; i < 6; i++ {
		key := value.Key([]value.Value{value.NewInt(int64(i))})
		resident := c.memoHas(key)
		if want := i >= 3; resident != want {
			t.Errorf("entry %d resident=%v, want %v", i, resident, want)
		}
	}
	st := c.stats.snapshot()
	if st.Entries != 3 {
		t.Errorf("Entries = %d, want 3", st.Entries)
	}
	if st.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", st.Bytes)
	}
}

// TestCacheEvictionPruneConsistency: eviction must never leave an evicted
// entry registered with the prune structures — in flat mode (per-shard
// linked lists) and in indexed mode (partitioned copy-on-write slices),
// sequential and sharded alike.
func TestCacheEvictionPruneConsistency(t *testing.T) {
	pred := &PrunePredicate{RangeIdx: -1}
	predRange := &PrunePredicate{RangeIdx: 0, RangeCachedGE: true}
	for _, tc := range []struct {
		name    string
		pred    *PrunePredicate
		indexed bool
		workers int
	}{
		{"flat-seq", pred, false, 1},
		{"flat-sharded", pred, false, 4},
		{"indexed-seq", predRange, true, 1},
		{"indexed-sharded", predRange, true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newCache(tc.pred, tc.indexed, 4, tc.workers, nil, nil)
			rng := rand.New(rand.NewSource(42))
			order := rng.Perm(40)
			for step, i := range order {
				e := intEntry(i, i%2 == 0)
				_ = c.insert([]byte(value.Key(e.binding)), e)
				for _, pe := range c.pruneResident() {
					if !pe.unpromising {
						t.Fatalf("step %d: promising entry in prune structure", step)
					}
					if !c.memoHas(value.Key(pe.binding)) {
						t.Fatalf("step %d: prune entry %v evicted from memo but still prune-resident", step, pe.binding)
					}
				}
			}
			// The per-shard limit bounds residency: exactly `limit` for one
			// shard, at most limit rounded up per shard otherwise.
			st := c.stats.snapshot()
			bound := 4
			if tc.workers > 1 {
				bound = len(c.shards) * int(c.limitPerShard.Load())
			}
			if st.Entries > bound {
				t.Errorf("Entries = %d, want <= %d", st.Entries, bound)
			}
			if tc.workers == 1 && st.Entries != 4 {
				t.Errorf("sequential Entries = %d, want exactly 4", st.Entries)
			}
		})
	}
}

// TestCacheIndexedPartsStaySorted: the copy-on-write partitions keep their
// range-column order through interleaved inserts and evictions, which the
// early-exit scans of pruneMatch rely on.
func TestCacheIndexedPartsStaySorted(t *testing.T) {
	pred := &PrunePredicate{EqIdx: []int{1}, RangeIdx: 0, RangeCachedGE: true}
	c := newCache(pred, true, 6, 1, nil, nil)
	rng := rand.New(rand.NewSource(7))
	for _, i := range rng.Perm(30) {
		e := &cacheEntry{
			binding:     []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 3))},
			rowCount:    1,
			unpromising: true,
		}
		_ = c.insert([]byte(value.Key(e.binding)), e)
		c.partsMu.RLock()
		for pk, part := range c.parts {
			entries := part.load()
			for j := 1; j < len(entries); j++ {
				cmp, _ := value.Compare(entries[j-1].binding[0], entries[j].binding[0])
				if cmp > 0 {
					t.Fatalf("part %q out of order at %d: %v > %v", pk, j, entries[j-1].binding[0], entries[j].binding[0])
				}
			}
		}
		c.partsMu.RUnlock()
	}
}

// TestCacheLimitParallelCorrectness: a tiny cache under a parallel binding
// loop still yields exact results (eviction and relaxed sharing only lose
// optimization opportunities).
func TestCacheLimitParallelCorrectness(t *testing.T) {
	testleak.Check(t)
	cat := newTestCatalog(t, 13, 200)
	for qname, sql := range map[string]string{"skyband": skybandSQL, "pairs": pairsSQL} {
		base := runBaseline(t, cat, sql)
		opts := AllOn()
		opts.CacheLimit = 8
		opts.Workers = 4
		res, report := runOpt(t, cat, sql, opts)
		assertSameRows(t, qname+" limit=8 workers=4", base, res.Rows, report)
	}
}
