package iceberg

import (
	"testing"

	"smarticeberg/internal/sqlparser"
)

// TestDerivedRowBound pins which HAVING conditions yield an exact row-level
// WHERE bound and what the bound is. Only a single extreme-value atom
// qualifies: MAX with a lower threshold, MIN with an upper one; any
// conjunction, COUNT/SUM atom, or wrong direction must derive nothing
// (filtering rows there would change what the other aggregate sees).
func TestDerivedRowBound(t *testing.T) {
	cases := []struct {
		having string
		want   string // rendered bound, "" = none
	}{
		{"MAX(t.a) >= 5", "(t.a >= 5)"},
		{"MAX(t.a) > 5", "(t.a > 5)"},
		{"MIN(t.a) <= 5", "(t.a <= 5)"},
		{"MIN(t.a) < 5", "(t.a < 5)"},
		{"5 <= MAX(t.a)", "(t.a >= 5)"}, // literal on the left, flipped
		{"7.5 > MIN(t.a)", "(t.a < 7.5)"},
		// Wrong directions: MAX upper / MIN lower bounds say nothing about
		// individual rows.
		{"MAX(t.a) <= 5", ""},
		{"MIN(t.a) >= 5", ""},
		// Other aggregates never bound a single row.
		{"COUNT(*) >= 5", ""},
		{"SUM(t.a) >= 5", ""},
		// Conjunctions are excluded even when one atom would qualify.
		{"MAX(t.a) >= 5 AND COUNT(*) >= 2", ""},
		// Computed argument: no plain column to bound.
		{"MAX(t.a + t.b) >= 5", ""},
	}
	for _, tc := range cases {
		sel, err := sqlparser.ParseSelect("SELECT t.g FROM t GROUP BY t.g HAVING " + tc.having)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.having, err)
		}
		bound := derivedRowBound(sel.Having)
		got := ""
		if bound != nil {
			got = bound.String()
		}
		if got != tc.want {
			t.Errorf("derivedRowBound(%q) = %q, want %q", tc.having, got, tc.want)
		}
	}
	if derivedRowBound(nil) != nil {
		t.Error("derivedRowBound(nil) != nil")
	}
}
