package iceberg

import (
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
)

// Monotonicity classifies a HAVING condition per Definition 1 of the paper.
type Monotonicity int

// Classification outcomes.
const (
	Neither Monotonicity = iota
	// Monotone: Φ(T) ⇒ Φ(T') for all T ⊆ T'.
	Monotone
	// AntiMonotone: Φ(T) ⇒ Φ(T') for all T ⊇ T'.
	AntiMonotone
)

// String names the classification.
func (m Monotonicity) String() string {
	switch m {
	case Monotone:
		return "monotone"
	case AntiMonotone:
		return "anti-monotone"
	}
	return "neither"
}

// ClassifyHaving determines the monotonicity of a HAVING condition. The
// condition may be a conjunction of atoms of the form `aggregate cmp
// constant` (either orientation); the conjunction inherits a class only if
// every atom agrees.
//
// The table implemented here follows from Definition 1 (note the paper's
// printed Table 2 swaps the MIN directions; by the definition, MIN(A) <= c
// is monotone — adding tuples can only lower a minimum — and MIN(A) >= c is
// anti-monotone):
//
//	monotone:      COUNT >= c, SUM(A) >= c (A > 0), MAX(A) >= c, MIN(A) <= c
//	anti-monotone: COUNT <= c, SUM(A) <= c (A > 0), MAX(A) <= c, MIN(A) >= c
//
// positive reports whether a column's domain is strictly positive, needed
// for the SUM rows.
func ClassifyHaving(having sqlparser.Expr, positive func(*sqlparser.ColRef) bool) Monotonicity {
	if having == nil {
		return Neither
	}
	conjuncts := engine.SplitConjuncts(having)
	result := Monotonicity(-1)
	for _, c := range conjuncts {
		m := classifyAtom(c, positive)
		if m == Neither {
			return Neither
		}
		if result == -1 {
			result = m
		} else if result != m {
			return Neither
		}
	}
	if result == -1 {
		return Neither
	}
	return result
}

func classifyAtom(c sqlparser.Expr, positive func(*sqlparser.ColRef) bool) Monotonicity {
	bin, ok := c.(*sqlparser.BinOp)
	if !ok {
		return Neither
	}
	agg, cmp := normalizeHavingAtom(bin)
	if agg == nil {
		return Neither
	}
	switch cmp {
	case sqlparser.OpGe, sqlparser.OpGt:
		cmp = sqlparser.OpGe
	case sqlparser.OpLe, sqlparser.OpLt:
		cmp = sqlparser.OpLe
	default:
		return Neither
	}
	argPositive := func() bool {
		if len(agg.Args) != 1 {
			return false
		}
		ref, ok := agg.Args[0].(*sqlparser.ColRef)
		return ok && positive != nil && positive(ref)
	}
	switch strings.ToUpper(agg.Name) {
	case "COUNT":
		if cmp == sqlparser.OpGe {
			return Monotone
		}
		return AntiMonotone
	case "SUM":
		if !argPositive() {
			return Neither
		}
		if cmp == sqlparser.OpGe {
			return Monotone
		}
		return AntiMonotone
	case "MAX":
		if cmp == sqlparser.OpGe {
			return Monotone
		}
		return AntiMonotone
	case "MIN":
		if cmp == sqlparser.OpLe {
			return Monotone
		}
		return AntiMonotone
	}
	return Neither
}

// normalizeHavingAtom extracts (aggregate, cmp) from `agg cmp lit` or
// `lit cmp agg` (flipping the comparison in the latter case). It returns a
// nil aggregate when the atom does not match.
func normalizeHavingAtom(bin *sqlparser.BinOp) (*sqlparser.FuncCall, string) {
	l, lok := bin.L.(*sqlparser.FuncCall)
	r, rok := bin.R.(*sqlparser.FuncCall)
	switch {
	case lok && engine.IsAggregateCall(l) && isNumericLit(bin.R):
		return l, bin.Op
	case rok && engine.IsAggregateCall(r) && isNumericLit(bin.L):
		return r, flipCmp(bin.Op)
	}
	return nil, ""
}

func isNumericLit(e sqlparser.Expr) bool {
	lit, ok := e.(*sqlparser.Lit)
	return ok && lit.Val.K.Numeric()
}

func flipCmp(op string) string {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op
}

// derivedRowBound derives a row-level predicate implied by a single-atom
// HAVING condition, suitable for pushing into a reducer's WHERE clause —
// and from there, through the planner, down to the scan where zone maps
// can skip whole blocks against it:
//
//	MAX(col) >= c  ⇒  WHERE col >= c   (monotone)
//	MAX(col) >  c  ⇒  WHERE col >  c
//	MIN(col) <= c  ⇒  WHERE col <= c   (monotone)
//	MIN(col) <  c  ⇒  WHERE col <  c
//
// The rewrite is exact, not merely sound: a group satisfies MAX(col) >= c
// iff it contains at least one row with col >= c, the witnessing extreme
// row always passes the bound, and MAX over the surviving rows equals the
// original MAX (rows below the bound cannot be the maximum; NULL rows are
// ignored by MAX and fail the bound in the same groups either way). So
// the reducer's key set is unchanged. The restriction to a single atom is
// essential: under a conjunction such as MAX(x) >= 5 AND COUNT(*) >= 2
// the bound would remove rows that the COUNT atom still needs to see.
//
// It returns nil when no bound applies.
func derivedRowBound(phi sqlparser.Expr) sqlparser.Expr {
	if phi == nil {
		return nil
	}
	conjuncts := engine.SplitConjuncts(phi)
	if len(conjuncts) != 1 {
		return nil
	}
	bin, ok := conjuncts[0].(*sqlparser.BinOp)
	if !ok {
		return nil
	}
	agg, cmp := normalizeHavingAtom(bin)
	if agg == nil || len(agg.Args) != 1 {
		return nil
	}
	ref, ok := agg.Args[0].(*sqlparser.ColRef)
	if !ok {
		return nil
	}
	var lit *sqlparser.Lit
	if l, ok := bin.R.(*sqlparser.Lit); ok {
		lit = l
	} else if l, ok := bin.L.(*sqlparser.Lit); ok {
		lit = l
	}
	if lit == nil {
		return nil
	}
	switch strings.ToUpper(agg.Name) {
	case "MAX":
		if cmp == sqlparser.OpGe || cmp == sqlparser.OpGt {
			return &sqlparser.BinOp{Op: cmp, L: ref, R: lit}
		}
	case "MIN":
		if cmp == sqlparser.OpLe || cmp == sqlparser.OpLt {
			return &sqlparser.BinOp{Op: cmp, L: ref, R: lit}
		}
	}
	return nil
}

// positiveFunc builds the positivity oracle for a block from its items'
// declared positive-domain columns.
func (b *block) positiveFunc() func(*sqlparser.ColRef) bool {
	return func(c *sqlparser.ColRef) bool {
		for _, it := range b.items {
			if it.positive[colAttr(c)] {
				return true
			}
		}
		return false
	}
}

// havingApplicableTo reports whether Φ references only attributes of the
// alias set (star is always fine), possibly after remapping through
// equivalence classes; it returns the remapped condition.
func (b *block) havingApplicableTo(set map[string]bool) (sqlparser.Expr, bool) {
	if b.having == nil {
		return nil, false
	}
	return b.remapExprInto(b.having, set)
}

// isTrivialReducer detects the case where an a-priori reducer cannot remove
// anything: the grouping attributes form a superkey of the sub-block (every
// group has exactly one tuple) and Φ is an anti-monotone COUNT threshold
// that a singleton group always satisfies. This is why the paper states
// a-priori "does not apply" to the skyband queries Q1–Q3 and Q8.
func isTrivialReducer(phi sqlparser.Expr, groupIsKey bool) bool {
	if !groupIsKey {
		return false
	}
	for _, c := range engine.SplitConjuncts(phi) {
		bin, ok := c.(*sqlparser.BinOp)
		if !ok {
			return false
		}
		agg, cmp := normalizeHavingAtom(bin)
		if agg == nil || strings.ToUpper(agg.Name) != "COUNT" {
			return false
		}
		lit := constOf(bin)
		switch cmp {
		case sqlparser.OpLe, sqlparser.OpLt:
			// COUNT <= c with c >= 1 keeps every singleton group.
			if lit < 1 {
				return false
			}
		case sqlparser.OpGe:
			if lit > 1 {
				return false
			}
		case sqlparser.OpGt:
			if lit > 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func constOf(bin *sqlparser.BinOp) float64 {
	if lit, ok := bin.R.(*sqlparser.Lit); ok && lit.Val.K.Numeric() {
		return lit.Val.AsFloat()
	}
	if lit, ok := bin.L.(*sqlparser.Lit); ok && lit.Val.K.Numeric() {
		return lit.Val.AsFloat()
	}
	return 0
}
