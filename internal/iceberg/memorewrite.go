package iceberg

import (
	"fmt"
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// RewriteMemo applies memoization through static query rewriting — the
// Listing 8 transformation of Appendix C. Unlike the NLJP-based
// memoization, it does not require 𝔾_R = ∅: the inner-query results are
// cached per (𝕁_L, 𝔾_R) group inside a derived table.
//
// The rewritten query has the shape
//
//	WITH __ljt AS (SELECT DISTINCT 𝕁_L FROM L),
//	     __ljr AS (SELECT 𝕁_L, 𝔾_R, fⁱ(E)... FROM __ljt, R WHERE Θ
//	               GROUP BY 𝕁_L, 𝔾_R [HAVING Φ when 𝔾_L→𝔸_L])
//	SELECT 𝔾_L, 𝔾_R, Λ over f°(...)
//	FROM L, __ljr WHERE 𝕁_L = __ljr.𝕁_L
//	[GROUP BY 𝔾_L, 𝔾_R HAVING Φ over f°(...) when 𝔾_L not a key]
//
// It returns (nil, reason, nil) when the Appendix C applicability
// conditions fail: Φ applicable to R, all Λ aggregates over R (or *), all
// aggregates algebraic unless 𝔾_L → 𝔸_L, and 𝕁_L not a key of L (a key
// would make every binding distinct and the cache useless).
func RewriteMemo(cat *storage.Catalog, sel *sqlparser.Select, env engine.Env) (*sqlparser.Select, string, error) {
	body := *sel
	body.With = nil
	b, err := analyzeBlock(cat, &body, env)
	if err != nil {
		return nil, "block not analyzable: " + err.Error(), nil
	}
	if b.groupBy == nil || len(b.groupBy) == 0 {
		return nil, "no grouping column list", nil
	}

	// Choose the outer set T: the items owning grouping attributes; when
	// that covers everything, fall back to the single item owning the first
	// grouping attribute (the market-basket case: GROUP BY i1.item, i2.item).
	owner := map[string]bool{}
	for _, g := range b.groupBy {
		owner[strings.ToLower(g.Qualifier)] = true
	}
	var T, rest []*item
	if len(owner) < len(b.items) {
		for _, it := range b.items {
			if owner[strings.ToLower(it.alias)] {
				T = append(T, it)
			} else {
				rest = append(rest, it)
			}
		}
	} else {
		first := strings.ToLower(b.groupBy[0].Qualifier)
		for _, it := range b.items {
			if strings.ToLower(it.alias) == first {
				T = append(T, it)
			} else {
				rest = append(rest, it)
			}
		}
	}
	if len(T) == 0 || len(rest) == 0 {
		return nil, "no usable outer/inner split", nil
	}
	tSet, restSet := aliasSet(T), aliasSet(rest)

	var phiR sqlparser.Expr
	if b.having != nil {
		p, ok := b.havingApplicableTo(restSet)
		if !ok {
			return nil, "HAVING not applicable to the inner side", nil
		}
		phiR = p
	}

	// Collect and validate aggregates.
	aggSeen := map[string]*sqlparser.FuncCall{}
	var aggCalls []*sqlparser.FuncCall
	for _, it := range b.items_ {
		if it.Star {
			return nil, "SELECT * not supported", nil
		}
		engine.CollectAggregates(it.Expr, aggSeen, &aggCalls)
	}
	engine.CollectAggregates(b.having, aggSeen, &aggCalls)
	remapped := make([]*sqlparser.FuncCall, len(aggCalls))
	for i, call := range aggCalls {
		re, ok := b.remapExprInto(call, restSet)
		if !ok {
			return nil, "aggregate " + call.String() + " not computable over the inner side", nil
		}
		remapped[i] = re.(*sqlparser.FuncCall)
	}

	within, crossing, withinR := b.partitionConjuncts(tSet)
	if len(crossing) == 0 {
		return nil, "no join condition between the sides", nil
	}

	var gL, gR []*sqlparser.ColRef
	for _, g := range b.groupBy {
		if tSet[strings.ToLower(g.Qualifier)] {
			gL = append(gL, g)
		} else {
			gR = append(gR, g)
		}
	}
	var jL []*sqlparser.ColRef
	seenJ := map[string]bool{}
	for _, c := range crossing {
		for _, ref := range engine.ColumnsOf(c) {
			if tSet[strings.ToLower(ref.Qualifier)] && !seenJ[colAttr(ref)] {
				seenJ[colAttr(ref)] = true
				jL = append(jL, ref)
			}
		}
	}
	if len(jL) == 0 {
		return nil, "join condition references no outer columns", nil
	}

	lFDs := b.fdSetFor(T)
	var gAttrs, jAttrs []string
	for _, g := range gL {
		gAttrs = append(gAttrs, colAttr(g))
	}
	for _, j := range jL {
		jAttrs = append(jAttrs, colAttr(j))
	}
	// With 𝔾_L → 𝔸_L every LR-group receives contribution from a single
	// L-tuple (Lemma 1), so Φ and the full aggregates can be evaluated per
	// (𝕁_L, 𝔾_R) group inside __ljr — even when 𝔾_R is nonempty.
	glIsKey := allUnique(T) && lFDs.Implies(gAttrs, attrsOf(T))
	if allUnique(T) && lFDs.Implies(jAttrs, attrsOf(T)) {
		return nil, "J_L is a key of L: bindings never repeat", nil
	}
	for _, call := range aggCalls {
		if call.Distinct && !glIsKey {
			return nil, "non-algebraic aggregate " + call.String() + " with non-key G_L", nil
		}
	}

	// ---- assemble the rewritten query ---------------------------------
	const (
		ljtName  = "__ljt"
		ljrName  = "__ljr"
		memAlias = "__m"
	)

	// __ljt: SELECT DISTINCT J_L FROM T WHERE within.
	ljt := &sqlparser.Select{Distinct: true}
	for _, it := range T {
		ljt.From = append(ljt.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
	}
	ljt.Where = engine.AndAll(within)
	for i, c := range jL {
		ljt.Items = append(ljt.Items, sqlparser.SelectItem{Expr: c, Alias: fmt.Sprintf("j%d", i)})
	}

	// __ljr: join __ljt (aliased t) with the inner items under Θ, group by
	// (J_L, G_R), compute fⁱ partials (or full aggregates when glIsKey).
	ljr := &sqlparser.Select{}
	ljr.From = append(ljr.From, &sqlparser.TableRef{Name: ljtName, Alias: "t"})
	for _, it := range rest {
		ljr.From = append(ljr.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
	}
	// Θ with outer columns redirected to t.j<i>.
	jRepl := map[string]sqlparser.Expr{}
	for i, c := range jL {
		jRepl[c.String()] = &sqlparser.ColRef{Qualifier: "t", Name: fmt.Sprintf("j%d", i)}
	}
	var theta []sqlparser.Expr
	for _, c := range crossing {
		theta = append(theta, engine.ReplaceExprs(c, jRepl))
	}
	theta = append(theta, withinR...)
	ljr.Where = engine.AndAll(theta)
	for i := range jL {
		col := &sqlparser.ColRef{Qualifier: "t", Name: fmt.Sprintf("j%d", i)}
		ljr.Items = append(ljr.Items, sqlparser.SelectItem{Expr: col, Alias: fmt.Sprintf("j%d", i)})
		ljr.GroupBy = append(ljr.GroupBy, col)
	}
	for i, g := range gR {
		ljr.Items = append(ljr.Items, sqlparser.SelectItem{Expr: g, Alias: fmt.Sprintf("g%d", i)})
		ljr.GroupBy = append(ljr.GroupBy, g)
	}
	// Aggregate partials. finalRepl maps original aggregate calls to the
	// outer expression over __ljr columns.
	finalRepl := map[string]sqlparser.Expr{}
	memCol := func(name string) *sqlparser.ColRef {
		return &sqlparser.ColRef{Qualifier: memAlias, Name: name}
	}
	for i, call := range aggCalls {
		inner := remapped[i] // the call with arguments resolved over R
		base := fmt.Sprintf("a%d", i)
		if glIsKey {
			ljr.Items = append(ljr.Items, sqlparser.SelectItem{Expr: inner, Alias: base})
			finalRepl[call.String()] = memCol(base)
			continue
		}
		switch call.Name {
		case "COUNT":
			ljr.Items = append(ljr.Items, sqlparser.SelectItem{Expr: inner, Alias: base})
			finalRepl[call.String()] = &sqlparser.FuncCall{Name: "SUM", Args: []sqlparser.Expr{memCol(base)}}
		case "SUM", "MIN", "MAX":
			ljr.Items = append(ljr.Items, sqlparser.SelectItem{Expr: inner, Alias: base})
			finalRepl[call.String()] = &sqlparser.FuncCall{Name: call.Name, Args: []sqlparser.Expr{memCol(base)}}
		case "AVG":
			sum := &sqlparser.FuncCall{Name: "SUM", Args: inner.Args}
			cnt := &sqlparser.FuncCall{Name: "COUNT", Args: inner.Args}
			ljr.Items = append(ljr.Items,
				sqlparser.SelectItem{Expr: sum, Alias: base + "s"},
				sqlparser.SelectItem{Expr: cnt, Alias: base + "c"})
			// Multiply by 1.0 to force float division (both sums may be
			// integers, and SQL integer division truncates).
			finalRepl[call.String()] = &sqlparser.BinOp{
				Op: sqlparser.OpDiv,
				L: &sqlparser.BinOp{Op: sqlparser.OpMul,
					L: &sqlparser.FuncCall{Name: "SUM", Args: []sqlparser.Expr{memCol(base + "s")}},
					R: &sqlparser.Lit{Val: value.NewFloat(1)}},
				R: &sqlparser.FuncCall{Name: "SUM", Args: []sqlparser.Expr{memCol(base + "c")}},
			}
		default:
			return nil, "unsupported aggregate " + call.Name, nil
		}
	}
	if glIsKey && phiR != nil {
		// Φ can be applied inside __ljr: each (J_L, G_R) group corresponds
		// to exactly one LR-group (Lemma 1). phiR has its column references
		// resolved over R.
		ljr.Having = phiR
	}

	// Final query: L joined with __ljr on the binding columns.
	final := &sqlparser.Select{}
	final.With = append(final.With, sel.With...)
	final.With = append(final.With, sqlparser.CTE{Name: ljtName, Query: ljt}, sqlparser.CTE{Name: ljrName, Query: ljr})
	for _, it := range T {
		final.From = append(final.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
	}
	final.From = append(final.From, &sqlparser.TableRef{Name: ljrName, Alias: memAlias})
	conj := append([]sqlparser.Expr(nil), within...)
	for i, c := range jL {
		conj = append(conj, &sqlparser.BinOp{Op: sqlparser.OpEq, L: c, R: memCol(fmt.Sprintf("j%d", i))})
	}
	final.Where = engine.AndAll(conj)

	// Rewrite references to inner grouping columns into __ljr outputs.
	for i, g := range gR {
		finalRepl[g.String()] = memCol(fmt.Sprintf("g%d", i))
	}
	for _, it := range b.items_ {
		final.Items = append(final.Items, sqlparser.SelectItem{
			Expr:  engine.ReplaceExprs(it.Expr, finalRepl),
			Alias: it.Alias,
		})
	}
	if !glIsKey {
		for _, g := range gL {
			final.GroupBy = append(final.GroupBy, g)
		}
		for i := range gR {
			final.GroupBy = append(final.GroupBy, memCol(fmt.Sprintf("g%d", i)))
		}
		if b.having != nil {
			final.Having = engine.ReplaceExprs(b.having, finalRepl)
		}
	}
	for _, o := range sel.OrderBy {
		final.OrderBy = append(final.OrderBy, sqlparser.OrderItem{
			Expr: engine.ReplaceExprs(o.Expr, finalRepl),
			Desc: o.Desc,
		})
	}
	final.Limit = sel.Limit
	final.Distinct = sel.Distinct
	return final, "", nil
}
