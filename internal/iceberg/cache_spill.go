package iceberg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/value"
)

// The cache's overflow tier: entries evicted from the in-memory memo map
// are written to an on-disk spill.Index instead of being dropped, so under
// memory pressure the binding loop still memo-hits bindings it has already
// evaluated (from disk) rather than re-running their inner queries. The
// tier is strictly best-effort: any write failure turns it off for the rest
// of the run, and any read failure — including a checksum mismatch — is
// treated as a cache miss plus a dropped key, so the binding is recomputed
// from source and a corrupted frame can never produce a wrong answer.
//
// Spilled entries serve memoization only: they are not re-registered with
// the prune structures (those stay memory-resident), so pruning capability
// degrades with eviction exactly as before — spilling restores the memo hit
// rate, the cheaper and far more frequent win.

var errEntryCodec = errors.New("iceberg: invalid cache entry encoding")

// encodeCacheEntry appends a cacheEntry's persistent fields to dst:
// binding row, rowCount, unpromising flag, and the algebraic partials.
// The prune node is deliberately not carried.
func encodeCacheEntry(dst []byte, e *cacheEntry) []byte {
	dst = value.AppendRowBinary(dst, e.binding)
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.rowCount))
	if e.unpromising {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.partials)))
	for _, p := range e.partials {
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Count))
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.IntSum))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.FloatSum))
		if p.IsFloat {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = value.AppendBinary(dst, p.MinMax)
	}
	return dst
}

// decodeCacheEntry rebuilds an entry from its encoded form. The entry is a
// read-only memo hit: node stays nil and it is never re-inserted into the
// resident map.
func decodeCacheEntry(b []byte) (*cacheEntry, error) {
	binding, rest, err := value.DecodeRowBinary(b)
	if err != nil {
		return nil, fmt.Errorf("%w: binding: %v", errEntryCodec, err)
	}
	if len(rest) < 13 {
		return nil, fmt.Errorf("%w: truncated header", errEntryCodec)
	}
	e := &cacheEntry{
		binding:     binding,
		rowCount:    int64(binary.BigEndian.Uint64(rest)),
		unpromising: rest[8] == 1,
	}
	n := int(binary.BigEndian.Uint32(rest[9:]))
	rest = rest[13:]
	e.partials = make([]expr.Partial, n)
	for i := 0; i < n; i++ {
		if len(rest) < 25 {
			return nil, fmt.Errorf("%w: truncated partial", errEntryCodec)
		}
		p := expr.Partial{
			Count:    int64(binary.BigEndian.Uint64(rest)),
			IntSum:   int64(binary.BigEndian.Uint64(rest[8:])),
			FloatSum: math.Float64frombits(binary.BigEndian.Uint64(rest[16:])),
			IsFloat:  rest[24] == 1,
		}
		var derr error
		p.MinMax, rest, derr = value.DecodeBinary(rest[25:])
		if derr != nil {
			return nil, fmt.Errorf("%w: partial min/max: %v", errEntryCodec, derr)
		}
		e.partials[i] = p
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errEntryCodec, len(rest))
	}
	return e, nil
}

// spillVictim offers an evicted entry to the overflow tier. Called with the
// victim's shard lock held; the overflow mutex nests strictly inside shard
// locks (never the reverse), so there is no ordering cycle. Every failure
// path disables the tier and returns — eviction then degrades to dropping,
// exactly the pre-spill behavior.
func (c *cache) spillVictim(key string, e *cacheEntry) {
	if c.mgr == nil || c.overflowOff.Load() {
		return
	}
	c.overflowMu.Lock()
	defer c.overflowMu.Unlock()
	if c.overflow == nil {
		idx, err := c.mgr.NewIndex("memo")
		if err != nil {
			c.overflowOff.Store(true)
			return
		}
		c.overflow = idx
	}
	var refCost int64
	if !c.overflow.Has([]byte(key)) {
		refCost = spill.RefBytes(key)
		// A nil *Budget is a valid unlimited budget, so Reserve/Release need
		// no nil guard — and the unconditional Release keeps the failure
		// path balanced on every branch.
		if c.budget.Reserve("NLJP overflow index", refCost) != nil {
			c.overflowOff.Store(true)
			return
		}
	}
	c.encBuf = encodeCacheEntry(c.encBuf[:0], e)
	if err := c.overflow.Put([]byte(key), c.encBuf); err != nil {
		c.budget.Release(refCost)
		c.overflowOff.Store(true)
		return
	}
	c.overflowBytes.Add(refCost)
	c.spilledEntries.Add(1)
}

// lookupOverflow serves a memo miss from the overflow tier. Any failure is
// a miss: an unreadable or corrupt entry is dropped (so it is not retried)
// and the caller recomputes the binding from source.
func (c *cache) lookupOverflow(key []byte) (*cacheEntry, bool) {
	if c.mgr == nil || c.overflowOff.Load() {
		return nil, false
	}
	c.overflowMu.Lock()
	defer c.overflowMu.Unlock()
	if c.overflow == nil {
		return nil, false
	}
	payload, ok, err := c.overflow.Get(key)
	if err != nil {
		if errors.Is(err, spill.ErrCorrupt) {
			c.spillCorruptions.Add(1)
		}
		c.dropOverflowLocked(key)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	e, derr := decodeCacheEntry(payload)
	if derr != nil {
		c.spillCorruptions.Add(1)
		c.dropOverflowLocked(key)
		return nil, false
	}
	c.spillHits.Add(1)
	return e, true
}

// dropOverflowLocked removes a failed key and returns its budget charge.
// Caller holds overflowMu.
func (c *cache) dropOverflowLocked(key []byte) {
	if !c.overflow.Has(key) {
		return
	}
	c.overflow.Delete(key)
	n := spill.RefBytes(string(key))
	c.overflowBytes.Add(-n)
	if c.budget != nil {
		c.budget.Release(n)
	}
}

// close releases the cache's budget reservations and shuts the overflow
// index down (the manager's Cleanup removes the file itself).
func (c *cache) close() {
	c.releaseBudget()
	c.overflowMu.Lock()
	if c.overflow != nil {
		_ = c.overflow.Close()
		c.overflow = nil
	}
	c.overflowMu.Unlock()
	if c.budget != nil {
		c.budget.Release(c.overflowBytes.Swap(0))
	}
}
