package iceberg

import (
	"strings"
	"testing"
)

// derivedPairsSQL is the pairs query written with a derived table instead
// of a CTE — the shape users actually type; the optimizer must lift it and
// still apply NLJP to the outer block.
const derivedPairsSQL = `
	SELECT L.pid1, L.pid2, COUNT(*)
	FROM (SELECT s1.pid AS pid1, s2.pid AS pid2,
	             AVG(s1.hits) AS hits1, AVG(s2.hits) AS hits2
	      FROM Score s1, Score s2
	      WHERE s1.teamid = s2.teamid AND s1.year = s2.year
	        AND s1.round = s2.round AND s1.pid < s2.pid
	      GROUP BY s1.pid, s2.pid
	      HAVING COUNT(*) >= 3) L,
	     (SELECT s1.pid AS pid1, s2.pid AS pid2,
	             AVG(s1.hits) AS hits1, AVG(s2.hits) AS hits2
	      FROM Score s1, Score s2
	      WHERE s1.teamid = s2.teamid AND s1.year = s2.year
	        AND s1.round = s2.round AND s1.pid < s2.pid
	      GROUP BY s1.pid, s2.pid
	      HAVING COUNT(*) >= 3) R
	WHERE R.hits1 >= L.hits1 AND R.hits2 >= L.hits2
	  AND (R.hits1 > L.hits1 OR R.hits2 > L.hits2)
	GROUP BY L.pid1, L.pid2
	HAVING COUNT(*) <= 3`

func TestDerivedTableLifting(t *testing.T) {
	cat := newTestCatalog(t, 7, 60)
	base := runBaseline(t, cat, derivedPairsSQL)
	res, report := runOpt(t, cat, derivedPairsSQL, AllOn())
	assertSameRows(t, "derived pairs", base, res.Rows, report)

	// The lifted sub-blocks must have been optimized (a-priori applies to
	// the pair-building blocks), and the outer block must use NLJP.
	sawLifted, sawNLJP := false, false
	for _, blk := range report.Blocks {
		if strings.HasPrefix(blk.Name, "__dt_") && len(blk.Reducers) > 0 {
			sawLifted = true
		}
		if blk.Name == "main" && blk.NLJP != "" {
			sawNLJP = true
		}
	}
	if !sawLifted {
		t.Errorf("expected a-priori reducers inside the lifted derived tables:\n%s", report.String())
	}
	if !sawNLJP {
		t.Errorf("expected NLJP on the outer block:\n%s", report.String())
	}
}
