package iceberg

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// newTestCatalog builds the running-example relations of the paper with a
// deterministic pseudo-random population.
func newTestCatalog(t testing.TB, seed int64, n int) *storage.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()

	obj := storage.NewTable("Object", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "x", Type: value.Float},
		{Name: "y", Type: value.Float},
	}, []string{"id"})
	for i := 0; i < n; i++ {
		obj.Rows = append(obj.Rows, value.Row{
			value.NewInt(int64(i)),
			value.NewFloat(float64(rng.Intn(40))),
			value.NewFloat(float64(rng.Intn(40))),
		})
	}
	cat.Put(obj)

	basket := storage.NewTable("Basket", []value.Column{
		{Name: "bid", Type: value.Int},
		{Name: "item", Type: value.Str},
	}, []string{"bid", "item"})
	for b := 0; b < n; b++ {
		used := map[int]bool{}
		for k := 0; k < 1+rng.Intn(4); k++ {
			it := rng.Intn(12)
			if used[it] {
				continue
			}
			used[it] = true
			basket.Rows = append(basket.Rows, value.Row{
				value.NewInt(int64(b)),
				value.NewStr(fmt.Sprintf("item%02d", it)),
			})
		}
	}
	cat.Put(basket)

	score := storage.NewTable("Score", []value.Column{
		{Name: "pid", Type: value.Int},
		{Name: "year", Type: value.Int},
		{Name: "round", Type: value.Int},
		{Name: "teamid", Type: value.Str},
		{Name: "hits", Type: value.Float},
		{Name: "hruns", Type: value.Float},
	}, []string{"pid", "year", "round"})
	score.Positive["hits"] = true
	score.Positive["hruns"] = true
	players := 12
	for p := 0; p < players; p++ {
		team := fmt.Sprintf("T%d", p%3)
		for y := 0; y < 4; y++ {
			if rng.Intn(4) == 0 {
				continue
			}
			score.Rows = append(score.Rows, value.Row{
				value.NewInt(int64(p)),
				value.NewInt(int64(2000 + y)),
				value.NewInt(int64(rng.Intn(2))),
				value.NewStr(team),
				value.NewFloat(float64(1 + rng.Intn(30))),
				value.NewFloat(float64(1 + rng.Intn(10))),
			})
		}
	}
	cat.Put(score)

	prod := storage.NewTable("Product", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "category", Type: value.Str},
		{Name: "attr", Type: value.Str},
		{Name: "val", Type: value.Float},
	}, []string{"id", "attr"})
	attrs := []string{"price", "rating", "weight"}
	for p := 0; p < n/2+4; p++ {
		catName := fmt.Sprintf("cat%d", p%3)
		for _, a := range attrs {
			if rng.Intn(5) == 0 {
				continue
			}
			prod.Rows = append(prod.Rows, value.Row{
				value.NewInt(int64(p)),
				value.NewStr(catName),
				value.NewStr(a),
				value.NewFloat(float64(rng.Intn(25))),
			})
		}
	}
	cat.Put(prod)
	return cat
}

const skybandSQL = `
	SELECT L.id, COUNT(*)
	FROM Object L, Object R
	WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
	GROUP BY L.id
	HAVING COUNT(*) <= 5`

const basketSQL = `
	SELECT i1.item, i2.item, COUNT(*)
	FROM Basket i1, Basket i2
	WHERE i1.bid = i2.bid AND i1.item < i2.item
	GROUP BY i1.item, i2.item
	HAVING COUNT(*) >= 4`

const pairsSQL = `
	WITH pair AS
	  (SELECT s1.pid AS pid1, s2.pid AS pid2,
	          AVG(s1.hits) AS hits1, AVG(s1.hruns) AS hruns1,
	          AVG(s2.hits) AS hits2, AVG(s2.hruns) AS hruns2
	   FROM Score s1, Score s2
	   WHERE s1.teamid = s2.teamid AND s1.year = s2.year
	     AND s1.round = s2.round AND s1.pid < s2.pid
	   GROUP BY s1.pid, s2.pid
	   HAVING COUNT(*) >= 3)
	SELECT L.pid1, L.pid2, COUNT(*)
	FROM pair L, pair R
	WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1
	  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2
	  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1
	   OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2)
	GROUP BY L.pid1, L.pid2
	HAVING COUNT(*) <= 3`

const complexSQL = `
	SELECT S1.id, S1.attr, S2.attr, COUNT(*)
	FROM Product S1, Product S2, Product T1, Product T2
	WHERE S1.id = S2.id AND T1.id = T2.id
	  AND S1.category = T1.category
	  AND T1.attr = S1.attr AND T2.attr = S2.attr
	  AND T1.val > S1.val AND T2.val > S2.val
	GROUP BY S1.id, S1.attr, S2.attr
	HAVING COUNT(*) >= 3`

func canonical(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.K == value.Float {
				parts[j] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func runBaseline(t testing.TB, cat *storage.Catalog, sql string) []value.Row {
	t.Helper()
	res, err := engine.Exec(cat, sql)
	if err != nil {
		t.Fatalf("baseline %v", err)
	}
	return res.Rows
}

func runOpt(t testing.TB, cat *storage.Catalog, sql string, opts Options) (*engine.Result, *Report) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, report, err := Exec(cat, sel, opts)
	if err != nil {
		t.Fatalf("optimized exec: %v\nreport so far:\n%s", err, report.String())
	}
	return res, report
}

func assertSameRows(t testing.TB, name string, base []value.Row, opt []value.Row, report *Report) {
	t.Helper()
	bc, oc := canonical(base), canonical(opt)
	if len(bc) != len(oc) {
		t.Fatalf("%s: baseline %d rows, optimized %d rows\nbaseline: %v\noptimized: %v\nreport:\n%s",
			name, len(bc), len(oc), sample(bc), sample(oc), report.String())
	}
	for i := range bc {
		if bc[i] != oc[i] {
			t.Fatalf("%s: row %d differs: baseline %q optimized %q\nreport:\n%s", name, i, bc[i], oc[i], report.String())
		}
	}
}

func sample(rows []string) []string {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

// optionCombos enumerates all technique combinations.
func optionCombos() map[string]Options {
	out := map[string]Options{}
	for a := 0; a < 2; a++ {
		for p := 0; p < 2; p++ {
			for m := 0; m < 2; m++ {
				for ci := 0; ci < 2; ci++ {
					if ci == 1 && p == 0 {
						continue
					}
					name := fmt.Sprintf("apriori=%d,prune=%d,memo=%d,ci=%d", a, p, m, ci)
					out[name] = Options{
						Apriori: a == 1, Prune: p == 1, Memo: m == 1,
						CacheIndex: ci == 1, UseIndexes: true,
					}
				}
			}
		}
	}
	return out
}

// TestDifferentialAllQueries runs every workload query under every
// optimization combination and several random instances, and requires the
// exact baseline result set each time.
func TestDifferentialAllQueries(t *testing.T) {
	queries := map[string]string{
		"skyband": skybandSQL,
		"basket":  basketSQL,
		"pairs":   pairsSQL,
		"complex": complexSQL,
	}
	for seed := int64(1); seed <= 3; seed++ {
		cat := newTestCatalog(t, seed, 60)
		for qname, sql := range queries {
			base := runBaseline(t, cat, sql)
			for oname, opts := range optionCombos() {
				res, report := runOpt(t, cat, sql, opts)
				assertSameRows(t, fmt.Sprintf("seed=%d %s %s", seed, qname, oname), base, res.Rows, report)
			}
		}
	}
}

// TestSkybandUsesPruneAndMemo verifies the techniques actually fire on the
// skyband query (anti-monotone Φ, G_L key, G_R empty).
func TestSkybandUsesPruneAndMemo(t *testing.T) {
	cat := newTestCatalog(t, 42, 200)
	res, report := runOpt(t, cat, skybandSQL, AllOn())
	if len(res.Rows) == 0 {
		t.Fatalf("expected some skyband results")
	}
	stats := report.TotalStats()
	if stats.PruneHits == 0 {
		t.Errorf("expected prune hits, got stats %+v\n%s", stats, report.String())
	}
	if stats.MemoHits == 0 {
		t.Errorf("expected memo hits (40x40 grid over 200 objects), got %+v", stats)
	}
	if stats.InnerEvals >= stats.Bindings {
		t.Errorf("inner evals (%d) should be well below bindings (%d)", stats.InnerEvals, stats.Bindings)
	}
	blk := report.Blocks[len(report.Blocks)-1]
	if !strings.Contains(blk.NLJP, "anti-monotone") {
		t.Errorf("expected anti-monotone classification in NLJP description:\n%s", blk.NLJP)
	}
	if !strings.Contains(blk.NLJP, "pruning predicate") {
		t.Errorf("expected a derived pruning predicate:\n%s", blk.NLJP)
	}
}

// TestPairsUsesAprioriAndPrune checks the pairs query exercises a-priori on
// the WITH block and NLJP on the outer block, as in the paper.
func TestPairsUsesAprioriAndPrune(t *testing.T) {
	cat := newTestCatalog(t, 7, 60)
	_, report := runOpt(t, cat, pairsSQL, AllOn())
	var cteBlk, mainBlk *BlockReport
	for _, blk := range report.Blocks {
		switch blk.Name {
		case "pair":
			cteBlk = blk
		case "main":
			mainBlk = blk
		}
	}
	if cteBlk == nil || mainBlk == nil {
		t.Fatalf("missing block reports:\n%s", report.String())
	}
	if len(cteBlk.Reducers) != 2 {
		t.Errorf("expected 2 a-priori reducers on the pair block (s1 and s2), got %v", cteBlk.Reducers)
	}
	if mainBlk.NLJP == "" {
		t.Errorf("expected NLJP on the outer pairs block:\n%s", report.String())
	}
}

// TestComplexCombinesAprioriAndPrune reproduces Example 13: the four-way
// self-join admits two reducers (on S1 and S2) and an NLJP plan over
// T_L = {S1, S2} — the combination the paper's own prototype could not yet
// apply (end of Section 7).
func TestComplexCombinesAprioriAndPrune(t *testing.T) {
	cat := newTestCatalog(t, 11, 80)
	_, report := runOpt(t, cat, complexSQL, AllOn())
	blk := report.Blocks[0]
	if len(blk.Reducers) != 2 {
		t.Errorf("expected 2 reducers (Example 13), got %v\nnotes: %v", blk.Reducers, blk.Notes)
	}
	targets := map[string]bool{}
	for alias := range blk.ReducerSizes {
		targets[strings.ToLower(alias)] = true
	}
	if !targets["s1"] || !targets["s2"] {
		t.Errorf("expected reducers to target S1 and S2, got %v", blk.ReducerSizes)
	}
	if blk.NLJP == "" {
		t.Fatalf("expected NLJP on complex query:\n%s", report.String())
	}
	if !strings.Contains(blk.NLJP, "outer {S1, S2}") {
		t.Errorf("expected NLJP outer {S1, S2}:\n%s", blk.NLJP)
	}
	if !strings.Contains(blk.NLJP, "monotone") {
		t.Errorf("expected monotone classification:\n%s", blk.NLJP)
	}
}

// TestBasketApriori: the market basket query of Listing 1 admits a-priori on
// both sides (Example 6) but no NLJP (𝔾_R nonempty on either split).
func TestBasketApriori(t *testing.T) {
	cat := newTestCatalog(t, 3, 120)
	_, report := runOpt(t, cat, basketSQL, AllOn())
	blk := report.Blocks[0]
	if len(blk.Reducers) != 2 {
		t.Errorf("expected 2 reducers (i1, i2), got %v", blk.Reducers)
	}
	for alias, sz := range blk.ReducerSizes {
		if sz[1] > sz[0] {
			t.Errorf("reducer on %s grew the table: %v", alias, sz)
		}
	}
}

// TestAntiMonotoneBasketNotReduced: flipping the basket HAVING to <= makes
// a-priori unsafe (Example 6's second half: item does not determine bid).
func TestAntiMonotoneBasketNotReduced(t *testing.T) {
	cat := newTestCatalog(t, 3, 120)
	sql := strings.Replace(basketSQL, ">= 4", "<= 4", 1)
	base := runBaseline(t, cat, sql)
	res, report := runOpt(t, cat, sql, AllOn())
	assertSameRows(t, "anti-basket", base, res.Rows, report)
	if len(report.Blocks[0].Reducers) != 0 {
		t.Errorf("anti-monotone basket must not be reduced: %v", report.Blocks[0].Reducers)
	}
}

// TestExample5Tightness encodes the two counterexamples of Example 5,
// verifying that the schema checks block the unsafe rewrites and that the
// optimized result still matches the baseline.
func TestExample5Tightness(t *testing.T) {
	// Monotone case: L(g,j), R(j,o,g) with duplicate (j,g) pairs in R.
	cat := storage.NewCatalog()
	l := storage.NewTable("L", []value.Column{
		{Name: "g", Type: value.Str}, {Name: "j", Type: value.Int},
	}, nil)
	l.Rows = append(l.Rows, value.Row{value.NewStr("u"), value.NewInt(1)})
	cat.Put(l)
	r := storage.NewTable("R", []value.Column{
		{Name: "j", Type: value.Int}, {Name: "o", Type: value.Str}, {Name: "g", Type: value.Str},
	}, nil)
	r.Rows = append(r.Rows,
		value.Row{value.NewInt(1), value.NewStr("z1"), value.NewStr("v")},
		value.Row{value.NewInt(1), value.NewStr("z2"), value.NewStr("v")})
	cat.Put(r)

	sql := `SELECT L.g, R.g, COUNT(*) FROM L, R WHERE L.j = R.j
	        GROUP BY L.g, R.g HAVING COUNT(*) >= 2`
	base := runBaseline(t, cat, sql)
	if len(base) != 1 {
		t.Fatalf("expected the (u,v) group to survive, got %v", base)
	}
	res, report := runOpt(t, cat, sql, AllOn())
	assertSameRows(t, "example5-monotone", base, res.Rows, report)
	if len(report.Blocks[0].Reducers) != 0 {
		t.Errorf("inflationary query must not be reduced: %v", report.Blocks[0].Reducers)
	}

	// Anti-monotone case: two L tuples in one group, only one joins.
	cat2 := storage.NewCatalog()
	l2 := storage.NewTable("L", []value.Column{
		{Name: "g", Type: value.Str}, {Name: "j", Type: value.Int},
	}, nil)
	l2.Rows = append(l2.Rows,
		value.Row{value.NewStr("u"), value.NewInt(1)},
		value.Row{value.NewStr("u"), value.NewInt(2)})
	cat2.Put(l2)
	r2 := storage.NewTable("R", []value.Column{
		{Name: "j", Type: value.Int}, {Name: "g", Type: value.Str},
	}, nil)
	r2.Rows = append(r2.Rows, value.Row{value.NewInt(1), value.NewStr("v")})
	cat2.Put(r2)

	sql2 := `SELECT L.g, R.g, COUNT(*) FROM L, R WHERE L.j = R.j
	         GROUP BY L.g, R.g HAVING COUNT(*) <= 1`
	base2 := runBaseline(t, cat2, sql2)
	if len(base2) != 1 {
		t.Fatalf("expected the (u,v) group to survive, got %v", base2)
	}
	res2, report2 := runOpt(t, cat2, sql2, AllOn())
	assertSameRows(t, "example5-anti", base2, res2.Rows, report2)
	if len(report2.Blocks[0].Reducers) != 0 {
		t.Errorf("deflationary query must not be reduced: %v", report2.Blocks[0].Reducers)
	}
}

// TestHavingClassification exercises the corrected Table 2.
func TestHavingClassification(t *testing.T) {
	pos := func(c *sqlparser.ColRef) bool { return strings.EqualFold(c.Name, "p") }
	cases := []struct {
		having string
		want   Monotonicity
	}{
		{"COUNT(*) >= 3", Monotone},
		{"COUNT(*) > 3", Monotone},
		{"COUNT(*) <= 3", AntiMonotone},
		{"COUNT(a) >= 3", Monotone},
		{"COUNT(DISTINCT a) >= 3", Monotone},
		{"COUNT(DISTINCT a) <= 3", AntiMonotone},
		{"SUM(p) >= 3", Monotone},
		{"SUM(p) <= 3", AntiMonotone},
		{"SUM(q) >= 3", Neither}, // q not known positive
		{"MAX(a) >= 3", Monotone},
		{"MAX(a) <= 3", AntiMonotone},
		{"MIN(a) <= 3", Monotone},     // per Definition 1
		{"MIN(a) >= 3", AntiMonotone}, // per Definition 1
		{"AVG(a) >= 3", Neither},
		{"COUNT(*) = 3", Neither},
		{"COUNT(*) >= 3 AND MAX(a) >= 1", Monotone},
		{"COUNT(*) >= 3 AND COUNT(*) <= 9", Neither},
		{"3 <= COUNT(*)", Monotone},
		{"3 >= COUNT(*)", AntiMonotone},
	}
	for _, tc := range cases {
		sel, err := sqlparser.ParseSelect("SELECT COUNT(*) FROM t GROUP BY a HAVING " + tc.having)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.having, err)
		}
		got := ClassifyHaving(sel.Having, pos)
		if got != tc.want {
			t.Errorf("ClassifyHaving(%q) = %v, want %v", tc.having, got, tc.want)
		}
	}
}

// TestDescribe exercises the non-executing plan description.
func TestDescribe(t *testing.T) {
	cat := newTestCatalog(t, 5, 40)
	sel, err := sqlparser.ParseSelect(skybandSQL)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := Describe(cat, sel, AllOn())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NLJP", "pruning predicate", "anti-monotone"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}
