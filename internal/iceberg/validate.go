package iceberg

import (
	"fmt"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/lincon"
)

// validate asserts the structural invariants of a constructed NLJP plan.
// It runs when engine.Validate is set (the test suites switch it on), after
// buildNLJP has assembled all four component queries:
//
//   - the binding-column maps 𝕁 (jIdx) and 𝔾 (gIdx) address real columns of
//     the Q_B output, one per declared join/grouping attribute;
//   - the subsumption predicate p⪰ references only join-attribute variables
//     (w, w'): every inner variable w_r must have been eliminated, or Check
//     would evaluate cached entries against columns the cache never stores;
//   - the cache-index hints point at valid 𝕁_L positions;
//   - the post-processing query Q_P has one compiled expression per output
//     column.
func (n *NLJP) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("NLJP validation: %s", fmt.Sprintf(format, args...))
	}
	if len(n.jIdx) != len(n.JCols) {
		return bad("%d binding positions for %d join columns", len(n.jIdx), len(n.JCols))
	}
	if len(n.gIdx) != len(n.GCols) {
		return bad("%d binding positions for %d grouping columns", len(n.gIdx), len(n.GCols))
	}
	width := len(n.bindingSchema)
	for i, j := range n.jIdx {
		if j < 0 || j >= width {
			return bad("join column %s maps to binding position %d, Q_B has %d columns",
				n.JCols[i].String(), j, width)
		}
	}
	for i, j := range n.gIdx {
		if j < 0 || j >= width {
			return bad("grouping column %s maps to binding position %d, Q_B has %d columns",
				n.GCols[i].String(), j, width)
		}
	}
	if len(n.lamC) != len(n.outCols) {
		return bad("%d output expressions for %d output columns", len(n.lamC), len(n.outCols))
	}
	if n.Pred != nil {
		if err := n.Pred.validate(len(n.JCols)); err != nil {
			return bad("%v", err)
		}
	}
	if err := engine.ValidatePlan(n.bindingOp); err != nil {
		return bad("Q_B: %v", err)
	}
	return nil
}

// validate checks that the derived subsumption predicate is closed over the
// join-attribute variables and that its index hints stay within 𝕁_L. nJ is
// the number of 𝕁_L columns.
func (p *PrunePredicate) validate(nJ int) error {
	if len(p.wVars) != nJ || len(p.wpVars) != nJ {
		return fmt.Errorf("predicate binds %d w / %d w' variables for %d join columns",
			len(p.wVars), len(p.wpVars), nJ)
	}
	allowed := make(map[lincon.Var]bool, 2*nJ)
	for _, v := range p.wVars {
		allowed[v] = true
	}
	for _, v := range p.wpVars {
		allowed[v] = true
	}
	for _, v := range p.notP.Vars() {
		if !allowed[v] {
			return fmt.Errorf("subsumption predicate references non-join-attribute variable %s",
				p.sys.Name(v))
		}
	}
	for _, i := range p.EqIdx {
		if i < 0 || i >= nJ {
			return fmt.Errorf("equality index hint %d out of range (|J_L| = %d)", i, nJ)
		}
	}
	if p.RangeIdx != -1 && (p.RangeIdx < 0 || p.RangeIdx >= nJ) {
		return fmt.Errorf("range index hint %d out of range (|J_L| = %d)", p.RangeIdx, nJ)
	}
	return nil
}
