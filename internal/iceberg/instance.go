package iceberg

import (
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// InstanceChecks evaluates the instance-based safety conditions of
// Definition 3 / Theorem 1 for the split L = Q⋈[T] (aliases in outer),
// R = Q⋈[rest], over the current database instance: whether the query is
// non-inflationary and non-deflationary with respect to L.
//
// These checks require joining L and R and are therefore not used by the
// optimizer itself (it relies on the schema-based Theorem 2); they exist as
// a reference implementation — the test suite verifies that whenever the
// schema-based check passes, the instance-based one holds on random
// instances, which is exactly the containment Theorem 2 claims.
type InstanceChecks struct {
	NonInflationary bool
	NonDeflationary bool
	// CandidateGroups is the number of candidate LR-groups inspected.
	CandidateGroups int
}

// CheckInstance runs the Definition 3 checks for a parsed single-block
// query against a catalog. outer lists the aliases forming L.
func CheckInstance(cat *storage.Catalog, sel *sqlparser.Select, outer []string, env engine.Env) (*InstanceChecks, error) {
	b, err := analyzeBlock(cat, sel, env)
	if err != nil {
		return nil, err
	}
	outerSet := map[string]bool{}
	for _, a := range outer {
		outerSet[strings.ToLower(a)] = true
	}
	var T, rest []*item
	for _, it := range b.items {
		if outerSet[strings.ToLower(it.alias)] {
			T = append(T, it)
		} else {
			rest = append(rest, it)
		}
	}
	within, crossing, withinR := b.partitionConjuncts(aliasSet(T))

	planner := &engine.Planner{Catalog: cat, UseIndexes: true}
	materialize := func(items []*item, where []sqlparser.Expr) ([]value.Row, value.Schema, error) {
		q := &sqlparser.Select{}
		var schema value.Schema
		for _, it := range items {
			q.From = append(q.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
			for i, col := range it.schema {
				q.Items = append(q.Items, sqlparser.SelectItem{
					Expr:  &sqlparser.ColRef{Qualifier: col.Qualifier, Name: col.Name},
					Alias: "c" + itoa(len(schema)+i),
				})
			}
			schema = append(schema, it.schema...)
		}
		q.Where = engine.AndAll(where)
		op, err := planner.PlanSelect(q, b.env)
		if err != nil {
			return nil, nil, err
		}
		rows, err := engine.Run(op)
		if err != nil {
			return nil, nil, err
		}
		return rows, schema, nil
	}

	lRows, lSchema, err := materialize(T, within)
	if err != nil {
		return nil, err
	}
	rRows, rSchema, err := materialize(rest, withinR)
	if err != nil {
		return nil, err
	}
	concat := lSchema.Concat(rSchema)
	theta, err := compileExpr(engine.AndAll(crossing), concat)
	if err != nil {
		return nil, err
	}

	// Column positions for 𝔾_L (in L) and 𝔾_R (in R).
	var gLIdx, gRIdx []int
	for _, g := range b.groupBy {
		if i := lSchema.IndexOf(g.Qualifier, g.Name); i >= 0 {
			gLIdx = append(gLIdx, i)
			continue
		}
		i := rSchema.IndexOf(g.Qualifier, g.Name)
		if i < 0 {
			return nil, errGroupNotFound(g)
		}
		gRIdx = append(gRIdx, i)
	}

	// For each L-tuple occurrence: the count of joining R-tuples per 𝔾_R
	// value. Non-inflationary: every count <= 1. Non-deflationary: for
	// every candidate group (u, v) and every ℓ in L-group u, count >= 1.
	type lrkey struct{ u, v string }
	groupSeen := map[lrkey]bool{}
	lGroups := map[string][]int{} // u -> L row indices
	counts := make([]map[string]int, len(lRows))

	scratch := make(value.Row, len(concat))
	keyBuf := make([]byte, 0, 64)
	for li, lr := range lRows {
		copy(scratch, lr)
		counts[li] = map[string]int{}
		var u string
		u, keyBuf = keyAt(lr, gLIdx, keyBuf)
		lGroups[u] = append(lGroups[u], li)
		for _, rr := range rRows {
			copy(scratch[len(lr):], rr)
			v, err := theta(scratch)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
			var vk string
			vk, keyBuf = keyAt(rr, gRIdx, keyBuf)
			counts[li][vk]++
			groupSeen[lrkey{u: u, v: vk}] = true
		}
	}

	checks := &InstanceChecks{NonInflationary: true, NonDeflationary: true, CandidateGroups: len(groupSeen)}
	for li := range lRows {
		for _, c := range counts[li] {
			if c > 1 {
				checks.NonInflationary = false
			}
		}
	}
	for g := range groupSeen {
		for _, li := range lGroups[g.u] {
			if counts[li][g.v] == 0 {
				checks.NonDeflationary = false
			}
		}
	}
	return checks, nil
}

// keyAt builds the group key of the idx columns in the reusable buffer and
// returns it (allocating only the final string) along with the buffer for
// the next call — the O(|L|·|R|) check loop builds two keys per pair.
func keyAt(r value.Row, idx []int, buf []byte) (string, []byte) {
	buf = buf[:0]
	for _, j := range idx {
		buf = value.AppendKey(buf, r[j])
	}
	return string(buf), buf
}

func compileExpr(e sqlparser.Expr, schema value.Schema) (expr.Compiled, error) {
	if e == nil {
		return func(value.Row) (value.Value, error) { return value.NewBool(true), nil }, nil
	}
	return expr.Compile(e, schema, nil)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

type groupNotFound struct{ g *sqlparser.ColRef }

func errGroupNotFound(g *sqlparser.ColRef) error { return &groupNotFound{g: g} }

func (e *groupNotFound) Error() string {
	return "grouping column " + e.g.String() + " not found on either side of the split"
}
