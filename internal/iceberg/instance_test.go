package iceberg

import (
	"math/rand"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
)

// TestTheorem1Examples encodes Example 4: the market-basket query and the
// pairs WITH-block are non-inflationary w.r.t. their outer side.
func TestTheorem1Examples(t *testing.T) {
	cat := newTestCatalog(t, 1, 50)
	sel, err := sqlparser.ParseSelect(basketSQL)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := CheckInstance(cat, sel, []string{"i1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !checks.NonInflationary {
		t.Error("market-basket query must be non-inflationary w.r.t. i1 (Example 4)")
	}

	// The pairs first block w.r.t. s1.
	sel2, err := sqlparser.ParseSelect(`
		SELECT s1.pid, s2.pid, COUNT(*)
		FROM Score s1, Score s2
		WHERE s1.teamid = s2.teamid AND s1.year = s2.year
		  AND s1.round = s2.round AND s1.pid < s2.pid
		GROUP BY s1.pid, s2.pid
		HAVING COUNT(*) >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	checks2, err := CheckInstance(cat, sel2, []string{"s1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !checks2.NonInflationary {
		t.Error("pairs WITH-block must be non-inflationary w.r.t. s1 (Example 4)")
	}
}

// TestExample5InstanceChecks re-creates the counterexample instances of
// Example 5 and confirms Definition 3 classifies them as claimed.
func TestExample5InstanceChecks(t *testing.T) {
	// Monotone counterexample: inflationary.
	cat, sel := example5MonotoneInstance(t)
	checks, err := CheckInstance(cat, sel, []string{"L"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if checks.NonInflationary {
		t.Error("Example 5's monotone instance is inflationary w.r.t. L")
	}

	// Anti-monotone counterexample: deflationary.
	cat2, sel2 := example5AntiInstance(t)
	checks2, err := CheckInstance(cat2, sel2, []string{"L"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if checks2.NonDeflationary {
		t.Error("Example 5's anti-monotone instance is deflationary w.r.t. L")
	}
}

func example5MonotoneInstance(t *testing.T) (*storage.Catalog, *sqlparser.Select) {
	t.Helper()
	return buildExample5(t, `SELECT L.g, R.g, COUNT(*) FROM L, R WHERE L.j = R.j
		GROUP BY L.g, R.g HAVING COUNT(*) >= 2`,
		[]string{"('u', 1)"},
		[]string{"(1, 'z1', 'v')", "(1, 'z2', 'v')"})
}

func example5AntiInstance(t *testing.T) (*storage.Catalog, *sqlparser.Select) {
	t.Helper()
	return buildExample5(t, `SELECT L.g, R.g, COUNT(*) FROM L, R WHERE L.j = R.j
		GROUP BY L.g, R.g HAVING COUNT(*) <= 1`,
		[]string{"('u', 1)", "('u', 2)"},
		[]string{"(1, 'z', 'v')"})
}

// TestSchemaCheckImpliesInstanceCheck is the containment Theorem 2 claims:
// whenever the schema-based a-priori safety check passes on a random keyed
// instance, the corresponding Definition 3 instance property holds.
func TestSchemaCheckImpliesInstanceCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for iter := 0; iter < 120; iter++ {
		cat := randomCatalog(rng, rng.Intn(2) == 0, rng.Intn(2) == 0)
		sql := randomIcebergQuery(rng)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		b, err := analyzeBlock(cat, sel, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Consider the single-item candidate T = {first item} as L.
		T := []*item{b.items[0]}
		red := tryGapriori(b, T)
		if red == nil {
			continue
		}
		class := ClassifyHaving(b.having, b.positiveFunc())
		checks, err := CheckInstance(cat, sel, []string{b.items[0].alias}, nil)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		switch class {
		case Monotone:
			if !checks.NonInflationary {
				t.Fatalf("iter %d: schema check passed but instance is inflationary\nquery: %s", iter, sql)
			}
		case AntiMonotone:
			if !checks.NonDeflationary {
				t.Fatalf("iter %d: schema check passed but instance is deflationary\nquery: %s", iter, sql)
			}
		}
	}
	if checked == 0 {
		t.Skip("no random query admitted a singleton reducer; widen the generator")
	}
	t.Logf("verified Theorem 2 ⊆ Theorem 1 on %d random (query, instance) pairs", checked)
}

// --- helpers ---------------------------------------------------------------

func buildExample5(t *testing.T, sql string, lRows, rRows []string) (*storage.Catalog, *sqlparser.Select) {
	t.Helper()
	cat := storage.NewCatalog()
	mustExecSQL(t, cat, "CREATE TABLE L (g TEXT, j BIGINT)")
	mustExecSQL(t, cat, "CREATE TABLE R (j BIGINT, o TEXT, g TEXT)")
	for _, r := range lRows {
		mustExecSQL(t, cat, "INSERT INTO L VALUES "+r)
	}
	for _, r := range rRows {
		mustExecSQL(t, cat, "INSERT INTO R VALUES "+r)
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	return cat, sel
}

func mustExecSQL(t *testing.T, cat *storage.Catalog, sql string) {
	t.Helper()
	if _, err := engine.Exec(cat, sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}
