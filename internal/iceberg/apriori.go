package iceberg

import (
	"fmt"
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Reducer is one generalized a-priori rewrite found by pick_gapriori
// (Listing 9 of the paper): the relation instance TargetAlias can be
// replaced by its semijoin with Query, whose result lists the surviving
// grouping-key values.
type Reducer struct {
	// TargetAlias is T̆: the FROM item whose rows the reducer filters.
	TargetAlias string
	// KeyCols are the reducer's output columns, all owned by TargetAlias.
	KeyCols []*sqlparser.ColRef
	// Query is the reducer SELECT (the subquery of L' in Section 4.1).
	Query *sqlparser.Select
	// BasisAliases is the candidate set T_L the reducer was derived from.
	BasisAliases []string
	// Class records the monotonicity that justified the rewrite.
	Class Monotonicity
}

// String summarizes the reducer for reports.
func (r *Reducer) String() string {
	cols := make([]string, len(r.KeyCols))
	for i, c := range r.KeyCols {
		cols[i] = c.String()
	}
	return fmt.Sprintf("reduce %s on (%s) via %s basis {%s}",
		r.TargetAlias, strings.Join(cols, ", "), r.Class, strings.Join(r.BasisAliases, ", "))
}

// findReducers runs the pick_gapriori loop of Listing 9: repeatedly search
// the not-yet-reduced relation instances for a subset T whose grouping
// attributes admit a safe HAVING push-down per Theorem 2.
func findReducers(b *block) []*Reducer {
	if b.having == nil || b.groupBy == nil || len(b.items) < 2 {
		return nil
	}
	remaining := append([]*item(nil), b.items...)
	var out []*Reducer
	for len(remaining) > 0 {
		red, used := pickGapriori(b, remaining)
		if red == nil {
			break
		}
		out = append(out, red)
		var next []*item
		usedSet := aliasSet(used)
		for _, it := range remaining {
			if !usedSet[strings.ToLower(it.alias)] {
				next = append(next, it)
			}
		}
		remaining = next
	}
	return out
}

// pickGapriori tries candidate subsets of the remaining items (singletons
// and pairs — all the paper's examples need at most two relations per
// reducer; larger subsets explode the search space for little gain). Among
// safe candidates it prefers the one whose reducer groups on the most
// final grouping attributes (a proxy for filtering power: a reducer whose
// grouping matches more of the query's GROUP BY applies the HAVING
// threshold to finer, more selective groups), breaking ties toward smaller
// candidate sets.
func pickGapriori(b *block, remaining []*item) (*Reducer, []*item) {
	type cand struct {
		r *Reducer
		T []*item
	}
	var best *cand
	consider := func(T []*item) {
		r := tryGapriori(b, T)
		if r == nil {
			return
		}
		if best == nil ||
			len(r.KeyCols) > len(best.r.KeyCols) ||
			(len(r.KeyCols) == len(best.r.KeyCols) && len(T) < len(best.T)) {
			best = &cand{r: r, T: T}
		}
	}
	for _, it := range remaining {
		consider([]*item{it})
	}
	for i := 0; i < len(remaining); i++ {
		for j := i + 1; j < len(remaining); j++ {
			consider([]*item{remaining[i], remaining[j]})
		}
	}
	if best == nil {
		return nil, nil
	}
	return best.r, best.T
}

// tryGapriori applies the Theorem 2 safety checks to the candidate split
// L = Q⋈[T], R = Q⋈[rest], and builds the reducer when they pass.
func tryGapriori(b *block, T []*item) *Reducer {
	set := aliasSet(T)
	phi, applicable := b.havingApplicableTo(set)
	if !applicable {
		return nil
	}
	class := ClassifyHaving(phi, b.positiveFunc())
	if class == Neither {
		return nil
	}

	// Split GROUP BY into G_L (owned by or remappable into T) and G_R.
	var gL, gR []*sqlparser.ColRef
	for _, g := range b.groupBy {
		if ng, ok := b.remapInto(g, set); ok {
			gL = append(gL, ng)
		} else {
			gR = append(gR, g)
		}
	}
	if len(gL) == 0 {
		return nil
	}

	var rest []*item
	for _, it := range b.items {
		if !set[strings.ToLower(it.alias)] {
			rest = append(rest, it)
		}
	}
	if len(rest) == 0 {
		return nil
	}
	within, crossing, _ := b.partitionConjuncts(set)

	switch class {
	case Monotone:
		// 𝔾_R ∪ 𝕁_R^= must be a superkey of R. The proof of Theorem 2
		// identifies two R-tuples that agree on these attributes, which
		// requires R to be duplicate-free as well.
		if !allUnique(rest) {
			return nil
		}
		restSet := aliasSet(rest)
		var keyAttrs []string
		for _, g := range gR {
			keyAttrs = append(keyAttrs, colAttr(g))
		}
		for _, c := range crossing {
			// Only a bare column equated across the cut joins the 𝕁_R^= set:
			// for `ℓ.a = r.b` two R-tuples joining the same ℓ must agree on
			// b, but for `ℓ.a = r.b + r.c` they only agree on the sum.
			if ref := equatedRestColumn(c, restSet); ref != nil {
				keyAttrs = append(keyAttrs, colAttr(ref))
			}
		}
		if !b.fdSetFor(rest).Implies(keyAttrs, attrsOf(rest)) {
			return nil
		}
	case AntiMonotone:
		// 𝔾_L must determine 𝕁_L within L.
		var jL []string
		for _, c := range crossing {
			for _, ref := range engine.ColumnsOf(c) {
				if set[strings.ToLower(ref.Qualifier)] {
					jL = append(jL, colAttr(ref))
				}
			}
		}
		var gAttrs []string
		for _, g := range gL {
			gAttrs = append(gAttrs, colAttr(g))
		}
		if !b.fdSetFor(T).Implies(gAttrs, jL) {
			return nil
		}
	}

	// Skip reducers that provably keep every tuple.
	var gAttrs []string
	for _, g := range gL {
		gAttrs = append(gAttrs, colAttr(g))
	}
	groupIsKey := b.fdSetFor(T).Implies(gAttrs, attrsOf(T))
	if isTrivialReducer(phi, groupIsKey) {
		return nil
	}

	// The reducer output must land on a single item so it can be applied as
	// a per-relation filter.
	target := ""
	for _, g := range gL {
		q := strings.ToLower(g.Qualifier)
		if target == "" {
			target = q
		} else if target != q {
			return nil
		}
	}

	// Assemble the reducer AST:
	//   SELECT 𝔾_L FROM T WHERE (within-T conjuncts) GROUP BY 𝔾_L HAVING Φ.
	q := &sqlparser.Select{}
	for _, it := range T {
		q.From = append(q.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
	}
	// A single-atom extreme-value HAVING implies an exact row-level bound
	// (MAX(col) >= c ⇒ col >= c); adding it to WHERE lets the planner push
	// it to the scan, where zone maps skip whole blocks. Φ is kept in
	// HAVING regardless — the bound never changes the reducer's output.
	if bound := derivedRowBound(phi); bound != nil {
		within = append(within, bound)
	}
	q.Where = engine.AndAll(within)
	for _, g := range gL {
		q.Items = append(q.Items, sqlparser.SelectItem{Expr: g})
		q.GroupBy = append(q.GroupBy, g)
	}
	q.Having = phi

	var basis []string
	for _, it := range T {
		basis = append(basis, it.alias)
	}
	var targetAlias string
	for _, it := range T {
		if strings.ToLower(it.alias) == target {
			targetAlias = it.alias
		}
	}
	return &Reducer{TargetAlias: targetAlias, KeyCols: gL, Query: q, BasisAliases: basis, Class: class}
}

// equatedRestColumn returns the single rest-side column of an equality
// conjunct of the form `outerExpr = rest.col` (either orientation) where
// the other side references no rest attributes; nil otherwise.
func equatedRestColumn(c sqlparser.Expr, restSet map[string]bool) *sqlparser.ColRef {
	bin, ok := c.(*sqlparser.BinOp)
	if !ok || bin.Op != sqlparser.OpEq {
		return nil
	}
	isRestCol := func(e sqlparser.Expr) *sqlparser.ColRef {
		ref, ok := e.(*sqlparser.ColRef)
		if ok && restSet[strings.ToLower(ref.Qualifier)] {
			return ref
		}
		return nil
	}
	touchesRest := func(e sqlparser.Expr) bool {
		for _, ref := range engine.ColumnsOf(e) {
			if restSet[strings.ToLower(ref.Qualifier)] {
				return true
			}
		}
		return false
	}
	if ref := isRestCol(bin.L); ref != nil && !touchesRest(bin.R) {
		return ref
	}
	if ref := isRestCol(bin.R); ref != nil && !touchesRest(bin.L) {
		return ref
	}
	return nil
}

// applyReducer evaluates the reducer and returns the filtered rows of the
// target item as a materialized override, plus the before/after row counts.
func applyReducer(b *block, red *Reducer, planner *engine.Planner) (*engine.MaterializedRel, [2]int, error) {
	op, err := planner.PlanSelect(red.Query, b.env)
	if err != nil {
		return nil, [2]int{}, fmt.Errorf("planning reducer for %s: %w", red.TargetAlias, err)
	}
	keyRows, err := engine.RunExec(planner.Exec, op)
	if err != nil {
		return nil, [2]int{}, err
	}
	keep := make(map[string]bool, len(keyRows))
	for _, r := range keyRows {
		keep[value.Key(r)] = true
	}

	// Locate the target item's source rows and bare schema.
	var it *item
	for _, cand := range b.items {
		if strings.EqualFold(cand.alias, red.TargetAlias) {
			it = cand
			break
		}
	}
	if it == nil {
		return nil, [2]int{}, fmt.Errorf("reducer target %q not found", red.TargetAlias)
	}
	srcSchema, srcRows, err := sourceOf(b, it)
	if err != nil {
		return nil, [2]int{}, err
	}
	keyIdx := make([]int, len(red.KeyCols))
	for i, c := range red.KeyCols {
		j, err := srcSchema.Resolve("", c.Name)
		if err != nil {
			return nil, [2]int{}, err
		}
		keyIdx[i] = j
	}
	var kept []value.Row
	keyVals := make([]value.Value, len(keyIdx))
	for _, r := range srcRows {
		for i, j := range keyIdx {
			keyVals[i] = r[j]
		}
		if keep[value.Key(keyVals)] {
			kept = append(kept, r)
		}
	}
	rel := &engine.MaterializedRel{
		Name:   it.ref.Name + "⋉reducer",
		Schema: srcSchema,
		Rows:   kept,
	}
	return rel, [2]int{len(srcRows), len(kept)}, nil
}

// sourceOf returns the bare-name schema and rows backing a FROM item.
func sourceOf(b *block, it *item) (value.Schema, []value.Row, error) {
	if rel, ok := b.env[strings.ToLower(it.ref.Name)]; ok {
		return rel.Schema, rel.Rows, nil
	}
	t, err := b.cat.Get(it.ref.Name)
	if err != nil {
		return nil, nil, err
	}
	bare := make(value.Schema, len(t.Schema))
	for i, c := range t.Schema {
		bare[i] = value.Column{Name: c.Name, Type: c.Type}
	}
	return bare, t.Rows, nil
}
