package iceberg

import (
	"fmt"
	"testing"

	"smarticeberg/internal/value"
)

// figureQueries are the workloads behind the paper's figures that the
// differential tests exercise (newTestCatalog loads all four tables).
func figureQueries() map[string]string {
	return map[string]string{
		"skyband": skybandSQL,
		"basket":  basketSQL,
		"pairs":   pairsSQL,
		"complex": complexSQL,
	}
}

// requireIdenticalResults demands byte-identical results — same row order,
// same values, no float rounding — which is the parallel loop's contract
// with the sequential one (DESIGN.md, "Parallel NLJP"), strictly stronger
// than assertSameRows' sorted-and-rounded comparison.
func requireIdenticalResults(t *testing.T, name string, want, got []value.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: row %d has %d columns, want %d", name, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d col %d = %#v, want %#v", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestParallelNLJPDeterminism: for every figure workload and every worker
// count, the parallel binding loop returns results byte-identical to
// workers=1 (exact row order, exact float bits), and the cache statistics
// satisfy the accounting invariant
//
//	MemoHits + PruneHits + InnerEvals == Bindings
//
// (each binding takes exactly one of the three paths, also when workers
// race on the shared cache).
func TestParallelNLJPDeterminism(t *testing.T) {
	cat := newTestCatalog(t, 7, 250)
	for qname, sql := range figureQueries() {
		base := runBaseline(t, cat, sql)
		seqRes, seqReport := runOpt(t, cat, sql, AllOn())
		assertSameRows(t, qname+" sequential", base, seqRes.Rows, seqReport)
		checkStatsInvariant(t, qname+" sequential", seqReport)

		for _, w := range []int{2, 4, -1} {
			opts := AllOn()
			opts.Workers = w
			res, report := runOpt(t, cat, sql, opts)
			name := fmt.Sprintf("%s workers=%d", qname, w)
			requireIdenticalResults(t, name, seqRes.Rows, res.Rows)
			checkStatsInvariant(t, name, report)
		}
	}
}

// TestParallelRespectsBindingOrder: the exploration-order lever composes
// with the parallel loop — sorted bindings are chunked in sorted order, so
// results stay identical to the sequential sorted run.
func TestParallelRespectsBindingOrder(t *testing.T) {
	cat := newTestCatalog(t, 11, 200)
	for _, order := range []string{"asc", "desc"} {
		seqOpts := AllOn()
		seqOpts.BindingOrder = order
		seqRes, _ := runOpt(t, cat, skybandSQL, seqOpts)

		parOpts := seqOpts
		parOpts.Workers = 4
		parRes, report := runOpt(t, cat, skybandSQL, parOpts)
		name := "order=" + order + " workers=4"
		requireIdenticalResults(t, name, seqRes.Rows, parRes.Rows)
		checkStatsInvariant(t, name, report)
	}
}

// TestSequentialScratchReuseMatchesLegacy: the allocation-lean sequential
// path must agree with the baseline across all option combinations (guards
// the scratch-reuse rewrite of the hot loop, not just the parallel fan-out).
func TestSequentialScratchReuseMatchesLegacy(t *testing.T) {
	cat := newTestCatalog(t, 3, 150)
	for qname, sql := range figureQueries() {
		base := runBaseline(t, cat, sql)
		for cname, opts := range optionCombos() {
			res, report := runOpt(t, cat, sql, opts)
			assertSameRows(t, qname+" "+cname, base, res.Rows, report)
			checkStatsInvariant(t, qname+" "+cname, report)
		}
	}
}

func checkStatsInvariant(t *testing.T, name string, report *Report) {
	t.Helper()
	for _, blk := range report.Blocks {
		st := blk.Stats
		if st.Bindings == 0 {
			continue
		}
		if got := st.MemoHits + st.PruneHits + st.InnerEvals; got != st.Bindings {
			t.Errorf("%s block %s: MemoHits(%d) + PruneHits(%d) + InnerEvals(%d) = %d, want Bindings = %d",
				name, blk.Name, st.MemoHits, st.PruneHits, st.InnerEvals, got, st.Bindings)
		}
	}
}
