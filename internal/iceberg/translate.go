package iceberg

import (
	"fmt"
	"math"
	"math/big"

	"smarticeberg/internal/lincon"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// translator converts qualified SQL predicates into lincon formulas, mapping
// column references to constraint variables. Numeric columns become Numeric
// variables supporting linear arithmetic; string and boolean columns become
// Uninterpreted variables supporting only (dis)equality.
type translator struct {
	sys   *lincon.System
	vars  map[string]lincon.Var // qualified attr -> variable
	kinds map[string]value.Kind
}

func newTranslator(sys *lincon.System) *translator {
	return &translator{sys: sys, vars: map[string]lincon.Var{}, kinds: map[string]value.Kind{}}
}

// bind registers a variable for a column under the attribute name key.
func (t *translator) bind(key, displayName string, kind value.Kind) lincon.Var {
	lk := lincon.Numeric
	if !kind.Numeric() {
		lk = lincon.Uninterpreted
	}
	v := t.sys.NewVar(displayName, lk)
	t.vars[key] = v
	t.kinds[key] = kind
	return v
}

// toFormula translates a boolean SQL expression. Column references resolve
// through the remap function (allowing the same predicate to be instantiated
// for both w and w' variable sets).
func (t *translator) toFormula(e sqlparser.Expr, attrKey func(*sqlparser.ColRef) string) (*lincon.Formula, error) {
	switch e := e.(type) {
	case *sqlparser.BinOp:
		switch e.Op {
		case sqlparser.OpAnd:
			l, err := t.toFormula(e.L, attrKey)
			if err != nil {
				return nil, err
			}
			r, err := t.toFormula(e.R, attrKey)
			if err != nil {
				return nil, err
			}
			return lincon.And(l, r), nil
		case sqlparser.OpOr:
			l, err := t.toFormula(e.L, attrKey)
			if err != nil {
				return nil, err
			}
			r, err := t.toFormula(e.R, attrKey)
			if err != nil {
				return nil, err
			}
			return lincon.Or(l, r), nil
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			return t.comparison(e, attrKey)
		}
		return nil, fmt.Errorf("untranslatable operator %q", e.Op)
	case *sqlparser.UnOp:
		if e.Op == "NOT" {
			inner, err := t.toFormula(e.E, attrKey)
			if err != nil {
				return nil, err
			}
			return lincon.Not(inner), nil
		}
		return nil, fmt.Errorf("untranslatable unary %q in predicate", e.Op)
	}
	return nil, fmt.Errorf("untranslatable predicate %s", e.String())
}

func (t *translator) comparison(e *sqlparser.BinOp, attrKey func(*sqlparser.ColRef) string) (*lincon.Formula, error) {
	lNum := t.isNumeric(e.L, attrKey)
	rNum := t.isNumeric(e.R, attrKey)
	if lNum && rNum {
		l, err := t.linear(e.L, attrKey)
		if err != nil {
			return nil, err
		}
		r, err := t.linear(e.R, attrKey)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case sqlparser.OpEq:
			return lincon.AtomF(lincon.LinEQ(l, r)), nil
		case sqlparser.OpNe:
			return lincon.Or(lincon.AtomF(lincon.LinLT(l, r)), lincon.AtomF(lincon.LinLT(r, l))), nil
		case sqlparser.OpLt:
			return lincon.AtomF(lincon.LinLT(l, r)), nil
		case sqlparser.OpLe:
			return lincon.AtomF(lincon.LinLE(l, r)), nil
		case sqlparser.OpGt:
			return lincon.AtomF(lincon.LinLT(r, l)), nil
		default:
			return lincon.AtomF(lincon.LinLE(r, l)), nil
		}
	}
	// Uninterpreted comparison: only equality forms are supported.
	if e.Op != sqlparser.OpEq && e.Op != sqlparser.OpNe {
		return nil, fmt.Errorf("order comparison on non-numeric operands: %s", e.String())
	}
	neg := e.Op == sqlparser.OpNe
	lc, lok := e.L.(*sqlparser.ColRef)
	rc, rok := e.R.(*sqlparser.ColRef)
	switch {
	case lok && rok:
		a := lincon.UEq(t.varOf(lc, attrKey), t.varOf(rc, attrKey))
		if neg {
			a.Neg = true
		}
		return lincon.AtomF(a), nil
	case lok:
		lit, ok := e.R.(*sqlparser.Lit)
		if !ok {
			return nil, fmt.Errorf("untranslatable comparison %s", e.String())
		}
		a := lincon.UEqConst(t.varOf(lc, attrKey), lit.Val)
		if neg {
			a.Neg = true
		}
		return lincon.AtomF(a), nil
	case rok:
		lit, ok := e.L.(*sqlparser.Lit)
		if !ok {
			return nil, fmt.Errorf("untranslatable comparison %s", e.String())
		}
		a := lincon.UEqConst(t.varOf(rc, attrKey), lit.Val)
		if neg {
			a.Neg = true
		}
		return lincon.AtomF(a), nil
	}
	return nil, fmt.Errorf("untranslatable comparison %s", e.String())
}

func (t *translator) varOf(c *sqlparser.ColRef, attrKey func(*sqlparser.ColRef) string) lincon.Var {
	return t.vars[attrKey(c)]
}

// isNumeric reports whether the expression is numeric-typed under the
// current bindings.
func (t *translator) isNumeric(e sqlparser.Expr, attrKey func(*sqlparser.ColRef) string) bool {
	switch e := e.(type) {
	case *sqlparser.Lit:
		return e.Val.K.Numeric()
	case *sqlparser.ColRef:
		k, ok := t.kinds[attrKey(e)]
		return ok && k.Numeric()
	case *sqlparser.BinOp:
		switch e.Op {
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
			return t.isNumeric(e.L, attrKey) && t.isNumeric(e.R, attrKey)
		}
		return false
	case *sqlparser.UnOp:
		return e.Op == "-" && t.isNumeric(e.E, attrKey)
	}
	return false
}

// linear converts a numeric scalar expression into a linear form.
// Multiplication requires one constant side; division a constant divisor.
func (t *translator) linear(e sqlparser.Expr, attrKey func(*sqlparser.ColRef) string) (lincon.Linear, error) {
	switch e := e.(type) {
	case *sqlparser.Lit:
		if !e.Val.K.Numeric() {
			return lincon.Linear{}, fmt.Errorf("non-numeric literal %s", e.String())
		}
		f := e.Val.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return lincon.Linear{}, fmt.Errorf("non-finite literal %s", e.String())
		}
		return lincon.LinConst(f), nil
	case *sqlparser.ColRef:
		v, ok := t.vars[attrKey(e)]
		if !ok {
			return lincon.Linear{}, fmt.Errorf("unbound column %s", e.String())
		}
		return lincon.LinVar(v), nil
	case *sqlparser.UnOp:
		if e.Op != "-" {
			return lincon.Linear{}, fmt.Errorf("untranslatable unary %q", e.Op)
		}
		inner, err := t.linear(e.E, attrKey)
		if err != nil {
			return lincon.Linear{}, err
		}
		return inner.Scale(-1), nil
	case *sqlparser.BinOp:
		l, err := t.linear(e.L, attrKey)
		if err != nil {
			return lincon.Linear{}, err
		}
		r, err := t.linear(e.R, attrKey)
		if err != nil {
			return lincon.Linear{}, err
		}
		switch e.Op {
		case sqlparser.OpAdd:
			return l.Add(r), nil
		case sqlparser.OpSub:
			return l.Sub(r), nil
		case sqlparser.OpMul:
			if l.IsConst() {
				return r.ScaleRat(l.ConstRat()), nil
			}
			if r.IsConst() {
				return l.ScaleRat(r.ConstRat()), nil
			}
			return lincon.Linear{}, fmt.Errorf("non-linear product %s", e.String())
		case sqlparser.OpDiv:
			if c := r.ConstRat(); r.IsConst() && c != nil && c.Sign() != 0 {
				return l.ScaleRat(new(big.Rat).Inv(c)), nil
			}
			return lincon.Linear{}, fmt.Errorf("non-linear quotient %s", e.String())
		}
	}
	return lincon.Linear{}, fmt.Errorf("untranslatable numeric expression %s", e.String())
}
