package iceberg

import (
	"fmt"
	"math/big"
	"strings"

	"smarticeberg/internal/lincon"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// PrunePredicate is the automatically derived subsumption test of
// Section 5.2. Internally it stores D = ¬p⪰ — the result of eliminating the
// inner relation's variables from Θ(w',w_r) ∧ ¬Θ(w,w_r) — as a DNF over the
// outer binding variables w (indexed by 𝕁_L position) and the cached
// binding's variables w'.
//
// Check answers "does the cached unpromising binding make the candidate
// binding unpromising?", with the role assignment depending on Φ's
// monotonicity per Theorem 3:
//
//	anti-monotone Φ: prune when cand ⪰ cached → p⪰(w:=cand, w':=cached)
//	monotone Φ:      prune when cand ⪯ cached → p⪰(w:=cached, w':=cand)
type PrunePredicate struct {
	sys    *lincon.System
	notP   lincon.DNF
	wVars  []lincon.Var // one per 𝕁_L column
	wpVars []lincon.Var
	class  Monotonicity

	// Cache-index hints extracted from the predicate (the "CI" configuration
	// of Figure 4): 𝕁_L positions that must be exactly equal between
	// candidate and cached binding, and at most one position with a total-
	// order bound.
	EqIdx         []int
	RangeIdx      int  // -1 when absent
	RangeCachedGE bool // true: only cached[RangeIdx] >= cand[RangeIdx] can match
}

// DerivePrune derives the pruning predicate for a join condition Θ given as
// crossing conjuncts, the ordered 𝕁_L columns (with types from the block),
// the 𝕁_R columns, and Φ's monotonicity class. An error means pruning is
// not available for this query (the caller falls back to memoization only).
func DerivePrune(b *block, jL []*sqlparser.ColRef, jR []*sqlparser.ColRef, crossing []sqlparser.Expr, class Monotonicity) (*PrunePredicate, error) {
	if class == Neither {
		return nil, fmt.Errorf("HAVING condition is neither monotone nor anti-monotone")
	}
	sys := lincon.NewSystem()
	tr := newTranslator(sys)

	p := &PrunePredicate{sys: sys, class: class, RangeIdx: -1}
	typeOf := func(c *sqlparser.ColRef) value.Kind {
		if i, err := b.combined.Resolve(c.Qualifier, c.Name); err == nil {
			return b.combined[i].Type
		}
		return value.Float
	}
	// Allocate w, w', and w_r variables.
	for _, c := range jL {
		p.wVars = append(p.wVars, tr.bind("w:"+colAttr(c), c.String(), typeOf(c)))
	}
	for _, c := range jL {
		p.wpVars = append(p.wpVars, tr.bind("wp:"+colAttr(c), c.String()+"'", typeOf(c)))
	}
	elim := map[lincon.Var]bool{}
	for _, c := range jR {
		v := tr.bind("wr:"+colAttr(c), c.String(), typeOf(c))
		elim[v] = true
	}

	jLSet := map[string]bool{}
	for _, c := range jL {
		jLSet[colAttr(c)] = true
	}
	keyFor := func(prefix string) func(*sqlparser.ColRef) string {
		return func(c *sqlparser.ColRef) string {
			if jLSet[colAttr(c)] {
				return prefix + colAttr(c)
			}
			return "wr:" + colAttr(c)
		}
	}
	var thetaW, thetaWp []*lincon.Formula
	for _, c := range crossing {
		fw, err := tr.toFormula(c, keyFor("w:"))
		if err != nil {
			return nil, err
		}
		fwp, err := tr.toFormula(c, keyFor("wp:"))
		if err != nil {
			return nil, err
		}
		thetaW = append(thetaW, fw)
		thetaWp = append(thetaWp, fwp)
	}

	// D := ∃ w_r . Θ(w', w_r) ∧ ¬Θ(w, w_r); p⪰ = ¬D.
	f := lincon.And(lincon.And(thetaWp...), lincon.Not(lincon.And(thetaW...)))
	d, err := lincon.EliminateExists(sys, f, elim)
	if err != nil {
		return nil, err
	}
	for _, v := range d.Vars() {
		if elim[v] {
			return nil, fmt.Errorf("internal: inner variable %s not eliminated", sys.Name(v))
		}
	}
	p.notP = d
	p.extractIndexHints()
	return p, nil
}

// Check implements prune(ℓ, C) for one cached entry (Theorem 3).
func (p *PrunePredicate) Check(cand, cached []value.Value) bool {
	var w, wp []value.Value
	if p.class == AntiMonotone {
		w, wp = cand, cached
	} else {
		w, wp = cached, cand
	}
	res, err := p.notP.Eval(func(v lincon.Var) value.Value {
		for i, wv := range p.wVars {
			if wv == v {
				return w[i]
			}
		}
		for i, wv := range p.wpVars {
			if wv == v {
				return wp[i]
			}
		}
		return value.NullValue
	})
	if err != nil {
		return false // evaluation failure means "cannot prove", never prune
	}
	return !res
}

// String renders the subsumption predicate p⪰ as the negation of the
// eliminated DNF (matching how Example 11 presents the derivation).
func (p *PrunePredicate) String() string {
	return "NOT [" + p.notP.String(p.sys) + "]"
}

// Class returns the monotonicity the predicate was derived under.
func (p *PrunePredicate) Class() Monotonicity { return p.class }

// extractIndexHints scans single-atom disjuncts of D for constraints that a
// cache index can exploit: w_i ≠ w'_i disjuncts force equality (hash
// partition) and w_i - w'_i bounds force a one-sided range (sorted scan).
func (p *PrunePredicate) extractIndexHints() {
	pos := func(v lincon.Var, vars []lincon.Var) int {
		for i, x := range vars {
			if x == v {
				return i
			}
		}
		return -1
	}
	for _, conj := range p.notP {
		if len(conj) != 1 {
			continue
		}
		a := conj[0]
		if !a.IsLin {
			// ¬(x ≠ y) = x = y: candidate and cached must agree on this
			// 𝕁_L position.
			if a.Neg && !a.YIsConst {
				i := pos(a.X, p.wVars)
				j := pos(a.Y, p.wpVars)
				if i < 0 {
					i = pos(a.Y, p.wVars)
					j = pos(a.X, p.wpVars)
				}
				if i >= 0 && i == j {
					p.EqIdx = append(p.EqIdx, i)
				}
			}
			continue
		}
		if p.RangeIdx >= 0 || a.Op == lincon.OpEQ || len(a.Lin.Terms) != 2 || ratNonZero(a.Lin.ConstRat()) {
			continue
		}
		t0, t1 := a.Lin.Terms[0], a.Lin.Terms[1]
		if !(isIntCoeff(t0.Coeff, 1) && isIntCoeff(t1.Coeff, -1)) &&
			!(isIntCoeff(t0.Coeff, -1) && isIntCoeff(t1.Coeff, 1)) {
			continue
		}
		// Identify which term is w and which is w', at the same 𝕁_L index.
		iw, iwp := pos(t0.Var, p.wVars), pos(t1.Var, p.wpVars)
		cw := t0.Coeff
		if iw < 0 {
			iw, iwp = pos(t1.Var, p.wVars), pos(t0.Var, p.wpVars)
			cw = t1.Coeff
		}
		if iw < 0 || iw != iwp {
			continue
		}
		// Disjunct a (part of D = ¬p⪰): p implies ¬a.
		// a: cw·w_i - cw·w'_i < 0. ¬a: cw·(w_i - w'_i) >= 0.
		//   cw=+1 → w_i >= w'_i;  cw=-1 → w_i <= w'_i.
		wGEwp := cw.Sign() > 0
		// Map to candidate/cached roles.
		var cachedGE bool
		if p.class == AntiMonotone { // w = cand, w' = cached
			cachedGE = !wGEwp
		} else { // w = cached, w' = cand
			cachedGE = wGEwp
		}
		p.RangeIdx = iw
		p.RangeCachedGE = cachedGE
	}
	// Deduplicate EqIdx.
	seen := map[int]bool{}
	var eq []int
	for _, i := range p.EqIdx {
		if !seen[i] {
			seen[i] = true
			eq = append(eq, i)
		}
	}
	p.EqIdx = eq
}

func ratNonZero(r *big.Rat) bool { return r != nil && r.Sign() != 0 }

func isIntCoeff(r *big.Rat, want int64) bool {
	return r != nil && r.IsInt() && r.Num().IsInt64() && r.Num().Int64() == want
}

// describeHints summarizes the extracted index hints for reports.
func (p *PrunePredicate) describeHints(jL []*sqlparser.ColRef) string {
	var parts []string
	for _, i := range p.EqIdx {
		parts = append(parts, "eq:"+jL[i].String())
	}
	if p.RangeIdx >= 0 {
		dir := "<="
		if p.RangeCachedGE {
			dir = ">="
		}
		parts = append(parts, "range:cached."+jL[p.RangeIdx].String()+dir+"cand")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
