package iceberg

import (
	"fmt"
	"math/rand"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/lincon"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// randomCatalog builds two small tables with narrow value domains so joins
// hit often and HAVING thresholds straddle group sizes. keyed controls
// whether A gets a primary key (exercising both the key and non-key safety
// paths of Theorems 2 and 3).
func randomCatalog(rng *rand.Rand, keyedA, keyedB bool) *storage.Catalog {
	cat := storage.NewCatalog()
	makeTable := func(name string, keyed bool) *storage.Table {
		var pk []string
		if keyed {
			pk = []string{"id"}
		}
		t := storage.NewTable(name, []value.Column{
			{Name: "id", Type: value.Int},
			{Name: "g", Type: value.Int},
			{Name: "j", Type: value.Int},
			{Name: "x", Type: value.Float},
			{Name: "y", Type: value.Float},
			{Name: "v", Type: value.Int},
		}, pk)
		t.Positive["v"] = true
		n := 8 + rng.Intn(25)
		for i := 0; i < n; i++ {
			id := int64(i)
			if !keyed && rng.Intn(4) == 0 && i > 0 {
				id = int64(rng.Intn(i)) // duplicate ids allowed without a PK
			}
			t.Rows = append(t.Rows, value.Row{
				value.NewInt(id),
				value.NewInt(int64(rng.Intn(4))),
				value.NewInt(int64(rng.Intn(5))),
				value.NewFloat(float64(rng.Intn(6))),
				value.NewFloat(float64(rng.Intn(6))),
				value.NewInt(int64(1 + rng.Intn(9))),
			})
		}
		return t
	}
	cat.Put(makeTable("A", keyedA))
	cat.Put(makeTable("B", keyedB))
	return cat
}

// randomIcebergQuery assembles a two-relation iceberg query from random
// pieces: join condition, grouping attributes, HAVING aggregate/threshold.
func randomIcebergQuery(rng *rand.Rand) string {
	tableB := "B"
	if rng.Intn(2) == 0 {
		tableB = "A" // self-join
	}
	joins := []string{
		"l.j = r.j",
		"l.x <= r.x AND l.y <= r.y",
		"l.x <= r.x AND l.y <= r.y AND (l.x < r.x OR l.y < r.y)",
		"l.j = r.j AND l.x < r.x",
		"l.x < r.x OR l.y < r.y",
		"l.j = r.j AND l.g = r.g",
		"l.x + l.y <= r.x + r.y",
		"l.x <= r.x AND l.x >= r.x - 2",
		"l.j = r.x + r.y",
		"l.j = r.j AND l.g = r.x - r.y",
		// Non-unit coefficients exercise exact rational arithmetic inside
		// Fourier–Motzkin elimination.
		"l.x * 3 <= r.x * 2 + 1",
		"l.x / 2 < r.y AND l.y <= r.x * 3",
	}
	join := joins[rng.Intn(len(joins))]

	groupings := [][]string{
		{"l.id"},
		{"l.g"},
		{"l.id", "l.g"},
		{"l.g", "r.g"},
		{"l.id", "r.g"},
	}
	grouping := groupings[rng.Intn(len(groupings))]

	aggs := []string{
		"COUNT(*)", "COUNT(r.v)", "SUM(r.v)", "MIN(r.x)", "MAX(r.y)", "AVG(r.v)",
		"COUNT(DISTINCT r.j)",
		// L-side aggregates exercise a-priori on the grouped side (and the
		// NLJP-inapplicable fallback paths).
		"SUM(l.v)", "MIN(l.x)", "MAX(l.y)", "COUNT(l.j)",
	}
	agg := aggs[rng.Intn(len(aggs))]
	cmps := []string{">=", "<=", ">", "<"}
	cmp := cmps[rng.Intn(len(cmps))]
	threshold := 1 + rng.Intn(12)

	sel := "SELECT "
	for _, g := range grouping {
		sel += g + ", "
	}
	sel += agg
	where := join
	groupBy := ""
	for i, g := range grouping {
		if i > 0 {
			groupBy += ", "
		}
		groupBy += g
	}
	return fmt.Sprintf("%s FROM A l, %s r WHERE %s GROUP BY %s HAVING %s %s %d",
		sel, tableB, where, groupBy, agg, cmp, threshold)
}

// TestRandomQueriesDifferential is the main fuzz-style safety net: hundreds
// of random iceberg queries over random instances, each executed under
// every optimizer configuration, must reproduce the baseline result
// exactly. It exercises keyed and unkeyed inputs, self-joins, every
// aggregate, and both HAVING directions.
func TestRandomQueriesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20170514))
	combos := optionCombos()
	iterations := 250
	if testing.Short() {
		iterations = 60
	}
	for iter := 0; iter < iterations; iter++ {
		cat := randomCatalog(rng, rng.Intn(3) > 0, rng.Intn(3) > 0)
		sql := randomIcebergQuery(rng)
		baseRes, err := engine.Exec(cat, sql)
		if err != nil {
			t.Fatalf("iter %d: baseline %q: %v", iter, sql, err)
		}
		base := canonical(baseRes.Rows)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		for name, opts := range combos {
			res, report, err := Exec(cat, sel, opts)
			if err != nil {
				t.Fatalf("iter %d %s: %q: %v", iter, name, sql, err)
			}
			got := canonical(res.Rows)
			if len(got) != len(base) {
				t.Fatalf("iter %d %s: %q\nbaseline %d rows, optimized %d rows\nreport:\n%s",
					iter, name, sql, len(base), len(got), report.String())
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("iter %d %s: %q\nrow %d: %q vs %q\nreport:\n%s",
						iter, name, sql, i, base[i], got[i], report.String())
				}
			}
		}
	}
}

// TestSubsumptionSoundness checks Definition 4 directly: whenever the
// derived predicate claims w ⪰ w', the joining R-tuple sets must really
// nest, for random instances and every join-condition template.
func TestSubsumptionSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	joins := []string{
		"l.x <= r.x AND l.y <= r.y",
		"l.x <= r.x AND l.y <= r.y AND (l.x < r.x OR l.y < r.y)",
		"l.x < r.x OR l.y < r.y",
		"l.j = r.j AND l.x < r.x",
		"l.x + l.y <= r.x + r.y",
		"l.x <= r.x AND l.x >= r.x - 2",
	}
	for _, join := range joins {
		sql := "SELECT l.id, COUNT(*) FROM A l, B r WHERE " + join +
			" GROUP BY l.id HAVING COUNT(*) <= 3"
		cat := randomCatalog(rng, true, true)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := analyzeBlock(cat, sel, nil)
		if err != nil {
			t.Fatal(err)
		}
		outer := aliasSet([]*item{blk.items[0]})
		_, crossing, _ := blk.partitionConjuncts(outer)
		var jL, jR []*sqlparser.ColRef
		seen := map[string]bool{}
		for _, c := range crossing {
			for _, ref := range engine.ColumnsOf(c) {
				if seen[colAttr(ref)] {
					continue
				}
				seen[colAttr(ref)] = true
				if outer[ref.Qualifier] || ref.Qualifier == "l" {
					jL = append(jL, ref)
				} else {
					jR = append(jR, ref)
				}
			}
		}
		pred, err := DerivePrune(blk, jL, jR, crossing, AntiMonotone)
		if err != nil {
			t.Fatalf("%s: %v", join, err)
		}

		// Build an evaluator of Θ over explicit (w, r) values.
		concat := value.Schema{}
		for _, c := range jL {
			i, _ := blk.combined.Resolve(c.Qualifier, c.Name)
			concat = append(concat, blk.combined[i])
		}
		rTab, _ := cat.Get("B")
		concat = append(concat, rTab.Schema.Requalify("r")...)
		theta, err := blk.compileConj(crossing, concat)
		if err != nil {
			t.Fatal(err)
		}

		randomBinding := func() []value.Value {
			out := make([]value.Value, len(jL))
			for i, c := range jL {
				if c.Name == "j" {
					out[i] = value.NewInt(int64(rng.Intn(5)))
				} else {
					out[i] = value.NewFloat(float64(rng.Intn(6)))
				}
			}
			return out
		}
		joinsWith := func(w []value.Value, r value.Row) bool {
			row := make(value.Row, 0, len(w)+len(r))
			row = append(row, w...)
			row = append(row, r...)
			v, err := theta(row)
			if err != nil {
				t.Fatal(err)
			}
			return !v.IsNull() && v.Bool()
		}
		for trial := 0; trial < 400; trial++ {
			w, wp := randomBinding(), randomBinding()
			// Check(cand=w, cached=wp) under anti-monotone Φ asserts
			// R⋉w ⊇ R⋉wp.
			if !pred.Check(w, wp) {
				continue
			}
			for _, r := range rTab.Rows {
				if joinsWith(wp, r) && !joinsWith(w, r) {
					t.Fatalf("join %q: predicate claimed w=%v subsumes w'=%v but R-tuple %v joins only w'\npredicate: %s",
						join, w, wp, r, pred.String())
				}
			}
		}
	}
}

// compileConj is a test helper exposing Θ compilation over a schema.
func (b *block) compileConj(conjuncts []sqlparser.Expr, schema value.Schema) (func(value.Row) (value.Value, error), error) {
	p := &engine.Planner{Catalog: b.cat, UseIndexes: true}
	_ = p
	c, err := compileExprForTest(engine.AndAll(conjuncts), schema)
	return c, err
}

var _ = lincon.Numeric
