package iceberg

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// richEntry builds a cache entry exercising every persisted field: a mixed
// binding row, odd row counts, both unpromising flags, and partials whose
// min/max span the value kinds.
func richEntry(i int) *cacheEntry {
	return &cacheEntry{
		binding:     []value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("b%d", i)), value.NewFloat(float64(i) / 4)},
		rowCount:    int64(i)*7 + 1,
		unpromising: i%2 == 0,
		partials: []expr.Partial{
			{Count: int64(i), IntSum: int64(i) * 100, MinMax: value.NewInt(int64(i))},
			{Count: int64(i) + 1, FloatSum: float64(i) * 0.5, IsFloat: true, MinMax: value.NewStr("zz")},
			{MinMax: value.NullValue},
		},
	}
}

func entriesEqual(a, b *cacheEntry) bool {
	if a.rowCount != b.rowCount || a.unpromising != b.unpromising ||
		len(a.binding) != len(b.binding) || len(a.partials) != len(b.partials) {
		return false
	}
	for i := range a.binding {
		if a.binding[i] != b.binding[i] {
			return false
		}
	}
	for i := range a.partials {
		if a.partials[i] != b.partials[i] {
			return false
		}
	}
	return true
}

// TestCacheEntryCodec: the overflow codec round-trips every persisted field
// and rejects truncation at each boundary instead of misreading.
func TestCacheEntryCodec(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := richEntry(i)
		enc := encodeCacheEntry(nil, e)
		got, err := decodeCacheEntry(enc)
		if err != nil {
			t.Fatalf("entry %d: decode: %v", i, err)
		}
		if !entriesEqual(e, got) {
			t.Fatalf("entry %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, e)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := decodeCacheEntry(enc[:cut]); err == nil {
				t.Fatalf("entry %d: decode accepted a %d/%d-byte truncation", i, cut, len(enc))
			}
		}
	}
}

// overflowCache builds a sequential single-shard cache with a tiny limit
// backed by a real spill manager rooted in a test temp dir.
func overflowCache(t *testing.T, limit int, budget *resource.Budget) (*cache, *spill.Manager) {
	t.Helper()
	mgr, err := spill.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := mgr.Cleanup(); err != nil {
			t.Errorf("manager cleanup: %v", err)
		}
	})
	return newCache(nil, false, limit, 1, budget, mgr), mgr
}

// TestCacheOverflowRoundTrip: evicted entries stay reachable through the
// overflow tier with their exact contents, lookups count as spill hits, and
// closing the cache returns every accounted byte.
func TestCacheOverflowRoundTrip(t *testing.T) {
	budget := resource.NewBudget(1 << 20)
	c, mgr := overflowCache(t, 2, budget)
	const n = 6
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		e := richEntry(i)
		keys[i] = value.Key(e.binding)
		if err := c.insert([]byte(keys[i]), e); err != nil {
			t.Fatal(err)
		}
	}
	st := c.snapshot()
	if st.SpilledEntries != n-2 {
		t.Fatalf("SpilledEntries = %d, want %d", st.SpilledEntries, n-2)
	}
	for i := 0; i < n; i++ {
		e, ok, err := c.lookup([]byte(keys[i]))
		if err != nil || !ok {
			t.Fatalf("entry %d: lookup ok=%v err=%v, want a hit", i, ok, err)
		}
		if !entriesEqual(e, richEntry(i)) {
			t.Fatalf("entry %d: overflow returned different contents: %+v", i, e)
		}
		if i < n-2 && e.node != nil {
			t.Fatalf("entry %d: spilled hit carries a prune node", i)
		}
	}
	if st := c.snapshot(); st.SpillHits != n-2 {
		t.Fatalf("SpillHits = %d, want %d", st.SpillHits, n-2)
	}
	if got := mgr.Stats(); got.OverflowPuts != n-2 || got.OverflowGets != n-2 {
		t.Fatalf("manager counters = %+v, want %d puts and gets", got, n-2)
	}
	c.close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("budget.Used() = %d after close, want 0", used)
	}
}

// TestCacheOverflowFaults: every overflow IO failure degrades — a write
// fault turns the tier off for the run, a read fault or corrupt frame is a
// miss with the key dropped — and none of them ever surfaces as an error.
func TestCacheOverflowFaults(t *testing.T) {
	fill := func(t *testing.T, c *cache, n int) []string {
		t.Helper()
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			e := richEntry(i)
			keys[i] = value.Key(e.binding)
			if err := c.insert([]byte(keys[i]), e); err != nil {
				t.Fatal(err)
			}
		}
		return keys
	}

	t.Run("write-error-disables-tier", func(t *testing.T) {
		defer failpoint.Reset()
		c, _ := overflowCache(t, 1, nil)
		failpoint.Enable(failpoint.SpillWrite, failpoint.Once(failpoint.Error(errBoom)))
		keys := fill(t, c, 4)
		if !c.overflowOff.Load() {
			t.Fatal("write fault did not disable the overflow tier")
		}
		if st := c.snapshot(); st.SpilledEntries != 0 {
			t.Fatalf("SpilledEntries = %d after first-write fault, want 0", st.SpilledEntries)
		}
		// Evicted keys are plain misses now — never errors.
		if _, ok, err := c.lookup([]byte(keys[0])); ok || err != nil {
			t.Fatalf("lookup after tier-off: ok=%v err=%v, want clean miss", ok, err)
		}
		c.close()
	})

	t.Run("read-error-drops-key", func(t *testing.T) {
		defer failpoint.Reset()
		c, _ := overflowCache(t, 1, nil)
		keys := fill(t, c, 3)
		failpoint.Enable(failpoint.SpillRead, failpoint.Once(failpoint.Error(errBoom)))
		if _, ok, err := c.lookup([]byte(keys[0])); ok || err != nil {
			t.Fatalf("faulted read: ok=%v err=%v, want clean miss", ok, err)
		}
		if hits := failpoint.Hits(failpoint.SpillRead); hits == 0 {
			t.Fatal("spill/read never fired — lookup did not reach the index")
		}
		// The key was dropped, the tier stays on for the others.
		if c.overflow.Has([]byte(keys[0])) {
			t.Fatal("faulted key still present in the overflow index")
		}
		if _, ok, err := c.lookup([]byte(keys[1])); !ok || err != nil {
			t.Fatalf("healthy key after read fault: ok=%v err=%v, want hit", ok, err)
		}
		c.close()
	})

	t.Run("corrupt-frame-recomputes", func(t *testing.T) {
		defer failpoint.Reset()
		c, _ := overflowCache(t, 1, nil)
		keys := fill(t, c, 3)
		failpoint.Enable(failpoint.SpillCorrupt, failpoint.Once(failpoint.Error(errBoom)))
		if _, ok, err := c.lookup([]byte(keys[0])); ok || err != nil {
			t.Fatalf("corrupt read: ok=%v err=%v, want clean miss", ok, err)
		}
		st := c.snapshot()
		if st.SpillCorruptions != 1 {
			t.Fatalf("SpillCorruptions = %d, want 1", st.SpillCorruptions)
		}
		// Dropped, so the retry is a miss too — not an infinite corrupt loop.
		if _, ok, err := c.lookup([]byte(keys[0])); ok || err != nil {
			t.Fatalf("retry after corruption: ok=%v err=%v, want clean miss", ok, err)
		}
		c.close()
	})
}

// spillOpts returns the all-on configuration with the memo cache squeezed
// hard enough that the binding loop must evict, plus the disk overflow tier.
func spillOpts(t *testing.T, workers int) Options {
	opts := AllOn()
	opts.Workers = workers
	opts.CacheLimit = 4
	opts.Spill = true
	opts.SpillDir = t.TempDir()
	return opts
}

func assertSpillDirEmpty(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill parent dir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill parent dir not empty after query: %d entries, first %q", len(ents), ents[0].Name())
	}
}

// TestNLJPMemoOverflow: with a tiny memo limit and spilling on, the binding
// loop overflows evicted entries to disk, the rows stay identical to the
// baseline, the report shows the spill rung, and the query-scoped spill
// directory is gone afterwards — sequential and parallel alike.
func TestNLJPMemoOverflow(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	base := runBaseline(t, cat, skybandSQL)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testleak.Check(t)
			opts := spillOpts(t, workers)
			res, report, err := execOpt(cat, skybandSQL, opts)
			if err != nil {
				t.Fatalf("spilling run failed: %v", err)
			}
			assertSameRows(t, "skyband with memo overflow", base, res.Rows, report)
			st := report.TotalStats()
			if st.SpilledEntries == 0 {
				t.Fatalf("no entries spilled (stats %+v) — the overflow tier never engaged", st)
			}
			if report.Spill.OverflowPuts == 0 {
				t.Fatalf("manager counted no overflow puts: %+v", report.Spill)
			}
			found := false
			for _, r := range report.Degradations {
				if r == engine.DegradeSpill {
					found = true
				}
			}
			if !found {
				t.Fatalf("Degradations = %v, want the spill rung", report.Degradations)
			}
			assertSpillDirEmpty(t, opts.SpillDir)
		})
	}
}

// TestNLJPSpillFaultMatrix injects faults into the overflow tier during a
// full optimized run. Write and corruption faults must be invisible — the
// query completes with identical rows (the tier turns off or the entry is
// recomputed from source); a panic surfaces as exactly one typed error. In
// every case the spill directory is removed.
func TestNLJPSpillFaultMatrix(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	base := runBaseline(t, cat, skybandSQL)
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"write-error", "corrupt-frame", "write-panic"} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				switch mode {
				case "write-error":
					failpoint.Enable(failpoint.SpillWrite, failpoint.Once(failpoint.Error(errBoom)))
				case "corrupt-frame":
					// Every read of the overflow index returns a frame whose
					// checksum no longer matches.
					failpoint.Enable(failpoint.SpillCorrupt, failpoint.Error(errBoom))
				case "write-panic":
					failpoint.Enable(failpoint.SpillWrite, failpoint.Once(failpoint.Panic("spill fault")))
				}
				opts := spillOpts(t, workers)
				res, report, err := execOpt(cat, skybandSQL, opts)
				if mode == "write-panic" {
					if err == nil {
						t.Fatal("query succeeded through an injected panic")
					}
					var pe *engine.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("error = %v (%T), want *engine.PanicError", err, err)
					}
				} else {
					if err != nil {
						t.Fatalf("%s must stay invisible, got error: %v", mode, err)
					}
					assertSameRows(t, "skyband under "+mode, base, res.Rows, report)
				}
				if mode != "corrupt-frame" {
					if hits := failpoint.Hits(failpoint.SpillWrite); hits == 0 {
						t.Fatal("spill/write never fired — the overflow tier is not reachable")
					}
				}
				failpoint.Reset()
				assertSpillDirEmpty(t, opts.SpillDir)
			})
		}
	}
}
