package iceberg

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// diffRows reports the first byte-level difference between two result sets,
// usable off the test goroutine (unlike requireIdenticalResults).
func diffRows(want, got []value.Row) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d has %d columns, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("row %d col %d = %#v, want %#v", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}

// sharedOpts returns an all-on configuration wired to svc under key.
func sharedOpts(svc *CacheService, key string, workers int) Options {
	opts := AllOn()
	opts.SharedCache = svc
	opts.SharedKey = key
	opts.Workers = workers
	return opts
}

// TestSharedCacheCrossQueryHits: a second run of the same query against the
// same shared cache is served from memo entries the first run inserted — the
// whole point of promoting the cache to a process-wide service.
func TestSharedCacheCrossQueryHits(t *testing.T) {
	cat := newTestCatalog(t, 7, 200)
	svc := NewCacheService(nil)
	defer svc.Close()

	sel, err := sqlparser.ParseSelect(skybandSQL)
	if err != nil {
		t.Fatal(err)
	}
	base := runBaseline(t, cat, skybandSQL)

	res1, rep1, err := Exec(cat, sel, sharedOpts(svc, "k1", 1))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "warm run", base, res1.Rows, rep1)
	warm := rep1.TotalStats()
	if warm.InnerEvals == 0 {
		t.Fatalf("warm run evaluated nothing: %+v", warm)
	}

	res2, rep2, err := Exec(cat, sel, sharedOpts(svc, "k1", 1))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "cached run", base, res2.Rows, rep2)
	cached := rep2.TotalStats()
	if cached.MemoHits == 0 {
		t.Fatalf("second run saw no cross-query memo hits: %+v", cached)
	}
	if cached.InnerEvals != 0 {
		t.Fatalf("second run re-evaluated %d bindings despite a warm shared cache (%+v)", cached.InnerEvals, cached)
	}
	// Per-run delta accounting: the cached run's own counters must satisfy
	// the binding invariant on their own.
	if cached.MemoHits+cached.PruneHits+cached.InnerEvals != cached.Bindings {
		t.Fatalf("delta stats violate the binding invariant: %+v", cached)
	}
}

// TestSharedCacheKeyIsolation: different keys (a bumped table version, a
// different option fingerprint) must not share entries.
func TestSharedCacheKeyIsolation(t *testing.T) {
	cat := newTestCatalog(t, 7, 150)
	svc := NewCacheService(nil)
	defer svc.Close()
	sel, err := sqlparser.ParseSelect(skybandSQL)
	if err != nil {
		t.Fatal(err)
	}
	_, coldRep, err := Exec(cat, sel, AllOn())
	if err != nil {
		t.Fatal(err)
	}
	cold := coldRep.TotalStats()
	if _, _, err := Exec(cat, sel, sharedOpts(svc, "t:object@1", 1)); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Exec(cat, sel, sharedOpts(svc, "t:object@2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.TotalStats(); s.InnerEvals != cold.InnerEvals {
		t.Fatalf("run under a fresh key did %d inner evals, cold run does %d — keys leaked entries", s.InnerEvals, cold.InnerEvals)
	}
	if got := svc.Stats().Caches; got < 2 {
		t.Fatalf("expected separate caches per key, have %d", got)
	}
}

// TestSharedCacheInvalidate: retiring a table's caches frees their budget
// bytes and later runs start cold.
func TestSharedCacheInvalidate(t *testing.T) {
	cat := newTestCatalog(t, 7, 150)
	budget := resource.NewBudget(64 << 20)
	svc := NewCacheService(budget)
	sel, err := sqlparser.ParseSelect(skybandSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Exec(cat, sel, sharedOpts(svc, "t:object@1|q", 1)); err != nil {
		t.Fatal(err)
	}
	if budget.Used() == 0 {
		t.Fatal("shared cache reserved nothing against the service budget")
	}
	n := svc.Invalidate(func(key string) bool { return strings.Contains(key, "t:object@") })
	if n == 0 {
		t.Fatal("Invalidate matched no caches")
	}
	if budget.Used() != 0 {
		t.Fatalf("invalidated caches left %d budget bytes reserved", budget.Used())
	}
	// A post-invalidation run must behave like a cold run: same inner-eval
	// count as an unshared execution (intra-run memo hits are fine).
	_, coldRep, err := Exec(cat, sel, AllOn())
	if err != nil {
		t.Fatal(err)
	}
	cold := coldRep.TotalStats()
	_, rep, err := Exec(cat, sel, sharedOpts(svc, "t:object@2|q", 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.TotalStats(); s.InnerEvals != cold.InnerEvals {
		t.Fatalf("post-invalidation run did %d inner evals, cold run does %d: %+v", s.InnerEvals, cold.InnerEvals, s)
	}
	svc.Close()
	if budget.Used() != 0 {
		t.Fatalf("Close left %d budget bytes reserved", budget.Used())
	}
}

// TestSharedCacheInvalidateWhileReferenced: dooming a cache mid-run must not
// pull it out from under the running query; its bytes are returned when the
// last reference drops.
func TestSharedCacheInvalidateWhileReferenced(t *testing.T) {
	budget := resource.NewBudget(1 << 20)
	svc := NewCacheService(budget)
	c, release := svc.acquire("k", func() *cache {
		return newCache(nil, false, 0, 2, budget, nil)
	})
	e := &cacheEntry{binding: nil, rowCount: 1}
	if err := c.insert([]byte("b1"), e); err != nil {
		t.Fatal(err)
	}
	if budget.Used() == 0 {
		t.Fatal("insert reserved nothing")
	}
	if n := svc.Invalidate(func(string) bool { return true }); n != 1 {
		t.Fatalf("Invalidate retired %d caches, want 1", n)
	}
	// Doomed but referenced: still resident, still readable, bytes held.
	if _, ok, _ := c.lookup([]byte("b1")); !ok {
		t.Fatal("doomed cache dropped entries while still referenced")
	}
	if budget.Used() == 0 {
		t.Fatal("doomed cache released its bytes early")
	}
	release()
	if budget.Used() != 0 {
		t.Fatalf("last release left %d bytes reserved", budget.Used())
	}
	release() // idempotent
	if budget.Used() != 0 {
		t.Fatal("duplicate release changed accounting")
	}
}

// TestSharedCacheConcurrentRuns: many goroutines running the same query over
// one shared cache all get byte-identical results, and the service's summed
// counters cover every binding.
func TestSharedCacheConcurrentRuns(t *testing.T) {
	cat := newTestCatalog(t, 7, 150)
	svc := NewCacheService(nil)
	defer svc.Close()
	sel, err := sqlparser.ParseSelect(skybandSQL)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Exec(cat, sel, AllOn())
	if err != nil {
		t.Fatal(err)
	}
	const runs = 6
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := sharedOpts(svc, "conc", 2)
			res, _, err := Exec(cat, sel, opts)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = diffRows(want.Rows, res.Rows)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Bindings == 0 || st.MemoHits+st.PruneHits+st.InnerEvals != st.Bindings {
		t.Fatalf("service stats violate the binding invariant: %+v", st)
	}
}
