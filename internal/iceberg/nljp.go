package iceberg

import (
	"fmt"
	"sort"
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// NLJP is a constructed Nested-Loop Join with Pruning plan (Section 7).
// It is specified, exactly as in the paper, by four queries:
//
//	Q_B   — the binding query over the outer relation L (bindingOp)
//	Q_R(b)— the parameterized inner query over R (prober + residual + aggs)
//	Q_C(b)— the pruning query over the cache (pred, evaluated by the cache)
//	Q_P   — the post-processing query (having + output projection)
type NLJP struct {
	// Construction-time description, for Explain and the Report.
	OuterAliases []string
	InnerAliases []string
	JCols        []*sqlparser.ColRef
	GCols        []*sqlparser.ColRef
	ClassΦ       Monotonicity
	GLIsKey      bool
	Pred         *PrunePredicate // nil when pruning is off or unavailable
	Memo         bool
	CacheIndexed bool
	Notes        []string

	bindingOp     engine.Operator
	bindingSchema value.Schema
	jIdx, gIdx    []int

	innerRows   []value.Row
	innerSchema value.Schema
	prober      engine.Prober
	residual    expr.Compiled // over bindingSchema ++ innerSchema, may be nil

	aggs    []*expr.Aggregate // compiled over innerSchema
	havingC expr.Compiled     // over [G_L cols ++ agg slots]
	lamC    []expr.Compiled   // over the same layout
	outCols value.Schema

	bindingOrder string
	cacheLimit   int
	workers      int
	batchSize    int

	// shared/sharedKey select a process-wide cache from a CacheService in
	// place of a run-scoped one (Options.SharedCache); stats are then
	// reported as this run's delta over the shared counters.
	shared    *CacheService
	sharedKey string

	// ec carries the query's cancellation context and memory budget; nil
	// means background context, unlimited budget. reservedInner is the bytes
	// charged for the materialized inner relation, released by releaseInner.
	ec            *engine.ExecContext
	reservedInner int64

	stats CacheStats
}

// releaseInner returns the inner relation's budget reservation; the
// optimizer calls it once the NLJP result (or its fallback) is final.
func (n *NLJP) releaseInner() {
	n.ec.Release(n.reservedInner)
	n.reservedInner = 0
}

// checkCtx is the binding loop's rate-limited cancellation check, one
// context poll per 64 bindings (matching the engine's per-operator cadence).
func (n *NLJP) checkCtx(s *nljpScratch) error {
	s.tick++
	if s.tick%64 != 0 {
		return nil
	}
	return n.ec.Err()
}

// Stats returns the cache statistics of the last Run.
func (n *NLJP) Stats() CacheStats { return n.stats }

// Describe renders the NLJP configuration like an EXPLAIN block.
func (n *NLJP) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NLJP (outer {%s}, inner {%s})\n", strings.Join(n.OuterAliases, ", "), strings.Join(n.InnerAliases, ", "))
	fmt.Fprintf(&b, "  HAVING class: %s; G_L superkey of L: %v\n", n.ClassΦ, n.GLIsKey)
	fmt.Fprintf(&b, "  memoization: %v; pruning: %v; cache index: %v\n", n.Memo, n.Pred != nil, n.CacheIndexed)
	if n.Pred != nil {
		fmt.Fprintf(&b, "  pruning predicate p⪰(w,w') = %s\n", n.Pred.String())
		fmt.Fprintf(&b, "  cache index hints: %s\n", n.Pred.describeHints(n.JCols))
	}
	fmt.Fprintf(&b, "  Q_B:\n%s", indent(engine.Explain(n.bindingOp), "    "))
	fmt.Fprintf(&b, "  Q_R probe: %s (%d inner rows)\n", n.prober.Describe(), len(n.innerRows))
	for _, note := range n.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// buildNLJP implements pick_memprune of Appendix D for the minimal outer set
// that covers the GROUP BY attributes. It returns nil (no error) when the
// memoization/pruning techniques do not apply to this block.
func buildNLJP(b *block, overrides map[string]*engine.MaterializedRel, opts Options, ec *engine.ExecContext) (*NLJP, error) {
	if b.having == nil || b.groupBy == nil || len(b.groupBy) == 0 || len(b.items) < 2 {
		return nil, nil
	}
	// T_L: minimal item set covering 𝔾; everything else is the inner R.
	outerSet := map[string]bool{}
	for _, g := range b.groupBy {
		outerSet[strings.ToLower(g.Qualifier)] = true
	}
	var T, rest []*item
	for _, it := range b.items {
		if outerSet[strings.ToLower(it.alias)] {
			T = append(T, it)
		} else {
			rest = append(rest, it)
		}
	}
	if len(rest) == 0 {
		return nil, nil // the grouping attributes span every relation
	}
	tSet, restSet := aliasSet(T), aliasSet(rest)

	// Φ must be applicable to R (Section 5.1).
	if _, ok := b.havingApplicableTo(restSet); !ok {
		return nil, nil
	}
	// Λ aggregates must be computable over R (Section 6).
	aggSeen := map[string]*sqlparser.FuncCall{}
	var aggCalls []*sqlparser.FuncCall
	for _, it := range b.items_ {
		if it.Star {
			return nil, nil
		}
		engine.CollectAggregates(it.Expr, aggSeen, &aggCalls)
	}
	engine.CollectAggregates(b.having, aggSeen, &aggCalls)
	var remappedAggs []*sqlparser.FuncCall
	for _, call := range aggCalls {
		re, ok := b.remapExprInto(call, restSet)
		if !ok {
			return nil, nil
		}
		remappedAggs = append(remappedAggs, re.(*sqlparser.FuncCall))
	}
	// Non-aggregate output expressions must only use grouping columns; that
	// is enforced later when Λ compiles over the [𝔾_L ++ aggs] layout.

	within, crossing, withinR := b.partitionConjuncts(tSet)
	if len(crossing) == 0 {
		return nil, nil // cross product; nothing to prune or memoize on
	}

	// 𝕁_L and 𝕁_R: columns referenced by Θ on each side.
	var jL, jR []*sqlparser.ColRef
	seenJ := map[string]bool{}
	for _, c := range crossing {
		for _, ref := range engine.ColumnsOf(c) {
			key := colAttr(ref)
			if seenJ[key] {
				continue
			}
			seenJ[key] = true
			if tSet[strings.ToLower(ref.Qualifier)] {
				jL = append(jL, ref)
			} else {
				jR = append(jR, ref)
			}
		}
	}

	lFDs := b.fdSetFor(T)
	var gAttrs, jAttrs []string
	for _, g := range b.groupBy {
		gAttrs = append(gAttrs, colAttr(g))
	}
	for _, j := range jL {
		jAttrs = append(jAttrs, colAttr(j))
	}
	// Key checks require duplicate-free inputs for functional determination
	// to imply tuple identity (Theorem 3's "𝔾_L is a superkey of L").
	glIsKey := allUnique(T) && lFDs.Implies(gAttrs, attrsOf(T))
	jlIsKey := allUnique(T) && lFDs.Implies(jAttrs, attrsOf(T))

	class := ClassifyHaving(b.having, b.positiveFunc())

	n := &NLJP{
		JCols:   jL,
		GCols:   b.groupBy,
		ClassΦ:  class,
		GLIsKey: glIsKey,
	}
	for _, it := range T {
		n.OuterAliases = append(n.OuterAliases, it.alias)
	}
	for _, it := range rest {
		n.InnerAliases = append(n.InnerAliases, it.alias)
	}

	// Aggregate algebraic requirement (Section 6 / Appendix C): when 𝔾_L is
	// not a key of L, per-binding partials must be combined with f°.
	allAlgebraic := true
	for _, call := range remappedAggs {
		if call.Distinct {
			allAlgebraic = false
		}
	}
	if !glIsKey && !allAlgebraic {
		n.Notes = append(n.Notes, "NLJP rejected: non-algebraic aggregates with non-key G_L")
		return nil, nil
	}

	// Memoization conditions (Section 6).
	n.Memo = opts.Memo
	if n.Memo && jlIsKey {
		n.Memo = false
		n.Notes = append(n.Notes, "memoization disabled: J_L is a key of L (bindings never repeat)")
	}
	if n.Memo && !glIsKey && !allAlgebraic {
		n.Memo = false
	}

	// Pruning conditions (Theorem 3): Φ applicable to R (checked), 𝔾_L a
	// superkey of L, and for the anti-monotone case 𝔾_R = ∅ (holds by
	// construction of T_L).
	if opts.Prune && glIsKey && class != Neither {
		pred, err := DerivePrune(b, jL, jR, crossing, class)
		if err != nil {
			n.Notes = append(n.Notes, "pruning unavailable: "+err.Error())
		} else {
			n.Pred = pred
		}
	} else if opts.Prune {
		switch {
		case !glIsKey:
			n.Notes = append(n.Notes, "pruning unavailable: G_L is not a superkey of L")
		case class == Neither:
			n.Notes = append(n.Notes, "pruning unavailable: HAVING is neither monotone nor anti-monotone")
		}
	}
	if !n.Memo && n.Pred == nil {
		return nil, nil
	}
	n.CacheIndexed = opts.CacheIndex && n.Pred != nil
	n.bindingOrder = opts.BindingOrder
	n.cacheLimit = opts.CacheLimit
	n.workers = opts.Workers
	n.batchSize = opts.BatchSize
	n.shared = opts.SharedCache
	n.sharedKey = opts.SharedKey
	n.ec = ec

	// BatchSize routes the binding-side queries (Q_B and the inner relation)
	// through the engine's vectorized batch pipeline; Workers sizes the
	// morsel pools of any parallel scans those fragments plan.
	planner := &engine.Planner{Catalog: b.cat, UseIndexes: opts.UseIndexes, AliasOverrides: overrides, Exec: ec, BatchSize: opts.BatchSize, Workers: opts.Workers, NoZoneSkip: opts.NoSkip, NoTransfer: opts.NoTransfer}

	// --- Q_B: binding query over L ------------------------------------
	needL := append([]*sqlparser.ColRef(nil), jL...)
	seenL := map[string]bool{}
	for _, c := range jL {
		seenL[colAttr(c)] = true
	}
	for _, g := range b.groupBy {
		if !seenL[colAttr(g)] {
			seenL[colAttr(g)] = true
			needL = append(needL, g)
		}
	}
	bindingSel := &sqlparser.Select{}
	for _, it := range T {
		bindingSel.From = append(bindingSel.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
	}
	bindingSel.Where = engine.AndAll(within)
	for i, c := range needL {
		bindingSel.Items = append(bindingSel.Items, sqlparser.SelectItem{Expr: c, Alias: fmt.Sprintf("b%d", i)})
	}
	bindingOp, err := planner.PlanSelect(bindingSel, b.env)
	if err != nil {
		return nil, fmt.Errorf("planning Q_B: %w", err)
	}
	n.bindingOp = bindingOp
	n.bindingSchema = make(value.Schema, len(needL))
	for i, c := range needL {
		j, err := b.combined.Resolve(c.Qualifier, c.Name)
		if err != nil {
			return nil, err
		}
		n.bindingSchema[i] = value.Column{Qualifier: c.Qualifier, Name: c.Name, Type: b.combined[j].Type}
	}
	indexOfL := func(c *sqlparser.ColRef) int {
		for i, nc := range needL {
			if colAttr(nc) == colAttr(c) {
				return i
			}
		}
		return -1
	}
	for _, c := range jL {
		n.jIdx = append(n.jIdx, indexOfL(c))
	}
	for _, g := range b.groupBy {
		n.gIdx = append(n.gIdx, indexOfL(g))
	}

	// --- R: materialized inner relation --------------------------------
	innerSel := &sqlparser.Select{}
	var innerSchema value.Schema
	for _, it := range rest {
		innerSel.From = append(innerSel.From, &sqlparser.TableRef{Name: it.ref.Name, Alias: it.alias})
		for _, col := range it.schema {
			innerSel.Items = append(innerSel.Items,
				sqlparser.SelectItem{Expr: &sqlparser.ColRef{Qualifier: col.Qualifier, Name: col.Name},
					Alias: fmt.Sprintf("r%d", len(innerSel.Items))})
			innerSchema = append(innerSchema, col)
		}
	}
	innerSel.Where = engine.AndAll(withinR)
	innerOp, err := planner.PlanSelect(innerSel, b.env)
	if err != nil {
		return nil, fmt.Errorf("planning inner query: %w", err)
	}
	innerRows, err := engine.RunExecBatch(ec, innerOp, opts.BatchSize)
	if err != nil {
		return nil, err
	}
	// The inner relation stays materialized across the whole binding loop;
	// a budget failure here is caught by the optimizer, which falls back to
	// the baseline plan.
	n.reservedInner = resource.RowsBytes(innerRows)
	if err := ec.Charge("NLJP inner relation", n.reservedInner); err != nil {
		n.reservedInner = 0
		return nil, err
	}
	n.innerRows = innerRows
	n.innerSchema = innerSchema

	// --- Q_R(b): probing strategy for Θ --------------------------------
	if err := n.buildProber(b, crossing, opts); err != nil {
		return nil, err
	}

	// --- Aggregates over R ----------------------------------------------
	for _, call := range remappedAggs {
		a, err := expr.CompileAggregate(call, innerSchema, nil)
		if err != nil {
			return nil, fmt.Errorf("compiling aggregate %s over inner schema: %w", call.String(), err)
		}
		n.aggs = append(n.aggs, a)
	}

	// --- Q_P: HAVING and output over [𝔾_L ++ agg slots] ----------------
	aggOut := make(value.Schema, 0, len(b.groupBy)+len(aggCalls))
	repl := map[string]sqlparser.Expr{}
	for _, g := range b.groupBy {
		j, _ := b.combined.Resolve(g.Qualifier, g.Name)
		aggOut = append(aggOut, value.Column{Qualifier: g.Qualifier, Name: g.Name, Type: b.combined[j].Type})
	}
	for i, call := range aggCalls {
		name := fmt.Sprintf("$agg%d", i)
		typ := value.Float
		if call.Name == "COUNT" {
			typ = value.Int
		}
		aggOut = append(aggOut, value.Column{Name: name, Type: typ})
		repl[call.String()] = &sqlparser.ColRef{Name: name}
	}
	havingRewritten := engine.ReplaceExprs(b.having, repl)
	n.havingC, err = expr.Compile(havingRewritten, aggOut, nil)
	if err != nil {
		return nil, fmt.Errorf("compiling Q_P HAVING: %w", err)
	}
	for i, it := range b.items_ {
		rewritten := engine.ReplaceExprs(it.Expr, repl)
		c, err := expr.Compile(rewritten, aggOut, nil)
		if err != nil {
			return nil, fmt.Errorf("compiling output expression %s: %w", it.Expr.String(), err)
		}
		n.lamC = append(n.lamC, c)
		n.outCols = append(n.outCols, value.Column{Name: outputName(it, i), Type: value.Float})
	}

	if engine.Validate {
		if err := n.validate(); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func outputName(it sqlparser.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*sqlparser.ColRef); ok {
		return ref.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

// buildProber selects the inner probing strategy for Θ: hash on equality
// conjuncts, else a range restriction on one comparison, else a full scan;
// the remaining crossing conjuncts become a residual filter.
func (n *NLJP) buildProber(b *block, crossing []sqlparser.Expr, opts Options) error {
	concat := n.bindingSchema.Concat(n.innerSchema)
	outerSet := map[string]bool{}
	for _, c := range n.bindingSchema {
		outerSet[strings.ToLower(c.Qualifier)] = true
	}
	type split struct {
		outer sqlparser.Expr
		inner sqlparser.Expr
		op    string
	}
	classify := func(c sqlparser.Expr) *split {
		bin, ok := c.(*sqlparser.BinOp)
		if !ok {
			return nil
		}
		switch bin.Op {
		case sqlparser.OpEq, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		default:
			return nil
		}
		lIn := sideIn(bin.L, outerSet)
		rIn := sideIn(bin.R, outerSet)
		if lIn == 1 && rIn == -1 {
			return &split{outer: bin.L, inner: bin.R, op: bin.Op}
		}
		if lIn == -1 && rIn == 1 {
			return &split{outer: bin.R, inner: bin.L, op: flipCmp(bin.Op)}
		}
		return nil
	}

	var equis, ranges []*split
	splits := map[sqlparser.Expr]*split{}
	for _, c := range crossing {
		s := classify(c)
		if s == nil {
			continue
		}
		splits[c] = s
		if s.op == sqlparser.OpEq {
			equis = append(equis, s)
		} else if _, ok := s.inner.(*sqlparser.ColRef); ok {
			ranges = append(ranges, s)
		}
	}

	used := map[*split]bool{}
	switch {
	case len(equis) > 0:
		var outerKeys, innerKeys []expr.Compiled
		var labels []string
		for _, s := range equis {
			ok, err := expr.Compile(s.outer, n.bindingSchema, nil)
			if err != nil {
				return err
			}
			ik, err := expr.Compile(s.inner, n.innerSchema, nil)
			if err != nil {
				return err
			}
			outerKeys = append(outerKeys, ok)
			innerKeys = append(innerKeys, ik)
			labels = append(labels, s.outer.String()+" = "+s.inner.String())
			used[s] = true
		}
		n.prober = engine.NewHashProber(outerKeys, innerKeys, strings.Join(labels, " AND "))
	case opts.UseIndexes && len(ranges) > 0:
		s := ranges[0]
		oe, err := expr.Compile(s.outer, n.bindingSchema, nil)
		if err != nil {
			return err
		}
		col := s.inner.(*sqlparser.ColRef)
		ci, err := n.innerSchema.Resolve(col.Qualifier, col.Name)
		if err != nil {
			return err
		}
		n.prober = engine.NewRangeProber(oe, ci, s.op, s.outer.String()+" "+s.op+" "+s.inner.String())
		used[s] = true
	default:
		n.prober = engine.NewScanProber()
	}

	var residual []sqlparser.Expr
	for _, c := range crossing {
		if s, ok := splits[c]; ok && used[s] {
			continue
		}
		residual = append(residual, c)
	}
	if len(residual) > 0 {
		pred, err := expr.Compile(engine.AndAll(residual), concat, nil)
		if err != nil {
			return err
		}
		n.residual = pred
	}
	return n.prober.Build(n.innerRows)
}

// sideIn returns 1 if every column of e is in the alias set, -1 if none is,
// and 0 for mixed or column-free expressions.
func sideIn(e sqlparser.Expr, set map[string]bool) int {
	cols := engine.ColumnsOf(e)
	if len(cols) == 0 {
		return 0
	}
	in, out := 0, 0
	for _, c := range cols {
		if set[strings.ToLower(c.Qualifier)] {
			in++
		} else {
			out++
		}
	}
	switch {
	case out == 0:
		return 1
	case in == 0:
		return -1
	}
	return 0
}

// Run executes the NLJP loop of Section 7 and returns the final result.
// With workers > 1 the binding loop fans out across goroutines over the
// sharded cache; any other worker count runs the streaming sequential loop.
// Both paths produce byte-identical results (DESIGN.md, "Parallel NLJP").
// A binding-query Close failure is reported unless the loop already failed.
func (n *NLJP) Run() (res *engine.Result, err error) {
	n.stats = CacheStats{}
	workers := n.workers
	if workers < 0 {
		workers = engine.DefaultWorkers(0)
	}
	// The overflow tier only pays off when memoization is on: without it the
	// cache is never looked up, so spilled entries could never be served.
	var mgr *spill.Manager
	if n.Memo {
		mgr = n.ec.Spill()
	}
	var (
		c       *cache
		base    CacheStats // counters accrued by earlier runs of a shared cache
		release func()
	)
	if n.shared != nil && n.sharedKey != "" {
		// A shared cache outlives this run and may be hit by several runs at
		// once, so it is always sharded, charges the service's process-wide
		// budget, and never uses the query-scoped spill tier. Stats are
		// reported as this run's delta so cross-query memo hits are visible
		// per query.
		sw := workers
		if sw < 2 {
			sw = 2
		}
		c, release = n.shared.acquire(n.sharedKey, func() *cache {
			return newCache(n.Pred, n.CacheIndexed, n.cacheLimit, sw, n.shared.Budget(), nil)
		})
		base = c.snapshot()
	} else {
		c = newCache(n.Pred, n.CacheIndexed, n.cacheLimit, workers, n.ec.Budget(), mgr)
		release = c.close
	}
	defer func() {
		n.stats = c.snapshot().since(base)
		if n.stats.Degraded {
			n.ec.Degrade(engine.DegradeCacheShed)
		}
		if n.stats.SpilledEntries > 0 {
			n.ec.Degrade(engine.DegradeSpill)
		}
		release()
	}()
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, engine.NewPanicError("NLJP", r)
		}
	}()
	if workers > 1 {
		res, err = n.runParallel(c, workers)
	} else {
		res, err = n.runSequential(c)
	}
	if err == nil {
		// A cancel that landed after the last binding still invalidates the
		// result, mirroring engine.RunExec's end-of-stream check.
		if cerr := n.ec.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

// nljpGroup accumulates one 𝔾_L group when 𝔾_L is not a key of L.
type nljpGroup struct {
	gVals    []value.Value
	states   []*expr.State
	rowCount int64
}

// nljpScratch is one worker's reusable state for the binding loop. The hot
// path allocates nothing per binding beyond data that is genuinely retained:
// new cache entries, new groups, and output rows.
type nljpScratch struct {
	bVals     []value.Value // 𝕁_L values of the current binding
	gVals     []value.Value // 𝔾_L values of the current binding
	keyBuf    []byte        // AppendKeys target for binding and group keys
	states    []*expr.State // evalInner accumulators, Reset per call
	finStates []*expr.State // finalize-from-partials accumulators
	residRow  value.Row     // binding ++ inner row for the residual filter
	aggRow    value.Row     // [𝔾_L ++ agg slots] row for Φ and Λ
	probe     engine.ProbeScratch // allocation-free prober key buffers
	local     localStats    // per-binding counters, flushed in batches
	tick      uint32        // checkCtx rate limiter
}

func (n *NLJP) newScratch() *nljpScratch {
	s := &nljpScratch{
		bVals:     make([]value.Value, len(n.jIdx)),
		gVals:     make([]value.Value, len(n.gIdx)),
		keyBuf:    make([]byte, 0, 64),
		states:    make([]*expr.State, len(n.aggs)),
		finStates: make([]*expr.State, len(n.aggs)),
		aggRow:    make(value.Row, len(n.gIdx)+len(n.aggs)),
	}
	for i, a := range n.aggs {
		s.states[i] = a.NewState()
		s.finStates[i] = a.NewState()
	}
	if n.residual != nil {
		s.residRow = make(value.Row, len(n.bindingSchema)+len(n.innerSchema))
	}
	return s
}

// handleBinding advances one Q_B row through memoization lookup, the prune
// check, and — when both miss — the inner evaluation Q_R(b) plus cache
// insertion. It returns the binding's cache entry, or nil when the binding
// was pruned. Each binding increments exactly one of the memoHits /
// pruneHits / innerEvals counters (batched in s.local).
func (n *NLJP) handleBinding(row value.Row, c *cache, s *nljpScratch) (*cacheEntry, error) {
	if err := failpoint.Inject(failpoint.NLJPBinding); err != nil {
		return nil, err
	}
	s.local.bindings++
	for i, j := range n.jIdx {
		s.bVals[i] = row[j]
	}
	s.keyBuf = value.AppendKeys(s.keyBuf[:0], s.bVals)
	if n.Memo {
		hit, ok, err := c.lookup(s.keyBuf)
		if err != nil {
			return nil, err
		}
		if ok {
			s.local.memoHits++
			return hit, nil
		}
	}
	if n.Pred != nil && c.pruneMatch(s.bVals) {
		s.local.pruneHits++
		return nil, nil
	}
	e, err := n.evalInner(row, s)
	if err != nil {
		return nil, err
	}
	if err := c.insert(s.keyBuf, e); err != nil {
		return nil, err
	}
	return e, nil
}

// foldGroup folds one binding's cached partials into its 𝔾_L group. The
// operation sequence matches the sequential loop exactly (StateFromPartial
// on first sight, a Merge-equivalent MergePartial after), so aggregate
// floats stay bit-identical however bindings were scheduled.
func (n *NLJP) foldGroup(groupIdx map[string]*nljpGroup, groups *[]*nljpGroup, gVals []value.Value, key []byte, e *cacheEntry) {
	grp, ok := groupIdx[string(key)]
	if !ok {
		grp = &nljpGroup{
			gVals:    append([]value.Value(nil), gVals...),
			states:   statesFromPartials(n.aggs, e.partials),
			rowCount: e.rowCount,
		}
		groupIdx[string(key)] = grp
		*groups = append(*groups, grp)
		return
	}
	for i := range grp.states {
		grp.states[i].MergePartial(e.partials[i])
	}
	grp.rowCount += e.rowCount
}

// flushGroups finalizes the accumulated groups in first-seen order.
func (n *NLJP) flushGroups(s *nljpScratch, groups []*nljpGroup, out []value.Row) ([]value.Row, error) {
	for _, grp := range groups {
		r, ok, err := n.finalizeStates(s, grp.gVals, grp.states)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// runSequential is the single-threaded binding loop: Q_B streams through one
// scratch without being materialized.
func (n *NLJP) runSequential(c *cache) (res *engine.Result, err error) {
	nextBinding, closeBindings, err := n.bindingIterator()
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := closeBindings(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()

	s := n.newScratch()
	defer c.stats.addLocal(&s.local)

	var groups []*nljpGroup
	groupIdx := map[string]*nljpGroup{}
	var out []value.Row

	for {
		if err := n.checkCtx(s); err != nil {
			return nil, err
		}
		row, err := nextBinding()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		e, err := n.handleBinding(row, c, s)
		if err != nil {
			return nil, err
		}
		if e == nil || e.rowCount == 0 {
			continue // pruned, or (inner-join semantics) the group is empty
		}
		for i, j := range n.gIdx {
			s.gVals[i] = row[j]
		}
		if n.GLIsKey {
			r, ok, err := n.finalizePartials(s, s.gVals, e.partials)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
			continue
		}
		s.keyBuf = value.AppendKeys(s.keyBuf[:0], s.gVals)
		n.foldGroup(groupIdx, &groups, s.gVals, s.keyBuf, e)
	}

	out, err = n.flushGroups(s, groups, out)
	if err != nil {
		return nil, err
	}
	return &engine.Result{Columns: n.outCols, Rows: out}, nil
}

// runParallel materializes Q_B and fans the binding loop out across worker
// goroutines in contiguous chunks (engine.RunChunked). Each worker owns a
// scratch; results land in per-chunk sinks — output rows for the 𝔾_L-key
// fast path, per-binding group contributions otherwise — which are then
// folded in chunk-index order. That replay performs the exact per-binding
// operation sequence of the sequential loop, so results are byte-identical
// to workers=1 regardless of how chunks were scheduled; cache effects
// (which entries are resident when) may differ, which changes only the
// memo/prune hit counters, never results.
func (n *NLJP) runParallel(c *cache, workers int) (*engine.Result, error) {
	bindings, err := n.materializeBindings()
	if err != nil {
		return nil, err
	}
	if len(bindings) == 0 {
		return &engine.Result{Columns: n.outCols}, nil
	}

	type contrib struct {
		gVals []value.Value
		e     *cacheEntry
	}
	type chunkSink struct {
		out      []value.Row
		contribs []contrib
	}

	// Small chunks keep workers busy near the end of the index space; large
	// chunks amortize sink bookkeeping. The size never affects results.
	chunkSize := len(bindings) / (workers * 8)
	if chunkSize < 16 {
		chunkSize = 16
	}
	if chunkSize > 1024 {
		chunkSize = 1024
	}
	numChunks := (len(bindings) + chunkSize - 1) / chunkSize
	sinks := make([]chunkSink, numChunks)
	scratches := make([]*nljpScratch, workers)

	err = engine.RunChunked(len(bindings), chunkSize, workers, func(worker, chunk, lo, hi int) error {
		s := scratches[worker]
		if s == nil {
			s = n.newScratch()
			scratches[worker] = s
		}
		sink := &sinks[chunk]
		for _, row := range bindings[lo:hi] {
			if err := n.checkCtx(s); err != nil {
				return err
			}
			e, err := n.handleBinding(row, c, s)
			if err != nil {
				return err
			}
			if e == nil || e.rowCount == 0 {
				continue
			}
			for i, j := range n.gIdx {
				s.gVals[i] = row[j]
			}
			if n.GLIsKey {
				r, ok, err := n.finalizePartials(s, s.gVals, e.partials)
				if err != nil {
					return err
				}
				if ok {
					sink.out = append(sink.out, r)
				}
				continue
			}
			sink.contribs = append(sink.contribs, contrib{gVals: append([]value.Value(nil), s.gVals...), e: e})
		}
		c.stats.addLocal(&s.local)
		return nil
	})
	if err != nil {
		return nil, err
	}

	s := n.newScratch()
	var groups []*nljpGroup
	groupIdx := map[string]*nljpGroup{}
	var out []value.Row
	for i := range sinks {
		out = append(out, sinks[i].out...)
		for _, ct := range sinks[i].contribs {
			s.keyBuf = value.AppendKeys(s.keyBuf[:0], ct.gVals)
			n.foldGroup(groupIdx, &groups, ct.gVals, s.keyBuf, ct.e)
		}
	}
	out, err = n.flushGroups(s, groups, out)
	if err != nil {
		return nil, err
	}
	return &engine.Result{Columns: n.outCols, Rows: out}, nil
}

// materializeBindings drains Q_B into memory, applying the bindingOrder
// exploration-order lever when configured.
func (n *NLJP) materializeBindings() ([]value.Row, error) {
	rows, err := engine.RunExecBatch(n.ec, n.bindingOp, n.batchSize)
	if err != nil {
		return nil, err
	}
	if n.bindingOrder != "" && n.Pred != nil && n.Pred.RangeIdx >= 0 {
		sortRowsBy(rows, n.jIdx[n.Pred.RangeIdx], n.bindingOrder == "desc")
	}
	return rows, nil
}

// bindingIterator yields Q_B's rows, optionally sorted by the pruning
// predicate's range-hint column — the exploration-order lever Section 7
// leaves open. Processing the prune-dominant end first populates the cache
// with maximally useful unpromising entries.
func (n *NLJP) bindingIterator() (next func() (value.Row, error), cleanup func() error, err error) {
	if n.bindingOrder == "" || n.Pred == nil || n.Pred.RangeIdx < 0 {
		engine.Bind(n.bindingOp, n.ec)
		if err := n.bindingOp.Open(); err != nil {
			//lint:ignore closecheck the Open failure takes precedence; Close only releases partial state
			_ = n.bindingOp.Close()
			return nil, nil, err
		}
		return n.bindingOp.Next, n.bindingOp.Close, nil
	}
	rows, err := n.materializeBindings()
	if err != nil {
		return nil, nil, err
	}
	i := 0
	return func() (value.Row, error) {
		if i >= len(rows) {
			return nil, nil
		}
		r := rows[i]
		i++
		return r, nil
	}, func() error { return nil }, nil
}

func sortRowsBy(rows []value.Row, col int, desc bool) {
	sort.SliceStable(rows, func(a, b int) bool {
		cmp, _ := value.Compare(rows[a][col], rows[b][col])
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
}

func statesFromPartials(aggs []*expr.Aggregate, partials []expr.Partial) []*expr.State {
	states := make([]*expr.State, len(aggs))
	for i, a := range aggs {
		states[i] = a.StateFromPartial(partials[i])
	}
	return states
}

// evalInner runs Q_R(b): probe the materialized inner relation, apply the
// residual of Θ, and fold every matching R-tuple into the aggregates. The
// unpromising flag follows Definition 5 (with 𝔾_R = ∅ it reduces to ¬Φ).
// Accumulators and rows come from the scratch; only the returned cache
// entry is allocated (it outlives the call inside the cache).
func (n *NLJP) evalInner(bindingRow value.Row, s *nljpScratch) (*cacheEntry, error) {
	s.local.innerEvals++
	for _, st := range s.states {
		st.Reset()
	}
	matches, err := engine.ProbeInto(n.prober, bindingRow, &s.probe)
	if err != nil {
		return nil, err
	}
	if n.residual != nil {
		copy(s.residRow, bindingRow)
	}
	var rowCount int64
	for _, m := range matches {
		ir := n.innerRows[m]
		if n.residual != nil {
			copy(s.residRow[len(n.bindingSchema):], ir)
			ok, err := expr.EvalBool(n.residual, s.residRow)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		rowCount++
		for _, st := range s.states {
			if err := st.Add(ir); err != nil {
				return nil, err
			}
		}
	}
	// Decide unpromising per Definition 5. For an empty R⋉w, SQL-evaluating
	// Φ can yield NULL (e.g. SUM over no rows), which is not the
	// set-theoretic Φ(∅) the definition needs. The sound rule:
	//   - monotone Φ: an empty binding is unpromising — any candidate it
	//     subsumes joins a subset of ∅ and contributes nothing anyway;
	//   - anti-monotone Φ: an empty binding is never unpromising (a genuine
	//     anti-monotone Φ that holds anywhere also holds on ∅).
	unpromising := false
	if rowCount == 0 {
		unpromising = n.ClassΦ == Monotone
	} else {
		for i := range n.gIdx {
			s.aggRow[i] = value.Value{}
		}
		for i, st := range s.states {
			s.aggRow[len(n.gIdx)+i] = st.Value()
		}
		phi, err := expr.EvalBool(n.havingC, s.aggRow)
		if err != nil {
			return nil, err
		}
		unpromising = !phi
	}
	e := &cacheEntry{
		binding:     append([]value.Value(nil), s.bVals...),
		rowCount:    rowCount,
		unpromising: unpromising,
		partials:    make([]expr.Partial, len(s.states)),
	}
	for i, st := range s.states {
		e.partials[i] = st.Partial()
	}
	return e, nil
}

// finalizeStates evaluates Q_P for one group — Φ then Λ — in the scratch
// aggRow. Only the returned output row is allocated.
func (n *NLJP) finalizeStates(s *nljpScratch, gVals []value.Value, states []*expr.State) (value.Row, bool, error) {
	copy(s.aggRow, gVals)
	for i, st := range states {
		s.aggRow[len(gVals)+i] = st.Value()
	}
	ok, err := expr.EvalBool(n.havingC, s.aggRow)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(value.Row, len(n.lamC))
	for i, c := range n.lamC {
		v, err := c(s.aggRow)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// finalizePartials is finalizeStates fed directly from cached partials (the
// 𝔾_L-key fast path), loading them into the scratch accumulators instead of
// materializing fresh States per binding.
func (n *NLJP) finalizePartials(s *nljpScratch, gVals []value.Value, partials []expr.Partial) (value.Row, bool, error) {
	for i := range s.finStates {
		s.finStates[i].LoadPartial(partials[i])
	}
	return n.finalizeStates(s, gVals, s.finStates)
}
