// Package iceberg implements the paper's contribution: automatic
// optimization of iceberg queries with complex joins by generalized
// a-priori reduction (Section 4), cache-based pruning with automatically
// derived subsumption predicates (Section 5), and memoization (Section 6),
// combined by the multiway optimization procedure of Appendix D and executed
// with the NLJP operator of Section 7.
package iceberg

import (
	"fmt"
	"sort"
	"strings"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/fd"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// item is one FROM item of the block under optimization.
type item struct {
	alias    string
	ref      *sqlparser.TableRef
	schema   value.Schema // qualified by alias
	fds      *fd.Set      // over "alias.col" attribute names
	positive map[string]bool
	// baseKey identifies the underlying relation (base table or CTE name),
	// used for cross-instance congruence reasoning in self-joins.
	baseKey string
	// unique records that the source relation is duplicate-free (declared
	// primary key, or a GROUP BY result). The superkey-based safety checks
	// of Theorems 2 and 3 need tuple identity, which functional
	// dependencies alone cannot provide under bag semantics.
	unique bool
}

func (it *item) attrs() []string {
	out := make([]string, len(it.schema))
	for i, c := range it.schema {
		out[i] = attrName(c.Qualifier, c.Name)
	}
	return out
}

func attrName(qualifier, name string) string {
	return strings.ToLower(qualifier) + "." + strings.ToLower(name)
}

func colAttr(c *sqlparser.ColRef) string { return attrName(c.Qualifier, c.Name) }

// block is the analyzed single-block iceberg query in the paper's notation:
// FROM items, the (extended) conjunct set Θ∪local predicates, grouping
// attributes 𝔾, HAVING condition Φ, and output expressions Λ.
type block struct {
	sel      *sqlparser.Select
	items    []*item
	combined value.Schema

	// conjuncts is the qualified WHERE conjunct list, extended with derived
	// equalities from the congruence closure (paper Example 13 relies on
	// inferring S2.category = T2.category).
	conjuncts []sqlparser.Expr

	groupBy []*sqlparser.ColRef // nil if any grouping expression is not a column
	having  sqlparser.Expr
	items_  []sqlparser.SelectItem // qualified select items

	eq  *unionFind
	cat *storage.Catalog
	env engine.Env
}

// analyzeBlock resolves a CTE-free SELECT into block form. It returns an
// error only for malformed queries; queries that are merely unoptimizable
// yield a block whose feature fields (groupBy, having) reflect that.
func analyzeBlock(cat *storage.Catalog, sel *sqlparser.Select, env engine.Env) (*block, error) {
	b := &block{sel: sel, cat: cat, env: env}
	for _, te := range sel.From {
		ref, ok := te.(*sqlparser.TableRef)
		if !ok {
			return nil, fmt.Errorf("derived tables in FROM are not optimizable")
		}
		it := &item{alias: ref.AliasName(), ref: ref}
		if rel, ok := env[strings.ToLower(ref.Name)]; ok {
			it.schema = rel.Schema.Requalify(it.alias)
			it.baseKey = "cte:" + strings.ToLower(ref.Name)
			it.fds = renameToAlias(rel.FDs, it.alias)
			it.positive = renamePositive(rel.Positive, it.alias)
			it.unique = rel.Unique
		} else {
			t, err := cat.Get(ref.Name)
			if err != nil {
				return nil, err
			}
			it.schema = t.Schema.Requalify(it.alias)
			it.baseKey = "table:" + strings.ToLower(t.Name)
			it.fds = renameToAlias(t.FDs, it.alias)
			it.positive = renamePositive(t.Positive, it.alias)
			it.unique = len(t.PrimaryKey) > 0
		}
		b.items = append(b.items, it)
		b.combined = b.combined.Concat(it.schema)
	}

	if sel.Where != nil {
		q, err := engine.QualifyExpr(sel.Where, b.combined)
		if err != nil {
			return nil, err
		}
		b.conjuncts = engine.SplitConjuncts(q)
	}

	b.groupBy = make([]*sqlparser.ColRef, 0, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		q, err := engine.QualifyExpr(g, b.combined)
		if err != nil {
			return nil, err
		}
		ref, ok := q.(*sqlparser.ColRef)
		if !ok {
			b.groupBy = nil
			break
		}
		b.groupBy = append(b.groupBy, ref)
	}
	if sel.Having != nil {
		q, err := engine.QualifyExpr(sel.Having, b.combined)
		if err != nil {
			return nil, err
		}
		b.having = q
	}
	for _, it := range sel.Items {
		if it.Star {
			b.items_ = append(b.items_, it)
			continue
		}
		q, err := engine.QualifyExpr(it.Expr, b.combined)
		if err != nil {
			return nil, err
		}
		b.items_ = append(b.items_, sqlparser.SelectItem{Expr: q, Alias: it.Alias})
	}

	b.buildEquivalence()
	b.extendConjuncts()
	return b, nil
}

func renameToAlias(s *fd.Set, alias string) *fd.Set {
	return s.Rename(func(col string) string { return attrName(alias, col) })
}

func renamePositive(pos map[string]bool, alias string) map[string]bool {
	out := make(map[string]bool, len(pos))
	for col, p := range pos {
		if p {
			out[attrName(alias, col)] = true
		}
	}
	return out
}

// buildEquivalence computes the congruence closure of attribute equalities:
// seeded by equality conjuncts, saturated with the rule that two instances
// of the same base relation agreeing on the source of a functional
// dependency must agree on its targets.
func (b *block) buildEquivalence() {
	uf := newUnionFind()
	b.eq = uf
	for _, c := range b.conjuncts {
		bin, ok := c.(*sqlparser.BinOp)
		if !ok || bin.Op != sqlparser.OpEq {
			continue
		}
		lc, lok := bin.L.(*sqlparser.ColRef)
		rc, rok := bin.R.(*sqlparser.ColRef)
		switch {
		case lok && rok:
			uf.union(colAttr(lc), colAttr(rc))
		case lok:
			if lit, isLit := bin.R.(*sqlparser.Lit); isLit {
				uf.union(colAttr(lc), litNode(lit.Val))
			}
		case rok:
			if lit, isLit := bin.L.(*sqlparser.Lit); isLit {
				uf.union(colAttr(rc), litNode(lit.Val))
			}
		}
	}
	// Congruence saturation.
	byBase := map[string][]*item{}
	for _, it := range b.items {
		byBase[it.baseKey] = append(byBase[it.baseKey], it)
	}
	for changed := true; changed; {
		changed = false
		for _, group := range byBase {
			if len(group) < 2 {
				continue
			}
			for _, a := range group {
				for _, c := range group {
					if a == c {
						continue
					}
					for _, dep := range a.fds.All() {
						agree := true
						for _, x := range dep.From {
							if !uf.same(x, swapAlias(x, a.alias, c.alias)) {
								agree = false
								break
							}
						}
						if !agree {
							continue
						}
						for _, y := range dep.To {
							if uf.union(y, swapAlias(y, a.alias, c.alias)) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// swapAlias rewrites "from.col" into "to.col".
func swapAlias(attr, from, to string) string {
	prefix := strings.ToLower(from) + "."
	if strings.HasPrefix(attr, prefix) {
		return strings.ToLower(to) + "." + attr[len(prefix):]
	}
	return attr
}

func litNode(v value.Value) string { return "lit:" + value.Key([]value.Value{v}) }

// extendConjuncts adds derived pairwise equalities (and attribute=constant
// equalities) implied by the congruence closure, so that sub-block
// construction and the Theorem 2 superkey checks can see them.
func (b *block) extendConjuncts() {
	have := map[string]bool{}
	for _, c := range b.conjuncts {
		have[c.String()] = true
	}
	refs := map[string]*sqlparser.ColRef{}
	lits := map[string]value.Value{}
	for _, it := range b.items {
		for _, c := range it.schema {
			refs[attrName(c.Qualifier, c.Name)] = &sqlparser.ColRef{Qualifier: c.Qualifier, Name: c.Name}
		}
	}
	// Group attributes (and literals) by equivalence class.
	classes := map[string][]string{}
	for node := range b.eq.parent {
		classes[b.eq.find(node)] = append(classes[b.eq.find(node)], node)
	}
	_ = lits
	for _, members := range classes {
		sort.Strings(members)
		var attrs []string
		var litKeys []string
		for _, m := range members {
			if strings.HasPrefix(m, "lit:") {
				litKeys = append(litKeys, m)
			} else if refs[m] != nil {
				attrs = append(attrs, m)
			}
		}
		for i := 0; i < len(attrs); i++ {
			for j := i + 1; j < len(attrs); j++ {
				e := &sqlparser.BinOp{Op: sqlparser.OpEq, L: refs[attrs[i]], R: refs[attrs[j]]}
				alt := &sqlparser.BinOp{Op: sqlparser.OpEq, L: refs[attrs[j]], R: refs[attrs[i]]}
				if !have[e.String()] && !have[alt.String()] {
					have[e.String()] = true
					b.conjuncts = append(b.conjuncts, e)
				}
			}
		}
		_ = litKeys // constants already propagate through evaluation
	}
}

// aliasSet returns the lower-cased alias set of a subset of items.
func aliasSet(items []*item) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, it := range items {
		out[strings.ToLower(it.alias)] = true
	}
	return out
}

// conjunctClass classifies a conjunct against an alias set: "within" (all
// refs inside), "outside" (no refs inside), or "crossing".
func conjunctClass(c sqlparser.Expr, set map[string]bool) string {
	aliases := engine.ExprAliases(c)
	in, out := false, false
	for _, a := range aliases {
		if set[strings.ToLower(a)] {
			in = true
		} else {
			out = true
		}
	}
	switch {
	case in && out:
		return "crossing"
	case in:
		return "within"
	default:
		return "outside"
	}
}

// partitionConjuncts splits the block's conjuncts by the alias set.
func (b *block) partitionConjuncts(set map[string]bool) (within, crossing, outside []sqlparser.Expr) {
	for _, c := range b.conjuncts {
		switch conjunctClass(c, set) {
		case "within":
			within = append(within, c)
		case "crossing":
			crossing = append(crossing, c)
		default:
			outside = append(outside, c)
		}
	}
	return
}

// fdSetFor builds the FD set of the sub-join over the given items: base FDs
// plus dependencies contributed by within-subset equality conjuncts.
func (b *block) fdSetFor(items []*item) *fd.Set {
	set := fd.NewSet()
	for _, it := range items {
		set.Merge(it.fds)
	}
	aliasses := aliasSet(items)
	for _, c := range b.conjuncts {
		if conjunctClass(c, aliasses) != "within" {
			continue
		}
		bin, ok := c.(*sqlparser.BinOp)
		if !ok || bin.Op != sqlparser.OpEq {
			continue
		}
		lc, lok := bin.L.(*sqlparser.ColRef)
		rc, rok := bin.R.(*sqlparser.ColRef)
		switch {
		case lok && rok:
			set.AddEquiv(colAttr(lc), colAttr(rc))
		case lok && isLit(bin.R):
			set.AddConstant(colAttr(lc))
		case rok && isLit(bin.L):
			set.AddConstant(colAttr(rc))
		}
	}
	return set
}

func isLit(e sqlparser.Expr) bool {
	_, ok := e.(*sqlparser.Lit)
	return ok
}

// allUnique reports whether every item is duplicate-free, the precondition
// for superkey checks to imply tuple identity.
func allUnique(items []*item) bool {
	for _, it := range items {
		if !it.unique {
			return false
		}
	}
	return true
}

// attrsOf lists all qualified attributes of the items.
func attrsOf(items []*item) []string {
	var out []string
	for _, it := range items {
		out = append(out, it.attrs()...)
	}
	return out
}

// remapInto tries to rewrite a column reference into one owned by the alias
// set, using the equivalence classes (the paper's "S1.id can be replaced by
// S2.id as they are equated").
func (b *block) remapInto(c *sqlparser.ColRef, set map[string]bool) (*sqlparser.ColRef, bool) {
	if set[strings.ToLower(c.Qualifier)] {
		return c, true
	}
	root := b.eq.find(colAttr(c))
	for _, it := range b.items {
		if !set[strings.ToLower(it.alias)] {
			continue
		}
		for _, col := range it.schema {
			if b.eq.find(attrName(col.Qualifier, col.Name)) == root {
				return &sqlparser.ColRef{Qualifier: col.Qualifier, Name: col.Name}, true
			}
		}
	}
	return nil, false
}

// remapExprInto rewrites all column references of e into the alias set,
// failing when some reference has no equivalent there.
func (b *block) remapExprInto(e sqlparser.Expr, set map[string]bool) (sqlparser.Expr, bool) {
	ok := true
	repl := map[string]sqlparser.Expr{}
	for _, c := range engine.ColumnsOf(e) {
		nc, found := b.remapInto(c, set)
		if !found {
			ok = false
			break
		}
		repl[c.String()] = nc
	}
	if !ok {
		return nil, false
	}
	return engine.ReplaceExprs(e, repl), true
}

// unionFind is a string-keyed disjoint-set structure.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the classes of a and b, reporting whether anything changed.
func (u *unionFind) union(a, b string) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return true
}

func (u *unionFind) same(a, b string) bool { return u.find(a) == u.find(b) }
