package iceberg

import (
	"smarticeberg/internal/engine"
)

// Every plan built during the iceberg tests — including each constructed
// NLJP and its component queries — goes through the plan validators.
func init() { engine.Validate = true }
