package iceberg

import (
	"sync"

	"smarticeberg/internal/resource"
)

// CacheService is a process-wide registry of NLJP binding caches, the
// promotion of the query-scoped sharded cache to a server-lifetime service:
// concurrent (and consecutive) queries that share a cache key share memo
// entries and prune sets, so one query's inner evaluations become every
// later identical query's memo hits.
//
// Correctness rests on the key: callers must fold into it everything that
// determines cache content — the query text, the versions of every table it
// reads, and the optimizer options that shape entries (see
// server.cacheKey). Two runs with equal keys compute semantically identical
// entries, and entries are immutable after insertion, so sharing can change
// hit counters but never results. Table re-registration bumps the version
// embedded in the key, which both retires the old cache (Invalidate) and
// directs new runs to a fresh one — precise invalidation without epochs or
// locks in the lookup path.
//
// Shared caches charge the service's budget (the server's global budget in
// icebergd), never a query budget, so cache shedding is driven by
// process-wide pressure; and they never use the spill overflow tier, whose
// manager and temp directory are query-scoped.
type CacheService struct {
	budget *resource.Budget

	mu     sync.Mutex
	caches map[string]*sharedSlot
}

// sharedSlot wraps one shared cache with a reference count so Invalidate
// can retire a cache that queries are still reading: the slot is unmapped
// immediately (new runs build a fresh cache) and its budget bytes are
// returned when the last reference drops.
type sharedSlot struct {
	c      *cache
	refs   int
	doomed bool
}

// NewCacheService creates the registry. budget, when non-nil, bounds the
// resident bytes of all shared caches together; inserts beyond it shed
// oldest entries exactly like the query-scoped cache.
func NewCacheService(budget *resource.Budget) *CacheService {
	return &CacheService{budget: budget, caches: map[string]*sharedSlot{}}
}

// Budget exposes the service budget to the NLJP constructor.
func (s *CacheService) Budget() *resource.Budget { return s.budget }

// acquire returns the cache registered under key, creating it with mk on
// first use, and a release func the run must call when done (in place of
// cache.close). A doomed slot's final release frees its budget bytes.
func (s *CacheService) acquire(key string, mk func() *cache) (*cache, func()) {
	s.mu.Lock()
	slot := s.caches[key]
	if slot == nil {
		slot = &sharedSlot{c: mk()}
		s.caches[key] = slot
	}
	slot.refs++
	s.mu.Unlock()
	var once sync.Once
	return slot.c, func() {
		once.Do(func() {
			s.mu.Lock()
			slot.refs--
			drop := slot.doomed && slot.refs == 0
			s.mu.Unlock()
			if drop {
				slot.c.close()
			}
		})
	}
}

// Invalidate retires every cache whose key matches. Unreferenced caches are
// closed immediately (budget returned); caches still in use by a running
// query are doomed and closed when their last reference drops — the running
// query keeps its consistent view of data it resolved at plan time. Returns
// the number of caches retired.
func (s *CacheService) Invalidate(match func(key string) bool) int {
	var toClose []*cache
	s.mu.Lock()
	n := 0
	for key, slot := range s.caches {
		if !match(key) {
			continue
		}
		delete(s.caches, key)
		n++
		if slot.refs == 0 {
			toClose = append(toClose, slot.c)
		} else {
			slot.doomed = true
		}
	}
	s.mu.Unlock()
	for _, c := range toClose {
		c.close()
	}
	return n
}

// Close retires every cache; the service stays usable (a later acquire
// simply rebuilds), but after Close with no queries in flight the service
// holds zero budget bytes.
func (s *CacheService) Close() {
	s.Invalidate(func(string) bool { return true })
}

// CacheServiceStats aggregates the resident state and lifetime counters of
// every currently registered shared cache.
type CacheServiceStats struct {
	Caches     int   `json:"caches"`
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	Bindings   int64 `json:"bindings"`
	MemoHits   int64 `json:"memo_hits"`
	PruneHits  int64 `json:"prune_hits"`
	InnerEvals int64 `json:"inner_evals"`
}

// Stats sums over the registered caches.
func (s *CacheService) Stats() CacheServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := CacheServiceStats{Caches: len(s.caches)}
	for _, slot := range s.caches {
		cs := slot.c.snapshot()
		out.Entries += cs.Entries
		out.Bytes += cs.Bytes
		out.Bindings += cs.Bindings
		out.MemoHits += cs.MemoHits
		out.PruneHits += cs.PruneHits
		out.InnerEvals += cs.InnerEvals
	}
	return out
}
