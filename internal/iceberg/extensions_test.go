package iceberg

import (
	"fmt"
	"testing"

	"smarticeberg/internal/storage"
)

// TestBindingOrderCorrectAndEffective: any binding order must preserve the
// result; processing the prune-dominant end first should not reduce prune
// hits compared to natural order (usually it increases them).
func TestBindingOrderCorrectAndEffective(t *testing.T) {
	cat := newTestCatalog(t, 13, 300)
	base := runBaseline(t, cat, skybandSQL)

	var hits [3]int64
	for i, order := range []string{"", "asc", "desc"} {
		opts := AllOn()
		opts.BindingOrder = order
		res, report := runOpt(t, cat, skybandSQL, opts)
		assertSameRows(t, "order="+order, base, res.Rows, report)
		hits[i] = report.TotalStats().PruneHits
	}
	t.Logf("prune hits: natural=%d asc=%d desc=%d", hits[0], hits[1], hits[2])
	// For the anti-monotone skyband with hint "cached.x >= cand.x",
	// descending order caches large-x unpromising entries first.
	if hits[2] < hits[0] {
		t.Errorf("descending order should not lose prune hits: natural=%d desc=%d", hits[0], hits[2])
	}
}

// TestCacheLimitCorrectness: a tiny cache must still produce exact results,
// with fewer (or equal) memo/prune hits and a bounded entry count.
func TestCacheLimitCorrectness(t *testing.T) {
	cat := newTestCatalog(t, 13, 200)
	base := runBaseline(t, cat, skybandSQL)
	for _, limit := range []int{1, 4, 32} {
		opts := AllOn()
		opts.CacheLimit = limit
		res, report := runOpt(t, cat, skybandSQL, opts)
		assertSameRows(t, fmt.Sprintf("limit=%d", limit), base, res.Rows, report)
		st := report.TotalStats()
		if st.Entries > limit {
			t.Errorf("limit=%d: %d entries resident", limit, st.Entries)
		}
	}
	// And across all queries of the differential matrix with a small cache.
	for qname, sql := range map[string]string{"pairs": pairsSQL, "complex": complexSQL} {
		b := runBaseline(t, cat, sql)
		opts := AllOn()
		opts.CacheLimit = 8
		res, report := runOpt(t, cat, sql, opts)
		assertSameRows(t, qname+" limit=8", b, res.Rows, report)
	}
}

// TestNullJoinValues: NULLs in join attributes never join in SQL; NLJP's
// pruning and memoization must preserve that (prune checks on NULL bindings
// must simply not fire).
func TestNullJoinValues(t *testing.T) {
	cat := storage.NewCatalog()
	mustExecSQL(t, cat, "CREATE TABLE Obj (id BIGINT, x DOUBLE, y DOUBLE, PRIMARY KEY (id))")
	mustExecSQL(t, cat, `INSERT INTO Obj VALUES
		(1, 1, 1), (2, NULL, 2), (3, 2, NULL), (4, 3, 3), (5, 1, 2), (6, NULL, NULL)`)
	sql := `
		SELECT L.id, COUNT(*)
		FROM Obj L, Obj R
		WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		GROUP BY L.id
		HAVING COUNT(*) <= 2`
	base := runBaseline(t, cat, sql)
	for name, opts := range optionCombos() {
		res, report := runOpt(t, cat, sql, opts)
		assertSameRows(t, "nulls "+name, base, res.Rows, report)
	}
}

// TestArithmeticEqualityNotDecomposed: for Θ of the form l.j = r.b + r.c,
// two R-tuples joining the same ℓ agree on b+c but not on b and c
// individually, so {b, c} must NOT enter 𝕁_R^= — the query is inflationary
// and a-priori would be wrong (regression test for a real bug).
func TestArithmeticEqualityNotDecomposed(t *testing.T) {
	cat := storage.NewCatalog()
	mustExecSQL(t, cat, "CREATE TABLE L (g TEXT, j BIGINT, PRIMARY KEY (g))")
	mustExecSQL(t, cat, "CREATE TABLE R (b BIGINT, c BIGINT, PRIMARY KEY (b, c))")
	mustExecSQL(t, cat, "INSERT INTO L VALUES ('u', 3)")
	mustExecSQL(t, cat, "INSERT INTO R VALUES (1, 2), (2, 1)")
	sql := `SELECT l.g, COUNT(*) FROM L l, R r WHERE l.j = r.b + r.c
	        GROUP BY l.g HAVING COUNT(*) >= 2`
	base := runBaseline(t, cat, sql)
	if len(base) != 1 {
		t.Fatalf("the (u) group joins both R rows and must survive: %v", base)
	}
	res, report := runOpt(t, cat, sql, AllOn())
	assertSameRows(t, "arithmetic equality", base, res.Rows, report)
	if len(report.Blocks[0].Reducers) != 0 {
		t.Errorf("a-priori must not fire on a decomposed arithmetic equality: %v",
			report.Blocks[0].Reducers)
	}
}
