package sqlparser

import (
	"strings"
	"testing"

	"smarticeberg/internal/value"
)

func mustSelect(t *testing.T, sql string) *Select {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b.c AS x, 1+2*3 FROM t1, t2 b WHERE a = 1 AND b.c < 2.5")
	if len(sel.Items) != 3 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "x" {
		t.Errorf("alias: %q", sel.Items[1].Alias)
	}
	if len(sel.From) != 2 {
		t.Fatalf("from: %d", len(sel.From))
	}
	tr := sel.From[1].(*TableRef)
	if tr.Name != "t2" || tr.AliasName() != "b" {
		t.Errorf("t2 b parsed as %+v", tr)
	}
	// Precedence: 1+2*3 parses as (1 + (2 * 3)).
	bin := sel.Items[2].Expr.(*BinOp)
	if bin.Op != OpAdd {
		t.Errorf("precedence wrong: %s", bin.String())
	}
	if bin.R.(*BinOp).Op != OpMul {
		t.Errorf("precedence wrong: %s", bin.String())
	}
}

func TestParsePrecedenceAndOr(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinOp)
	if or.Op != OpOr {
		t.Fatalf("OR should be at top: %s", sel.Where.String())
	}
	if or.R.(*BinOp).Op != OpAnd {
		t.Fatalf("AND binds tighter: %s", sel.Where.String())
	}
}

func TestParseNot(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	and := sel.Where.(*BinOp)
	if and.Op != OpAnd {
		t.Fatalf("want AND at top, got %s", sel.Where.String())
	}
	if _, ok := and.L.(*UnOp); !ok {
		t.Fatalf("NOT should bind to the comparison: %s", sel.Where.String())
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	sel := mustSelect(t, `
		SELECT item, COUNT(*) cnt FROM basket
		GROUP BY item HAVING COUNT(*) >= 20 AND SUM(price) <= 100
		ORDER BY cnt DESC, item LIMIT 5`)
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 || sel.Limit == nil || *sel.Limit != 5 {
		t.Fatalf("clauses wrong: %+v", sel)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("DESC/ASC parsed wrong")
	}
	havingStr := sel.Having.String()
	if !strings.Contains(havingStr, "COUNT(*)") || !strings.Contains(havingStr, "SUM(price)") {
		t.Errorf("having: %s", havingStr)
	}
}

func TestParseAggregates(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*), COUNT(DISTINCT a), AVG(b), MIN(c), MAX(d), SUM(e) FROM t")
	f0 := sel.Items[0].Expr.(*FuncCall)
	if !f0.Star || f0.Name != "COUNT" {
		t.Errorf("COUNT(*): %+v", f0)
	}
	f1 := sel.Items[1].Expr.(*FuncCall)
	if !f1.Distinct || len(f1.Args) != 1 {
		t.Errorf("COUNT(DISTINCT a): %+v", f1)
	}
}

func TestParseWith(t *testing.T) {
	sel := mustSelect(t, `
		WITH a AS (SELECT x FROM t), b AS (SELECT y FROM a)
		SELECT a.x FROM a, b WHERE a.x = b.y`)
	if len(sel.With) != 2 || sel.With[0].Name != "a" || sel.With[1].Name != "b" {
		t.Fatalf("with: %+v", sel.With)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT d.x FROM (SELECT a AS x FROM t) d")
	sub := sel.From[0].(*SubqueryRef)
	if sub.Alias != "d" {
		t.Fatalf("derived alias: %+v", sub)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, `
		SELECT * FROM t WHERE (a, b) IN (SELECT a, b FROM s) AND c NOT IN (SELECT c FROM u)`)
	conj := sel.Where.(*BinOp)
	in := conj.L.(*InSubquery)
	if len(in.Exprs) != 2 || in.Negated {
		t.Fatalf("tuple IN: %+v", in)
	}
	notIn := conj.R.(*InSubquery)
	if len(notIn.Exprs) != 1 || !notIn.Negated {
		t.Fatalf("NOT IN: %+v", notIn)
	}
}

func TestParseBetweenIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE a BETWEEN 1 AND 3 AND b IS NOT NULL AND c IS NULL")
	s := sel.Where.String()
	for _, want := range []string{">=", "<=", "IS NOT NULL", "IS NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s in %s", want, s)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	sel := mustSelect(t, "SELECT 42, -7, 2.5, 1e3, 'it''s', NULL, TRUE, FALSE FROM t")
	want := []value.Value{
		value.NewInt(42), value.NewInt(-7), value.NewFloat(2.5), value.NewFloat(1000),
		value.NewStr("it's"), value.NullValue, value.NewBool(true), value.NewBool(false),
	}
	for i, w := range want {
		lit, ok := sel.Items[i].Expr.(*Lit)
		if !ok {
			t.Fatalf("item %d not a literal: %T", i, sel.Items[i].Expr)
		}
		if lit.Val.K != w.K || !value.Identical(lit.Val, w) {
			t.Errorf("item %d: got %v want %v", i, lit.Val, w)
		}
	}
}

func TestParseComments(t *testing.T) {
	mustSelect(t, `
		SELECT a -- trailing comment
		FROM t /* block
		comment */ WHERE a > 0`)
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (
		id BIGINT, name VARCHAR(20), score DOUBLE PRECISION, ok BOOLEAN,
		PRIMARY KEY (id, name))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if len(ct.Columns) != 4 || len(ct.PrimaryKey) != 2 {
		t.Fatalf("create: %+v", ct)
	}
	wantTypes := []value.Kind{value.Int, value.Str, value.Float, value.Bool}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type %v want %v", i, ct.Columns[i].Type, w)
		}
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM (SELECT b FROM t)", // derived table needs alias
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t LIMIT x",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t; SELECT b FROM t", // trailing input
		"SELECT (a, b) FROM t",             // row value outside IN
		"CREATE TABLE t (a WIBBLE)",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestNotEqualsSpellings(t *testing.T) {
	a := mustSelect(t, "SELECT 1 FROM t WHERE a <> b")
	b := mustSelect(t, "SELECT 1 FROM t WHERE a != b")
	if a.Where.String() != b.Where.String() {
		t.Errorf("<> and != should normalize identically: %s vs %s", a.Where.String(), b.Where.String())
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Printed expressions must re-parse to the same printed form.
	exprs := []string{
		"SELECT 1 FROM t WHERE ((a + b) * 2) >= (c - 1)",
		"SELECT 1 FROM t WHERE (a < b OR c >= d) AND NOT (e = f)",
	}
	for _, sql := range exprs {
		sel := mustSelect(t, sql)
		printed := sel.Where.String()
		sel2 := mustSelect(t, "SELECT 1 FROM t WHERE "+printed)
		if sel2.Where.String() != printed {
			t.Errorf("round trip changed: %q -> %q", printed, sel2.Where.String())
		}
	}
}

func TestParseCaseWhen(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a < 1 THEN 'x' WHEN a < 2 THEN 'y' ELSE 'z' END FROM t")
	c, ok := sel.Items[0].Expr.(*CaseWhen)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case parsed wrong: %+v", sel.Items[0].Expr)
	}
	printed := c.String()
	sel2 := mustSelect(t, "SELECT "+printed+" FROM t")
	if sel2.Items[0].Expr.String() != printed {
		t.Errorf("round trip changed: %q -> %q", printed, sel2.Items[0].Expr.String())
	}
	if _, err := Parse("SELECT CASE ELSE 1 END FROM t"); err == nil {
		t.Error("CASE without WHEN must fail")
	}
	if _, err := Parse("SELECT CASE WHEN a THEN 1 FROM t"); err == nil {
		t.Error("CASE without END must fail")
	}
}

func TestParseScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a > (SELECT MAX(b) FROM s) AND a < 9")
	and := sel.Where.(*BinOp)
	cmp := and.L.(*BinOp)
	if _, ok := cmp.R.(*ScalarSubquery); !ok {
		t.Fatalf("expected scalar subquery, got %T", cmp.R)
	}
}
