// Package sqlparser provides a hand-written lexer and recursive-descent
// parser for the SQL subset exercised by the paper's workloads: WITH, single-
// and multi-block SELECT with joins in the FROM/WHERE style, GROUP BY,
// HAVING, aggregate functions (including DISTINCT and *), derived tables,
// (tuple) IN subqueries, ORDER BY, LIMIT, CREATE TABLE, and INSERT.
package sqlparser

import (
	"strings"

	"smarticeberg/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type value.Kind
}

// CreateTable is a CREATE TABLE statement. PrimaryKey lists the key columns
// (possibly empty).
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
}

func (*CreateTable) stmt() {}

// Insert is an INSERT ... VALUES statement.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*Insert) stmt() {}

// CTE is one WITH common-table-expression.
type CTE struct {
	Name  string
	Query *Select
}

// SelectItem is one projection in the SELECT list. Star marks a bare `*`.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a (possibly nested) SELECT statement.
type Select struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     []TableExpr
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

func (*Select) stmt() {}

// TableExpr is an item in the FROM clause.
type TableExpr interface{ tableExpr() }

// TableRef names a base table or CTE, with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) tableExpr() {}

// AliasName returns the name the table is reachable under.
func (t *TableRef) AliasName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Query *Select
	Alias string
}

func (*SubqueryRef) tableExpr() {}

// Expr is a scalar SQL expression.
type Expr interface {
	expr()
	String() string
}

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Qualifier string
	Name      string
}

func (*ColRef) expr() {}

// String renders the reference.
func (c *ColRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Lit is a literal constant.
type Lit struct {
	Val value.Value
}

func (*Lit) expr() {}

// String renders the literal.
func (l *Lit) String() string {
	if l.Val.K == value.Str {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// Binary operators produced by the parser.
const (
	OpAdd = "+"
	OpSub = "-"
	OpMul = "*"
	OpDiv = "/"
	OpEq  = "="
	OpNe  = "<>"
	OpLt  = "<"
	OpLe  = "<="
	OpGt  = ">"
	OpGe  = ">="
	OpAnd = "AND"
	OpOr  = "OR"
)

// BinOp is a binary operation.
type BinOp struct {
	Op string
	L  Expr
	R  Expr
}

func (*BinOp) expr() {}

// String renders the operation with explicit parentheses.
func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// UnOp is a unary operation: "-" or "NOT".
type UnOp struct {
	Op string
	E  Expr
}

func (*UnOp) expr() {}

// String renders the operation.
func (u *UnOp) String() string { return "(" + u.Op + " " + u.E.String() + ")" }

// FuncCall is a function call; the engine recognizes the aggregate functions
// COUNT, SUM, AVG, MIN, MAX plus scalar ABS.
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
}

func (*FuncCall) expr() {}

// String renders the call.
func (f *FuncCall) String() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	if f.Distinct {
		b.WriteString("DISTINCT ")
	}
	if f.Star {
		b.WriteByte('*')
	} else {
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// InSubquery is `(e1, ..., ek) IN (SELECT ...)` or `e IN (SELECT ...)`.
type InSubquery struct {
	Exprs   []Expr
	Query   *Select
	Negated bool
}

func (*InSubquery) expr() {}

// String renders the membership test (subquery elided).
func (in *InSubquery) String() string {
	parts := make([]string, len(in.Exprs))
	for i, e := range in.Exprs {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Negated {
		op = "NOT IN"
	}
	return "(" + strings.Join(parts, ", ") + ") " + op + " (SELECT ...)"
}

// ScalarSubquery is `(SELECT ...)` used as a scalar expression; it must
// produce at most one row of one column (zero rows yield NULL).
type ScalarSubquery struct {
	Query *Select
}

func (*ScalarSubquery) expr() {}

// String renders the subquery placeholder.
func (*ScalarSubquery) String() string { return "(SELECT ...)" }

// CaseWhen is a searched CASE expression:
// CASE WHEN cond THEN val [WHEN ...] [ELSE val] END.
type CaseWhen struct {
	Whens []WhenClause
	Else  Expr // may be nil (NULL)
}

// WhenClause is one WHEN/THEN arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (*CaseWhen) expr() {}

// String renders the expression.
func (c *CaseWhen) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// IsNull is `e IS [NOT] NULL`.
type IsNull struct {
	E       Expr
	Negated bool
}

func (*IsNull) expr() {}

// String renders the test.
func (n *IsNull) String() string {
	if n.Negated {
		return "(" + n.E.String() + " IS NOT NULL)"
	}
	return "(" + n.E.String() + " IS NULL)"
}
