package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"smarticeberg/internal/value"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement (with optional WITH prefix).
func ParseSelect(src string) (*Select, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("statement is not a SELECT")
	}
	return sel, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, found %q", want, p.peek().text)
}

func (p *parser) errorf(format string, args ...any) error {
	pos := p.peek().pos
	line := 1 + strings.Count(p.src[:min(pos, len(p.src))], "\n")
	return fmt.Errorf("parse error at line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"), p.at(tokKeyword, "WITH"):
		return p.parseSelect()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreateTable()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	}
	return nil, p.errorf("expected SELECT, WITH, CREATE, or INSERT")
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name.text}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col.text)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			kind, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col.text, Type: kind})
		}
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseTypeName() (value.Kind, error) {
	t := p.next()
	if t.kind != tokKeyword && t.kind != tokIdent {
		return value.Null, p.errorf("expected type name, found %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "BIGINT", "INT", "INTEGER":
		return value.Int, nil
	case "DOUBLE", "FLOAT", "REAL":
		p.accept(tokKeyword, "PRECISION")
		return value.Float, nil
	case "TEXT", "VARCHAR":
		if p.accept(tokPunct, "(") {
			if _, err := p.expect(tokNumber, ""); err != nil {
				return value.Null, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return value.Null, err
			}
		}
		return value.Str, nil
	case "BOOLEAN":
		return value.Bool, nil
	}
	return value.Null, p.errorf("unknown type %q", t.text)
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name.text}
	if p.accept(tokPunct, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseSelect() (*Select, error) {
	sel := &Select{}
	if p.accept(tokKeyword, "WITH") {
		for {
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			sel.With = append(sel.With, CTE{Name: name.text, Query: q})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		sel.Limit = &n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokPunct, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return SelectItem{}, p.errorf("expected alias after AS")
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableExpr() (TableExpr, error) {
	if p.accept(tokPunct, "(") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "AS")
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errorf("derived table requires an alias")
		}
		return &SubqueryRef{Query: q, Alias: alias.text}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name.text}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Alias = alias.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= addExpr ((cmpOp addExpr) | IN (subquery) | IS [NOT] NULL
//	            | BETWEEN addExpr AND addExpr)?
//	addExpr  := mulExpr (('+'|'-') mulExpr)*
//	mulExpr  := unary (('*'|'/') unary)*
//	unary    := '-' unary | primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.at(tokPunct, "=") || p.at(tokPunct, "<>") || p.at(tokPunct, "<") ||
		p.at(tokPunct, "<=") || p.at(tokPunct, ">") || p.at(tokPunct, ">=") {
		op := p.next().text
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: op, L: left, R: right}, nil
	}
	negated := false
	if p.at(tokKeyword, "NOT") && p.toks[p.i+1].kind == tokKeyword && p.toks[p.i+1].text == "IN" {
		p.next()
		negated = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		exprs := []Expr{left}
		if row, ok := left.(*rowExpr); ok {
			exprs = row.items
		}
		return &InSubquery{Exprs: exprs, Query: q, Negated: negated}, nil
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: left, Negated: neg}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: OpAnd,
			L: &BinOp{Op: OpGe, L: left, R: lo},
			R: &BinOp{Op: OpLe, L: left, R: hi}}, nil
	}
	if row, ok := left.(*rowExpr); ok {
		return nil, p.errorf("row value (%d columns) used outside IN", len(row.items))
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.next().text
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "*") || p.at(tokPunct, "/") {
		op := p.next().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokPunct, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && lit.Val.K.Numeric() {
			neg, _ := value.Neg(lit.Val)
			return &Lit{Val: neg}, nil
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

// rowExpr is a transient parse node for a parenthesized expression list; it
// is only legal immediately before IN and never escapes the parser.
type rowExpr struct{ items []Expr }

func (*rowExpr) expr()            {}
func (r *rowExpr) String() string { return "(row)" }

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Lit{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Lit{Val: value.NewFloat(f)}, nil
		}
		return &Lit{Val: value.NewInt(i)}, nil
	case tokString:
		p.next()
		return &Lit{Val: value.NewStr(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Lit{Val: value.NullValue}, nil
		case "TRUE":
			p.next()
			return &Lit{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Lit{Val: value.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokPunct:
		if t.text == "(" {
			p.next()
			if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Query: q}, nil
			}
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.accept(tokPunct, ",") {
				items := []Expr{first}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					items = append(items, e)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return &rowExpr{items: items}, nil
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return first, nil
		}
	case tokIdent:
		p.next()
		name := t.text
		if p.accept(tokPunct, "(") {
			return p.parseFuncTail(name)
		}
		if p.accept(tokPunct, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: name, Name: col.text}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseWhen{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN clause")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseFuncTail(name string) (Expr, error) {
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(tokPunct, "*") {
		f.Star = true
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.accept(tokPunct, ")") {
		return f, nil
	}
	f.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return f, nil
}
