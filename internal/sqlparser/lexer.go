package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokPunct // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; punct is the exact operator
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the lexer; identifiers matching these
// (case-insensitively) become tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"DISTINCT": true, "WITH": true, "CREATE": true, "TABLE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "PRIMARY": true,
	"KEY": true, "ASC": true, "DESC": true, "TRUE": true, "FALSE": true,
	"BETWEEN": true, "ON": true, "NATURAL": true, "JOIN": true,
	"BIGINT": true, "INT": true, "INTEGER": true, "DOUBLE": true,
	"FLOAT": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"BOOLEAN": true, "PRECISION": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; the parser then walks the slice.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber(start int) error {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return nil
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("unterminated string literal at offset %d", start)
}

func (l *lexer) lexPunct(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tokPunct, text: text, pos: start})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '+', '-', '*', '/', '=', '<', '>', '.':
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
		l.pos++
		return nil
	}
	return fmt.Errorf("unexpected character %q at offset %d", c, start)
}
