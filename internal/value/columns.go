package value

// Columnar storage: the column-major twin of []Row. A Columns holds one Col
// per schema position; each Col stores its values in the tightest typed
// representation the data admits — int64 slices for BIGINT, float64 slices
// for DOUBLE, dictionary codes for TEXT — with a null bitmap on the side.
// Typed kernels (internal/expr) loop over these slices directly, with no
// per-row Value boxing and no interface dispatch; everything else reads
// individual cells back through Col.Value, which reconstructs exactly the
// Value that went in (same kind tag, same float bits, equal string bytes),
// so row-path and columnar-path results stay byte-identical.

// Sel is a selection vector: ascending row indexes into a Columns (or a
// window of one). Filters produce a Sel instead of copying the surviving
// rows; downstream kernels iterate the selection. int32 bounds tables at
// ~2·10⁹ rows, matching the join prober's match lists.
type Sel []int32

// Bitmap is a fixed-size bit set; the columnar layer uses it as a null
// bitmap (bit set = NULL). A nil Bitmap means "no nulls".
type Bitmap []uint64

// NewBitmap returns an all-clear bitmap with capacity for n bits.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i. Nil-safe (nil has no bits set).
func (b Bitmap) Get(i int) bool {
	return b != nil && b[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Col is one column vector. Exactly one representation is populated:
//
//   - Kind Int or Bool: payloads in Ints (Bool stores 0/1)
//   - Kind Float: payloads in Floats
//   - Kind Str: dictionary codes in Codes indexing Dict (equal strings share
//     one code, so kernels can compare codes or precompute per-code verdicts)
//   - Kind Null with Vals == nil: every cell is NULL (Nulls covers all rows)
//   - Vals != nil: the column mixes kinds; cells live unencoded in Vals and
//     every access goes through the generic path
//
// Nulls marks NULL cells for the typed representations; the payload slot of
// a NULL cell holds the zero value and must not be interpreted.
type Col struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Codes  []int32
	Dict   []string
	Nulls  Bitmap
	Vals   []Value
}

// Len returns the number of cells in the column.
func (c *Col) Len() int {
	switch {
	case c.Vals != nil:
		return len(c.Vals)
	case c.Ints != nil:
		return len(c.Ints)
	case c.Floats != nil:
		return len(c.Floats)
	case c.Codes != nil:
		return len(c.Codes)
	}
	return len(c.Nulls) * 64 // all-null column: capacity rounded; callers use Columns.Len
}

// Value reconstructs cell i as the exact Value the column was built from.
func (c *Col) Value(i int) Value {
	if c.Vals != nil {
		return c.Vals[i]
	}
	if c.Nulls.Get(i) {
		return NullValue
	}
	switch c.Kind {
	case Int:
		return Value{K: Int, I: c.Ints[i]}
	case Float:
		return Value{K: Float, F: c.Floats[i]}
	case Str:
		return Value{K: Str, S: c.Dict[c.Codes[i]]}
	case Bool:
		return Value{K: Bool, I: c.Ints[i]}
	}
	return NullValue
}

// HasNulls reports whether any cell of the typed representation is NULL.
// Mixed (Vals) columns answer false; callers on the generic path see their
// nulls through Value anyway.
func (c *Col) HasNulls() bool {
	for _, w := range c.Nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Columns is a column-major table fragment: NumCols columns of Len rows.
type Columns struct {
	cols []Col
	n    int
}

// Len returns the row count.
func (c *Columns) Len() int { return c.n }

// NumCols returns the column count.
func (c *Columns) NumCols() int { return len(c.cols) }

// Col returns column j. The column is owned by the Columns and must be
// treated as read-only.
func (c *Columns) Col(j int) *Col { return &c.cols[j] }

// ReadRow materializes row i into dst (which must have NumCols capacity) and
// returns it.
func (c *Columns) ReadRow(i int, dst Row) Row {
	dst = dst[:len(c.cols)]
	for j := range c.cols {
		dst[j] = c.cols[j].Value(i)
	}
	return dst
}

// ColumnsOf builds the column-major form of rows (each of the given width).
// Every cell round-trips exactly: Col.Value returns the same kind tag, the
// same numeric bits, and an equal string, so executing over the columns is
// byte-identical to executing over the rows. Columns whose non-null cells
// all share one kind get the typed representation; mixed columns fall back
// to the boxed Vals form.
func ColumnsOf(width int, rows []Row) *Columns {
	n := len(rows)
	out := &Columns{cols: make([]Col, width), n: n}
	for j := 0; j < width; j++ {
		out.cols[j] = buildCol(rows, j, n)
	}
	return out
}

func buildCol(rows []Row, j, n int) Col {
	// Classify: the single kind shared by every non-null cell, or mixed.
	kind := Null
	mixed := false
	hasNull := false
	for _, r := range rows {
		k := r[j].K
		if k == Null {
			hasNull = true
			continue
		}
		if kind == Null {
			kind = k
		} else if kind != k {
			mixed = true
			break
		}
	}
	if mixed {
		vals := make([]Value, n)
		for i, r := range rows {
			vals[i] = r[j]
		}
		return Col{Vals: vals}
	}
	col := Col{Kind: kind}
	if hasNull {
		col.Nulls = NewBitmap(n)
	}
	switch kind {
	case Null: // all cells NULL
		col.Nulls = NewBitmap(n)
		for i := range rows {
			col.Nulls.Set(i)
		}
	case Int, Bool:
		col.Ints = make([]int64, n)
		for i, r := range rows {
			if v := r[j]; v.K == Null {
				col.Nulls.Set(i)
			} else {
				col.Ints[i] = v.I
			}
		}
	case Float:
		col.Floats = make([]float64, n)
		for i, r := range rows {
			if v := r[j]; v.K == Null {
				col.Nulls.Set(i)
			} else {
				col.Floats[i] = v.F
			}
		}
	case Str:
		col.Codes = make([]int32, n)
		codes := make(map[string]int32)
		for i, r := range rows {
			v := r[j]
			if v.K == Null {
				col.Nulls.Set(i)
				continue
			}
			code, ok := codes[v.S]
			if !ok {
				code = int32(len(col.Dict))
				codes[v.S] = code
				col.Dict = append(col.Dict, v.S)
			}
			col.Codes[i] = code
		}
	}
	return col
}
