package value

import (
	"encoding/binary"
	"errors"
	"math"
)

// Binary codec for spill files. Unlike AppendKey — which normalizes numerics
// so that Int 3 and Float 3.0 share a grouping key — this encoding is exact
// and invertible: DecodeBinary returns a Value with the same Kind and the
// same payload bits (floats round-trip through math.Float64bits), so rows
// written to disk and read back are indistinguishable from the originals.

// ErrCodec is returned when a binary encoding is truncated or carries an
// unknown kind tag.
var ErrCodec = errors.New("value: invalid binary encoding")

// AppendBinary appends a self-delimiting exact encoding of v to dst.
func AppendBinary(dst []byte, v Value) []byte {
	switch v.K {
	case Int:
		dst = append(dst, 1)
		return binary.BigEndian.AppendUint64(dst, uint64(v.I))
	case Float:
		dst = append(dst, 2)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case Str:
		dst = append(dst, 3)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.S)))
		return append(dst, v.S...)
	case Bool:
		dst = append(dst, 4)
		return append(dst, byte(v.I))
	default: // Null
		return append(dst, 0)
	}
}

// DecodeBinary decodes one value produced by AppendBinary and returns the
// remaining bytes.
func DecodeBinary(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, b, ErrCodec
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case 0:
		return NullValue, b, nil
	case 1:
		if len(b) < 8 {
			return Value{}, b, ErrCodec
		}
		return NewInt(int64(binary.BigEndian.Uint64(b))), b[8:], nil
	case 2:
		if len(b) < 8 {
			return Value{}, b, ErrCodec
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case 3:
		if len(b) < 4 {
			return Value{}, b, ErrCodec
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return Value{}, b, ErrCodec
		}
		return NewStr(string(b[:n])), b[n:], nil
	case 4:
		if len(b) < 1 {
			return Value{}, b, ErrCodec
		}
		return NewBool(b[0] != 0), b[1:], nil
	default:
		return Value{}, b, ErrCodec
	}
}

// AppendRowBinary appends a self-delimiting exact encoding of r to dst.
func AppendRowBinary(dst []byte, r Row) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r)))
	for _, v := range r {
		dst = AppendBinary(dst, v)
	}
	return dst
}

// DecodeRowBinary decodes one row produced by AppendRowBinary and returns
// the remaining bytes. The returned row shares nothing with b's backing
// array (strings are copied), so it may be retained.
func DecodeRowBinary(b []byte) (Row, []byte, error) {
	if len(b) < 4 {
		return nil, b, ErrCodec
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	r := make(Row, n)
	var err error
	for i := 0; i < n; i++ {
		r[i], b, err = DecodeBinary(b)
		if err != nil {
			return nil, b, err
		}
	}
	return r, b, nil
}
