package value

import (
	"math"
	"testing"
)

// TestBuildZoneMapsSummaries pins the per-block min/max/null-count summaries
// over typed Int, Float, and Str columns with a tiny block size so block
// boundaries are exercised, including the short tail block.
func TestBuildZoneMapsSummaries(t *testing.T) {
	rows := []Row{
		{NewInt(5), NewFloat(1.5), NewStr("pear")},
		{NewInt(-2), NullValue, NewStr("apple")},
		{NewInt(9), NewFloat(-3), NewStr("fig")},
		{NullValue, NewFloat(0.25), NewStr("banana")},
		{NewInt(7), NewFloat(2), NewStr("kiwi")},
	}
	cols := ColumnsOf(3, rows)
	z := BuildZoneMaps(cols, 2)

	if z.Len() != 5 || z.BlockSize() != 2 || z.NumBlocks() != 3 {
		t.Fatalf("Len/BlockSize/NumBlocks = %d/%d/%d", z.Len(), z.BlockSize(), z.NumBlocks())
	}
	if z.BlockOf(3) != 1 || z.BlockEnd(3) != 4 || z.BlockEnd(4) != 5 {
		t.Fatalf("BlockOf/BlockEnd wrong: %d %d %d", z.BlockOf(3), z.BlockEnd(3), z.BlockEnd(4))
	}
	if z.BlockRows(2) != 1 {
		t.Fatalf("tail BlockRows = %d, want 1", z.BlockRows(2))
	}

	checks := []struct {
		col, blk   int
		min, max   Value
		nulls      int32
		wantUnsafe bool
	}{
		{0, 0, NewInt(-2), NewInt(5), 0, false},
		{0, 1, NewInt(9), NewInt(9), 1, false},
		{0, 2, NewInt(7), NewInt(7), 0, false},
		{1, 0, NewFloat(1.5), NewFloat(1.5), 1, false},
		{1, 1, NewFloat(-3), NewFloat(0.25), 0, false},
		{2, 0, NewStr("apple"), NewStr("pear"), 0, false},
		{2, 1, NewStr("banana"), NewStr("fig"), 0, false},
	}
	for _, c := range checks {
		zn := z.Zone(c.col, c.blk)
		if zn.Unsafe != c.wantUnsafe || zn.Nulls != c.nulls ||
			!Identical(zn.Min, c.min) || !Identical(zn.Max, c.max) {
			t.Errorf("col %d block %d = %+v, want min %v max %v nulls %d",
				c.col, c.blk, zn, c.min, c.max, c.nulls)
		}
	}
}

// TestBuildZoneMapsConservative pins the cases that must refuse to prune:
// NaN cells poison their float block, mixed-representation columns get no
// usable zones at all, and all-NULL blocks keep NULL-kind bounds.
func TestBuildZoneMapsConservative(t *testing.T) {
	rows := []Row{
		{NewFloat(1), NewInt(1), NullValue},
		{NewFloat(math.NaN()), NewStr("x"), NullValue},
		{NewFloat(5), NewInt(3), NullValue},
		{NewFloat(7), NewInt(4), NullValue},
	}
	cols := ColumnsOf(3, rows)
	z := BuildZoneMaps(cols, 2)

	if !z.Zone(0, 0).Unsafe {
		t.Error("NaN block not marked Unsafe")
	}
	if z.Zone(0, 1).Unsafe {
		t.Error("NaN poisoned a block it is not in")
	}
	if zn := z.Zone(0, 1); !Identical(zn.Min, NewFloat(5)) || !Identical(zn.Max, NewFloat(7)) {
		t.Errorf("clean float block = %+v", zn)
	}
	// Column 1 mixes Int and Str cells, so it falls back to Vals
	// representation: every block must be Unsafe.
	for b := 0; b < z.NumBlocks(); b++ {
		if !z.Zone(1, b).Unsafe {
			t.Errorf("mixed-kind column block %d not Unsafe", b)
		}
	}
	// Column 2 is all NULL: bounds stay NULL-kind, nulls counted, safe.
	for b := 0; b < z.NumBlocks(); b++ {
		zn := z.Zone(2, b)
		if zn.Unsafe || zn.Min.K != Null || zn.Max.K != Null || zn.Nulls != 2 {
			t.Errorf("all-NULL block %d = %+v", b, zn)
		}
	}
}
