package value

// Zone maps: per-block min/max (and null-count) summaries over a Columns.
// The scan layer consults them to prove that no row of a block can satisfy a
// pushed-down predicate, skipping the block without running the kernel. A
// zone only ever causes a skip when the kernel provably selects nothing in
// the block, so skipping is invisible in the output — the equivalence
// harness enforces byte-identity against the unskipped path.
//
// The summaries are deliberately conservative:
//
//   - a mixed-representation column (Col.Vals != nil) gets no usable zones
//     (Unsafe), because its cells do not share a kind;
//   - a Float block containing NaN is Unsafe: the kernels order NaN through
//     cmpFloat64, where NaN is neither < nor > anything and therefore lands
//     on "equal", so a NaN row can satisfy =, <=, >= against any literal
//     regardless of the block's min/max;
//   - an all-NULL block keeps Min/Max as NULL values, which zone predicates
//     read as "no comparable cell" (comparison predicates then skip; IS NULL
//     does not).

// ZoneBlockSize is the default zone granularity: small enough that a
// selective range predicate skips most of a clustered table, large enough
// that the per-block probe (a handful of value.Compare calls) is noise next
// to the kernel work it replaces.
const ZoneBlockSize = 1024

// Zone summarizes one block of one column. Min and Max are the smallest and
// largest non-NULL cells under value.Compare (NULL-kind when the block has no
// comparable cell); Nulls counts NULL cells; Unsafe marks a block whose
// summary must not be used for pruning.
type Zone struct {
	Min    Value
	Max    Value
	Nulls  int32
	Unsafe bool
}

// ZoneMaps holds per-block Zone summaries for every column of a Columns
// snapshot. It is immutable after construction and safe for concurrent
// readers (morsel workers probe one shared ZoneMaps).
type ZoneMaps struct {
	size  int
	nRows int
	cols  [][]Zone // [column][block]
}

// BuildZoneMaps summarizes cols in blocks of size rows (ZoneBlockSize when
// size <= 0).
func BuildZoneMaps(cols *Columns, size int) *ZoneMaps {
	if size <= 0 {
		size = ZoneBlockSize
	}
	n := cols.Len()
	nBlocks := (n + size - 1) / size
	z := &ZoneMaps{size: size, nRows: n, cols: make([][]Zone, cols.NumCols())}
	for j := range z.cols {
		z.cols[j] = buildColZones(cols.Col(j), n, size, nBlocks)
	}
	return z
}

func buildColZones(c *Col, n, size, nBlocks int) []Zone {
	zones := make([]Zone, nBlocks)
	if c.Vals != nil {
		// Mixed-kind column: cells do not share a kind, so a [min,max] pair
		// under value.Compare's total order is not a sound pruning bound for
		// the SQL comparison the kernels implement.
		for b := range zones {
			zones[b] = Zone{Min: NullValue, Max: NullValue, Unsafe: true}
		}
		return zones
	}
	for b := range zones {
		lo := b * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		zones[b] = buildZone(c, lo, hi)
	}
	return zones
}

func buildZone(c *Col, lo, hi int) Zone {
	z := Zone{Min: NullValue, Max: NullValue}
	for i := lo; i < hi; i++ {
		if c.Nulls.Get(i) {
			z.Nulls++
			continue
		}
		switch c.Kind {
		case Int, Bool:
			v := c.Ints[i]
			if z.Min.K == Null || v < z.Min.I {
				z.Min = Value{K: c.Kind, I: v}
			}
			if z.Max.K == Null || v > z.Max.I {
				z.Max = Value{K: c.Kind, I: v}
			}
		case Float:
			f := c.Floats[i]
			if f != f { // NaN: unordered under the kernels' three-way compare
				z.Unsafe = true
				continue
			}
			if z.Min.K == Null || f < z.Min.F {
				z.Min = Value{K: Float, F: f}
			}
			if z.Max.K == Null || f > z.Max.F {
				z.Max = Value{K: Float, F: f}
			}
		case Str:
			s := c.Dict[c.Codes[i]]
			if z.Min.K == Null || s < z.Min.S {
				z.Min = Value{K: Str, S: s}
			}
			if z.Max.K == Null || s > z.Max.S {
				z.Max = Value{K: Str, S: s}
			}
		default:
			// Kind Null with a typed representation: every cell is NULL and
			// already counted through the bitmap above.
		}
	}
	return z
}

// Len returns the number of rows the maps summarize.
func (z *ZoneMaps) Len() int { return z.nRows }

// BlockSize returns the zone granularity in rows.
func (z *ZoneMaps) BlockSize() int { return z.size }

// NumBlocks returns the number of blocks per column.
func (z *ZoneMaps) NumBlocks() int { return (z.nRows + z.size - 1) / z.size }

// BlockOf returns the block index covering row i.
func (z *ZoneMaps) BlockOf(i int) int { return i / z.size }

// BlockEnd returns the exclusive end row of the block covering row i,
// clamped to the row count.
func (z *ZoneMaps) BlockEnd(i int) int {
	end := (i/z.size + 1) * z.size
	if end > z.nRows {
		end = z.nRows
	}
	return end
}

// BlockRows returns the number of rows in block b.
func (z *ZoneMaps) BlockRows(b int) int {
	lo := b * z.size
	hi := lo + z.size
	if hi > z.nRows {
		hi = z.nRows
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Zone returns the summary of column col, block b.
func (z *ZoneMaps) Zone(col, b int) Zone { return z.cols[col][b] }
