package value

import "testing"

func batchRow(vs ...int64) Row {
	r := make(Row, len(vs))
	for i, v := range vs {
		r[i] = NewInt(v)
	}
	return r
}

func TestBatchAppendRowAndRowAccess(t *testing.T) {
	b := NewBatch(2, 4)
	if b.Width() != 2 || b.Len() != 0 {
		t.Fatalf("fresh batch: width=%d len=%d", b.Width(), b.Len())
	}
	b.AppendRow(batchRow(1, 2))
	b.AppendRow(batchRow(3, 4))
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	r := b.Row(1)
	if r[0].I != 3 || r[1].I != 4 {
		t.Fatalf("row 1 = %v", r)
	}
	// Row must be capacity-clipped: an append to it cannot clobber the
	// following row's slot.
	if cap(r) != 2 {
		t.Fatalf("row cap = %d, want 2", cap(r))
	}
}

func TestBatchPushPopTruncate(t *testing.T) {
	b := NewBatch(1, 2)
	r := b.PushRow()
	r[0] = NewInt(7)
	r = b.PushRow()
	r[0] = NewInt(8)
	b.PopRow()
	if b.Len() != 1 || b.Row(0)[0].I != 7 {
		t.Fatalf("after pop: len=%d row0=%v", b.Len(), b.Row(0))
	}
	b.PushRow()[0] = NewInt(9)
	b.Truncate(1)
	if b.Len() != 1 || b.Row(0)[0].I != 7 {
		t.Fatalf("after truncate: len=%d row0=%v", b.Len(), b.Row(0))
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("after reset: len=%d", b.Len())
	}
}

func TestBatchMoveRowCompaction(t *testing.T) {
	b := NewBatch(2, 4)
	for i := int64(0); i < 4; i++ {
		b.AppendRow(batchRow(i, i*10))
	}
	// Keep rows 1 and 3 (a typical filter compaction).
	b.MoveRow(0, 1)
	b.MoveRow(1, 3)
	b.Truncate(2)
	if b.Row(0)[0].I != 1 || b.Row(1)[0].I != 3 {
		t.Fatalf("compacted = %v %v", b.Row(0), b.Row(1))
	}
}

func TestBatchCloneIndependence(t *testing.T) {
	b := NewBatch(1, 1)
	b.AppendRow(batchRow(1))
	c := b.Clone()
	b.Row(0)[0] = NewInt(99)
	if c.Row(0)[0].I != 1 {
		t.Fatalf("clone aliases the original buffer")
	}
}

func TestBatchCloneRows(t *testing.T) {
	b := NewBatch(2, 3)
	for i := int64(0); i < 3; i++ {
		b.AppendRow(batchRow(i, i+100))
	}
	rows := b.CloneRows(nil)
	if len(rows) != 3 {
		t.Fatalf("cloned %d rows, want 3", len(rows))
	}
	b.Row(0)[0] = NewInt(777)
	if rows[0][0].I != 0 {
		t.Fatalf("cloned rows alias the batch buffer")
	}
	// Cloned rows are capacity-clipped so appends to one cannot spill into
	// its neighbor.
	if cap(rows[0]) != 2 {
		t.Fatalf("cloned row cap = %d, want 2", cap(rows[0]))
	}
	// Reuse after reset must not corrupt previously cloned rows.
	b.Reset()
	b.AppendRow(batchRow(50, 51))
	if rows[1][0].I != 1 || rows[1][1].I != 101 {
		t.Fatalf("cloned rows corrupted by batch reuse: %v", rows[1])
	}
}

func TestViewBatchBasics(t *testing.T) {
	src := []Row{batchRow(1, 2), batchRow(3, 4), batchRow(5, 6)}
	b := NewViewBatch(2, 2)
	if b.Width() != 2 || b.Len() != 0 {
		t.Fatalf("fresh view batch: width=%d len=%d", b.Width(), b.Len())
	}
	for _, r := range src {
		b.AppendRef(r)
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	// Row returns the referenced row itself: no copy, full aliasing.
	if &b.Row(1)[0] != &src[1][0] {
		t.Fatalf("view Row(1) does not alias the source row")
	}
	// PopRow and Truncate drop references without touching the source rows.
	b.PopRow()
	b.Truncate(1)
	if b.Len() != 1 || b.Row(0)[0].I != 1 {
		t.Fatalf("after pop+truncate: len=%d row0=%v", b.Len(), b.Row(0))
	}
	if src[2][0].I != 5 {
		t.Fatalf("source row mutated by view batch bookkeeping")
	}
	// Reset keeps view mode: the batch stays reference-backed for reuse.
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset = %d", b.Len())
	}
	b.AppendRef(src[0])
	if &b.Row(0)[0] != &src[0][0] {
		t.Fatalf("view mode lost across Reset")
	}
}

func TestViewBatchMoveRowCompaction(t *testing.T) {
	src := []Row{batchRow(10), batchRow(11), batchRow(12)}
	b := NewViewBatch(1, 3)
	for _, r := range src {
		b.AppendRef(r)
	}
	// In-place filter idiom: keep rows 0 and 2.
	b.MoveRow(1, 2)
	b.Truncate(2)
	if b.Row(0)[0].I != 10 || b.Row(1)[0].I != 12 {
		t.Fatalf("compacted view = [%v %v]", b.Row(0), b.Row(1))
	}
	// MoveRow moves the reference, not the values: source rows are intact.
	if src[1][0].I != 11 {
		t.Fatalf("MoveRow on a view batch overwrote the source row")
	}
}

func TestViewBatchCloneDetaches(t *testing.T) {
	src := []Row{batchRow(1, 2), batchRow(3, 4)}
	b := NewViewBatch(2, 2)
	b.AppendRef(src[0])
	b.AppendRef(src[1])

	c := b.Clone()
	rows := b.CloneRows(nil)
	src[0][0] = NewInt(99)
	if c.Row(0)[0].I != 1 || rows[0][0].I != 1 {
		t.Fatalf("Clone/CloneRows of a view batch alias the source rows")
	}
	// The clone is an ordinary buffer-mode batch.
	c.AppendRow(batchRow(5, 6))
	if c.Len() != 3 || c.Row(2)[1].I != 6 {
		t.Fatalf("clone of view batch not buffer-backed: %v", c.Row(2))
	}
}
