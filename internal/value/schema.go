package value

import (
	"fmt"
	"strings"
)

// Row is a tuple of scalar values laid out per some Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns the concatenation of two rows (an LR-tuple in paper terms).
func Concat(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// Column describes one attribute of a schema. Qualifier is the table alias
// the column is reachable under ("" for anonymous derived columns).
type Column struct {
	Qualifier string
	Name      string
	Type      Kind
}

// String renders the column as qualifier.name.
func (c Column) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns describing a row layout.
type Schema []Column

// String renders the schema as a parenthesized column list.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Resolve finds the index of a column reference. qualifier may be empty, in
// which case the name must be unambiguous across the schema. Matching is
// case-insensitive, like SQL identifiers.
func (s Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", ref(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("column %q not found in schema %s", ref(qualifier, name), s)
	}
	return found, nil
}

func ref(qualifier, name string) string {
	if qualifier == "" {
		return name
	}
	return qualifier + "." + name
}

// Requalify returns a copy of the schema with every column's qualifier
// replaced by alias, as happens when a derived table is given an alias.
func (s Schema) Requalify(alias string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = Column{Qualifier: alias, Name: c.Name, Type: c.Type}
	}
	return out
}

// Concat returns the schema of an LR-tuple.
func (s Schema) Concat(other Schema) Schema {
	out := make(Schema, 0, len(s)+len(other))
	out = append(out, s...)
	return append(out, other...)
}

// IndexOf returns the position of the exact (qualifier, name) pair, or -1.
func (s Schema) IndexOf(qualifier, name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) && strings.EqualFold(c.Qualifier, qualifier) {
			return i
		}
	}
	return -1
}
