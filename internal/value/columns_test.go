package value

import (
	"math"
	"testing"
)

func TestColumnsOfRoundTrip(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewFloat(1.5), NewStr("a"), NewBool(true), NullValue},
		{NewInt(-2), NewFloat(math.NaN()), NewStr("b"), NewBool(false), NullValue},
		{NullValue, NullValue, NullValue, NullValue, NullValue},
		{NewInt(1), NewFloat(math.Inf(-1)), NewStr("a"), NewBool(true), NullValue},
	}
	cols := ColumnsOf(5, rows)
	if cols.Len() != len(rows) || cols.NumCols() != 5 {
		t.Fatalf("dims = %d x %d", cols.Len(), cols.NumCols())
	}
	for i, r := range rows {
		got := cols.ReadRow(i, make(Row, 5))
		for j := range r {
			if !Identical(r[j], got[j]) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got[j], r[j])
			}
		}
	}
	// Typed representations chosen as expected.
	if c := cols.Col(0); c.Kind != Int || c.Ints == nil || c.Vals != nil {
		t.Fatalf("col 0 not int-typed: %+v", c)
	}
	if c := cols.Col(2); c.Kind != Str || len(c.Dict) != 2 {
		t.Fatalf("col 2 dict = %v", cols.Col(2).Dict)
	}
	// Equal strings share one code.
	if sc := cols.Col(2); sc.Codes[0] != sc.Codes[3] {
		t.Fatalf("dict codes for equal strings differ: %v", sc.Codes)
	}
	if c := cols.Col(4); c.Kind != Null || !c.Nulls.Get(0) || !c.Nulls.Get(3) {
		t.Fatalf("col 4 not all-null: %+v", cols.Col(4))
	}
}

func TestColumnsOfMixedFallback(t *testing.T) {
	rows := []Row{
		{NewInt(1)},
		{NewStr("x")},
		{NullValue},
	}
	cols := ColumnsOf(1, rows)
	c := cols.Col(0)
	if c.Vals == nil {
		t.Fatalf("mixed column should fall back to Vals: %+v", c)
	}
	for i, r := range rows {
		if got := c.Value(i); !Identical(got, r[0]) {
			t.Fatalf("cell %d: got %v want %v", i, got, r[0])
		}
	}
}

func TestBitmap(t *testing.T) {
	var nilB Bitmap
	if nilB.Get(5) {
		t.Fatal("nil bitmap reports set bit")
	}
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Fatal("Set touched neighboring bits")
	}
}

func TestColBatchBasics(t *testing.T) {
	rows := []Row{
		{NewInt(10), NewStr("x")},
		{NewInt(20), NewStr("y")},
		{NewInt(30), NewStr("x")},
		{NullValue, NewStr("z")},
	}
	cols := ColumnsOf(2, rows)
	b := NewColBatch(cols, 4)
	for i := range rows {
		b.AppendSel(int32(i))
	}
	if b.Len() != 4 || b.Width() != 2 {
		t.Fatalf("len=%d width=%d", b.Len(), b.Width())
	}
	for i, r := range rows {
		got := b.Row(i)
		for j := range r {
			if !Identical(got[j], r[j]) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got[j], r[j])
			}
		}
	}
	// Rows materialized into distinct slots stay simultaneously valid.
	r0, r2 := b.Row(0), b.Row(2)
	if r0[0].I != 10 || r2[0].I != 30 {
		t.Fatalf("scratch slots aliased: r0=%v r2=%v", r0, r2)
	}

	// MoveRow + Truncate compact the selection, not the columns.
	b.MoveRow(1, 3)
	b.Truncate(2)
	if b.Len() != 2 {
		t.Fatalf("len after compact = %d", b.Len())
	}
	if got := b.Row(1); got[0].K != Null || got[1].S != "z" {
		t.Fatalf("compacted row 1 = %v", got)
	}
	if cols.Len() != 4 {
		t.Fatal("compaction mutated the columns")
	}

	b.PopRow()
	if b.Len() != 1 {
		t.Fatalf("len after PopRow = %d", b.Len())
	}

	// Clone is a deep buffer-mode copy.
	b.Reset()
	b.AppendSel(2)
	b.AppendSel(0)
	c := b.Clone()
	b.Reset()
	if c.Len() != 2 || c.Row(0)[0].I != 30 || c.Row(1)[0].I != 10 {
		t.Fatalf("clone = %v %v", c.Row(0), c.Row(1))
	}

	// SetSel aliases the given selection.
	sel := Sel{1, 3}
	b.SetSel(sel)
	if b.Len() != 2 || b.Row(0)[0].I != 20 {
		t.Fatalf("SetSel row 0 = %v", b.Row(0))
	}
}

func TestColBatchCloneRows(t *testing.T) {
	rows := []Row{{NewInt(1)}, {NewInt(2)}, {NewInt(3)}}
	b := NewColBatch(ColumnsOf(1, rows), 3)
	b.AppendSel(0)
	b.AppendSel(2)
	out := b.CloneRows(nil)
	if len(out) != 2 || out[0][0].I != 1 || out[1][0].I != 3 {
		t.Fatalf("CloneRows = %v", out)
	}
	b.Reset()
	if out[0][0].I != 1 {
		t.Fatal("CloneRows aliased batch storage")
	}
}
