package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(2), NewFloat(2.0), 0, true},
		{NewFloat(1.5), NewInt(2), -1, true},
		{NewStr("a"), NewStr("b"), -1, true},
		{NewStr("b"), NewStr("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{NullValue, NewInt(1), -1, false},
		{NewInt(1), NullValue, 0, false},
		{NewInt(1), NewStr("1"), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestCompareIsTotalOrderOnMixedKinds(t *testing.T) {
	// Even when ok=false, the returned ordering must be antisymmetric and
	// usable for sorting.
	vals := []Value{NullValue, NewInt(-1), NewInt(3), NewFloat(2.5), NewStr("x"), NewBool(true)}
	for _, a := range vals {
		for _, b := range vals {
			ca, _ := Compare(a, b)
			cb, _ := Compare(b, a)
			if ca != -cb && !(a.K.Numeric() && b.K.Numeric()) {
				t.Errorf("Compare not antisymmetric for %v,%v: %d vs %d", a, b, ca, cb)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustEq := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Identical(got, want) {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	mustEq(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	mustEq(v, err, NewFloat(2.5))
	v, err = Sub(NewFloat(2), NewInt(3))
	mustEq(v, err, NewFloat(-1))
	v, err = Mul(NewInt(4), NewInt(5))
	mustEq(v, err, NewInt(20))
	v, err = Div(NewInt(7), NewInt(2))
	mustEq(v, err, NewInt(3)) // integer division truncates
	v, err = Div(NewFloat(7), NewInt(2))
	mustEq(v, err, NewFloat(3.5))
	v, err = Div(NewInt(7), NewInt(0))
	mustEq(v, err, NullValue) // divide by zero -> NULL
	v, err = Add(NullValue, NewInt(1))
	mustEq(v, err, NullValue)
	v, err = Add(NewStr("a"), NewStr("b"))
	mustEq(v, err, NewStr("ab"))
	if _, err := Mul(NewStr("a"), NewInt(1)); err == nil {
		t.Error("expected error multiplying string")
	}
	v, err = Neg(NewInt(4))
	mustEq(v, err, NewInt(-4))
}

// TestKeyIdentity: key encoding agrees with Identical (grouping semantics).
func TestKeyIdentity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	gen := func(kind uint8, i int64, f float64, s string) Value {
		switch kind % 5 {
		case 0:
			return NullValue
		case 1:
			return NewInt(i % 50)
		case 2:
			// Mix integral and fractional floats.
			if i%2 == 0 {
				return NewFloat(float64(int64(f*10) % 50))
			}
			return NewFloat(f)
		case 3:
			return NewStr(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	err := quick.Check(func(k1, k2 uint8, i1, i2 int64, f1, f2 float64, s1, s2 string) bool {
		a, b := gen(k1, i1, f1, s1), gen(k2, i2, f2, s2)
		sameKey := Key([]Value{a}) == Key([]Value{b})
		return sameKey == Identical(a, b)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestKeyIntFloatNormalization: Int 3 and Float 3.0 must group together.
func TestKeyIntFloatNormalization(t *testing.T) {
	if Key([]Value{NewInt(3)}) != Key([]Value{NewFloat(3)}) {
		t.Error("Int 3 and Float 3.0 should share a grouping key")
	}
	if Key([]Value{NewFloat(3.5)}) == Key([]Value{NewInt(3)}) {
		t.Error("3.5 must not collide with 3")
	}
	if Key([]Value{NewFloat(math.Inf(1))}) == Key([]Value{NewFloat(math.MaxFloat64)}) {
		t.Error("Inf must not collide with MaxFloat64")
	}
}

// TestKeySelfDelimiting: concatenated tuples with shifted boundaries must
// not collide.
func TestKeySelfDelimiting(t *testing.T) {
	a := Key([]Value{NewStr("ab"), NewStr("c")})
	b := Key([]Value{NewStr("a"), NewStr("bc")})
	if a == b {
		t.Error("string boundaries must be encoded")
	}
	c := Key([]Value{NewInt(1), NullValue})
	d := Key([]Value{NullValue, NewInt(1)})
	if c == d {
		t.Error("value order must matter")
	}
}

// TestAppendKeysMatchesKey: the buffer-reusing multi-value append must
// produce exactly the bytes of Key, including when appending after existing
// content.
func TestAppendKeysMatchesKey(t *testing.T) {
	vs := []Value{NewInt(7), NewFloat(2.5), NewStr("ab"), NullValue, NewBool(true)}
	if got := string(AppendKeys(nil, vs)); got != Key(vs) {
		t.Errorf("AppendKeys(nil, vs) = %q, Key(vs) = %q", got, Key(vs))
	}
	buf := AppendKeys([]byte("prefix"), vs)
	if string(buf) != "prefix"+Key(vs) {
		t.Error("AppendKeys must append after existing content")
	}
	// Reusing the truncated buffer must give the same encoding again.
	buf = AppendKeys(buf[:0], vs)
	if string(buf) != Key(vs) {
		t.Error("AppendKeys must be reusable via buf[:0]")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := Schema{
		{Qualifier: "l", Name: "id", Type: Int},
		{Qualifier: "r", Name: "id", Type: Int},
		{Qualifier: "r", Name: "x", Type: Float},
	}
	if i, err := s.Resolve("l", "id"); err != nil || i != 0 {
		t.Errorf("l.id: %d, %v", i, err)
	}
	if i, err := s.Resolve("R", "X"); err != nil || i != 2 {
		t.Errorf("case-insensitive resolve failed: %d, %v", i, err)
	}
	if _, err := s.Resolve("", "id"); err == nil {
		t.Error("ambiguous reference must fail")
	}
	if i, err := s.Resolve("", "x"); err != nil || i != 2 {
		t.Errorf("unqualified unambiguous resolve failed: %d, %v", i, err)
	}
	if _, err := s.Resolve("l", "nope"); err == nil {
		t.Error("missing column must fail")
	}
}

func TestSchemaRequalifyAndConcat(t *testing.T) {
	s := Schema{{Qualifier: "t", Name: "a", Type: Int}}
	r := s.Requalify("x")
	if r[0].Qualifier != "x" || s[0].Qualifier != "t" {
		t.Error("Requalify must copy")
	}
	c := s.Concat(r)
	if len(c) != 2 || c[0].Qualifier != "t" || c[1].Qualifier != "x" {
		t.Errorf("Concat wrong: %v", c)
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{NewInt(1), NewStr("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
	j := Concat(r, Row{NewBool(true)})
	if len(j) != 3 || !j[2].Bool() {
		t.Errorf("Concat wrong: %v", j)
	}
}
