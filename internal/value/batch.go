package value

// Batch is a chunk of rows sharing one schema. It is the unit of the
// engine's vectorized execution path: operators hand batches down the tree
// instead of single rows, amortizing per-row interface and bookkeeping costs
// over the chunk.
//
// A batch has one of three representations:
//
//   - buffer mode (NewBatch): rows live row-major in a single flat buffer,
//     so a whole chunk costs one allocation and stays cache-friendly.
//     Producers that compute fresh rows (projections, aggregates, joins)
//     build chunks this way with AppendRow/PushRow.
//   - view mode (NewViewBatch): the batch holds references to rows owned by
//     someone else — a scan over materialized storage appends the selected
//     rows with AppendRef and never copies a value.
//   - columnar mode (NewColBatch): the batch is a selection vector over a
//     column-major Columns owned by the producer. Filters select instead of
//     copying (they compact the Sel), typed kernels read the columns
//     directly via Col/Sel, and the selection vector is pointer-free — no
//     GC write barriers on the scan hot path. Row materializes cells into a
//     per-slot scratch area on demand, so representation-agnostic consumers
//     keep working unchanged.
//
// Consumers are representation-agnostic: Row, Len, MoveRow, Truncate,
// PopRow, Clone, and CloneRows behave identically in all modes.
//
// Aliasing contract: rows returned by Row alias batch-owned (or, in view
// mode, producer-owned) storage, and a batch returned by an operator's
// NextBatch is valid only until the next NextBatch (or Next) call — the
// producer reuses the chunk. The same window applies to the views returned
// by Col and Sel: the producer rewrites the selection (and may repoint the
// columns) on every NextBatch. Callers that retain a batch, a row sliced
// from one, or a Col/Sel view must Clone (or copy) it first (the icelint
// rowalias pass enforces this).
type Batch struct {
	width int
	n     int
	buf   []Value
	// view, when non-nil, marks view mode: rows[i] lives in view[i] and buf
	// is unused. An empty view batch keeps view non-nil (zero-length) so
	// the mode survives Reset.
	view []Row
	// cols, when non-nil, marks columnar mode: row i is cols row sel[i],
	// and buf serves as the Row materialization scratch (slot i holds row i
	// once materialized; slots are rewritten on every Row call).
	cols *Columns
	sel  Sel
}

// NewBatch returns an empty buffer-mode batch for rows of the given width,
// with capacity for rows chunks before the buffer regrows.
func NewBatch(width, rows int) *Batch {
	if width < 0 {
		width = 0
	}
	if rows < 0 {
		rows = 0
	}
	return &Batch{width: width, buf: make([]Value, 0, width*rows)}
}

// NewViewBatch returns an empty view-mode batch for rows of the given width,
// with capacity for rows references before the slice regrows.
func NewViewBatch(width, rows int) *Batch {
	if width < 0 {
		width = 0
	}
	if rows < 0 {
		rows = 0
	}
	return &Batch{width: width, view: make([]Row, 0, rows)}
}

// NewColBatch returns an empty columnar-mode batch over cols, with capacity
// for rows selection entries before the selection regrows. The Row
// materialization scratch grows lazily on first use — fully columnar
// pipelines never pay for it.
func NewColBatch(cols *Columns, rows int) *Batch {
	if rows < 0 {
		rows = 0
	}
	return &Batch{width: cols.NumCols(), cols: cols, sel: make(Sel, 0, rows)}
}

// Width returns the number of values per row.
func (b *Batch) Width() int { return b.width }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int {
	if b.view != nil {
		return len(b.view)
	}
	if b.cols != nil {
		return len(b.sel)
	}
	return b.n
}

// Reset empties the batch, keeping its storage (and representation) for
// reuse.
func (b *Batch) Reset() {
	if b.view != nil {
		b.view = b.view[:0]
		return
	}
	if b.cols != nil {
		b.sel = b.sel[:0]
		return
	}
	b.n = 0
	b.buf = b.buf[:0]
}

// Cols returns the underlying column set in columnar mode, nil otherwise.
// Typed kernels pair it with Sel to loop over vectors directly.
func (b *Batch) Cols() *Columns {
	return b.cols
}

// Col returns column j of the underlying column set (columnar mode only).
// The view is valid only until the producer's next NextBatch call; see the
// aliasing contract.
func (b *Batch) Col(j int) *Col { return b.cols.Col(j) }

// Sel returns the selection vector (columnar mode only): entry i is the
// cols row index of batch row i. The returned slice aliases batch-owned
// storage the producer rewrites every chunk; see the aliasing contract.
func (b *Batch) Sel() Sel { return b.sel }

// SetSel installs a selection vector, which the batch takes over (the
// caller's slice is aliased, not copied). Columnar mode only.
func (b *Batch) SetSel(sel Sel) { b.sel = sel }

// AppendSel appends one cols row index to the selection (columnar mode
// only).
func (b *Batch) AppendSel(i int32) { b.sel = append(b.sel, i) }

// Row returns row i. In buffer mode the row is a full-capacity slice into
// the batch's buffer; in view mode it is the referenced row itself; in
// columnar mode the row is materialized into the batch's scratch slot i
// (stable per index, rewritten on every call). Either way it is valid only
// as long as the batch; see the aliasing contract.
func (b *Batch) Row(i int) Row {
	if b.view != nil {
		return b.view[i]
	}
	lo, hi := i*b.width, (i+1)*b.width
	if b.cols != nil {
		if len(b.buf) < hi {
			if cap(b.buf) >= hi {
				b.buf = b.buf[:hi]
			} else {
				b.buf = append(b.buf[:cap(b.buf)], make([]Value, hi-cap(b.buf))...)
			}
		}
		return b.cols.ReadRow(int(b.sel[i]), Row(b.buf[lo:hi:hi]))
	}
	return Row(b.buf[lo:hi:hi])
}

// AppendRow copies r into the batch (buffer mode only). r must have exactly
// Width values.
func (b *Batch) AppendRow(r Row) {
	b.buf = append(b.buf, r...)
	b.n++
}

// AppendRef appends a reference to r without copying (view mode only). The
// row must outlive the chunk's validity window.
func (b *Batch) AppendRef(r Row) {
	b.view = append(b.view, r)
}

// PushRow appends one uninitialized row and returns it for in-place writing
// (buffer mode only). The caller must write every slot: slots may hold stale
// values from a previous use of the buffer.
func (b *Batch) PushRow() Row {
	lo := len(b.buf)
	hi := lo + b.width
	if cap(b.buf) >= hi {
		b.buf = b.buf[:hi]
	} else {
		b.buf = append(b.buf, make([]Value, b.width)...)
	}
	b.n++
	return Row(b.buf[lo:hi:hi])
}

// PopRow removes the last row (the inverse of PushRow, for producers that
// discover post-write that a row fails a predicate).
func (b *Batch) PopRow() {
	if b.view != nil {
		if len(b.view) > 0 {
			b.view = b.view[:len(b.view)-1]
		}
		return
	}
	if b.cols != nil {
		if len(b.sel) > 0 {
			b.sel = b.sel[:len(b.sel)-1]
		}
		return
	}
	if b.n == 0 {
		return
	}
	b.n--
	b.buf = b.buf[:b.n*b.width]
}

// Truncate keeps the first n rows.
func (b *Batch) Truncate(n int) {
	if n < 0 || n > b.Len() {
		return
	}
	if b.view != nil {
		b.view = b.view[:n]
		return
	}
	if b.cols != nil {
		b.sel = b.sel[:n]
		return
	}
	b.n = n
	b.buf = b.buf[:n*b.width]
}

// MoveRow moves row src over row dst inside the batch (in-place filter
// compaction): a value copy in buffer mode, a reference move in view mode,
// a selection-entry move in columnar mode.
func (b *Batch) MoveRow(dst, src int) {
	if dst == src {
		return
	}
	if b.view != nil {
		b.view[dst] = b.view[src]
		return
	}
	if b.cols != nil {
		b.sel[dst] = b.sel[src]
		return
	}
	copy(b.Row(dst), b.Row(src))
}

// Clone returns a deep buffer-mode copy that does not alias the receiver's
// storage.
func (b *Batch) Clone() *Batch {
	n := b.Len()
	out := &Batch{width: b.width, n: n, buf: make([]Value, 0, n*b.width)}
	for i := 0; i < n; i++ {
		out.buf = append(out.buf, b.Row(i)...)
	}
	return out
}

// CloneRows appends independent copies of all rows to dst and returns it.
// All rows share one freshly allocated backing array (one allocation for the
// values plus the header growth), so draining a stream batch-by-batch costs
// two allocations per chunk instead of one per row.
func (b *Batch) CloneRows(dst []Row) []Row {
	n := b.Len()
	if n == 0 {
		return dst
	}
	flat := make([]Value, 0, n*b.width)
	for i := 0; i < n; i++ {
		flat = append(flat, b.Row(i)...)
	}
	for i := 0; i < n; i++ {
		lo, hi := i*b.width, (i+1)*b.width
		dst = append(dst, Row(flat[lo:hi:hi]))
	}
	return dst
}
