// Package value defines the typed scalar values, rows, and schemas shared by
// every layer of the engine: storage, expression evaluation, join execution,
// and the iceberg optimizer.
//
// A Value is a small tagged union. Rows are flat []Value slices whose layout
// is described by a Schema. Values are comparable across the numeric kinds
// (Int and Float compare by numeric value), which matches the SQL semantics
// the rest of the system assumes.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The supported value kinds.
const (
	Null Kind = iota
	Int
	Float
	Str
	Bool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "BIGINT"
	case Float:
		return "DOUBLE"
	case Str:
		return "TEXT"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Numeric reports whether the kind is Int or Float.
func (k Kind) Numeric() bool { return k == Int || k == Float }

// Value is a scalar runtime value. The zero Value is SQL NULL.
type Value struct {
	K Kind
	I int64   // payload for Int and Bool (0/1)
	F float64 // payload for Float
	S string  // payload for Str
}

// Convenience constructors.

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewStr returns a Str value.
func NewStr(s string) Value { return Value{K: Str, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	if b {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool}
}

// NullValue is the SQL NULL.
var NullValue = Value{}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == Null }

// Bool returns the boolean payload. It is only meaningful for Bool values.
func (v Value) Bool() bool { return v.K == Bool && v.I != 0 }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() float64 {
	if v.K == Int {
		return float64(v.I)
	}
	return v.F
}

// String renders the value the way the SQL shell prints it.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Str:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by numeric value; mixed non-numeric kinds compare by kind tag so
// that Compare is a total order usable for sorting. The boolean ok result is
// false when the comparison is not meaningful in SQL (e.g. Int vs Str);
// callers implementing SQL predicates should treat !ok as "unknown".
func Compare(a, b Value) (cmp int, ok bool) {
	if a.K == Null || b.K == Null {
		return cmpKindOrder(a, b), false
	}
	switch {
	case a.K == Int && b.K == Int:
		return cmpInt64(a.I, b.I), true
	case a.K.Numeric() && b.K.Numeric():
		return cmpFloat64(a.AsFloat(), b.AsFloat()), true
	case a.K == Str && b.K == Str:
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		}
		return 0, true
	case a.K == Bool && b.K == Bool:
		return cmpInt64(a.I, b.I), true
	}
	return cmpKindOrder(a, b), false
}

func cmpKindOrder(a, b Value) int {
	if a.K != b.K {
		return cmpInt64(int64(a.K), int64(b.K))
	}
	switch a.K {
	case Int, Bool:
		return cmpInt64(a.I, b.I)
	case Float:
		return cmpFloat64(a.F, b.F)
	case Str:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality (NULL equals nothing, including NULL).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical reports Go-level sameness, with NULL identical to NULL. It is the
// relation used for grouping and DISTINCT, matching SQL's treatment of NULLs
// in GROUP BY.
func Identical(a, b Value) bool {
	if a.K == Null || b.K == Null {
		return a.K == b.K
	}
	c, _ := Compare(a, b)
	return c == 0
}

// Arithmetic errors.
type arithError struct{ op string }

func (e *arithError) Error() string { return "invalid operands for " + e.op }

// Add returns a+b with SQL numeric promotion. NULL propagates.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a-b.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a*b.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a/b. Integer division of two Ints truncates, matching the SQL
// engines the paper benchmarks against. Division by zero yields NULL.
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.K {
	case Null:
		return NullValue, nil
	case Int:
		return NewInt(-a.I), nil
	case Float:
		return NewFloat(-a.F), nil
	}
	return NullValue, &arithError{op: "unary -"}
}

func arith(a, b Value, op string) (Value, error) {
	if a.K == Null || b.K == Null {
		return NullValue, nil
	}
	if !a.K.Numeric() || !b.K.Numeric() {
		if op == "+" && a.K == Str && b.K == Str {
			return NewStr(a.S + b.S), nil
		}
		return NullValue, &arithError{op: op}
	}
	if a.K == Int && b.K == Int {
		switch op {
		case "+":
			return NewInt(a.I + b.I), nil
		case "-":
			return NewInt(a.I - b.I), nil
		case "*":
			return NewInt(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return NullValue, nil
			}
			return NewInt(a.I / b.I), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return NullValue, nil
		}
		return NewFloat(x / y), nil
	}
	return NullValue, &arithError{op: op}
}

// AppendKey appends a self-delimiting encoding of v to dst. Two values encode
// to the same bytes iff Identical(a,b); numeric kinds are normalized so that
// Int 3 and Float 3.0 share a key, matching grouping semantics.
func AppendKey(dst []byte, v Value) []byte {
	switch v.K {
	case Null:
		return append(dst, 0)
	case Int, Float:
		f := v.AsFloat()
		// Encode integral floats and ints identically, but only within the
		// range where the float-to-int conversion is exact; beyond ±2⁶³ the
		// conversion would saturate and collide distinct values.
		if v.K == Int || (f == math.Trunc(f) && f >= -9.223372036854775e18 && f <= 9.223372036854775e18) {
			var i int64
			if v.K == Int {
				i = v.I
			} else {
				i = int64(f)
			}
			dst = append(dst, 1)
			return appendUint64(dst, uint64(i))
		}
		dst = append(dst, 2)
		return appendUint64(dst, math.Float64bits(f))
	case Str:
		dst = append(dst, 3)
		dst = appendUint64(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	case Bool:
		dst = append(dst, 4, byte(v.I))
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// AppendKeys appends the self-delimiting encodings of all values to dst,
// equivalent to appending Key(vs) but without materializing a string. Hot
// loops that probe maps with a reused scratch buffer (looked up via the
// no-alloc string(buf) conversion) use this to avoid one allocation per
// tuple.
func AppendKeys(dst []byte, vs []Value) []byte {
	for _, v := range vs {
		dst = AppendKey(dst, v)
	}
	return dst
}

// Key returns the grouping key for a tuple of values.
func Key(vs []Value) string {
	return string(AppendKeys(nil, vs))
}
