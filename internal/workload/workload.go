// Package workload generates the deterministic synthetic datasets used by
// the experiment harness. The paper evaluates on Major League Baseball
// season statistics (Sean Lahman's archive, ~3×10⁵ rows); since that data
// cannot ship with this reproduction, the generators below produce season
// statistics with the properties the experiments depend on: heavy-tailed,
// positively correlated attribute pairs (Figure 2 plots two such pairs),
// many duplicate attribute combinations (what memoization exploits), and
// highly selective iceberg thresholds.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// PlayerPerformance builds the pivoted season-statistics table
// player_performance(playerid, year, round, teamid, b_h, b_hr, b_rbi, b_sb,
// b_bb) with n rows (player-seasons). Statistics are integer-valued,
// correlated through a latent talent factor, and heavy-tailed like real
// batting lines: many part-time seasons with tiny counts, a long tail of
// stars.
func PlayerPerformance(n int, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("player_performance", []value.Column{
		{Name: "playerid", Type: value.Int},
		{Name: "year", Type: value.Int},
		{Name: "round", Type: value.Int},
		{Name: "teamid", Type: value.Str},
		{Name: "b_h", Type: value.Float},
		{Name: "b_hr", Type: value.Float},
		{Name: "b_rbi", Type: value.Float},
		{Name: "b_sb", Type: value.Float},
		{Name: "b_bb", Type: value.Float},
	}, []string{"playerid", "year", "round"})
	for _, c := range []string{"b_h", "b_hr", "b_rbi", "b_sb", "b_bb"} {
		t.Positive[c] = true
	}
	t.Rows = make([]value.Row, 0, n)
	player := 0
	for len(t.Rows) < n {
		p := newPlayer(rng, player)
		player++
		seasons := 1 + rng.Intn(12)
		for s := 0; s < seasons && len(t.Rows) < n; s++ {
			row := p.season(rng, s)
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// ClusteredPerformance builds the same player-season data as
// PlayerPerformance but physically sorted by (year, playerid, round), the
// way a season archive loaded year by year would lie on disk. The clustered
// layout is what zone-map data skipping exploits: a range predicate on year
// touches a contiguous run of blocks and every other block's [min,max]
// summary excludes it outright. The table is named "perf_clustered" so it
// can coexist with the unsorted table in one catalog; row content for a
// given (n, seed) is a permutation of PlayerPerformance(n, seed).
func ClusteredPerformance(n int, seed int64) *storage.Table {
	t := PlayerPerformance(n, seed)
	t.Name = "perf_clustered"
	for i := range t.Schema {
		t.Schema[i].Qualifier = t.Name
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		if a[1].I != b[1].I { // year
			return a[1].I < b[1].I
		}
		if a[0].I != b[0].I { // playerid
			return a[0].I < b[0].I
		}
		return a[2].I < b[2].I // round
	})
	return t
}

type playerProfile struct {
	id      int
	talent  float64 // latent skill, heavy-tailed
	power   float64 // home-run tendency (0..1)
	speed   float64 // stolen-base tendency, anti-correlated with power
	eye     float64 // walk tendency
	team    string
	debut   int
	regular bool // full-time player vs. bench/september call-up
}

func newPlayer(rng *rand.Rand, id int) *playerProfile {
	talent := math.Abs(rng.NormFloat64())
	power := clamp01(0.15 + 0.3*rng.NormFloat64())
	return &playerProfile{
		id:      id,
		talent:  talent,
		power:   power,
		speed:   clamp01(0.6 - 0.5*power + 0.25*rng.NormFloat64()),
		eye:     clamp01(0.2 + 0.25*talent + 0.2*rng.NormFloat64()),
		team:    fmt.Sprintf("T%02d", rng.Intn(30)),
		debut:   1980 + rng.Intn(35),
		regular: rng.Float64() < 0.4,
	}
}

// season produces one season line. Counting stats scale with plate
// appearances; a large fraction of seasons are partial, producing the
// characteristic mass near the origin visible in Figure 2.
func (p *playerProfile) season(rng *rand.Rand, s int) value.Row {
	pa := 30 + rng.Intn(120) // partial season
	if p.regular && rng.Float64() < 0.8 {
		pa = 350 + rng.Intn(350)
	}
	rate := 0.16 + 0.035*p.talent + 0.01*rng.NormFloat64()
	h := math.Max(0, float64(pa)*rate)
	hr := math.Max(0, h*(0.015+0.12*p.power+0.01*rng.NormFloat64()))
	rbi := math.Max(0, 0.45*h+1.4*hr+3*rng.NormFloat64())
	sb := math.Max(0, float64(pa)/600*(25*p.speed+4*rng.NormFloat64()))
	bb := math.Max(0, float64(pa)*(0.03+0.09*p.eye+0.008*rng.NormFloat64()))
	return value.Row{
		value.NewInt(int64(p.id)),
		value.NewInt(int64(p.debut + s)),
		value.NewInt(int64(s % 2)),
		value.NewStr(p.team),
		value.NewFloat(math.Round(h)),
		value.NewFloat(math.Round(hr)),
		value.NewFloat(math.Round(rbi)),
		value.NewFloat(math.Round(sb)),
		value.NewFloat(math.Round(bb)),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Scores builds the Score(pid, year, round, teamid, hits, hruns) table of
// the "pairs" query (Listing 4): per (player, year, round) batting lines
// with teammates sharing teamid/year/round so that player pairs exist.
func Scores(players, years int, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("Score", []value.Column{
		{Name: "pid", Type: value.Int},
		{Name: "year", Type: value.Int},
		{Name: "round", Type: value.Int},
		{Name: "teamid", Type: value.Str},
		{Name: "hits", Type: value.Float},
		{Name: "hruns", Type: value.Float},
	}, []string{"pid", "year", "round"})
	t.Positive["hits"] = true
	t.Positive["hruns"] = true
	teams := players/12 + 1
	for p := 0; p < players; p++ {
		prof := newPlayer(rng, p)
		team := p % teams // stable team so pairs persist across years
		// A third of players are short-career call-ups: they fall below the
		// pairs query's co-occurrence threshold and are exactly what the
		// a-priori reducer removes before the self-join.
		career := 1 + rng.Intn(years)
		if rng.Float64() < 0.3 {
			career = 1
		}
		start := rng.Intn(years - 1)
		for y := start; y < start+career && y < years; y++ {
			for r := 0; r < 2; r++ {
				if rng.Float64() < 0.15 {
					continue
				}
				row := prof.season(rng, y)
				t.Rows = append(t.Rows, value.Row{
					value.NewInt(int64(p)),
					value.NewInt(int64(2000 + y)),
					value.NewInt(int64(r)),
					value.NewStr(fmt.Sprintf("T%02d", team)),
					row[4], // hits
					row[5], // home runs
				})
			}
		}
	}
	return t
}

// Attrs lists the unpivoted statistic names of UnpivotedPerformance.
var Attrs = []string{"b_h", "b_hr", "b_rbi", "b_sb", "b_bb"}

// UnpivotedPerformance re-organizes player seasons as key–value rows, the
// layout the paper's complex query (Listing 3) runs on:
// performance_kv(id, category, attr, val), one row per (season, statistic).
// category buckets players into comparable groups (the paper compares
// products of the same category; here seasons of the same era).
func UnpivotedPerformance(n int, seed int64) *storage.Table {
	pivoted := PlayerPerformance((n+len(Attrs)-1)/len(Attrs), seed)
	t := storage.NewTable("performance_kv", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "category", Type: value.Str},
		{Name: "attr", Type: value.Str},
		{Name: "val", Type: value.Float},
	}, []string{"id", "attr"})
	t.Positive["val"] = true
	for i, row := range pivoted.Rows {
		year := row[1].I
		era := fmt.Sprintf("era%d", (year/5)%6)
		for a, name := range Attrs {
			if len(t.Rows) >= n {
				return t
			}
			t.Rows = append(t.Rows, value.Row{
				value.NewInt(int64(i)),
				value.NewStr(era),
				value.NewStr(name),
				row[4+a],
			})
		}
	}
	return t
}

// Dist selects the point distribution of Objects.
type Dist int

// The standard skyline-benchmark distributions.
const (
	Independent Dist = iota
	Correlated
	AntiCorrelated
)

// Objects builds the Object(id, x, y) table of the k-skyband query
// (Listing 2) with n points drawn from the requested distribution.
func Objects(n int, dist Dist, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("Object", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "x", Type: value.Float},
		{Name: "y", Type: value.Float},
	}, []string{"id"})
	for i := 0; i < n; i++ {
		var x, y float64
		switch dist {
		case Correlated:
			base := rng.Float64()
			x = clamp01(base + 0.15*rng.NormFloat64())
			y = clamp01(base + 0.15*rng.NormFloat64())
		case AntiCorrelated:
			base := rng.Float64()
			x = clamp01(base + 0.1*rng.NormFloat64())
			y = clamp01(1 - base + 0.1*rng.NormFloat64())
		default:
			x, y = rng.Float64(), rng.Float64()
		}
		t.Rows = append(t.Rows, value.Row{
			value.NewInt(int64(i)),
			value.NewFloat(math.Round(x*1000) / 1000),
			value.NewFloat(math.Round(y*1000) / 1000),
		})
	}
	return t
}

// Baskets builds the market-basket table Basket(bid, item) with nBaskets
// baskets over nItems distinct items. Item popularity is Zipf-distributed
// (exponent zipfS > 1), producing the frequent/infrequent split the
// a-priori technique exploits.
func Baskets(nBaskets, nItems, avgSize int, zipfS float64, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	if zipfS <= 1 {
		zipfS = 1.2
	}
	z := rand.NewZipf(rng, zipfS, 1, uint64(nItems-1))
	t := storage.NewTable("Basket", []value.Column{
		{Name: "bid", Type: value.Int},
		{Name: "item", Type: value.Str},
	}, []string{"bid", "item"})
	for b := 0; b < nBaskets; b++ {
		size := 1 + rng.Intn(2*avgSize)
		seen := map[uint64]bool{}
		for k := 0; k < size; k++ {
			it := z.Uint64()
			if seen[it] {
				continue
			}
			seen[it] = true
			t.Rows = append(t.Rows, value.Row{
				value.NewInt(int64(b)),
				value.NewStr(fmt.Sprintf("item%04d", it)),
			})
		}
	}
	return t
}
