package workload

import (
	"testing"

	"smarticeberg/internal/value"
)

func TestPlayerPerformanceShape(t *testing.T) {
	tab := PlayerPerformance(5000, 1)
	if len(tab.Rows) != 5000 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Determinism.
	again := PlayerPerformance(5000, 1)
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if !value.Identical(tab.Rows[i][j], again.Rows[i][j]) {
				t.Fatalf("not deterministic at row %d col %d", i, j)
			}
		}
	}
	other := PlayerPerformance(5000, 2)
	same := true
	for i := range tab.Rows {
		if !value.Identical(tab.Rows[i][4], other.Rows[i][4]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	// Primary key must actually be unique.
	seen := map[string]bool{}
	hIdx, _ := tab.ColumnIndex("b_h")
	hrIdx, _ := tab.ColumnIndex("b_hr")
	var sumH, sumHr, sumHHr, sumH2, sumHr2 float64
	for _, r := range tab.Rows {
		k := value.Key(r[:3])
		if seen[k] {
			t.Fatalf("duplicate primary key %v", r[:3])
		}
		seen[k] = true
		h, hr := r[hIdx].AsFloat(), r[hrIdx].AsFloat()
		if h < 0 || hr < 0 {
			t.Fatalf("negative counting stat: %v", r)
		}
		sumH += h
		sumHr += hr
		sumHHr += h * hr
		sumH2 += h * h
		sumHr2 += hr * hr
	}
	// Hits and home runs must be positively correlated (Figure 2's shape).
	n := float64(len(tab.Rows))
	cov := sumHHr/n - (sumH/n)*(sumHr/n)
	varH := sumH2/n - (sumH/n)*(sumH/n)
	varHr := sumHr2/n - (sumHr/n)*(sumHr/n)
	if corr := cov / (sqrt(varH) * sqrt(varHr)); corr < 0.3 {
		t.Errorf("expected positive h/hr correlation, got %.3f", corr)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is plenty here and avoids importing math for one call.
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

func TestScoresTeammatesExist(t *testing.T) {
	tab := Scores(120, 10, 3)
	if len(tab.Rows) == 0 {
		t.Fatal("empty Score table")
	}
	// Some (team, year, round) group must have at least two players,
	// otherwise the pairs query is vacuous.
	groups := map[string]map[int64]bool{}
	pidIdx, _ := tab.ColumnIndex("pid")
	for _, r := range tab.Rows {
		k := value.Key(value.Row{r[3], r[1], r[2]})
		if groups[k] == nil {
			groups[k] = map[int64]bool{}
		}
		groups[k][r[pidIdx].I] = true
	}
	best := 0
	for _, g := range groups {
		if len(g) > best {
			best = len(g)
		}
	}
	if best < 2 {
		t.Errorf("no teammates in any round: max group size %d", best)
	}
	if !tab.Positive["hits"] || !tab.Positive["hruns"] {
		t.Error("hits/hruns must be declared positive")
	}
}

func TestUnpivotedMatchesAttrs(t *testing.T) {
	tab := UnpivotedPerformance(1000, 1)
	if len(tab.Rows) != 1000 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	attrSet := map[string]bool{}
	for _, a := range Attrs {
		attrSet[a] = true
	}
	ids := map[int64]map[string]bool{}
	for _, r := range tab.Rows {
		if !attrSet[r[2].S] {
			t.Fatalf("unknown attr %q", r[2].S)
		}
		if ids[r[0].I] == nil {
			ids[r[0].I] = map[string]bool{}
		}
		if ids[r[0].I][r[2].S] {
			t.Fatalf("duplicate (id, attr): %v", r[:3])
		}
		ids[r[0].I][r[2].S] = true
	}
}

func TestObjectsDistributions(t *testing.T) {
	for _, d := range []Dist{Independent, Correlated, AntiCorrelated} {
		tab := Objects(2000, d, 7)
		if len(tab.Rows) != 2000 {
			t.Fatalf("rows: %d", len(tab.Rows))
		}
		var sx, sy, sxy, sx2, sy2 float64
		for _, r := range tab.Rows {
			x, y := r[1].F, r[2].F
			if x < 0 || x > 1 || y < 0 || y > 1 {
				t.Fatalf("point out of unit square: %v", r)
			}
			sx += x
			sy += y
			sxy += x * y
			sx2 += x * x
			sy2 += y * y
		}
		n := float64(len(tab.Rows))
		corr := (sxy/n - sx/n*sy/n) / (sqrt(sx2/n-sx/n*sx/n) * sqrt(sy2/n-sy/n*sy/n))
		switch d {
		case Correlated:
			if corr < 0.5 {
				t.Errorf("correlated dist corr=%.2f", corr)
			}
		case AntiCorrelated:
			if corr > -0.5 {
				t.Errorf("anticorrelated dist corr=%.2f", corr)
			}
		default:
			if corr < -0.2 || corr > 0.2 {
				t.Errorf("independent dist corr=%.2f", corr)
			}
		}
	}
}

func TestBasketsZipf(t *testing.T) {
	tab := Baskets(3000, 100, 5, 1.4, 2)
	counts := map[string]int{}
	perBasket := map[int64]map[string]bool{}
	for _, r := range tab.Rows {
		counts[r[1].S]++
		b := r[0].I
		if perBasket[b] == nil {
			perBasket[b] = map[string]bool{}
		}
		if perBasket[b][r[1].S] {
			t.Fatalf("duplicate item in basket %d", b)
		}
		perBasket[b][r[1].S] = true
	}
	// Zipf: the most popular item should dwarf the median.
	maxC, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if maxC < total/10 {
		t.Errorf("expected a heavy head: max item count %d of %d", maxC, total)
	}
}
