package failpoint

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Trigger gates when an armed site's action fires, turning one-shot fault
// injection into composable chaos schedules. The zero value fires on every
// hit. Fields combine: a hit must pass every set condition, evaluated in
// order After → Every → P.
type Trigger struct {
	// P, in (0,1), fires the action with probability P per eligible hit,
	// drawn from a PRNG seeded by the global seed xor the site name, so a
	// run is reproducible given the seed. 0 and >= 1 mean "always".
	P float64
	// After skips the first After hits (After=3 means the 4th hit is the
	// first eligible one) — the transient fault that appears mid-query.
	After int64
	// Every, when > 1, fires on every Every-th eligible hit starting with
	// the first — the periodic fault.
	Every int64
}

// String renders the trigger in spec grammar ("" for the always-trigger).
func (t Trigger) String() string {
	var parts []string
	if t.P > 0 && t.P < 1 {
		parts = append(parts, "p="+strconv.FormatFloat(t.P, 'g', -1, 64))
	}
	if t.After > 0 {
		parts = append(parts, "after="+strconv.FormatInt(t.After, 10))
	}
	if t.Every > 1 {
		parts = append(parts, "every="+strconv.FormatInt(t.Every, 10))
	}
	return strings.Join(parts, ":")
}

// Rule arms one site: the action to run and the trigger that gates it.
type Rule struct {
	Site    string
	Action  Action
	Trigger Trigger
	// Mode preserves the textual action ("error", "panic(msg)", ...) for
	// specs parsed by ParseSchedule, so a schedule can be logged or
	// re-serialized; empty for rules built in code.
	Mode string
}

// Schedule is a set of sites to arm together under one PRNG seed — the unit
// a chaos storm flips on and off. Arm and Disarm may be called repeatedly;
// each Arm restarts the per-site hit counters and PRNG streams, so two
// storms with the same seed and flip sequence inject identically.
type Schedule struct {
	Seed  int64 // 0 keeps the current seed
	Rules []Rule
}

// Arm seeds the PRNG (when Seed is non-zero) and arms every rule.
func (s *Schedule) Arm() {
	if s.Seed != 0 {
		SetSeed(s.Seed)
	}
	for i := range s.Rules {
		r := &s.Rules[i]
		EnableWith(r.Site, r.Action, r.Trigger)
	}
}

// ArmSite re-arms just the i-th rule (a storm flipping one site back on).
func (s *Schedule) ArmSite(i int) {
	r := &s.Rules[i]
	EnableWith(r.Site, r.Action, r.Trigger)
}

// Disarm disables every rule's site.
func (s *Schedule) Disarm() {
	for i := range s.Rules {
		Disable(s.Rules[i].Site)
	}
}

// ParseSchedule parses the SMARTICEBERG_FAILPOINTS grammar:
//
//	spec    := entry (';' entry)*
//	entry   := 'seed=' int                  -- PRNG seed for p= triggers
//	         | site '=' mode (':' trig)*
//	mode    := 'error' | 'error(' msg ')' | 'panic' | 'panic(' msg ')'
//	trig    := 'p=' float                   -- fire with probability p
//	         | 'after=' int                 -- skip the first N hits
//	         | 'every=' int                 -- then fire every Nth hit
//
// Examples:
//
//	engine/scan/next=error
//	seed=42;engine/scan/next=error:p=0.1;iceberg/nljp/binding=panic:after=100
//	spill/write=error(disk full):every=3
//
// Malformed entries, unknown modes, and out-of-range triggers are errors.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, rhs, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("failpoint: malformed spec entry %q (want point=mode or seed=N)", pair)
		}
		name, rhs = strings.TrimSpace(name), strings.TrimSpace(rhs)
		if name == "seed" {
			n, err := strconv.ParseInt(rhs, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("failpoint: bad seed %q: %v", rhs, err)
			}
			s.Seed = n
			continue
		}
		mode, trigSpec, _ := strings.Cut(rhs, ":")
		rule := Rule{Site: name, Mode: rhs}
		arg := ""
		if i := strings.IndexByte(mode, '('); i >= 0 && strings.HasSuffix(mode, ")") {
			arg = mode[i+1 : len(mode)-1]
			mode = mode[:i]
		}
		switch mode {
		case "error":
			if arg != "" {
				rule.Action = Error(fmt.Errorf("failpoint %s: %s", name, arg))
			} else {
				rule.Action = Error(nil)
			}
		case "panic":
			rule.Action = Panic(arg)
		default:
			return nil, fmt.Errorf("failpoint: unknown mode %q for point %s", mode, name)
		}
		if trigSpec != "" {
			t, err := parseTrigger(name, trigSpec)
			if err != nil {
				return nil, err
			}
			rule.Trigger = t
		}
		s.Rules = append(s.Rules, rule)
	}
	return s, nil
}

func parseTrigger(site, spec string) (Trigger, error) {
	var t Trigger
	for _, part := range strings.Split(spec, ":") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return t, fmt.Errorf("failpoint: malformed trigger %q for point %s (want p=/after=/every=)", part, site)
		}
		switch key {
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || f <= 0 || f > 1 {
				return t, fmt.Errorf("failpoint: bad probability %q for point %s (want 0 < p <= 1)", val, site)
			}
			t.P = f
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return t, fmt.Errorf("failpoint: bad after=%q for point %s", val, site)
			}
			t.After = n
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return t, fmt.Errorf("failpoint: bad every=%q for point %s", val, site)
			}
			t.Every = n
		default:
			return t, fmt.Errorf("failpoint: unknown trigger %q for point %s", key, site)
		}
	}
	return t, nil
}

// prng is a tiny splitmix64 generator: deterministic across Go versions
// (math/rand's stream is documented stable, but its lock is global and its
// seeding path changed across releases) and cheap enough to sit on a fault
// path.
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng {
	return &prng{state: uint64(seed)}
}

func (r *prng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *prng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// hashName is FNV-1a over the site name, mixed into the seed so each site
// gets an independent deterministic stream.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
