// Package failpoint is the engine's fault-injection harness, in the spirit
// of pingcap/failpoint but stdlib-only. Code under test declares named
// injection sites with Inject; tests (or the SMARTICEBERG_FAILPOINTS
// environment variable) arm a site with an Action that returns an error,
// panics, or cancels a context. A disarmed site costs one atomic load, so
// the calls stay in production builds.
//
//	failpoint.Enable(failpoint.ScanNext, failpoint.Error(errBoom))
//	defer failpoint.Reset()
//
// Env arming uses a semicolon-separated spec of point=mode pairs, where mode
// is "error", "panic", or "error(message)":
//
//	SMARTICEBERG_FAILPOINTS='engine/scan/next=error;iceberg/cache/insert=panic'
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Canonical injection-site names. Sites live in the execution engine; the
// names are declared here so tests can enumerate the matrix without
// importing internal engine packages for the strings.
const (
	ScanOpen  = "engine/scan/open"
	ScanNext  = "engine/scan/next"
	ScanClose = "engine/scan/close"

	FilterNext = "engine/filter/next"

	JoinOpen  = "engine/join/open"
	JoinNext  = "engine/join/next"
	JoinClose = "engine/join/close"

	AggOpen  = "engine/agg/open"
	AggNext  = "engine/agg/next"
	AggClose = "engine/agg/close"

	SortOpen = "engine/sort/open"

	ParallelWorkerStart = "engine/parallel/worker-start"
	ChunkWorkerStart    = "engine/chunk/worker-start"

	// Morsel scheduler hand-off sites: MorselEnqueue fires in a scan worker
	// right before it publishes a finished morsel to its delivery slot,
	// MorselDrain fires in the consumer right before it blocks on the next
	// in-order slot. Together they cover both sides of the ordered ring.
	MorselEnqueue = "engine/morsel/enqueue"
	MorselDrain   = "engine/morsel/drain"

	CacheInsert = "iceberg/cache/insert"
	CacheLookup = "iceberg/cache/lookup"
	NLJPBinding = "iceberg/nljp/binding"

	// Spill IO sites, one per disk path of internal/spill: query-directory
	// creation, frame/file writes (including file creation), buffer flushes,
	// frame reads, and temp-file removal. SpillCorrupt is special: arming it
	// with an error action makes the reader flip a payload byte before the
	// checksum check, so the real corruption-detection path runs instead of
	// a simulated failure.
	// Server-layer sites, one per stage of a request's life in icebergd:
	// ServerAdmit fires at the head of admission control, ServerEnqueue after
	// a queue slot is reserved but before the wait for a run token,
	// ServerHandler after admission right before query execution, and
	// ServerDrain at the head of the drain sequence. The admission sites
	// exercise the reject paths that must release their queue slot.
	ServerAdmit   = "server/admit"
	ServerEnqueue = "server/enqueue"
	ServerHandler = "server/handler"
	ServerDrain   = "server/drain"
	// ServerRetry fires at the head of each degraded re-execution in the
	// server's retry loop (never on the first attempt), so tests can fault
	// or observe the retry path itself.
	ServerRetry = "server/retry"

	SpillDir     = "spill/dir"
	SpillWrite   = "spill/write"
	SpillFlush   = "spill/flush"
	SpillRead    = "spill/read"
	SpillCorrupt = "spill/corrupt-frame"
	SpillRemove  = "spill/remove"

	// Scan-avoidance sites. A fault at any of them must degrade the query to
	// "no skipping" (recorded via engine.DegradeReason), never change its
	// result: ZoneMapBuild fires while a scan fetches a table's zone maps,
	// FilterBuild while a hash join folds its build keys into a transfer
	// filter, FilterTransfer while the finished filter is installed on the
	// probe side's scans.
	ZoneMapBuild   = "engine/zonemap/build"
	FilterBuild    = "engine/transfer/build"
	FilterTransfer = "engine/transfer/apply"
)

// Points returns every declared injection site, for test matrices.
func Points() []string {
	return []string{
		ScanOpen, ScanNext, ScanClose,
		FilterNext,
		JoinOpen, JoinNext, JoinClose,
		AggOpen, AggNext, AggClose,
		SortOpen,
		ParallelWorkerStart, ChunkWorkerStart,
		MorselEnqueue, MorselDrain,
		CacheInsert, CacheLookup, NLJPBinding,
		ServerAdmit, ServerEnqueue, ServerHandler, ServerDrain, ServerRetry,
		SpillDir, SpillWrite, SpillFlush, SpillRead, SpillCorrupt, SpillRemove,
		ZoneMapBuild, FilterBuild, FilterTransfer,
	}
}

// Action is what an armed failpoint does. It may return an error (injected
// as the site's failure), panic, or perform a side effect such as cancelling
// a context and return nil to let execution continue.
type Action func(name string) error

// ErrInjected is the default error injected by env-armed "error" mode and by
// Error(nil).
var ErrInjected = errors.New("failpoint: injected error")

// Error returns an Action that fails with err (ErrInjected when nil).
func Error(err error) Action {
	if err == nil {
		err = ErrInjected
	}
	return func(string) error { return err }
}

// Panic returns an Action that panics with a message naming the site.
func Panic(msg string) Action {
	return func(name string) error {
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("failpoint %s: %s", name, msg))
	}
}

// Cancel returns an Action that invokes cancel (e.g. a context.CancelFunc)
// and lets execution continue; the cancellation is then observed by the
// engine's regular deadline checks.
func Cancel(cancel func()) Action {
	return func(string) error { cancel(); return nil }
}

// Once wraps an Action so only the first trigger fires; later triggers
// no-op. Useful for injecting a single transient fault.
func Once(a Action) Action {
	var done atomic.Bool
	return func(name string) error {
		if done.Swap(true) {
			return nil
		}
		return a(name)
	}
}

type point struct {
	action Action
	trig   Trigger
	rmu    sync.Mutex // serializes PRNG draws for probabilistic triggers
	rng    *prng      // nil unless 0 < trig.P < 1
	hits   atomic.Int64
	fires  atomic.Int64
}

// shouldFire applies the point's trigger to the hit-ordinal h (1-based).
func (p *point) shouldFire(h int64) bool {
	t := p.trig
	if h <= t.After {
		return false
	}
	if t.Every > 1 && (h-t.After-1)%t.Every != 0 {
		return false
	}
	if p.rng != nil {
		p.rmu.Lock()
		ok := p.rng.float64() < t.P
		p.rmu.Unlock()
		return ok
	}
	return true
}

var (
	armed  atomic.Int32 // number of armed points; 0 = fast path
	mu     sync.Mutex
	points       = map[string]*point{}
	seed   int64 = 1 // PRNG seed for probabilistic triggers (see SetSeed)
)

// Inject is the per-site hook: it does nothing (one atomic load) unless the
// site is armed, in which case the armed Action runs (subject to the site's
// trigger — probabilistic, nth-hit, or periodic arming evaluates per hit).
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(name)
}

// InjectInto is Inject for call sites that fold the injected failure into an
// existing error variable: when the site fires with an error it stores it in
// *errp and reports true. It counts as fault coverage exactly like Inject
// (the icelint failcover pass recognizes both).
func InjectInto(name string, errp *error) bool {
	if err := Inject(name); err != nil {
		*errp = err
		return true
	}
	return false
}

func injectSlow(name string) error {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	h := p.hits.Add(1)
	if !p.shouldFire(h) {
		return nil
	}
	p.fires.Add(1)
	return p.action(name)
}

// Enable arms a site with an action that fires on every hit, replacing any
// previous arming.
func Enable(name string, a Action) {
	EnableWith(name, a, Trigger{})
}

// EnableWith arms a site with an action gated by a trigger, replacing any
// previous arming (hit and fire counters restart). Probabilistic triggers
// draw from a PRNG seeded with the global seed xor a hash of the site name,
// so the per-site draw sequence is deterministic given the seed no matter
// how many other sites are armed or in what order.
func EnableWith(name string, a Action, t Trigger) {
	p := &point{action: a, trig: t}
	if t.P > 0 && t.P < 1 {
		mu.Lock()
		s := seed
		mu.Unlock()
		p.rng = newPRNG(s ^ int64(hashName(name)))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = p
}

// Disable disarms one site.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every site and restores the default PRNG seed. Tests defer
// this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(0)
	seed = 1
}

// SetSeed fixes the PRNG seed that probabilistic triggers derive their
// per-site generators from. It affects sites armed after the call; arm the
// schedule after seeding (Schedule.Arm does this). The default seed is 1.
func SetSeed(s int64) {
	mu.Lock()
	defer mu.Unlock()
	seed = s
}

// Hits reports how many times a site has been reached since it was armed,
// whether or not the trigger let the action fire.
func Hits(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Fires reports how many times a site's action actually ran since it was
// armed. For an unconditional trigger Fires == Hits.
func Fires(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.fires.Load()
}

// EnableFromSpec parses spec (see ParseSchedule for the grammar) and arms
// every rule in it. Unknown modes, triggers, or malformed pairs are
// reported, not silently ignored.
func EnableFromSpec(spec string) error {
	s, err := ParseSchedule(spec)
	if err != nil {
		return err
	}
	s.Arm()
	return nil
}

func init() {
	if spec := os.Getenv("SMARTICEBERG_FAILPOINTS"); spec != "" {
		if err := EnableFromSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
