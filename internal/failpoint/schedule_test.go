package failpoint

import (
	"errors"
	"testing"
)

func hitN(t *testing.T, site string, n int) (fired int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if Inject(site) != nil {
			fired++
		}
	}
	return fired
}

func TestTriggerAfter(t *testing.T) {
	defer Reset()
	EnableWith(ScanNext, Error(nil), Trigger{After: 3})
	if got := hitN(t, ScanNext, 3); got != 0 {
		t.Fatalf("fired %d times within the skipped prefix", got)
	}
	if err := Inject(ScanNext); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th hit: got %v, want ErrInjected", err)
	}
	if Hits(ScanNext) != 4 || Fires(ScanNext) != 1 {
		t.Fatalf("hits=%d fires=%d, want 4/1", Hits(ScanNext), Fires(ScanNext))
	}
}

func TestTriggerEvery(t *testing.T) {
	defer Reset()
	EnableWith(ScanNext, Error(nil), Trigger{Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Inject(ScanNext) != nil)
	}
	want := []bool{true, false, false, true, false, false, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("every=3 pattern = %v, want %v", pattern, want)
		}
	}
}

func TestTriggerAfterEveryCompose(t *testing.T) {
	defer Reset()
	EnableWith(ScanNext, Error(nil), Trigger{After: 2, Every: 2})
	var fires []int
	for i := 1; i <= 8; i++ {
		if Inject(ScanNext) != nil {
			fires = append(fires, i)
		}
	}
	// Hits 1-2 skipped; eligible hits 3,4,5,... fire on every 2nd starting
	// with the first eligible: 3, 5, 7.
	want := []int{3, 5, 7}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

// TestTriggerProbabilisticDeterministic: the same seed reproduces the exact
// fire pattern; a different seed gives a different one; the empirical rate
// tracks p.
func TestTriggerProbabilisticDeterministic(t *testing.T) {
	defer Reset()
	run := func(seed int64) []bool {
		Reset()
		SetSeed(seed)
		EnableWith(ScanNext, Error(nil), Trigger{P: 0.25})
		out := make([]bool, 400)
		for i := range out {
			out[i] = Inject(ScanNext) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires < 60 || fires > 140 {
		t.Fatalf("p=0.25 fired %d/400 times, far from expectation", fires)
	}
}

// TestTriggerSeedIndependentOfOtherSites: a site's stream depends only on
// the seed and its own name, not on what else is armed.
func TestTriggerSeedIndependentOfOtherSites(t *testing.T) {
	defer Reset()
	pattern := func(arm func()) []bool {
		Reset()
		SetSeed(99)
		arm()
		out := make([]bool, 100)
		for i := range out {
			out[i] = Inject(ScanNext) != nil
		}
		return out
	}
	alone := pattern(func() {
		EnableWith(ScanNext, Error(nil), Trigger{P: 0.3})
	})
	crowded := pattern(func() {
		EnableWith(AggNext, Error(nil), Trigger{P: 0.3})
		EnableWith(ScanNext, Error(nil), Trigger{P: 0.3})
		EnableWith(NLJPBinding, Error(nil), Trigger{P: 0.3})
	})
	for i := range alone {
		if alone[i] != crowded[i] {
			t.Fatalf("arming other sites changed the stream at hit %d", i)
		}
	}
}

func TestParseScheduleGrammar(t *testing.T) {
	s, err := ParseSchedule("seed=42; engine/scan/next=error:p=0.1:after=5 ; iceberg/nljp/binding=panic(boom):every=3;spill/write=error(disk full)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed = %d, want 42", s.Seed)
	}
	if len(s.Rules) != 3 {
		t.Fatalf("%d rules, want 3", len(s.Rules))
	}
	r0 := s.Rules[0]
	if r0.Site != ScanNext || r0.Trigger.P != 0.1 || r0.Trigger.After != 5 {
		t.Fatalf("rule 0: %+v", r0)
	}
	if s.Rules[1].Trigger.Every != 3 {
		t.Fatalf("rule 1 trigger: %+v", s.Rules[1].Trigger)
	}
	if got := s.Rules[0].Trigger.String(); got != "p=0.1:after=5" {
		t.Fatalf("trigger renders as %q", got)
	}

	bad := []string{
		"x",
		"a=error:p=2",
		"a=error:p=0",
		"a=error:after=-1",
		"a=error:every=0",
		"a=error:bogus=1",
		"a=frobnicate",
		"seed=notanumber",
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted a malformed spec", spec)
		}
	}
}

func TestScheduleArmDisarmReproducible(t *testing.T) {
	defer Reset()
	s, err := ParseSchedule("seed=11;engine/scan/next=error:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		s.Arm()
		out := make([]bool, 50)
		for i := range out {
			out[i] = Inject(ScanNext) != nil
		}
		s.Disarm()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-armed schedule diverged at hit %d", i)
		}
	}
	if Inject(ScanNext) != nil {
		t.Fatal("disarmed site still fires")
	}
}

func TestInjectInto(t *testing.T) {
	defer Reset()
	var err error
	if InjectInto(ScanNext, &err) || err != nil {
		t.Fatal("disarmed InjectInto fired")
	}
	Enable(ScanNext, Error(nil))
	if !InjectInto(ScanNext, &err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("armed InjectInto: fired=%v err=%v", err != nil, err)
	}
}

func TestEnableFromSpecArms(t *testing.T) {
	defer Reset()
	if err := EnableFromSpec("engine/scan/next=error;engine/agg/next=panic(kaboom)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(ScanNext); !errors.Is(err, ErrInjected) {
		t.Fatalf("spec-armed error site: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("spec-armed panic site did not panic")
			}
		}()
		_ = Inject(AggNext)
	}()
}
