package failpoint

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestDisabledIsNoOp(t *testing.T) {
	Reset()
	if err := Inject(ScanNext); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	if Hits(ScanNext) != 0 {
		t.Fatal("disarmed site counted a hit")
	}
}

func TestEnableDisable(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable(ScanNext, Error(boom))
	if err := Inject(ScanNext); !errors.Is(err, boom) {
		t.Fatalf("Inject = %v, want boom", err)
	}
	// Other sites stay disarmed.
	if err := Inject(ScanOpen); err != nil {
		t.Fatalf("unrelated site fired: %v", err)
	}
	if Hits(ScanNext) != 1 {
		t.Fatalf("Hits = %d, want 1", Hits(ScanNext))
	}
	Disable(ScanNext)
	if err := Inject(ScanNext); err != nil {
		t.Fatalf("disabled site still fires: %v", err)
	}
}

func TestErrorNilDefaultsToErrInjected(t *testing.T) {
	defer Reset()
	Enable(JoinOpen, Error(nil))
	if err := Inject(JoinOpen); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
}

func TestPanicActionNamesTheSite(t *testing.T) {
	defer Reset()
	Enable(AggOpen, Panic("kaboom"))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, AggOpen) || !strings.Contains(msg, "kaboom") {
			t.Fatalf("panic value %v does not name site and message", r)
		}
	}()
	_ = Inject(AggOpen)
}

func TestCancelAction(t *testing.T) {
	defer Reset()
	ctx, cancel := context.WithCancel(context.Background())
	Enable(SortOpen, Cancel(cancel))
	if err := Inject(SortOpen); err != nil {
		t.Fatalf("Cancel action must let execution continue, got %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
}

func TestOnce(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable(CacheInsert, Once(Error(boom)))
	if err := Inject(CacheInsert); !errors.Is(err, boom) {
		t.Fatalf("first trigger = %v, want boom", err)
	}
	for i := 0; i < 3; i++ {
		if err := Inject(CacheInsert); err != nil {
			t.Fatalf("trigger %d after Once fired: %v", i+2, err)
		}
	}
	if Hits(CacheInsert) != 4 {
		t.Fatalf("Hits = %d, want 4 (hits count triggers, not fired actions)", Hits(CacheInsert))
	}
}

func TestEnableFromSpec(t *testing.T) {
	defer Reset()
	if err := EnableFromSpec("engine/scan/next=error;iceberg/cache/insert=error(cache broke)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(ScanNext); !errors.Is(err, ErrInjected) {
		t.Fatalf("ScanNext = %v, want ErrInjected", err)
	}
	err := Inject(CacheInsert)
	if err == nil || !strings.Contains(err.Error(), "cache broke") {
		t.Fatalf("CacheInsert = %v, want the spec message", err)
	}
	if err := EnableFromSpec("x=frobnicate"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := EnableFromSpec("justapoint"); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

func TestPointsEnumeratesEverySite(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points() {
		if seen[p] {
			t.Fatalf("duplicate point %s", p)
		}
		seen[p] = true
	}
	for _, p := range []string{ScanOpen, FilterNext, JoinNext, AggClose, SortOpen, ParallelWorkerStart, ChunkWorkerStart, CacheInsert, CacheLookup, NLJPBinding} {
		if !seen[p] {
			t.Fatalf("Points() missing %s", p)
		}
	}
}

// TestConcurrentInject: arming, firing, and disarming from many goroutines
// stays race-free (the engine's workers call Inject concurrently).
func TestConcurrentInject(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = Inject(ScanNext)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		Enable(ScanNext, Error(nil))
		Disable(ScanNext)
	}
	wg.Wait()
}
