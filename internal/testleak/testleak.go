// Package testleak is a minimal goroutine-leak detector for tests, in the
// spirit of go.uber.org/goleak but stdlib-only. Call Check at the top of a
// test; at cleanup time it waits briefly for the goroutine count to return
// to the starting level and fails the test with a full stack dump if it
// does not. The engine's workers all join before their operator returns, so
// any surplus goroutine at cleanup is a leak, not scheduling noise.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that fails the
// test if, after a grace period, more goroutines are running than when the
// test began.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			// Let exiting workers finish their final scheduling step.
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines before test, %d after\n%s", before, after, buf[:n])
	})
}
