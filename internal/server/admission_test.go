package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"smarticeberg/internal/resource"
	"smarticeberg/internal/testleak"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmitFastPath(t *testing.T) {
	a := newAdmission(2, 4, nil, 0)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.active.Load(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	g1.release()
	g2.release()
	if got := a.active.Load(); got != 0 {
		t.Fatalf("active after release = %d, want 0", got)
	}
	if a.finished.Load() != 2 || a.admitted.Load() != 2 {
		t.Fatalf("counters: admitted=%d finished=%d", a.admitted.Load(), a.finished.Load())
	}
	if len(a.tokens) != 2 {
		t.Fatalf("tokens not returned: %d of 2 free", len(a.tokens))
	}
}

func TestAdmitQueueFullSheds(t *testing.T) {
	testleak.Check(t)
	a := newAdmission(1, 1, nil, 0)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		g, err := a.admit(context.Background())
		if g != nil {
			defer g.release()
		}
		queued <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return a.queue.Used() == 1 })

	_, err = a.admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("shed error is %T, want *OverloadError", err)
	}
	if oe.Queued != 1 || oe.QueueDepth != 1 || oe.Active != 1 {
		t.Fatalf("overload fields: %+v", oe)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %s, want > 0", oe.RetryAfter)
	}
	if a.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", a.shed.Load())
	}

	g1.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
	if a.queue.Used() != 0 {
		t.Fatalf("queue slots leaked: %d", a.queue.Used())
	}
}

func TestAdmitDeadlineExpiredInQueue(t *testing.T) {
	a := newAdmission(1, 2, nil, 0)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer g1.release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = a.admit(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-while-queued returned %v, want DeadlineExceeded", err)
	}
	if a.queue.Used() != 0 {
		t.Fatalf("expired waiter leaked its queue slot: %d in use", a.queue.Used())
	}
	if a.expired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", a.expired.Load())
	}
	// A request that is already dead is rejected before taking anything.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := a.admit(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-arrival returned %v, want Canceled", err)
	}
}

func TestAdmitNoQueueShedsImmediately(t *testing.T) {
	a := newAdmission(1, 0, nil, 0)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer g1.release()
	if _, err := a.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-less overflow returned %v, want ErrOverloaded", err)
	}
}

func TestAdmitDraining(t *testing.T) {
	testleak.Check(t)
	a := newAdmission(1, 2, nil, 0)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := a.admit(context.Background())
		queued <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return a.queue.Used() == 1 })

	a.beginDrain()
	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter got %v during drain, want ErrDraining", err)
	}
	if a.queue.Used() != 0 {
		t.Fatalf("drained waiter leaked its queue slot: %d in use", a.queue.Used())
	}
	if _, err := a.admit(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain admit returned %v, want ErrDraining", err)
	}
	a.beginDrain() // idempotent

	g1.release()
	if err := a.awaitIdle(context.Background(), time.Second, func() int { return 0 }); err != nil {
		t.Fatalf("awaitIdle on idle server: %v", err)
	}
}

func TestCarveFailureIsOverload(t *testing.T) {
	global := resource.NewBudget(100)
	a := newAdmission(4, 0, global, 60)
	g1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Tokens remain, but the global budget cannot fit a second 60-byte carve.
	_, err = a.admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("carve failure returned %v, want ErrOverloaded", err)
	}
	if len(a.tokens) != 3 {
		t.Fatalf("failed carve did not return its token: %d of 4 free", len(a.tokens))
	}
	g1.release()
	if global.Used() != 0 {
		t.Fatalf("budget leaked: %d bytes", global.Used())
	}
	g2, err := a.admit(context.Background())
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	g2.release()
}

func TestGrantReleaseIdempotent(t *testing.T) {
	global := resource.NewBudget(100)
	a := newAdmission(1, 0, global, 40)
	g, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g.release()
	g.release()
	if global.Used() != 0 || a.active.Load() != 0 || len(a.tokens) != 1 {
		t.Fatalf("double release corrupted accounting: used=%d active=%d tokens=%d",
			global.Used(), a.active.Load(), len(a.tokens))
	}
	var nilGrant *grant
	nilGrant.release() // nil-safe
}
