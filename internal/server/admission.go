// Package server is icebergd's engine room: a long-lived, concurrent query
// service over shared tables with the robustness machinery of PRs 3–6
// promoted from query scope to process scope — global admission control
// carving per-query budgets out of one server budget, a bounded admission
// queue with typed load shedding, per-query fault isolation (panic
// containment at the handler boundary, the degrade ladder as the pressure
// relief valve), graceful drain, and a process-wide versioned NLJP cache.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
)

// ErrOverloaded is the sentinel for typed load shedding: the server refused
// the query because the admission queue (or the global memory budget) is
// full. Clients match it with errors.Is; the HTTP layer maps it to 429 with
// a Retry-After hint. The concrete error is an *OverloadError.
var ErrOverloaded = errors.New("server overloaded")

// ErrDraining is returned for queries arriving (or queued) after drain
// began; the HTTP layer maps it to 503.
var ErrDraining = errors.New("server draining")

// OverloadError carries the shed decision's context and a retry hint
// derived from the recent average query duration and the queue state.
type OverloadError struct {
	Active     int64
	Queued     int64
	QueueDepth int
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: %d running, %d of %d queued; retry in %s",
		ErrOverloaded, e.Active, e.Queued, e.QueueDepth, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrOverloaded) work.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// admission is the server's gate: MaxConcurrent run tokens, a bounded wait
// queue, and the global budget that per-query budgets are carved from.
//
// The queue is itself a resource.Budget of one unit per waiter, acquired
// through the Reservation API, which puts every reject path under the
// budgetbalance lint: a path that sheds, times out, or drains without
// releasing its queue slot is a compile-time (lint-time) error, not a slow
// capacity leak in production.
type admission struct {
	tokens   chan struct{}    // capacity = MaxConcurrent, holds free run tokens
	queue    *resource.Budget // one unit per queued waiter; nil = no queue
	depth    int
	global   *resource.Budget // server-wide bytes; per-query budgets carve from it
	queryMem int64            // bytes carved per admitted query (0 with nil global)

	draining atomic.Bool
	drainCh  chan struct{}

	active   atomic.Int64
	admitted atomic.Int64
	finished atomic.Int64
	shed     atomic.Int64
	expired  atomic.Int64 // deadline hit while queued (cheap rejects)
	avgNanos atomic.Int64 // EWMA of completed-query wall time
}

func newAdmission(maxConcurrent, queueDepth int, global *resource.Budget, queryMem int64) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	a := &admission{
		tokens:   make(chan struct{}, maxConcurrent),
		depth:    queueDepth,
		global:   global,
		queryMem: queryMem,
		drainCh:  make(chan struct{}),
	}
	for i := 0; i < maxConcurrent; i++ {
		a.tokens <- struct{}{}
	}
	if queueDepth > 0 {
		a.queue = resource.NewBudget(int64(queueDepth))
	}
	return a
}

// grant is one admitted query's claim: a run token, the memory carved from
// the global budget, and the bookkeeping to return both exactly once.
type grant struct {
	a     *admission
	mem   *resource.Reservation
	start time.Time
	done  atomic.Bool
}

// release returns the grant; safe to call more than once (the first wins),
// so handler teardown and panic unwinding cannot double-free a token.
func (g *grant) release() {
	if g == nil || g.done.Swap(true) {
		return
	}
	g.mem.Release()
	g.a.active.Add(-1)
	g.a.finished.Add(1)
	g.a.observe(time.Since(g.start))
	g.a.tokens <- struct{}{}
}

// admit gates one query. The fast path takes a free run token; otherwise the
// caller waits in the bounded queue until a token frees, its own deadline
// expires (a query whose deadline passed while queued is rejected without
// ever being started — the cheap reject), or drain begins. A full queue
// sheds immediately with a typed *OverloadError.
func (a *admission) admit(ctx context.Context) (*grant, error) {
	if err := failpoint.Inject(failpoint.ServerAdmit); err != nil {
		return nil, err
	}
	if a.draining.Load() {
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		return nil, err // dead on arrival
	}
	select {
	case <-a.tokens:
		return a.carve()
	default:
	}
	if a.queue == nil {
		a.shed.Add(1)
		return nil, a.overloadError()
	}
	slot, err := a.queue.Acquire("admission queue", 1)
	if err != nil {
		a.shed.Add(1)
		return nil, a.overloadError()
	}
	// The slot covers only the wait; the deferred release frees it on every
	// exit — admission, rejection, and panics injected below alike.
	defer slot.Release()
	if err := failpoint.Inject(failpoint.ServerEnqueue); err != nil {
		return nil, err
	}
	select {
	case <-a.tokens:
		// A token and a dead context can be ready together, and select picks
		// between ready cases at random: re-check so a waiter whose client
		// already disconnected (or whose deadline passed) never starts
		// executing — return the token and count the cheap reject.
		if err := ctx.Err(); err != nil {
			a.tokens <- struct{}{}
			a.expired.Add(1)
			return nil, err
		}
		return a.carve()
	case <-ctx.Done():
		a.expired.Add(1)
		return nil, ctx.Err()
	case <-a.drainCh:
		return nil, ErrDraining
	}
}

// carve turns a run token into a grant by carving the per-query memory out
// of the global budget; a global budget too depleted to carve from (shared
// caches and other queries hold the rest) is an overload, shed like a full
// queue.
func (a *admission) carve() (*grant, error) {
	mem, err := a.global.Acquire("admitted query", a.queryMem)
	if err != nil {
		a.tokens <- struct{}{}
		a.shed.Add(1)
		return nil, a.overloadError()
	}
	a.active.Add(1)
	a.admitted.Add(1)
	return &grant{a: a, mem: mem, start: time.Now()}, nil
}

// observe folds a completed query's wall time into the EWMA behind the
// Retry-After hints (α = 1/8).
func (a *admission) observe(d time.Duration) {
	old := a.avgNanos.Load()
	a.avgNanos.Store(old - old/8 + int64(d)/8)
}

// overloadError builds the typed shed error. The hint estimates when a slot
// should free: the recent average query duration scaled by how many queries
// are ahead per run token, clamped to a sane range.
func (a *admission) overloadError() *OverloadError {
	e := &OverloadError{
		Active:     a.active.Load(),
		Queued:     a.queue.Used(),
		QueueDepth: a.depth,
	}
	avg := time.Duration(a.avgNanos.Load())
	ahead := e.Queued + 1
	slots := int64(cap(a.tokens))
	hint := avg * time.Duration(ahead) / time.Duration(slots)
	if hint < 25*time.Millisecond {
		hint = 25 * time.Millisecond
	}
	if hint > 10*time.Second {
		hint = 10 * time.Second
	}
	e.RetryAfter = hint
	return e
}

// beginDrain closes the gate: later admits fail fast with ErrDraining and
// queued waiters are woken and rejected. Idempotent.
func (a *admission) beginDrain() {
	if a.draining.CompareAndSwap(false, true) {
		close(a.drainCh)
	}
}

// awaitIdle waits for every in-flight query to finish. When ctx expires
// first it calls cancelStragglers (the server cancels each query's context)
// and keeps waiting up to grace for the cancellations to unwind — engine
// operators poll their context every 64 rows, so this is bounded in
// practice. It returns an error only if stragglers survive even that.
func (a *admission) awaitIdle(ctx context.Context, grace time.Duration, cancelStragglers func() int) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for a.active.Load() > 0 {
		select {
		case <-ctx.Done():
			n := cancelStragglers()
			deadline := time.Now().Add(grace)
			for a.active.Load() > 0 {
				if time.Now().After(deadline) {
					return fmt.Errorf("drain: %d of %d cancelled queries still running after %s: %w",
						a.active.Load(), n, grace, ctx.Err())
				}
				time.Sleep(time.Millisecond)
			}
			return nil
		case <-tick.C:
		}
	}
	return nil
}
