package server

import (
	"bytes"
	"context"
	"errors"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
)

// syncBuf is a log sink safe for the watchdog's timer goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRetryRecoversTransient: a one-shot injected handler fault is absorbed
// by the degraded retry — the caller sees the correct rows, one rung down,
// with the recovery recorded in the report and the server stats.
func TestRetryRecoversTransient(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 120)
	want := wantRows(t, s, skySQL)

	failpoint.Enable(failpoint.ServerHandler, failpoint.Once(failpoint.Error(nil)))
	res, rep, info, err := s.RunQueryInfo(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatalf("recovered attempt changed the answer: %v", err)
	}
	if info.Attempts != 2 || info.FinalDegrade != "no-skip" {
		t.Fatalf("info = %+v, want 2 attempts at rung no-skip", info)
	}
	if rep.Attempts != 2 || rep.FinalDegrade != "no-skip" {
		t.Fatalf("report attempts=%d rung=%q", rep.Attempts, rep.FinalDegrade)
	}
	st := s.StatsSnapshot()
	if st.Retries != 1 || st.Recovered != 1 {
		t.Fatalf("stats retries=%d recovered=%d, want 1/1", st.Retries, st.Recovered)
	}
	if used := s.Budget().Used(); used != 0 {
		t.Fatalf("recovery leaked %d budget bytes", used)
	}
}

// TestRetryLadderDescent: a fault that keeps firing for two attempts forces
// the query down to the spill rung before it succeeds.
func TestRetryLadderDescent(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true, Spill: true, SpillDir: t.TempDir()}, 120)
	want := wantRows(t, s, skySQL)

	// After=0, fires on hits 1 and 2 only (Every can't express "first two",
	// so count by hand).
	var n int
	var mu sync.Mutex
	failpoint.Enable(failpoint.ServerHandler, func(string) error {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n <= 2 {
			return failpoint.ErrInjected
		}
		return nil
	})
	res, _, info, err := s.RunQueryInfo(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if info.Attempts != 3 || info.FinalDegrade != "spill" {
		t.Fatalf("info = %+v, want 3 attempts at rung spill", info)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatalf("spill-rung answer differs: %v", err)
	}
}

// TestRetryNotForFatal: an unclassified error is Fatal — retrying it would
// waste the deadline on a failure that will not heal.
func TestRetryNotForFatal(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 120)

	boom := errors.New("schema corrupt")
	failpoint.Enable(failpoint.ServerHandler, failpoint.Error(boom))
	_, _, info, err := s.RunQueryInfo(context.Background(), "", skySQL, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the fatal error back", err)
	}
	if info.Attempts != 1 || info.Class != engine.ClassFatal {
		t.Fatalf("info = %+v, want 1 attempt classified fatal", info)
	}
	if st := s.StatsSnapshot(); st.Retries != 0 {
		t.Fatalf("fatal error consumed %d retries", st.Retries)
	}
}

// TestDrainSkipsRetry: a retryable failure on a draining server surfaces
// immediately — a retry is new work, and drain means no new work.
func TestDrainSkipsRetry(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 120)

	// The fault itself begins the drain, so the interleaving is exact:
	// attempt 1 fails transiently after drain has started.
	failpoint.Enable(failpoint.ServerHandler, func(string) error {
		s.adm.beginDrain()
		return failpoint.ErrInjected
	})
	_, _, info, err := s.RunQueryInfo(context.Background(), "", skySQL, nil)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if info.Attempts != 1 {
		t.Fatalf("draining server retried: %d attempts", info.Attempts)
	}
	if st := s.StatsSnapshot(); st.Retries != 0 {
		t.Fatalf("draining server recorded %d retries", st.Retries)
	}
}

// breakerServer builds a server with a fast-tripping breaker and retries off
// (each injected failure should surface, not heal).
func breakerServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true,
		MaxRetries: -1, BreakerWindow: 4, BreakerMinSamples: 4,
		BreakerThreshold: 0.5, BreakerCooldown: 60 * time.Millisecond,
		Log: log.New(&syncBuf{}, "", 0)}, 120)
	return s, s.CreateSession(QueryOptions{})
}

// TestBreakerTripsAndRecloses walks the full state machine: failures trip
// the breaker open, an open breaker sheds without consuming admission, the
// cooldown admits a half-open probe, and the probe's success re-closes it.
func TestBreakerTripsAndRecloses(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s, sid := breakerServer(t)

	failpoint.Enable(failpoint.ServerHandler, failpoint.Error(nil))
	for i := 0; i < 4; i++ {
		if _, _, err := s.RunQuery(context.Background(), sid, skySQL, nil); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("query %d: got %v, want ErrInjected", i, err)
		}
	}
	admitted := s.adm.admitted.Load()

	// Tripped: the next query is shed with the typed error, before admission.
	var be *BreakerOpenError
	_, _, err := s.RunQuery(context.Background(), sid, skySQL, nil)
	if !errors.As(err, &be) {
		t.Fatalf("got %v (%T), want *BreakerOpenError", err, err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("open breaker gave no Retry-After hint: %+v", be)
	}
	if got := s.adm.admitted.Load(); got != admitted {
		t.Fatalf("shed query was admitted (%d -> %d)", admitted, got)
	}
	st := s.StatsSnapshot()
	if st.BreakerShed != 1 || st.Breakers["open"] != 1 {
		t.Fatalf("stats breaker_shed=%d breakers=%v", st.BreakerShed, st.Breakers)
	}

	// Heal the fault, wait out the cooldown: the half-open probe succeeds
	// and the breaker re-closes.
	failpoint.Reset()
	time.Sleep(80 * time.Millisecond)
	if _, _, err := s.RunQuery(context.Background(), sid, skySQL, nil); err != nil {
		t.Fatalf("half-open probe failed on a healthy server: %v", err)
	}
	if st := s.StatsSnapshot(); st.Breakers["closed"] != 1 {
		t.Fatalf("breaker did not re-close: %v", st.Breakers)
	}
	// An anonymous query never touches the breaker.
	if _, _, err := s.RunQuery(context.Background(), "", skySQL, nil); err != nil {
		t.Fatalf("anonymous query: %v", err)
	}
}

// TestBreakerHalfOpenReopens: a failing half-open probe sends the breaker
// straight back to open for another cooldown.
func TestBreakerHalfOpenReopens(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s, sid := breakerServer(t)

	failpoint.Enable(failpoint.ServerHandler, failpoint.Error(nil))
	for i := 0; i < 4; i++ {
		_, _, _ = s.RunQuery(context.Background(), sid, skySQL, nil)
	}
	time.Sleep(80 * time.Millisecond)
	// Probe admitted (fault still armed) — fails, breaker reopens.
	if _, _, err := s.RunQuery(context.Background(), sid, skySQL, nil); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("probe: got %v, want ErrInjected", err)
	}
	var be *BreakerOpenError
	if _, _, err := s.RunQuery(context.Background(), sid, skySQL, nil); !errors.As(err, &be) {
		t.Fatalf("after failed probe: got %v, want *BreakerOpenError", err)
	}
	if st := s.StatsSnapshot(); st.Breakers["open"] != 1 {
		t.Fatalf("breaker state after failed probe: %v", st.Breakers)
	}
}

// TestWatchdogForceCancel: a handler wedged past deadline+grace is detected
// by the watchdog, which force-cancels it and dumps labeled stacks to the
// server log. The query unwinds as canceled; nothing leaks.
func TestWatchdogForceCancel(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	buf := &syncBuf{}
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true,
		MaxRetries: -1, WatchdogGrace: 30 * time.Millisecond,
		Log: log.New(buf, "", 0)}, 120)

	// The fault wedges the handler on a channel the engine's context polling
	// cannot reach — exactly the stuck query the watchdog exists for.
	unwedge := make(chan struct{})
	failpoint.Enable(failpoint.ServerHandler, func(string) error {
		<-unwedge
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, _, _, err := s.RunQueryInfo(context.Background(), "", skySQL, &QueryOptions{TimeoutMS: 40})
		done <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for s.watchdogFired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(unwedge)
	err := <-done
	if classifyErr(err) != engine.ClassCanceled {
		t.Fatalf("stuck query unwound with %v (class %s), want canceled", err, classifyErr(err))
	}
	st := s.StatsSnapshot()
	if st.WatchdogFired != 1 {
		t.Fatalf("watchdog_fired = %d, want 1", st.WatchdogFired)
	}
	logged := buf.String()
	if !strings.Contains(logged, "watchdog") || !strings.Contains(logged, "SELECT") {
		t.Fatalf("watchdog dump missing label or stacks:\n%s", logged)
	}
	if used := s.Budget().Used(); used != 0 {
		t.Fatalf("watchdogged query leaked %d budget bytes", used)
	}
}

// TestQueuedWaiterObservesDisconnect: when a run token and a dead client
// context are ready simultaneously, the waiter must take the rejection —
// never start executing for a client that already hung up. The failpoint
// constructs the exact race: the waiter's context is cancelled and the token
// returned while it sits between enqueue and the select, so both cases are
// ready the moment it blocks.
func TestQueuedWaiterObservesDisconnect(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MaxConcurrent: 1, QueueDepth: 2,
		MemLimit: 64 << 20, NoSharedCache: true, MaxRetries: -1}, 60)

	for i := 0; i < 50; i++ {
		tok := <-s.adm.tokens // force the queued path
		ctx, cancel := context.WithCancel(context.Background())
		failpoint.Enable(failpoint.ServerEnqueue, func(string) error {
			cancel()
			s.adm.tokens <- tok
			return nil
		})
		admittedBefore := s.adm.admitted.Load()
		g, err := s.adm.admit(ctx)
		failpoint.Disable(failpoint.ServerEnqueue)
		if err == nil {
			g.release()
			t.Fatalf("iteration %d: disconnected waiter was admitted", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: got %v, want context.Canceled", i, err)
		}
		if got := s.adm.admitted.Load(); got != admittedBefore {
			t.Fatalf("iteration %d: admitted count moved %d -> %d", i, admittedBefore, got)
		}
		cancel()
	}
	if exp := s.adm.expired.Load(); exp != 50 {
		t.Fatalf("expired = %d, want 50", exp)
	}
	// The token pool must be intact: a full drain of all tokens succeeds.
	if len(s.adm.tokens) != 1 {
		t.Fatalf("token pool = %d, want 1", len(s.adm.tokens))
	}
}
