package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
	"smarticeberg/internal/workload"
)

// Handler returns icebergd's HTTP API: a JSON skin over the server core.
//
//	POST /session          {"opts": {...}}                  -> {"session": "s1"}
//	POST /tables/workload  {"kind": "score", "rows": 100}   -> {"table": "...", "rows": n}
//	POST /exec             {"sql": "CREATE TABLE ..."}      -> {"rows_affected": n}
//	POST /query            {"sql": "...", "session": "s1",
//	                        "opts": {...}}                  -> {"columns": [...], "rows": [[...]]}
//	GET  /stats                                             -> Stats
//	GET  /healthz                                           -> 200, or 503 while draining
//
// Failures are JSON objects {"error","code","retry_after_ms"}; overload maps
// to 429 with a Retry-After header, drain to 503, deadline to 504.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", s.handleSession)
	mux.HandleFunc("POST /tables/workload", s.handleWorkload)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// Class is the error-taxonomy class (transient, resource, overload,
	// canceled, fatal) so clients can pick a retry policy without parsing
	// messages; Attempts counts execution attempts when the server retried.
	Class    string `json:"class,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError maps the server's typed failures onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	writeErrorInfo(w, err, nil)
}

func writeErrorInfo(w http.ResponseWriter, err error, info *RunInfo) {
	body := errorBody{Error: err.Error(), Code: "internal", Class: classifyErr(err).String()}
	if info != nil {
		body.Attempts = info.Attempts
	}
	status := http.StatusInternalServerError
	var oe *OverloadError
	var be *BreakerOpenError
	var pe *engine.PanicError
	switch {
	case errors.As(err, &oe):
		status = http.StatusTooManyRequests
		body.Code = "overloaded"
		body.RetryAfterMS = oe.RetryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(int64(oe.RetryAfter.Seconds())+1, 10))
	case errors.As(err, &be):
		status = http.StatusTooManyRequests
		body.Code = "breaker_open"
		body.RetryAfterMS = be.RetryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(int64(be.RetryAfter.Seconds())+1, 10))
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		body.Code = "overloaded"
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		body.Code = "draining"
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		body.Code = "deadline"
	case errors.Is(err, context.Canceled):
		status = http.StatusRequestTimeout
		body.Code = "canceled"
	case errors.Is(err, resource.ErrBudgetExceeded):
		status = http.StatusInsufficientStorage
		body.Code = "budget"
	case errors.As(err, &pe):
		body.Code = "panic"
	}
	writeJSON(w, status, body)
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error(), Code: "bad_request"})
		return false
	}
	return true
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Opts QueryOptions `json:"opts"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": s.CreateSession(req.Opts)})
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Kind  string   `json:"kind"`
		Rows  int      `json:"rows"`
		Years int      `json:"years,omitempty"`
		Seed  int64    `json:"seed"`
		Index []string `json:"index,omitempty"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Rows <= 0 {
		req.Rows = 1000
	}
	var t *storage.Table
	switch req.Kind {
	case "player_performance":
		t = workload.PlayerPerformance(req.Rows, req.Seed)
	case "perf_clustered":
		t = workload.ClusteredPerformance(req.Rows, req.Seed)
	case "score":
		years := req.Years
		if years <= 0 {
			years = 10
		}
		t = workload.Scores(req.Rows, years, req.Seed)
	case "performance_kv":
		t = workload.UnpivotedPerformance(req.Rows, req.Seed)
	case "objects":
		t = workload.Objects(req.Rows, workload.Independent, req.Seed)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("unknown workload kind %q", req.Kind), Code: "bad_request"})
		return
	}
	for _, col := range req.Index {
		if _, err := t.CreateIndex("idx_"+t.Name+"_"+col, col); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad_request"})
			return
		}
	}
	s.RegisterTable(t)
	writeJSON(w, http.StatusOK, map[string]any{"table": t.Name, "rows": len(t.Rows)})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL string `json:"sql"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.ExecSQL(r.Context(), req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	if res == nil { // DDL and INSERT produce no result set
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res, nil))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL     string        `json:"sql"`
		Session string        `json:"session,omitempty"`
		Opts    *QueryOptions `json:"opts,omitempty"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	res, rep, info, err := s.RunQueryInfo(r.Context(), req.Session, req.SQL, req.Opts)
	if err != nil {
		writeErrorInfo(w, err, info)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res, rep))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// queryResponse is the wire shape of a query result. Cells are native JSON
// values: Int and Float are numbers, Str a string, Bool a bool, Null null.
type queryResponse struct {
	Columns []string    `json:"columns"`
	Rows    [][]any     `json:"rows"`
	Stats   *queryStats `json:"stats,omitempty"`
}

type queryStats struct {
	Bindings     int64    `json:"bindings"`
	MemoHits     int64    `json:"memo_hits"`
	PruneHits    int64    `json:"prune_hits"`
	InnerEvals   int64    `json:"inner_evals"`
	Degradations []string `json:"degradations,omitempty"`
	// Attempts > 1 means the query recovered via degraded retry;
	// FinalDegrade names the ladder rung the winning attempt ran on.
	Attempts     int    `json:"attempts,omitempty"`
	FinalDegrade string `json:"final_degrade,omitempty"`
}

func resultJSON(res *engine.Result, rep *iceberg.Report) queryResponse {
	out := queryResponse{Columns: make([]string, len(res.Columns)), Rows: make([][]any, len(res.Rows))}
	for i, c := range res.Columns {
		out.Columns[i] = c.Name
	}
	for i, row := range res.Rows {
		cells := make([]any, len(row))
		for j, v := range row {
			cells[j] = cellJSON(v)
		}
		out.Rows[i] = cells
	}
	if rep != nil {
		st := rep.TotalStats()
		out.Stats = &queryStats{
			Bindings:     st.Bindings,
			MemoHits:     st.MemoHits,
			PruneHits:    st.PruneHits,
			InnerEvals:   st.InnerEvals,
			Degradations: engine.DegradeReasonStrings(rep.Degradations),
			Attempts:     rep.Attempts,
			FinalDegrade: rep.FinalDegrade,
		}
	}
	return out
}

func cellJSON(v value.Value) any {
	switch v.K {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Str:
		return v.S
	case value.Bool:
		return v.I != 0
	default:
		return nil
	}
}

// ListenAndServe runs the HTTP server on addr until ctx is cancelled, then
// drains: admissions stop, in-flight queries get drainTimeout to finish,
// stragglers are cancelled, and finally the listener shuts down.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
