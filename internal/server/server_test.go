package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
	"smarticeberg/internal/workload"
)

// skySQL is the k-skyband iceberg query (Listing 2) over workload.Objects.
const skySQL = `
	SELECT L.id, COUNT(*)
	FROM Object L, Object R
	WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
	GROUP BY L.id
	HAVING COUNT(*) <= 5`

// newObjectsServer builds a server with an n-point Object table registered.
func newObjectsServer(t testing.TB, cfg Config, n int) *Server {
	t.Helper()
	s := New(cfg)
	s.RegisterTable(workload.Objects(n, workload.Independent, 7))
	return s
}

// wantRows computes the expected result by running the optimizer directly
// against the server's catalog, bypassing admission and the shared cache.
func wantRows(t testing.TB, s *Server, sql string) []value.Row {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := iceberg.Exec(s.Catalog(), sel, iceberg.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// sameRows reports the first difference between two result sets; usable off
// the test goroutine.
func sameRows(want, got []value.Row) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d has %d columns, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("row %d col %d = %#v, want %#v", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}

func TestServerSmoke(t *testing.T) {
	testleak.Check(t)
	s := newObjectsServer(t, Config{}, 200)
	want := wantRows(t, s, skySQL)

	res, rep, err := s.RunQuery(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatal(err)
	}
	if rep.TotalStats().Bindings == 0 {
		t.Fatal("query did not take the NLJP path")
	}
	st := s.StatsSnapshot()
	if st.Admitted != 1 || st.Finished != 1 || st.Active != 0 {
		t.Fatalf("stats after one query: %+v", st)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("budget after drain: %d bytes in use", got)
	}
}

func TestServerSessionOptions(t *testing.T) {
	s := newObjectsServer(t, Config{}, 150)
	want := wantRows(t, s, skySQL)
	off := false
	sid := s.CreateSession(QueryOptions{Memo: &off, Prune: &off})
	res, rep, err := s.RunQuery(context.Background(), sid, skySQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatal(err)
	}
	if st := rep.TotalStats(); st.MemoHits != 0 || st.PruneHits != 0 {
		t.Fatalf("session disabled memo+prune but stats show hits: %+v", st)
	}
	// Per-request overrides win over session defaults.
	on := true
	res2, rep2, err := s.RunQuery(context.Background(), sid, skySQL, &QueryOptions{Memo: &on, Prune: &on})
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(want, res2.Rows); err != nil {
		t.Fatal(err)
	}
	if st := rep2.TotalStats(); st.MemoHits+st.PruneHits == 0 {
		t.Fatalf("request override did not re-enable caching: %+v", st)
	}
}

// TestServerOverload is the ISSUE's acceptance scenario: max-concurrent=2
// with a full queue of one. Two queries hold the run tokens at an injected
// gate, a third waits in the queue, and the next arrival is shed with a
// typed ErrOverloaded — while every admitted query completes with
// equivalence-checked results once the gate opens.
func TestServerOverload(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MaxConcurrent: 2, QueueDepth: 1}, 150)
	want := wantRows(t, s, skySQL)

	gate := make(chan struct{})
	var once sync.Once
	failpoint.Enable(failpoint.NLJPBinding, func(string) error {
		<-gate
		return nil
	})
	defer once.Do(func() { close(gate) })

	const admitted = 3 // 2 running + 1 queued
	errs := make([]error, admitted)
	var wg sync.WaitGroup
	for i := 0; i < admitted; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = sameRows(want, res.Rows)
		}(i)
	}
	waitFor(t, "two queries running", func() bool { return s.adm.active.Load() == 2 })
	waitFor(t, "one query queued", func() bool { return s.adm.queue.Used() == 1 })

	_, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow query returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Queued != 1 || oe.QueueDepth != 1 {
		t.Fatalf("overload error fields: %+v", oe)
	}

	once.Do(func() { close(gate) })
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted query %d: %v", i, err)
		}
	}
	st := s.StatsSnapshot()
	if st.Shed != 1 || st.Finished != admitted || st.Queued != 0 {
		t.Fatalf("post-overload stats: %+v", st)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("budget after drain: %d bytes in use", got)
	}
}

func TestServerDrainGraceful(t *testing.T) {
	testleak.Check(t)
	s := newObjectsServer(t, Config{MemLimit: 64 << 20}, 150)
	want := wantRows(t, s, skySQL)
	res, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatal(err)
	}
	if s.Budget().Used() == 0 {
		t.Fatal("shared cache should hold budget bytes before drain")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("drain left %d budget bytes in use", got)
	}
	if _, _, err := s.RunQuery(context.Background(), "", skySQL, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain query returned %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

// TestServerDrainCancelsStragglers: a long query past the drain deadline is
// cancelled through its context (engine operators poll every 64 rows) and
// the server still reaches the idle, zero-budget state.
func TestServerDrainCancelsStragglers(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 300)
	// Slow every binding down so the query outlives the drain deadline; it
	// stays cancellable because the engine polls its context between rows.
	failpoint.Enable(failpoint.NLJPBinding, func(string) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})

	done := make(chan error, 1)
	go func() {
		_, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
		done <- err
	}()
	waitFor(t, "query to start", func() bool { return s.adm.active.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with stragglers: %v", err)
	}
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("straggler finished with %v, want context.Canceled", err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("cancelled straggler leaked %d budget bytes", got)
	}
	if got := s.adm.active.Load(); got != 0 {
		t.Fatalf("active = %d after drain", got)
	}
}

// TestServerReregisterInvalidates: replacing a table retires its shared
// caches (precise invalidation) and later queries see the new data.
func TestServerReregisterInvalidates(t *testing.T) {
	s := newObjectsServer(t, Config{MemLimit: 64 << 20}, 150)
	if _, _, err := s.RunQuery(context.Background(), "", skySQL, nil); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsSnapshot(); st.Cache.Caches == 0 {
		t.Fatalf("no shared cache built: %+v", st.Cache)
	}
	s.RegisterTable(workload.Objects(170, workload.Independent, 11))
	if st := s.StatsSnapshot(); st.Cache.Caches != 0 {
		t.Fatalf("re-registration left %d stale caches", st.Cache.Caches)
	}
	want := wantRows(t, s, skySQL)
	res, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatalf("post-reregistration query: %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("budget after drain: %d", got)
	}
}

func TestServerExecSQLVersioning(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	if _, err := s.ExecSQL(ctx, "CREATE TABLE pt (id INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecSQL(ctx, "INSERT INTO pt VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecSQL(ctx, "SELECT id, v FROM pt WHERE v > 15")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("unexpected rows: %v", res.Rows)
	}
	s.mu.Lock()
	v := s.versions["pt"]
	s.mu.Unlock()
	if v != 2 {
		t.Fatalf("pt version = %d after CREATE+INSERT, want 2", v)
	}
}

// TestServerPanicContainment: a panic below the handler surfaces as exactly
// one *engine.PanicError and the server keeps serving.
func TestServerPanicContainment(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 150)
	want := wantRows(t, s, skySQL)

	failpoint.Enable(failpoint.ServerHandler, failpoint.Panic("handler blew up"))
	_, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic surfaced as %v (%T), want *engine.PanicError", err, err)
	}
	failpoint.Reset()

	res, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
	if err != nil {
		t.Fatalf("server did not recover from contained panic: %v", err)
	}
	if err := sameRows(want, res.Rows); err != nil {
		t.Fatal(err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("contained panic leaked %d budget bytes", got)
	}
	if free := len(s.adm.tokens); free != 4 {
		t.Fatalf("contained panic leaked run tokens: %d of 4 free", free)
	}
}
