package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/value"
)

// ChaosOptions shapes one chaos soak: N in-process clients driving a query
// mix through the full server path (admission, retry ladder, breakers,
// watchdog) under a seeded probabilistic fault storm.
type ChaosOptions struct {
	// Clients is the number of concurrent clients, each with its own
	// session (default 8).
	Clients int
	// Queries is how many queries each client issues round-robin from the
	// mix (default 24).
	Queries int
	// Seed drives the failpoint PRNG: same seed, same storm (default 1).
	Seed int64
	// Sites are the failpoint sites to arm probabilistically (default: the
	// scan, aggregation, NLJP-binding, and server-handler sites). Sites the
	// calibration pass finds unreachable under the mix are dropped and
	// reported in the result.
	Sites []string
	// TargetP is the intended per-attempt probability that at least one
	// armed fault fires (default 0.25). The calibration pass measures how
	// often each site is reached per query and derives per-hit probabilities
	// from it — a site hit 10⁴ times per query is armed far gentler than one
	// hit once.
	TargetP float64
	// Timeout bounds each query (default 30s); the watchdog rides on it.
	Timeout time.Duration
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Queries <= 0 {
		o.Queries = 24
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Sites) == 0 {
		o.Sites = []string{
			failpoint.ScanNext,
			failpoint.AggNext,
			failpoint.NLJPBinding,
			failpoint.ServerHandler,
		}
	}
	if o.TargetP <= 0 || o.TargetP >= 1 {
		o.TargetP = 0.25
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// ChaosResult is the verdict of one soak. The invariants a chaos run is
// expected to uphold are all observable here: Mismatches must be zero (every
// successful response byte-identical to the fault-free answer), Unclassified
// must be zero (every failure carried a taxonomy class), RecoveryRate should
// clear the configured bar, and after the post-storm heal phase every
// session breaker must have re-closed.
type ChaosResult struct {
	Clients, Queries int
	Seed             int64
	ArmedSites       []string       // sites actually armed, with their per-hit p
	DroppedSites     []string       // requested sites the mix never reaches
	Issued           int            // queries sent through the storm
	OK               int            // byte-checked successes
	Recovered        int            // successes that needed >1 attempt
	FaultHit         int            // queries that saw >=1 real fault (recovered + failed)
	Failed           int            // typed errors after retries were exhausted
	Shed             int            // overload-class rejections (breaker/queue), not faults
	Mismatches       int            // successful responses that differed from baseline
	Unclassified     int            // errors with no taxonomy class — must be 0
	ByClass          map[string]int // failed queries by final error class
	Retries          int64          // server-wide retry attempts during the storm
	WatchdogFired    int64          // watchdog force-cancels during the storm
	BreakersReclosed bool           // every session breaker closed after healing
	BudgetUsed       int64          // server budget bytes still held after drain
	Elapsed          time.Duration
}

// RecoveryRate is the fraction of fault-hit queries that still delivered a
// correct answer via the degraded retry ladder.
func (r *ChaosResult) RecoveryRate() float64 {
	if r.FaultHit == 0 {
		return 1
	}
	return float64(r.Recovered) / float64(r.FaultHit)
}

// String renders the soak summary.
func (r *ChaosResult) String() string {
	return fmt.Sprintf(
		"chaos seed=%d clients=%d: %d issued, %d ok (%d recovered), %d failed, %d shed; fault-hit %d, recovery %.0f%%; %d retries, %d watchdog; mismatches=%d unclassified=%d; breakers-reclosed=%t budget-after-drain=%d (%s)",
		r.Seed, r.Clients, r.Issued, r.OK, r.Recovered, r.Failed, r.Shed,
		r.FaultHit, 100*r.RecoveryRate(), r.Retries, r.WatchdogFired,
		r.Mismatches, r.Unclassified, r.BreakersReclosed, r.BudgetUsed, r.Elapsed.Round(time.Millisecond))
}

// RunChaos soaks the server with a seeded fault storm and reports whether
// the fault-recovery contract held. The phases:
//
//  1. Baseline: each mix query runs fault-free; its rows are the byte-exact
//     answer every later success is compared against.
//  2. Calibration: the candidate sites are armed with a counting no-op and
//     the mix runs once more, measuring how often each site is reached per
//     query; per-hit probabilities are derived so the per-attempt chance
//     that *some* fault fires is ~TargetP regardless of how hot a site is.
//  3. Storm: the schedule is armed (seeded — reruns are identical) and
//     Clients sessions hammer the mix concurrently. Every outcome is
//     checked: successes must match the baseline bytes, failures must carry
//     a taxonomy class.
//  4. Heal: faults are disarmed and each session queries until its breaker
//     observes enough successes to re-close.
//  5. Drain: the server drains; the budget must return to zero.
//
// The server must be freshly built with registered tables and no prior
// traffic; RunChaos owns the failpoint registry for the duration (it calls
// failpoint.Reset).
func (s *Server) RunChaos(queries []LoadQuery, opts ChaosOptions) (*ChaosResult, error) {
	opts = opts.withDefaults()
	if len(queries) == 0 {
		return nil, fmt.Errorf("chaos soak needs at least one query")
	}
	res := &ChaosResult{Clients: opts.Clients, Queries: opts.Queries, Seed: opts.Seed,
		ByClass: map[string]int{}}
	start := time.Now()

	// Phase 1: fault-free baselines.
	failpoint.Reset()
	baseline := make([][]value.Row, len(queries))
	for i, q := range queries {
		r, _, err := s.RunQuery(context.Background(), "", q.SQL, q.Opts)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", q.Name, err)
		}
		baseline[i] = r.Rows
	}

	// Phase 2: calibration. Counting no-ops measure per-query hit rates.
	for _, site := range opts.Sites {
		failpoint.Enable(site, func(string) error { return nil })
	}
	for _, q := range queries {
		if _, _, err := s.RunQuery(context.Background(), "", q.SQL, q.Opts); err != nil {
			failpoint.Reset()
			return nil, fmt.Errorf("calibration %s: %w", q.Name, err)
		}
	}
	perQuery := map[string]float64{}
	for _, site := range opts.Sites {
		perQuery[site] = float64(failpoint.Hits(site)) / float64(len(queries))
	}
	failpoint.Reset()

	// Phase 3: the storm. Each armed site gets p = TargetP / (sites × its
	// per-query hit count), so hot sites don't dominate and the per-attempt
	// fire chance stays near TargetP in aggregate.
	sched := &failpoint.Schedule{Seed: opts.Seed}
	for _, site := range opts.Sites {
		h := perQuery[site]
		if h == 0 {
			res.DroppedSites = append(res.DroppedSites, site)
			continue
		}
		p := opts.TargetP / (float64(len(opts.Sites)) * h)
		if p > 0.9 {
			p = 0.9
		}
		sched.Rules = append(sched.Rules, failpoint.Rule{
			Site: site, Action: failpoint.Error(nil), Trigger: failpoint.Trigger{P: p}})
		res.ArmedSites = append(res.ArmedSites, fmt.Sprintf("%s:p=%.2g", site, p))
	}
	sort.Strings(res.ArmedSites)
	retriesBefore := s.retries.Load()
	watchdogBefore := s.watchdogFired.Load()
	sched.Arm()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sid := s.CreateSession(QueryOptions{})
			for n := 0; n < opts.Queries; n++ {
				i := (c + n) % len(queries)
				qopts := &QueryOptions{TimeoutMS: opts.Timeout.Milliseconds()}
				r, _, info, err := s.RunQueryInfo(context.Background(), sid, queries[i].SQL, qopts)
				mu.Lock()
				res.Issued++
				switch {
				case err == nil:
					res.OK++
					if info.Attempts > 1 {
						res.Recovered++
						res.FaultHit++
					}
					if err := sameRowsChaos(baseline[i], r.Rows); err != nil {
						res.Mismatches++
					}
				default:
					class := classifyErr(err)
					res.ByClass[class.String()]++
					switch class {
					case engine.ClassNone:
						res.Unclassified++
					case engine.ClassOverload:
						res.Shed++ // breaker/queue pushback, not a fault
					default:
						res.Failed++
						res.FaultHit++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	sched.Disarm()
	res.Retries = s.retries.Load() - retriesBefore
	res.WatchdogFired = s.watchdogFired.Load() - watchdogBefore

	// Phase 4: heal. Sessions whose breakers tripped run clean queries until
	// every breaker is closed again (bounded — a breaker that won't re-close
	// on a healthy server is a finding, not a hang).
	healDeadline := time.Now().Add(30 * time.Second)
	for {
		states := s.breakerStates()
		if states["open"] == 0 && states["half-open"] == 0 {
			res.BreakersReclosed = true
			break
		}
		if time.Now().After(healDeadline) {
			break
		}
		s.mu.Lock()
		ids := make([]string, 0, len(s.sessions))
		for id := range s.sessions {
			ids = append(ids, id)
		}
		s.mu.Unlock()
		sort.Strings(ids)
		for _, id := range ids {
			_, _, _ = s.RunQuery(context.Background(), id, queries[0].SQL, nil)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 5: drain; every budget byte must come home.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err := s.Drain(dctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("chaos drain: %w", err)
	}
	res.BudgetUsed = s.global.Used()
	res.Elapsed = time.Since(start)
	return res, nil
}

// sameRowsChaos compares two result sets cell-by-cell (the chaos soak's
// byte-identity check; errors.New keeps it allocation-light on match).
func sameRowsChaos(want, got []value.Row) error {
	if len(want) != len(got) {
		return errors.New("row count differs")
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return errors.New("column count differs")
		}
		for j := range want[i] {
			if !value.Identical(want[i][j], got[i][j]) {
				return errors.New("cell differs")
			}
		}
	}
	return nil
}
