package server

import (
	"runtime"
	"time"
)

// watchdogFire is the stuck-query watchdog's timer callback: the attempt
// with this id has run WatchdogGrace past its deadline without unwinding —
// the context expired, so something below is not polling it. The watchdog
// force-cancels the attempt's own context (a second, independent signal; the
// deadline context already fired) and dumps every goroutine stack, labeled
// with the query, so the wedge is diagnosable from the server log. There is
// no persistent scanner goroutine: each tracked attempt arms one
// time.AfterFunc at deadline+grace and untrack stops it, so an idle server
// has nothing running.
func (s *Server) watchdogFire(id int64) {
	s.mu.Lock()
	rq := s.running[id]
	s.mu.Unlock()
	if rq == nil {
		return // unwound between the timer firing and this callback
	}
	s.watchdogFired.Add(1)
	rq.cancel()
	s.cfg.Log.Printf("icebergd: watchdog: query %d stuck %s past deadline (running %s): %q\n%s",
		id, time.Since(rq.deadline).Round(time.Millisecond),
		time.Since(rq.start).Round(time.Millisecond), rq.sql, allStacks())
}

// allStacks captures every goroutine's stack, growing the buffer until the
// dump fits (runtime.Stack truncates silently otherwise).
func allStacks() []byte {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}
