package server

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
)

// The degradation ladder for retried attempts. Rung 0 is the query exactly
// as requested. Each retry steps one rung down; every rung is byte-identical
// to the one above by construction (the equivalence harnesses prove it), so
// a retry can be slower but never wrong.
const (
	// rungFull: the plan as the request configured it.
	rungFull = iota
	// rungNoSkip: zone-map skipping, predicate transfer, and parallel
	// workers off. Routes around faults in the scan-avoidance layer and the
	// morsel scheduler; identical output is the PR 9 / PR 7 invariant.
	rungNoSkip
	// rungSpill: additionally, spill-to-disk on at half the memory carve —
	// the attempt assumes the budget was the problem and trades time for
	// resident memory (PR 5's byte-identity guarantee).
	rungSpill
	// rungBaseline: the paper's techniques off entirely — no a-priori
	// rewrite, no NLJP cache, no shared cache, row-at-a-time execution.
	// The most conservative plan the engine has.
	rungBaseline
)

// rungOf clamps an attempt index onto the ladder.
func rungOf(attempt int) int {
	if attempt > rungBaseline {
		return rungBaseline
	}
	return attempt
}

// rungName is the stable wire name reported as final_degrade.
func rungName(rung int) string {
	switch rung {
	case rungNoSkip:
		return "no-skip"
	case rungSpill:
		return "spill"
	case rungBaseline:
		return "baseline"
	default:
		return ""
	}
}

// applyRung steps opts down the ladder. Rungs compose: each includes every
// restriction above it.
func applyRung(opts *iceberg.Options, rung int) {
	if rung >= rungNoSkip {
		opts.NoSkip = true
		opts.NoTransfer = true
		opts.Workers = 1
	}
	if rung >= rungSpill {
		opts.Spill = true
		if opts.MemBudget > 0 {
			opts.MemBudget /= 2
		}
	}
	if rung >= rungBaseline {
		opts.Apriori = false
		opts.Prune = false
		opts.Memo = false
		opts.CacheIndex = false
		opts.BatchSize = 0
	}
}

// RunInfo documents how one RunQueryInfo call went: how many attempts it
// took, which ladder rung the final attempt ran on, the taxonomy class of
// the final error (ClassNone on success), and the total backoff slept.
type RunInfo struct {
	Attempts     int
	FinalDegrade string // "" when the final attempt ran at full power
	Class        engine.ErrClass
	Backoff      time.Duration
}

// classifyErr maps an error onto the recovery taxonomy, adding the server's
// own vocabulary (draining is an overload: the client should go elsewhere,
// not retry here) on top of engine.Classify. OverloadError and
// BreakerOpenError classify themselves through engine.Classified.
func classifyErr(err error) engine.ErrClass {
	if err == nil {
		return engine.ClassNone
	}
	if errors.Is(err, ErrDraining) {
		return engine.ClassOverload
	}
	return engine.Classify(err)
}

// retryBackoff is the jittered exponential wait before retry n (0-based):
// base 4ms doubling per attempt, ±50% jitter, capped at 250ms. The jitter
// decorrelates retry storms across queries; determinism of the chaos
// harness comes from the failpoint PRNG, not from here.
func retryBackoff(attempt int) time.Duration {
	base := 4 * time.Millisecond << uint(attempt)
	if base > 250*time.Millisecond {
		base = 250 * time.Millisecond
	}
	half := int64(base) / 2
	return time.Duration(half + rand.Int63n(half+1) + rand.Int63n(half+1))
}

// sleepCtx waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// RunQueryInfo is RunQuery plus the recovery record. One admission grant
// covers all attempts — a retrying query holds its run token and memory
// carve rather than re-queueing, so retries cannot amplify an overload —
// and all attempts share the original deadline. After a Transient or
// Resource failure the query is re-executed one degradation-ladder rung
// down, after a jittered backoff, unless the server is draining, the
// deadline cannot fit another attempt of the same duration, or the retry
// budget is spent. The final error (never an intermediate one) is what the
// caller sees, tagged with its taxonomy class.
func (s *Server) RunQueryInfo(ctx context.Context, sessionID, sql string, qopts *QueryOptions) (res *engine.Result, rep *iceberg.Report, info *RunInfo, err error) {
	info = &RunInfo{Attempts: 1}
	// Registered before anything else so the containment boundary covers
	// admission and teardown too; deferred releases below run first during
	// an unwind, so a panic cannot leak tokens, budget, or locks. The
	// classification and breaker bookkeeping run last, on the final
	// outcome.
	defer func() {
		if r := recover(); r != nil {
			res, rep, err = nil, nil, engine.NewPanicError("server handler", r)
		}
		info.Class = classifyErr(err)
		if err != nil {
			s.classCounts[info.Class].Add(1)
		}
		s.breakerRecord(sessionID, info.Class)
	}()

	if err := s.breakerAllow(sessionID); err != nil {
		return nil, nil, info, err
	}

	timeout := s.cfg.DefaultTimeout
	if qopts != nil && qopts.TimeoutMS > 0 {
		timeout = time.Duration(qopts.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Parse before admission: a malformed query is Fatal and must not cost
	// a run token, let alone retries.
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, nil, info, err
	}

	g, err := s.adm.admit(ctx)
	if err != nil {
		return nil, nil, info, err
	}
	defer g.release()

	sesOpts := s.sessionOpts(sessionID)
	base := qopts.overlay(sesOpts.overlay(iceberg.AllOn()))

	for attempt := 0; ; attempt++ {
		info.Attempts = attempt + 1
		info.FinalDegrade = rungName(rungOf(attempt))

		start := time.Now()
		res, rep, err = s.execAttempt(ctx, sql, sel, base, qopts, g, rungOf(attempt))
		attemptDur := time.Since(start)

		if err == nil {
			if attempt > 0 {
				s.recovered.Add(1)
			}
			if rep != nil {
				rep.Attempts = info.Attempts
				rep.FinalDegrade = info.FinalDegrade
			}
			return res, rep, info, nil
		}
		if !classifyErr(err).Retryable() || attempt >= s.cfg.MaxRetries {
			break
		}
		// A draining server finishes in-flight work but starts nothing new
		// — and a retry is new work.
		if s.Draining() {
			break
		}
		// The retry runs under the original deadline: skip it when the
		// remaining time cannot fit the backoff plus an attempt the size of
		// the one that just failed.
		wait := retryBackoff(attempt)
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < wait+attemptDur {
			break
		}
		if !sleepCtx(ctx, wait) {
			break
		}
		info.Backoff += wait
		s.retries.Add(1)
		if ferr := failpoint.Inject(failpoint.ServerRetry); ferr != nil {
			err = ferr
			break
		}
	}
	return nil, nil, info, err
}
