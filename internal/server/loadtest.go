package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"smarticeberg/internal/client"
)

// LoadQuery is one query in a load mix, driven round-robin by the clients.
type LoadQuery struct {
	Name string
	SQL  string
	Opts *QueryOptions // nil = server/session defaults
}

// LoadOptions shapes one load run.
type LoadOptions struct {
	Clients  int           // concurrent clients (default 4)
	Requests int           // requests per client (default 8)
	Timeout  time.Duration // per-request client timeout (default 30s)
}

// LoadResult aggregates one load run. Latency percentiles cover the
// successful requests only; shed requests are the server refusing work by
// design, and their (sub-millisecond) round trips would flatter the tail.
type LoadResult struct {
	Clients  int
	Requests int // total issued
	OK       int
	Shed     int // 429s: typed load shedding
	Errors   int // anything else (timeouts, 5xx, transport failures)
	Rows     int64
	Elapsed  time.Duration
	P50      time.Duration
	P99      time.Duration
}

// ShedRate is the fraction of issued requests the server shed.
func (r *LoadResult) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// RowsPerSec is result-row throughput over the whole run's wall clock.
func (r *LoadResult) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// RunLoad hammers an icebergd at baseURL with opts.Clients concurrent
// clients, each issuing opts.Requests queries from the mix round-robin
// (offset per client so the clients collide on the shared cache rather than
// marching in lockstep). Every response is classified — success, shed, error
// — and the run reports latency percentiles and throughput. Shed responses
// and transport failures are observations, not a failed run: overload
// behavior is exactly what a load test is there to measure, so the
// internal/client retry policy is disabled here (MaxRetries < 0) and every
// raw outcome counts.
func RunLoad(baseURL string, queries []LoadQuery, opts LoadOptions) (*LoadResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("load test needs at least one query")
	}
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Requests <= 0 {
		opts.Requests = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}

	res := &LoadResult{Clients: opts.Clients, Requests: opts.Clients * opts.Requests}
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL:    baseURL,
				HTTPClient: &http.Client{Timeout: opts.Timeout},
				MaxRetries: -1, // observe raw sheds; see doc comment
			})
			for r := 0; r < opts.Requests; r++ {
				q := queries[(c+r)%len(queries)]
				reqStart := time.Now()
				out, err := cl.Query(context.Background(), client.QueryRequest{SQL: q.SQL, Opts: q.Opts})
				lat := time.Since(reqStart)
				var ae *client.APIError
				mu.Lock()
				switch {
				case err == nil:
					res.OK++
					res.Rows += int64(len(out.Rows))
					latencies = append(latencies, lat)
				case errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.P50 = percentile(latencies, 50)
	res.P99 = percentile(latencies, 99)
	return res, nil
}

// percentile returns the p-th percentile (nearest-rank) of ds, 0 when empty.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
