package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadQuery is one query in a load mix, driven round-robin by the clients.
type LoadQuery struct {
	Name string
	SQL  string
	Opts *QueryOptions // nil = server/session defaults
}

// LoadOptions shapes one load run.
type LoadOptions struct {
	Clients  int           // concurrent clients (default 4)
	Requests int           // requests per client (default 8)
	Timeout  time.Duration // per-request client timeout (default 30s)
}

// LoadResult aggregates one load run. Latency percentiles cover the
// successful requests only; shed requests are the server refusing work by
// design, and their (sub-millisecond) round trips would flatter the tail.
type LoadResult struct {
	Clients  int
	Requests int // total issued
	OK       int
	Shed     int // 429s: typed load shedding
	Errors   int // anything else (timeouts, 5xx, transport failures)
	Rows     int64
	Elapsed  time.Duration
	P50      time.Duration
	P99      time.Duration
}

// ShedRate is the fraction of issued requests the server shed.
func (r *LoadResult) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// RowsPerSec is result-row throughput over the whole run's wall clock.
func (r *LoadResult) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// RunLoad hammers an icebergd at baseURL with opts.Clients concurrent
// clients, each issuing opts.Requests queries from the mix round-robin
// (offset per client so the clients collide on the shared cache rather than
// marching in lockstep). Every response is classified — success, shed, error
// — and the run reports latency percentiles and throughput. Shed responses
// and transport failures are observations, not a failed run: overload
// behavior is exactly what a load test is there to measure.
func RunLoad(baseURL string, queries []LoadQuery, opts LoadOptions) (*LoadResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("load test needs at least one query")
	}
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Requests <= 0 {
		opts.Requests = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: opts.Timeout}

	res := &LoadResult{Clients: opts.Clients, Requests: opts.Clients * opts.Requests}
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < opts.Requests; r++ {
				q := queries[(c+r)%len(queries)]
				rows, status, lat, err := postQuery(client, baseURL, q)
				mu.Lock()
				switch {
				case err != nil:
					res.Errors++
				case status == http.StatusTooManyRequests:
					res.Shed++
				case status == http.StatusOK:
					res.OK++
					res.Rows += rows
					latencies = append(latencies, lat)
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.P50 = percentile(latencies, 50)
	res.P99 = percentile(latencies, 99)
	return res, nil
}

// postQuery issues one POST /query, returning the result-row count, the
// HTTP status, and the request latency.
func postQuery(client *http.Client, baseURL string, q LoadQuery) (int64, int, time.Duration, error) {
	body, err := json.Marshal(map[string]any{"sql": q.SQL, "opts": q.Opts})
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, time.Since(start), err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, resp.StatusCode, time.Since(start), nil
	}
	var out struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, time.Since(start), err
	}
	return int64(len(out.Rows)), http.StatusOK, time.Since(start), nil
}

// percentile returns the p-th percentile (nearest-rank) of ds, 0 when empty.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
