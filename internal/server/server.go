package server

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
)

// Config sizes one icebergd instance. The zero value is usable: four
// concurrent queries, a queue of sixteen, unlimited memory, shared caches
// on.
type Config struct {
	// MaxConcurrent is the number of queries allowed to execute at once
	// (<= 0 means 4).
	MaxConcurrent int
	// QueueDepth bounds how many admitted-but-waiting queries may queue
	// (< 0 means 16; 0 disables queueing, so any query beyond
	// MaxConcurrent is shed immediately).
	QueueDepth int
	// MemLimit is the server-wide memory budget in bytes (0 = unlimited).
	// Every per-query budget and the shared cache service carve from it.
	MemLimit int64
	// QueryMem is the byte budget carved out of MemLimit per admitted
	// query; 0 derives MemLimit/MaxConcurrent (0 = unlimited when MemLimit
	// is unlimited).
	QueryMem int64
	// DefaultTimeout bounds each query's wall time when the request does
	// not set its own (0 = none).
	DefaultTimeout time.Duration
	// Spill lets queries overflow to disk under memory pressure.
	Spill bool
	// SpillDir is the parent directory for spill files ("" = os.TempDir()).
	SpillDir string
	// NoSharedCache disables the process-wide NLJP cache service.
	NoSharedCache bool

	// MaxRetries bounds how many degraded re-executions a query gets after
	// a Transient or Resource failure (engine.Classify), each one rung down
	// the degradation ladder under the original deadline. 0 means the
	// default of 2; negative disables retries entirely.
	MaxRetries int
	// WatchdogGrace is how far past its deadline a query may run before the
	// stuck-query watchdog force-cancels it and dumps labeled goroutine
	// stacks. 0 means the default of 2s; negative disables the watchdog.
	// Queries without a deadline are never watched.
	WatchdogGrace time.Duration
	// NoBreakers disables the per-session circuit breakers.
	NoBreakers bool
	// BreakerWindow is the sliding window of per-session query outcomes the
	// breaker judges (default 16).
	BreakerWindow int
	// BreakerThreshold is the failure rate within the window that trips the
	// breaker open (default 0.5).
	BreakerThreshold float64
	// BreakerMinSamples is the minimum number of outcomes in the window
	// before the breaker may trip (default 8).
	BreakerMinSamples int
	// BreakerCooldown is how long an open breaker sheds before allowing a
	// half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Log receives watchdog stack dumps and breaker transitions; nil means
	// the process default logger.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 16
	}
	if c.QueryMem == 0 && c.MemLimit > 0 {
		c.QueryMem = c.MemLimit / int64(c.MaxConcurrent)
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	switch {
	case c.WatchdogGrace == 0:
		c.WatchdogGrace = 2 * time.Second
	case c.WatchdogGrace < 0:
		c.WatchdogGrace = 0
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 16
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// QueryOptions is the per-request (or per-session) optimizer configuration.
// Nil pointer fields inherit — session defaults first, server defaults
// (the paper's all-on configuration) last — so a request only states what
// it wants changed.
type QueryOptions struct {
	Apriori      *bool  `json:"apriori,omitempty"`
	Prune        *bool  `json:"prune,omitempty"`
	Memo         *bool  `json:"memo,omitempty"`
	CacheIndex   *bool  `json:"cache_index,omitempty"`
	UseIndexes   *bool  `json:"use_indexes,omitempty"`
	BindingOrder string `json:"binding_order,omitempty"`
	CacheLimit   int    `json:"cache_limit,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	BatchSize    int    `json:"batch_size,omitempty"`
	// Skip and Transfer toggle zone-map data skipping and sideways
	// predicate transfer (both default on under batch execution).
	Skip     *bool `json:"skip,omitempty"`
	Transfer *bool `json:"transfer,omitempty"`
	// TimeoutMS overrides the server's default query timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoSharedCache opts this query out of the process-wide cache.
	NoSharedCache bool `json:"no_shared_cache,omitempty"`
}

// overlay applies o's set fields on top of base.
func (o *QueryOptions) overlay(base iceberg.Options) iceberg.Options {
	if o == nil {
		return base
	}
	setB := func(dst *bool, p *bool) {
		if p != nil {
			*dst = *p
		}
	}
	setB(&base.Apriori, o.Apriori)
	setB(&base.Prune, o.Prune)
	setB(&base.Memo, o.Memo)
	setB(&base.CacheIndex, o.CacheIndex)
	setB(&base.UseIndexes, o.UseIndexes)
	if o.BindingOrder != "" {
		base.BindingOrder = o.BindingOrder
	}
	if o.CacheLimit != 0 {
		base.CacheLimit = o.CacheLimit
	}
	if o.Workers != 0 {
		base.Workers = o.Workers
	}
	if o.BatchSize != 0 {
		base.BatchSize = o.BatchSize
	}
	if o.Skip != nil {
		base.NoSkip = !*o.Skip
	}
	if o.Transfer != nil {
		base.NoTransfer = !*o.Transfer
	}
	return base
}

// Server is the icebergd core, independent of any transport: a catalog of
// registered tables, global admission control, the shared cache service,
// sessions, and the drain protocol. The HTTP layer in http.go is a thin
// JSON skin over these methods.
type Server struct {
	cfg    Config
	global *resource.Budget
	adm    *admission
	cache  *iceberg.CacheService

	// dataMu orders queries against DDL: queries hold the read side for
	// their whole run (storage.Table has no internal locking), table
	// registration and writes hold the write side.
	dataMu sync.RWMutex
	cat    *storage.Catalog

	mu       sync.Mutex
	versions map[string]int64 // table name -> registration version
	sessions map[string]*session
	running  map[int64]*runningQuery
	nextQID  int64
	nextSID  int64

	// Fault-recovery observability (see Stats).
	retries       atomic.Int64
	recovered     atomic.Int64
	watchdogFired atomic.Int64
	breakerShed   atomic.Int64
	classCounts   [engine.NumErrClasses]atomic.Int64
}

type session struct {
	opts    QueryOptions
	breaker *breaker // nil when Config.NoBreakers
}

// runningQuery is one tracked in-flight attempt: the cancel that Drain and
// the watchdog use, and the watchdog timer armed at deadline+grace.
type runningQuery struct {
	cancel   context.CancelFunc
	watchdog *time.Timer // nil when unwatched
	sql      string
	start    time.Time
	deadline time.Time
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	global := resource.NewBudget(cfg.MemLimit)
	s := &Server{
		cfg:      cfg,
		global:   global,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, global, cfg.QueryMem),
		cat:      storage.NewCatalog(),
		versions: make(map[string]int64),
		sessions: make(map[string]*session),
		running:  make(map[int64]*runningQuery),
	}
	if !cfg.NoSharedCache {
		s.cache = iceberg.NewCacheService(global)
	}
	return s
}

// Budget exposes the server-wide budget (tests assert Used()==0 after
// drain).
func (s *Server) Budget() *resource.Budget { return s.global }

// CreateSession mints a session holding default query options and, unless
// disabled, its own circuit breaker.
func (s *Server) CreateSession(opts QueryOptions) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSID++
	id := fmt.Sprintf("s%d", s.nextSID)
	ses := &session{opts: opts}
	if !s.cfg.NoBreakers {
		ses.breaker = newBreaker(breakerConfig{
			window:     s.cfg.BreakerWindow,
			threshold:  s.cfg.BreakerThreshold,
			minSamples: s.cfg.BreakerMinSamples,
			cooldown:   s.cfg.BreakerCooldown,
		})
	}
	s.sessions[id] = ses
	return id
}

// sessionOpts returns the session's defaults (zero value for unknown or
// empty session IDs — anonymous queries are fine).
func (s *Server) sessionOpts(id string) QueryOptions {
	if ses := s.session(id); ses != nil {
		return ses.opts
	}
	return QueryOptions{}
}

// session looks a session up (nil for "" or unknown IDs).
func (s *Server) session(id string) *session {
	if id == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// RegisterTable publishes (or replaces) a table. Replacement bumps the
// table's version, which retires every shared cache whose key embeds the
// old version — precise invalidation, nothing else is touched.
func (s *Server) RegisterTable(t *storage.Table) {
	s.dataMu.Lock()
	s.cat.Put(t)
	s.dataMu.Unlock()
	s.bumpVersion(t.Name)
}

// Catalog exposes the table catalog for in-process setup (tests, benches).
// Callers must not mutate registered tables while queries run; use
// RegisterTable to publish changes.
func (s *Server) Catalog() *storage.Catalog { return s.cat }

func (s *Server) bumpVersion(name string) {
	name = strings.ToLower(name)
	s.mu.Lock()
	s.versions[name]++
	s.mu.Unlock()
	if s.cache != nil {
		marker := "t:" + name + "@"
		s.cache.Invalidate(func(key string) bool { return strings.Contains(key, marker) })
	}
}

// ExecSQL runs a non-SELECT statement (CREATE TABLE, INSERT) under the
// write lock, bumping the touched table's version. SELECTs are delegated to
// RunQuery so callers can use one entry point.
func (s *Server) ExecSQL(ctx context.Context, sql string) (*engine.Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sqlparser.Select:
		res, _, err := s.RunQuery(ctx, "", sql, nil)
		return res, err
	case *sqlparser.CreateTable:
		return s.execWrite(st, st.Name)
	case *sqlparser.Insert:
		return s.execWrite(st, st.Table)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

func (s *Server) execWrite(stmt sqlparser.Statement, table string) (*engine.Result, error) {
	s.dataMu.Lock()
	res, err := engine.ExecStatement(s.cat, stmt)
	s.dataMu.Unlock()
	if err != nil {
		return nil, err
	}
	s.bumpVersion(table)
	return res, nil
}

// RunQuery admits, executes, and accounts one SELECT. Every failure mode a
// query can hit inside the server — injected faults, panics anywhere below
// this frame, budget exhaustion, cancellation — comes back as an error from
// this method; nothing escapes to the transport goroutine. Transient and
// Resource failures are retried down the degradation ladder (see
// RunQueryInfo, which this delegates to).
func (s *Server) RunQuery(ctx context.Context, sessionID, sql string, qopts *QueryOptions) (res *engine.Result, rep *iceberg.Report, err error) {
	res, rep, _, err = s.RunQueryInfo(ctx, sessionID, sql, qopts)
	return res, rep, err
}

// execAttempt runs one execution attempt under an already-held grant, with
// the options stepped down to the given ladder rung. The attempt gets its
// own cancellable context (so Drain and the watchdog can kill it) and a
// fresh engine budget carved to the grant's size inside iceberg.Exec — a
// failed attempt releases every byte before the next one starts.
func (s *Server) execAttempt(ctx context.Context, sql string, sel *sqlparser.Select, base iceberg.Options, qopts *QueryOptions, g *grant, rung int) (*engine.Result, *iceberg.Report, error) {
	qctx, cancel := context.WithCancel(ctx)
	qid := s.track(cancel, ctx, sql)
	defer s.untrack(qid)

	if err := failpoint.Inject(failpoint.ServerHandler); err != nil {
		return nil, nil, err
	}

	opts := base
	opts.Ctx = qctx
	opts.MemBudget = g.mem.Size()
	opts.Spill = s.cfg.Spill
	opts.SpillDir = s.cfg.SpillDir
	applyRung(&opts, rung)

	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	// The baseline rung runs without the shared cache: NLJP is off there,
	// and a fault inside the cache service is one of the things the rung
	// exists to route around.
	if s.cache != nil && !(qopts != nil && qopts.NoSharedCache) && rung < rungBaseline {
		opts.SharedCache = s.cache
		opts.SharedKey = s.cacheKey(sql, sel, opts)
	}
	return iceberg.Exec(s.cat, sel, opts)
}

// track registers an in-flight attempt so Drain can cancel stragglers, and
// arms the stuck-query watchdog when the attempt has a deadline.
func (s *Server) track(cancel context.CancelFunc, ctx context.Context, sql string) int64 {
	rq := &runningQuery{cancel: cancel, sql: sql, start: time.Now()}
	s.mu.Lock()
	s.nextQID++
	id := s.nextQID
	s.running[id] = rq
	s.mu.Unlock()
	if deadline, ok := ctx.Deadline(); ok && s.cfg.WatchdogGrace > 0 {
		rq.deadline = deadline
		rq.watchdog = time.AfterFunc(time.Until(deadline)+s.cfg.WatchdogGrace, func() {
			s.watchdogFire(id)
		})
	}
	return id
}

func (s *Server) untrack(id int64) {
	s.mu.Lock()
	rq := s.running[id]
	delete(s.running, id)
	s.mu.Unlock()
	if rq != nil {
		if rq.watchdog != nil {
			rq.watchdog.Stop()
		}
		rq.cancel()
	}
}

// cancelRunning cancels every tracked query's context and reports how many.
func (s *Server) cancelRunning() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rq := range s.running {
		rq.cancel()
	}
	return len(s.running)
}

// cacheKey derives the shared-cache identity for a query: the raw SQL, the
// registration version of every table it mentions, and the optimizer knobs
// that shape cache content. Two queries share entries exactly when all
// three agree; re-registering any mentioned table changes its version and
// so, transparently, the key.
func (s *Server) cacheKey(sql string, sel *sqlparser.Select, opts iceberg.Options) string {
	names := map[string]bool{}
	tablesOf(sel, names)
	sorted := make([]string, 0, len(names))
	s.mu.Lock()
	for n := range names {
		sorted = append(sorted, fmt.Sprintf("t:%s@%d", n, s.versions[n]))
	}
	s.mu.Unlock()
	sort.Strings(sorted)
	return fmt.Sprintf("%s|%s|o:%t%t%t%t%t:%s:%d",
		strings.Join(sorted, ","), sql,
		opts.Apriori, opts.Prune, opts.Memo, opts.CacheIndex, opts.UseIndexes,
		opts.BindingOrder, opts.CacheLimit)
}

// tablesOf collects every table name a SELECT mentions, recursing through
// CTEs, derived tables, and subqueries in expressions. CTE names land in
// the set too; they simply resolve to version 0 unless a real table shadows
// them, which only makes the key more conservative.
func tablesOf(sel *sqlparser.Select, out map[string]bool) {
	if sel == nil {
		return
	}
	for _, cte := range sel.With {
		tablesOf(cte.Query, out)
	}
	for _, te := range sel.From {
		switch t := te.(type) {
		case *sqlparser.TableRef:
			out[strings.ToLower(t.Name)] = true
		case *sqlparser.SubqueryRef:
			tablesOf(t.Query, out)
		}
	}
	for _, it := range sel.Items {
		exprTables(it.Expr, out)
	}
	exprTables(sel.Where, out)
	for _, e := range sel.GroupBy {
		exprTables(e, out)
	}
	exprTables(sel.Having, out)
	for _, o := range sel.OrderBy {
		exprTables(o.Expr, out)
	}
}

func exprTables(e sqlparser.Expr, out map[string]bool) {
	switch x := e.(type) {
	case nil:
	case *sqlparser.BinOp:
		exprTables(x.L, out)
		exprTables(x.R, out)
	case *sqlparser.UnOp:
		exprTables(x.E, out)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			exprTables(a, out)
		}
	case *sqlparser.InSubquery:
		for _, ie := range x.Exprs {
			exprTables(ie, out)
		}
		tablesOf(x.Query, out)
	case *sqlparser.ScalarSubquery:
		tablesOf(x.Query, out)
	case *sqlparser.CaseWhen:
		for _, w := range x.Whens {
			exprTables(w.Cond, out)
			exprTables(w.Then, out)
		}
		exprTables(x.Else, out)
	case *sqlparser.IsNull:
		exprTables(x.E, out)
	}
}

// Drain performs graceful shutdown: new admissions fail fast with
// ErrDraining, queued waiters are woken and rejected, in-flight queries run
// to completion until ctx expires, and any stragglers past that deadline
// have their contexts cancelled and are given a short grace to unwind. On
// a clean drain the shared cache service is closed, returning its budget
// bytes, so Budget().Used() == 0 afterward.
func (s *Server) Drain(ctx context.Context) (err error) {
	defer engine.CapturePanic("server drain", &err)
	if err := failpoint.Inject(failpoint.ServerDrain); err != nil {
		return err
	}
	s.adm.beginDrain()
	err = s.adm.awaitIdle(ctx, 2*time.Second, s.cancelRunning)
	if s.cache != nil {
		s.cache.Close()
	}
	return err
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.adm.draining.Load() }

// Stats is the server-wide observability snapshot served at /stats.
type Stats struct {
	Active         int64                     `json:"active"`
	Admitted       int64                     `json:"admitted"`
	Finished       int64                     `json:"finished"`
	Shed           int64                     `json:"shed"`
	ExpiredInQueue int64                     `json:"expired_in_queue"`
	Queued         int64                     `json:"queued"`
	QueueDepth     int                       `json:"queue_depth"`
	MaxConcurrent  int                       `json:"max_concurrent"`
	Draining       bool                      `json:"draining"`
	AvgQueryNanos  int64                     `json:"avg_query_nanos"`
	BudgetUsed     int64                     `json:"budget_used"`
	BudgetPeak     int64                     `json:"budget_peak"`
	BudgetLimit    int64                     `json:"budget_limit"`
	Tables         int                       `json:"tables"`
	Sessions       int                       `json:"sessions"`
	Cache          iceberg.CacheServiceStats `json:"cache"`
	SharedCacheOn  bool                      `json:"shared_cache_on"`
	// Skip accumulates data-skipping counters (zone-map blocks/rows skipped,
	// transfer-filter probes skipped, filters built) across all queries.
	Skip engine.SkipStats `json:"skip"`

	// Fault-recovery counters: degraded re-executions attempted, queries that
	// ultimately succeeded on a retry, watchdog force-cancels, queries shed by
	// an open breaker, final errors by taxonomy class, and sessions per
	// breaker state.
	Retries       int64            `json:"retries"`
	Recovered     int64            `json:"recovered"`
	WatchdogFired int64            `json:"watchdog_fired"`
	BreakerShed   int64            `json:"breaker_shed"`
	ErrClasses    map[string]int64 `json:"err_classes,omitempty"`
	Breakers      map[string]int   `json:"breakers,omitempty"`
}

// StatsSnapshot gathers Stats.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Active:         s.adm.active.Load(),
		Admitted:       s.adm.admitted.Load(),
		Finished:       s.adm.finished.Load(),
		Shed:           s.adm.shed.Load(),
		ExpiredInQueue: s.adm.expired.Load(),
		Queued:         s.adm.queue.Used(),
		QueueDepth:     s.adm.depth,
		MaxConcurrent:  cap(s.adm.tokens),
		Draining:       s.adm.draining.Load(),
		AvgQueryNanos:  s.adm.avgNanos.Load(),
		BudgetUsed:     s.global.Used(),
		BudgetPeak:     s.global.Peak(),
		BudgetLimit:    s.global.Limit(),
		SharedCacheOn:  s.cache != nil,
		Skip:           engine.SkipTotals(),
		Retries:        s.retries.Load(),
		Recovered:      s.recovered.Load(),
		WatchdogFired:  s.watchdogFired.Load(),
		BreakerShed:    s.breakerShed.Load(),
		Breakers:       s.breakerStates(),
	}
	for c := engine.ErrClass(1); c < engine.NumErrClasses; c++ {
		if n := s.classCounts[c].Load(); n > 0 {
			if st.ErrClasses == nil {
				st.ErrClasses = map[string]int64{}
			}
			st.ErrClasses[c.String()] = n
		}
	}
	s.dataMu.RLock()
	st.Tables = len(s.cat.Names())
	s.dataMu.RUnlock()
	s.mu.Lock()
	st.Sessions = len(s.sessions)
	s.mu.Unlock()
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}
