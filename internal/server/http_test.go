package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
)

// postJSON posts body to path and decodes the JSON response into out,
// returning the HTTP status.
func postJSON(t *testing.T, c *http.Client, base, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var reg struct {
		Table string `json:"table"`
		Rows  int    `json:"rows"`
	}
	if code := postJSON(t, c, ts.URL, "/tables/workload",
		map[string]any{"kind": "objects", "rows": 150, "seed": 7}, &reg); code != 200 {
		t.Fatalf("workload registration: status %d", code)
	}
	if reg.Table != "Object" || reg.Rows != 150 {
		t.Fatalf("registration response: %+v", reg)
	}

	if code := postJSON(t, c, ts.URL, "/exec",
		map[string]any{"sql": "CREATE TABLE kv (k INT, v INT)"}, nil); code != 200 {
		t.Fatalf("exec CREATE: status %d", code)
	}
	if code := postJSON(t, c, ts.URL, "/exec",
		map[string]any{"sql": "INSERT INTO kv VALUES (1, 10), (2, 20)"}, nil); code != 200 {
		t.Fatalf("exec INSERT: status %d", code)
	}

	var qr struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
		Stats   *struct {
			Bindings int64 `json:"bindings"`
			MemoHits int64 `json:"memo_hits"`
		} `json:"stats"`
	}
	if code := postJSON(t, c, ts.URL, "/query", map[string]any{"sql": skySQL}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Columns) != 2 || len(qr.Rows) == 0 {
		t.Fatalf("query response: %+v", qr)
	}
	if qr.Stats == nil || qr.Stats.Bindings == 0 {
		t.Fatalf("query response missing NLJP stats: %+v", qr.Stats)
	}

	var badBody struct {
		Code string `json:"code"`
	}
	if code := postJSON(t, c, ts.URL, "/query", map[string]any{"sql": "SELEC nope"}, &badBody); code != 500 {
		t.Fatalf("parse error: status %d", code)
	}
	if code := postJSON(t, c, ts.URL, "/query", map[string]any{"nope": 1}, &badBody); code != 400 || badBody.Code != "bad_request" {
		t.Fatalf("unknown field: status %d code %q", code, badBody.Code)
	}

	var st Stats
	resp, err := c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Admitted == 0 || st.Tables != 2 {
		t.Fatalf("stats: %+v", st)
	}

	if resp, err = c.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v status %v", err, resp.Status)
	}
	resp.Body.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, err = c.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 503 {
		t.Fatalf("healthz while draining: %v status %v", err, resp.Status)
	}
	resp.Body.Close()
	if code := postJSON(t, c, ts.URL, "/query", map[string]any{"sql": skySQL}, &badBody); code != 503 || badBody.Code != "draining" {
		t.Fatalf("query while draining: status %d code %q", code, badBody.Code)
	}
}

// TestHTTPOverload429: shed queries surface as 429 with both the
// Retry-After header and the retry_after_ms body field.
func TestHTTPOverload429(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s := newObjectsServer(t, Config{MaxConcurrent: 1, QueueDepth: 0}, 150)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	gate := make(chan struct{})
	var once sync.Once
	failpoint.Enable(failpoint.NLJPBinding, func(string) error {
		<-gate
		return nil
	})
	defer once.Do(func() { close(gate) })

	first := make(chan int, 1)
	go func() {
		var out any
		first <- postJSON(t, c, ts.URL, "/query", map[string]any{"sql": skySQL}, &out)
	}()
	waitFor(t, "first query to hold the token", func() bool { return s.adm.active.Load() == 1 })

	buf, _ := json.Marshal(map[string]any{"sql": skySQL})
	resp, err := c.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed query: status %d, want 429", resp.StatusCode)
	}
	if body.Code != "overloaded" || body.RetryAfterMS <= 0 {
		t.Fatalf("shed body: %+v", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	once.Do(func() { close(gate) })
	if code := <-first; code != 200 {
		t.Fatalf("admitted query: status %d", code)
	}
}

// TestHTTPTwoSessionsSharedCache is satellite 3 over the wire: two sessions
// running the same query concurrently get byte-identical results to a
// sequential run, and the cache statistics prove they shared entries across
// queries.
func TestHTTPTwoSessionsSharedCache(t *testing.T) {
	testleak.Check(t)
	s := newObjectsServer(t, Config{MemLimit: 64 << 20}, 200)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	type queryResp struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
		Stats   *struct {
			Bindings   int64 `json:"bindings"`
			MemoHits   int64 `json:"memo_hits"`
			PruneHits  int64 `json:"prune_hits"`
			InnerEvals int64 `json:"inner_evals"`
		} `json:"stats"`
	}

	var sequential queryResp
	if code := postJSON(t, c, ts.URL, "/query", map[string]any{"sql": skySQL}, &sequential); code != 200 {
		t.Fatalf("sequential run: status %d", code)
	}
	if sequential.Stats.InnerEvals == 0 {
		t.Fatalf("sequential run evaluated nothing: %+v", sequential.Stats)
	}

	sessions := make([]string, 2)
	for i := range sessions {
		var sr struct {
			Session string `json:"session"`
		}
		if code := postJSON(t, c, ts.URL, "/session", map[string]any{}, &sr); code != 200 {
			t.Fatalf("session create: status %d", code)
		}
		sessions[i] = sr.Session
	}

	results := make([]queryResp, 2)
	codes := make([]int, 2)
	var wg sync.WaitGroup
	for i, sid := range sessions {
		wg.Add(1)
		go func(i int, sid string) {
			defer wg.Done()
			codes[i] = postJSON(t, c, ts.URL, "/query",
				map[string]any{"sql": skySQL, "session": sid}, &results[i])
		}(i, sid)
	}
	wg.Wait()

	for i := range results {
		if codes[i] != 200 {
			t.Fatalf("session %s: status %d", sessions[i], codes[i])
		}
		// Byte-identical to the sequential run: same columns, same rows in
		// the same order, cell for cell (JSON round-trip on both sides).
		if !reflect.DeepEqual(results[i].Rows, sequential.Rows) ||
			!reflect.DeepEqual(results[i].Columns, sequential.Columns) {
			t.Fatalf("session %s result diverged from the sequential run", sessions[i])
		}
		if st := results[i].Stats; st.MemoHits == 0 || st.InnerEvals != 0 {
			t.Fatalf("session %s saw no cross-query cache hits: %+v", sessions[i], st)
		}
	}
	if st := s.StatsSnapshot(); st.Cache.MemoHits == 0 {
		t.Fatalf("service counters show no sharing: %+v", st.Cache)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Budget().Used(); got != 0 {
		t.Fatalf("budget after drain: %d", got)
	}
}

// TestHTTPClientDisconnectCancels is satellite 2: a client that goes away
// mid-query cancels the server-side execution through the request context —
// no context.AfterFunc anywhere, no leaked goroutines, no retained budget.
// One subtest drives the morsel-parallel scan (ParallelBatchScan), the
// other the parallel NLJP binding loop, so both worker pools prove they
// unwind on server-side cancel.
func TestHTTPClientDisconnectCancels(t *testing.T) {
	cases := []struct {
		name string
		site string
		sql  string
		opts map[string]any
	}{
		{
			name: "parallel-batch-scan",
			site: failpoint.MorselEnqueue,
			sql:  "SELECT COUNT(*) FROM Object WHERE x <= 0.5",
			opts: map[string]any{"workers": 4, "batch_size": 64, "prune": false, "memo": false, "apriori": false},
		},
		{
			name: "parallel-nljp",
			site: failpoint.NLJPBinding,
			sql:  skySQL,
			opts: map[string]any{"workers": 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testleak.Check(t)
			defer failpoint.Reset()
			s := newObjectsServer(t, Config{MemLimit: 64 << 20, NoSharedCache: true}, 2000)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			c := ts.Client()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// The failpoint hangs up the client from inside the engine: the
			// first worker to reach the site cancels the request, the
			// transport closes the connection, and the server's
			// r.Context() fires. Workers then stop at their next context
			// poll. Every later fire keeps sleeping so the query cannot
			// simply outrun the disconnect.
			failpoint.Enable(tc.site, func(string) error {
				cancel()
				time.Sleep(5 * time.Millisecond)
				return nil
			})

			buf, _ := json.Marshal(map[string]any{"sql": tc.sql, "opts": tc.opts})
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(buf))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := c.Do(req)
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("request succeeded despite disconnect: %d %s", resp.StatusCode, body)
			}

			// The server notices the disconnect and fully unwinds: no active
			// queries, no held budget, no leaked goroutines (checked by the
			// testleak cleanup after the httptest server shuts down).
			waitFor(t, "query to unwind", func() bool { return s.adm.active.Load() == 0 })
			waitFor(t, "budget to return to zero", func() bool { return s.Budget().Used() == 0 })
			if st := s.StatsSnapshot(); st.Finished != st.Admitted {
				t.Fatalf("finished %d of %d admitted", st.Finished, st.Admitted)
			}
		})
	}
}

// TestHTTPWorkloadKinds spot-checks the other workload generators register
// and are queryable.
func TestHTTPWorkloadKinds(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	for kind, probe := range map[string]string{
		"player_performance": "SELECT COUNT(*) FROM player_performance",
		"score":              "SELECT COUNT(*) FROM Score",
		"performance_kv":     "SELECT COUNT(*) FROM performance_kv",
	} {
		var reg struct {
			Table string `json:"table"`
			Rows  int    `json:"rows"`
		}
		if code := postJSON(t, c, ts.URL, "/tables/workload",
			map[string]any{"kind": kind, "rows": 50, "seed": 3}, &reg); code != 200 {
			t.Fatalf("%s: status %d", kind, code)
		}
		if reg.Rows == 0 {
			t.Fatalf("%s: registered empty table", kind)
		}
		var qr struct {
			Rows [][]any `json:"rows"`
		}
		if code := postJSON(t, c, ts.URL, "/query", map[string]any{"sql": probe}, &qr); code != 200 {
			t.Fatalf("%s probe query: status %d", kind, code)
		}
		if len(qr.Rows) != 1 {
			t.Fatalf("%s probe query returned %d rows", kind, len(qr.Rows))
		}
	}
	if code := postJSON(t, c, ts.URL, "/tables/workload",
		map[string]any{"kind": "nope"}, nil); code != 400 {
		t.Fatalf("unknown kind: status %d", code)
	}
}
