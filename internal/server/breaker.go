package server

import (
	"fmt"
	"sync"
	"time"

	"smarticeberg/internal/engine"
)

// ErrClass lets the taxonomy classify shed decisions without the engine
// importing the server: engine.Classify asks the error itself.
func (e *OverloadError) ErrClass() engine.ErrClass { return engine.ClassOverload }

// BreakerOpenError is the typed fast-fail for a session whose circuit
// breaker is open: the server refuses the query before it costs a run token
// or a budget carve. The HTTP layer maps it to 429 with a Retry-After of the
// remaining cooldown.
type BreakerOpenError struct {
	Session    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("session %s: circuit breaker open; retry in %s",
		e.Session, e.RetryAfter.Round(time.Millisecond))
}

// ErrClass classifies breaker sheds as overload, like queue sheds.
func (e *BreakerOpenError) ErrClass() engine.ErrClass { return engine.ClassOverload }

// breakerState is the classic three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breakerConfig struct {
	window     int           // sliding window of outcomes judged
	threshold  float64       // failure rate that trips the breaker
	minSamples int           // outcomes required before it may trip
	cooldown   time.Duration // open duration before a half-open probe
}

// breaker is one session's circuit breaker. Closed, it records query
// outcomes in a sliding window and trips open when the failure rate over at
// least minSamples outcomes reaches threshold. Open, it sheds every query
// until cooldown has passed, then admits exactly one probe (half-open): the
// probe's success closes the breaker and clears the window, its failure
// re-opens for another cooldown. Only real faults count against the window —
// Transient, Resource, and Fatal outcomes; Overload and Canceled say nothing
// about the session's queries, and sheds never feed back into the breaker
// that caused them.
type breaker struct {
	cfg breakerConfig

	mu       sync.Mutex
	state    breakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	window   []bool
	next     int
	filled   int
}

func newBreaker(cfg breakerConfig) *breaker {
	return &breaker{cfg: cfg, window: make([]bool, cfg.window)}
}

// allow decides whether a query may proceed; when it may not, it returns the
// time left until a probe would be admitted.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.cfg.cooldown - time.Since(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open: one probe at a time
		if b.probing {
			return false, b.cfg.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// record folds a query's outcome into the breaker and reports a state
// transition ("" when none) for the server log.
func (b *breaker) record(class engine.ErrClass) string {
	failed := class == engine.ClassTransient || class == engine.ClassResource || class == engine.ClassFatal
	if class != engine.ClassNone && !failed {
		// Overload and Canceled outcomes are noise for this machine, except
		// that a half-open probe that never ran must free the probe slot.
		b.mu.Lock()
		if b.state == breakerHalfOpen {
			b.probing = false
		}
		b.mu.Unlock()
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if failed {
			b.state = breakerOpen
			b.openedAt = time.Now()
			return "half-open -> open"
		}
		b.state = breakerClosed
		b.reset()
		return "half-open -> closed"
	}
	b.window[b.next] = failed
	b.next = (b.next + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if b.state == breakerClosed && b.filled >= b.cfg.minSamples {
		fails := 0
		for i := 0; i < b.filled; i++ {
			if b.window[i] {
				fails++
			}
		}
		if float64(fails)/float64(b.filled) >= b.cfg.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			return "closed -> open"
		}
	}
	return ""
}

// reset clears the outcome window (caller holds b.mu).
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled = 0, 0
}

// snapshot reports the state for /stats without advancing the machine.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerAllow gates a query on its session's breaker; anonymous queries
// (no session) and disabled breakers always pass.
func (s *Server) breakerAllow(sessionID string) error {
	ses := s.session(sessionID)
	if ses == nil || ses.breaker == nil {
		return nil
	}
	ok, wait := ses.breaker.allow()
	if !ok {
		s.breakerShed.Add(1)
		return &BreakerOpenError{Session: sessionID, RetryAfter: wait}
	}
	return nil
}

// breakerRecord feeds a query's final outcome back to its session breaker.
func (s *Server) breakerRecord(sessionID string, class engine.ErrClass) {
	ses := s.session(sessionID)
	if ses == nil || ses.breaker == nil {
		return
	}
	if transition := ses.breaker.record(class); transition != "" {
		s.cfg.Log.Printf("icebergd: session %s breaker %s", sessionID, transition)
	}
}

// breakerStates counts sessions per breaker state for /stats.
func (s *Server) breakerStates() map[string]int {
	out := map[string]int{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ses := range s.sessions {
		if ses.breaker != nil {
			out[ses.breaker.snapshot().String()]++
		}
	}
	return out
}
