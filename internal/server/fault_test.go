package server

import (
	"context"
	"errors"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
)

// TestServerFaultMatrix drives every server-layer failpoint site through
// both failure modes. The invariants after each injection: the caller got
// exactly one typed error (the injected error, or a *engine.PanicError for
// panics — never a process crash), no run token, queue slot, or budget byte
// leaked, and the server still answers the next query.
func TestServerFaultMatrix(t *testing.T) {
	testleak.Check(t)
	sites := []string{
		failpoint.ServerAdmit,
		failpoint.ServerEnqueue,
		failpoint.ServerHandler,
		failpoint.ServerDrain,
	}
	modes := []struct {
		name   string
		action failpoint.Action
		check  func(t *testing.T, err error)
	}{
		{"error", failpoint.Error(nil), func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("got %v, want ErrInjected", err)
			}
		}},
		{"panic", failpoint.Panic("injected"), func(t *testing.T, err error) {
			t.Helper()
			var pe *engine.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v (%T), want *engine.PanicError", err, err)
			}
		}},
	}

	for _, site := range sites {
		for _, mode := range modes {
			t.Run(site+"/"+mode.name, func(t *testing.T) {
				defer failpoint.Reset()
				// MaxRetries: -1 — this matrix asserts the raw error surfaces;
				// recovery via degraded retry has its own tests in
				// recovery_test.go.
				s := newObjectsServer(t, Config{MaxConcurrent: 2, QueueDepth: 2,
					MemLimit: 64 << 20, NoSharedCache: true, MaxRetries: -1}, 120)
				want := wantRows(t, s, skySQL)

				// The enqueue site only fires on the queued path: hold every
				// run token so the faulted query has to wait, and hand them
				// back as soon as the faulted call returns so the recovery
				// query below can run.
				held := 0
				if site == failpoint.ServerEnqueue {
					for i := 0; i < cap(s.adm.tokens); i++ {
						<-s.adm.tokens
						held++
					}
				}
				restore := func() {
					for ; held > 0; held-- {
						s.adm.tokens <- struct{}{}
					}
				}
				defer restore()

				failpoint.Enable(site, failpoint.Once(mode.action))
				var err error
				if site == failpoint.ServerDrain {
					err = s.Drain(context.Background())
				} else {
					_, _, err = s.RunQuery(context.Background(), "", skySQL, nil)
				}
				restore()
				mode.check(t, err)

				// Nothing leaked...
				if used := s.Budget().Used(); used != 0 {
					t.Fatalf("injected fault leaked %d budget bytes", used)
				}
				if s.adm.queue.Used() != 0 {
					t.Fatalf("injected fault leaked %d queue slots", s.adm.queue.Used())
				}
				if s.adm.active.Load() != 0 {
					t.Fatalf("active = %d after fault", s.adm.active.Load())
				}
				// ...and the server still serves. (A faulted drain never got
				// to stop admissions, so this holds at every site.)
				res, _, err := s.RunQuery(context.Background(), "", skySQL, nil)
				if err != nil {
					t.Fatalf("server dead after injected fault: %v", err)
				}
				if err := sameRows(want, res.Rows); err != nil {
					t.Fatal(err)
				}
				if used := s.Budget().Used(); used != 0 {
					t.Fatalf("recovery query leaked %d budget bytes", used)
				}
			})
		}
	}
}
