package expr

import (
	"smarticeberg/internal/value"
)

// ColFold returns the column-wise accumulate kernel for the aggregate: given
// one target State per selected row (states[x] receives row rows[x]), it
// folds the argument column into the states in row order. It is AdderCol
// turned inside out — per-aggregate over the chunk instead of per-row — and
// because each State still sees exactly its own cells in the same ascending
// row order, every accumulator (including float sums, whose value depends on
// addition order) ends up bit-identical to the row path. COUNT(*) ignores
// col (pass nil); everything else reads the bare argument column directly,
// with typed loops for non-DISTINCT COUNT/SUM/AVG over int and float vectors
// and the generic AddValue path (NULL skip, DISTINCT sets, MIN/MAX compares)
// for the rest.
func (a *Aggregate) ColFold() func(states []*State, col *value.Col, rows value.Sel) error {
	switch {
	case a.Kind == AggCountStar:
		return func(states []*State, _ *value.Col, _ value.Sel) error {
			for _, s := range states {
				s.count++
			}
			return nil
		}
	case a.Distinct:
		return colFoldGeneric
	case a.Kind == AggCount:
		return func(states []*State, col *value.Col, rows value.Sel) error {
			if col.Vals != nil {
				for x, si := range rows {
					if col.Vals[si].K != value.Null {
						states[x].count++
					}
				}
				return nil
			}
			if col.Kind == value.Null {
				return nil
			}
			nulls := col.Nulls
			for x, si := range rows {
				if !nulls.Get(int(si)) {
					states[x].count++
				}
			}
			return nil
		}
	case a.Kind == AggSum || a.Kind == AggAvg:
		return func(states []*State, col *value.Col, rows value.Sel) error {
			switch {
			case col.Vals == nil && (col.Kind == value.Int || col.Kind == value.Bool):
				ints, nulls := col.Ints, col.Nulls
				for x, si := range rows {
					i := int(si)
					if nulls.Get(i) {
						continue
					}
					s := states[x]
					s.count++
					// addNumeric for a non-Float value: no promotion.
					if s.isFloat {
						s.floatSum += float64(ints[i])
					} else {
						s.intSum += ints[i]
					}
				}
			case col.Vals == nil && col.Kind == value.Float:
				floats, nulls := col.Floats, col.Nulls
				for x, si := range rows {
					i := int(si)
					if nulls.Get(i) {
						continue
					}
					s := states[x]
					s.count++
					// addNumeric for a Float value: first float promotes the
					// int prefix, preserving the row path's addition order.
					if !s.isFloat {
						s.isFloat = true
						s.floatSum += float64(s.intSum)
						s.intSum = 0
					}
					s.floatSum += floats[i]
				}
			default:
				return colFoldGeneric(states, col, rows)
			}
			return nil
		}
	default:
		return colFoldGeneric
	}
}

func colFoldGeneric(states []*State, col *value.Col, rows value.Sel) error {
	for x, si := range rows {
		if err := states[x].AddValue(col.Value(int(si))); err != nil {
			return err
		}
	}
	return nil
}
