package expr

import (
	"fmt"
	"strings"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// AggKind identifies an aggregate function.
type AggKind int

// The supported aggregate functions.
const (
	AggCountStar AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "AGG?"
}

// IsAggregateName reports whether the (upper-cased) function name is an
// aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// Aggregate is a fully resolved aggregate call: kind, DISTINCT flag, and a
// compiled argument (nil for COUNT(*)).
type Aggregate struct {
	Kind     AggKind
	Distinct bool
	Arg      Compiled
	// Source is the original AST node, kept for printing and matching.
	Source *sqlparser.FuncCall
}

// CompileAggregate resolves an aggregate function call against a schema.
func CompileAggregate(f *sqlparser.FuncCall, schema value.Schema, extra func(sqlparser.Expr) (Compiled, error)) (*Aggregate, error) {
	if !IsAggregateName(f.Name) {
		return nil, fmt.Errorf("%s is not an aggregate function", f.Name)
	}
	a := &Aggregate{Distinct: f.Distinct, Source: f}
	switch f.Name {
	case "COUNT":
		if f.Star {
			a.Kind = AggCountStar
			return a, nil
		}
		a.Kind = AggCount
	case "SUM":
		a.Kind = AggSum
	case "AVG":
		a.Kind = AggAvg
	case "MIN":
		a.Kind = AggMin
	case "MAX":
		a.Kind = AggMax
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("%s takes exactly one argument", f.Name)
	}
	arg, err := Compile(f.Args[0], schema, extra)
	if err != nil {
		return nil, err
	}
	a.Arg = arg
	return a, nil
}

// Algebraic reports whether the aggregate has a bounded-size partial state
// (Gray et al.'s "algebraic" class). DISTINCT aggregates are not algebraic:
// their partial state is a set. The paper's memoization conditions
// (Section 6) require algebraic aggregates whenever per-group results must
// be combined from several cached partials.
func (a *Aggregate) Algebraic() bool { return !a.Distinct }

// State is the running accumulator of one aggregate over one group.
type State struct {
	agg      *Aggregate
	count    int64
	intSum   int64
	floatSum float64
	isFloat  bool
	minMax   value.Value
	distinct map[string]bool
}

// NewState returns a fresh accumulator.
func (a *Aggregate) NewState() *State {
	s := &State{}
	a.InitState(s)
	return s
}

// InitState resets s to a fresh accumulator for a, so batch operators can
// lay states out in bulk-allocated slabs instead of one heap object per
// group.
func (a *Aggregate) InitState(s *State) {
	*s = State{agg: a}
	if a.Distinct {
		s.distinct = make(map[string]bool)
	}
}

// Adder returns the tightest per-row accumulate function available for the
// aggregate: COUNT(*) needs no argument evaluation at all, and non-DISTINCT
// COUNT/SUM/AVG skip the kind dispatch. Everything else falls back to the
// generic Add. Every variant folds rows in exactly the order Add would, so
// results — including float accumulation order — are unchanged.
func (a *Aggregate) Adder() func(*State, value.Row) error {
	switch {
	case a.Kind == AggCountStar:
		return func(s *State, _ value.Row) error { s.count++; return nil }
	case a.Distinct:
		return (*State).Add
	case a.Kind == AggCount:
		return func(s *State, r value.Row) error {
			v, err := a.Arg(r)
			if err != nil || v.IsNull() {
				return err
			}
			s.count++
			return nil
		}
	case a.Kind == AggSum || a.Kind == AggAvg:
		return func(s *State, r value.Row) error {
			v, err := a.Arg(r)
			if err != nil || v.IsNull() {
				return err
			}
			s.count++
			s.addNumeric(v)
			return nil
		}
	default:
		return (*State).Add
	}
}

// AdderCol is Adder for an aggregate whose argument is the bare input column
// col: the accumulate function indexes the row directly instead of calling
// the compiled argument closure. Semantics are identical to Add.
func (a *Aggregate) AdderCol(col int) func(*State, value.Row) error {
	switch {
	case a.Kind == AggCountStar:
		return a.Adder()
	case a.Kind == AggCount && !a.Distinct:
		return func(s *State, r value.Row) error {
			if r[col].IsNull() {
				return nil
			}
			s.count++
			return nil
		}
	case (a.Kind == AggSum || a.Kind == AggAvg) && !a.Distinct:
		return func(s *State, r value.Row) error {
			v := r[col]
			if v.IsNull() {
				return nil
			}
			s.count++
			s.addNumeric(v)
			return nil
		}
	default:
		return func(s *State, r value.Row) error { return s.AddValue(r[col]) }
	}
}

// Add folds one input row into the accumulator. NULL arguments are skipped,
// per SQL, except for COUNT(*).
func (s *State) Add(row value.Row) error {
	a := s.agg
	if a.Kind == AggCountStar {
		s.count++
		return nil
	}
	v, err := a.Arg(row)
	if err != nil {
		return err
	}
	return s.AddValue(v)
}

// AddValue folds one already-evaluated argument into the accumulator,
// exactly as Add would after evaluating its expression — callers that can
// read the argument straight out of a column use this to skip the compiled
// closure. Meaningless for COUNT(*), whose Add never evaluates an argument.
func (s *State) AddValue(v value.Value) error {
	a := s.agg
	if a.Kind == AggCountStar {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	if a.Distinct {
		key := value.Key([]value.Value{v})
		if s.distinct[key] {
			return nil
		}
		s.distinct[key] = true
	}
	switch a.Kind {
	case AggCount:
		s.count++
	case AggSum, AggAvg:
		s.count++
		s.addNumeric(v)
	case AggMin:
		if s.count == 0 {
			s.minMax = v
		} else if cmp, ok := value.Compare(v, s.minMax); ok && cmp < 0 {
			s.minMax = v
		}
		s.count++
	case AggMax:
		if s.count == 0 {
			s.minMax = v
		} else if cmp, ok := value.Compare(v, s.minMax); ok && cmp > 0 {
			s.minMax = v
		}
		s.count++
	}
	return nil
}

func (s *State) addNumeric(v value.Value) {
	if v.K == value.Float && !s.isFloat {
		s.isFloat = true
		s.floatSum += float64(s.intSum)
		s.intSum = 0
	}
	if s.isFloat {
		s.floatSum += v.AsFloat()
	} else {
		s.intSum += v.I
	}
}

// Reset clears the accumulator for reuse, so hot loops can keep one State
// per aggregate instead of allocating per input group.
func (s *State) Reset() {
	s.count = 0
	s.intSum = 0
	s.floatSum = 0
	s.isFloat = false
	s.minMax = value.Value{}
	if s.distinct != nil {
		clear(s.distinct)
	}
}

// LoadPartial overwrites the accumulator with a cached algebraic partial —
// StateFromPartial without the allocation. It must not be used for DISTINCT
// aggregates (their set state is not captured by a Partial).
func (s *State) LoadPartial(p Partial) {
	s.count = p.Count
	s.intSum = p.IntSum
	s.floatSum = p.FloatSum
	s.isFloat = p.IsFloat
	s.minMax = p.MinMax
}

// MergePartial folds a cached algebraic partial directly into the
// accumulator, performing exactly the operations Merge would perform on
// StateFromPartial(p) — same float addition order, so results are
// bit-identical — without materializing the intermediate State. Like
// Partial itself, it does not apply to DISTINCT aggregates.
func (s *State) MergePartial(p Partial) {
	switch s.agg.Kind {
	case AggCountStar, AggCount:
		s.count += p.Count
	case AggSum, AggAvg:
		if p.IsFloat && !s.isFloat {
			s.isFloat = true
			s.floatSum += float64(s.intSum)
			s.intSum = 0
		}
		if s.isFloat {
			if p.IsFloat {
				s.floatSum += p.FloatSum
			} else {
				s.floatSum += float64(p.IntSum)
			}
		} else {
			s.intSum += p.IntSum
		}
		s.count += p.Count
	case AggMin:
		if p.Count > 0 {
			if s.count == 0 {
				s.minMax = p.MinMax
			} else if cmp, ok := value.Compare(p.MinMax, s.minMax); ok && cmp < 0 {
				s.minMax = p.MinMax
			}
			s.count += p.Count
		}
	case AggMax:
		if p.Count > 0 {
			if s.count == 0 {
				s.minMax = p.MinMax
			} else if cmp, ok := value.Compare(p.MinMax, s.minMax); ok && cmp > 0 {
				s.minMax = p.MinMax
			}
			s.count += p.Count
		}
	}
}

// Merge folds another accumulator of the same aggregate into s — the f°
// combine step of the algebraic decomposition. DISTINCT states merge by set
// union (correct, but unbounded; callers gate on Algebraic()).
func (s *State) Merge(o *State) {
	switch s.agg.Kind {
	case AggCountStar:
		s.count += o.count
		return
	}
	if s.agg.Distinct {
		// Re-add each distinct element.
		for k := range o.distinct {
			if !s.distinct[k] {
				s.distinct[k] = true
				s.count++
			}
		}
		// MIN/MAX/SUM over DISTINCT would need value reconstruction; the
		// engine only uses DISTINCT with COUNT, which the count above covers.
		return
	}
	switch s.agg.Kind {
	case AggCount:
		s.count += o.count
	case AggSum, AggAvg:
		if o.isFloat && !s.isFloat {
			s.isFloat = true
			s.floatSum += float64(s.intSum)
			s.intSum = 0
		}
		if s.isFloat {
			if o.isFloat {
				s.floatSum += o.floatSum
			} else {
				s.floatSum += float64(o.intSum)
			}
		} else {
			s.intSum += o.intSum
		}
		s.count += o.count
	case AggMin:
		if o.count > 0 {
			if s.count == 0 {
				s.minMax = o.minMax
			} else if cmp, ok := value.Compare(o.minMax, s.minMax); ok && cmp < 0 {
				s.minMax = o.minMax
			}
			s.count += o.count
		}
	case AggMax:
		if o.count > 0 {
			if s.count == 0 {
				s.minMax = o.minMax
			} else if cmp, ok := value.Compare(o.minMax, s.minMax); ok && cmp > 0 {
				s.minMax = o.minMax
			}
			s.count += o.count
		}
	}
}

// Value finalizes the aggregate — f° applied to the accumulated partial.
func (s *State) Value() value.Value {
	switch s.agg.Kind {
	case AggCountStar, AggCount:
		// count already advances only on distinct inputs for DISTINCT
		// aggregates, so it is the answer in both modes — and it survives
		// the Partial round-trip, which the set itself does not.
		return value.NewInt(s.count)
	case AggSum:
		if s.count == 0 {
			return value.NullValue
		}
		if s.isFloat {
			return value.NewFloat(s.floatSum)
		}
		return value.NewInt(s.intSum)
	case AggAvg:
		if s.count == 0 {
			return value.NullValue
		}
		sum := s.floatSum
		if !s.isFloat {
			sum = float64(s.intSum)
		}
		return value.NewFloat(sum / float64(s.count))
	case AggMin, AggMax:
		if s.count == 0 {
			return value.NullValue
		}
		return s.minMax
	}
	return value.NullValue
}

// Count returns the number of non-skipped inputs, used by NLJP to decide
// whether a group exists at all under inner-join semantics.
func (s *State) Count() int64 { return s.count }

// Partial is the bounded serialized form of an algebraic state, what the
// NLJP cache stores per binding (the fⁱ output of Appendix C).
type Partial struct {
	Count    int64
	IntSum   int64
	FloatSum float64
	IsFloat  bool
	MinMax   value.Value
}

// Partial extracts the algebraic partial of the state. It must not be used
// for DISTINCT aggregates.
func (s *State) Partial() Partial {
	return Partial{Count: s.count, IntSum: s.intSum, FloatSum: s.floatSum, IsFloat: s.isFloat, MinMax: s.minMax}
}

// StateFromPartial reconstitutes an accumulator from a cached partial.
func (a *Aggregate) StateFromPartial(p Partial) *State {
	return &State{agg: a, count: p.Count, intSum: p.IntSum, floatSum: p.FloatSum, isFloat: p.IsFloat, minMax: p.MinMax}
}
