package expr

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"smarticeberg/internal/value"
)

// Spill codec for aggregate accumulators. Unlike Partial — which carries
// only the algebraic fields and therefore cannot represent DISTINCT
// aggregates — this is a complete snapshot: a decoded State folds subsequent
// rows exactly as the original would have, so spill-and-replay reproduces
// the in-memory result bit for bit (float sums included, via Float64bits).

// ErrStateCodec is returned when a spilled accumulator cannot be decoded.
var ErrStateCodec = errors.New("expr: invalid spilled aggregate state")

// EncodeSpill appends a self-delimiting exact snapshot of the accumulator.
func (s *State) EncodeSpill(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.count))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.intSum))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.floatSum))
	if s.isFloat {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = value.AppendBinary(dst, s.minMax)
	if s.distinct == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.distinct)))
	// Deterministic element order so identical states encode identically.
	keys := make([]string, 0, len(s.distinct))
	for k := range s.distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// DecodeSpill restores a snapshot written by EncodeSpill into s (which must
// have been initialized for the same aggregate) and returns the remaining
// bytes.
func (s *State) DecodeSpill(b []byte) ([]byte, error) {
	if len(b) < 8+8+8+1 {
		return b, ErrStateCodec
	}
	s.count = int64(binary.BigEndian.Uint64(b))
	s.intSum = int64(binary.BigEndian.Uint64(b[8:]))
	s.floatSum = math.Float64frombits(binary.BigEndian.Uint64(b[16:]))
	s.isFloat = b[24] != 0
	b = b[25:]
	var err error
	s.minMax, b, err = value.DecodeBinary(b)
	if err != nil {
		return b, ErrStateCodec
	}
	if len(b) < 1 {
		return b, ErrStateCodec
	}
	hasDistinct := b[0] != 0
	b = b[1:]
	if !hasDistinct {
		return b, nil
	}
	if len(b) < 4 {
		return b, ErrStateCodec
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if s.distinct == nil {
		s.distinct = make(map[string]bool, n)
	} else {
		clear(s.distinct)
	}
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return b, ErrStateCodec
		}
		kn := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < kn {
			return b, ErrStateCodec
		}
		s.distinct[string(b[:kn])] = true
		b = b[kn:]
	}
	return b, nil
}
