package expr

import (
	"fmt"
	"testing"

	"smarticeberg/internal/value"
)

// TestKeyFilterNoFalseNegatives is the property the whole transfer rests on:
// every added key must answer MayContain = true. (False positives are
// allowed — they cost a wasted hash-table probe, never a wrong answer.)
func TestKeyFilterNoFalseNegatives(t *testing.T) {
	f := NewKeyFilter(1000, 2)
	var buf []byte
	for i := 0; i < 1000; i++ {
		keys := []value.Value{value.NewInt(int64(i * 7)), value.NewStr(fmt.Sprint(i))}
		buf = value.AppendKeys(buf[:0], keys)
		f.Add(buf, keys)
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i := 0; i < 1000; i++ {
		keys := []value.Value{value.NewInt(int64(i * 7)), value.NewStr(fmt.Sprint(i))}
		buf = value.AppendKeys(buf[:0], keys)
		if !f.MayContain(buf) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	// The false-positive rate at ~10 bits/key should be a few percent; allow
	// a generous bound so the test never flakes on hash quirks.
	fp := 0
	for i := 0; i < 1000; i++ {
		keys := []value.Value{value.NewInt(int64(i*7 + 3)), value.NewStr("miss")}
		buf = value.AppendKeys(buf[:0], keys)
		if f.MayContain(buf) {
			fp++
		}
	}
	if fp > 200 {
		t.Fatalf("false-positive rate %d/1000 is unusably high", fp)
	}
	if f.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
}

// TestKeyFilterEnvelope pins the per-position min/max envelopes, including
// the incomparable-kind invalidation.
func TestKeyFilterEnvelope(t *testing.T) {
	f := NewKeyFilter(8, 2)
	var buf []byte
	add := func(a, b value.Value) {
		keys := []value.Value{a, b}
		buf = value.AppendKeys(buf[:0], keys)
		f.Add(buf, keys)
	}
	if _, _, ok := f.Envelope(0); ok {
		t.Fatal("empty filter reported a usable envelope")
	}
	add(value.NewInt(5), value.NewStr("m"))
	add(value.NewInt(-3), value.NewStr("z"))
	add(value.NewFloat(9.5), value.NewStr("a")) // Int/Float compare fine

	min0, max0, ok := f.Envelope(0)
	if !ok || !value.Identical(min0, value.NewInt(-3)) || !value.Identical(max0, value.NewFloat(9.5)) {
		t.Fatalf("envelope 0 = [%v, %v] ok=%v", min0, max0, ok)
	}
	min1, max1, ok := f.Envelope(1)
	if !ok || !value.Identical(min1, value.NewStr("a")) || !value.Identical(max1, value.NewStr("z")) {
		t.Fatalf("envelope 1 = [%v, %v] ok=%v", min1, max1, ok)
	}

	// A string key at an int position makes that envelope unusable; the
	// other position and the Bloom bits keep working.
	add(value.NewStr("oops"), value.NewStr("q"))
	if _, _, ok := f.Envelope(0); ok {
		t.Fatal("envelope 0 still usable after incomparable key")
	}
	if _, _, ok := f.Envelope(1); !ok {
		t.Fatal("envelope 1 lost by unrelated position")
	}
	if _, _, ok := f.Envelope(7); ok {
		t.Fatal("out-of-range position reported usable")
	}
}

// TestMembershipKernel checks the probe-side kernel against a direct
// evaluation: rows whose key was added must always survive (no false
// negatives), rows with a NULL key cell must always be dropped, and the
// candidate-selection invocation must agree with the dense one.
func TestMembershipKernel(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewStr("a")},
		{value.NewInt(2), value.NewStr("b")},
		{value.NullValue, value.NewStr("c")}, // NULL key: never joins
		{value.NewInt(4), value.NewStr("d")},
		{value.NewInt(2), value.NewStr("b")}, // duplicate of an added key
		{value.NewInt(9), value.NewStr("x")}, // not added
	}
	cols := value.ColumnsOf(2, rows)

	f := NewKeyFilter(4, 2)
	var buf []byte
	added := map[int]bool{1: true, 4: true} // rows whose keys go in
	for i := range rows {
		if !added[i] {
			continue
		}
		keys := []value.Value{rows[i][0], rows[i][1]}
		buf = value.AppendKeys(buf[:0], keys)
		f.Add(buf, keys)
	}

	kern := MembershipKernel(f, []int{0, 1})
	dense, err := kern(cols, 0, len(rows), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int32]bool{}
	for _, si := range dense {
		got[si] = true
	}
	for _, must := range []int32{1, 4} { // added keys (row 4 duplicates row 1's key)
		if !got[must] {
			t.Fatalf("false negative: row %d dropped", must)
		}
	}
	if got[2] {
		t.Fatal("NULL-key row selected")
	}

	// Candidate mode over a subset, writing in place over the candidate
	// buffer (the scan's compaction idiom), must agree with dense.
	cand := value.Sel{0, 2, 4, 5}
	bufSel := append(value.Sel(nil), cand...)
	sub, err := kern(cols, 0, len(rows), bufSel, bufSel[:0])
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range sub {
		if !got[si] {
			t.Fatalf("candidate mode selected %d which dense mode dropped", si)
		}
	}
	for _, si := range cand {
		if got[si] {
			found := false
			for _, s := range sub {
				if s == si {
					found = true
				}
			}
			if !found {
				t.Fatalf("candidate mode dropped %d which dense mode selected", si)
			}
		}
	}
}

// TestMembershipKernelIntFloatKeys pins the cross-representation equi-join
// case: an integral Float probe cell encodes identically to an Int build
// key, so the kernel must keep it.
func TestMembershipKernelIntFloatKeys(t *testing.T) {
	f := NewKeyFilter(2, 1)
	keys := []value.Value{value.NewInt(42)}
	buf := value.AppendKeys(nil, keys)
	f.Add(buf, keys)

	rows := []value.Row{{value.NewFloat(42)}, {value.NewFloat(42.5)}}
	cols := value.ColumnsOf(1, rows)
	sel, err := MembershipKernel(f, []int{0})(cols, 0, len(rows), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, si := range sel {
		if si == 0 {
			hit = true
		}
	}
	if !hit {
		t.Fatal("integral Float 42 dropped against Int build key 42")
	}
}
