package expr

import (
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Typed selection kernels: the columnar counterpart of a compiled predicate.
// A SelKernel evaluates a WHERE-clause fragment over a column-major chunk and
// appends the surviving row indexes to a selection vector — no Value boxing,
// no per-row closure calls, and filters never copy rows. Kernels reproduce
// the row path bit for bit: every comparison goes through the same three-way
// ordering value.Compare uses (including its NaN and mixed-numeric
// behaviour), and a NULL operand yields SQL unknown, which EvalBool — and
// therefore the kernel — treats as "row filtered out".

// SelKernel appends to out the indexes of the rows of cols that satisfy the
// predicate, in ascending order, and returns the extended selection. The
// candidate rows are cand when non-nil, else the dense range [lo, hi).
// Kernels are stateless and safe for concurrent use on disjoint out buffers
// (morsel workers run one kernel over many chunks at once). out may alias
// cand (in-place compaction): writes trail reads.
type SelKernel func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error)

// CompileSel translates a predicate into a SelKernel when the expression is
// in the kernel-supported fragment: comparisons between column references and
// literals (either side), column-to-column comparisons, IS [NOT] NULL on a
// column, and AND-combinations of those. Anything else (OR, arithmetic,
// functions, subqueries) reports ok=false and the caller keeps the row-path
// evaluator. The kernel's verdicts match EvalBool(Compile(e), row) exactly.
func CompileSel(e sqlparser.Expr, schema value.Schema) (SelKernel, bool) {
	switch e := e.(type) {
	case *sqlparser.BinOp:
		if e.Op == sqlparser.OpAnd {
			lk, ok := CompileSel(e.L, schema)
			if !ok {
				return nil, false
			}
			rk, ok := CompileSel(e.R, schema)
			if !ok {
				return nil, false
			}
			// Chained selection is three-valued AND under EvalBool: a row
			// survives iff both sides are true (false and unknown both
			// filter), and l runs first like the compiled closure.
			return func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
				mid, err := lk(cols, lo, hi, cand, out)
				if err != nil || len(mid) == 0 {
					return mid, err
				}
				return rk(cols, lo, hi, mid, mid[:0])
			}, true
		}
		want, ok := cmpWant(e.Op)
		if !ok {
			return nil, false
		}
		li, lCol := selColIndex(e.L, schema)
		ri, rCol := selColIndex(e.R, schema)
		switch {
		case lCol && rCol:
			return colColKernel(li, ri, want), true
		case lCol:
			if lit, ok := selLit(e.R); ok {
				return colLitKernel(li, lit, want), true
			}
		case rCol:
			if lit, ok := selLit(e.L); ok {
				// lit OP col ≡ col OP' lit with the ordering flipped.
				return colLitKernel(ri, lit, [3]bool{want[2], want[1], want[0]}), true
			}
		}
		return nil, false
	case *sqlparser.IsNull:
		ci, ok := selColIndex(e.E, schema)
		if !ok {
			return nil, false
		}
		return isNullKernel(ci, e.Negated), true
	}
	return nil, false
}

// cmpWant maps a comparison operator to its verdict table indexed by
// three-way compare result + 1 (so want[0] ⇔ cmp<0, want[1] ⇔ cmp==0,
// want[2] ⇔ cmp>0).
func cmpWant(op string) ([3]bool, bool) {
	switch op {
	case sqlparser.OpEq:
		return [3]bool{false, true, false}, true
	case sqlparser.OpNe:
		return [3]bool{true, false, true}, true
	case sqlparser.OpLt:
		return [3]bool{true, false, false}, true
	case sqlparser.OpLe:
		return [3]bool{true, true, false}, true
	case sqlparser.OpGt:
		return [3]bool{false, false, true}, true
	case sqlparser.OpGe:
		return [3]bool{false, true, true}, true
	}
	return [3]bool{}, false
}

var (
	wantEq = [3]bool{false, true, false}
	wantNe = [3]bool{true, false, true}
)

func selColIndex(e sqlparser.Expr, schema value.Schema) (int, bool) {
	c, ok := e.(*sqlparser.ColRef)
	if !ok {
		return 0, false
	}
	i, err := schema.Resolve(c.Qualifier, c.Name)
	if err != nil {
		return 0, false
	}
	return i, true
}

func selLit(e sqlparser.Expr) (value.Value, bool) {
	l, ok := e.(*sqlparser.Lit)
	if !ok {
		return value.NullValue, false
	}
	return l.Val, true
}

// colLitKernel compares column ci against a literal. The representation
// dispatch happens once per chunk, then a tight typed loop runs; each typed
// case mirrors the corresponding value.Compare arm (Int/Int and Bool/Bool
// compare as int64, mixed numerics through float64 like AsFloat, strings
// lexicographically), and NULL cells — or a NULL literal, or a kind mismatch
// value.Compare would refuse — never select.
func colLitKernel(ci int, lit value.Value, want [3]bool) SelKernel {
	return func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
		c := cols.Col(ci)
		if c.Vals != nil {
			return appendCmpGeneric(out, c.Vals, lit, want, lo, hi, cand), nil
		}
		if lit.K == value.Null {
			return out, nil
		}
		switch {
		case (c.Kind == value.Int && lit.K == value.Int) ||
			(c.Kind == value.Bool && lit.K == value.Bool):
			return appendCmpInts(out, c.Ints, c.Nulls, lit.I, want, lo, hi, cand), nil
		case c.Kind == value.Int && lit.K == value.Float:
			return appendCmpIntsFloat(out, c.Ints, c.Nulls, lit.F, want, lo, hi, cand), nil
		case c.Kind == value.Float && lit.K.Numeric():
			return appendCmpFloats(out, c.Floats, c.Nulls, lit.AsFloat(), want, lo, hi, cand), nil
		case c.Kind == value.Str && lit.K == value.Str:
			if want == wantEq || want == wantNe {
				return appendCmpDictEq(out, c, lit.S, want == wantEq, lo, hi, cand), nil
			}
			return appendCmpStrs(out, c, lit.S, want, lo, hi, cand), nil
		}
		// Kind mismatch (or all-NULL column): Compare reports not-ok, the
		// predicate is unknown, no row selects.
		return out, nil
	}
}

func appendCmpInts(out value.Sel, ints []int64, nulls value.Bitmap, k int64, want [3]bool, lo, hi int, cand value.Sel) value.Sel {
	if cand == nil {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			v := ints[i]
			cmp := 1
			if v < k {
				cmp = 0
			} else if v > k {
				cmp = 2
			}
			if want[cmp] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		i := int(si)
		if nulls.Get(i) {
			continue
		}
		v := ints[i]
		cmp := 1
		if v < k {
			cmp = 0
		} else if v > k {
			cmp = 2
		}
		if want[cmp] {
			out = append(out, si)
		}
	}
	return out
}

func appendCmpIntsFloat(out value.Sel, ints []int64, nulls value.Bitmap, k float64, want [3]bool, lo, hi int, cand value.Sel) value.Sel {
	if cand == nil {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			v := float64(ints[i])
			cmp := 1
			if v < k {
				cmp = 0
			} else if v > k {
				cmp = 2
			}
			if want[cmp] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		i := int(si)
		if nulls.Get(i) {
			continue
		}
		v := float64(ints[i])
		cmp := 1
		if v < k {
			cmp = 0
		} else if v > k {
			cmp = 2
		}
		if want[cmp] {
			out = append(out, si)
		}
	}
	return out
}

func appendCmpFloats(out value.Sel, floats []float64, nulls value.Bitmap, k float64, want [3]bool, lo, hi int, cand value.Sel) value.Sel {
	if cand == nil {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			v := floats[i]
			// NaN is neither < nor >, so it lands on cmp==0, matching
			// cmpFloat64.
			cmp := 1
			if v < k {
				cmp = 0
			} else if v > k {
				cmp = 2
			}
			if want[cmp] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		i := int(si)
		if nulls.Get(i) {
			continue
		}
		v := floats[i]
		cmp := 1
		if v < k {
			cmp = 0
		} else if v > k {
			cmp = 2
		}
		if want[cmp] {
			out = append(out, si)
		}
	}
	return out
}

// appendCmpDictEq handles = and <> against a string literal by resolving the
// literal to a dictionary code once, then comparing codes: equal strings
// share a code by construction.
func appendCmpDictEq(out value.Sel, c *value.Col, s string, isEq bool, lo, hi int, cand value.Sel) value.Sel {
	code := int32(-1)
	for i, d := range c.Dict {
		if d == s {
			code = int32(i)
			break
		}
	}
	if code < 0 && isEq {
		return out
	}
	codes, nulls := c.Codes, c.Nulls
	if cand == nil {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			if (codes[i] == code) == isEq {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		i := int(si)
		if nulls.Get(i) {
			continue
		}
		if (codes[i] == code) == isEq {
			out = append(out, si)
		}
	}
	return out
}

func appendCmpStrs(out value.Sel, c *value.Col, s string, want [3]bool, lo, hi int, cand value.Sel) value.Sel {
	codes, dict, nulls := c.Codes, c.Dict, c.Nulls
	if cand == nil {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			v := dict[codes[i]]
			cmp := 1
			if v < s {
				cmp = 0
			} else if v > s {
				cmp = 2
			}
			if want[cmp] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		i := int(si)
		if nulls.Get(i) {
			continue
		}
		v := dict[codes[i]]
		cmp := 1
		if v < s {
			cmp = 0
		} else if v > s {
			cmp = 2
		}
		if want[cmp] {
			out = append(out, si)
		}
	}
	return out
}

func appendCmpGeneric(out value.Sel, vals []value.Value, lit value.Value, want [3]bool, lo, hi int, cand value.Sel) value.Sel {
	if cand == nil {
		for i := lo; i < hi; i++ {
			if cmp, ok := value.Compare(vals[i], lit); ok && want[cmp+1] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, si := range cand {
		if cmp, ok := value.Compare(vals[int(si)], lit); ok && want[cmp+1] {
			out = append(out, si)
		}
	}
	return out
}

// colColKernel compares two columns row-wise. Int/Int and Float/Float pairs
// get typed loops; every other pairing (mixed numerics, strings, mixed-kind
// columns) reconstructs cells and defers to value.Compare, which is the
// row-path semantics by definition.
func colColKernel(li, ri int, want [3]bool) SelKernel {
	return func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
		a, b := cols.Col(li), cols.Col(ri)
		typed := a.Vals == nil && b.Vals == nil
		switch {
		case typed && a.Kind == value.Int && b.Kind == value.Int:
			av, bv, an, bn := a.Ints, b.Ints, a.Nulls, b.Nulls
			if cand == nil {
				for i := lo; i < hi; i++ {
					if an.Get(i) || bn.Get(i) {
						continue
					}
					cmp := 1
					if av[i] < bv[i] {
						cmp = 0
					} else if av[i] > bv[i] {
						cmp = 2
					}
					if want[cmp] {
						out = append(out, int32(i))
					}
				}
				return out, nil
			}
			for _, si := range cand {
				i := int(si)
				if an.Get(i) || bn.Get(i) {
					continue
				}
				cmp := 1
				if av[i] < bv[i] {
					cmp = 0
				} else if av[i] > bv[i] {
					cmp = 2
				}
				if want[cmp] {
					out = append(out, si)
				}
			}
			return out, nil
		case typed && a.Kind == value.Float && b.Kind == value.Float:
			av, bv, an, bn := a.Floats, b.Floats, a.Nulls, b.Nulls
			if cand == nil {
				for i := lo; i < hi; i++ {
					if an.Get(i) || bn.Get(i) {
						continue
					}
					cmp := 1
					if av[i] < bv[i] {
						cmp = 0
					} else if av[i] > bv[i] {
						cmp = 2
					}
					if want[cmp] {
						out = append(out, int32(i))
					}
				}
				return out, nil
			}
			for _, si := range cand {
				i := int(si)
				if an.Get(i) || bn.Get(i) {
					continue
				}
				cmp := 1
				if av[i] < bv[i] {
					cmp = 0
				} else if av[i] > bv[i] {
					cmp = 2
				}
				if want[cmp] {
					out = append(out, si)
				}
			}
			return out, nil
		}
		if cand == nil {
			for i := lo; i < hi; i++ {
				if cmp, ok := value.Compare(a.Value(i), b.Value(i)); ok && want[cmp+1] {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}
		for _, si := range cand {
			i := int(si)
			if cmp, ok := value.Compare(a.Value(i), b.Value(i)); ok && want[cmp+1] {
				out = append(out, si)
			}
		}
		return out, nil
	}
}

// isNullKernel selects rows whose cell is (or, negated, is not) NULL. IS NULL
// always yields true or false — never unknown — so there is no skip case.
func isNullKernel(ci int, negated bool) SelKernel {
	return func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
		c := cols.Col(ci)
		if cand == nil {
			for i := lo; i < hi; i++ {
				isNull := c.Nulls.Get(i)
				if c.Vals != nil {
					isNull = c.Vals[i].K == value.Null
				}
				if isNull != negated {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}
		for _, si := range cand {
			i := int(si)
			isNull := c.Nulls.Get(i)
			if c.Vals != nil {
				isNull = c.Vals[i].K == value.Null
			}
			if isNull != negated {
				out = append(out, si)
			}
		}
		return out, nil
	}
}
