package expr

import (
	"smarticeberg/internal/value"
)

// Sideways predicate transfer: when a hash join materializes its build side,
// it also folds the build keys into a KeyFilter — a blocked Bloom filter
// over the encoded join keys plus a per-key-position min/max envelope. The
// filter is handed to the probe side's scans before they execute: a
// membership kernel drops rows whose keys provably miss the build side, and
// the envelopes become zone predicates that skip whole blocks. The Bloom
// filter has no false negatives, so a dropped row is one the join would have
// produced nothing for — output stays byte-identical to the untransferred
// plan (inner equi-joins only, which is all this engine plans).

// keyFilterBlock is one cache-line-sized Bloom block: 512 bits probed by 8
// hash-derived positions. Register-blocked probing keeps a membership test
// to one memory access per key.
type keyFilterBlock [8]uint64

// KeyFilter is a blocked Bloom filter over encoded join keys with min/max
// envelopes per key position. Build it on the join's build side, then share
// it read-only: membership tests are safe for concurrent use (morsel workers
// probe one immutable filter).
type KeyFilter struct {
	blocks []keyFilterBlock
	mask   uint64 // len(blocks) - 1 (len is a power of two)
	n      int    // keys added

	mins  []value.Value
	maxs  []value.Value
	envOK []bool // envelope position is valid (all keys mutually comparable)
}

// keyFilterBitsPerKey sizes the filter: ~10 bits per expected key keeps the
// false-positive rate near 1-2% in a blocked layout, cheap enough that a
// false positive just means one wasted hash-table probe.
const keyFilterBitsPerKey = 10

// NewKeyFilter returns an empty filter sized for expected keys of width key
// positions.
func NewKeyFilter(expected, width int) *KeyFilter {
	if expected < 1 {
		expected = 1
	}
	bits := expected * keyFilterBitsPerKey
	nBlocks := 1
	for nBlocks*512 < bits {
		nBlocks *= 2
	}
	f := &KeyFilter{
		blocks: make([]keyFilterBlock, nBlocks),
		mask:   uint64(nBlocks - 1),
		mins:   make([]value.Value, width),
		maxs:   make([]value.Value, width),
		envOK:  make([]bool, width),
	}
	for j := range f.envOK {
		f.envOK[j] = true
		f.mins[j] = value.NullValue
		f.maxs[j] = value.NullValue
	}
	return f
}

// HashKey hashes an encoded key (a value.AppendKeys buffer) for the filter.
// FNV-1a, 64-bit.
func HashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// probeBits derives the block index and 8 in-block bit positions from one
// 64-bit hash (Kirsch–Mitzenmacher double hashing over the two halves).
func (f *KeyFilter) probeBits(h uint64) (blk uint64, bits [8]uint16) {
	blk = (h >> 32) & f.mask
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1
	for i := range bits {
		bits[i] = uint16((h1 + uint32(i)*h2) & 511)
	}
	return blk, bits
}

// Add records one key: keyBytes is its value.AppendKeys encoding, keys the
// decoded values (for the envelopes). Keys containing NULL must not be added
// — a NULL key never equi-joins, so it contributes nothing to the probe side.
func (f *KeyFilter) Add(keyBytes []byte, keys []value.Value) {
	blk, bits := f.probeBits(HashKey(keyBytes))
	b := &f.blocks[blk]
	for _, p := range bits {
		b[p>>6] |= 1 << (p & 63)
	}
	f.n++
	for j := range keys {
		if !f.envOK[j] {
			continue
		}
		v := keys[j]
		if f.mins[j].K == value.Null {
			f.mins[j], f.maxs[j] = v, v
			continue
		}
		cLo, okLo := value.Compare(v, f.mins[j])
		cHi, okHi := value.Compare(v, f.maxs[j])
		if !okLo || !okHi {
			// Incomparable kinds at this position: the envelope would not be
			// a sound pruning bound. Disable it; the Bloom filter still works.
			f.envOK[j] = false
			f.mins[j], f.maxs[j] = value.NullValue, value.NullValue
			continue
		}
		if cLo < 0 {
			f.mins[j] = v
		}
		if cHi > 0 {
			f.maxs[j] = v
		}
	}
}

// MayContain reports whether an encoded key may have been added. No false
// negatives: a false return proves the key was never added.
func (f *KeyFilter) MayContain(keyBytes []byte) bool {
	blk, bits := f.probeBits(HashKey(keyBytes))
	b := &f.blocks[blk]
	for _, p := range bits {
		if b[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of keys added.
func (f *KeyFilter) Len() int { return f.n }

// SizeBytes returns the filter's memory footprint, for budget accounting.
func (f *KeyFilter) SizeBytes() int64 {
	return int64(len(f.blocks))*64 + int64(len(f.mins)+len(f.maxs))*32
}

// Envelope returns the [min, max] value range seen at key position j, when
// that envelope is usable for pruning (all keys at j mutually comparable and
// at least one key added).
func (f *KeyFilter) Envelope(j int) (min, max value.Value, ok bool) {
	if j < 0 || j >= len(f.envOK) || !f.envOK[j] || f.mins[j].K == value.Null {
		return value.NullValue, value.NullValue, false
	}
	return f.mins[j], f.maxs[j], true
}

// MembershipKernel returns a SelKernel selecting the rows whose key — the
// tuple of cells at keyCols, encoded exactly like the join's probe keys —
// may be present in the filter. Rows with a NULL key cell are dropped: a
// NULL key never equi-joins. Because the filter has no false negatives, the
// kernel only drops rows the downstream join would discard, so installing it
// on a probe-side scan leaves the query result byte-identical.
func MembershipKernel(f *KeyFilter, keyCols []int) SelKernel {
	return func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
		keys := make([]value.Value, len(keyCols))
		var buf []byte
		test := func(i int) bool {
			for j, c := range keyCols {
				v := cols.Col(c).Value(i)
				if v.K == value.Null {
					return false
				}
				keys[j] = v
			}
			buf = value.AppendKeys(buf[:0], keys)
			return f.MayContain(buf)
		}
		if cand == nil {
			for i := lo; i < hi; i++ {
				if test(i) {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}
		for _, si := range cand {
			if test(int(si)) {
				out = append(out, si)
			}
		}
		return out, nil
	}
}
