package expr

import (
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Zone predicates: the block-granular counterpart of a selection kernel. A
// ZonePred answers "can any row of this zone block satisfy the predicate?"
// from the block's min/max/null-count summary alone. false means provably
// no row selects — the scan skips the whole block without running the
// kernel; true means "maybe", and the kernel runs as usual. Because a skip
// only ever removes rows the kernel would have filtered anyway, the output
// stream is byte-identical to the unskipped scan.

// ZonePred reports whether block b of z can possibly contain a row
// satisfying the predicate. Implementations are stateless and safe for
// concurrent use (morsel workers probe one shared ZoneMaps). Invoking one
// covers a whole block of rows, so zone-probe loops are drive loops for
// cancellation purposes (enforced by the icelint cancelcheck pass).
type ZonePred func(z *value.ZoneMaps, b int) bool

// CompileZone translates a predicate into a ZonePred for the fragment the
// selection kernels support: comparisons between a column reference and a
// literal (either side), IS [NOT] NULL on a column, and AND-combinations.
// Unlike CompileSel, an AND may compile partially — pruning with a subset of
// conjuncts is sound, since a block where any conjunct provably selects
// nothing yields nothing under the conjunction. ok=false means no conjunct
// compiled and the caller should not zone-prune.
func CompileZone(e sqlparser.Expr, schema value.Schema) (ZonePred, bool) {
	switch e := e.(type) {
	case *sqlparser.BinOp:
		if e.Op == sqlparser.OpAnd {
			lp, lok := CompileZone(e.L, schema)
			rp, rok := CompileZone(e.R, schema)
			switch {
			case lok && rok:
				return ZoneAnd(lp, rp), true
			case lok:
				return lp, true
			case rok:
				return rp, true
			}
			return nil, false
		}
		want, ok := cmpWant(e.Op)
		if !ok {
			return nil, false
		}
		li, lCol := selColIndex(e.L, schema)
		ri, rCol := selColIndex(e.R, schema)
		switch {
		case lCol && rCol:
			// Column-to-column comparisons carry no literal bound; the
			// kernels handle them row-wise.
			return nil, false
		case lCol:
			if lit, ok := selLit(e.R); ok {
				return zoneLitPred(li, lit, want), true
			}
		case rCol:
			if lit, ok := selLit(e.L); ok {
				return zoneLitPred(ri, lit, [3]bool{want[2], want[1], want[0]}), true
			}
		}
		return nil, false
	case *sqlparser.IsNull:
		ci, ok := selColIndex(e.E, schema)
		if !ok {
			return nil, false
		}
		return zoneNullPred(ci, e.Negated), true
	}
	return nil, false
}

// ZoneAnd combines two zone predicates under conjunction: a block is
// possible only when both sides allow it. Either argument may be nil, in
// which case the other is returned unchanged.
func ZoneAnd(a, b ZonePred) ZonePred {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(z *value.ZoneMaps, blk int) bool {
		return a(z, blk) && b(z, blk)
	}
}

// zoneLitPred prunes col ci against a literal using the verdict table of the
// matching kernel (want[cmp+1] semantics). The reasoning mirrors
// colLitKernel exactly: NULL cells never select, a NULL literal selects
// nothing, and a kind mismatch value.Compare refuses selects nothing — for a
// typed column the zone's Min/Max carry the column kind, so one Compare
// against the literal answers for every cell in the block.
func zoneLitPred(ci int, lit value.Value, want [3]bool) ZonePred {
	return func(z *value.ZoneMaps, b int) bool {
		zn := z.Zone(ci, b)
		if zn.Unsafe {
			return true
		}
		if lit.K == value.Null {
			return false // comparison against NULL is unknown for every row
		}
		if zn.Min.K == value.Null {
			return false // no comparable (non-NULL) cell in the block
		}
		cLo, okLo := value.Compare(zn.Min, lit)
		cHi, okHi := value.Compare(zn.Max, lit)
		if !okLo || !okHi {
			// Kind mismatch: every cell of the typed column mismatches the
			// literal the same way, so the predicate is unknown block-wide.
			return false
		}
		// Some v in [Min, Max] can land on a wanted verdict iff:
		//   v < lit is achievable (Min < lit), or
		//   v > lit is achievable (Max > lit), or
		//   v = lit is achievable (Min <= lit <= Max).
		return (want[0] && cLo < 0) ||
			(want[2] && cHi > 0) ||
			(want[1] && cLo <= 0 && cHi >= 0)
	}
}

// zoneNullPred prunes IS [NOT] NULL from the block's null count.
func zoneNullPred(ci int, negated bool) ZonePred {
	return func(z *value.ZoneMaps, b int) bool {
		zn := z.Zone(ci, b)
		if zn.Unsafe {
			return true
		}
		if negated {
			// IS NOT NULL: possible iff some cell is non-NULL.
			return int(zn.Nulls) < z.BlockRows(b)
		}
		return zn.Nulls > 0
	}
}

// ZoneRange prunes a column against an inclusive [min, max] envelope — the
// value range of a transferred join-key filter. A block whose zone is
// provably disjoint from the envelope cannot contain a row whose key
// equi-joins any build-side key, so it is skipped. Comparisons that
// value.Compare refuses leave the block unpruned (conservative).
func ZoneRange(ci int, min, max value.Value) ZonePred {
	return func(z *value.ZoneMaps, b int) bool {
		zn := z.Zone(ci, b)
		if zn.Unsafe {
			return true
		}
		if zn.Min.K == value.Null {
			return false // all-NULL block: NULL never equi-joins
		}
		if c, ok := value.Compare(zn.Max, min); ok && c < 0 {
			return false
		}
		if c, ok := value.Compare(zn.Min, max); ok && c > 0 {
			return false
		}
		return true
	}
}
