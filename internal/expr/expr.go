// Package expr compiles parsed SQL scalar expressions into evaluator
// closures over rows, and implements the aggregate functions with the
// algebraic decomposition (fⁱ, f°) from Gray et al. that the paper's
// memoization technique (Section 6, Appendix C) relies on.
package expr

import (
	"fmt"
	"math"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Compiled is an evaluator over a row with a fixed schema.
type Compiled func(value.Row) (value.Value, error)

// Compile translates a scalar expression into an evaluator for rows laid out
// per schema. Aggregate function calls are rejected; the engine rewrites
// them into column references before compiling. extra, when non-nil, is
// consulted for expression forms the compiler does not handle itself (the
// engine uses it to splice in IN-subquery membership tests).
func Compile(e sqlparser.Expr, schema value.Schema, extra func(sqlparser.Expr) (Compiled, error)) (Compiled, error) {
	c := &compiler{schema: schema, extra: extra}
	return c.compile(e)
}

type compiler struct {
	schema value.Schema
	extra  func(sqlparser.Expr) (Compiled, error)
}

func (c *compiler) compile(e sqlparser.Expr) (Compiled, error) {
	switch e := e.(type) {
	case *sqlparser.Lit:
		v := e.Val
		return func(value.Row) (value.Value, error) { return v, nil }, nil
	case *sqlparser.ColRef:
		i, err := c.schema.Resolve(e.Qualifier, e.Name)
		if err != nil {
			return nil, err
		}
		return func(r value.Row) (value.Value, error) { return r[i], nil }, nil
	case *sqlparser.UnOp:
		inner, err := c.compile(e.E)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return func(r value.Row) (value.Value, error) {
				v, err := inner(r)
				if err != nil {
					return value.NullValue, err
				}
				return value.Neg(v)
			}, nil
		case "NOT":
			return func(r value.Row) (value.Value, error) {
				v, err := inner(r)
				if err != nil || v.IsNull() {
					return value.NullValue, err
				}
				return value.NewBool(!v.Bool()), nil
			}, nil
		}
		return nil, fmt.Errorf("unknown unary operator %q", e.Op)
	case *sqlparser.IsNull:
		inner, err := c.compile(e.E)
		if err != nil {
			return nil, err
		}
		negated := e.Negated
		return func(r value.Row) (value.Value, error) {
			v, err := inner(r)
			if err != nil {
				return value.NullValue, err
			}
			return value.NewBool(v.IsNull() != negated), nil
		}, nil
	case *sqlparser.BinOp:
		return c.compileBinOp(e)
	case *sqlparser.CaseWhen:
		type arm struct{ cond, then Compiled }
		arms := make([]arm, len(e.Whens))
		for i, w := range e.Whens {
			cond, err := c.compile(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.compile(w.Then)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{cond: cond, then: then}
		}
		var elseC Compiled
		if e.Else != nil {
			ec, err := c.compile(e.Else)
			if err != nil {
				return nil, err
			}
			elseC = ec
		}
		return func(r value.Row) (value.Value, error) {
			for _, a := range arms {
				ok, err := EvalBool(a.cond, r)
				if err != nil {
					return value.NullValue, err
				}
				if ok {
					return a.then(r)
				}
			}
			if elseC != nil {
				return elseC(r)
			}
			return value.NullValue, nil
		}, nil
	case *sqlparser.FuncCall:
		if IsAggregateName(e.Name) {
			return nil, fmt.Errorf("aggregate %s not allowed here", e.Name)
		}
		return c.compileScalarFunc(e)
	}
	if c.extra != nil {
		return c.extra(e)
	}
	return nil, fmt.Errorf("unsupported expression %s", e.String())
}

func (c *compiler) compileBinOp(e *sqlparser.BinOp) (Compiled, error) {
	l, err := c.compile(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(e.R)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case sqlparser.OpAnd:
		return func(row value.Row) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.NullValue, err
			}
			// SQL three-valued AND: false dominates NULL.
			if !lv.IsNull() && !lv.Bool() {
				return value.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return value.NullValue, err
			}
			if !rv.IsNull() && !rv.Bool() {
				return value.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.NullValue, nil
			}
			return value.NewBool(true), nil
		}, nil
	case sqlparser.OpOr:
		return func(row value.Row) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.NullValue, err
			}
			if !lv.IsNull() && lv.Bool() {
				return value.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return value.NullValue, err
			}
			if !rv.IsNull() && rv.Bool() {
				return value.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.NullValue, nil
			}
			return value.NewBool(false), nil
		}, nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
		op := e.Op
		return func(row value.Row) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.NullValue, err
			}
			rv, err := r(row)
			if err != nil {
				return value.NullValue, err
			}
			switch op {
			case sqlparser.OpAdd:
				return value.Add(lv, rv)
			case sqlparser.OpSub:
				return value.Sub(lv, rv)
			case sqlparser.OpMul:
				return value.Mul(lv, rv)
			default:
				return value.Div(lv, rv)
			}
		}, nil
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		op := e.Op
		return func(row value.Row) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.NullValue, err
			}
			rv, err := r(row)
			if err != nil {
				return value.NullValue, err
			}
			cmp, ok := value.Compare(lv, rv)
			if !ok {
				return value.NullValue, nil
			}
			var res bool
			switch op {
			case sqlparser.OpEq:
				res = cmp == 0
			case sqlparser.OpNe:
				res = cmp != 0
			case sqlparser.OpLt:
				res = cmp < 0
			case sqlparser.OpLe:
				res = cmp <= 0
			case sqlparser.OpGt:
				res = cmp > 0
			default:
				res = cmp >= 0
			}
			return value.NewBool(res), nil
		}, nil
	}
	return nil, fmt.Errorf("unknown binary operator %q", e.Op)
}

func (c *compiler) compileScalarFunc(e *sqlparser.FuncCall) (Compiled, error) {
	switch e.Name {
	case "ABS":
		if len(e.Args) != 1 {
			return nil, fmt.Errorf("ABS takes one argument")
		}
		arg, err := c.compile(e.Args[0])
		if err != nil {
			return nil, err
		}
		return func(r value.Row) (value.Value, error) {
			v, err := arg(r)
			if err != nil || v.IsNull() {
				return value.NullValue, err
			}
			switch v.K {
			case value.Int:
				if v.I < 0 {
					return value.NewInt(-v.I), nil
				}
				return v, nil
			case value.Float:
				return value.NewFloat(math.Abs(v.F)), nil
			}
			return value.NullValue, fmt.Errorf("ABS of non-numeric value")
		}, nil
	}
	return nil, fmt.Errorf("unknown function %q", e.Name)
}

// EvalBool evaluates a compiled predicate under SQL WHERE semantics:
// NULL/unknown is treated as false.
func EvalBool(c Compiled, r value.Row) (bool, error) {
	v, err := c(r)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
