package expr

import (
	"fmt"
	"math"
	"testing"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// kernelSchema: i BIGINT, f DOUBLE, s TEXT, b BOOL, m mixed-kind, i2 BIGINT.
var kernelSchema = value.Schema{
	{Qualifier: "t", Name: "i", Type: value.Int},
	{Qualifier: "t", Name: "f", Type: value.Float},
	{Qualifier: "t", Name: "s", Type: value.Str},
	{Qualifier: "t", Name: "b", Type: value.Bool},
	{Qualifier: "t", Name: "m", Type: value.Null},
	{Qualifier: "t", Name: "i2", Type: value.Int},
}

func kernelRows() []value.Row {
	mk := func(i, i2 value.Value, f value.Value, s value.Value, b value.Value, m value.Value) value.Row {
		return value.Row{i, f, s, b, m, i2}
	}
	return []value.Row{
		mk(value.NewInt(0), value.NewInt(3), value.NewFloat(0.5), value.NewStr("apple"), value.NewBool(true), value.NewInt(7)),
		mk(value.NewInt(3), value.NewInt(3), value.NewFloat(-1.5), value.NewStr("pear"), value.NewBool(false), value.NewStr("x")),
		mk(value.NewInt(-4), value.NewInt(0), value.NewFloat(math.NaN()), value.NewStr("apple"), value.NewBool(true), value.NullValue),
		mk(value.NullValue, value.NewInt(5), value.NullValue, value.NullValue, value.NullValue, value.NewFloat(2.5)),
		mk(value.NewInt(5), value.NullValue, value.NewFloat(3), value.NewStr(""), value.NewBool(false), value.NewBool(true)),
		mk(value.NewInt(3), value.NewInt(-4), value.NewFloat(math.Inf(1)), value.NewStr("banana"), value.NewBool(true), value.NewInt(-2)),
	}
}

func parsePred(t *testing.T, where string) sqlparser.Expr {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT i FROM t WHERE " + where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return sel.Where
}

// TestSelKernelMatchesRowPath differentially checks every supported kernel
// form against EvalBool over the compiled row evaluator — dense range and
// candidate-selection invocation both.
func TestSelKernelMatchesRowPath(t *testing.T) {
	rows := kernelRows()
	cols := value.ColumnsOf(len(kernelSchema), rows)
	preds := []string{
		// col vs int/float/str/bool literals, every comparison op.
		"i = 3", "i <> 3", "i < 3", "i <= 3", "i > 0", "i >= 5",
		"i = 2.5", "i > -1.2", "f < 1", "f >= 0.5", "f = 3", "f <> 0.5",
		"s = 'apple'", "s <> 'apple'", "s < 'banana'", "s >= 'pear'", "s = 'none'", "s <> 'none'",
		"b = TRUE", "b <> TRUE", "b = FALSE",
		// literal on the left (flipped ordering).
		"3 = i", "3 < i", "0.5 >= f", "'apple' <> s", "2.5 > i",
		// column vs column, typed and generic.
		"i = i2", "i < i2", "i >= i2", "f > i", "m = i", "m <> f", "s = m",
		// mixed-kind column vs literals.
		"m = 3", "m < 4", "m = 'x'", "m <> 2.5",
		// IS NULL forms.
		"i IS NULL", "f IS NOT NULL", "m IS NULL", "m IS NOT NULL", "s IS NULL",
		// AND chains.
		"i >= 0 AND f < 10", "i > -10 AND i < 4 AND s <> 'pear'",
		"m IS NOT NULL AND i = 3", "b = TRUE AND f IS NOT NULL",
		// kind mismatches that the row path answers with unknown.
		"s = 3", "i = 'apple'", "b = 1",
	}
	for _, src := range preds {
		t.Run(src, func(t *testing.T) {
			e := parsePred(t, src)
			kern, ok := CompileSel(e, kernelSchema)
			if !ok {
				t.Fatalf("CompileSel rejected %q", src)
			}
			compiled, err := Compile(e, kernelSchema, nil)
			if err != nil {
				t.Fatalf("Compile(%q): %v", src, err)
			}
			var want value.Sel
			for i, r := range rows {
				ok, err := EvalBool(compiled, r)
				if err != nil {
					t.Fatalf("row eval: %v", err)
				}
				if ok {
					want = append(want, int32(i))
				}
			}
			got, err := kern(cols, 0, len(rows), nil, nil)
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("dense kernel = %v, row path = %v", got, want)
			}

			// Candidate-selection invocation over a subset must equal the
			// row path restricted to that subset, and in-place compaction
			// (out aliasing cand) must be safe.
			cand := value.Sel{0, 2, 3, 5}
			var wantSub value.Sel
			for _, si := range cand {
				ok, err := EvalBool(compiled, rows[si])
				if err != nil {
					t.Fatalf("row eval: %v", err)
				}
				if ok {
					wantSub = append(wantSub, si)
				}
			}
			buf := append(value.Sel(nil), cand...)
			gotSub, err := kern(cols, 0, len(rows), buf, buf[:0])
			if err != nil {
				t.Fatalf("kernel(sel): %v", err)
			}
			if fmt.Sprint(gotSub) != fmt.Sprint(wantSub) {
				t.Fatalf("sel kernel = %v, row path = %v", gotSub, wantSub)
			}
		})
	}
}

// TestCompileSelRejectsUnsupported pins the fallback boundary: forms outside
// the kernel fragment must report ok=false, not mis-evaluate.
func TestCompileSelRejectsUnsupported(t *testing.T) {
	for _, src := range []string{
		"i + 1 = 3",      // arithmetic
		"i = 1 OR i = 3", // OR
		"NOT (i = 3)",    // NOT
		"ABS(i) = 3",     // function call
		"i = i2 + 0",     // non-literal RHS
		"1 = 2",          // no column at all
	} {
		e := parsePred(t, src)
		if _, ok := CompileSel(e, kernelSchema); ok {
			t.Errorf("CompileSel accepted unsupported %q", src)
		}
	}
	// Unresolvable column.
	e := parsePred(t, "nosuch = 3")
	if _, ok := CompileSel(e, kernelSchema); ok {
		t.Error("CompileSel accepted unresolvable column")
	}
}

// TestColFoldMatchesAdder differentially checks the column-wise aggregate
// fold against the row-path AdderCol for every aggregate kind over int,
// float, bool, mixed, and all-null argument columns, with interleaved groups
// so state targeting is exercised.
func TestColFoldMatchesAdder(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewFloat(1.5), value.NewBool(true), value.NewInt(10)},
		{value.NewInt(2), value.NewFloat(-2.5), value.NewBool(false), value.NewFloat(2.25)},
		{value.NullValue, value.NullValue, value.NullValue, value.NullValue},
		{value.NewInt(7), value.NewFloat(0), value.NewBool(true), value.NewStr("z")},
		{value.NewInt(1), value.NewFloat(1.5), value.NewBool(true), value.NewInt(10)},
		{value.NewInt(-3), value.NewFloat(math.NaN()), value.NewBool(false), value.NewInt(-1)},
	}
	cols := value.ColumnsOf(4, rows)
	groupOf := []int{0, 1, 0, 1, 0, 0} // interleaved group targets
	kinds := []struct {
		name string
		agg  func(col int) *Aggregate
	}{
		{"count-star", func(int) *Aggregate { return &Aggregate{Kind: AggCountStar} }},
		{"count", func(int) *Aggregate { return &Aggregate{Kind: AggCount} }},
		{"sum", func(int) *Aggregate { return &Aggregate{Kind: AggSum} }},
		{"avg", func(int) *Aggregate { return &Aggregate{Kind: AggAvg} }},
		{"min", func(int) *Aggregate { return &Aggregate{Kind: AggMin} }},
		{"max", func(int) *Aggregate { return &Aggregate{Kind: AggMax} }},
		{"count-distinct", func(int) *Aggregate { return &Aggregate{Kind: AggCount, Distinct: true} }},
	}
	for _, k := range kinds {
		for colIdx := 0; colIdx < 4; colIdx++ {
			t.Run(fmt.Sprintf("%s/col%d", k.name, colIdx), func(t *testing.T) {
				ci := colIdx
				agg := k.agg(ci)
				// Row path: AdderCol in row order.
				rowStates := []*State{agg.NewState(), agg.NewState()}
				adder := agg.AdderCol(ci)
				for ri, r := range rows {
					if err := adder(rowStates[groupOf[ri]], r); err != nil {
						t.Fatal(err)
					}
				}
				// Column path: per-row state targets, one fold call.
				colStates := []*State{agg.NewState(), agg.NewState()}
				sel := make(value.Sel, len(rows))
				targets := make([]*State, len(rows))
				for ri := range rows {
					sel[ri] = int32(ri)
					targets[ri] = colStates[groupOf[ri]]
				}
				fold := agg.ColFold()
				var col *value.Col
				if agg.Kind != AggCountStar {
					col = cols.Col(ci)
				}
				if err := fold(targets, col, sel); err != nil {
					t.Fatal(err)
				}
				for g := range rowStates {
					want, got := rowStates[g].Value(), colStates[g].Value()
					if !value.Identical(want, got) ||
						(want.K == value.Float && math.Float64bits(want.F) != math.Float64bits(got.F)) {
						t.Fatalf("group %d: row path %v, column path %v", g, want, got)
					}
					if rowStates[g].Count() != colStates[g].Count() {
						t.Fatalf("group %d: counts differ", g)
					}
				}
			})
		}
	}
}
