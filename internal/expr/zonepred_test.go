package expr

import (
	"testing"

	"smarticeberg/internal/value"
)

// TestCompileZoneSoundAgainstRowPath is the soundness property that makes
// zone skipping invisible: whenever the zone predicate rules a block out,
// the row-path evaluation must select no row inside that block. Run over
// the shared kernel fixture (NULLs, NaN, mixed-kind column, kind
// mismatches) with block size 2 so several blocks exist.
func TestCompileZoneSoundAgainstRowPath(t *testing.T) {
	rows := kernelRows()
	cols := value.ColumnsOf(len(kernelSchema), rows)
	zones := value.BuildZoneMaps(cols, 2)
	preds := []string{
		"i = 3", "i <> 3", "i < 0", "i <= -4", "i > 3", "i >= 5",
		"f < 0", "f >= 3", "f = 0.5",
		"s = 'apple'", "s < 'banana'", "s >= 'pear'", "s = 'zzz'",
		"b = TRUE", "b = FALSE",
		"3 = i", "0.5 >= f", "'apple' <> s", // literal on the left
		"m = 3", "m < 4", // mixed-kind column: zones are Unsafe, never skip
		"i IS NULL", "i IS NOT NULL", "m IS NULL", "f IS NOT NULL",
		"i >= 0 AND f < 10", "i > 4 AND s <> 'pear'",
		"s = 3", "b = 1", // kind mismatch: unknown for every row
	}
	for _, src := range preds {
		t.Run(src, func(t *testing.T) {
			e := parsePred(t, src)
			zp, ok := CompileZone(e, kernelSchema)
			if !ok {
				t.Fatalf("CompileZone rejected %q", src)
			}
			compiled, err := Compile(e, kernelSchema, nil)
			if err != nil {
				t.Fatalf("Compile(%q): %v", src, err)
			}
			anySkip := false
			for b := 0; b < zones.NumBlocks(); b++ {
				if zp(zones, b) {
					continue
				}
				anySkip = true
				lo := b * zones.BlockSize()
				hi := zones.BlockEnd(lo)
				for i := lo; i < hi; i++ {
					sel, err := EvalBool(compiled, rows[i])
					if err != nil {
						t.Fatalf("row eval: %v", err)
					}
					if sel {
						t.Fatalf("block %d skipped but row %d selects under %q", b, i, src)
					}
				}
			}
			_ = anySkip // skipping is an optimization, not required per predicate
		})
	}
}

// TestCompileZoneSkipsSomething guards against a vacuous soundness pass: on
// a sorted column with a selective range predicate, at least one block must
// actually be ruled out.
func TestCompileZoneSkipsSomething(t *testing.T) {
	var rows []value.Row
	for i := 0; i < 40; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewFloat(0), value.NewStr("s"),
			value.NewBool(true), value.NewInt(0), value.NewInt(0)})
	}
	cols := value.ColumnsOf(len(kernelSchema), rows)
	zones := value.BuildZoneMaps(cols, 4)
	zp, ok := CompileZone(parsePred(t, "i >= 36"), kernelSchema)
	if !ok {
		t.Fatal("CompileZone rejected range predicate")
	}
	skipped := 0
	for b := 0; b < zones.NumBlocks(); b++ {
		if !zp(zones, b) {
			skipped++
		}
	}
	if skipped != 9 {
		t.Fatalf("skipped %d of 10 blocks, want 9", skipped)
	}
}

// TestCompileZoneRejects pins the fragment boundary: forms with no literal
// bound must not compile (the kernels still handle them row-wise).
func TestCompileZoneRejects(t *testing.T) {
	for _, src := range []string{
		"i = i2",         // column vs column
		"i + 1 = 3",      // arithmetic
		"i = 1 OR i = 3", // OR
		"1 = 2",          // no column
	} {
		if _, ok := CompileZone(parsePred(t, src), kernelSchema); ok {
			t.Errorf("CompileZone accepted %q", src)
		}
	}
	// Partial AND: one compilable conjunct suffices.
	if _, ok := CompileZone(parsePred(t, "i = i2 AND i >= 3"), kernelSchema); !ok {
		t.Error("CompileZone refused partially compilable AND")
	}
}

// TestZoneRange pins the envelope pruning used by predicate transfer:
// blocks disjoint from [min, max] are ruled out, overlapping and
// incomparable ones are kept.
func TestZoneRange(t *testing.T) {
	var rows []value.Row
	for i := 0; i < 8; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i * 10))})
	}
	rows = append(rows, value.Row{value.NullValue}, value.Row{value.NullValue})
	cols := value.ColumnsOf(1, rows)
	zones := value.BuildZoneMaps(cols, 2) // blocks: [0,10] [20,30] [40,50] [60,70] [NULL,NULL]

	zp := ZoneRange(0, value.NewInt(25), value.NewInt(45))
	want := []bool{false, true, true, false, false} // all-NULL block never equi-joins
	for b, w := range want {
		if got := zp(zones, b); got != w {
			t.Errorf("block %d: ZoneRange = %v, want %v", b, got, w)
		}
	}

	// Incomparable envelope bound: conservative, keeps the block.
	zs := ZoneRange(0, value.NewStr("a"), value.NewStr("b"))
	for b := 0; b < 4; b++ {
		if !zs(zones, b) {
			t.Errorf("block %d pruned by incomparable envelope", b)
		}
	}

	// Int envelope vs integral Float zones must still prune: the join's key
	// encoding equates them, and so does value.Compare.
	frows := []value.Row{
		{value.NewFloat(1)}, {value.NewFloat(2)},
		{value.NewFloat(100)}, {value.NewFloat(101)},
	}
	fz := value.BuildZoneMaps(value.ColumnsOf(1, frows), 2)
	fp := ZoneRange(0, value.NewInt(90), value.NewInt(120))
	if fp(fz, 0) || !fp(fz, 1) {
		t.Errorf("float-vs-int envelope: block0=%v block1=%v, want false true", fp(fz, 0), fp(fz, 1))
	}
}
