package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

var testSchema = value.Schema{
	{Qualifier: "t", Name: "a", Type: value.Int},
	{Qualifier: "t", Name: "b", Type: value.Float},
	{Qualifier: "t", Name: "s", Type: value.Str},
	{Qualifier: "t", Name: "n", Type: value.Int},
}

func compileWhere(t *testing.T, cond string) Compiled {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	c, err := Compile(sel.Where, testSchema, nil)
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	return c
}

func row(a int64, b float64, s string, n value.Value) value.Row {
	return value.Row{value.NewInt(a), value.NewFloat(b), value.NewStr(s), n}
}

func TestCompiledPredicates(t *testing.T) {
	cases := []struct {
		cond string
		row  value.Row
		want bool
	}{
		{"a = 3", row(3, 0, "", value.NullValue), true},
		{"a = 3", row(4, 0, "", value.NullValue), false},
		{"a < b", row(1, 1.5, "", value.NullValue), true},
		{"a + 1 <= b * 2", row(2, 1.5, "", value.NullValue), true},
		{"s = 'x'", row(0, 0, "x", value.NullValue), true},
		{"s <> 'x'", row(0, 0, "y", value.NullValue), true},
		{"a = 1 AND b = 2 OR s = 'z'", row(0, 0, "z", value.NullValue), true},
		{"NOT a = 1", row(2, 0, "", value.NullValue), true},
		{"n IS NULL", row(0, 0, "", value.NullValue), true},
		{"n IS NOT NULL", row(0, 0, "", value.NewInt(0)), true},
		{"n = 5", row(0, 0, "", value.NullValue), false},     // NULL comparison is unknown
		{"NOT n = 5", row(0, 0, "", value.NullValue), false}, // NOT unknown is unknown
		{"a BETWEEN 2 AND 4", row(3, 0, "", value.NullValue), true},
		{"a BETWEEN 2 AND 4", row(5, 0, "", value.NullValue), false},
		{"ABS(a - 10) <= 2", row(9, 0, "", value.NullValue), true},
		{"a / 2 = 1", row(3, 0, "", value.NullValue), true}, // integer division
	}
	for _, c := range cases {
		got, err := EvalBool(compileWhere(t, c.cond), c.row)
		if err != nil {
			t.Errorf("%q: %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.cond, c.row, got, c.want)
		}
	}
}

// TestThreeValuedLogic pins down SQL's NULL handling for AND/OR.
func TestThreeValuedLogic(t *testing.T) {
	nullRow := row(1, 0, "", value.NullValue)
	// false AND unknown = false (not unknown).
	v, err := compileWhere(t, "a = 2 AND n = 1")(nullRow)
	if err != nil || v.IsNull() || v.Bool() {
		t.Errorf("false AND unknown = %v, %v", v, err)
	}
	// true OR unknown = true.
	v, err = compileWhere(t, "a = 1 OR n = 1")(nullRow)
	if err != nil || !v.Bool() {
		t.Errorf("true OR unknown = %v, %v", v, err)
	}
	// true AND unknown = unknown.
	v, err = compileWhere(t, "a = 1 AND n = 1")(nullRow)
	if err != nil || !v.IsNull() {
		t.Errorf("true AND unknown = %v, %v", v, err)
	}
	// false OR unknown = unknown.
	v, err = compileWhere(t, "a = 2 OR n = 1")(nullRow)
	if err != nil || !v.IsNull() {
		t.Errorf("false OR unknown = %v, %v", v, err)
	}
}

func TestCompileRejectsAggregates(t *testing.T) {
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM t WHERE COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sel.Where, testSchema, nil); err == nil {
		t.Error("aggregates must be rejected outside aggregation context")
	}
}

func mustAgg(t *testing.T, call string) *Aggregate {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT " + call + " FROM t")
	if err != nil {
		t.Fatal(err)
	}
	a, err := CompileAggregate(sel.Items[0].Expr.(*sqlparser.FuncCall), testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAggregateBasics(t *testing.T) {
	rows := []value.Row{
		row(1, 2.0, "x", value.NewInt(10)),
		row(3, 1.0, "y", value.NullValue),
		row(1, 4.5, "x", value.NewInt(20)),
	}
	check := func(call string, want value.Value) {
		t.Helper()
		a := mustAgg(t, call)
		st := a.NewState()
		for _, r := range rows {
			if err := st.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		if !value.Identical(st.Value(), want) {
			t.Errorf("%s = %v, want %v", call, st.Value(), want)
		}
	}
	check("COUNT(*)", value.NewInt(3))
	check("COUNT(n)", value.NewInt(2)) // NULL skipped
	check("COUNT(DISTINCT a)", value.NewInt(2))
	check("COUNT(DISTINCT s)", value.NewInt(2))
	check("SUM(a)", value.NewInt(5))
	check("SUM(b)", value.NewFloat(7.5))
	check("AVG(a)", value.NewFloat(5.0/3))
	check("MIN(b)", value.NewFloat(1))
	check("MAX(b)", value.NewFloat(4.5))
	check("MIN(s)", value.NewStr("x"))
	check("MAX(n)", value.NewInt(20))
}

func TestAggregateEmptyGroups(t *testing.T) {
	for call, want := range map[string]value.Value{
		"COUNT(*)": value.NewInt(0),
		"COUNT(a)": value.NewInt(0),
		"SUM(a)":   value.NullValue,
		"AVG(a)":   value.NullValue,
		"MIN(a)":   value.NullValue,
		"MAX(a)":   value.NullValue,
	} {
		a := mustAgg(t, call)
		if got := a.NewState().Value(); !value.Identical(got, want) {
			t.Errorf("%s over empty = %v, want %v", call, got, want)
		}
	}
}

// TestAlgebraicMergeProperty: splitting the input arbitrarily, aggregating
// partials, and merging must equal aggregating the whole set — the f°∘fⁱ
// identity memoization relies on (Appendix C).
func TestAlgebraicMergeProperty(t *testing.T) {
	calls := []string{"COUNT(*)", "COUNT(a)", "SUM(a)", "SUM(b)", "AVG(b)", "MIN(a)", "MAX(b)"}
	for _, call := range calls {
		a := mustAgg(t, call)
		if !a.Algebraic() {
			t.Errorf("%s should be algebraic", call)
		}
		err := quick.Check(func(seed int64, split uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(12)
			rows := make([]value.Row, n)
			for i := range rows {
				var nv value.Value
				if rng.Intn(3) > 0 {
					nv = value.NewInt(int64(rng.Intn(10)))
				}
				rows[i] = row(int64(rng.Intn(20)-10), rng.NormFloat64()*5, "s", nv)
			}
			cut := 0
			if n > 0 {
				cut = int(split) % (n + 1)
			}
			whole := a.NewState()
			left, right := a.NewState(), a.NewState()
			for i, r := range rows {
				whole.Add(r)
				if i < cut {
					left.Add(r)
				} else {
					right.Add(r)
				}
			}
			// Round-trip the partials through the cache representation.
			l2 := a.StateFromPartial(left.Partial())
			r2 := a.StateFromPartial(right.Partial())
			l2.Merge(r2)
			got, want := l2.Value(), whole.Value()
			if got.K != want.K {
				return false
			}
			if got.K == value.Float {
				return math.Abs(got.F-want.F) < 1e-9
			}
			return value.Identical(got, want)
		}, &quick.Config{MaxCount: 300})
		if err != nil {
			t.Errorf("%s: %v", call, err)
		}
	}
}

func TestDistinctNotAlgebraicButMergeable(t *testing.T) {
	a := mustAgg(t, "COUNT(DISTINCT a)")
	if a.Algebraic() {
		t.Error("DISTINCT aggregates are not algebraic (unbounded partials)")
	}
	s1, s2 := a.NewState(), a.NewState()
	s1.Add(row(1, 0, "", value.NullValue))
	s1.Add(row(2, 0, "", value.NullValue))
	s2.Add(row(2, 0, "", value.NullValue))
	s2.Add(row(3, 0, "", value.NullValue))
	s1.Merge(s2)
	if got := s1.Value(); got.I != 3 {
		t.Errorf("merged distinct count = %v, want 3", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	sel, err := sqlparser.ParseSelect("SELECT SUM(a, b) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileAggregate(sel.Items[0].Expr.(*sqlparser.FuncCall), testSchema, nil); err == nil {
		t.Error("SUM with two arguments must fail")
	}
	sel2, err := sqlparser.ParseSelect("SELECT ABS(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileAggregate(sel2.Items[0].Expr.(*sqlparser.FuncCall), testSchema, nil); err == nil {
		t.Error("ABS is not an aggregate")
	}
}
