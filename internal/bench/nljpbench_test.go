package bench

import (
	"fmt"
	"testing"

	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// TestParallelWorkersMatchSequential: across every Figure 1–8 workload
// query, the parallel NLJP binding loop returns exactly the rows of the
// sequential loop (same order, same values), and the cache-accounting
// invariant MemoHits + PruneHits + InnerEvals == Bindings holds at every
// worker count. Run under -race in CI, this doubles as the concurrency
// smoke test over the real workloads.
func TestParallelWorkersMatchSequential(t *testing.T) {
	ds := NewDataset(300, 300, 1)
	for _, q := range Figure1Queries() {
		sel, err := sqlparser.ParseSelect(q.SQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Name, err)
		}
		run := func(workers int) ([]value.Row, iceberg.CacheStats) {
			t.Helper()
			opts := iceberg.AllOn()
			opts.Workers = workers
			res, report, err := iceberg.Exec(ds.Cat, sel, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", q.Name, workers, err)
			}
			st := report.TotalStats()
			if st.Bindings > 0 && st.MemoHits+st.PruneHits+st.InnerEvals != st.Bindings {
				t.Errorf("%s workers=%d: memo %d + prune %d + evals %d != bindings %d",
					q.Name, workers, st.MemoHits, st.PruneHits, st.InnerEvals, st.Bindings)
			}
			return res.Rows, st
		}
		seqRows, _ := run(1)
		for _, w := range []int{2, 4} {
			parRows, _ := run(w)
			if len(parRows) != len(seqRows) {
				t.Fatalf("%s workers=%d: %d rows, want %d", q.Name, w, len(parRows), len(seqRows))
			}
			for i := range seqRows {
				for j := range seqRows[i] {
					if parRows[i][j] != seqRows[i][j] {
						t.Fatalf("%s workers=%d: row %d col %d = %v, want %v",
							q.Name, w, i, j, parRows[i][j], seqRows[i][j])
					}
				}
			}
		}
	}
}

// BenchmarkNLJPWorkers is the CI bench smoke for the parallel binding loop:
// every figure query at 1 and 4 workers, reporting the cache hit counters
// as metrics. The root-level BenchmarkNLJPWorkers (bench_test.go) is the
// one that emits BENCH_nljp.json.
func BenchmarkNLJPWorkers(b *testing.B) {
	ds := NewDataset(300, 300, 1)
	for _, q := range Figure1Queries() {
		for _, w := range []int{1, 4} {
			sys := SysAllWorkers(w)
			b.Run(fmt.Sprintf("%s/w%d", q.Name, w), func(b *testing.B) {
				var stats iceberg.CacheStats
				for i := 0; i < b.N; i++ {
					_, st, err := sys.Run(ds, q.SQL)
					if err != nil {
						b.Fatal(err)
					}
					stats = st
				}
				b.ReportMetric(float64(stats.MemoHits), "memo-hits")
				b.ReportMetric(float64(stats.PruneHits), "prune-hits")
			})
		}
	}
}
