// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 8): the same queries, system
// configurations, parameter sweeps, and reported series, over the synthetic
// workloads of internal/workload. cmd/experiments and the root bench_test.go
// drive it.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/workload"
)

// Dataset bundles the synthetic relations one experiment run uses.
type Dataset struct {
	Cat  *storage.Catalog
	N    int // player_performance rows
	KVN  int // performance_kv rows
	Seed int64
}

// NewDataset builds the default catalog: the pivoted season-statistics
// table with n rows, a Score table for the pairs queries, and the unpivoted
// key–value table with kvn rows. Secondary ("BT") indexes are created on
// the comparison attributes, as in the paper's default configuration.
func NewDataset(n, kvn int, seed int64) *Dataset {
	ds := &Dataset{Cat: storage.NewCatalog(), N: n, KVN: kvn, Seed: seed}
	perf := workload.PlayerPerformance(n, seed)
	ds.Cat.Put(perf)
	ds.Cat.Put(workload.Scores(max(n/12, 24), 12, seed+1))
	ds.Cat.Put(workload.UnpivotedPerformance(kvn, seed+2))
	ds.buildIndexes()
	return ds
}

func (ds *Dataset) buildIndexes() {
	perf, _ := ds.Cat.Get("player_performance")
	if perf != nil {
		perf.CreateIndex("bh_bhr", "b_h", "b_hr")
		perf.CreateIndex("brbi_bsb", "b_rbi", "b_sb")
	}
	if score, _ := ds.Cat.Get("Score"); score != nil {
		score.CreateIndex("hits_idx", "hits")
	}
	if kv, _ := ds.Cat.Get("performance_kv"); kv != nil {
		kv.CreateIndex("val_idx", "val")
	}
}

// System is one execution configuration of Figure 1.
type System struct {
	Name string
	// Run executes the query and returns the number of result rows plus
	// cache statistics (zero for non-NLJP systems).
	Run func(ds *Dataset, sql string) (int, iceberg.CacheStats, error)
}

func runBaseline(parallel, useIndexes bool) func(*Dataset, string) (int, iceberg.CacheStats, error) {
	return func(ds *Dataset, sql string) (int, iceberg.CacheStats, error) {
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			return 0, iceberg.CacheStats{}, err
		}
		p := &engine.Planner{Catalog: ds.Cat, Parallel: parallel, UseIndexes: useIndexes}
		op, err := p.PlanSelect(sel, nil)
		if err != nil {
			return 0, iceberg.CacheStats{}, err
		}
		rows, err := engine.Run(op)
		if err != nil {
			return 0, iceberg.CacheStats{}, err
		}
		return len(rows), iceberg.CacheStats{}, nil
	}
}

func runOptimized(opts iceberg.Options) func(*Dataset, string) (int, iceberg.CacheStats, error) {
	return func(ds *Dataset, sql string) (int, iceberg.CacheStats, error) {
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			return 0, iceberg.CacheStats{}, err
		}
		res, report, err := iceberg.Exec(ds.Cat, sel, opts)
		if err != nil {
			return 0, iceberg.CacheStats{}, err
		}
		return len(res.Rows), report.TotalStats(), nil
	}
}

// Named system configurations.
var (
	SysBase    = System{Name: "base", Run: runBaseline(false, true)}
	SysVendorA = System{Name: "vendorA", Run: runBaseline(true, true)}
	SysApriori = System{Name: "apriori", Run: runOptimized(iceberg.Options{Apriori: true, UseIndexes: true})}
	SysMemo    = System{Name: "memo", Run: runOptimized(iceberg.Options{Memo: true, UseIndexes: true})}
	SysPrune   = System{Name: "prune", Run: runOptimized(iceberg.Options{Prune: true, CacheIndex: true, UseIndexes: true})}
	SysAll     = System{Name: "all", Run: runOptimized(iceberg.AllOn())}
)

// Figure1Systems returns the configurations compared in Figure 1.
func Figure1Systems() []System {
	return []System{SysBase, SysVendorA, SysPrune, SysMemo, SysApriori, SysAll}
}

// SysBaseNoIndex is the baseline without secondary-index joins ("PK only").
func SysBaseNoIndex() System {
	return System{Name: "base-noidx", Run: runBaseline(false, false)}
}

// SysPruneMemo enables pruning and memoization (no a-priori, no cache
// index), the paper's Figure 4 middle configuration.
func SysPruneMemo() System {
	return System{Name: "prune+memo", Run: runOptimized(iceberg.Options{Prune: true, Memo: true, UseIndexes: true})}
}

// SysPruneMemoNoIndex is prune+memo without secondary-index joins.
func SysPruneMemoNoIndex() System {
	return System{Name: "prune+memo-noidx", Run: runOptimized(iceberg.Options{Prune: true, Memo: true, UseIndexes: false})}
}

// SysPruneNoCI is pruning without the cache index, for the CI ablation.
func SysPruneNoCI() System {
	return System{Name: "prune-noci", Run: runOptimized(iceberg.Options{Prune: true, UseIndexes: true})}
}

// DropPerformanceIndexes removes the secondary indexes of the
// player_performance table, modelling Figure 4's "PK only" configuration.
func DropPerformanceIndexes(ds *Dataset) {
	if perf, err := ds.Cat.Get("player_performance"); err == nil {
		perf.DropIndexes()
	}
}

// Measurement is one (query, system) timing.
type Measurement struct {
	Query   string
	System  string
	Seconds float64
	Rows    int
	Stats   iceberg.CacheStats
	Err     error
}

// Export converts the measurement to a JSON-friendly view.
func (m Measurement) Export() ExportMeasurement {
	out := ExportMeasurement{
		Query: m.Query, System: m.System, Seconds: m.Seconds,
		Rows: m.Rows, Stats: m.Stats,
	}
	if m.Err != nil {
		out.Error = m.Err.Error()
	}
	return out
}

// ExportMeasurement is the serializable form of a Measurement, written by
// cmd/experiments -json for downstream plotting.
type ExportMeasurement struct {
	Query   string             `json:"query"`
	System  string             `json:"system"`
	Seconds float64            `json:"seconds"`
	Rows    int                `json:"rows"`
	Stats   iceberg.CacheStats `json:"stats"`
	Error   string             `json:"error,omitempty"`
}

// Measure times one execution. A GC cycle runs first so that garbage from
// earlier measurements is not charged to this one.
func Measure(ds *Dataset, sys System, query, sql string) Measurement {
	runtime.GC()
	start := time.Now()
	rows, stats, err := sys.Run(ds, sql)
	return Measurement{
		Query:   query,
		System:  sys.Name,
		Seconds: time.Since(start).Seconds(),
		Rows:    rows,
		Stats:   stats,
		Err:     err,
	}
}

// printTable renders measurements grouped by query with per-system columns,
// normalized against the first system (the paper normalizes against
// PostgreSQL).
func printTable(w io.Writer, title string, queries []string, systems []System, ms map[string]map[string]Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "query")
	for _, s := range systems {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintf(w, " %8s\n", "rows")
	for _, q := range queries {
		fmt.Fprintf(w, "%-10s", q)
		baseSec := ms[q][systems[0].Name].Seconds
		rows := -1
		for _, s := range systems {
			m := ms[q][s.Name]
			if m.Err != nil {
				fmt.Fprintf(w, " %14s", "err")
				continue
			}
			norm := m.Seconds / baseSec
			fmt.Fprintf(w, " %7.3fs(%.2fx)", m.Seconds, norm)
			if rows == -1 {
				rows = m.Rows
			}
		}
		fmt.Fprintf(w, " %8d\n", rows)
	}
	fmt.Fprintln(w)
}
