package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
	"smarticeberg/internal/workload"
)

// Data-skipping bench: the SkipQueries mix over the clustered table, each
// query run with zone-map skipping + predicate transfer on and off. The
// metrics BENCH_skip.json records are the ones the optimization is judged
// on: throughput (rows/s over the rows the query would read unskipped),
// skipped-block percentage, skipped probe rows, and the standalone cost of
// building a transfer filter.

// SkipBenchRecord is one (query, skipping on/off) measurement.
type SkipBenchRecord struct {
	Query      string  `json:"query"`
	Skipping   string  `json:"skipping"` // "on" or "off"
	BatchSize  int     `json:"batch_size"`
	Workers    int     `json:"workers"`
	Iters      int     `json:"iters"`
	InputRows  int     `json:"input_rows"` // scans × table rows: what "off" reads
	OutputRows int     `json:"output_rows"`
	NsPerOp    int64   `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec"`

	// Per-execution skip counters (process totals divided by iters).
	SkippedBlocks      int64   `json:"skipped_blocks"`
	TotalBlocks        int64   `json:"total_blocks"` // scans × table blocks
	SkippedBlockPct    float64 `json:"skipped_block_pct"`
	SkippedRows        int64   `json:"skipped_rows"`
	SkippedProbes      int64   `json:"skipped_probes"`
	SkippedProbePct    float64 `json:"skipped_probe_pct"` // of the rows surviving zones
	FiltersBuilt       int64   `json:"filters_built"`
	FiltersTransferred int64   `json:"filters_transferred"`
}

// FilterBuildRecord is the standalone transfer-filter build cost: the price
// a hash join pays, on top of its hash table, to make its build side
// transferable.
type FilterBuildRecord struct {
	Keys        int     `json:"keys"`
	NsPerBuild  int64   `json:"ns_per_build"`
	NsPerKey    float64 `json:"ns_per_key"`
	FilterBytes int64   `json:"filter_bytes"`
}

// SkipBenchFile is the BENCH_skip.json artifact.
type SkipBenchFile struct {
	NumCPU      int               `json:"num_cpu"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	TableRows   int               `json:"table_rows"`
	BlockSize   int               `json:"block_size"`
	FilterBuild FilterBuildRecord `json:"filter_build"`
	Records     []SkipBenchRecord `json:"records"`
}

// NewSkipCatalog builds the clustered-workload catalog the skip bench and
// smoke tests share.
func NewSkipCatalog(n int, seed int64) *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Put(workload.ClusteredPerformance(n, seed))
	return cat
}

// MeasureSkip times iters executions of one skip-mix query with skipping and
// transfer either both on or both off, and reads the per-execution skip
// counters off the process totals.
func MeasureSkip(cat *storage.Catalog, q SkipQuery, batchSize, workers, iters int, skipping bool) (SkipBenchRecord, error) {
	rec := SkipBenchRecord{
		Query: q.Name, Skipping: "off", BatchSize: batchSize, Workers: workers, Iters: iters,
	}
	if skipping {
		rec.Skipping = "on"
	}
	if iters <= 0 {
		return rec, fmt.Errorf("iters must be positive")
	}
	table, err := cat.Get("perf_clustered")
	if err != nil {
		return rec, err
	}
	nRows := len(table.Rows)
	rec.InputRows = q.Scans * nRows
	tableBlocks := (nRows + value.ZoneBlockSize - 1) / value.ZoneBlockSize
	rec.TotalBlocks = int64(q.Scans * tableBlocks)

	sel, err := sqlparser.ParseSelect(q.SQL)
	if err != nil {
		return rec, err
	}
	run := func() (int, error) {
		ec := engine.NewExecContext(nil, nil)
		p := &engine.Planner{
			Catalog: cat, UseIndexes: true, Exec: ec,
			BatchSize: batchSize, Workers: workers,
			NoZoneSkip: !skipping, NoTransfer: !skipping,
		}
		op, err := p.PlanSelect(sel, nil)
		if err != nil {
			return 0, err
		}
		rows, err := engine.RunExecBatch(ec, op, batchSize)
		return len(rows), err
	}
	// Warmup fills the table's column/zone caches so the timed loop measures
	// steady state, as a registered table would serve. The explicit GC then
	// flushes warmup (and any prior measurement's) garbage: on one CPU the
	// collector's assist debt lands inside whichever timed loop runs next,
	// which otherwise swamps the millisecond-scale differences measured here.
	if _, err := run(); err != nil {
		return rec, err
	}
	runtime.GC()
	engine.ResetSkipTotals()
	start := time.Now()
	for i := 0; i < iters; i++ {
		n, err := run()
		if err != nil {
			return rec, err
		}
		rec.OutputRows = n
	}
	elapsed := time.Since(start)
	totals := engine.SkipTotals()

	rec.NsPerOp = elapsed.Nanoseconds() / int64(iters)
	if rec.NsPerOp > 0 {
		rec.RowsPerSec = float64(rec.InputRows) / (float64(rec.NsPerOp) / 1e9)
	}
	rec.SkippedBlocks = totals.SkippedBlocks / int64(iters)
	rec.SkippedRows = totals.SkippedRows / int64(iters)
	rec.SkippedProbes = totals.SkippedProbes / int64(iters)
	rec.FiltersBuilt = totals.FiltersBuilt / int64(iters)
	rec.FiltersTransferred = totals.FiltersTransferred / int64(iters)
	if rec.TotalBlocks > 0 {
		rec.SkippedBlockPct = 100 * float64(rec.SkippedBlocks) / float64(rec.TotalBlocks)
	}
	if survivors := int64(rec.InputRows) - rec.SkippedRows; survivors > 0 {
		rec.SkippedProbePct = 100 * float64(rec.SkippedProbes) / float64(survivors)
	}
	return rec, nil
}

// MeasureFilterBuild times building a transfer filter over n single-column
// int keys, amortized over iters builds.
func MeasureFilterBuild(n, iters int) FilterBuildRecord {
	keys := make([][]byte, n)
	vals := make([][]value.Value, n)
	for i := range keys {
		vals[i] = []value.Value{value.NewInt(int64(i))}
		keys[i] = value.AppendKeys(nil, vals[i])
	}
	var f *expr.KeyFilter
	start := time.Now()
	for it := 0; it < iters; it++ {
		f = expr.NewKeyFilter(n, 1)
		for i := range keys {
			f.Add(keys[i], vals[i])
		}
	}
	elapsed := time.Since(start)
	rec := FilterBuildRecord{
		Keys:        n,
		NsPerBuild:  elapsed.Nanoseconds() / int64(iters),
		FilterBytes: f.SizeBytes(),
	}
	if n > 0 {
		rec.NsPerKey = float64(rec.NsPerBuild) / float64(n)
	}
	return rec
}

// WriteSkipBench writes the BENCH_skip.json artifact.
func WriteSkipBench(path string, tableRows int, fb FilterBuildRecord, records []SkipBenchRecord) error {
	f := SkipBenchFile{
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TableRows:   tableRows,
		BlockSize:   value.ZoneBlockSize,
		FilterBuild: fb,
		Records:     records,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
