package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"smarticeberg/internal/engine"
)

// TestMeasureSpill: the squeezed-budget run must actually spill, produce the
// same output cardinality as the in-memory baseline, and leave the spill
// parent directory empty.
func TestMeasureSpill(t *testing.T) {
	rows := VectorRows(20000)
	for _, size := range []int{0, 1024} {
		build := func() engine.Operator { return ScanFilterAggPlan(rows, size) }
		memRec, err := MeasureSpill("scanfilteragg", "memory", 0, "", size, len(rows), 1, build)
		if err != nil {
			t.Fatalf("batch=%d memory: %v", size, err)
		}
		peak, err := SpillAggPeak(rows, size)
		if err != nil {
			t.Fatalf("batch=%d peak: %v", size, err)
		}
		if peak <= 0 {
			t.Fatalf("batch=%d: no peak measured", size)
		}
		dir := t.TempDir()
		spillRec, err := MeasureSpill("scanfilteragg", "spill", peak/4, dir, size, len(rows), 1, build)
		if err != nil {
			t.Fatalf("batch=%d spill: %v", size, err)
		}
		if spillRec.OutputRows != memRec.OutputRows {
			t.Fatalf("batch=%d: spill emitted %d rows, memory %d", size, spillRec.OutputRows, memRec.OutputRows)
		}
		if spillRec.SpillFrames <= 0 || spillRec.SpillBytes <= 0 {
			t.Fatalf("batch=%d: spill mode reported no disk traffic: %+v", size, spillRec)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("batch=%d: spill parent dir not cleaned (%d entries)", size, len(ents))
		}
	}
}

// TestWriteSpillBench round-trips the JSON artifact.
func TestWriteSpillBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_spill.json")
	in := []SpillBenchRecord{
		{Bench: "scanfilteragg", Mode: "memory", Iters: 1, InputRows: 10, NsPerOp: 5},
		{Bench: "scanfilteragg", Mode: "spill", Budget: 4096, Iters: 1, InputRows: 10, NsPerOp: 9, SpillFrames: 12},
	}
	if err := WriteSpillBench(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []SpillBenchRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[1].SpillFrames != 12 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
