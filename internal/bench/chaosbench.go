package bench

import (
	"encoding/json"
	"os"
	"runtime"

	"smarticeberg/internal/server"
)

// ChaosBenchRecord is one chaos soak serialized into BENCH_chaos.json: the
// seed and fleet shape, which sites the storm armed (with their calibrated
// per-hit probabilities), and the recovery verdict. The soak is the
// robustness analogue of the latency benchmarks — the artifact documents
// that under a reproducible fault storm the server kept every answer
// byte-correct and healed itself.
type ChaosBenchRecord struct {
	Seed             int64    `json:"seed"`
	Clients          int      `json:"clients"`
	QueriesPerClient int      `json:"queries_per_client"`
	GOMAXPROCS       int      `json:"gomaxprocs"`
	ArmedSites       []string `json:"armed_sites"`
	Issued           int      `json:"issued"`
	OK               int      `json:"ok"`
	Recovered        int      `json:"recovered"`
	FaultHit         int      `json:"fault_hit"`
	Failed           int      `json:"failed"`
	Shed             int      `json:"shed"`
	RecoveryRate     float64  `json:"recovery_rate"`
	Retries          int64    `json:"retries"`
	WatchdogFired    int64    `json:"watchdog_fired"`
	Mismatches       int      `json:"mismatches"`
	Unclassified     int      `json:"unclassified"`
	BreakersReclosed bool     `json:"breakers_reclosed"`
	BudgetAfterDrain int64    `json:"budget_after_drain"`
	ElapsedMillis    float64  `json:"elapsed_ms"`
}

// NewChaosBenchRecord folds one soak into its serializable record.
func NewChaosBenchRecord(res *server.ChaosResult) ChaosBenchRecord {
	return ChaosBenchRecord{
		Seed:             res.Seed,
		Clients:          res.Clients,
		QueriesPerClient: res.Queries,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ArmedSites:       res.ArmedSites,
		Issued:           res.Issued,
		OK:               res.OK,
		Recovered:        res.Recovered,
		FaultHit:         res.FaultHit,
		Failed:           res.Failed,
		Shed:             res.Shed,
		RecoveryRate:     res.RecoveryRate(),
		Retries:          res.Retries,
		WatchdogFired:    res.WatchdogFired,
		Mismatches:       res.Mismatches,
		Unclassified:     res.Unclassified,
		BreakersReclosed: res.BreakersReclosed,
		BudgetAfterDrain: res.BudgetUsed,
		ElapsedMillis:    float64(res.Elapsed.Microseconds()) / 1000,
	}
}

// WriteChaosBench writes the records as indented JSON, the BENCH_chaos.json
// artifact `make bench-chaos` regenerates.
func WriteChaosBench(path string, records []ChaosBenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
