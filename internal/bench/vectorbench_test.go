package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"smarticeberg/internal/engine"
)

// TestMeasureVector: row and batch microbench plans agree on output
// cardinality, and the record carries sane metrics.
func TestMeasureVector(t *testing.T) {
	rows := VectorRows(20000)
	inner := VectorRows(400)

	cases := []struct {
		name  string
		build func(batchSize int) func() engine.Operator
	}{
		{"scanfilteragg", func(bs int) func() engine.Operator {
			return func() engine.Operator { return ScanFilterAggPlan(rows, bs) }
		}},
		{"hashjoin", func(bs int) func() engine.Operator {
			return func() engine.Operator { return HashJoinPlan(rows, inner, bs) }
		}},
	}
	for _, tc := range cases {
		rowRec, err := MeasureVector(tc.name, "row", 0, len(rows), 1, tc.build(0))
		if err != nil {
			t.Fatalf("%s row: %v", tc.name, err)
		}
		for _, size := range []int{1, 64, 1024} {
			batchRec, err := MeasureVector(tc.name, "batch", size, len(rows), 1, tc.build(size))
			if err != nil {
				t.Fatalf("%s batch %d: %v", tc.name, size, err)
			}
			if batchRec.OutputRows != rowRec.OutputRows {
				t.Fatalf("%s: batch %d emitted %d rows, row path %d",
					tc.name, size, batchRec.OutputRows, rowRec.OutputRows)
			}
			if batchRec.NsPerOp <= 0 || batchRec.RowsPerSec <= 0 {
				t.Fatalf("%s batch %d: degenerate metrics %+v", tc.name, size, batchRec)
			}
		}
	}
}

// TestWriteVectorBench round-trips the JSON artifact.
func TestWriteVectorBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_vector.json")
	in := []VectorBenchRecord{
		{Bench: "scanfilteragg", Mode: "row", Iters: 1, InputRows: 10, NsPerOp: 5},
		{Bench: "scanfilteragg", Mode: "batch", BatchSize: 1024, Iters: 1, InputRows: 10, NsPerOp: 2},
	}
	if err := WriteVectorBench(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []VectorBenchRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[1].BatchSize != 1024 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
