package bench

import (
	"encoding/json"
	"os"
	"runtime"

	"smarticeberg/internal/server"
)

// ServerBenchRecord is one load-test configuration of icebergd, serialized
// into BENCH_server.json: N concurrent clients driving a query mix against
// one server, with the admission-control settings and the resulting latency
// percentiles, shed rate, and row throughput. A shed_rate of zero means the
// configuration kept up; the deliberately squeezed configurations document
// how the server degrades — typed 429s, not timeouts — when it cannot.
type ServerBenchRecord struct {
	Workload      string  `json:"workload"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	MaxConcurrent int     `json:"max_concurrent"`
	QueueDepth    int     `json:"queue_depth"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
	ShedRate      float64 `json:"shed_rate"`
	RowsPerSec    float64 `json:"rows_per_sec"`
}

// NewServerBenchRecord folds one load run into its serializable record.
func NewServerBenchRecord(workload string, cfg server.Config, res *server.LoadResult) ServerBenchRecord {
	return ServerBenchRecord{
		Workload:      workload,
		Clients:       res.Clients,
		Requests:      res.Requests,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		OK:            res.OK,
		Shed:          res.Shed,
		Errors:        res.Errors,
		P50Millis:     float64(res.P50.Microseconds()) / 1000,
		P99Millis:     float64(res.P99.Microseconds()) / 1000,
		ShedRate:      res.ShedRate(),
		RowsPerSec:    res.RowsPerSec(),
	}
}

// WriteServerBench writes the records as indented JSON, the
// BENCH_server.json artifact `make bench-server` regenerates.
func WriteServerBench(path string, records []ServerBenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
