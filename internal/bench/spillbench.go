package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/value"
)

// SpillBenchRecord is one (microbench, mode, budget) measurement of the
// spilling aggregate, serialized into BENCH_spill.json. Mode "memory" runs
// with an effectively unlimited budget (the in-memory baseline the spill
// path is judged against); mode "spill" squeezes the budget below the
// measured peak so the aggregate must partition to disk. SpillFrames and
// SpillBytes are the disk traffic of one execution.
type SpillBenchRecord struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"` // "memory" or "spill"
	BatchSize   int     `json:"batch_size"`
	Budget      int64   `json:"budget_bytes"` // 0 = unlimited
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iters       int     `json:"iters"`
	InputRows   int     `json:"input_rows"`
	OutputRows  int     `json:"output_rows"`
	NsPerOp     int64   `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	SpillFiles  int64   `json:"spill_files"`
	SpillFrames int64   `json:"spill_frames"`
	SpillBytes  int64   `json:"spill_bytes"`
}

// SpillAggPeak measures the aggregate's memory high-water mark for the given
// input under a budget that can never fail; spill benchmarks derive their
// squeezed budgets from it.
func SpillAggPeak(rows []value.Row, batchSize int) (int64, error) {
	budget := resource.NewBudget(1 << 40)
	ec := engine.NewExecContext(context.Background(), budget)
	if _, err := engine.RunExecBatch(ec, ScanFilterAggPlan(rows, batchSize), batchSize); err != nil {
		return 0, err
	}
	return budget.Peak(), nil
}

// MeasureSpill times iters executions of the plan under the given budget.
// Mode "spill" attaches a spill manager rooted at spillDir (each iteration
// gets a fresh query-scoped directory, removed afterwards) and requires the
// run to actually write run files — a spill benchmark that silently fits in
// memory would report a meaningless number.
func MeasureSpill(name, mode string, budget int64, spillDir string, batchSize, inputRows, iters int, build func() engine.Operator) (SpillBenchRecord, error) {
	rec := SpillBenchRecord{
		Bench: name, Mode: mode, BatchSize: batchSize, Budget: budget,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters, InputRows: inputRows,
	}
	if iters <= 0 {
		return rec, fmt.Errorf("iters must be positive")
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		ec := engine.NewExecContext(context.Background(), resource.NewBudget(budget))
		var mgr *spill.Manager
		if mode == "spill" {
			var err error
			mgr, err = spill.NewManager(spillDir)
			if err != nil {
				return rec, err
			}
			ec.SetSpill(mgr)
		}
		rows, err := engine.RunExecBatch(ec, build(), batchSize)
		if mgr != nil {
			st := mgr.Stats()
			if cerr := mgr.Cleanup(); cerr != nil && err == nil {
				err = cerr
			}
			if err == nil && st.FramesOut == 0 {
				err = fmt.Errorf("budget %d did not force spilling", budget)
			}
			rec.SpillFiles = st.Files
			rec.SpillFrames = st.FramesOut
			rec.SpillBytes = st.BytesOut
		}
		if err != nil {
			return rec, err
		}
		rec.OutputRows = len(rows)
	}
	elapsed := time.Since(start)
	rec.NsPerOp = elapsed.Nanoseconds() / int64(iters)
	if rec.NsPerOp > 0 {
		rec.RowsPerSec = float64(inputRows) / (float64(rec.NsPerOp) / 1e9)
	}
	return rec, nil
}

// WriteSpillBench writes the records as indented JSON, the BENCH_spill.json
// artifact `make bench-spill` regenerates.
func WriteSpillBench(path string, records []SpillBenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
