package bench

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// TestFigure1SmallAgreement runs the full Figure 1 matrix on a small dataset
// and checks that every system returns the same row count per query (full
// content equality is covered by the iceberg package tests).
func TestFigure1SmallAgreement(t *testing.T) {
	ds := NewDataset(600, 0, 9)
	res := Figure1(ds, nil)
	for q, bySystem := range res {
		want := -1
		for sys, m := range bySystem {
			if m.Err != nil {
				t.Fatalf("%s/%s: %v", q, sys, m.Err)
			}
			if want == -1 {
				want = m.Rows
			} else if m.Rows != want {
				t.Errorf("%s: system %s returned %d rows, others %d", q, sys, m.Rows, want)
			}
		}
		if want <= 0 {
			t.Errorf("%s: expected a nonempty result on the small dataset, got %d", q, want)
		}
	}
}

// TestFigure1Shapes checks the headline result on a mid-size dataset: the
// fully optimized configuration beats the baseline on every query, and
// pruning fires on the skyband queries.
func TestFigure1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based test")
	}
	ds := NewDataset(1500, 0, 4)
	res := Figure1(ds, nil)
	for _, q := range []string{"Q1", "Q2", "Q3", "Q8"} {
		base := res[q]["base"]
		all := res[q]["all"]
		if all.Err != nil || base.Err != nil {
			t.Fatalf("%s errors: %v %v", q, base.Err, all.Err)
		}
		if all.Seconds > base.Seconds {
			t.Errorf("%s: optimized (%.3fs) should not be slower than baseline (%.3fs)", q, all.Seconds, base.Seconds)
		}
		if all.Stats.PruneHits == 0 && all.Stats.MemoHits == 0 {
			t.Errorf("%s: expected prune or memo activity: %+v", q, all.Stats)
		}
	}
}

// TestComplexQueryAgreement cross-checks the complex query between baseline
// and all-optimizations on the kv dataset.
func TestComplexQueryAgreement(t *testing.T) {
	ds := NewDataset(400, 900, 3)
	sql := ComplexSQL(5)
	baseRows := mustRows(t, ds, sql, false)
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	optRes, report, err := iceberg.Exec(ds.Cat, sel, iceberg.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonRows(optRes.Rows), canonRows(baseRows); !equalStrings(got, want) {
		t.Fatalf("complex mismatch: %d vs %d rows\nreport:\n%s", len(got), len(want), report.String())
	}
}

// TestFigure2Fractions checks that the two attribute pairings have visibly
// different skyband selectivity, the phenomenon Figure 2 documents.
func TestFigure2Fractions(t *testing.T) {
	ds := NewDataset(4000, 0, 5)
	var buf bytes.Buffer
	fa, fb, err := Figure2(ds, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if fa <= 0 || fb <= 0 || fa >= 1 || fb >= 1 {
		t.Fatalf("fractions out of range: %v %v", fa, fb)
	}
	ratio := fa / fb
	if ratio > 1 {
		ratio = 1 / ratio
	}
	if ratio > 0.95 {
		t.Errorf("expected distinct selectivity between pairings, got %.3f vs %.3f", fa, fb)
	}
	if !strings.Contains(buf.String(), "skyband k=") {
		t.Errorf("missing summary output:\n%s", buf.String())
	}
}

// TestFigure3CacheSizes checks the cache is bounded and populated.
func TestFigure3CacheSizes(t *testing.T) {
	ds := NewDataset(800, 0, 6)
	stats := Figure3(ds, nil)
	for _, q := range []string{"Q1", "Q8"} {
		s := stats[q]
		if s.Entries == 0 || s.Bytes == 0 {
			t.Errorf("%s: expected nonempty cache, got %+v", q, s)
		}
	}
}

// TestFigure4Configs ensures all index configurations produce results.
func TestFigure4Configs(t *testing.T) {
	out := Figure4(700, 8, nil)
	want := -1
	for name, m := range out {
		if m.Err != nil {
			t.Fatalf("%s: %v", name, m.Err)
		}
		if want == -1 {
			want = m.Rows
		} else if m.Rows != want {
			t.Errorf("%s: %d rows, others %d", name, m.Rows, want)
		}
	}
}

// TestSweeps runs tiny versions of Figures 5–8.
func TestSweeps(t *testing.T) {
	if pts := Figure5(500, 2, []int{1, 25}, nil); len(pts) != 2 {
		t.Fatalf("figure5: %v", pts)
	}
	if pts := Figure6(600, 2, []int{3, 9}, nil); len(pts) != 2 {
		t.Fatalf("figure6: %v", pts)
	}
	if pts := Figure7([]int{300, 600}, 25, 2, nil); len(pts) != 2 {
		t.Fatalf("figure7: %v", pts)
	}
	if pts := Figure8([]int{300, 600}, 3, 2, nil); len(pts) != 2 {
		t.Fatalf("figure8: %v", pts)
	}
}

// TestAppendixEPlans checks the plan printer includes the expected shapes.
func TestAppendixEPlans(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendixEPlans(300, 2, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HashAggregate", "Indexed Nested Loop", "Parallel JoinAggregate", "NLJP"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("plans missing %q:\n%s", want, buf.String())
		}
	}
}

func mustRows(t *testing.T, ds *Dataset, sql string, parallel bool) []value.Row {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	p := &engine.Planner{Catalog: ds.Cat, Parallel: parallel, UseIndexes: true}
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := engine.Run(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func canonRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChart(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "test sweep", []SweepPoint{
		{X: 10, Base: 1.0, VendorA: 0.8, Smart: 0.01},
		{X: 20, Base: 2.0, VendorA: 1.9, Smart: 0.02},
		{X: 40, Base: 8.0, VendorA: 7.5, Smart: 0.2},
	})
	out := buf.String()
	for _, want := range []string{"log scale", "b", "s", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs must not panic or emit garbage.
	var empty bytes.Buffer
	Chart(&empty, "empty", nil)
	Chart(&empty, "flat", []SweepPoint{{X: 1, Base: 1, VendorA: 1, Smart: 1}})
	if empty.Len() != 0 {
		t.Errorf("degenerate charts should render nothing: %q", empty.String())
	}
}
