package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/value"
)

// VectorBenchRecord is one (microbench, pipeline, chunk size) measurement of
// the vectorized executor, serialized into BENCH_vector.json. RowsPerSec is
// input rows consumed per second — the throughput metric the batch path is
// judged on. AllocsPerOp/BytesPerOp come from runtime.MemStats deltas across
// the timed loop, so they cover everything one execution allocates.
type VectorBenchRecord struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"` // "row" or "batch"
	BatchSize   int     `json:"batch_size"`
	Workers     int     `json:"workers,omitempty"` // morsel pool size; 0 = no parallel scan in the plan
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iters       int     `json:"iters"`
	InputRows   int     `json:"input_rows"`
	OutputRows  int     `json:"output_rows"`
	NsPerOp     int64   `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var vectorSchema = value.Schema{
	{Name: "g", Type: value.Int},
	{Name: "v", Type: value.Int},
	{Name: "f", Type: value.Float},
}

// VectorRows builds the synthetic input shared by the microbenches: an int
// group key (997 distinct values), an int payload, and a float payload.
func VectorRows(n int) []value.Row {
	// One flat backing array keeps the table contiguous in memory, as a real
	// materialized mem-table would be, so scans stride instead of chasing
	// per-row allocations.
	flat := make([]value.Value, 3*n)
	rows := make([]value.Row, n)
	for i := range rows {
		r := value.Row(flat[3*i : 3*i+3 : 3*i+3])
		r[0] = value.NewInt(int64(i % 997))
		r[1] = value.NewInt(int64(i))
		r[2] = value.NewFloat(float64(i) * 0.25)
		rows[i] = r
	}
	return rows
}

func vectorCol(i int) expr.Compiled {
	return func(r value.Row) (value.Value, error) { return r[i], nil }
}

func vectorPred(r value.Row) (value.Value, error) {
	return value.NewBool(r[1].I%4 != 0), nil
}

// vectorSelKernel is the columnar form of vectorPred: a typed selection
// kernel over the int v column, the same shape expr.CompileSel emits for
// comparison predicates (the modulo predicate itself is outside CompileSel's
// fragment, so the bench supplies the kernel by hand).
func vectorSelKernel(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
	vs := cols.Col(1).Ints
	if cand == nil {
		for i := lo; i < hi; i++ {
			if vs[i]%4 != 0 {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	for _, si := range cand {
		if vs[si]%4 != 0 {
			out = append(out, si)
		}
	}
	return out, nil
}

// vectorColsCache memoizes the column-major form of the last rows slice the
// plan builders saw, standing in for storage.Table's Columns cache: plans are
// rebuilt every iteration, but real tables build their columns once.
var vectorColsCache struct {
	rows []value.Row
	cols *value.Columns
}

func vectorColumns(rows []value.Row) *value.Columns {
	c := &vectorColsCache
	if c.cols != nil && len(c.rows) == len(rows) && (len(rows) == 0 || &c.rows[0] == &rows[0]) {
		return c.cols
	}
	c.rows, c.cols = rows, value.ColumnsOf(len(vectorSchema), rows)
	return c.cols
}

// ScanFilterAggPlan builds the scan → filter → hash-aggregate microbench:
// the row pipeline when batchSize <= 0, the vectorized pipeline (fused
// scan+filter feeding the batch aggregate) otherwise.
func ScanFilterAggPlan(rows []value.Row, batchSize int) engine.Operator {
	return ScanFilterAggPlanWorkers(rows, batchSize, 1)
}

// ScanFilterAggPlanWorkers is ScanFilterAggPlan with a morsel worker pool:
// workers > 1 swaps the sequential fused scan for ParallelBatchScan — the same
// rewrite BatchifyWorkers performs — leaving the rest of the plan unchanged.
func ScanFilterAggPlanWorkers(rows []value.Row, batchSize, workers int) engine.Operator {
	groupBy := []expr.Compiled{vectorCol(0)}
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCountStar},
		{Kind: expr.AggSum, Arg: vectorCol(2)},
	}
	schema := value.Schema{
		{Name: "g", Type: value.Int},
		{Name: "count", Type: value.Int},
		{Name: "sum", Type: value.Float},
	}
	if batchSize <= 0 {
		scan := engine.NewMemScan("t", vectorSchema, rows)
		return engine.NewHashAggregate(engine.NewFilter(scan, vectorPred, "v % 4 != 0"), groupBy, aggs, nil, schema)
	}
	var scan engine.BatchOperator
	if workers > 1 {
		ps := engine.NewParallelBatchScan("t", vectorSchema, rows, vectorColumns(rows), batchSize, workers)
		ps.FuseKernel(vectorPred, "v % 4 != 0", vectorSelKernel)
		scan = ps
	} else {
		ss := engine.NewBatchMemScan("t", vectorSchema, rows, batchSize)
		ss.FusePredicate(vectorPred, "v % 4 != 0")
		ss.SetColumns(vectorColumns(rows))
		ss.FuseSelKernel(vectorSelKernel)
		scan = ss
	}
	agg := engine.NewBatchHashAggregate(scan, groupBy, aggs, nil, schema)
	agg.SetGroupColumns([]int{0})
	agg.SetAggColumns([]int{-1, 2})
	return agg
}

// HashJoinPlan builds the hash-join microbench: outer ⋈ inner on the group
// column, with a cheap residual so the probe loop does real per-match work.
func HashJoinPlan(outer, inner []value.Row, batchSize int) engine.Operator {
	method := engine.NewHashProber(
		[]expr.Compiled{vectorCol(0)}, []expr.Compiled{vectorCol(0)}, "g = g")
	innerScan := engine.NewMemScan("u", vectorSchema, inner)
	if batchSize <= 0 {
		return engine.NewNLJoin("Hash Join",
			engine.NewMemScan("t", vectorSchema, outer), innerScan, method, nil)
	}
	outerScan := engine.NewBatchMemScan("t", vectorSchema, outer, batchSize)
	outerScan.SetColumns(vectorColumns(outer))
	return engine.NewBatchNLJoin("Hash Join", outerScan, innerScan, method, nil, batchSize)
}

// MeasureVector times iters executions of the plan produced by build and
// reports throughput over inputRows plus allocation deltas. batchSize <= 0
// drives the plan through the row protocol, otherwise through RunExecBatch.
func MeasureVector(name, mode string, batchSize, inputRows, iters int, build func() engine.Operator) (VectorBenchRecord, error) {
	rec := VectorBenchRecord{
		Bench: name, Mode: mode, BatchSize: batchSize,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters, InputRows: inputRows,
	}
	if iters <= 0 {
		return rec, fmt.Errorf("iters must be positive")
	}
	// One untimed warmup run fills lazy caches (column-major table forms,
	// grown buffers) so the timed loop measures steady state.
	if _, err := engine.RunExecBatch(nil, build(), batchSize); err != nil {
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		rows, err := engine.RunExecBatch(nil, build(), batchSize)
		if err != nil {
			return rec, err
		}
		rec.OutputRows = len(rows)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	rec.NsPerOp = elapsed.Nanoseconds() / int64(iters)
	if rec.NsPerOp > 0 {
		rec.RowsPerSec = float64(inputRows) / (float64(rec.NsPerOp) / 1e9)
	}
	rec.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(iters)
	rec.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
	return rec, nil
}

// WriteVectorBench writes the records as indented JSON, the
// BENCH_vector.json artifact `make bench-vector` regenerates.
func WriteVectorBench(path string, records []VectorBenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MorselBenchFile is the BENCH_morsel.json artifact: the GOMAXPROCS × morsel
// worker sweep plus an explicit caveat when the recording machine cannot
// demonstrate parallel speedup, so a single-core run is never mistaken for
// scaling data.
type MorselBenchFile struct {
	NumCPU  int                 `json:"num_cpu"`
	Caveat  string              `json:"caveat,omitempty"`
	Records []VectorBenchRecord `json:"records"`
}

// WriteMorselBench writes the morsel sweep with the machine caveat filled in
// from the recording host.
func WriteMorselBench(path string, records []VectorBenchRecord) error {
	f := MorselBenchFile{NumCPU: runtime.NumCPU(), Records: records}
	if f.NumCPU == 1 {
		f.Caveat = "recorded on a 1-CPU machine: GOMAXPROCS>1 and workers>1 rows measure scheduling overhead, not parallel speedup; the sweep documents correctness overhead only"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
