package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders sweep points as an ASCII line chart with a logarithmic
// y-axis, mirroring the log-scale runtime plots of Figures 5–8.
// Series markers: b = base, v = vendorA, s = smart-iceberg.
func Chart(w io.Writer, title string, points []SweepPoint) {
	if len(points) == 0 {
		return
	}
	const height = 12
	minY, maxY := math.Inf(1), math.Inf(-1)
	update := func(v float64) {
		if v <= 0 {
			return
		}
		minY = math.Min(minY, v)
		maxY = math.Max(maxY, v)
	}
	for _, p := range points {
		update(p.Base)
		update(p.VendorA)
		update(p.Smart)
	}
	if math.IsInf(minY, 1) || minY == maxY {
		return
	}
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	rowOf := func(v float64) int {
		if v <= 0 {
			return -1
		}
		frac := (math.Log10(v) - logMin) / (logMax - logMin)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	colWidth := 6
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", colWidth*len(points)))
	}
	put := func(col, row int, marker byte) {
		if row < 0 {
			return
		}
		pos := col*colWidth + colWidth/2
		cell := &grid[height-1-row][pos]
		if *cell == ' ' {
			*cell = marker
		} else {
			*cell = '*' // overlapping series
		}
	}
	for i, p := range points {
		put(i, rowOf(p.Base), 'b')
		put(i, rowOf(p.VendorA), 'v')
		put(i, rowOf(p.Smart), 's')
	}

	fmt.Fprintf(w, "%s  (log scale; b=base v=vendorA s=smart, *=overlap)\n", title)
	for i, line := range grid {
		frac := float64(height-1-i) / float64(height-1)
		label := math.Pow(10, logMin+frac*(logMax-logMin))
		fmt.Fprintf(w, "%8.3fs |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%8s  +%s\n", "", strings.Repeat("-", colWidth*len(points)))
	fmt.Fprintf(w, "%8s   ", "")
	for _, p := range points {
		fmt.Fprintf(w, "%*d", colWidth, p.X)
	}
	fmt.Fprintln(w)
}
