package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
)

// SysAllWorkers is the "all" configuration with a parallel NLJP binding
// loop: w goroutines over the sharded cache (w <= 1 is the sequential
// loop, negative selects min(4, GOMAXPROCS)).
func SysAllWorkers(w int) System {
	opts := iceberg.AllOn()
	opts.Workers = w
	return System{Name: fmt.Sprintf("all-w%d", w), Run: runOptimized(opts)}
}

// NLJPBenchRecord is one (query, worker count) measurement of the parallel
// NLJP binding loop, serialized into BENCH_nljp.json. AllocsPerOp and
// BytesPerOp come from runtime.MemStats deltas across the timed loop, so
// they include everything the execution allocated (plan, data, cache).
type NLJPBenchRecord struct {
	Query       string             `json:"query"`
	Workers     int                `json:"workers"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Iters       int                `json:"iters"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Rows        int                `json:"rows"`
	Stats       iceberg.CacheStats `json:"stats"`
}

// MeasureNLJP times iters optimized executions of one query at the given
// worker count and reports per-operation wall time and allocation deltas.
func MeasureNLJP(ds *Dataset, queryName, sql string, workers, iters int) (NLJPBenchRecord, error) {
	rec := NLJPBenchRecord{
		Query: queryName, Workers: workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters,
	}
	if iters <= 0 {
		return rec, fmt.Errorf("iters must be positive")
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return rec, err
	}
	opts := iceberg.AllOn()
	opts.Workers = workers

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		res, report, err := iceberg.Exec(ds.Cat, sel, opts)
		if err != nil {
			return rec, err
		}
		rec.Rows = len(res.Rows)
		rec.Stats = report.TotalStats()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	rec.NsPerOp = elapsed.Nanoseconds() / int64(iters)
	rec.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(iters)
	rec.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
	return rec, nil
}

// WriteNLJPBench writes the records as indented JSON, the BENCH_nljp.json
// artifact `make bench` regenerates.
func WriteNLJPBench(path string, records []NLJPBenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
