package bench

import "fmt"

// SkybandSQL builds the 2-dimensional skyband query of the experiments
// (Section 8.1's Q1–Q3): all seasonal performance records, counting strict
// dominators of each record on the attribute pair (a1, a2), keeping records
// with fewer than k dominators. This is exactly the paper's Q1 shape from
// Appendix E.
func SkybandSQL(a1, a2 string, k int) string {
	return fmt.Sprintf(`
SELECT R.playerid, R.year, R.round, COUNT(1)
FROM player_performance L, player_performance R
WHERE L.%[1]s >= R.%[1]s AND L.%[2]s >= R.%[2]s
  AND (L.%[1]s > R.%[1]s OR L.%[2]s > R.%[2]s)
GROUP BY R.playerid, R.year, R.round
HAVING COUNT(1) < %[3]d`, a1, a2, k)
}

// PairsSQL builds the "pairs" query of Listing 4 (Q4–Q7): player pairs with
// at least c shared team-year-rounds, weakly dominated (on the agg of their
// hit/home-run lines) by at most k other pairs. agg is "AVG" or "SUM".
func PairsSQL(c, k int, agg string) string {
	return fmt.Sprintf(`
WITH pair AS
  (SELECT s1.pid AS pid1, s2.pid AS pid2,
          %[3]s(s1.hits) AS hits1, %[3]s(s1.hruns) AS hruns1,
          %[3]s(s2.hits) AS hits2, %[3]s(s2.hruns) AS hruns2
   FROM Score s1, Score s2
   WHERE s1.teamid = s2.teamid AND s1.year = s2.year
     AND s1.round = s2.round AND s1.pid < s2.pid
   GROUP BY s1.pid, s2.pid
   HAVING COUNT(*) >= %[1]d)
SELECT L.pid1, L.pid2, COUNT(*)
FROM pair L, pair R
WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1
  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2
  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1
    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2)
GROUP BY L.pid1, L.pid2
HAVING COUNT(*) <= %[2]d`, c, k, agg)
}

// ComplexSQL builds the "unexciting products" query of Listing 3 over the
// unpivoted key–value layout: seasons strictly dominated on a pair of
// statistics by at least k other seasons of the same era.
func ComplexSQL(k int) string {
	return fmt.Sprintf(`
SELECT S1.id, S1.attr, S2.attr, COUNT(*)
FROM performance_kv S1, performance_kv S2, performance_kv T1, performance_kv T2
WHERE S1.id = S2.id AND T1.id = T2.id
  AND S1.category = T1.category
  AND T1.attr = S1.attr AND T2.attr = S2.attr
  AND T1.val > S1.val AND T2.val > S2.val
GROUP BY S1.id, S1.attr, S2.attr
HAVING COUNT(*) >= %d`, k)
}

// Q8SQL builds the averaged-player skyband (Q8): first average each
// player's statistics over time, then count dominators among players using
// the simpler join condition L.x < R.x AND L.y < R.y.
func Q8SQL(k int) string {
	return fmt.Sprintf(`
WITH avgp AS
  (SELECT playerid, AVG(b_h) AS h, AVG(b_hr) AS hr
   FROM player_performance
   GROUP BY playerid)
SELECT R.playerid, COUNT(*)
FROM avgp L, avgp R
WHERE R.h < L.h AND R.hr < L.hr
GROUP BY R.playerid
HAVING COUNT(*) <= %d`, k)
}

// SkipQuery is one entry of the skip-friendly mix over the clustered table:
// the SQL plus the number of perf_clustered scans in its plan, which turns
// the process-wide skipped-block counter into a percentage of the blocks the
// query would otherwise read.
type SkipQuery struct {
	Name  string
	SQL   string
	Scans int
}

// SkipQueries returns the data-skipping query mix over perf_clustered (the
// player-season table physically sorted by year). Each query leans on one
// skip mechanism:
//
//   - YearSlice: a year-range aggregate — zone maps on the sort column prune
//     every block outside the range;
//   - RecentSkyband: the Figure-1 Q1 skyband shape restricted to recent
//     seasons, so both self-join scans prune on year before the quadratic
//     dominator count runs (the join still dominates: an honest
//     skip-neutral data point);
//   - EraSkyband: the same Q1 shape cut to the newest era, where the join
//     shrinks to a handful of seasons and the full-table scans are the
//     cost — the case where block skipping pays on a Figure-1 query;
//   - EraCount: a point predicate on year, the sharpest zone case;
//   - StarTransfer: a playerid equi-join whose build side keeps only
//     high-hit seasons — the transferred Bloom filter drops most probe rows
//     at the scan.
func SkipQueries() []SkipQuery {
	return []SkipQuery{
		{"YearSlice", `
SELECT playerid, COUNT(1), SUM(b_h)
FROM perf_clustered
WHERE year >= 2010 AND year <= 2012
GROUP BY playerid`, 1},
		{"RecentSkyband", `
SELECT R.playerid, R.year, R.round, COUNT(1)
FROM perf_clustered L, perf_clustered R
WHERE L.year >= 2020 AND R.year >= 2020
  AND L.b_h >= R.b_h AND L.b_hr >= R.b_hr
  AND (L.b_h > R.b_h OR L.b_hr > R.b_hr)
GROUP BY R.playerid, R.year, R.round
HAVING COUNT(1) < 50`, 2},
		{"EraSkyband", `
SELECT R.playerid, R.year, R.round, COUNT(1)
FROM perf_clustered L, perf_clustered R
WHERE L.year >= 2025 AND R.year >= 2025
  AND L.b_h >= R.b_h AND L.b_hr >= R.b_hr
  AND (L.b_h > R.b_h OR L.b_hr > R.b_hr)
GROUP BY R.playerid, R.year, R.round
HAVING COUNT(1) < 50`, 2},
		{"EraCount", `
SELECT teamid, COUNT(1)
FROM perf_clustered
WHERE year = 1995
GROUP BY teamid`, 1},
		{"StarTransfer", `
SELECT S.playerid, COUNT(1)
FROM perf_clustered S, perf_clustered T
WHERE S.playerid = T.playerid AND T.b_h >= 180
GROUP BY S.playerid`, 2},
	}
}

// Figure1Queries returns the eight queries of Figure 1 with the parameter
// variations the paper describes: Q1–Q3 skyband over different attribute
// pairs and thresholds, Q4–Q7 pairs with varying (c, k) and SUM/AVG, Q8 the
// averaged-player skyband.
func Figure1Queries() []struct{ Name, SQL string } {
	return []struct{ Name, SQL string }{
		{"Q1", SkybandSQL("b_h", "b_hr", 50)},
		{"Q2", SkybandSQL("b_rbi", "b_sb", 50)},
		{"Q3", SkybandSQL("b_h", "b_bb", 25)},
		{"Q4", PairsSQL(3, 20, "AVG")},
		{"Q5", PairsSQL(3, 50, "SUM")},
		{"Q6", PairsSQL(5, 20, "AVG")},
		{"Q7", PairsSQL(5, 50, "SUM")},
		{"Q8", Q8SQL(50)},
	}
}
