package bench

import (
	"fmt"
	"io"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/workload"
)

// Figure1 reproduces the main comparison: the eight workload queries under
// base PostgreSQL-equivalent execution, the parallel Vendor A stand-in, and
// each optimization in isolation plus all together. Heights in the paper
// are runtimes normalized against the baseline; the table prints both.
func Figure1(ds *Dataset, w io.Writer) map[string]map[string]Measurement {
	systems := Figure1Systems()
	queries := Figure1Queries()
	out := map[string]map[string]Measurement{}
	var names []string
	for _, q := range queries {
		names = append(names, q.Name)
		out[q.Name] = map[string]Measurement{}
		for _, s := range systems {
			out[q.Name][s.Name] = Measure(ds, s, q.Name, q.SQL)
		}
	}
	if w != nil {
		printTable(w, fmt.Sprintf("Figure 1: normalized runtimes (n=%d rows, seed=%d)", ds.N, ds.Seed), names, systems, out)
		fmt.Fprintln(w, "note: generalized a-priori does not apply to Q1, Q2, Q3, and Q8 (the")
		fmt.Fprintln(w, "      reducer is provably trivial), so its column matches the baseline there.")
	}
	return out
}

// Figure2 reports the data distributions of two commonly used attribute
// pairings as coarse 2-D histograms, plus the fraction of records returned
// by a skyband query with k=500 on each pairing (the paper cites 1.8% vs
// 3.1% on its dataset).
func Figure2(ds *Dataset, w io.Writer) (fracA, fracB float64, err error) {
	perf, err := ds.Cat.Get("player_performance")
	if err != nil {
		return 0, 0, err
	}
	pairs := [][2]string{{"b_h", "b_hr"}, {"b_rbi", "b_sb"}}
	fracs := make([]float64, 2)
	for pi, pair := range pairs {
		xi, _ := perf.ColumnIndex(pair[0])
		yi, _ := perf.ColumnIndex(pair[1])
		var maxX, maxY float64
		for _, r := range perf.Rows {
			maxX = maxf(maxX, r[xi].AsFloat())
			maxY = maxf(maxY, r[yi].AsFloat())
		}
		const buckets = 14
		var grid [buckets][buckets]int
		for _, r := range perf.Rows {
			bx := int(r[xi].AsFloat() / (maxX + 1) * buckets)
			by := int(r[yi].AsFloat() / (maxY + 1) * buckets)
			grid[by][bx]++
		}
		if w != nil {
			fmt.Fprintf(w, "Figure 2 (%s vs %s): density (rows: %s high→low)\n", pair[0], pair[1], pair[1])
			shades := []byte(" .:-=+*#%@")
			for by := buckets - 1; by >= 0; by-- {
				fmt.Fprint(w, "  ")
				for bx := 0; bx < buckets; bx++ {
					c := grid[by][bx]
					s := 0
					for t := 1; t < len(shades); t++ {
						if c >= 1<<(t-1) {
							s = t
						}
					}
					fmt.Fprintf(w, "%c", shades[s])
				}
				fmt.Fprintln(w)
			}
		}
		// The paper uses k=500 on 3×10⁵ rows; keep the same k-to-size ratio
		// so the query stays equally selective at smaller scales.
		k := max(2, 500*len(perf.Rows)/300000)
		rows, _, err := SysAll.Run(ds, SkybandSQL(pair[0], pair[1], k))
		if err != nil {
			return 0, 0, err
		}
		fracs[pi] = float64(rows) / float64(len(perf.Rows))
		if w != nil {
			fmt.Fprintf(w, "  skyband k=%d on (%s,%s): %d of %d records = %.1f%%\n\n",
				k, pair[0], pair[1], rows, len(perf.Rows), 100*fracs[pi])
		}
	}
	return fracs[0], fracs[1], nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure3 reports the NLJP cache size at the end of execution for the eight
// Figure 1 queries under the "all" configuration.
func Figure3(ds *Dataset, w io.Writer) map[string]iceberg.CacheStats {
	out := map[string]iceberg.CacheStats{}
	if w != nil {
		fmt.Fprintf(w, "Figure 3: cache sizes at end of execution (n=%d)\n", ds.N)
		fmt.Fprintf(w, "%-6s %10s %12s %10s %10s %10s\n", "query", "entries", "bytes", "bindings", "memoHits", "pruneHits")
	}
	for _, q := range Figure1Queries() {
		m := Measure(ds, SysAll, q.Name, q.SQL)
		out[q.Name] = m.Stats
		if w != nil {
			if m.Err != nil {
				fmt.Fprintf(w, "%-6s error: %v\n", q.Name, m.Err)
				continue
			}
			fmt.Fprintf(w, "%-6s %10d %12d %10d %10d %10d\n", q.Name,
				m.Stats.Entries, m.Stats.Bytes, m.Stats.Bindings, m.Stats.MemoHits, m.Stats.PruneHits)
		}
	}
	return out
}

// Figure4 compares Q1 under the index configurations of the paper:
// PK (no secondary indexes), PK+BT (secondary index on the comparison
// attributes), and PK+BT+CI (additionally indexing the pruning cache), for
// the baseline and for prune/memo combinations of our approach.
func Figure4(n int, seed int64, w io.Writer) map[string]Measurement {
	sql := SkybandSQL("b_h", "b_hr", 50)
	out := map[string]Measurement{}

	configs := []struct {
		name    string
		buildBT bool
		system  System
	}{
		{"base PK", false, System{Name: "base", Run: runBaseline(false, false)}},
		{"base PK+BT", true, System{Name: "base", Run: runBaseline(false, true)}},
		{"prune+memo PK", false, System{Name: "pm", Run: runOptimized(iceberg.Options{Prune: true, Memo: true, UseIndexes: false})}},
		{"prune+memo PK+BT", true, System{Name: "pm", Run: runOptimized(iceberg.Options{Prune: true, Memo: true, UseIndexes: true})}},
		{"prune+memo PK+BT+CI", true, System{Name: "pmci", Run: runOptimized(iceberg.Options{Prune: true, Memo: true, CacheIndex: true, UseIndexes: true})}},
		{"memo-only PK+BT", true, System{Name: "memo", Run: runOptimized(iceberg.Options{Memo: true, UseIndexes: true})}},
		{"prune-only PK+BT+CI", true, System{Name: "prune", Run: runOptimized(iceberg.Options{Prune: true, CacheIndex: true, UseIndexes: true})}},
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 4: Q1 under index configurations (n=%d)\n", n)
	}
	for _, cfg := range configs {
		ds := &Dataset{Cat: nil, N: n, Seed: seed}
		ds.Cat = NewDataset(n, 0, seed).Cat
		if !cfg.buildBT {
			if perf, err := ds.Cat.Get("player_performance"); err == nil {
				perf.DropIndexes()
			}
		}
		m := Measure(ds, cfg.system, "Q1", sql)
		out[cfg.name] = m
		if w != nil {
			if m.Err != nil {
				fmt.Fprintf(w, "  %-22s error: %v\n", cfg.name, m.Err)
			} else {
				fmt.Fprintf(w, "  %-22s %8.3fs (%d rows)\n", cfg.name, m.Seconds, m.Rows)
			}
		}
	}
	return out
}

// SweepPoint is one point of a threshold or size sweep (Figures 5–8).
type SweepPoint struct {
	X       int // threshold or input size
	Base    float64
	VendorA float64
	Smart   float64 // "Smart-Iceberg" (all techniques)
	Rows    int
}

func sweep(w io.Writer, title, xlabel string, xs []int, run func(x int) (Measurement, Measurement, Measurement)) []SweepPoint {
	var out []SweepPoint
	if w != nil {
		fmt.Fprintf(w, "%s\n%-10s %12s %12s %14s %8s\n", title, xlabel, "base", "vendorA", "smart-iceberg", "rows")
	}
	for _, x := range xs {
		b, v, s := run(x)
		pt := SweepPoint{X: x, Base: b.Seconds, VendorA: v.Seconds, Smart: s.Seconds, Rows: s.Rows}
		out = append(out, pt)
		if w != nil {
			fmt.Fprintf(w, "%-10d %11.3fs %11.3fs %13.3fs %8d\n", x, pt.Base, pt.VendorA, pt.Smart, pt.Rows)
		}
	}
	if w != nil {
		fmt.Fprintln(w)
		Chart(w, title, out)
		fmt.Fprintln(w)
	}
	return out
}

// Figure5 sweeps the skyband HAVING threshold at a fixed input size.
func Figure5(n int, seed int64, thresholds []int, w io.Writer) []SweepPoint {
	ds := NewDataset(n, 0, seed)
	return sweep(w, fmt.Sprintf("Figure 5: skyband runtime vs HAVING threshold (n=%d)", n), "k", thresholds,
		func(k int) (Measurement, Measurement, Measurement) {
			sql := SkybandSQL("b_h", "b_hr", k)
			return Measure(ds, SysBase, "skyband", sql),
				Measure(ds, SysVendorA, "skyband", sql),
				Measure(ds, SysAll, "skyband", sql)
		})
}

// Figure6 sweeps the complex query's HAVING threshold at a fixed input size.
func Figure6(kvn int, seed int64, thresholds []int, w io.Writer) []SweepPoint {
	ds := NewDataset(kvn/3+1, kvn, seed)
	return sweep(w, fmt.Sprintf("Figure 6: complex runtime vs HAVING threshold (kv rows=%d)", kvn), "k", thresholds,
		func(k int) (Measurement, Measurement, Measurement) {
			sql := ComplexSQL(k)
			return Measure(ds, SysBase, "complex", sql),
				Measure(ds, SysVendorA, "complex", sql),
				Measure(ds, SysAll, "complex", sql)
		})
}

// Figure7 sweeps the skyband input size at a fixed threshold.
func Figure7(sizes []int, k int, seed int64, w io.Writer) []SweepPoint {
	return sweep(w, fmt.Sprintf("Figure 7: skyband runtime vs input size (k=%d)", k), "rows", sizes,
		func(n int) (Measurement, Measurement, Measurement) {
			ds := NewDataset(n, 0, seed)
			sql := SkybandSQL("b_h", "b_hr", k)
			return Measure(ds, SysBase, "skyband", sql),
				Measure(ds, SysVendorA, "skyband", sql),
				Measure(ds, SysAll, "skyband", sql)
		})
}

// Figure8 sweeps the complex query's input size at a fixed threshold.
func Figure8(sizes []int, k int, seed int64, w io.Writer) []SweepPoint {
	return sweep(w, fmt.Sprintf("Figure 8: complex runtime vs input size (k=%d)", k), "kv rows",
		sizes, func(n int) (Measurement, Measurement, Measurement) {
			ds := NewDataset(n/3+1, n, seed)
			sql := ComplexSQL(k)
			return Measure(ds, SysBase, "complex", sql),
				Measure(ds, SysVendorA, "complex", sql),
				Measure(ds, SysAll, "complex", sql)
		})
}

// AppendixEPlans prints the baseline plans for Q1, mirroring the PostgreSQL
// and Vendor A plans shown in Appendix E, plus the NLJP rewrite description.
func AppendixEPlans(n int, seed int64, w io.Writer) error {
	ds := NewDataset(n, 0, seed)
	sql := SkybandSQL("b_h", "b_hr", 50)
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return err
	}
	base := &engine.Planner{Catalog: ds.Cat, UseIndexes: true}
	op, err := base.PlanSelect(sel, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Appendix E — baseline plan for Q1:\n%s\n", engine.Explain(op))

	par := &engine.Planner{Catalog: ds.Cat, UseIndexes: true, Parallel: true}
	opp, err := par.PlanSelect(sel, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Appendix E — Vendor A (parallel) plan for Q1:\n%s\n", engine.Explain(opp))

	desc, err := iceberg.Describe(ds.Cat, sel, iceberg.AllOn())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Smart-Iceberg rewrite for Q1:\n%s\n", desc)
	return nil
}

// DistributionName maps a workload.Dist for completeness of the harness API.
func DistributionName(d workload.Dist) string {
	switch d {
	case workload.Correlated:
		return "correlated"
	case workload.AntiCorrelated:
		return "anticorrelated"
	}
	return "independent"
}
