// Package lincon implements the constraint reasoning of Section 5.2 of the
// paper: formulas over linear arithmetic atoms (plus uninterpreted
// equalities for non-numeric attributes), conversion to disjunctive normal
// form, and elimination of existentially quantified variables with the
// Fourier–Motzkin elimination method (the paper's UE/DE/EE steps).
//
// The subsumption predicate p⪰ of Definition 4 is derived by eliminating
// the inner relation's variables from Θ(w',w_r) ∧ ¬Θ(w,w_r) and negating
// the result; see the iceberg package for the query-side glue.
//
// Elimination is exact for conjunctions of linear constraints over dense
// ordered domains. Disequalities (≠) on an eliminated variable are dropped,
// which over-approximates satisfiability; since the caller negates the
// eliminated formula, the resulting pruning predicate errs on the side of
// not pruning — always sound.
package lincon

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"smarticeberg/internal/value"
)

// Var identifies a variable within a System.
type Var int

// Kind classifies a variable's domain.
type Kind uint8

// Variable kinds. Numeric variables participate in linear arithmetic;
// Uninterpreted variables support only (dis)equality.
const (
	Numeric Kind = iota
	Uninterpreted
)

// System allocates variables and remembers their names and kinds.
type System struct {
	names []string
	kinds []Kind
}

// NewSystem returns an empty variable system.
func NewSystem() *System { return &System{} }

// NewVar allocates a variable.
func (s *System) NewVar(name string, k Kind) Var {
	s.names = append(s.names, name)
	s.kinds = append(s.kinds, k)
	return Var(len(s.names) - 1)
}

// Name returns the variable's name.
func (s *System) Name(v Var) string { return s.names[v] }

// Kind returns the variable's kind.
func (s *System) Kind(v Var) Kind { return s.kinds[v] }

// NumVars returns the number of allocated variables.
func (s *System) NumVars() int { return len(s.names) }

// ---------------------------------------------------------------------------
// Exact rational coefficients
//
// Coefficients are *big.Rat with nil standing for zero, so the zero value of
// Linear is a valid 0 expression. All arithmetic below is exact: inside
// Fourier–Motzkin elimination, coefficients are divided by one another
// (e.g. x·3 projected out scales bounds by 1/3), and floating-point rounding
// there would let almost-cancelling terms survive as spurious constraints —
// an unsound pruning predicate. Rationals make cancellation exact.
// (Runtime evaluation of the derived predicate still happens in float64,
// matching how the SQL engine itself evaluates Θ.)

func ratZero(r *big.Rat) bool { return r == nil || r.Sign() == 0 }

func ratSign(r *big.Rat) int {
	if r == nil {
		return 0
	}
	return r.Sign()
}

func ratAdd(a, b *big.Rat) *big.Rat {
	if ratZero(a) {
		return b
	}
	if ratZero(b) {
		return a
	}
	return new(big.Rat).Add(a, b)
}

func ratMul(a, b *big.Rat) *big.Rat {
	if ratZero(a) || ratZero(b) {
		return nil
	}
	return new(big.Rat).Mul(a, b)
}

func ratNeg(a *big.Rat) *big.Rat {
	if ratZero(a) {
		return nil
	}
	return new(big.Rat).Neg(a)
}

func ratInv(a *big.Rat) *big.Rat {
	return new(big.Rat).Inv(a)
}

func ratFloat(a *big.Rat) float64 {
	if a == nil {
		return 0
	}
	f, _ := a.Float64()
	return f
}

func ratIsInt(a *big.Rat, want int64) bool {
	if a == nil {
		return want == 0
	}
	return a.IsInt() && a.Num().IsInt64() && a.Num().Int64() == want
}

func ratFromFloat(f float64) *big.Rat {
	if f == 0 {
		return nil
	}
	r := new(big.Rat).SetFloat64(f)
	return r // nil for NaN/Inf, which callers treat as 0 and must pre-check
}

func ratString(a *big.Rat) string {
	if a == nil {
		return "0"
	}
	if a.IsInt() {
		return a.Num().String()
	}
	return a.RatString()
}

// ---------------------------------------------------------------------------
// Linear expressions

// LinTerm is one coefficient·variable term. A nil coefficient means zero
// (such terms are never stored).
type LinTerm struct {
	Var   Var
	Coeff *big.Rat
}

// Linear is Σ coeff·var + Const with exact rational coefficients. Terms are
// kept sorted by variable and never hold zero coefficients. The zero value
// is the constant 0.
type Linear struct {
	Terms []LinTerm
	Const *big.Rat
}

// LinVar returns the linear expression consisting of a single variable.
func LinVar(v Var) Linear {
	return Linear{Terms: []LinTerm{{Var: v, Coeff: big.NewRat(1, 1)}}}
}

// LinConst returns a constant linear expression. The float is converted
// exactly (every finite float64 is a rational); NaN/Inf become 0 — callers
// validate finiteness first.
func LinConst(c float64) Linear { return Linear{Const: ratFromFloat(c)} }

// LinRat returns a constant linear expression from a rational.
func LinRat(c *big.Rat) Linear { return Linear{Const: c} }

// Coeff returns the coefficient of v (nil when absent, meaning 0).
func (l Linear) Coeff(v Var) *big.Rat {
	for _, t := range l.Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return nil
}

// Add returns l + o.
func (l Linear) Add(o Linear) Linear { return l.addScaled(o, big.NewRat(1, 1)) }

// Sub returns l - o.
func (l Linear) Sub(o Linear) Linear { return l.addScaled(o, big.NewRat(-1, 1)) }

// Scale returns k·l for a float constant (converted exactly).
func (l Linear) Scale(k float64) Linear { return l.ScaleRat(ratFromFloat(k)) }

// ScaleRat returns k·l.
func (l Linear) ScaleRat(k *big.Rat) Linear {
	if ratZero(k) {
		return Linear{}
	}
	out := Linear{Const: ratMul(l.Const, k), Terms: make([]LinTerm, 0, len(l.Terms))}
	for _, t := range l.Terms {
		out.Terms = append(out.Terms, LinTerm{Var: t.Var, Coeff: ratMul(t.Coeff, k)})
	}
	return out
}

func (l Linear) addScaled(o Linear, k *big.Rat) Linear {
	out := Linear{Const: ratAdd(l.Const, ratMul(k, o.Const))}
	i, j := 0, 0
	for i < len(l.Terms) || j < len(o.Terms) {
		switch {
		case j >= len(o.Terms) || (i < len(l.Terms) && l.Terms[i].Var < o.Terms[j].Var):
			out.Terms = append(out.Terms, l.Terms[i])
			i++
		case i >= len(l.Terms) || o.Terms[j].Var < l.Terms[i].Var:
			out.Terms = append(out.Terms, LinTerm{Var: o.Terms[j].Var, Coeff: ratMul(k, o.Terms[j].Coeff)})
			j++
		default:
			c := ratAdd(l.Terms[i].Coeff, ratMul(k, o.Terms[j].Coeff))
			if !ratZero(c) {
				out.Terms = append(out.Terms, LinTerm{Var: l.Terms[i].Var, Coeff: c})
			}
			i++
			j++
		}
	}
	return out
}

// IsConst reports whether the expression has no variables.
func (l Linear) IsConst() bool { return len(l.Terms) == 0 }

// ConstRat returns the constant part.
func (l Linear) ConstRat() *big.Rat { return l.Const }

// String renders the expression using the system's variable names.
func (l Linear) String(s *System) string {
	if l.IsConst() {
		return ratString(l.Const)
	}
	var b strings.Builder
	for i, t := range l.Terms {
		switch {
		case i == 0 && ratIsInt(t.Coeff, 1):
			b.WriteString(s.Name(t.Var))
		case i == 0 && ratIsInt(t.Coeff, -1):
			b.WriteString("-" + s.Name(t.Var))
		case i == 0:
			b.WriteString(ratString(t.Coeff) + "*" + s.Name(t.Var))
		case ratIsInt(t.Coeff, 1):
			b.WriteString(" + " + s.Name(t.Var))
		case ratIsInt(t.Coeff, -1):
			b.WriteString(" - " + s.Name(t.Var))
		case ratSign(t.Coeff) > 0:
			b.WriteString(" + " + ratString(t.Coeff) + "*" + s.Name(t.Var))
		default:
			b.WriteString(" - " + ratString(ratNeg(t.Coeff)) + "*" + s.Name(t.Var))
		}
	}
	if ratSign(l.Const) > 0 {
		b.WriteString(" + " + ratString(l.Const))
	} else if ratSign(l.Const) < 0 {
		b.WriteString(" - " + ratString(ratNeg(l.Const)))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Atoms

// AtomOp is the relation of a linear atom: Lin op 0.
type AtomOp uint8

// Linear atom relations.
const (
	OpLE AtomOp = iota // Lin <= 0
	OpLT               // Lin <  0
	OpEQ               // Lin == 0
)

// Atom is a primitive constraint: either a linear constraint over numeric
// variables (Lin ⋈ 0) or an uninterpreted (dis)equality between a variable
// and a variable-or-constant.
type Atom struct {
	// Linear form (IsLin true): Lin Op 0.
	IsLin bool
	Lin   Linear
	Op    AtomOp

	// Uninterpreted form (IsLin false): X (=|≠) Y/YConst.
	X        Var
	YIsConst bool
	Y        Var
	YConst   value.Value
	Neg      bool // true for ≠
}

// LinLE builds lhs <= rhs as an atom.
func LinLE(lhs, rhs Linear) Atom { return Atom{IsLin: true, Lin: lhs.Sub(rhs), Op: OpLE} }

// LinLT builds lhs < rhs.
func LinLT(lhs, rhs Linear) Atom { return Atom{IsLin: true, Lin: lhs.Sub(rhs), Op: OpLT} }

// LinEQ builds lhs = rhs.
func LinEQ(lhs, rhs Linear) Atom { return Atom{IsLin: true, Lin: lhs.Sub(rhs), Op: OpEQ} }

// UEq builds the uninterpreted equality x = y.
func UEq(x, y Var) Atom { return Atom{X: x, Y: y} }

// UEqConst builds x = c for a constant c.
func UEqConst(x Var, c value.Value) Atom { return Atom{X: x, YIsConst: true, YConst: c} }

// UNe builds x ≠ y.
func UNe(x, y Var) Atom { return Atom{X: x, Y: y, Neg: true} }

// UNeConst builds x ≠ c.
func UNeConst(x Var, c value.Value) Atom { return Atom{X: x, YIsConst: true, YConst: c, Neg: true} }

// Vars adds the atom's variables to set.
func (a Atom) Vars(set map[Var]bool) {
	if a.IsLin {
		for _, t := range a.Lin.Terms {
			set[t.Var] = true
		}
		return
	}
	set[a.X] = true
	if !a.YIsConst {
		set[a.Y] = true
	}
}

// Uses reports whether the atom mentions v.
func (a Atom) Uses(v Var) bool {
	if a.IsLin {
		return !ratZero(a.Lin.Coeff(v))
	}
	return a.X == v || (!a.YIsConst && a.Y == v)
}

// ConstTruth evaluates an atom with no variables. ok is false when the atom
// still has variables.
func (a Atom) ConstTruth() (truth, ok bool) {
	if a.IsLin {
		if !a.Lin.IsConst() {
			return false, false
		}
		switch a.Op {
		case OpLE:
			return ratSign(a.Lin.Const) <= 0, true
		case OpLT:
			return ratSign(a.Lin.Const) < 0, true
		default:
			return ratSign(a.Lin.Const) == 0, true
		}
	}
	return false, false
}

// String renders the atom.
func (a Atom) String(s *System) string {
	if a.IsLin {
		op := map[AtomOp]string{OpLE: "<=", OpLT: "<", OpEQ: "="}[a.Op]
		// Move negative terms and constant to the right-hand side for
		// readability: split positive and negative parts.
		lhs, rhs := Linear{}, Linear{}
		for _, t := range a.Lin.Terms {
			if ratSign(t.Coeff) > 0 {
				lhs.Terms = append(lhs.Terms, t)
			} else {
				rhs.Terms = append(rhs.Terms, LinTerm{Var: t.Var, Coeff: ratNeg(t.Coeff)})
			}
		}
		if ratSign(a.Lin.Const) > 0 {
			lhs.Const = a.Lin.Const
		} else {
			rhs.Const = ratNeg(a.Lin.Const)
		}
		ls, rs := lhs.String(s), rhs.String(s)
		if len(lhs.Terms) == 0 && ratZero(lhs.Const) {
			ls = "0"
		}
		if len(rhs.Terms) == 0 && ratZero(rhs.Const) {
			rs = "0"
		}
		return ls + " " + op + " " + rs
	}
	op := "="
	if a.Neg {
		op = "<>"
	}
	if a.YIsConst {
		return s.Name(a.X) + " " + op + " '" + a.YConst.String() + "'"
	}
	return s.Name(a.X) + " " + op + " " + s.Name(a.Y)
}

// Eval evaluates the atom under an assignment.
func (a Atom) Eval(assign func(Var) value.Value) (bool, error) {
	if a.IsLin {
		sum := ratFloat(a.Lin.Const)
		for _, t := range a.Lin.Terms {
			v := assign(t.Var)
			if !v.K.Numeric() {
				return false, fmt.Errorf("non-numeric value %s for numeric variable", v)
			}
			sum += ratFloat(t.Coeff) * v.AsFloat()
		}
		switch a.Op {
		case OpLE:
			return sum <= 0, nil
		case OpLT:
			return sum < 0, nil
		default:
			return sum == 0, nil
		}
	}
	x := assign(a.X)
	var y value.Value
	if a.YIsConst {
		y = a.YConst
	} else {
		y = assign(a.Y)
	}
	eq := value.Identical(x, y)
	return eq != a.Neg, nil
}

// canonical returns a normalized key for deduplication: linear atoms are
// scaled so the leading coefficient is positive.
func (a Atom) canonical() string {
	if !a.IsLin {
		neg := ""
		if a.Neg {
			neg = "!"
		}
		if a.YIsConst {
			return fmt.Sprintf("u%s:%d=%s", neg, a.X, a.YConst.String())
		}
		x, y := a.X, a.Y
		if y < x {
			x, y = y, x
		}
		return fmt.Sprintf("u%s:%d=%d", neg, x, y)
	}
	l := a.Lin
	if len(l.Terms) > 0 && ratSign(l.Terms[0].Coeff) < 0 && a.Op == OpEQ {
		l = l.Scale(-1)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "l%d:", a.Op)
	for _, t := range l.Terms {
		fmt.Fprintf(&b, "%d*%s,", t.Var, ratString(t.Coeff))
	}
	fmt.Fprintf(&b, "|%s", ratString(l.Const))
	return b.String()
}

// ---------------------------------------------------------------------------
// Formulas

// Formula is a boolean combination of atoms.
type Formula struct {
	kind formulaKind
	atom Atom
	subs []*Formula
}

type formulaKind uint8

const (
	fAtom formulaKind = iota
	fAnd
	fOr
	fNot
	fTrue
	fFalse
)

// True is the trivially true formula.
func True() *Formula { return &Formula{kind: fTrue} }

// False is the trivially false formula.
func False() *Formula { return &Formula{kind: fFalse} }

// AtomF wraps an atom as a formula.
func AtomF(a Atom) *Formula { return &Formula{kind: fAtom, atom: a} }

// And conjoins formulas.
func And(fs ...*Formula) *Formula { return &Formula{kind: fAnd, subs: fs} }

// Or disjoins formulas.
func Or(fs ...*Formula) *Formula { return &Formula{kind: fOr, subs: fs} }

// Not negates a formula.
func Not(f *Formula) *Formula { return &Formula{kind: fNot, subs: []*Formula{f}} }

// negateAtom returns the formula ¬a. Equality atoms split into strict
// disjunctions; everything else stays a single atom.
func negateAtom(a Atom) *Formula {
	if a.IsLin {
		switch a.Op {
		case OpLE: // ¬(L<=0) = L>0 = -L<0
			return AtomF(Atom{IsLin: true, Lin: a.Lin.Scale(-1), Op: OpLT})
		case OpLT: // ¬(L<0) = L>=0 = -L<=0
			return AtomF(Atom{IsLin: true, Lin: a.Lin.Scale(-1), Op: OpLE})
		default: // ¬(L=0) = L<0 ∨ -L<0
			return Or(
				AtomF(Atom{IsLin: true, Lin: a.Lin, Op: OpLT}),
				AtomF(Atom{IsLin: true, Lin: a.Lin.Scale(-1), Op: OpLT}),
			)
		}
	}
	na := a
	na.Neg = !a.Neg
	return AtomF(na)
}

// MaxDNFSize bounds DNF blow-up; ToDNF fails beyond it rather than hanging.
const MaxDNFSize = 100000

// DNF is a disjunction of conjunctions of atoms.
type DNF [][]Atom

// ToDNF converts a formula to disjunctive normal form, pushing negations to
// the atoms first (the paper's UE step produces the initial negation; the DE
// step corresponds to the distribution done here).
func ToDNF(f *Formula) (DNF, error) {
	nnf := pushNot(f, false)
	return distribute(nnf)
}

func pushNot(f *Formula, neg bool) *Formula {
	switch f.kind {
	case fTrue:
		if neg {
			return False()
		}
		return f
	case fFalse:
		if neg {
			return True()
		}
		return f
	case fAtom:
		if neg {
			return negateAtom(f.atom)
		}
		return f
	case fNot:
		return pushNot(f.subs[0], !neg)
	case fAnd, fOr:
		kind := f.kind
		if neg {
			if kind == fAnd {
				kind = fOr
			} else {
				kind = fAnd
			}
		}
		out := &Formula{kind: kind}
		for _, s := range f.subs {
			out.subs = append(out.subs, pushNot(s, neg))
		}
		return out
	}
	return f
}

func distribute(f *Formula) (DNF, error) {
	switch f.kind {
	case fTrue:
		return DNF{{}}, nil
	case fFalse:
		return DNF{}, nil
	case fAtom:
		return DNF{{f.atom}}, nil
	case fOr:
		var out DNF
		for _, s := range f.subs {
			d, err := distribute(s)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
			if len(out) > MaxDNFSize {
				return nil, fmt.Errorf("DNF exceeds %d disjuncts", MaxDNFSize)
			}
		}
		return out, nil
	case fAnd:
		out := DNF{{}}
		for _, s := range f.subs {
			d, err := distribute(s)
			if err != nil {
				return nil, err
			}
			var next DNF
			for _, c1 := range out {
				for _, c2 := range d {
					conj := make([]Atom, 0, len(c1)+len(c2))
					conj = append(conj, c1...)
					conj = append(conj, c2...)
					next = append(next, conj)
					if len(next) > MaxDNFSize {
						return nil, fmt.Errorf("DNF exceeds %d disjuncts", MaxDNFSize)
					}
				}
			}
			out = next
		}
		return out, nil
	}
	return nil, fmt.Errorf("distribute: bad formula kind %d", f.kind)
}

// Eval evaluates the DNF under an assignment.
func (d DNF) Eval(assign func(Var) value.Value) (bool, error) {
	for _, conj := range d {
		all := true
		for _, a := range conj {
			ok, err := a.Eval(assign)
			if err != nil {
				return false, err
			}
			if !ok {
				all = false
				break
			}
		}
		if all {
			return true, nil
		}
	}
	return false, nil
}

// String renders the DNF.
func (d DNF) String(s *System) string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, conj := range d {
		if len(conj) == 0 {
			parts[i] = "true"
			continue
		}
		atoms := make([]string, len(conj))
		for j, a := range conj {
			atoms[j] = a.String(s)
		}
		parts[i] = "(" + strings.Join(atoms, " AND ") + ")"
	}
	return strings.Join(parts, " OR ")
}

// Vars returns the variables used anywhere in the DNF, sorted.
func (d DNF) Vars() []Var {
	set := map[Var]bool{}
	for _, conj := range d {
		for _, a := range conj {
			a.Vars(set)
		}
	}
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
