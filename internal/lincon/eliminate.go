package lincon

import (
	"fmt"
)

// EliminateExists removes the existentially quantified variables in elim
// from the formula and returns an equivalent (or, where disequalities on
// eliminated variables are involved, over-approximating) DNF over the
// remaining variables. This is the paper's Section 5.2 procedure: the UE
// step is performed by the caller (negating under the quantifier), ToDNF
// performs the DE steps, and per-disjunct Fourier–Motzkin projection
// performs the EE steps.
func EliminateExists(sys *System, f *Formula, elim map[Var]bool) (DNF, error) {
	dnf, err := ToDNF(f)
	if err != nil {
		return nil, err
	}
	var out DNF
	for _, conj := range dnf {
		res, sat, err := eliminateConj(sys, conj, elim)
		if err != nil {
			return nil, err
		}
		if !sat {
			continue
		}
		// Drop disjuncts that are themselves unsatisfiable over the
		// remaining variables (e.g. x < y ∧ y < x survives constant
		// folding but projects to false) — Fourier–Motzkin elimination of
		// every variable decides satisfiability of a linear conjunction.
		feasible, err := Satisfiable(sys, res)
		if err != nil {
			return nil, err
		}
		if feasible {
			out = append(out, res)
		}
	}
	return Simplify(out), nil
}

// Satisfiable decides whether a conjunction of atoms has a solution over
// dense ordered domains, by projecting out every variable. Disequalities
// make the answer an over-approximation (it may say true for an
// unsatisfiable conjunction, never false for a satisfiable one).
func Satisfiable(sys *System, conj []Atom) (bool, error) {
	all := map[Var]bool{}
	for _, a := range conj {
		a.Vars(all)
	}
	_, sat, err := eliminateConj(sys, conj, all)
	if err != nil {
		return false, err
	}
	// With every variable eliminated, only variable-free atoms could
	// remain, and constantFold inside eliminateConj already decided them:
	// sat is the answer.
	return sat, nil
}

// eliminateConj projects all elim variables out of a conjunction. sat=false
// means the conjunction is unsatisfiable and should be dropped.
func eliminateConj(sys *System, conj []Atom, elim map[Var]bool) (result []Atom, sat bool, err error) {
	atoms := append([]Atom(nil), conj...)
	// Repeat until no eliminated variable remains.
	for {
		atoms, sat = constantFold(atoms)
		if !sat {
			return nil, false, nil
		}
		v, found := pickVar(atoms, elim)
		if !found {
			return atoms, true, nil
		}
		atoms, sat, err = eliminateVar(sys, atoms, v)
		if err != nil {
			return nil, false, err
		}
		if !sat {
			return nil, false, nil
		}
	}
}

// pickVar selects the next variable to eliminate, preferring ones bound by
// an equality (cheap substitution, no constraint blow-up).
func pickVar(atoms []Atom, elim map[Var]bool) (Var, bool) {
	var fallback Var
	haveFallback := false
	for _, a := range atoms {
		set := map[Var]bool{}
		a.Vars(set)
		for v := range set {
			if !elim[v] {
				continue
			}
			isEq := (a.IsLin && a.Op == OpEQ) || (!a.IsLin && !a.Neg)
			if isEq {
				return v, true
			}
			if !haveFallback {
				fallback, haveFallback = v, true
			}
		}
	}
	return fallback, haveFallback
}

func eliminateVar(sys *System, atoms []Atom, v Var) ([]Atom, bool, error) {
	// 1) Equality substitution.
	for i, a := range atoms {
		if a.IsLin && a.Op == OpEQ && !ratZero(a.Lin.Coeff(v)) {
			return substituteLin(atoms, i, v), true, nil
		}
		if !a.IsLin && !a.Neg && (a.X == v || (!a.YIsConst && a.Y == v)) {
			return substituteUninterp(atoms, i, v), true, nil
		}
	}
	// 2) No equality: project.
	if sys.Kind(v) == Uninterpreted {
		// Only disequalities (and no equalities) constrain v; an infinite
		// domain always has a witness, so drop them.
		var out []Atom
		for _, a := range atoms {
			if !a.Uses(v) {
				out = append(out, a)
			}
		}
		return out, true, nil
	}
	return fourierMotzkin(atoms, v)
}

// substituteLin eliminates v using linear equality atoms[idx]: v = expr.
func substituteLin(atoms []Atom, idx int, v Var) []Atom {
	eq := atoms[idx]
	c := eq.Lin.Coeff(v)
	// eq: c·v + rest = 0  =>  v = -(rest)/c
	rest := eq.Lin.Sub(LinVar(v).ScaleRat(c))
	repl := rest.ScaleRat(ratNeg(ratInv(c)))
	var out []Atom
	for i, a := range atoms {
		if i == idx {
			continue
		}
		if !a.IsLin || ratZero(a.Lin.Coeff(v)) {
			out = append(out, a)
			continue
		}
		cv := a.Lin.Coeff(v)
		na := a
		na.Lin = a.Lin.Sub(LinVar(v).ScaleRat(cv)).Add(repl.ScaleRat(cv))
		out = append(out, na)
	}
	return out
}

// substituteUninterp eliminates v using an uninterpreted equality.
func substituteUninterp(atoms []Atom, idx int, v Var) []Atom {
	eq := atoms[idx]
	// Determine the replacement term for v.
	var replVar Var
	replIsConst := eq.YIsConst && eq.X == v
	var replConst = eq.YConst
	switch {
	case eq.X == v && eq.YIsConst:
		// v = const
	case eq.X == v:
		replVar = eq.Y
	default: // eq.Y == v
		replVar = eq.X
	}
	var out []Atom
	for i, a := range atoms {
		if i == idx {
			continue
		}
		if a.IsLin || !a.Uses(v) {
			out = append(out, a)
			continue
		}
		na := a
		if na.X == v {
			if replIsConst {
				// Constant must land on the Y side: swap if needed.
				if na.YIsConst {
					// const-vs-const comparison; fold later via constantFold
					// by encoding as a linear truth. Keep as-is with X
					// replaced impossible, so emit a degenerate atom.
					out = append(out, constBoolAtom(na.YConst.String() == replConst.String() != na.Neg))
					continue
				}
				na.X = na.Y
				na.Y = 0
				na.YIsConst = true
				na.YConst = replConst
			} else {
				na.X = replVar
			}
		} else if !na.YIsConst && na.Y == v {
			if replIsConst {
				na.YIsConst = true
				na.YConst = replConst
			} else {
				na.Y = replVar
			}
		}
		// Normalize x = x.
		if !na.YIsConst && na.X == na.Y {
			out = append(out, constBoolAtom(!na.Neg))
			continue
		}
		out = append(out, na)
	}
	return out
}

// constBoolAtom encodes a constant truth value as a variable-free linear
// atom (0 <= 0 for true, 1 <= 0 for false).
func constBoolAtom(b bool) Atom {
	if b {
		return Atom{IsLin: true, Lin: LinConst(0), Op: OpLE}
	}
	return Atom{IsLin: true, Lin: LinConst(1), Op: OpLE}
}

// fourierMotzkin projects a numeric variable with no equality bindings.
// Lower bounds (coeff < 0) pair with upper bounds (coeff > 0); strictness
// propagates. Disequalities mentioning v are dropped (sound
// over-approximation; see the package comment).
func fourierMotzkin(atoms []Atom, v Var) ([]Atom, bool, error) {
	var rest []Atom
	type bound struct {
		lin    Linear // the bound expression e in "v >= e" / "v <= e"
		strict bool
	}
	var lowers, uppers []bound
	for _, a := range atoms {
		if !a.Uses(v) {
			rest = append(rest, a)
			continue
		}
		if !a.IsLin {
			// Disequality involving v: drop.
			continue
		}
		c := a.Lin.Coeff(v)
		if a.Op == OpEQ {
			return nil, false, fmt.Errorf("internal: equality should have been substituted")
		}
		// a.Lin = c·v + rest' ⋈ 0  =>  v ⋈ -(rest')/c with direction by sign.
		restLin := a.Lin.Sub(LinVar(v).ScaleRat(c)).ScaleRat(ratNeg(ratInv(c)))
		strict := a.Op == OpLT
		if ratSign(c) > 0 {
			uppers = append(uppers, bound{lin: restLin, strict: strict})
		} else {
			lowers = append(lowers, bound{lin: restLin, strict: strict})
		}
	}
	// v unbounded on one side: all constraints on v satisfiable, drop them.
	if len(lowers) == 0 || len(uppers) == 0 {
		return rest, true, nil
	}
	for _, lo := range lowers {
		for _, hi := range uppers {
			na := Atom{IsLin: true, Lin: lo.lin.Sub(hi.lin)}
			if lo.strict || hi.strict {
				na.Op = OpLT
			} else {
				na.Op = OpLE
			}
			rest = append(rest, na)
		}
	}
	return rest, true, nil
}

// constantFold removes trivially true atoms and detects contradictions.
func constantFold(atoms []Atom) ([]Atom, bool) {
	var out []Atom
	for _, a := range atoms {
		if truth, ok := a.ConstTruth(); ok {
			if !truth {
				return nil, false
			}
			continue
		}
		if !a.IsLin && !a.YIsConst && a.X == a.Y {
			if a.Neg {
				return nil, false
			}
			continue
		}
		out = append(out, a)
	}
	return out, true
}

// Simplify deduplicates atoms within disjuncts, drops contradictory
// disjuncts, and removes disjuncts subsumed by a weaker one (a disjunct
// whose atom set is a superset of another's is redundant in a disjunction).
func Simplify(d DNF) DNF {
	type canon struct {
		atoms []Atom
		keys  map[string]bool
	}
	var cs []canon
	for _, conj := range d {
		folded, sat := constantFold(conj)
		if !sat {
			continue
		}
		keys := map[string]bool{}
		var atoms []Atom
		for _, a := range folded {
			k := a.canonical()
			if !keys[k] {
				keys[k] = true
				atoms = append(atoms, a)
			}
		}
		cs = append(cs, canon{atoms: atoms, keys: keys})
	}
	// Subsumption: disjunct i is redundant if some j (j≠i) has keys ⊆ i's.
	redundant := make([]bool, len(cs))
	for i := range cs {
		for j := range cs {
			if i == j || redundant[i] || redundant[j] {
				continue
			}
			if len(cs[j].keys) <= len(cs[i].keys) && subset(cs[j].keys, cs[i].keys) {
				if len(cs[j].keys) == len(cs[i].keys) && j > i {
					continue // identical; keep the earlier one
				}
				redundant[i] = true
			}
		}
	}
	var out DNF
	for i, c := range cs {
		if !redundant[i] {
			out = append(out, c.atoms)
		}
	}
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
