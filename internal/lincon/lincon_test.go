package lincon

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"smarticeberg/internal/value"
)

// skybandTheta builds the k-skyband join condition of Listing 2 over the
// given outer variables (x,y) and inner variables (xr,yr):
// x <= xr AND y <= yr AND (x < xr OR y < yr).
func skybandTheta(x, y, xr, yr Var) *Formula {
	return And(
		AtomF(LinLE(LinVar(x), LinVar(xr))),
		AtomF(LinLE(LinVar(y), LinVar(yr))),
		Or(
			AtomF(LinLT(LinVar(x), LinVar(xr))),
			AtomF(LinLT(LinVar(y), LinVar(yr))),
		),
	)
}

// simpleTheta is the simplified condition of Example 11: x < xr AND y < yr.
func simpleTheta(x, y, xr, yr Var) *Formula {
	return And(
		AtomF(LinLT(LinVar(x), LinVar(xr))),
		AtomF(LinLT(LinVar(y), LinVar(yr))),
	)
}

// deriveNotSubsumption eliminates the inner variables from
// Θ(w',wr) ∧ ¬Θ(w,wr); the subsumption predicate is its negation.
func deriveNotSubsumption(t *testing.T, theta func(x, y, xr, yr Var) *Formula) (*System, DNF, [4]Var) {
	t.Helper()
	sys := NewSystem()
	x := sys.NewVar("x", Numeric)
	y := sys.NewVar("y", Numeric)
	xp := sys.NewVar("x'", Numeric)
	yp := sys.NewVar("y'", Numeric)
	xr := sys.NewVar("xr", Numeric)
	yr := sys.NewVar("yr", Numeric)
	f := And(theta(xp, yp, xr, yr), Not(theta(x, y, xr, yr)))
	d, err := EliminateExists(sys, f, map[Var]bool{xr: true, yr: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys, d, [4]Var{x, y, xp, yp}
}

// TestSubsumptionSkyband reproduces Example 11 and Appendix B: for both the
// simplified and the full skyband join condition, the derived ¬p⪰ must be
// semantically equivalent to (x' < x) OR (y' < y), i.e. p⪰ ≡ x<=x' ∧ y<=y'.
func TestSubsumptionSkyband(t *testing.T) {
	for name, theta := range map[string]func(x, y, xr, yr Var) *Formula{
		"simplified(Example11)": simpleTheta,
		"full(AppendixB)":       skybandTheta,
	} {
		sys, d, vars := deriveNotSubsumption(t, theta)
		t.Logf("%s: ¬p⪰ = %s", name, d.String(sys))
		grid := []float64{-2, -1, 0, 0.5, 1, 2}
		for _, xv := range grid {
			for _, yv := range grid {
				for _, xpv := range grid {
					for _, ypv := range grid {
						assign := func(v Var) value.Value {
							switch v {
							case vars[0]:
								return value.NewFloat(xv)
							case vars[1]:
								return value.NewFloat(yv)
							case vars[2]:
								return value.NewFloat(xpv)
							case vars[3]:
								return value.NewFloat(ypv)
							}
							t.Fatalf("unexpected var %d", v)
							return value.NullValue
						}
						got, err := d.Eval(assign)
						if err != nil {
							t.Fatal(err)
						}
						want := xpv < xv || ypv < yv
						if got != want {
							t.Fatalf("%s: at x=%v y=%v x'=%v y'=%v: got %v want %v (¬p⪰ = %s)",
								name, xv, yv, xpv, ypv, got, want, d.String(sys))
						}
					}
				}
			}
		}
	}
}

// TestEliminationPreservesSatisfiability: eliminating a variable from a
// random conjunction of linear atoms must keep the projection semantics:
// the eliminated DNF holds on an assignment of the remaining variables iff
// some value of the eliminated variable satisfies the original (checked on
// a discretized witness grid, which FME theory guarantees is enough here
// because all our coefficients are ±1 and bounds land on grid points).
func TestEliminationPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys := NewSystem()
	const nv = 4
	vars := make([]Var, nv)
	for i := range vars {
		vars[i] = sys.NewVar(string(rune('a'+i)), Numeric)
	}
	elimVar := vars[nv-1]
	for iter := 0; iter < 300; iter++ {
		// Random conjunction of var-vs-var / var-vs-const comparisons.
		n := 1 + rng.Intn(4)
		var conj []Atom
		f := make([]*Formula, 0, n)
		for i := 0; i < n; i++ {
			l := LinVar(vars[rng.Intn(nv)])
			var r Linear
			if rng.Intn(3) == 0 {
				r = LinConst(float64(rng.Intn(5) - 2))
			} else {
				r = LinVar(vars[rng.Intn(nv)])
			}
			var a Atom
			switch rng.Intn(3) {
			case 0:
				a = LinLE(l, r)
			case 1:
				a = LinLT(l, r)
			default:
				a = LinEQ(l, r)
			}
			conj = append(conj, a)
			f = append(f, AtomF(a))
		}
		d, err := EliminateExists(sys, And(f...), map[Var]bool{elimVar: true})
		if err != nil {
			t.Fatal(err)
		}
		// Compare on a grid of the remaining variables.
		grid := []float64{-2, -1, -0.5, 0, 0.5, 1, 2, 3}
		witness := []float64{-4, -2.5, -2, -1.5, -1, -0.75, -0.5, -0.25, 0, 0.25, 0.5, 0.75, 1, 1.5, 2, 2.5, 3, 4.5}
		var vals [nv]float64
		var rec func(i int)
		failed := false
		rec = func(i int) {
			if failed {
				return
			}
			if i == nv-1 {
				assign := func(v Var) value.Value { return value.NewFloat(vals[int(v)]) }
				got, err := d.Eval(assign)
				if err != nil {
					t.Fatal(err)
				}
				want := false
				for _, w := range witness {
					vals[nv-1] = w
					all := true
					for _, a := range conj {
						ok, err := a.Eval(assign)
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							all = false
							break
						}
					}
					if all {
						want = true
						break
					}
				}
				if got != want {
					failed = true
					t.Errorf("iter %d: projection mismatch at %v: got %v want %v\nconj atoms: %d, result: %s",
						iter, vals[:nv-1], got, want, len(conj), d.String(sys))
				}
				return
			}
			for _, g := range grid {
				vals[i] = g
				rec(i + 1)
			}
		}
		rec(0)
		if failed {
			return
		}
	}
}

// TestUninterpretedEquality checks substitution of string-typed variables.
func TestUninterpretedEquality(t *testing.T) {
	sys := NewSystem()
	a := sys.NewVar("a", Uninterpreted)
	b := sys.NewVar("b", Uninterpreted)
	c := sys.NewVar("c", Uninterpreted)
	// ∃c: a = c ∧ c = b  ≡  a = b
	f := And(AtomF(UEq(a, c)), AtomF(UEq(c, b)))
	d, err := EliminateExists(sys, f, map[Var]bool{c: true})
	if err != nil {
		t.Fatal(err)
	}
	check := func(av, bv string, want bool) {
		t.Helper()
		got, err := d.Eval(func(v Var) value.Value {
			if v == a {
				return value.NewStr(av)
			}
			return value.NewStr(bv)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("a=%q b=%q: got %v want %v (%s)", av, bv, got, want, d.String(sys))
		}
	}
	check("x", "x", true)
	check("x", "y", false)

	// ∃c: a = c ∧ c ≠ b — c exists unless... always satisfiable picking
	// c = a when a ≠ b; when a = b there is no witness, but dropping the
	// disequality over-approximates to true. Soundness direction only:
	// result must be implied-by the exact projection (a ≠ b).
	f2 := And(AtomF(UEq(a, c)), AtomF(UNe(c, b)))
	d2, err := EliminateExists(sys, f2, map[Var]bool{c: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Eval(func(v Var) value.Value {
		if v == a {
			return value.NewStr("x")
		}
		return value.NewStr("y")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("exact projection a≠b must imply eliminated result")
	}
}

// TestDNFProperties uses testing/quick to verify that ToDNF preserves
// semantics of random formulas.
func TestDNFProperties(t *testing.T) {
	sys := NewSystem()
	vars := []Var{sys.NewVar("p", Numeric), sys.NewVar("q", Numeric), sys.NewVar("r", Numeric)}
	type node struct {
		f     *Formula
		check func(map[Var]float64) bool
	}
	var build func(rng *rand.Rand, depth int) node
	build = func(rng *rand.Rand, depth int) node {
		if depth == 0 || rng.Intn(3) == 0 {
			l, r := vars[rng.Intn(3)], vars[rng.Intn(3)]
			switch rng.Intn(3) {
			case 0:
				return node{AtomF(LinLE(LinVar(l), LinVar(r))), func(m map[Var]float64) bool { return m[l] <= m[r] }}
			case 1:
				return node{AtomF(LinLT(LinVar(l), LinVar(r))), func(m map[Var]float64) bool { return m[l] < m[r] }}
			default:
				return node{AtomF(LinEQ(LinVar(l), LinVar(r))), func(m map[Var]float64) bool { return m[l] == m[r] }}
			}
		}
		switch rng.Intn(3) {
		case 0:
			a, b := build(rng, depth-1), build(rng, depth-1)
			return node{And(a.f, b.f), func(m map[Var]float64) bool { return a.check(m) && b.check(m) }}
		case 1:
			a, b := build(rng, depth-1), build(rng, depth-1)
			return node{Or(a.f, b.f), func(m map[Var]float64) bool { return a.check(m) || b.check(m) }}
		default:
			a := build(rng, depth-1)
			return node{Not(a.f), func(m map[Var]float64) bool { return !a.check(m) }}
		}
	}
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64, p, q, r int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := build(rng, 3)
		dnf, err := ToDNF(n.f)
		if err != nil {
			return false
		}
		m := map[Var]float64{vars[0]: float64(p % 4), vars[1]: float64(q % 4), vars[2]: float64(r % 4)}
		got, err := dnf.Eval(func(v Var) value.Value { return value.NewFloat(m[v]) })
		if err != nil {
			return false
		}
		return got == n.check(m)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestSatisfiable checks the conjunction-satisfiability decision procedure.
func TestSatisfiable(t *testing.T) {
	sys := NewSystem()
	x := sys.NewVar("x", Numeric)
	y := sys.NewVar("y", Numeric)
	u := sys.NewVar("u", Uninterpreted)
	v := sys.NewVar("v", Uninterpreted)
	cases := []struct {
		name string
		conj []Atom
		want bool
	}{
		{"empty", nil, true},
		{"x<y,y<x", []Atom{LinLT(LinVar(x), LinVar(y)), LinLT(LinVar(y), LinVar(x))}, false},
		{"x<=y,y<=x", []Atom{LinLE(LinVar(x), LinVar(y)), LinLE(LinVar(y), LinVar(x))}, true},
		{"x<y,y<x+2", []Atom{LinLT(LinVar(x), LinVar(y)), LinLT(LinVar(y), LinVar(x).Add(LinConst(2)))}, true},
		{"x=y,x<y", []Atom{LinEQ(LinVar(x), LinVar(y)), LinLT(LinVar(x), LinVar(y))}, false},
		{"const false", []Atom{LinLT(LinConst(1), LinConst(0))}, false},
		{"u=v,u<>v", []Atom{UEq(u, v), UNe(u, v)}, false},
		{"u=v alone", []Atom{UEq(u, v)}, true},
		{"chain infeasible", []Atom{
			LinLE(LinVar(x), LinConst(0)),
			LinLE(LinConst(5), LinVar(y)),
			LinLE(LinVar(y), LinVar(x)),
		}, false},
	}
	for _, c := range cases {
		got, err := Satisfiable(sys, c.conj)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRationalExactness: coefficients like 1/3 must cancel exactly through
// elimination; with float64 arithmetic the residue would survive as a
// spurious constraint.
func TestRationalExactness(t *testing.T) {
	sys := NewSystem()
	x := sys.NewVar("x", Numeric)
	y := sys.NewVar("y", Numeric)
	z := sys.NewVar("z", Numeric)
	third := LinVar(x).Scale(1).ScaleRat(bigRat(1, 3))
	sixth := LinVar(x).ScaleRat(bigRat(1, 6))
	half := LinVar(x).ScaleRat(bigRat(1, 2))
	// x/3 + x/6 - x/2 == 0 exactly.
	sum := third.Add(sixth).Sub(half)
	if !sum.IsConst() || ratSign(sum.ConstRat()) != 0 {
		t.Fatalf("x/3 + x/6 - x/2 must cancel exactly, got %s", sum.String(sys))
	}
	// ∃z: 3z = x ∧ z < y  ≡  x < 3y; check semantics on a grid.
	f := And(
		AtomF(LinEQ(LinVar(z).Scale(3), LinVar(x))),
		AtomF(LinLT(LinVar(z), LinVar(y))),
	)
	d, err := EliminateExists(sys, f, map[Var]bool{z: true})
	if err != nil {
		t.Fatal(err)
	}
	for xv := -6.0; xv <= 6; xv += 1.5 {
		for yv := -3.0; yv <= 3; yv += 0.75 {
			got, err := d.Eval(func(v Var) value.Value {
				if v == x {
					return value.NewFloat(xv)
				}
				return value.NewFloat(yv)
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := xv < 3*yv; got != want {
				t.Fatalf("x=%v y=%v: got %v want %v (%s)", xv, yv, got, want, d.String(sys))
			}
		}
	}
}

func bigRat(n, d int64) *big.Rat { return big.NewRat(n, d) }
