package resource

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"smarticeberg/internal/value"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Reserve("x", 1<<40); err != nil {
		t.Fatalf("nil budget Reserve: %v", err)
	}
	b.Release(1 << 40)
	if b.Used() != 0 || b.Limit() != 0 || b.Peak() != 0 {
		t.Fatal("nil budget reported usage")
	}
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Fatal("NewBudget(<=0) must return the nil (unlimited) budget")
	}
}

func TestReserveReleaseAccounting(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve("b", 30); err != nil {
		t.Fatal(err)
	}
	err := b.Reserve("c", 20)
	if err == nil {
		t.Fatal("overcommit succeeded")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error %v does not wrap ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not *BudgetError", err)
	}
	if be.Site != "c" || be.Requested != 20 || be.Used != 90 || be.Limit != 100 {
		t.Fatalf("BudgetError fields wrong: %+v", be)
	}
	// A failed reservation charges nothing.
	if b.Used() != 90 {
		t.Fatalf("Used = %d after failed reserve, want 90", b.Used())
	}
	b.Release(60)
	if b.Used() != 30 {
		t.Fatalf("Used = %d, want 30", b.Used())
	}
	if b.Peak() != 90 {
		t.Fatalf("Peak = %d, want 90", b.Peak())
	}
	// Over-release clamps at zero (coarse estimates may not round-trip).
	b.Release(1000)
	if b.Used() != 0 {
		t.Fatalf("Used = %d after over-release, want 0", b.Used())
	}
	if err := b.Reserve("d", 100); err != nil {
		t.Fatalf("budget not reusable after clamp: %v", err)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	b := NewBudget(workers * 10)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := b.Reserve("w", 10); err == nil {
					b.Release(10)
				}
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("Used = %d after balanced concurrent traffic, want 0", b.Used())
	}
	if b.Peak() > b.Limit() {
		t.Fatalf("Peak %d exceeds limit %d", b.Peak(), b.Limit())
	}
}

func TestRowBytesEstimates(t *testing.T) {
	small := value.Row{value.NewInt(1)}
	large := value.Row{value.NewInt(1), value.NewStr("a longer retained string value")}
	if RowBytes(small) <= 0 || RowBytes(large) <= RowBytes(small) {
		t.Fatalf("RowBytes not monotone: small=%d large=%d", RowBytes(small), RowBytes(large))
	}
	rows := []value.Row{small, large}
	if RowsBytes(rows) < RowBytes(small)+RowBytes(large) {
		t.Fatalf("RowsBytes %d below the sum of its rows", RowsBytes(rows))
	}
	if RowsBytes(nil) <= 0 {
		t.Fatal("RowsBytes(nil) must still count the slice header")
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	err := (&BudgetError{Requested: 7, Used: 3, Limit: 9}).Error()
	for _, frag := range []string{"7", "3", "9", "memory budget exceeded"} {
		if !strings.Contains(err, frag) {
			t.Fatalf("error %q missing %q", err, frag)
		}
	}
}

func TestAcquireRelease(t *testing.T) {
	b := NewBudget(100)
	r, err := b.Acquire("carve", 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 60 || b.Used() != 60 {
		t.Fatalf("after Acquire: size %d, used %d", r.Size(), b.Used())
	}
	if _, err := b.Acquire("too big", 50); err == nil || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget Acquire: %v", err)
	}
	r.Release()
	if b.Used() != 0 {
		t.Fatalf("after Release: used %d", b.Used())
	}
}

func TestAcquireNilSafety(t *testing.T) {
	var b *Budget
	r, err := b.Acquire("unlimited", 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	var nilRes *Reservation
	nilRes.Release() // must not panic
	if nilRes.Size() != 0 {
		t.Fatal("nil reservation reported a size")
	}
}

// TestDoubleReleaseSaturates checks the production behavior: the second
// Release of one reservation is a no-op, so Used() stays truthful even when
// other reservations are outstanding.
func TestDoubleReleaseSaturates(t *testing.T) {
	strict := strictRelease
	strictRelease = false
	defer func() { strictRelease = strict }()
	b := NewBudget(100)
	r1, _ := b.Acquire("one", 40)
	r2, _ := b.Acquire("two", 40)
	r1.Release()
	r1.Release() // would leave Used()==0 under the raw Release(n) API
	if b.Used() != 40 {
		t.Fatalf("double release corrupted Used: got %d, want 40 (r2 outstanding)", b.Used())
	}
	r2.Release()
	if b.Used() != 0 {
		t.Fatalf("after releasing both: used %d", b.Used())
	}
}

// TestDoubleReleaseStrictPanics checks the test-mode behavior behind the
// budgetcheck build tag: a double Release panics at the offending call.
func TestDoubleReleaseStrictPanics(t *testing.T) {
	strict := strictRelease
	strictRelease = true
	defer func() { strictRelease = strict }()
	b := NewBudget(100)
	r, err := b.Acquire("strict", 10)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatal("strict double Release did not panic")
		} else if !strings.Contains(fmt.Sprint(rec), "strict") {
			t.Fatalf("panic does not name the site: %v", rec)
		}
	}()
	r.Release()
}

func TestAcquireReleaseConcurrent(t *testing.T) {
	strict := strictRelease
	strictRelease = false // the duplicate Release below is the point
	defer func() { strictRelease = strict }()
	b := NewBudget(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r, err := b.Acquire("conc", 512)
				if err != nil {
					continue
				}
				r.Release()
				r.Release() // saturating duplicate under race detector
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("concurrent acquire/release leaked: used %d", b.Used())
	}
}
