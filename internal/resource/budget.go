// Package resource provides the execution engine's memory accounting: a
// Budget of bytes shared by every operator of one query. Operators that
// materialize state (join build sides, hash-aggregate tables, the NLJP
// binding cache) reserve an estimate of what they retain and release it on
// Close; a reservation that would exceed the budget fails with a typed
// ErrBudgetExceeded so callers can degrade (shrink a cache, fall back to a
// cheaper plan) instead of exhausting the process.
//
// Estimates are deliberately coarse — the goal is bounding worst-case
// resident state on iceberg queries (the paper's Section 1 pitch), not
// byte-exact accounting.
package resource

import (
	"errors"
	"fmt"
	"sync/atomic"

	"smarticeberg/internal/value"
)

// ErrBudgetExceeded is the sentinel all budget failures wrap; match it with
// errors.Is. The concrete error is a *BudgetError carrying the numbers.
var ErrBudgetExceeded = errors.New("memory budget exceeded")

// BudgetError reports one failed reservation.
type BudgetError struct {
	// Site names the charging operator or structure ("hash join build",
	// "NLJP inner relation", ...). May be empty when charged generically.
	Site      string
	Requested int64
	Used      int64
	Limit     int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	site := e.Site
	if site == "" {
		site = "execution"
	}
	return fmt.Sprintf("%s: %v: requested %d bytes with %d of %d in use", site, ErrBudgetExceeded, e.Requested, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) work.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget is an atomic byte budget shared across the goroutines of one query.
// A nil *Budget is valid and unlimited: every method no-ops, so call sites
// need no nil checks.
type Budget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// NewBudget returns a budget of limit bytes; limit <= 0 returns nil (an
// unlimited budget).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Reserve charges n bytes, failing with a *BudgetError (wrapping
// ErrBudgetExceeded) when the reservation would push usage past the limit.
// On failure nothing is charged.
func (b *Budget) Reserve(site string, n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	for {
		used := b.used.Load()
		if used+n > b.limit {
			return &BudgetError{Site: site, Requested: n, Used: used, Limit: b.limit}
		}
		if b.used.CompareAndSwap(used, used+n) {
			for {
				p := b.peak.Load()
				if used+n <= p || b.peak.CompareAndSwap(p, used+n) {
					break
				}
			}
			return nil
		}
	}
}

// Release returns n bytes to the budget. Releasing more than was reserved
// clamps at zero rather than going negative (coarse estimates may not match
// exactly across degradation paths).
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	if next := b.used.Add(-n); next < 0 {
		// Clamp: a concurrent Reserve between Add and CAS keeps the value
		// conservative (never below zero from this release's perspective).
		b.used.CompareAndSwap(next, 0)
	}
}

// Reservation is a handle to one successful Acquire: a fixed-size charge
// against a budget that is returned exactly once by Release. The handle
// carries its own released flag, so a double Release is detected instead of
// silently shrinking Used() below the truth — the failure mode the raw
// Release(n) API cannot see. In production a second Release saturates (it
// no-ops); with the strict check on (the `budgetcheck` build tag, or tests
// inside this package) it panics, naming the site.
//
// A Reservation from a nil (unlimited) Budget, or for n <= 0 bytes, is valid
// and releases nothing. A nil *Reservation is also valid: Release no-ops, so
// error paths that never acquired need no nil checks.
type Reservation struct {
	b        *Budget
	site     string
	n        int64
	released atomic.Bool
}

// strictRelease makes Reservation.Release panic on a double release instead
// of saturating. Enabled by the `budgetcheck` build tag (strict_check.go);
// tests in this package toggle it directly.
var strictRelease = false

// Acquire is Reserve returning a handle instead of relying on the caller to
// pair amounts: the server's admission layer carves per-query budgets and
// queue slots this way, where a mismatched or doubled Release would corrupt
// a budget shared by every other query in the process. On failure nothing is
// charged and the returned Reservation is nil.
func (b *Budget) Acquire(site string, n int64) (*Reservation, error) {
	if err := b.Reserve(site, n); err != nil {
		return nil, err
	}
	return &Reservation{b: b, site: site, n: n}, nil
}

// Release returns the reservation to its budget. The first call wins; a
// second call panics under the strict check and no-ops otherwise.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	if r.released.Swap(true) {
		if strictRelease {
			panic(fmt.Sprintf("resource: double Release of %q reservation (%d bytes)", r.site, r.n))
		}
		return
	}
	r.b.Release(r.n)
}

// Size reports the reserved byte count.
func (r *Reservation) Size() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Used reports the bytes currently reserved.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak reports the high-water mark of reserved bytes — how much memory the
// query actually needed. Sizing a budget just below a query's peak is how
// tests (and operators) probe the degradation ladder.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Limit reports the configured limit, or 0 for an unlimited budget.
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// RowBytes estimates the resident size of one row: slice header plus per
// value the Value struct and any retained string bytes.
func RowBytes(r value.Row) int64 {
	n := int64(24)
	for _, v := range r {
		n += 32 + int64(len(v.S))
	}
	return n
}

// RowsBytes estimates the resident size of a materialized row set.
func RowsBytes(rows []value.Row) int64 {
	n := int64(24)
	for _, r := range rows {
		n += RowBytes(r)
	}
	return n
}
