//go:build budgetcheck

package resource

// Building with `-tags budgetcheck` (the Makefile's test targets do) turns a
// double Reservation.Release into a panic at the offending call instead of a
// silent no-op, so the bug is caught where it happens rather than surfacing
// later as a mysteriously roomy budget.
func init() { strictRelease = true }
