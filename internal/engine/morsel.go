package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/value"
)

// ParallelBatchScan is the morsel-driven parallel form of BatchMemScan: the
// scanned table is cut into fixed-size morsels (one per output chunk, so the
// morsel boundaries are exactly the sequential scan's input windows), a small
// worker pool claims morsels dynamically through an atomic counter, and
// finished morsels are delivered to the consumer strictly in morsel order
// through a ring of single-slot channels. Because each morsel covers a
// deterministic row range, each chunk is filtered by the same kernel the
// sequential scan would run, and delivery re-serializes the chunks in morsel
// order, the output stream is byte-identical to BatchMemScan over the same
// input — for every worker count.
//
// The operator runs only in columnar mode: it requires the column-major table
// form, and a fused predicate must come with its typed kernel (BatchifyWorkers
// falls back to the sequential scan otherwise). Workers poll cancellation
// every batchScanCheckEvery input rows like the sequential loop, errors are
// delivered at the morsel where they occurred (so the surfaced error is the
// lowest-index failure among delivered morsels, deterministic for injected
// faults), panics inside a worker surface as *PanicError, and every abort
// path — error, cancellation, early Close — unblocks all workers via a done
// channel before Close returns, so no goroutine outlives the query.
type ParallelBatchScan struct {
	execState
	batchCursor
	Label     string
	schema    value.Schema
	rows      []value.Row
	cols      *value.Columns
	pred      expr.Compiled // row form of the fused predicate (EXPLAIN only)
	predLabel string
	kern      expr.SelKernel
	size      int
	workers   int
	out       int64

	// Scan avoidance, mirroring BatchMemScan: zone predicates skip whole
	// blocks, transferred membership kernels drop probe rows. Counters are
	// atomics because morsel workers bump them concurrently; the structures
	// themselves are immutable during the run (shared read-only).
	zones         *value.ZoneMaps
	zonePred      expr.ZonePred
	transferKerns []expr.SelKernel
	skippedBlocks atomic.Int64
	skippedRows   atomic.Int64
	skippedProbes atomic.Int64
	skipFlushed   bool

	// Run state, rebuilt by each Open. Batches cycle between the free pool,
	// the workers' hands, the delivery slots, and the consumer's last-returned
	// chunk; the pool is sized so no send on free can ever block.
	numMorsels int
	claim      atomic.Int64
	slots      []chan morselResult
	free       chan *value.Batch
	done       chan struct{}
	wg         sync.WaitGroup
	nextM      int
	last       *value.Batch
	running    bool
}

// morselResult is one finished morsel: its chunk (possibly empty — the
// consumer recycles and skips those) or the error that stopped it.
type morselResult struct {
	batch *value.Batch
	err   error
}

// NewParallelBatchScan builds a morsel-parallel scan over rows with the given
// column-major form, chunk capacity, and worker count (values below 2 are
// rejected by BatchifyWorkers; the type itself tolerates them).
func NewParallelBatchScan(label string, schema value.Schema, rows []value.Row, cols *value.Columns, size, workers int) *ParallelBatchScan {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if workers < 1 {
		workers = 1
	}
	return &ParallelBatchScan{Label: label, schema: schema, rows: rows, cols: cols, size: size, workers: workers}
}

// FuseKernel folds a filter into the morsel loop. Unlike BatchMemScan the
// typed kernel is mandatory — workers never materialize rows, so there is no
// compiled-closure fallback; pred and label serve EXPLAIN.
func (s *ParallelBatchScan) FuseKernel(pred expr.Compiled, label string, kern expr.SelKernel) {
	s.pred, s.predLabel, s.kern = pred, label, kern
}

// Fused reports whether a predicate is already folded into the scan.
func (s *ParallelBatchScan) Fused() bool { return s.kern != nil }

// SetZoneMaps attaches per-block summaries over the scan's columns.
func (s *ParallelBatchScan) SetZoneMaps(z *value.ZoneMaps) { s.zones = z }

// FuseZonePred conjoins a zone predicate (see BatchMemScan.FuseZonePred).
func (s *ParallelBatchScan) FuseZonePred(p expr.ZonePred) {
	s.zonePred = expr.ZoneAnd(s.zonePred, p)
}

// AddTransferKernel installs a transferred join-filter membership kernel.
func (s *ParallelBatchScan) AddTransferKernel(k expr.SelKernel) {
	s.transferKerns = append(s.transferKerns, k)
}

// ZoneMaps returns the attached zone maps, if any.
func (s *ParallelBatchScan) ZoneMaps() *value.ZoneMaps { return s.zones }

// CanTransfer implements transferTarget: a parallel scan always runs
// columnar, so installed filters always take effect.
func (s *ParallelBatchScan) CanTransfer() bool { return true }

// SkipCounts implements skipReporter.
func (s *ParallelBatchScan) SkipCounts() (blocks, rows, probes int64) {
	return s.skippedBlocks.Load(), s.skippedRows.Load(), s.skippedProbes.Load()
}

// Schema implements Operator.
func (s *ParallelBatchScan) Schema() value.Schema { return s.schema }

// BatchSize implements BatchOperator.
func (s *ParallelBatchScan) BatchSize() int { return s.size }

// Workers reports the pool size, for EXPLAIN and the bench emitter.
func (s *ParallelBatchScan) Workers() int { return s.workers }

// Open implements Operator: it resets the ordered ring and starts the worker
// pool. A reopen (an inner-relation rescan) shuts the previous pool down
// first.
func (s *ParallelBatchScan) Open() error {
	s.shutdown()
	if err := failpoint.Inject(failpoint.ScanOpen); err != nil {
		return err
	}
	s.out = 0
	s.nextM = 0
	s.last = nil
	s.skippedBlocks.Store(0)
	s.skippedRows.Store(0)
	s.skippedProbes.Store(0)
	s.skipFlushed = false
	s.reset()
	s.numMorsels = (s.cols.Len() + s.size - 1) / s.size
	workers := s.workers
	if workers > s.numMorsels {
		workers = s.numMorsels
	}
	if workers < 1 {
		workers = 1
	}
	// The ring holds 2 slots per worker so a fast worker can run one morsel
	// ahead of the consumer without stalling; the pool holds one batch per
	// slot, per worker, and one for the consumer's in-flight chunk, so every
	// channel send in the protocol has guaranteed room or a waiting receiver.
	ringSize := 2 * workers
	nBatches := ringSize + workers + 1
	s.slots = make([]chan morselResult, ringSize)
	for i := range s.slots {
		s.slots[i] = make(chan morselResult, 1)
	}
	s.free = make(chan *value.Batch, nBatches)
	for i := 0; i < nBatches; i++ {
		s.free <- value.NewColBatch(s.cols, s.size)
	}
	s.done = make(chan struct{})
	s.claim.Store(0)
	s.running = true
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// worker claims morsels until the table is exhausted, an error occurs, or the
// consumer aborts. A worker that fails delivers the error at its morsel's
// position and stops claiming, so the consumer — which drains in morsel
// order — surfaces the lowest-index failure.
func (s *ParallelBatchScan) worker() {
	defer s.wg.Done()
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			// scanMorsel contains its own panics; this catches the claim and
			// hand-off path so a bug cannot crash the process. Deliver the
			// failure at the current morsel's position so the consumer wakes.
			res := morselResult{err: NewPanicError("morsel worker", r)}
			if cur >= 0 {
				select {
				case s.slots[cur%len(s.slots)] <- res:
				case <-s.done:
				}
			}
		}
	}()
	for {
		m := int(s.claim.Add(1)) - 1
		if m >= s.numMorsels {
			return
		}
		cur = m
		var b *value.Batch
		select {
		case b = <-s.free:
		case <-s.done:
			return
		}
		res := morselResult{batch: b}
		res.err = s.scanMorsel(m, b)
		if ferr := failpoint.Inject(failpoint.MorselEnqueue); ferr != nil && res.err == nil {
			res.err = ferr
		}
		select {
		case s.slots[m%len(s.slots)] <- res:
		case <-s.done:
			return
		}
		if res.err != nil {
			return
		}
	}
}

// scanMorsel fills b with morsel m's surviving rows: the same fixed input
// window, kernel split, and cancellation cadence as the sequential columnar
// scan, so chunk m here is bit-for-bit the sequential scan's chunk m. Panics
// surface as *PanicError like every other execution-layer goroutine.
func (s *ParallelBatchScan) scanMorsel(m int, b *value.Batch) (err error) {
	defer CapturePanic("morsel worker", &err)
	if err := s.stepChunk(); err != nil {
		return err
	}
	lo := m * s.size
	hi := lo + s.size
	if n := s.cols.Len(); hi > n {
		hi = n
	}
	b.Reset()
	//lint:ignore rowalias the worker owns this batch until it is handed over; the consumer serves it only within its validity window
	sel := b.Sel()[:0]
	zoning := s.zones != nil && s.zonePred != nil
	if s.kern != nil || zoning || len(s.transferKerns) > 0 {
		// The check leads the sub-window so every iteration path of the kernel
		// loop polls cancellation (icelint cancelcheck verifies this).
		for lo < hi {
			if err := s.stepChunk(); err != nil {
				return err
			}
			mid := lo + batchScanCheckEvery
			if mid > hi {
				mid = hi
			}
			if zoning {
				// Same block-aligned sub-window and skip logic as the
				// sequential columnar scan, so chunk m stays bit-identical.
				if end := s.zones.BlockEnd(lo); end < mid {
					mid = end
				}
				if !s.zonePred(s.zones, s.zones.BlockOf(lo)) {
					if lo%s.zones.BlockSize() == 0 {
						s.skippedBlocks.Add(1)
					}
					s.skippedRows.Add(int64(mid - lo))
					lo = mid
					continue
				}
			}
			start := len(sel)
			if s.kern != nil {
				sel, err = s.kern(s.cols, lo, mid, nil, sel)
				if err != nil {
					return err
				}
			} else {
				for i := lo; i < mid; i++ {
					sel = append(sel, int32(i))
				}
			}
			for _, tk := range s.transferKerns {
				if err := s.stepChunk(); err != nil {
					return err
				}
				newPart := sel[start:]
				before := len(newPart)
				filtered, err := tk(s.cols, lo, mid, newPart, newPart[:0])
				if err != nil {
					return err
				}
				sel = sel[:start+len(filtered)]
				s.skippedProbes.Add(int64(before - len(filtered)))
			}
			lo = mid
		}
	} else {
		for i := lo; i < hi; i++ {
			sel = append(sel, int32(i))
		}
	}
	b.SetSel(sel)
	return nil
}

// NextBatch implements BatchOperator: it drains morsels strictly in order,
// recycling empty chunks (a fully filtered morsel) so the stream never
// contains one, exactly like the sequential scan's retry loop.
func (s *ParallelBatchScan) NextBatch() (*value.Batch, error) {
	if err := failpoint.Inject(failpoint.ScanNext); err != nil {
		s.abort()
		return nil, err
	}
	if s.pred != nil {
		if err := failpoint.Inject(failpoint.FilterNext); err != nil {
			s.abort()
			return nil, err
		}
	}
	if err := s.stepChunk(); err != nil {
		s.abort()
		return nil, err
	}
	if s.last != nil {
		// The consumer is done with the previously delivered chunk; hand it
		// back for reuse. The pool is sized for every batch in the cycle, so
		// this send cannot block.
		s.free <- s.last
		s.last = nil
	}
	for {
		if s.nextM >= s.numMorsels {
			return nil, nil
		}
		if err := failpoint.Inject(failpoint.MorselDrain); err != nil {
			s.abort()
			return nil, err
		}
		res := <-s.slots[s.nextM%len(s.slots)]
		s.nextM++
		if res.err != nil {
			if res.batch != nil {
				s.free <- res.batch
			}
			s.abort()
			return nil, res.err
		}
		if res.batch.Len() == 0 {
			s.free <- res.batch
			continue
		}
		s.last = res.batch
		s.out += int64(res.batch.Len())
		return res.batch, nil
	}
}

// Next implements Operator.
func (s *ParallelBatchScan) Next() (value.Row, error) { return s.next(s.NextBatch) }

// abort tells the workers to stop: sends into slots and receives from the
// free pool unblock immediately. Idempotent; Close waits for the pool.
func (s *ParallelBatchScan) abort() {
	if s.running && s.done != nil {
		close(s.done)
		s.running = false
	}
}

// shutdown aborts and waits until every worker has exited.
func (s *ParallelBatchScan) shutdown() {
	if s.done == nil {
		return
	}
	s.abort()
	s.wg.Wait()
	s.done = nil
	s.slots = nil
	s.free = nil
	s.last = nil
}

// Close implements Operator: after it returns no worker goroutine is left
// running, whatever state the scan was in.
func (s *ParallelBatchScan) Close() error {
	s.shutdown()
	if !s.skipFlushed {
		s.skipFlushed = true
		addSkipTotals(s.skippedBlocks.Load(), s.skippedRows.Load(), s.skippedProbes.Load())
	}
	return failpoint.Inject(failpoint.ScanClose)
}

// Describe implements Operator.
func (s *ParallelBatchScan) Describe() string {
	d := fmt.Sprintf("Parallel Seq Scan on %s (%d rows, %d workers)", s.Label, len(s.rows), s.workers)
	if s.pred != nil {
		d += "; Filter: " + s.predLabel
	}
	return d
}

// Children implements Operator.
func (s *ParallelBatchScan) Children() []Operator { return nil }

// ActualRows implements rowCounter.
func (s *ParallelBatchScan) ActualRows() int64 { return s.out }
