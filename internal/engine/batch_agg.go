package engine

import (
	"fmt"
	"math"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/value"
)

// BatchHashAggregate is the chunk-at-a-time HashAggregate. The build phase
// consumes whole chunks: group keys are encoded with value.AppendKeys into a
// reused buffer, the hash-table probe runs in one tight loop per chunk, and
// budget/cancellation checks happen once per chunk instead of once per row.
// Rows are folded in stream order, so group first-seen order and float
// accumulation order are bit-identical to the row operator.
type BatchHashAggregate struct {
	execState
	batchCursor
	child   BatchOperator
	groupBy []expr.Compiled
	// groupCols, when fully resolved (no -1 entries), lets the build loop
	// read group keys straight out of the input row instead of calling the
	// compiled closures — the common GROUP BY col case.
	groupCols []int
	aggs      []*expr.Aggregate
	// aggCols, per aggregate, is the input column its argument reads when the
	// argument is a bare column (-1 otherwise): those aggregates fold with a
	// direct-column adder instead of evaluating the compiled argument.
	aggCols []int
	having  expr.Compiled
	schema  value.Schema

	groups   []*batchAggGroup
	reserved int64
	pos      int
	out      int64
	batch    *value.Batch
	// seq numbers input rows across chunks; a group records the seq that
	// created it so the spill path can restore first-seen emission order.
	seq       int64
	spiller   *aggSpiller
	spillNote string
}

// batchAggGroup is the slab-friendly twin of aggGroup: states live inline in
// a bulk-allocated block instead of one heap object per state.
type batchAggGroup struct {
	key       value.Row
	states    []expr.State
	firstSeen int64
}

// aggSlabSize is how many groups (and their states and key values) each slab
// block holds. Blocks are never reallocated, so *batchAggGroup pointers and
// key rows sliced from a block stay valid as more groups arrive.
const aggSlabSize = 256

// aggSlabs hands out groups, state blocks, and key storage from fixed-size
// blocks, cutting the per-group allocation count from ~5 (group, key row,
// state slice, one object per state) to amortized ~3 block allocations per
// aggSlabSize groups.
type aggSlabs struct {
	groups []batchAggGroup
	states []expr.State
	keys   []value.Value
	width  int // key values per group
	nAggs  int
}

// intGroupTable is an insert-only open-addressing hash table from int64
// group keys to groups, replacing the generic map on the aggregate's hottest
// probe path. For single-key aggregates it owns every integer-canonical key
// (see intKeyOf): value.AppendKey gives those keys an encoding tag that no
// other value kind produces, so partitioning them away from the byte-keyed
// index preserves grouping semantics — including Int 3 and Float 3.0
// landing in one group — while skipping the key encoding, the string
// allocation, and the generic map entirely.
type intGroupTable struct {
	keys []int64
	grps []*batchAggGroup
	n    int
	mask uint64
}

// intKeyOf mirrors value.AppendKey's numeric normalization: ok reports that
// v encodes with the integer tag, and k is the int64 that encoding carries.
// Two ok values group together iff their ks are equal, and an ok value never
// shares an encoding with a !ok one, so ok keys can live in their own table.
func intKeyOf(v value.Value) (k int64, ok bool) {
	switch v.K {
	case value.Int:
		return v.I, true
	case value.Float:
		f := v.F
		if f == math.Trunc(f) && f >= -9.223372036854775e18 && f <= 9.223372036854775e18 {
			return int64(f), true
		}
	}
	return 0, false
}

func newIntGroupTable(hint int) *intGroupTable {
	// Size for the hint at 2/3 load so a build that stays within it never
	// rehashes mid-stream.
	size := 512
	for 3*hint >= 2*size {
		size *= 2
	}
	return &intGroupTable{
		keys: make([]int64, size),
		grps: make([]*batchAggGroup, size),
		mask: uint64(size - 1),
	}
}

func (t *intGroupTable) slot(k int64) uint64 {
	// Fibonacci hashing spreads consecutive keys across the table.
	return (uint64(k) * 0x9E3779B97F4A7C15 >> 17) & t.mask
}

// get returns the group for k, or nil (empty slots have a nil group).
func (t *intGroupTable) get(k int64) *batchAggGroup {
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		g := t.grps[i]
		if g == nil || t.keys[i] == k {
			return g
		}
	}
}

// put inserts k → g (k must not be present), growing at 2/3 load.
func (t *intGroupTable) put(k int64, g *batchAggGroup) {
	if 3*t.n >= 2*len(t.keys) {
		old := *t
		t.keys = make([]int64, 2*len(old.keys))
		t.grps = make([]*batchAggGroup, 2*len(old.grps))
		t.mask = uint64(len(t.keys) - 1)
		for i, og := range old.grps {
			if og != nil {
				t.insert(old.keys[i], og)
			}
		}
	}
	t.insert(k, g)
	t.n++
}

func (t *intGroupTable) insert(k int64, g *batchAggGroup) {
	i := t.slot(k)
	for t.grps[i] != nil {
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.grps[i] = g
}

func (s *aggSlabs) alloc(keyVals []value.Value, aggs []*expr.Aggregate, firstSeen int64) *batchAggGroup {
	if len(s.groups) == cap(s.groups) {
		s.groups = make([]batchAggGroup, 0, aggSlabSize)
	}
	if len(s.states)+s.nAggs > cap(s.states) {
		s.states = make([]expr.State, 0, aggSlabSize*s.nAggs)
	}
	if len(s.keys)+s.width > cap(s.keys) {
		s.keys = make([]value.Value, 0, aggSlabSize*s.width)
	}
	s.groups = append(s.groups, batchAggGroup{firstSeen: firstSeen})
	grp := &s.groups[len(s.groups)-1]

	lo := len(s.states)
	s.states = s.states[:lo+s.nAggs]
	grp.states = s.states[lo : lo+s.nAggs : lo+s.nAggs]
	for i, a := range aggs {
		a.InitState(&grp.states[i])
	}

	klo := len(s.keys)
	s.keys = s.keys[:klo+s.width]
	grp.key = value.Row(s.keys[klo : klo+s.width : klo+s.width])
	copy(grp.key, keyVals)
	return grp
}

// NewBatchHashAggregate constructs the operator; schema lays out group
// columns followed by aggregate slots, exactly as NewHashAggregate.
func NewBatchHashAggregate(child BatchOperator, groupBy []expr.Compiled, aggs []*expr.Aggregate, having expr.Compiled, schema value.Schema) *BatchHashAggregate {
	return &BatchHashAggregate{child: child, groupBy: groupBy, aggs: aggs, having: having, schema: schema}
}

// SetGroupColumns installs direct input-column indexes for the group keys
// (one per groupBy expression, -1 when the key is not a bare column).
func (h *BatchHashAggregate) SetGroupColumns(cols []int) {
	if len(cols) != len(h.groupBy) {
		return
	}
	for _, c := range cols {
		if c < 0 {
			return
		}
	}
	h.groupCols = cols
}

// SetAggColumns installs direct input-column indexes for single-column
// aggregate arguments (one per aggregate, -1 when the argument is not a bare
// column). Unlike SetGroupColumns it tolerates -1 entries: each aggregate
// independently picks the direct-column adder or the generic one.
func (h *BatchHashAggregate) SetAggColumns(cols []int) {
	if len(cols) == len(h.aggs) {
		h.aggCols = cols
	}
}

// groupBytes matches HashAggregate's per-group estimate so the two paths
// charge the budget identically.
func (h *BatchHashAggregate) groupBytes(key value.Row) int64 {
	return 48 + resource.RowBytes(key) + 56*int64(len(h.aggs))
}

// Schema implements Operator.
func (h *BatchHashAggregate) Schema() value.Schema { return h.schema }

// BatchSize implements BatchOperator.
func (h *BatchHashAggregate) BatchSize() int { return h.child.BatchSize() }

// Open implements Operator.
func (h *BatchHashAggregate) Open() (err error) {
	if err := failpoint.Inject(failpoint.AggOpen); err != nil {
		return err
	}
	if err := h.child.Open(); err != nil {
		return err
	}
	defer func() {
		if cerr := h.child.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// aggIndexHint sizes the int-key table for the common analytic case up
	// front so it does not rehash while the build loop is hot; a few hundred
	// groups is typical for the iceberg workloads this path serves. The byte
	// index starts empty — integer keys never touch it.
	const aggIndexHint = 1024
	index := make(map[string]*batchAggGroup)
	h.groups = h.groups[:0]
	h.pos = 0
	h.out = 0
	h.seq = 0
	h.spiller = nil
	h.spillNote = ""
	h.reset()
	if h.batch == nil {
		h.batch = value.NewBatch(len(h.schema), h.child.BatchSize())
	}
	slabs := aggSlabs{width: len(h.groupBy), nAggs: len(h.aggs)}
	// adders is built lazily by the row-at-a-time branches: a fully columnar
	// build never evaluates per-row adders, so it never pays for them.
	var adders []func(*expr.State, value.Row) error
	keyVals := make([]value.Value, len(h.groupBy))
	var keyBuf []byte
	fastCols := h.groupCols != nil
	// Columnar build: eligible when every group key is a bare column and
	// every aggregate argument is a bare column (or COUNT(*)). Chunks that
	// arrive columnar then skip row materialization entirely — keys are read
	// from the key vector (typed loops for int and dictionary-string keys)
	// and each aggregate folds its argument column with a ColFold kernel.
	// Rows keep their stream order in both phases, so group first-seen order
	// and per-state accumulation order — and therefore every float bit —
	// match the row build exactly.
	colOK := fastCols && h.aggCols != nil
	if colOK {
		for k, a := range h.aggs {
			if a.Kind != expr.AggCountStar && h.aggCols[k] < 0 {
				colOK = false
				break
			}
		}
	}
	var grpScratch []*batchAggGroup
	var stateScratch []*expr.State
	// dictGrps caches group pointers per dictionary code of the key column
	// (valid only for the column it was built against): repeated strings
	// resolve to their group with one index load instead of a map probe.
	var dictGrps []*batchAggGroup
	var dictCol *value.Col
	// With a single group key, integer-canonical keys are partitioned into
	// intTab (see intKeyOf) and everything else stays in the byte-keyed
	// index; the two key spaces are disjoint by construction.
	var intTab *intGroupTable
	if len(h.groupBy) == 1 {
		intTab = newIntGroupTable(aggIndexHint)
	}
	singleCol := -1
	if fastCols && len(h.groupCols) == 1 {
		singleCol = h.groupCols[0]
	}
	for {
		if err := h.stepChunk(); err != nil {
			return err
		}
		b, err := h.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		var chunkBytes int64
		n := b.Len()
		if h.spiller != nil {
			// Overflow mode: every resident group has been flushed; rows
			// stream straight to their hash partition on disk.
			for i := 0; i < n; i++ {
				h.seq++
				if err := h.spiller.spillRow(h.seq, b.Row(i)); err != nil {
					return err
				}
			}
			continue
		}
		if cols := b.Cols(); colOK && cols != nil {
			sel := b.Sel()
			grps := grpScratch[:0]
			if cap(grps) < len(sel) {
				grps = make([]*batchAggGroup, 0, len(sel))
			}
			if singleCol >= 0 {
				kc := cols.Col(singleCol)
				switch {
				case kc.Vals == nil && kc.Kind == value.Int && !kc.HasNulls():
					// Int key vector: the key is already integer-canonical,
					// so the open-addressing probe runs on raw int64s.
					ints := kc.Ints
					for _, si := range sel {
						h.seq++
						ik := ints[si]
						grp := intTab.get(ik)
						if grp == nil {
							keyVals[0] = value.NewInt(ik)
							grp = slabs.alloc(keyVals, h.aggs, h.seq)
							chunkBytes += h.groupBytes(grp.key)
							intTab.put(ik, grp)
							h.groups = append(h.groups, grp)
						}
						grps = append(grps, grp)
					}
				case kc.Vals == nil && kc.Kind == value.Str && !kc.HasNulls():
					// Dictionary key vector: group identity is the string,
					// but equal strings share a code, so each code resolves
					// its group once (through the byte index, which keeps
					// identity correct across differently-coded chunks) and
					// every repeat is a single array load.
					if dictCol != kc || len(dictGrps) != len(kc.Dict) {
						dictGrps = make([]*batchAggGroup, len(kc.Dict))
						dictCol = kc
					}
					codes := kc.Codes
					for _, si := range sel {
						h.seq++
						code := codes[si]
						grp := dictGrps[code]
						if grp == nil {
							keyVals[0] = value.NewStr(kc.Dict[code])
							keyBuf = value.AppendKeys(keyBuf[:0], keyVals)
							var ok bool
							if grp, ok = index[string(keyBuf)]; !ok {
								grp = slabs.alloc(keyVals, h.aggs, h.seq)
								chunkBytes += h.groupBytes(grp.key)
								index[string(keyBuf)] = grp
								h.groups = append(h.groups, grp)
							}
							dictGrps[code] = grp
						}
						grps = append(grps, grp)
					}
				default:
					// Nullable, float, bool, or mixed key column: cells are
					// reconstructed one at a time, same partition rule as the
					// row path (intKeyOf keeps Int 3 ≡ Float 3.0).
					for _, si := range sel {
						h.seq++
						v := kc.Value(int(si))
						var grp *batchAggGroup
						if ik, isInt := intKeyOf(v); isInt {
							if grp = intTab.get(ik); grp == nil {
								keyVals[0] = v
								grp = slabs.alloc(keyVals, h.aggs, h.seq)
								chunkBytes += h.groupBytes(grp.key)
								intTab.put(ik, grp)
								h.groups = append(h.groups, grp)
							}
						} else {
							keyVals[0] = v
							keyBuf = value.AppendKeys(keyBuf[:0], keyVals)
							var ok bool
							if grp, ok = index[string(keyBuf)]; !ok {
								grp = slabs.alloc(keyVals, h.aggs, h.seq)
								chunkBytes += h.groupBytes(grp.key)
								index[string(keyBuf)] = grp
								h.groups = append(h.groups, grp)
							}
						}
						grps = append(grps, grp)
					}
				}
			} else {
				// Zero or several bare-column keys: stage cells into keyVals
				// straight from the column vectors.
				for _, si := range sel {
					h.seq++
					for k, c := range h.groupCols {
						keyVals[k] = cols.Col(c).Value(int(si))
					}
					var grp *batchAggGroup
					ik, isInt := int64(0), false
					if intTab != nil {
						ik, isInt = intKeyOf(keyVals[0])
					}
					if isInt {
						if grp = intTab.get(ik); grp == nil {
							grp = slabs.alloc(keyVals, h.aggs, h.seq)
							chunkBytes += h.groupBytes(grp.key)
							intTab.put(ik, grp)
							h.groups = append(h.groups, grp)
						}
					} else {
						keyBuf = value.AppendKeys(keyBuf[:0], keyVals)
						var ok bool
						if grp, ok = index[string(keyBuf)]; !ok {
							grp = slabs.alloc(keyVals, h.aggs, h.seq)
							chunkBytes += h.groupBytes(grp.key)
							index[string(keyBuf)] = grp
							h.groups = append(h.groups, grp)
						}
					}
					grps = append(grps, grp)
				}
			}
			grpScratch = grps
			// Fold phase: one ColFold kernel per aggregate over the whole
			// chunk. Each state still receives its cells in stream order.
			if cap(stateScratch) < len(grps) {
				stateScratch = make([]*expr.State, len(grps))
			}
			ss := stateScratch[:len(grps)]
			for k, a := range h.aggs {
				// ColFold's kernels are capture-free, so resolving them per
				// chunk costs a switch, not an allocation.
				fold := a.ColFold()
				for x, g := range grps {
					ss[x] = &g.states[k]
				}
				var ac *value.Col
				if h.aggCols[k] >= 0 {
					ac = cols.Col(h.aggCols[k])
				}
				if err := fold(ss, ac, sel); err != nil {
					return err
				}
			}
		} else if singleCol >= 0 {
			// GROUP BY over one bare column: the key is read straight from
			// the row and probes the open-addressing table, no encoding and
			// no keyVals staging on the hit path.
			if adders == nil {
				adders = h.buildAdders()
			}
			for i := 0; i < n; i++ {
				r := b.Row(i)
				h.seq++
				v := r[singleCol]
				var grp *batchAggGroup
				if ik, isInt := intKeyOf(v); isInt {
					if grp = intTab.get(ik); grp == nil {
						keyVals[0] = v
						grp = slabs.alloc(keyVals, h.aggs, h.seq)
						chunkBytes += h.groupBytes(grp.key)
						intTab.put(ik, grp)
						h.groups = append(h.groups, grp)
					}
				} else {
					keyVals[0] = v
					keyBuf = value.AppendKeys(keyBuf[:0], keyVals)
					var ok bool
					grp, ok = index[string(keyBuf)]
					if !ok {
						grp = slabs.alloc(keyVals, h.aggs, h.seq)
						chunkBytes += h.groupBytes(grp.key)
						index[string(keyBuf)] = grp
						h.groups = append(h.groups, grp)
					}
				}
				for k := range adders {
					if err := adders[k](&grp.states[k], r); err != nil {
						return err
					}
				}
			}
		} else {
			if adders == nil {
				adders = h.buildAdders()
			}
			for i := 0; i < n; i++ {
				r := b.Row(i)
				h.seq++
				if fastCols {
					for k, c := range h.groupCols {
						keyVals[k] = r[c]
					}
				} else {
					for k, g := range h.groupBy {
						v, err := g(r)
						if err != nil {
							return err
						}
						keyVals[k] = v
					}
				}
				var grp *batchAggGroup
				ik, isInt := int64(0), false
				if intTab != nil {
					ik, isInt = intKeyOf(keyVals[0])
				}
				if isInt {
					if grp = intTab.get(ik); grp == nil {
						grp = slabs.alloc(keyVals, h.aggs, h.seq)
						chunkBytes += h.groupBytes(grp.key)
						intTab.put(ik, grp)
						h.groups = append(h.groups, grp)
					}
				} else {
					keyBuf = value.AppendKeys(keyBuf[:0], keyVals)
					var ok bool
					grp, ok = index[string(keyBuf)]
					if !ok {
						grp = slabs.alloc(keyVals, h.aggs, h.seq)
						chunkBytes += h.groupBytes(grp.key)
						index[string(keyBuf)] = grp
						h.groups = append(h.groups, grp)
					}
				}
				for k := range adders {
					if err := adders[k](&grp.states[k], r); err != nil {
						return err
					}
				}
			}
		}
		// One budget charge per chunk covers every group the chunk created.
		if chunkBytes > 0 {
			if err := h.exec().Charge("hash aggregation", chunkBytes); err != nil {
				// The chunk's rows are already folded into resident states,
				// so the spill tier (when available) flushes every group —
				// including this chunk's — and later chunks stream to disk.
				if serr := h.startSpill(); serr != nil {
					return serr
				}
				if h.spiller == nil {
					return err
				}
				index = nil
				intTab = nil
				dictGrps, dictCol = nil, nil
			} else {
				h.reserved += chunkBytes
			}
		}
	}
	if len(h.groupBy) == 0 && len(h.groups) == 0 && h.spiller == nil {
		// Scalar aggregate over empty input still yields one row. (With the
		// spiller active at least one row reached it, so the merge rebuilds
		// the scalar group.)
		h.groups = append(h.groups, slabs.alloc(nil, h.aggs, 0))
	}
	return nil
}

// buildAdders compiles the per-row fold closures the row-at-a-time build
// branches use (direct-column adders where the argument is a bare column).
func (h *BatchHashAggregate) buildAdders() []func(*expr.State, value.Row) error {
	adders := make([]func(*expr.State, value.Row) error, len(h.aggs))
	for i, a := range h.aggs {
		if h.aggCols != nil && h.aggCols[i] >= 0 {
			adders[i] = a.AdderCol(h.aggCols[i])
		} else {
			adders[i] = a.Adder()
		}
	}
	return adders
}

// startSpill flips the operator into overflow mode: flush every resident
// group (their states already include the chunk whose charge failed) and
// release the budget reservation. No-op leaving h.spiller nil when no spill
// manager is attached.
func (h *BatchHashAggregate) startSpill() error {
	sp, err := newAggSpiller(h.exec(), h.groupBy, h.aggs, h.having, len(h.schema))
	if sp == nil || err != nil {
		return err
	}
	for _, grp := range h.groups {
		states := grp.states
		if err := sp.spillGroup(grp.firstSeen, grp.key, func(i int) *expr.State { return &states[i] }); err != nil {
			_ = sp.discard()
			return err
		}
	}
	h.exec().Release(h.reserved)
	h.reserved = 0
	h.groups = h.groups[:0]
	h.spiller = sp
	return nil
}

// NextBatch implements BatchOperator.
func (h *BatchHashAggregate) NextBatch() (*value.Batch, error) {
	if err := failpoint.Inject(failpoint.AggNext); err != nil {
		return nil, err
	}
	if err := h.stepChunk(); err != nil {
		return nil, err
	}
	out := h.batch
	out.Reset()
	size := h.child.BatchSize()
	if h.spiller != nil {
		if !h.spiller.merged {
			if err := h.spiller.merge(); err != nil {
				return nil, err
			}
			h.spillNote = h.spiller.note
		}
		for out.Len() < size {
			r, err := h.spiller.next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				break
			}
			copy(out.PushRow(), r)
		}
		if out.Len() == 0 {
			return nil, nil
		}
		h.out += int64(out.Len())
		return out, nil
	}
	for h.pos < len(h.groups) && out.Len() < size {
		grp := h.groups[h.pos]
		h.pos++
		dst := out.PushRow()
		n := copy(dst, grp.key)
		for i := range grp.states {
			dst[n+i] = grp.states[i].Value()
		}
		if h.having != nil {
			ok, err := expr.EvalBool(h.having, dst)
			if err != nil {
				return nil, err
			}
			if !ok {
				out.PopRow()
				continue
			}
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	h.out += int64(out.Len())
	return out, nil
}

// Next implements Operator.
func (h *BatchHashAggregate) Next() (value.Row, error) { return h.next(h.NextBatch) }

// Close implements Operator.
func (h *BatchHashAggregate) Close() error {
	h.exec().Release(h.reserved)
	h.reserved = 0
	h.groups = nil
	var spillErr error
	if h.spiller != nil {
		spillErr = containPanic("spill discard", h.spiller.discard)
		h.spiller = nil
	}
	if err := failpoint.Inject(failpoint.AggClose); err != nil {
		return err
	}
	return spillErr
}

// Describe implements Operator.
func (h *BatchHashAggregate) Describe() string {
	d := fmt.Sprintf("HashAggregate (%d group keys, %d aggregates)", len(h.groupBy), len(h.aggs))
	if h.having != nil {
		d += " + HAVING filter"
	}
	return d + h.spillNote
}

// Children implements Operator.
func (h *BatchHashAggregate) Children() []Operator { return []Operator{h.child} }

// ActualRows implements rowCounter.
func (h *BatchHashAggregate) ActualRows() int64 { return h.out }
