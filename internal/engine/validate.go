package engine

import (
	"fmt"

	"smarticeberg/internal/value"
)

// Validate enables plan-invariant checking: when set, the planner runs
// ValidatePlan over every operator tree it builds before handing it to the
// caller. It is a debug flag — off by default in production paths, switched
// on by the test packages so every planned query in the suite is checked.
var Validate bool

// ValidatePlan walks a built operator tree and asserts the structural
// invariants the executor relies on but never re-checks at runtime:
//
//   - every operator reports a schema consistent with its inputs
//     (pass-through operators preserve the child schema; joins concatenate;
//     projections and aggregates have one column per output expression);
//   - materialized rows match the declared arity, so column offsets compiled
//     against the schema cannot read out of range;
//   - fully-qualified column names are unambiguous after a join, so later
//     Resolve calls cannot silently bind to the wrong input.
//
// A violation is a planner bug, not a data error, which is why this is a
// validator rather than a runtime check.
func ValidatePlan(op Operator) error {
	if op == nil {
		return fmt.Errorf("plan validation: nil operator")
	}
	if err := validateNode(op); err != nil {
		return err
	}
	if err := validateBinding(op, op.Children()); err != nil {
		return err
	}
	for _, c := range op.Children() {
		if err := ValidatePlan(c); err != nil {
			return err
		}
	}
	return nil
}

// execHolder is satisfied by every operator embedding execState.
type execHolder interface{ exec() *ExecContext }

// validateBinding asserts that a bound operator's children are bound to the
// same ExecContext. A tree spanning two contexts would split its budget
// accounting across budgets and — under spilling — write run files owned by
// one query's spill directory while another query's cleanup removes them,
// so mixed binding is a planner bug even though each half would "work".
func validateBinding(op Operator, children []Operator) error {
	h, ok := op.(execHolder)
	if !ok || h.exec() == nil {
		return nil
	}
	for _, c := range children {
		ch, ok := c.(execHolder)
		if !ok || ch.exec() == nil {
			continue
		}
		if ch.exec() != h.exec() {
			return fmt.Errorf("plan validation: %s: child %s is bound to a different ExecContext",
				op.Describe(), c.Describe())
		}
	}
	return nil
}

func validateNode(op Operator) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("plan validation: %s: %s", op.Describe(), fmt.Sprintf(format, args...))
	}
	switch o := op.(type) {
	case *MemScan:
		width := len(o.schema)
		for i, r := range o.rows {
			if len(r) != width {
				return bad("row %d has %d values, schema declares %d columns", i, len(r), width)
			}
		}
	case *Filter:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("filter must preserve its child schema: %v", err)
		}
	case *Project:
		if len(o.exprs) != len(o.schema) {
			return bad("%d output expressions but %d schema columns", len(o.exprs), len(o.schema))
		}
	case *Distinct:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("distinct must preserve its child schema: %v", err)
		}
	case *Sort:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("sort must preserve its child schema: %v", err)
		}
		if len(o.keys) != len(o.desc) {
			return bad("%d sort keys but %d direction flags", len(o.keys), len(o.desc))
		}
	case *Limit:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("limit must preserve its child schema: %v", err)
		}
		if o.n < 0 {
			return bad("negative limit %d", o.n)
		}
	case *NLJoin:
		want := len(o.outer.Schema()) + len(o.inner.Schema())
		if len(o.schema) != want {
			return bad("schema has %d columns, outer+inner have %d", len(o.schema), want)
		}
		if err := uniqueQualified(o.schema); err != nil {
			return bad("%v", err)
		}
	case *HashAggregate:
		if len(o.schema) != len(o.groupBy)+len(o.aggs) {
			return bad("schema has %d columns, expected %d group keys + %d aggregates",
				len(o.schema), len(o.groupBy), len(o.aggs))
		}
	case *ParallelJoinAgg:
		if o.join == nil {
			return bad("missing fused join input")
		}
		if len(o.schema) != len(o.groupBy)+len(o.aggs) {
			return bad("schema has %d columns, expected %d group keys + %d aggregates",
				len(o.schema), len(o.groupBy), len(o.aggs))
		}
		if o.workers <= 0 {
			return bad("non-positive worker count %d", o.workers)
		}
	case *reschema:
		if len(o.schema) != len(o.child.Schema()) {
			return bad("relabeled schema has %d columns, child has %d",
				len(o.schema), len(o.child.Schema()))
		}
	case *BatchMemScan:
		width := len(o.schema)
		for i, r := range o.rows {
			if len(r) != width {
				return bad("row %d has %d values, schema declares %d columns", i, len(r), width)
			}
		}
		if o.size <= 0 {
			return bad("non-positive batch size %d", o.size)
		}
	case *BatchFilter:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("filter must preserve its child schema: %v", err)
		}
	case *BatchProject:
		if len(o.exprs) != len(o.schema) {
			return bad("%d output expressions but %d schema columns", len(o.exprs), len(o.schema))
		}
	case *BatchHashAggregate:
		if len(o.schema) != len(o.groupBy)+len(o.aggs) {
			return bad("schema has %d columns, expected %d group keys + %d aggregates",
				len(o.schema), len(o.groupBy), len(o.aggs))
		}
		if o.groupCols != nil && len(o.groupCols) != len(o.groupBy) {
			return bad("%d group-column indexes for %d group keys", len(o.groupCols), len(o.groupBy))
		}
	case *BatchNLJoin:
		want := len(o.outer.Schema()) + len(o.inner.Schema())
		if len(o.schema) != want {
			return bad("schema has %d columns, outer+inner have %d", len(o.schema), want)
		}
		if err := uniqueQualified(o.schema); err != nil {
			return bad("%v", err)
		}
		if o.size <= 0 {
			return bad("non-positive batch size %d", o.size)
		}
	case *batchAdapter:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("batch adapter must preserve its child schema: %v", err)
		}
		if o.size <= 0 {
			return bad("non-positive batch size %d", o.size)
		}
	case *rowsAdapter:
		if err := sameSchema(o.Schema(), o.child.Schema()); err != nil {
			return bad("row adapter must preserve its child schema: %v", err)
		}
	case *batchReschema:
		if len(o.schema) != len(o.child.Schema()) {
			return bad("relabeled schema has %d columns, child has %d",
				len(o.schema), len(o.child.Schema()))
		}
	}
	return nil
}

// sameSchema checks that a pass-through operator reports exactly its child's
// column layout (same arity, names, and types, position by position).
func sameSchema(got, want value.Schema) error {
	if len(got) != len(want) {
		return fmt.Errorf("arity %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("column %d is %s, child has %s", i, got[i].String(), want[i].String())
		}
	}
	return nil
}

// uniqueQualified rejects duplicate fully-qualified names in a join output.
// Bare duplicates are legal (SELECT a.x, a.x), but two distinct join inputs
// must never contribute the same qualifier.column pair, or Resolve over the
// concatenated schema becomes ambiguous.
func uniqueQualified(s value.Schema) error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Qualifier == "" {
			continue
		}
		key := c.Qualifier + "." + c.Name
		if seen[key] {
			return fmt.Errorf("duplicate qualified column %s in join output", key)
		}
		seen[key] = true
	}
	return nil
}
