package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// evenKern is evenPred's typed selection kernel (v % 2 == 0 over the int v
// column), verdict-identical to the compiled closure.
func evenKern(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
	vs := cols.Col(1).Ints
	if cand == nil {
		for i := lo; i < hi; i++ {
			if vs[i]%2 == 0 {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	for _, si := range cand {
		if vs[si]%2 == 0 {
			out = append(out, si)
		}
	}
	return out, nil
}

// TestParallelBatchScanEquivalence requires the morsel-parallel scan to be
// byte-identical to the row pipeline for every (chunk size, worker count)
// combination, with and without a fused predicate.
func TestParallelBatchScanEquivalence(t *testing.T) {
	testleak.Check(t)
	rows := batchEquivRows(3000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	for _, fused := range []bool{false, true} {
		var ref Operator = NewMemScan("t", batchEquivSchema, rows)
		if fused {
			ref = NewFilter(ref, evenPred, "even(v)")
		}
		want, err := RunExec(nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{1, 7, 64, 1024} {
			for _, workers := range []int{1, 2, 4} {
				label := fmt.Sprintf("fused=%v/size=%d/workers=%d", fused, size, workers)
				ps := NewParallelBatchScan("t", batchEquivSchema, rows, cols, size, workers)
				if fused {
					ps.FuseKernel(evenPred, "even(v)", evenKern)
				}
				got, err := RunExecBatch(nil, ps, size)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertIdenticalRows(t, label, got, want)
			}
		}
	}
}

// TestParallelBatchScanChunkIdentity is stronger than row equivalence: the
// parallel scan must deliver the same chunks, with the same boundaries, in
// the same order as the sequential columnar scan — the property that makes
// every downstream per-chunk behavior (budget charges, group first-seen
// order) independent of the worker count.
func TestParallelBatchScanChunkIdentity(t *testing.T) {
	testleak.Check(t)
	rows := batchEquivRows(2500)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	const size = 64
	seq := NewBatchMemScan("t", batchEquivSchema, rows, size)
	seq.SetColumns(cols)
	seq.FusePredicate(evenPred, "even(v)")
	seq.FuseSelKernel(evenKern)
	par := NewParallelBatchScan("t", batchEquivSchema, rows, cols, size, 3)
	par.FuseKernel(evenPred, "even(v)", evenKern)
	if err := seq.Open(); err != nil {
		t.Fatal(err)
	}
	if err := par.Open(); err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	defer par.Close()
	for chunk := 0; ; chunk++ {
		sb, err := seq.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		pb, err := par.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if (sb == nil) != (pb == nil) {
			t.Fatalf("chunk %d: sequential done=%v, parallel done=%v", chunk, sb == nil, pb == nil)
		}
		if sb == nil {
			return
		}
		if sb.Len() != pb.Len() {
			t.Fatalf("chunk %d: sequential %d rows, parallel %d rows", chunk, sb.Len(), pb.Len())
		}
		for i := 0; i < sb.Len(); i++ {
			sr, pr := sb.Row(i), pb.Row(i)
			for j := range sr {
				if !sameValue(sr[j], pr[j]) {
					t.Fatalf("chunk %d row %d col %d: parallel %v, sequential %v", chunk, i, j, pr[j], sr[j])
				}
			}
		}
	}
}

// morselFaultPlan feeds a 4-worker parallel scan into a columnar hash
// aggregate, so an injected fault must unwind worker goroutines and release
// every budget reservation.
func morselFaultPlan(workers int) Operator {
	rows := batchEquivRows(2000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	ps := NewParallelBatchScan("t", batchEquivSchema, rows, cols, 64, workers)
	ps.FuseKernel(evenPred, "even(v)", evenKern)
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCountStar},
		{Kind: expr.AggSum, Arg: colAt(2)},
	}
	aggSchema := value.Schema{
		{Name: "g", Type: value.Int},
		{Name: "count", Type: value.Int},
		{Name: "sum", Type: value.Float},
	}
	agg := NewBatchHashAggregate(ps, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	agg.SetGroupColumns([]int{0})
	agg.SetAggColumns([]int{-1, 2})
	return agg
}

// TestMorselFaultMatrix injects an error and a panic at every failpoint site
// the parallel scan crosses — including both sides of the morsel hand-off —
// and asserts one typed error, zero leaked goroutines, and a drained budget.
func TestMorselFaultMatrix(t *testing.T) {
	points := []string{
		failpoint.ScanOpen, failpoint.ScanNext, failpoint.ScanClose,
		failpoint.FilterNext,
		failpoint.MorselEnqueue, failpoint.MorselDrain,
	}
	for _, pt := range points {
		for _, mode := range []string{"error", "panic"} {
			t.Run(fmt.Sprintf("%s/%s", pt, mode), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(pt, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(pt, failpoint.Once(failpoint.Panic("morsel matrix")))
				}
				budget := resource.NewBudget(1 << 30)
				rows, err := RunExecBatch(NewExecContext(nil, budget), morselFaultPlan(4), 64)
				if err == nil {
					t.Fatalf("%s/%s: query succeeded with %d rows, want injected failure", pt, mode, len(rows))
				}
				if hits := failpoint.Hits(pt); hits == 0 {
					t.Fatalf("%s: never fired — the site is not reachable in this plan", pt)
				}
				switch mode {
				case "error":
					if !errors.Is(err, errBoom) {
						t.Fatalf("%s: error = %v, want the injected errBoom", pt, err)
					}
				case "panic":
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("%s: error = %v (%T), want *PanicError", pt, err, err)
					}
				}
				if used := budget.Used(); used != 0 {
					t.Fatalf("%s/%s: %d bytes still reserved after failure; resources leaked", pt, mode, used)
				}
			})
		}
	}
}

// TestParallelBatchScanCancelMidStream cancels the query between chunks: the
// scan must surface the cancellation as a typed error and every worker must
// exit before Close returns.
func TestParallelBatchScanCancelMidStream(t *testing.T) {
	testleak.Check(t)
	rows := batchEquivRows(5000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ps := NewParallelBatchScan("t", batchEquivSchema, rows, cols, 64, 4)
	ps.FuseKernel(evenPred, "even(v)", evenKern)
	Bind(ps, NewExecContext(ctx, nil))
	if err := ps.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.NextBatch(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	cancel()
	var err error
	for i := 0; i < 1000; i++ {
		var b *value.Batch
		b, err = ps.NextBatch()
		if err != nil || b == nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: err = %v, want context.Canceled", err)
	}
	if cerr := ps.Close(); cerr != nil {
		t.Fatalf("close after cancel: %v", cerr)
	}
}

// TestParallelBatchScanKernelPanic panics inside a worker's kernel: the
// query must fail with a *PanicError, not crash the process, and leak
// nothing.
func TestParallelBatchScanKernelPanic(t *testing.T) {
	testleak.Check(t)
	rows := batchEquivRows(2000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	ps := NewParallelBatchScan("t", batchEquivSchema, rows, cols, 64, 4)
	boom := func(cols *value.Columns, lo, hi int, cand, out value.Sel) (value.Sel, error) {
		if lo >= 640 {
			panic("kernel boom")
		}
		return evenKern(cols, lo, hi, cand, out)
	}
	ps.FuseKernel(evenPred, "even(v)", boom)
	_, err := RunExecBatch(nil, ps, 64)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
}

// TestParallelBatchScanReopenAndEarlyClose covers the two lifecycle edges:
// a rescan (Open after a full drain) must produce identical output with a
// fresh worker pool, and a Close before the stream is drained must still
// join every worker.
func TestParallelBatchScanReopenAndEarlyClose(t *testing.T) {
	testleak.Check(t)
	rows := batchEquivRows(3000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	ps := NewParallelBatchScan("t", batchEquivSchema, rows, cols, 64, 4)
	ps.FuseKernel(evenPred, "even(v)", evenKern)
	first, err := RunExecBatch(nil, ps, 64)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunExecBatch(nil, ps, 64)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, "reopen", second, first)

	// Early close: open, take one chunk, abandon the rest.
	if err := ps.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
}

// mustParseWhere parses a bare predicate through a wrapper SELECT.
func mustParseWhere(t *testing.T, where string) sqlparser.Expr {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT g FROM t WHERE " + where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return sel.Where
}

// stubColSource hands Batchify a pre-built column-major table form, standing
// in for storage.Table.
type stubColSource struct{ cols *value.Columns }

func (s stubColSource) Columns() *value.Columns { return s.cols }

// TestBatchifyWorkersRewrite checks the planner-side selection logic: a
// columnar catalog scan becomes a ParallelBatchScan only when workers > 1,
// a kernel-compilable filter fuses into it, and a predicate outside the
// kernel fragment runs downstream instead.
func TestBatchifyWorkersRewrite(t *testing.T) {
	rows := batchEquivRows(3000)
	cols := value.ColumnsOf(len(batchEquivSchema), rows)
	newScan := func() *MemScan {
		ms := NewMemScan("t", batchEquivSchema, rows)
		ms.SetColumnSource(stubColSource{cols})
		return ms
	}

	if _, ok := BatchifyWorkers(newScan(), 64, 4).(*ParallelBatchScan); !ok {
		t.Fatalf("bare columnar scan with workers=4: want *ParallelBatchScan")
	}
	if _, ok := BatchifyWorkers(newScan(), 64, 1).(*BatchMemScan); !ok {
		t.Fatalf("workers=1: want sequential *BatchMemScan")
	}
	if _, ok := BatchifyWorkers(newScan(), 4096, 4).(*BatchMemScan); !ok {
		t.Fatalf("single-morsel table: want sequential *BatchMemScan")
	}

	// v >= 1500 is inside the kernel fragment: the filter must fuse.
	pred := func(r value.Row) (value.Value, error) {
		return value.NewBool(r[1].I >= 1500), nil
	}
	filt := NewFilter(newScan(), pred, "v >= 1500")
	filt.SetExpr(mustParseWhere(t, "v >= 1500"))
	ps, ok := BatchifyWorkers(filt, 64, 4).(*ParallelBatchScan)
	if !ok || !ps.Fused() {
		t.Fatalf("kernel-compilable filter over parallel scan: want fused *ParallelBatchScan, got %T (fused=%v)", ps, ok && ps.Fused())
	}
	want, err := RunExec(nil, NewFilter(NewMemScan("t", batchEquivSchema, rows), pred, "v >= 1500"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunExecBatch(nil, ps, 64)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, "fused parallel filter", got, want)

	// v + 0 >= 1500 is outside the fragment: the scan stays parallel and the
	// filter compacts its chunks downstream.
	filt2 := NewFilter(newScan(), pred, "v + 0 >= 1500")
	filt2.SetExpr(mustParseWhere(t, "v + 0 >= 1500"))
	bf, ok := BatchifyWorkers(filt2, 64, 4).(*BatchFilter)
	if !ok {
		t.Fatalf("non-kernel filter: want *BatchFilter over the parallel scan")
	}
	if _, ok := bf.child.(*ParallelBatchScan); !ok {
		t.Fatalf("non-kernel filter child: want *ParallelBatchScan, got %T", bf.child)
	}
	got2, err := RunExecBatch(nil, bf, 64)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, "downstream parallel filter", got2, want)
}
