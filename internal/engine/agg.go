package engine

import (
	"fmt"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/value"
)

// HashAggregate groups its input by the groupBy expressions, computes
// aggregate states per group, and emits one row per group laid out as
// [groupValues..., aggregateValues...]. A HAVING predicate (compiled over
// that output layout) filters groups. With no groupBy expressions the
// aggregate is scalar: exactly one group, even over empty input.
type HashAggregate struct {
	execState
	child   Operator
	groupBy []expr.Compiled
	aggs    []*expr.Aggregate
	having  expr.Compiled
	schema  value.Schema

	groups   []*aggGroup
	reserved int64
	pos      int
	out      int64
	outRow   value.Row
	// seq numbers input rows; a group records the seq that created it so the
	// spill path can restore first-seen emission order.
	seq       int64
	spiller   *aggSpiller
	spillNote string
	// groupCols caches direct input-column indexes for the group keys (-1
	// when a key is not a bare column reference); Batchify hands them to the
	// batch aggregate so the common GROUP BY col case skips closure calls.
	groupCols []int
	// aggCols likewise caches direct input-column indexes for single-column
	// aggregate arguments (-1 when the argument is not a bare column).
	aggCols []int
}

// groupBytes estimates the resident size of one aggregate group: header,
// materialized key row, and one state per aggregate.
func (h *HashAggregate) groupBytes(key value.Row) int64 {
	return 48 + resource.RowBytes(key) + 56*int64(len(h.aggs))
}

type aggGroup struct {
	key       value.Row
	states    []*expr.State
	firstSeen int64
}

// NewHashAggregate constructs the operator. schema describes the output
// layout (group columns followed by aggregate slots).
func NewHashAggregate(child Operator, groupBy []expr.Compiled, aggs []*expr.Aggregate, having expr.Compiled, schema value.Schema) *HashAggregate {
	return &HashAggregate{child: child, groupBy: groupBy, aggs: aggs, having: having, schema: schema}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() value.Schema { return h.schema }

// SetGroupColumns records direct input-column indexes for the group keys
// (one per groupBy expression, -1 when a key is not a bare column). The row
// operator keeps evaluating the compiled expressions; the indexes exist so
// Batchify can hand them to BatchHashAggregate's fast path.
func (h *HashAggregate) SetGroupColumns(cols []int) {
	if len(cols) == len(h.groupBy) {
		h.groupCols = cols
	}
}

// SetAggColumns records direct input-column indexes for single-column
// aggregate arguments (one per aggregate, -1 when the argument is not a bare
// column). Like SetGroupColumns, the row operator only stores them so
// Batchify can hand them to BatchHashAggregate's specialized adders.
func (h *HashAggregate) SetAggColumns(cols []int) {
	if len(cols) == len(h.aggs) {
		h.aggCols = cols
	}
}

// Open implements Operator.
func (h *HashAggregate) Open() (err error) {
	if err := failpoint.Inject(failpoint.AggOpen); err != nil {
		return err
	}
	if err := h.child.Open(); err != nil {
		return err
	}
	defer func() {
		if cerr := h.child.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	index := make(map[string]*aggGroup)
	h.groups = h.groups[:0]
	h.pos = 0
	h.out = 0
	h.seq = 0
	h.spiller = nil
	h.spillNote = ""
	h.outRow = make(value.Row, len(h.schema))
	keyVals := make([]value.Value, len(h.groupBy))
	var keyBuf []byte
	for {
		if err := h.step(); err != nil {
			return err
		}
		r, err := h.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		h.seq++
		if h.spiller != nil {
			// Overflow mode: every resident group has been flushed; rows
			// stream straight to their hash partition on disk.
			if err := h.spiller.spillRow(h.seq, r); err != nil {
				return err
			}
			continue
		}
		for i, g := range h.groupBy {
			v, err := g(r)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		keyBuf = keyBuf[:0]
		for _, v := range keyVals {
			keyBuf = value.AppendKey(keyBuf, v)
		}
		grp, ok := index[string(keyBuf)]
		if !ok {
			grp = &aggGroup{key: append(value.Row(nil), keyVals...), states: make([]*expr.State, len(h.aggs)), firstSeen: h.seq}
			for i, a := range h.aggs {
				grp.states[i] = a.NewState()
			}
			n := h.groupBytes(grp.key)
			if err := h.exec().Charge("hash aggregation", n); err != nil {
				// The failing group is not resident yet: start the spill
				// tier (when available), flush the resident groups, and
				// route this row to disk like the rest of the tail.
				sp, serr := h.startSpill()
				if serr != nil {
					return serr
				}
				if sp == nil {
					return err
				}
				index = nil
				if err := sp.spillRow(h.seq, r); err != nil {
					return err
				}
				continue
			}
			h.reserved += n
			index[string(keyBuf)] = grp
			h.groups = append(h.groups, grp)
		}
		for _, st := range grp.states {
			if err := st.Add(r); err != nil {
				return err
			}
		}
	}
	if len(h.groupBy) == 0 && len(h.groups) == 0 && h.spiller == nil {
		// Scalar aggregate over empty input still yields one row. (With the
		// spiller active at least one row reached it, so the merge rebuilds
		// the scalar group.)
		grp := &aggGroup{states: make([]*expr.State, len(h.aggs))}
		for i, a := range h.aggs {
			grp.states[i] = a.NewState()
		}
		h.groups = append(h.groups, grp)
	}
	return nil
}

// startSpill flips the operator into overflow mode: flush every resident
// group to disk and release their budget reservation. Returns (nil, nil)
// when no spill manager is attached — the caller then surfaces the original
// budget error.
func (h *HashAggregate) startSpill() (*aggSpiller, error) {
	sp, err := newAggSpiller(h.exec(), h.groupBy, h.aggs, h.having, len(h.schema))
	if sp == nil || err != nil {
		return nil, err
	}
	for _, grp := range h.groups {
		states := grp.states
		if err := sp.spillGroup(grp.firstSeen, grp.key, func(i int) *expr.State { return states[i] }); err != nil {
			_ = sp.discard()
			return nil, err
		}
	}
	h.exec().Release(h.reserved)
	h.reserved = 0
	h.groups = h.groups[:0]
	h.spiller = sp
	return sp, nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (value.Row, error) {
	if err := failpoint.Inject(failpoint.AggNext); err != nil {
		return nil, err
	}
	if h.spiller != nil {
		if err := h.step(); err != nil {
			return nil, err
		}
		if !h.spiller.merged {
			if err := h.spiller.merge(); err != nil {
				return nil, err
			}
			h.spillNote = h.spiller.note
		}
		r, err := h.spiller.next()
		if err != nil {
			return nil, err
		}
		if r != nil {
			h.out++
		}
		return r, nil
	}
	for h.pos < len(h.groups) {
		if err := h.step(); err != nil {
			return nil, err
		}
		grp := h.groups[h.pos]
		h.pos++
		// One scratch row serves every emission: the Operator contract says a
		// returned row is valid only until the next Next call, so reuse is
		// legal and saves one allocation per group.
		out := h.outRow
		n := copy(out, grp.key)
		for i, st := range grp.states {
			out[n+i] = st.Value()
		}
		if h.having != nil {
			ok, err := expr.EvalBool(h.having, out)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		h.out++
		return out, nil
	}
	return nil, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.exec().Release(h.reserved)
	h.reserved = 0
	h.groups = nil
	var spillErr error
	if h.spiller != nil {
		spillErr = containPanic("spill discard", h.spiller.discard)
		h.spiller = nil
	}
	if err := failpoint.Inject(failpoint.AggClose); err != nil {
		return err
	}
	return spillErr
}

// Describe implements Operator.
func (h *HashAggregate) Describe() string {
	d := fmt.Sprintf("HashAggregate (%d group keys, %d aggregates)", len(h.groupBy), len(h.aggs))
	if h.having != nil {
		d += " + HAVING filter"
	}
	return d + h.spillNote
}

// Children implements Operator.
func (h *HashAggregate) Children() []Operator { return []Operator{h.child} }

// ActualRows implements rowCounter.
func (h *HashAggregate) ActualRows() int64 { return h.out }
