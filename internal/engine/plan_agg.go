package engine

import (
	"fmt"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// planAggProject plans everything above the join tree: grouping and
// aggregation with HAVING, projection, DISTINCT, ORDER BY, and LIMIT.
func (p *Planner) planAggProject(sel *sqlparser.Select, input Operator, inputSchema value.Schema, env Env) (Operator, error) {
	// Qualify the clauses against the join output schema.
	groupBy := make([]sqlparser.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		q, err := QualifyExpr(g, inputSchema)
		if err != nil {
			return nil, err
		}
		groupBy[i] = q
	}
	var having sqlparser.Expr
	if sel.Having != nil {
		q, err := QualifyExpr(sel.Having, inputSchema)
		if err != nil {
			return nil, err
		}
		having = q
	}
	items := make([]sqlparser.SelectItem, len(sel.Items))
	hasStar := false
	for i, it := range sel.Items {
		if it.Star {
			hasStar = true
			items[i] = it
			continue
		}
		q, err := QualifyExpr(it.Expr, inputSchema)
		if err != nil {
			return nil, err
		}
		items[i] = sqlparser.SelectItem{Expr: q, Alias: it.Alias}
	}
	orderBy := make([]sqlparser.OrderItem, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		q, err := qualifyOrScan(o.Expr, inputSchema)
		if err != nil {
			return nil, err
		}
		orderBy[i] = sqlparser.OrderItem{Expr: q, Desc: o.Desc}
	}

	// Collect aggregate calls across SELECT, HAVING, and ORDER BY.
	aggSeen := map[string]*sqlparser.FuncCall{}
	var aggCalls []*sqlparser.FuncCall
	for _, it := range items {
		if !it.Star {
			CollectAggregates(it.Expr, aggSeen, &aggCalls)
		}
	}
	CollectAggregates(having, aggSeen, &aggCalls)
	for _, o := range orderBy {
		CollectAggregates(o.Expr, aggSeen, &aggCalls)
	}

	grouped := len(groupBy) > 0 || len(aggCalls) > 0

	var out Operator
	var outSchema value.Schema
	if grouped {
		if hasStar {
			return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
		}
		op, aggSchema, repl, err := p.buildAggregate(input, inputSchema, groupBy, aggCalls, having, env)
		if err != nil {
			return nil, err
		}
		// Project the SELECT list over the aggregate output.
		exprs := make([]expr.Compiled, len(items))
		outSchema = make(value.Schema, len(items))
		for i, it := range items {
			rewritten := ReplaceExprs(it.Expr, repl)
			c, err := p.compile(rewritten, aggSchema, env)
			if err != nil {
				return nil, err
			}
			exprs[i] = c
			outSchema[i] = value.Column{Name: outputName(it, i), Type: inferType(it.Expr, inputSchema)}
		}
		proj := NewProject(op, exprs, outSchema)
		out = proj
		// ORDER BY keys may reference aggregates or grouping columns;
		// rewrite them the same way and sort over the aggregate output by
		// planning the sort below projection-equivalent keys. Since the
		// projection is row-per-group, sorting the projection input first is
		// equivalent; we sort on the projected schema instead, falling back
		// to select-alias substitution.
		if len(orderBy) > 0 {
			sortOp, err := p.planOrderBy(proj, outSchema, items, orderBy, env)
			if err != nil {
				return nil, err
			}
			out = sortOp
		}
	} else {
		// Plain projection.
		var exprs []expr.Compiled
		outSchema = value.Schema{}
		for i, it := range items {
			if it.Star {
				for j := range inputSchema {
					jj := j
					exprs = append(exprs, func(r value.Row) (value.Value, error) { return r[jj], nil })
					outSchema = append(outSchema, inputSchema[j])
				}
				continue
			}
			c, err := p.compile(it.Expr, inputSchema, env)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, c)
			outSchema = append(outSchema, value.Column{Name: outputName(it, i), Type: inferType(it.Expr, inputSchema)})
		}
		out = NewProject(input, exprs, outSchema)
		if len(orderBy) > 0 {
			sortOp, err := p.planOrderBy(out, outSchema, items, orderBy, env)
			if err != nil {
				return nil, err
			}
			out = sortOp
		}
	}

	if sel.Distinct {
		out = NewDistinct(out)
	}
	if sel.Limit != nil {
		out = NewLimit(out, *sel.Limit)
	}
	return out, nil
}

// buildAggregate constructs the HashAggregate (or its parallel fusion) and
// returns the aggregate output schema plus the replacement map that rewrites
// grouping expressions and aggregate calls into references to it.
func (p *Planner) buildAggregate(input Operator, inputSchema value.Schema, groupBy []sqlparser.Expr, aggCalls []*sqlparser.FuncCall, having sqlparser.Expr, env Env) (Operator, value.Schema, map[string]sqlparser.Expr, error) {
	groupExprs := make([]expr.Compiled, len(groupBy))
	aggSchema := make(value.Schema, 0, len(groupBy)+len(aggCalls))
	repl := make(map[string]sqlparser.Expr)
	for i, g := range groupBy {
		c, err := p.compile(g, inputSchema, env)
		if err != nil {
			return nil, nil, nil, err
		}
		groupExprs[i] = c
		col := value.Column{Name: fmt.Sprintf("$group%d", i), Type: inferType(g, inputSchema)}
		if ref, ok := g.(*sqlparser.ColRef); ok {
			col.Qualifier, col.Name = ref.Qualifier, ref.Name
		}
		aggSchema = append(aggSchema, col)
		repl[g.String()] = &sqlparser.ColRef{Qualifier: col.Qualifier, Name: col.Name}
	}
	aggs := make([]*expr.Aggregate, len(aggCalls))
	for i, call := range aggCalls {
		a, err := expr.CompileAggregate(call, inputSchema, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		aggs[i] = a
		typ := value.Float
		if call.Name == "COUNT" {
			typ = value.Int
		}
		name := fmt.Sprintf("$agg%d", i)
		aggSchema = append(aggSchema, value.Column{Name: name, Type: typ})
		repl[call.String()] = &sqlparser.ColRef{Name: name}
	}
	var havingC expr.Compiled
	if having != nil {
		rewritten := ReplaceExprs(having, repl)
		c, err := p.compile(rewritten, aggSchema, env)
		if err != nil {
			return nil, nil, nil, err
		}
		havingC = c
	}
	if p.Parallel {
		if join, ok := input.(*NLJoin); ok {
			op := NewParallelJoinAgg(join, groupExprs, aggs, havingC, aggSchema, p.Workers)
			return op, aggSchema, repl, nil
		}
	}
	op := NewHashAggregate(input, groupExprs, aggs, havingC, aggSchema)
	// Record which group keys are bare column references so the batch
	// pipeline can read them straight out of the input row.
	cols := make([]int, len(groupBy))
	for i, g := range groupBy {
		cols[i] = -1
		if ref, ok := g.(*sqlparser.ColRef); ok {
			if ci, err := inputSchema.Resolve(ref.Qualifier, ref.Name); err == nil {
				cols[i] = ci
			}
		}
	}
	op.SetGroupColumns(cols)
	// Likewise record single-column aggregate arguments (COUNT(x), SUM(x), …)
	// so the batch aggregate can read them without evaluating the compiled
	// argument expression.
	acols := make([]int, len(aggCalls))
	for i, call := range aggCalls {
		acols[i] = -1
		if len(call.Args) == 1 && !call.Star {
			if ref, ok := call.Args[0].(*sqlparser.ColRef); ok {
				if ci, err := inputSchema.Resolve(ref.Qualifier, ref.Name); err == nil {
					acols[i] = ci
				}
			}
		}
	}
	op.SetAggColumns(acols)
	return op, aggSchema, repl, nil
}

func (p *Planner) planOrderBy(child Operator, outSchema value.Schema, items []sqlparser.SelectItem, orderBy []sqlparser.OrderItem, env Env) (Operator, error) {
	aliasRepl := map[string]sqlparser.Expr{}
	for i, it := range items {
		if it.Star {
			continue
		}
		aliasRepl[it.Expr.String()] = &sqlparser.ColRef{Name: outSchema[i].Name}
		if it.Alias != "" {
			aliasRepl[it.Alias] = &sqlparser.ColRef{Name: outSchema[i].Name}
		}
	}
	keys := make([]expr.Compiled, len(orderBy))
	desc := make([]bool, len(orderBy))
	for i, o := range orderBy {
		e := ReplaceExprs(o.Expr, aliasRepl)
		c, err := p.compile(e, outSchema, env)
		if err != nil {
			return nil, fmt.Errorf("ORDER BY: %w", err)
		}
		keys[i] = c
		desc[i] = o.Desc
	}
	return NewSort(child, keys, desc), nil
}

// qualifyOrScan qualifies an ORDER BY expression when possible; unresolved
// references (select-list aliases) are left bare for later substitution.
func qualifyOrScan(e sqlparser.Expr, schema value.Schema) (sqlparser.Expr, error) {
	q, err := QualifyExpr(e, schema)
	if err == nil {
		return q, nil
	}
	return e, nil
}

func outputName(it sqlparser.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*sqlparser.ColRef); ok {
		return ref.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

// inferType guesses the result type of an expression for schema purposes.
func inferType(e sqlparser.Expr, schema value.Schema) value.Kind {
	switch e := e.(type) {
	case *sqlparser.Lit:
		return e.Val.K
	case *sqlparser.ColRef:
		if i, err := schema.Resolve(e.Qualifier, e.Name); err == nil {
			return schema[i].Type
		}
		return value.Float
	case *sqlparser.FuncCall:
		if e.Name == "COUNT" {
			return value.Int
		}
		if e.Name == "AVG" {
			return value.Float
		}
		if len(e.Args) == 1 {
			return inferType(e.Args[0], schema)
		}
		return value.Float
	case *sqlparser.BinOp:
		switch e.Op {
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
			lt, rt := inferType(e.L, schema), inferType(e.R, schema)
			if lt == value.Int && rt == value.Int {
				return value.Int
			}
			return value.Float
		default:
			return value.Bool
		}
	case *sqlparser.UnOp:
		if e.Op == "-" {
			return inferType(e.E, schema)
		}
		return value.Bool
	}
	return value.Float
}
