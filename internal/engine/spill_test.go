package engine

import (
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// The spill contract under test: with a spill.Manager attached, a budget
// that would have failed the aggregate instead completes by overflowing to
// disk, and the output — values, float bits, group emission order — is
// byte-identical to the unbudgeted in-memory run.

var spillSchema = value.Schema{
	{Name: "g", Type: value.Int},
	{Name: "s", Type: value.Str},
	{Name: "f", Type: value.Float},
	{Name: "v", Type: value.Int},
}

// spillRows produces rows over ~groups distinct keys, mixing Int and Float
// group values that normalize to the same key (Int k vs Float k.0) so the
// spill path must preserve AppendKey grouping semantics, plus string and
// float aggregate inputs exercising every accumulator field.
func spillRows(n, groups int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		k := int64(i % groups)
		var g value.Value
		if i%3 == 0 {
			g = value.NewFloat(float64(k)) // Float k.0 groups with Int k
		} else {
			g = value.NewInt(k)
		}
		rows[i] = value.Row{
			g,
			value.NewStr(fmt.Sprintf("s%d", i%7)),
			value.NewFloat(float64(i) * 0.25),
			value.NewInt(int64(n - i)),
		}
	}
	return rows
}

func spillAggs() []*expr.Aggregate {
	argF := func(r value.Row) (value.Value, error) { return r[2], nil }
	argV := func(r value.Row) (value.Value, error) { return r[3], nil }
	argS := func(r value.Row) (value.Value, error) { return r[1], nil }
	return []*expr.Aggregate{
		{Kind: expr.AggCountStar},
		{Kind: expr.AggSum, Arg: argF},
		{Kind: expr.AggMin, Arg: argV},
		{Kind: expr.AggCount, Distinct: true, Arg: argS},
	}
}

var spillOutSchema = value.Schema{
	{Name: "g", Type: value.Int},
	{Name: "count", Type: value.Int},
	{Name: "sum_f", Type: value.Float},
	{Name: "min_v", Type: value.Int},
	{Name: "cd_s", Type: value.Int},
}

// spillHaving keeps groups whose COUNT(*) (column 1) is above a threshold,
// compiled over the aggregate's output layout.
func spillHaving(r value.Row) (value.Value, error) {
	return value.NewBool(r[1].I > 2), nil
}

func spillRowPlan(rows []value.Row, having expr.Compiled) Operator {
	return NewHashAggregate(
		NewMemScan("t", spillSchema, rows),
		[]expr.Compiled{colAt(0)}, spillAggs(), having, spillOutSchema)
}

func spillBatchPlan(rows []value.Row, having expr.Compiled, size int) Operator {
	return NewBatchHashAggregate(
		NewBatchMemScan("t", spillSchema, rows, size),
		[]expr.Compiled{colAt(0)}, spillAggs(), having, spillOutSchema)
}

// mustRows drains a plan without any budget and returns its rows.
func mustRows(t *testing.T, op Operator) []value.Row {
	t.Helper()
	rows, err := Run(op)
	if err != nil {
		t.Fatalf("unbudgeted run: %v", err)
	}
	return rows
}

// identicalRows compares with bit-exact float semantics.
func identicalRows(t *testing.T, label string, got, want []value.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			g, w := got[i][j], want[i][j]
			if g.K != w.K || g.S != w.S || g.I != w.I ||
				math.Float64bits(g.F) != math.Float64bits(w.F) {
				t.Fatalf("%s: row %d col %d: got %#v want %#v", label, i, j, g, w)
			}
		}
	}
}

// aggPeak measures the aggregate's own budget peak for the plan.
func aggPeak(t *testing.T, build func() Operator) int64 {
	t.Helper()
	budget := resource.NewBudget(1 << 40)
	if _, err := RunExec(NewExecContext(nil, budget), build()); err != nil {
		t.Fatalf("peak run: %v", err)
	}
	return budget.Peak()
}

// runSpilled executes the plan under the given budget with spilling enabled
// and asserts the invariants: spill actually engaged, budget fully
// released, and no temp files surviving cleanup.
func runSpilled(t *testing.T, build func() Operator, limit int64) []value.Row {
	t.Helper()
	parent := t.TempDir()
	mgr, err := spill.NewManager(parent)
	if err != nil {
		t.Fatal(err)
	}
	budget := resource.NewBudget(limit)
	ec := NewExecContext(nil, budget)
	ec.SetSpill(mgr)
	rows, err := RunExec(ec, build())
	if err != nil {
		t.Fatalf("spilled run (limit %d): %v", limit, err)
	}
	degs := ec.Degradations()
	if len(degs) != 1 || degs[0] != DegradeSpill {
		t.Fatalf("degradations = %v, want [spill]", degs)
	}
	if mgr.Stats().FramesOut == 0 {
		t.Fatal("no frames spilled despite budget pressure")
	}
	if used := budget.Used(); used != 0 {
		t.Fatalf("budget leak: Used()=%d after Close", used)
	}
	if err := mgr.Cleanup(); err != nil {
		t.Fatalf("Cleanup: %v", err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after cleanup: %v", ents)
	}
	return rows
}

func TestSpillRowAggByteIdentical(t *testing.T) {
	defer testleak.Check(t)
	rows := spillRows(6000, 499)
	for _, having := range []expr.Compiled{nil, spillHaving} {
		name := "plain"
		if having != nil {
			name = "having"
		}
		t.Run(name, func(t *testing.T) {
			build := func() Operator { return spillRowPlan(rows, having) }
			want := mustRows(t, build())
			peak := aggPeak(t, build)
			for _, frac := range []int64{2, 4, 16} {
				got := runSpilled(t, build, peak/frac)
				identicalRows(t, fmt.Sprintf("limit=peak/%d", frac), got, want)
			}
		})
	}
}

func TestSpillBatchAggByteIdentical(t *testing.T) {
	defer testleak.Check(t)
	rows := spillRows(6000, 499)
	rowWant := mustRows(t, spillRowPlan(rows, spillHaving))
	for _, size := range []int{1, 7, 1024} {
		t.Run(fmt.Sprintf("batch%d", size), func(t *testing.T) {
			build := func() Operator { return spillBatchPlan(rows, spillHaving, size) }
			want := mustRows(t, build())
			identicalRows(t, "batch vs row unbudgeted", want, rowWant)
			peak := aggPeak(t, build)
			for _, frac := range []int64{2, 8} {
				got := runSpilled(t, build, peak/frac)
				identicalRows(t, fmt.Sprintf("limit=peak/%d", frac), got, want)
			}
		})
	}
}

// TestSpillRecursiveRepartition squeezes the budget so hard that single
// partitions exceed it during the merge, forcing depth-salted re-splits.
func TestSpillRecursiveRepartition(t *testing.T) {
	defer testleak.Check(t)
	rows := spillRows(8000, 997)
	build := func() Operator { return spillRowPlan(rows, nil) }
	want := mustRows(t, build())
	peak := aggPeak(t, build)
	// ~1/40 of peak holds ~25 of 997 groups: every top-level partition
	// (~125 groups) must re-split at least once.
	got := runSpilled(t, build, peak/40)
	identicalRows(t, "recursive merge", got, want)
}

// TestSpillBudgetBelowOneGroup: even spilling cannot complete when a single
// group's state exceeds the budget; the typed budget error must surface
// (never a wrong or partial result), and everything is cleaned up.
func TestSpillBudgetBelowOneGroup(t *testing.T) {
	defer testleak.Check(t)
	rows := spillRows(400, 13)
	parent := t.TempDir()
	mgr, err := spill.NewManager(parent)
	if err != nil {
		t.Fatal(err)
	}
	budget := resource.NewBudget(16) // below one group's charge
	ec := NewExecContext(nil, budget)
	ec.SetSpill(mgr)
	_, err = RunExec(ec, spillRowPlan(rows, nil))
	if !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if used := budget.Used(); used != 0 {
		t.Fatalf("budget leak: Used()=%d", used)
	}
	if err := mgr.Cleanup(); err != nil {
		t.Fatalf("Cleanup: %v", err)
	}
	if ents, _ := os.ReadDir(parent); len(ents) != 0 {
		t.Fatalf("spill dir not empty: %v", ents)
	}
}

// TestSpillScalarAggregate: a scalar aggregate holds exactly one group, so
// spilling cannot shrink its working set. The typed budget error must come
// back (via the repartition no-progress guard, since every spilled row
// routes to the empty key) and the spill dir must still come back empty.
func TestSpillScalarAggregate(t *testing.T) {
	defer testleak.Check(t)
	rows := spillRows(3000, 1)
	parent := t.TempDir()
	mgr, err := spill.NewManager(parent)
	if err != nil {
		t.Fatal(err)
	}
	budget := resource.NewBudget(32) // below the single group's charge
	ec := NewExecContext(nil, budget)
	ec.SetSpill(mgr)
	_, err = RunExec(ec, NewHashAggregate(
		NewMemScan("t", spillSchema, rows), nil, spillAggs(), nil,
		spillOutSchema[1:]))
	if !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if used := budget.Used(); used != 0 {
		t.Fatalf("budget leak: Used()=%d", used)
	}
	if err := mgr.Cleanup(); err != nil {
		t.Fatalf("Cleanup: %v", err)
	}
	if ents, _ := os.ReadDir(parent); len(ents) != 0 {
		t.Fatalf("spill dir not empty: %v", ents)
	}
}

// TestSpillFaultMatrix drives every spill failpoint site in error, panic,
// and corrupt-frame modes through both aggregate paths on a plan that is
// actively spilling. The contract: exactly one typed error (the injected
// error, a *PanicError, or spill.ErrCorrupt) — never a silently wrong
// result — with the budget fully released and no files left after Cleanup.
func TestSpillFaultMatrix(t *testing.T) {
	rows := spillRows(3000, 251)
	rowPeak := aggPeak(t, func() Operator { return spillRowPlan(rows, nil) })
	batchPeak := aggPeak(t, func() Operator { return spillBatchPlan(rows, nil, 64) })

	paths := []struct {
		name  string
		build func() Operator
		peak  int64
	}{
		{"row", func() Operator { return spillRowPlan(rows, nil) }, rowPeak},
		{"batch", func() Operator { return spillBatchPlan(rows, nil, 64) }, batchPeak},
	}
	sites := []string{
		failpoint.SpillWrite,
		failpoint.SpillFlush,
		failpoint.SpillRead,
		failpoint.SpillRemove,
		failpoint.SpillCorrupt,
	}
	modes := []struct {
		name   string
		action failpoint.Action
		check  func(t *testing.T, site string, err error)
	}{
		{"error", failpoint.Error(errBoom), func(t *testing.T, site string, err error) {
			// Arming SpillCorrupt flips a real payload byte, so the error that
			// surfaces is the genuine checksum failure, not the injected one.
			if site == failpoint.SpillCorrupt {
				if !errors.Is(err, spill.ErrCorrupt) {
					t.Fatalf("want ErrCorrupt, got %v", err)
				}
				return
			}
			if !errors.Is(err, errBoom) {
				t.Fatalf("want errBoom, got %v", err)
			}
		}},
		{"panic", failpoint.Panic("spill fault"), func(t *testing.T, site string, err error) {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PanicError, got %v", err)
			}
		}},
	}

	for _, p := range paths {
		for _, site := range sites {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/%s/%s", p.name, site, mode.name), func(t *testing.T) {
					defer testleak.Check(t)
					defer failpoint.Reset()
					parent := t.TempDir()
					mgr, err := spill.NewManager(parent)
					if err != nil {
						t.Fatal(err)
					}
					budget := resource.NewBudget(p.peak / 4)
					ec := NewExecContext(nil, budget)
					ec.SetSpill(mgr)
					failpoint.Enable(site, mode.action)
					_, err = RunExec(ec, p.build())
					failpoint.Reset()
					if err == nil {
						t.Fatal("query succeeded despite injected spill fault")
					}
					mode.check(t, site, err)
					if used := budget.Used(); used != 0 {
						t.Fatalf("budget leak: Used()=%d", used)
					}
					if err := mgr.Cleanup(); err != nil {
						t.Fatalf("Cleanup: %v", err)
					}
					if ents, _ := os.ReadDir(parent); len(ents) != 0 {
						t.Fatalf("spill dir not empty after cleanup: %v", ents)
					}
				})
			}
		}
	}
}

// TestSpillCorruptOnce: a single corrupted frame is detected (not folded
// into the result); after the transient fault clears, the same query
// completes with byte-identical output.
func TestSpillCorruptOnce(t *testing.T) {
	defer testleak.Check(t)
	defer failpoint.Reset()
	rows := spillRows(3000, 251)
	build := func() Operator { return spillRowPlan(rows, nil) }
	want := mustRows(t, build())
	peak := aggPeak(t, build)

	failpoint.Enable(failpoint.SpillCorrupt, failpoint.Once(failpoint.Error(errBoom)))
	mgr, err := spill.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	budget := resource.NewBudget(peak / 4)
	ec := NewExecContext(nil, budget)
	ec.SetSpill(mgr)
	_, err = RunExec(ec, build())
	if !errors.Is(err, spill.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if mgr.Stats().Corruptions == 0 {
		t.Fatal("corruption not counted")
	}
	if used := budget.Used(); used != 0 {
		t.Fatalf("budget leak: Used()=%d", used)
	}
	if err := mgr.Cleanup(); err != nil {
		t.Fatalf("Cleanup: %v", err)
	}
	failpoint.Reset()

	got := runSpilled(t, build, peak/4)
	identicalRows(t, "after transient corruption", got, want)
}

// TestSpillDescribeAnnotation: EXPLAIN ANALYZE output names the spill and
// the degradation rung after a spilled run.
func TestSpillDescribeAnnotation(t *testing.T) {
	rows := spillRows(4000, 499)
	build := func() Operator { return spillRowPlan(rows, nil) }
	peak := aggPeak(t, build)
	mgr, err := spill.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Cleanup()
	ec := NewExecContext(nil, resource.NewBudget(peak/4))
	ec.SetSpill(mgr)
	text, _, err := ExplainAnalyzeExec(ec, build())
	if err != nil {
		t.Fatal(err)
	}
	for _, wantSub := range []string{"[spilled:", "Degraded: spill"} {
		if !contains(text, wantSub) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", wantSub, text)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
