package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/value"
)

// aggSpiller is the disk overflow tier shared by HashAggregate and
// BatchHashAggregate. When a group-state budget charge fails and the
// ExecContext carries a spill.Manager, the operator flushes every resident
// group to hash-partitioned run files and streams all subsequent input rows
// to the same partitions. The merge phase rebuilds each partition's groups
// and replays its rows through the same per-row adders in global sequence
// order, so every float is accumulated in exactly the order the in-memory
// fold would have used; recorded first-seen sequence numbers then restore
// the global group emission order. The result is byte-identical to the
// unspilled run.
//
// Partitions that still exceed the budget during the merge are re-split
// with a depth-salted hash and merged recursively (Grace style) down to
// spillMaxDepth, at which point the original typed budget error surfaces.
type aggSpiller struct {
	ec      *ExecContext
	mgr     *spill.Manager
	groupBy []expr.Compiled
	aggs    []*expr.Aggregate
	adders  []func(*expr.State, value.Row) error
	having  expr.Compiled
	width   int // output row width: group keys + aggregate slots

	parts    []*spill.Writer
	keyVals  []value.Value
	keyBuf   []byte
	frameBuf []byte

	groupsFlushed int64
	rowsSpilled   int64
	partitions    int
	reserved      int64 // merge-phase budget charges not yet released

	merged   bool
	outPaths []string
	runs     []*emitRun
	note     string
}

const (
	spillFanout   = 8
	spillMaxDepth = 10

	spillKindGroup = 1 // frame: kind, firstSeen u64, key row, nStates u32, states
	spillKindRow   = 2 // frame: kind, seq u64, input row
)

// newAggSpiller starts the overflow tier, creating one run file per
// partition. Returns (nil, nil) when the context has no spill manager.
func newAggSpiller(ec *ExecContext, groupBy []expr.Compiled, aggs []*expr.Aggregate, having expr.Compiled, width int) (*aggSpiller, error) {
	mgr := ec.Spill()
	if mgr == nil {
		return nil, nil
	}
	as := &aggSpiller{
		ec:      ec,
		mgr:     mgr,
		groupBy: groupBy,
		aggs:    aggs,
		having:  having,
		width:   width,
		keyVals: make([]value.Value, len(groupBy)),
		adders:  make([]func(*expr.State, value.Row) error, len(aggs)),
	}
	for i, a := range aggs {
		as.adders[i] = a.Adder()
	}
	as.parts = make([]*spill.Writer, spillFanout)
	for i := range as.parts {
		w, err := mgr.Create("agg")
		if err != nil {
			_ = as.discard()
			return nil, err
		}
		as.parts[i] = w
	}
	as.partitions = spillFanout
	ec.Degrade(DegradeSpill)
	return as, nil
}

// spillPartition routes a grouping key (its AppendKeys encoding, so Int 3
// and Float 3.0 stay together) to a partition; depth salts the hash so a
// recursive re-split redistributes keys that collided at the parent level.
// The avalanche finalizer matters: FNV-1a's low bits never see the high
// bits, so a bare h % 8 makes each depth a permutation of its parent's
// partitioning instead of an independent re-split.
func spillPartition(keyBytes []byte, depth int) int {
	h := uint32(2166136261) ^ (uint32(depth) * 0x9747b28d)
	for _, b := range keyBytes {
		h ^= uint32(b)
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(h % spillFanout)
}

// groupCharge mirrors the operators' groupBytes formula so spilled and
// resident groups cost the budget the same.
func (as *aggSpiller) groupCharge(key value.Row) int64 {
	return 48 + resource.RowBytes(key) + 56*int64(len(as.aggs))
}

// charge / release wrap the budget so as.reserved always mirrors the
// outstanding merge reservations; a panic that unwinds past the merge is
// then released by discard, keeping Budget.Used() at zero.
func (as *aggSpiller) charge(n int64) error {
	if err := as.ec.Charge("spill merge", n); err != nil {
		return err
	}
	as.reserved += n
	return nil
}

func (as *aggSpiller) release(n int64) {
	as.ec.Release(n)
	as.reserved -= n
}

// spillGroup flushes one resident group (its first-seen sequence number,
// exact key row, and complete accumulator snapshots) to its partition.
func (as *aggSpiller) spillGroup(firstSeen int64, key value.Row, state func(int) *expr.State) error {
	as.keyBuf = value.AppendKeys(as.keyBuf[:0], key)
	p := spillPartition(as.keyBuf, 0)
	buf := append(as.frameBuf[:0], spillKindGroup)
	buf = binary.BigEndian.AppendUint64(buf, uint64(firstSeen))
	buf = value.AppendRowBinary(buf, key)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(as.aggs)))
	for i := range as.aggs {
		buf = state(i).EncodeSpill(buf)
	}
	as.frameBuf = buf
	as.groupsFlushed++
	return as.parts[p].WriteFrame(buf)
}

// spillRow streams one input row, tagged with its global sequence number, to
// the partition its grouping key hashes to.
func (as *aggSpiller) spillRow(seq int64, r value.Row) error {
	for i, g := range as.groupBy {
		v, err := g(r)
		if err != nil {
			return err
		}
		as.keyVals[i] = v
	}
	as.keyBuf = value.AppendKeys(as.keyBuf[:0], as.keyVals)
	p := spillPartition(as.keyBuf, 0)
	buf := append(as.frameBuf[:0], spillKindRow)
	buf = binary.BigEndian.AppendUint64(buf, uint64(seq))
	buf = value.AppendRowBinary(buf, r)
	as.frameBuf = buf
	as.rowsSpilled++
	return as.parts[p].WriteFrame(buf)
}

// spillGroupState is one group being rebuilt during the merge.
type spillGroupState struct {
	firstSeen int64
	key       value.Row
	states    []*expr.State
}

// merge closes the partition writers, merges every partition (recursively
// when needed), and opens the sorted output runs for emission. Called
// lazily on the operator's first Next.
func (as *aggSpiller) merge() error {
	for _, w := range as.parts {
		if err := w.Close(); err != nil {
			return err
		}
	}
	for _, w := range as.parts {
		if err := as.finalizePartition(w.Path(), 0); err != nil {
			return err
		}
	}
	as.parts = nil
	if err := as.startEmit(); err != nil {
		return err
	}
	as.merged = true
	as.note = fmt.Sprintf(" [spilled: %d groups + %d rows, %d partitions]",
		as.groupsFlushed, as.rowsSpilled, as.partitions)
	return nil
}

// finalizePartition rebuilds one partition's groups in memory, finalizes
// them in first-seen order, and writes the surviving output rows to a
// sorted run file. If the partition alone exceeds the budget it is re-split
// and each child merged recursively.
func (as *aggSpiller) finalizePartition(path string, depth int) error {
	groups, reserved, err := as.loadPartition(path)
	if err != nil {
		as.release(reserved)
		if errors.Is(err, resource.ErrBudgetExceeded) && depth < spillMaxDepth {
			return as.repartition(path, depth, err)
		}
		return err
	}
	defer as.release(reserved)
	if err := as.mgr.Remove(path); err != nil {
		return err
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].firstSeen < groups[j].firstSeen })
	out, err := as.mgr.Create("run")
	if err != nil {
		return err
	}
	as.outPaths = append(as.outPaths, out.Path())
	row := make(value.Row, as.width)
	for _, g := range groups {
		n := copy(row, g.key)
		for i, st := range g.states {
			row[n+i] = st.Value()
		}
		if as.having != nil {
			ok, err := expr.EvalBool(as.having, row)
			if err != nil {
				_ = out.Close()
				return err
			}
			if !ok {
				continue
			}
		}
		buf := binary.BigEndian.AppendUint64(as.frameBuf[:0], uint64(g.firstSeen))
		buf = value.AppendRowBinary(buf, row)
		as.frameBuf = buf
		if err := out.WriteFrame(buf); err != nil {
			_ = out.Close()
			return err
		}
	}
	return out.Close()
}

// loadPartition replays one partition file: flushed group snapshots are
// restored, then raw rows (already in global sequence order within the
// file) fold through the same adders the in-memory build uses. Each
// rebuilt group is charged to the budget; the caller releases `reserved`.
func (as *aggSpiller) loadPartition(path string) (groups []*spillGroupState, reserved int64, err error) {
	r, err := as.mgr.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	index := make(map[string]*spillGroupState)
	for {
		payload, err := r.Next()
		if err != nil {
			return groups, reserved, err
		}
		if payload == nil {
			return groups, reserved, nil
		}
		if len(payload) < 9 {
			return groups, reserved, fmt.Errorf("%w: %s: short spill frame", spill.ErrCorrupt, path)
		}
		kind := payload[0]
		seq := int64(binary.BigEndian.Uint64(payload[1:]))
		body := payload[9:]
		switch kind {
		case spillKindGroup:
			key, rest, derr := value.DecodeRowBinary(body)
			if derr != nil {
				return groups, reserved, fmt.Errorf("%w: %s: bad group key", spill.ErrCorrupt, path)
			}
			if len(rest) < 4 || int(binary.BigEndian.Uint32(rest)) != len(as.aggs) {
				return groups, reserved, fmt.Errorf("%w: %s: bad state count", spill.ErrCorrupt, path)
			}
			rest = rest[4:]
			states := make([]*expr.State, len(as.aggs))
			for i, a := range as.aggs {
				st := a.NewState()
				rest, derr = st.DecodeSpill(rest)
				if derr != nil {
					return groups, reserved, fmt.Errorf("%w: %s: bad aggregate state", spill.ErrCorrupt, path)
				}
				states[i] = st
			}
			n := as.groupCharge(key)
			if cerr := as.charge(n); cerr != nil {
				return groups, reserved, cerr
			}
			reserved += n
			g := &spillGroupState{firstSeen: seq, key: key, states: states}
			as.keyBuf = value.AppendKeys(as.keyBuf[:0], key)
			index[string(as.keyBuf)] = g
			groups = append(groups, g)
		case spillKindRow:
			row, _, derr := value.DecodeRowBinary(body)
			if derr != nil {
				return groups, reserved, fmt.Errorf("%w: %s: bad spilled row", spill.ErrCorrupt, path)
			}
			for i, gexp := range as.groupBy {
				v, eerr := gexp(row)
				if eerr != nil {
					return groups, reserved, eerr
				}
				as.keyVals[i] = v
			}
			as.keyBuf = value.AppendKeys(as.keyBuf[:0], as.keyVals)
			g, ok := index[string(as.keyBuf)]
			if !ok {
				key := append(value.Row(nil), as.keyVals...)
				n := as.groupCharge(key)
				if cerr := as.charge(n); cerr != nil {
					return groups, reserved, cerr
				}
				reserved += n
				g = &spillGroupState{firstSeen: seq, key: key, states: make([]*expr.State, len(as.aggs))}
				for i, a := range as.aggs {
					g.states[i] = a.NewState()
				}
				index[string(as.keyBuf)] = g
				groups = append(groups, g)
			}
			for i, add := range as.adders {
				if aerr := add(g.states[i], row); aerr != nil {
					return groups, reserved, aerr
				}
			}
		default:
			return groups, reserved, fmt.Errorf("%w: %s: unknown frame kind %d", spill.ErrCorrupt, path, kind)
		}
	}
}

// repartition re-splits an over-budget partition into spillFanout children
// using the next depth's hash salt, then merges each child. chargeErr (the
// typed budget failure that triggered the split) surfaces unchanged if the
// recursion bottoms out without fitting.
func (as *aggSpiller) repartition(path string, depth int, chargeErr error) error {
	subs := make([]*spill.Writer, spillFanout)
	for i := range subs {
		w, err := as.mgr.Create("agg")
		if err != nil {
			return err
		}
		subs[i] = w
	}
	as.partitions += spillFanout
	r, err := as.mgr.Open(path)
	if err != nil {
		return err
	}
	routeErr := func() error {
		for {
			payload, err := r.Next()
			if err != nil {
				return err
			}
			if payload == nil {
				return nil
			}
			if len(payload) < 9 {
				return fmt.Errorf("%w: %s: short spill frame", spill.ErrCorrupt, path)
			}
			body := payload[9:]
			switch payload[0] {
			case spillKindGroup:
				key, _, derr := value.DecodeRowBinary(body)
				if derr != nil {
					return fmt.Errorf("%w: %s: bad group key", spill.ErrCorrupt, path)
				}
				as.keyBuf = value.AppendKeys(as.keyBuf[:0], key)
			case spillKindRow:
				row, _, derr := value.DecodeRowBinary(body)
				if derr != nil {
					return fmt.Errorf("%w: %s: bad spilled row", spill.ErrCorrupt, path)
				}
				for i, gexp := range as.groupBy {
					v, eerr := gexp(row)
					if eerr != nil {
						return eerr
					}
					as.keyVals[i] = v
				}
				as.keyBuf = value.AppendKeys(as.keyBuf[:0], as.keyVals)
			default:
				return fmt.Errorf("%w: %s: unknown frame kind %d", spill.ErrCorrupt, path, payload[0])
			}
			// Frames are rewritten verbatim: order within each child file
			// still matches global sequence order.
			if err := subs[spillPartition(as.keyBuf, depth+1)].WriteFrame(payload); err != nil {
				return err
			}
		}
	}()
	if cerr := r.Close(); cerr != nil && routeErr == nil {
		routeErr = cerr
	}
	for _, w := range subs {
		if cerr := w.Close(); cerr != nil && routeErr == nil {
			routeErr = cerr
		}
	}
	if routeErr != nil {
		for _, w := range subs {
			_ = w.Discard()
		}
		return routeErr
	}
	// If every frame landed in one child, the split made no progress — the
	// partition is a single group (or hash-colliding set) that simply does
	// not fit. Recursing further would only fan out files, so surface the
	// typed budget error now. depth also hard-caps the recursion.
	var parentFrames, nonEmpty int64
	var onlyChild *spill.Writer
	for _, w := range subs {
		parentFrames += w.Frames()
		if w.Frames() > 0 {
			nonEmpty++
			onlyChild = w
		}
	}
	noProgress := nonEmpty <= 1 && onlyChild != nil && onlyChild.Frames() == parentFrames
	if noProgress || depth+1 >= spillMaxDepth {
		for _, w := range subs {
			_ = w.Discard()
		}
		return chargeErr
	}
	if err := as.mgr.Remove(path); err != nil {
		return err
	}
	for _, w := range subs {
		if err := as.finalizePartition(w.Path(), depth+1); err != nil {
			return err
		}
	}
	return nil
}

// emitRun is one sorted output run during emission.
type emitRun struct {
	r    *spill.Reader
	path string
	seq  int64
	row  value.Row
	done bool
}

func (as *aggSpiller) startEmit() error {
	for _, p := range as.outPaths {
		r, err := as.mgr.Open(p)
		if err != nil {
			return err
		}
		run := &emitRun{r: r, path: p}
		as.runs = append(as.runs, run)
		if err := as.fill(run); err != nil {
			return err
		}
	}
	return nil
}

// fill advances one run to its next output row.
func (as *aggSpiller) fill(run *emitRun) error {
	payload, err := run.r.Next()
	if err != nil {
		return err
	}
	if payload == nil {
		run.done = true
		if err := run.r.Close(); err != nil {
			return err
		}
		return as.mgr.Remove(run.path)
	}
	if len(payload) < 8 {
		return fmt.Errorf("%w: %s: short output frame", spill.ErrCorrupt, run.path)
	}
	run.seq = int64(binary.BigEndian.Uint64(payload))
	row, _, derr := value.DecodeRowBinary(payload[8:])
	if derr != nil {
		return fmt.Errorf("%w: %s: bad output row", spill.ErrCorrupt, run.path)
	}
	run.row = row
	return nil
}

// next streams the globally next output row: runs are each sorted by
// first-seen sequence, so a k-way min pick restores the exact order the
// in-memory aggregate would have emitted. Returns nil at end of stream.
func (as *aggSpiller) next() (value.Row, error) {
	var pick *emitRun
	for _, run := range as.runs {
		if run.done {
			continue
		}
		if pick == nil || run.seq < pick.seq {
			pick = run
		}
	}
	if pick == nil {
		return nil, nil
	}
	row := pick.row
	if err := as.fill(pick); err != nil {
		return nil, err
	}
	return row, nil
}

// containPanic runs a cleanup function, converting a panic into an error.
// Operator Close runs while RunExec may already be unwinding a panic; a
// second panic there would escape the recover and kill the process, so the
// discard path must never re-panic (failpoints can arm its IO sites too).
func containPanic(what string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(what, r)
		}
	}()
	return fn()
}

// discard closes and removes everything the spiller still holds on disk.
// Operator Close calls it on success and failure alike; files already
// removed by the merge are tolerated. Manager.Cleanup remains the
// directory-level backstop for paths this spiller never learned about.
func (as *aggSpiller) discard() error {
	as.release(as.reserved)
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, run := range as.runs {
		if !run.done {
			keep(run.r.Close())
		}
	}
	as.runs = nil
	for _, p := range as.outPaths {
		keep(as.mgr.Remove(p))
	}
	as.outPaths = nil
	for _, w := range as.parts {
		if w != nil {
			keep(w.Discard())
		}
	}
	as.parts = nil
	return first
}
