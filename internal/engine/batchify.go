package engine

import (
	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/value"
)

// Batchify rewrites a planned row-at-a-time operator tree into its
// chunk-at-a-time form: hot operators (scan, filter, project, hash
// aggregation, joins) are replaced by native batch implementations, a Filter
// directly over a scan is fused into the scan's chunk loop, and operators
// without a native batch form (Sort, Distinct, Limit, the Vendor A parallel
// fusion) keep their row implementation — they still compose, because every
// BatchOperator also serves the row protocol through an internal cursor.
// size <= 0 returns the tree unchanged. The rewrite preserves row order,
// group first-seen order, and float accumulation order, so results are
// byte-identical to the row pipeline.
func Batchify(op Operator, size int) Operator {
	return BatchifyWorkers(op, size, 1)
}

// BatchifyWorkers is Batchify with morsel parallelism: workers > 1 replaces
// catalog-table scans that have a column-major form with ParallelBatchScan,
// whose worker pool claims fixed-size morsels and re-serializes the chunks in
// morsel order — output stays byte-identical to workers = 1 (and to the row
// pipeline) for every worker count. Scans that cannot run columnar (no cached
// columns, or a fused predicate outside the kernel fragment) keep the
// sequential batch scan. Zone-map skipping is on (a planner configures it via
// batchifyPlan).
func BatchifyWorkers(op Operator, size, workers int) Operator {
	if size <= 0 {
		return op
	}
	return batchify(op, batchifyCfg{size: size, workers: workers, zoneSkip: true})
}

// batchifyPlan is the planner's entry point: it carries the planner's
// scan-avoidance knobs and exec context (for degrade recording) into the
// rewrite.
func (p *Planner) batchifyPlan(op Operator) Operator {
	if p.BatchSize <= 0 {
		return op
	}
	return batchify(op, batchifyCfg{
		size:     p.BatchSize,
		workers:  DefaultWorkers(p.Workers),
		zoneSkip: !p.NoZoneSkip,
		ec:       p.Exec,
	})
}

// batchifyCfg carries the rewrite's knobs down the recursion.
type batchifyCfg struct {
	size     int
	workers  int
	zoneSkip bool
	ec       *ExecContext
}

// ZoneSource is implemented by column sources that also maintain zone maps
// over their cached columns (storage.Table).
type ZoneSource interface {
	Zones() *value.ZoneMaps
}

// zonesFor fetches zone maps for a scan when skipping is enabled and the
// summaries describe exactly the rows this scan snapshot holds. A fault at
// the ZoneMapBuild site (error or panic) degrades to "no zone maps" — the
// scan runs unskipped — and is recorded on the exec context.
func (c batchifyCfg) zonesFor(src ColumnarSource, cols *value.Columns, nRows int) *value.ZoneMaps {
	if !c.zoneSkip || src == nil || cols == nil {
		return nil
	}
	zs, ok := src.(ZoneSource)
	if !ok {
		return nil
	}
	z := c.fetchZones(zs)
	if z == nil || z.Len() != cols.Len() || cols.Len() != nRows {
		return nil
	}
	return z
}

func (c batchifyCfg) fetchZones(zs ZoneSource) (z *value.ZoneMaps) {
	defer func() {
		if r := recover(); r != nil {
			z = nil
			if c.ec != nil {
				c.ec.Degrade(DegradeSkipDisabled)
			}
		}
	}()
	if err := failpoint.Inject(failpoint.ZoneMapBuild); err != nil {
		if c.ec != nil {
			c.ec.Degrade(DegradeSkipDisabled)
		}
		return nil
	}
	return zs.Zones()
}

func batchify(op Operator, cfg batchifyCfg) Operator {
	size, workers := cfg.size, cfg.workers
	switch o := op.(type) {
	case *MemScan:
		if workers > 1 && o.colSrc != nil {
			// Morsel parallelism needs the columnar form and more than one
			// morsel's worth of rows to be worth a worker pool.
			if cols := o.colSrc.Columns(); cols != nil && cols.Len() == len(o.rows) && cols.Len() > size {
				ps := NewParallelBatchScan(o.Label, o.schema, o.rows, cols, size, workers)
				if z := cfg.zonesFor(o.colSrc, cols, len(o.rows)); z != nil {
					ps.SetZoneMaps(z)
				}
				return ps
			}
		}
		bs := NewBatchMemScan(o.Label, o.schema, o.rows, size)
		if o.colSrc != nil {
			// The cached columns must describe exactly the rows this scan
			// snapshot holds; a table that grew since planning keeps the
			// row-view path for this query.
			if cols := o.colSrc.Columns(); cols != nil && cols.Len() == len(o.rows) {
				bs.SetColumns(cols)
				if z := cfg.zonesFor(o.colSrc, cols, len(o.rows)); z != nil {
					bs.SetZoneMaps(z)
				}
			}
		}
		return bs
	case *Filter:
		c := batchify(o.child, cfg)
		if ps, ok := c.(*ParallelBatchScan); ok && !ps.Fused() && o.srcExpr != nil {
			// A parallel scan only fuses predicates with a typed kernel —
			// workers never materialize rows. Without one the filter runs
			// downstream over the parallel chunks instead.
			if k, ok := expr.CompileSel(o.srcExpr, ps.Schema()); ok {
				ps.FuseKernel(o.pred, o.label, k)
				if ps.ZoneMaps() != nil {
					if zp, ok := expr.CompileZone(o.srcExpr, ps.Schema()); ok {
						ps.FuseZonePred(zp)
					}
				}
				return ps
			}
		}
		if bs, ok := c.(*BatchMemScan); ok && bs.pred == nil {
			bs.FusePredicate(o.pred, o.label)
			if o.srcExpr != nil {
				if k, ok := expr.CompileSel(o.srcExpr, bs.Schema()); ok {
					bs.FuseSelKernel(k)
					if bs.ZoneMaps() != nil {
						// The zone form of the same predicate: a rejected
						// block holds only rows the kernel would filter, so
						// skipping it whole preserves the output stream.
						if zp, ok := expr.CompileZone(o.srcExpr, bs.Schema()); ok {
							bs.FuseZonePred(zp)
						}
					}
				}
			}
			return bs
		}
		if bc, ok := c.(BatchOperator); ok {
			bf := NewBatchFilter(bc, o.pred, o.label)
			if o.srcExpr != nil {
				if k, ok := expr.CompileSel(o.srcExpr, bc.Schema()); ok {
					bf.SetSelKernel(k)
				}
			}
			return bf
		}
		return NewFilter(c, o.pred, o.label)
	case *Project:
		c := batchify(o.child, cfg)
		if bc, ok := c.(BatchOperator); ok {
			return NewBatchProject(bc, o.exprs, o.schema)
		}
		return NewProject(c, o.exprs, o.schema)
	case *HashAggregate:
		c := BatchOf(batchify(o.child, cfg), size)
		agg := NewBatchHashAggregate(c, o.groupBy, o.aggs, o.having, o.schema)
		if o.groupCols != nil {
			agg.SetGroupColumns(o.groupCols)
		}
		if o.aggCols != nil {
			agg.SetAggColumns(o.aggCols)
		}
		return agg
	case *NLJoin:
		outer := BatchOf(batchify(o.outer, cfg), size)
		inner := batchify(o.inner, cfg)
		return NewBatchNLJoin(o.name, outer, inner, o.method, o.residual, size)
	case *Distinct:
		return NewDistinct(batchify(o.child, cfg))
	case *Sort:
		return NewSort(batchify(o.child, cfg), o.keys, o.desc)
	case *Limit:
		return NewLimit(batchify(o.child, cfg), o.n)
	case *reschema:
		c := batchify(o.child, cfg)
		if bc, ok := c.(BatchOperator); ok {
			return &batchReschema{child: bc, schema: o.schema}
		}
		return &reschema{child: c, schema: o.schema}
	default:
		// ParallelJoinAgg (its internals drive the join specially) and any
		// already-batch operator from a nested PlanSelect pass through.
		return op
	}
}

// batchReschema is reschema's batch counterpart: it relabels the child
// schema and forwards chunks untouched.
type batchReschema struct {
	batchCursor
	child  BatchOperator
	schema value.Schema
}

func (r *batchReschema) Schema() value.Schema { return r.schema }
func (r *batchReschema) BatchSize() int       { return r.child.BatchSize() }
func (r *batchReschema) Open() error {
	r.reset()
	return r.child.Open()
}
func (r *batchReschema) NextBatch() (*value.Batch, error) { return r.child.NextBatch() }
func (r *batchReschema) Next() (value.Row, error)         { return r.next(r.child.NextBatch) }
func (r *batchReschema) Close() error                     { return r.child.Close() }
func (r *batchReschema) Describe() string                 { return "Subquery Scan" }
func (r *batchReschema) Children() []Operator             { return []Operator{r.child} }
