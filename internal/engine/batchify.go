package engine

import "smarticeberg/internal/value"

// Batchify rewrites a planned row-at-a-time operator tree into its
// chunk-at-a-time form: hot operators (scan, filter, project, hash
// aggregation, joins) are replaced by native batch implementations, a Filter
// directly over a scan is fused into the scan's chunk loop, and operators
// without a native batch form (Sort, Distinct, Limit, the Vendor A parallel
// fusion) keep their row implementation — they still compose, because every
// BatchOperator also serves the row protocol through an internal cursor.
// size <= 0 returns the tree unchanged. The rewrite preserves row order,
// group first-seen order, and float accumulation order, so results are
// byte-identical to the row pipeline.
func Batchify(op Operator, size int) Operator {
	if size <= 0 {
		return op
	}
	return batchify(op, size)
}

func batchify(op Operator, size int) Operator {
	switch o := op.(type) {
	case *MemScan:
		return NewBatchMemScan(o.Label, o.schema, o.rows, size)
	case *Filter:
		c := batchify(o.child, size)
		if bs, ok := c.(*BatchMemScan); ok && bs.pred == nil {
			bs.FusePredicate(o.pred, o.label)
			return bs
		}
		if bc, ok := c.(BatchOperator); ok {
			return NewBatchFilter(bc, o.pred, o.label)
		}
		return NewFilter(c, o.pred, o.label)
	case *Project:
		c := batchify(o.child, size)
		if bc, ok := c.(BatchOperator); ok {
			return NewBatchProject(bc, o.exprs, o.schema)
		}
		return NewProject(c, o.exprs, o.schema)
	case *HashAggregate:
		c := BatchOf(batchify(o.child, size), size)
		agg := NewBatchHashAggregate(c, o.groupBy, o.aggs, o.having, o.schema)
		if o.groupCols != nil {
			agg.SetGroupColumns(o.groupCols)
		}
		if o.aggCols != nil {
			agg.SetAggColumns(o.aggCols)
		}
		return agg
	case *NLJoin:
		outer := BatchOf(batchify(o.outer, size), size)
		inner := batchify(o.inner, size)
		return NewBatchNLJoin(o.name, outer, inner, o.method, o.residual, size)
	case *Distinct:
		return NewDistinct(batchify(o.child, size))
	case *Sort:
		return NewSort(batchify(o.child, size), o.keys, o.desc)
	case *Limit:
		return NewLimit(batchify(o.child, size), o.n)
	case *reschema:
		c := batchify(o.child, size)
		if bc, ok := c.(BatchOperator); ok {
			return &batchReschema{child: bc, schema: o.schema}
		}
		return &reschema{child: c, schema: o.schema}
	default:
		// ParallelJoinAgg (its internals drive the join specially) and any
		// already-batch operator from a nested PlanSelect pass through.
		return op
	}
}

// batchReschema is reschema's batch counterpart: it relabels the child
// schema and forwards chunks untouched.
type batchReschema struct {
	batchCursor
	child  BatchOperator
	schema value.Schema
}

func (r *batchReschema) Schema() value.Schema { return r.schema }
func (r *batchReschema) BatchSize() int       { return r.child.BatchSize() }
func (r *batchReschema) Open() error {
	r.reset()
	return r.child.Open()
}
func (r *batchReschema) NextBatch() (*value.Batch, error) { return r.child.NextBatch() }
func (r *batchReschema) Next() (value.Row, error)         { return r.next(r.child.NextBatch) }
func (r *batchReschema) Close() error                     { return r.child.Close() }
func (r *batchReschema) Describe() string                 { return "Subquery Scan" }
func (r *batchReschema) Children() []Operator             { return []Operator{r.child} }
