package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic converted to an error at a goroutine or Run
// boundary, carrying the panicking site (an operator Describe or worker
// name), the recovered value, and the stack captured at recovery. A panic
// anywhere in a plan — including inside parallel workers — surfaces to the
// caller as exactly one *PanicError instead of killing the process.
type PanicError struct {
	Site  string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Site, e.Value)
}

// NewPanicError wraps a recovered value. A value that already is a
// *PanicError passes through unchanged so nested containment boundaries do
// not re-wrap.
func NewPanicError(site string, recovered any) *PanicError {
	if pe, ok := recovered.(*PanicError); ok {
		return pe
	}
	return &PanicError{Site: site, Value: recovered, Stack: debug.Stack()}
}

// CapturePanic converts an in-flight panic into a *PanicError stored in
// *errp. It must be invoked as a deferred call:
//
//	defer engine.CapturePanic("parallel join worker", &err)
//
// With no panic in flight it leaves *errp untouched.
func CapturePanic(site string, errp *error) {
	if r := recover(); r != nil {
		*errp = NewPanicError(site, r)
	}
}
