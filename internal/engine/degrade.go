package engine

// DegradeReason enumerates the rungs of the degradation ladder a query can
// descend under memory pressure, in ladder order: the NLJP cache sheds
// entries first, aggregation state overflows to disk next, and as the last
// resort before a typed error the optimizer falls back to the baseline plan.
type DegradeReason int

const (
	// DegradeCacheShed: the NLJP memoization cache evicted or refused
	// entries to stay inside the budget.
	DegradeCacheShed DegradeReason = iota
	// DegradeSpill: operator state overflowed to checksummed disk runs.
	DegradeSpill
	// DegradeBaseline: the optimizer abandoned the rewritten plan and
	// re-ran the query on the baseline plan.
	DegradeBaseline
	// DegradeSkipDisabled: a fault while building zone maps or building/
	// transferring a join filter disabled scan avoidance for the query; it
	// ran unskipped (correct, just slower).
	DegradeSkipDisabled
)

// String returns the stable name printed in EXPLAIN ANALYZE and reports.
func (r DegradeReason) String() string {
	switch r {
	case DegradeCacheShed:
		return "cache-shed"
	case DegradeSpill:
		return "spill"
	case DegradeBaseline:
		return "baseline-fallback"
	case DegradeSkipDisabled:
		return "skip-disabled"
	default:
		return "unknown"
	}
}

// DegradeReasonStrings formats reasons for one-line reports.
func DegradeReasonStrings(rs []DegradeReason) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.String()
	}
	return out
}
