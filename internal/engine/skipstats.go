package engine

import "sync/atomic"

// SkipStats aggregates the scan-avoidance counters: blocks and rows skipped
// by zone maps, probe rows dropped by transferred join filters (at the scan's
// membership kernel and at the join's Bloom pre-check combined), and the
// number of filters built and successfully transferred. Totals are process-
// wide and cumulative; per-operator counts appear in EXPLAIN ANALYZE.
type SkipStats struct {
	SkippedBlocks      int64 `json:"skipped_blocks"`
	SkippedRows        int64 `json:"skipped_rows"`
	SkippedProbes      int64 `json:"skipped_probes"`
	FiltersBuilt       int64 `json:"filters_built"`
	FiltersTransferred int64 `json:"filters_transferred"`
}

var skipTotals struct {
	blocks, rows, probes, built, transferred atomic.Int64
}

// SkipTotals returns a snapshot of the process-wide scan-avoidance counters.
func SkipTotals() SkipStats {
	return SkipStats{
		SkippedBlocks:      skipTotals.blocks.Load(),
		SkippedRows:        skipTotals.rows.Load(),
		SkippedProbes:      skipTotals.probes.Load(),
		FiltersBuilt:       skipTotals.built.Load(),
		FiltersTransferred: skipTotals.transferred.Load(),
	}
}

// ResetSkipTotals zeroes the process-wide counters (benchmarks isolate runs).
func ResetSkipTotals() {
	skipTotals.blocks.Store(0)
	skipTotals.rows.Store(0)
	skipTotals.probes.Store(0)
	skipTotals.built.Store(0)
	skipTotals.transferred.Store(0)
}

func addSkipTotals(blocks, rows, probes int64) {
	if blocks != 0 {
		skipTotals.blocks.Add(blocks)
	}
	if rows != 0 {
		skipTotals.rows.Add(rows)
	}
	if probes != 0 {
		skipTotals.probes.Add(probes)
	}
}

// skipReporter is implemented by scans that count zone-map block skips and
// transfer-filter probe drops; EXPLAIN ANALYZE annotates their plan lines.
type skipReporter interface {
	SkipCounts() (blocks, rows, probes int64)
}

// transferReporter is implemented by joins that built a transfer filter;
// EXPLAIN ANALYZE annotates their plan lines with the filter size and the
// probes its Bloom pre-check absorbed.
type transferReporter interface {
	TransferInfo() (built bool, keys int, probesSkipped int64)
}
