package engine

import (
	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/value"
)

// BatchNLJoin is the chunk-at-a-time NLJoin: the build side is materialized
// through the batch pipeline, outer rows arrive in chunks, and matches are
// emitted into an output chunk. Probing uses a caller-owned ProbeScratch so
// the hot loop is allocation-free. Outer rows are consumed in order and
// matches emitted in probe order, so the stream is byte-identical to NLJoin.
type BatchNLJoin struct {
	execState
	batchCursor
	outer    BatchOperator
	inner    Operator
	method   Prober
	residual expr.Compiled // over outerSchema ++ innerSchema; may be nil
	name     string
	schema   value.Schema
	size     int

	innerRows []value.Row
	reserved  int64
	out       int64
	// transferred marks that this join's key filter was installed on at
	// least one probe-side scan (EXPLAIN ANALYZE annotation); probeFlushed
	// guards the one-shot flush of Bloom-skipped probe counts at Close.
	transferred  bool
	probeFlushed bool
	outerCur  *value.Batch
	outerPos  int
	curOuter  value.Row
	matches   []int32
	matchPos  int
	probe     ProbeScratch
	batch     *value.Batch
}

// NewBatchNLJoin builds a batch join over a batch outer and a (materialized
// at Open) inner; name is shown by EXPLAIN.
func NewBatchNLJoin(name string, outer BatchOperator, inner Operator, method Prober, residual expr.Compiled, size int) *BatchNLJoin {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchNLJoin{
		outer: outer, inner: inner, method: method, residual: residual,
		name:   name,
		schema: outer.Schema().Concat(inner.Schema()),
		size:   size,
	}
}

// Schema implements Operator.
func (j *BatchNLJoin) Schema() value.Schema { return j.schema }

// BatchSize implements BatchOperator.
func (j *BatchNLJoin) BatchSize() int { return j.size }

// Open implements Operator.
func (j *BatchNLJoin) Open() error {
	if err := failpoint.Inject(failpoint.JoinOpen); err != nil {
		return err
	}
	rows, err := RunExecBatch(j.exec(), j.inner, j.size)
	if err != nil {
		return err
	}
	// Same accounting as NLJoin: the materialized build side is charged for
	// the whole probe phase.
	j.reserved = resource.RowsBytes(rows)
	if err := j.exec().Charge("join build side", j.reserved); err != nil {
		j.reserved = 0
		return err
	}
	j.innerRows = rows
	if err := j.method.Build(rows); err != nil {
		return err
	}
	j.transferred = false
	j.probeFlushed = false
	if hm, ok := j.method.(*hashMethod); ok && hm.transfer {
		// Sideways predicate transfer: the build side is materialized and its
		// key filter final, but no probe-side scan has opened yet (outer.Open
		// runs last below) — the only window where installing filters on them
		// is race-free.
		j.installTransfer(hm)
	}
	j.outerCur = nil
	j.outerPos = 0
	j.curOuter = nil
	j.matches = nil
	j.matchPos = 0
	j.out = 0
	j.reset()
	if j.batch == nil {
		j.batch = value.NewBatch(len(j.schema), j.size)
	}
	return j.outer.Open()
}

// NextBatch implements BatchOperator.
func (j *BatchNLJoin) NextBatch() (*value.Batch, error) {
	if err := failpoint.Inject(failpoint.JoinNext); err != nil {
		return nil, err
	}
	if err := j.stepChunk(); err != nil {
		return nil, err
	}
	out := j.batch
	out.Reset()
	outerWidth := len(j.outer.Schema())
	for out.Len() < j.size {
		if err := j.step(); err != nil {
			return nil, err
		}
		if j.matchPos < len(j.matches) {
			ir := j.innerRows[j.matches[j.matchPos]]
			j.matchPos++
			dst := out.PushRow()
			copy(dst, j.curOuter)
			copy(dst[outerWidth:], ir)
			if j.residual != nil {
				ok, err := expr.EvalBool(j.residual, dst)
				if err != nil {
					return nil, err
				}
				if !ok {
					out.PopRow()
				}
			}
			continue
		}
		// Advance to the next outer row, pulling a fresh outer chunk when the
		// current one is spent. A spent match list keeps curOuter pointing
		// into outerCur, which stays valid until the next outer.NextBatch.
		if j.outerCur == nil || j.outerPos >= j.outerCur.Len() {
			b, err := j.outer.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.outerCur = nil
				j.curOuter = nil
				break
			}
			//lint:ignore rowalias outerCur is only read until the next outer.NextBatch call, within the batch's validity window
			j.outerCur = b
			j.outerPos = 0
		}
		//lint:ignore rowalias curOuter aliases outerCur and is released before the next outer chunk is pulled
		j.curOuter = j.outerCur.Row(j.outerPos)
		j.outerPos++
		matches, err := ProbeInto(j.method, j.curOuter, &j.probe)
		if err != nil {
			return nil, err
		}
		j.matches = matches
		j.matchPos = 0
	}
	if out.Len() == 0 {
		return nil, nil
	}
	j.out += int64(out.Len())
	return out, nil
}

// Next implements Operator.
func (j *BatchNLJoin) Next() (value.Row, error) { return j.next(j.NextBatch) }

// Close implements Operator.
func (j *BatchNLJoin) Close() error {
	j.exec().Release(j.reserved)
	j.reserved = 0
	if !j.probeFlushed {
		j.probeFlushed = true
		if hm, ok := j.method.(*hashMethod); ok {
			skipTotals.probes.Add(hm.skippedProbes.Load())
		}
	}
	if err := failpoint.Inject(failpoint.JoinClose); err != nil {
		//lint:ignore closecheck injected fault takes precedence; the real close still runs
		_ = j.outer.Close()
		return err
	}
	return j.outer.Close()
}

// Describe implements Operator.
func (j *BatchNLJoin) Describe() string {
	d := j.name + " (" + j.method.Describe() + ")"
	if j.residual != nil {
		d += " + residual filter"
	}
	return d
}

// Children implements Operator.
func (j *BatchNLJoin) Children() []Operator { return []Operator{j.outer, j.inner} }

// ActualRows implements rowCounter.
func (j *BatchNLJoin) ActualRows() int64 { return j.out }
