package engine

import (
	"fmt"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/value"
)

// DefaultBatchSize is the chunk capacity the batch pipeline uses when the
// caller asks for batching without naming a size. 1024 rows keeps a chunk of
// typical width within the L2 cache while amortizing per-chunk bookkeeping
// (cancellation polls, failpoint loads, interface dispatch) to noise.
const DefaultBatchSize = 1024

// batchScanCheckEvery bounds how many input rows a fused scan+filter may
// consume inside a single NextBatch call between context polls: a highly
// selective predicate must not turn "one check per chunk" into "one check
// per full table scan".
const batchScanCheckEvery = 4096

// BatchOperator is the chunk-at-a-time side of the Volcano contract: an
// Operator that can also deliver its stream as value.Batch chunks. NextBatch
// returns nil at end of stream. The returned batch is owned by the caller
// until the next NextBatch (or Next) call — it may be read and mutated in
// place (filters compact into it), but retaining it or a row sliced from it
// requires Clone (enforced by the icelint rowalias pass). An operator's Next
// and NextBatch share one cursor; a consumer must stick to one protocol per
// Open.
type BatchOperator interface {
	Operator
	NextBatch() (*value.Batch, error)
	// BatchSize reports the operator's output chunk capacity, for EXPLAIN.
	BatchSize() int
}

// batchCursor adapts NextBatch to the row protocol: every native batch
// operator embeds one so it still satisfies plain Operator (Sort, Distinct,
// Limit, and the NLJP binding loop compose with batch children unchanged).
type batchCursor struct {
	cur *value.Batch
	pos int
}

func (c *batchCursor) reset() { c.cur, c.pos = nil, 0 }

func (c *batchCursor) next(nextBatch func() (*value.Batch, error)) (value.Row, error) {
	for {
		if c.cur != nil && c.pos < c.cur.Len() {
			r := c.cur.Row(c.pos)
			c.pos++
			return r, nil
		}
		b, err := nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		//lint:ignore rowalias the cursor serves rows only until the next NextBatch call, within the batch's validity window
		c.cur = b
		c.pos = 0
	}
}

// ---------------------------------------------------------------------------
// Batch scan (with optional fused filter)

// BatchMemScan is the chunk-at-a-time MemScan. When a predicate is fused in
// (Batchify folds an adjacent Filter into the scan), rows failing it never
// leave the operator — the scan and filter share one loop and one chunk.
type BatchMemScan struct {
	execState
	batchCursor
	Label     string
	schema    value.Schema
	rows      []value.Row
	pred      expr.Compiled // optional fused filter
	predLabel string
	size      int
	pos       int
	out       int64
	batch     *value.Batch
	// cols, when set, is the column-major twin of rows; the scan then emits
	// columnar chunks (a selection vector per fixed input window) instead of
	// row views, unless a fused predicate has no kernel form. kern is the
	// typed kernel of the fused predicate, compiled by Batchify.
	cols    *value.Columns
	kern    expr.SelKernel
	colMode bool
	// Scan avoidance (columnar mode only). zones summarizes cols per block;
	// zonePred accumulates the pushed-down predicate's zone form and any
	// transferred filter envelopes, and a block it rejects is skipped whole.
	// transferKerns are membership kernels of transferred join filters,
	// applied to each window's fresh selection. Skipping and transfer only
	// remove rows the fused predicate or a downstream join would discard, so
	// the output stream is byte-identical either way.
	zones         *value.ZoneMaps
	zonePred      expr.ZonePred
	transferKerns []expr.SelKernel
	skippedBlocks int64
	skippedRows   int64
	skippedProbes int64
	skipFlushed   bool
}

// NewBatchMemScan builds a batch scan over rows with the given schema and
// chunk capacity.
func NewBatchMemScan(label string, schema value.Schema, rows []value.Row, size int) *BatchMemScan {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchMemScan{Label: label, schema: schema, rows: rows, size: size}
}

// FusePredicate folds a filter into the scan loop; label is shown by EXPLAIN.
func (s *BatchMemScan) FusePredicate(pred expr.Compiled, label string) {
	s.pred, s.predLabel = pred, label
}

// SetColumns attaches the column-major form of the scanned rows. The scan
// switches to columnar chunks — selection vectors over cols — whenever the
// fused predicate (if any) has a typed kernel; a kernel-less fused predicate
// keeps the row-view path so the compiled closure still runs.
func (s *BatchMemScan) SetColumns(cols *value.Columns) { s.cols = cols }

// FuseSelKernel installs the typed-kernel form of the fused predicate. The
// kernel must agree with the FusePredicate closure verdict-for-verdict (the
// row path stays authoritative for EXPLAIN and fallback).
func (s *BatchMemScan) FuseSelKernel(k expr.SelKernel) { s.kern = k }

// SetZoneMaps attaches per-block summaries over the scan's columns; zone
// predicates then skip blocks whole. zones must summarize exactly the rows of
// the attached Columns (callers verify zones.Len()).
func (s *BatchMemScan) SetZoneMaps(z *value.ZoneMaps) { s.zones = z }

// FuseZonePred conjoins a zone predicate: a block it rejects provably yields
// no output rows and is skipped. Multiple calls accumulate under AND.
func (s *BatchMemScan) FuseZonePred(p expr.ZonePred) {
	s.zonePred = expr.ZoneAnd(s.zonePred, p)
}

// AddTransferKernel installs a transferred join-filter membership kernel; the
// scan drops rows whose join key provably misses the filter's build side.
// Multiple ancestor joins may each install one.
func (s *BatchMemScan) AddTransferKernel(k expr.SelKernel) {
	s.transferKerns = append(s.transferKerns, k)
}

// CanTransfer reports whether the scan will run in columnar mode, i.e.
// whether zone predicates and transfer kernels installed now would take
// effect (mirrors the colMode decision Open makes).
func (s *BatchMemScan) CanTransfer() bool {
	return s.cols != nil && (s.pred == nil || s.kern != nil)
}

// ZoneMaps returns the attached zone maps, if any.
func (s *BatchMemScan) ZoneMaps() *value.ZoneMaps { return s.zones }

// SkipCounts implements skipReporter.
func (s *BatchMemScan) SkipCounts() (blocks, rows, probes int64) {
	return s.skippedBlocks, s.skippedRows, s.skippedProbes
}

// Schema implements Operator.
func (s *BatchMemScan) Schema() value.Schema { return s.schema }

// BatchSize implements BatchOperator.
func (s *BatchMemScan) BatchSize() int { return s.size }

// Open implements Operator.
func (s *BatchMemScan) Open() error {
	if err := failpoint.Inject(failpoint.ScanOpen); err != nil {
		return err
	}
	s.pos = 0
	s.out = 0
	s.skippedBlocks, s.skippedRows, s.skippedProbes = 0, 0, 0
	s.skipFlushed = false
	s.reset()
	s.colMode = s.cols != nil && (s.pred == nil || s.kern != nil)
	switch {
	case s.colMode:
		if s.batch == nil || s.batch.Cols() != s.cols {
			// Columnar mode: each chunk is a pointer-free selection vector
			// over the table's column vectors — nothing row-shaped is written
			// on the hot path, so the GC write barrier stays cold.
			s.batch = value.NewColBatch(s.cols, s.size)
		}
	default:
		if s.batch == nil || s.batch.Cols() != nil {
			// View mode: the chunk holds references into the materialized
			// rows, which outlive the scan, so no value is ever copied.
			s.batch = value.NewViewBatch(len(s.schema), s.size)
		}
	}
	return nil
}

// NextBatch implements BatchOperator.
func (s *BatchMemScan) NextBatch() (*value.Batch, error) {
	if err := failpoint.Inject(failpoint.ScanNext); err != nil {
		return nil, err
	}
	if s.pred != nil {
		if err := failpoint.Inject(failpoint.FilterNext); err != nil {
			return nil, err
		}
	}
	if err := s.stepChunk(); err != nil {
		return nil, err
	}
	if s.colMode {
		return s.nextColBatch()
	}
	b := s.batch
	b.Reset()
	scanned := 0
	for s.pos < len(s.rows) && b.Len() < s.size {
		r := s.rows[s.pos]
		s.pos++
		if scanned++; scanned == batchScanCheckEvery {
			scanned = 0
			if err := s.stepChunk(); err != nil {
				return nil, err
			}
		}
		if s.pred != nil {
			ok, err := expr.EvalBool(s.pred, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		b.AppendRef(r)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	s.out += int64(b.Len())
	return b, nil
}

// nextColBatch is the columnar scan loop: one fixed-size input window per
// chunk, filtered by the selection kernel (when fused). A fully filtered
// window pulls the next one so the operator never emits an empty chunk, and
// long kernel-only stretches still poll cancellation every
// batchScanCheckEvery input rows, like the row loop. With zone maps attached,
// sub-windows are clamped to zone-block boundaries and a block the zone
// predicate rejects is skipped without running the kernel; transferred
// membership kernels then filter each window's fresh selection.
func (s *BatchMemScan) nextColBatch() (*value.Batch, error) {
	b := s.batch
	n := s.cols.Len()
	zoning := s.zones != nil && s.zonePred != nil
	for {
		b.Reset()
		if s.pos >= n {
			return nil, nil
		}
		lo := s.pos
		hi := lo + s.size
		if hi > n {
			hi = n
		}
		s.pos = hi
		//lint:ignore rowalias the scan owns this selection and rewrites it each chunk within the batch's validity window
		sel := b.Sel()[:0]
		if s.kern != nil || zoning || len(s.transferKerns) > 0 {
			// The check leads the sub-window so every iteration path of the
			// kernel loop polls cancellation (icelint cancelcheck verifies this).
			for lo < hi {
				if err := s.stepChunk(); err != nil {
					return nil, err
				}
				mid := lo + batchScanCheckEvery
				if mid > hi {
					mid = hi
				}
				if zoning {
					// Keep sub-windows inside one zone block so a single probe
					// answers for the whole window. Skipping a partial window
					// of a rejected block is equally sound: the predicate
					// selects nothing anywhere in the block.
					if end := s.zones.BlockEnd(lo); end < mid {
						mid = end
					}
					if !s.zonePred(s.zones, s.zones.BlockOf(lo)) {
						if lo%s.zones.BlockSize() == 0 {
							s.skippedBlocks++
						}
						s.skippedRows += int64(mid - lo)
						lo = mid
						continue
					}
				}
				start := len(sel)
				var err error
				if s.kern != nil {
					sel, err = s.kern(s.cols, lo, mid, nil, sel)
					if err != nil {
						return nil, err
					}
				} else {
					for i := lo; i < mid; i++ {
						sel = append(sel, int32(i))
					}
				}
				for _, tk := range s.transferKerns {
					if err := s.stepChunk(); err != nil {
						return nil, err
					}
					// Each transferred filter compacts only the rows this
					// window just selected; out trails cand so aliasing the
					// tail of sel is safe.
					newPart := sel[start:]
					before := len(newPart)
					filtered, err := tk(s.cols, lo, mid, newPart, newPart[:0])
					if err != nil {
						return nil, err
					}
					sel = sel[:start+len(filtered)]
					s.skippedProbes += int64(before - len(filtered))
				}
				lo = mid
			}
		} else {
			for i := lo; i < hi; i++ {
				sel = append(sel, int32(i))
			}
		}
		b.SetSel(sel)
		if b.Len() > 0 {
			s.out += int64(b.Len())
			return b, nil
		}
		if err := s.stepChunk(); err != nil {
			return nil, err
		}
	}
}

// Next implements Operator.
func (s *BatchMemScan) Next() (value.Row, error) { return s.next(s.NextBatch) }

// Close implements Operator.
func (s *BatchMemScan) Close() error {
	if !s.skipFlushed {
		s.skipFlushed = true
		addSkipTotals(s.skippedBlocks, s.skippedRows, s.skippedProbes)
	}
	return failpoint.Inject(failpoint.ScanClose)
}

// Describe implements Operator.
func (s *BatchMemScan) Describe() string {
	d := fmt.Sprintf("Seq Scan on %s (%d rows)", s.Label, len(s.rows))
	if s.pred != nil {
		d += "; Filter: " + s.predLabel
	}
	return d
}

// Children implements Operator.
func (s *BatchMemScan) Children() []Operator { return nil }

// ActualRows implements rowCounter.
func (s *BatchMemScan) ActualRows() int64 { return s.out }

// ---------------------------------------------------------------------------
// Batch filter

// BatchFilter compacts each child chunk in place, keeping rows that satisfy
// the predicate. Order within the chunk is preserved, so the stream is
// byte-identical to Filter over the same input.
type BatchFilter struct {
	execState
	batchCursor
	child BatchOperator
	pred  expr.Compiled
	kern  expr.SelKernel // optional typed kernel, used on columnar chunks
	label string
	out   int64
}

// NewBatchFilter wraps child with a predicate; label is used by EXPLAIN.
func NewBatchFilter(child BatchOperator, pred expr.Compiled, label string) *BatchFilter {
	return &BatchFilter{child: child, pred: pred, label: label}
}

// SetSelKernel installs the typed-kernel form of the predicate. Columnar
// chunks are then filtered by compacting the selection vector in place —
// no row materialization, no value moves; row-view and buffer chunks keep
// the compiled-closure loop.
func (f *BatchFilter) SetSelKernel(k expr.SelKernel) { f.kern = k }

// Schema implements Operator.
func (f *BatchFilter) Schema() value.Schema { return f.child.Schema() }

// BatchSize implements BatchOperator.
func (f *BatchFilter) BatchSize() int { return f.child.BatchSize() }

// Open implements Operator.
func (f *BatchFilter) Open() error {
	f.out = 0
	f.reset()
	return f.child.Open()
}

// NextBatch implements BatchOperator.
func (f *BatchFilter) NextBatch() (*value.Batch, error) {
	if err := failpoint.Inject(failpoint.FilterNext); err != nil {
		return nil, err
	}
	for {
		if err := f.stepChunk(); err != nil {
			return nil, err
		}
		b, err := f.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if f.kern != nil && b.Cols() != nil {
			//lint:ignore rowalias in-place compaction of the chunk's own selection, within its validity window
			sel := b.Sel()
			out, err := f.kern(b.Cols(), 0, 0, sel, sel[:0])
			if err != nil {
				return nil, err
			}
			b.SetSel(out)
			if b.Len() == 0 {
				continue
			}
			f.out += int64(b.Len())
			return b, nil
		}
		w := 0
		for i := 0; i < b.Len(); i++ {
			ok, err := expr.EvalBool(f.pred, b.Row(i))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			b.MoveRow(w, i)
			w++
		}
		if w == 0 {
			continue // fully filtered chunk; pull the next one
		}
		b.Truncate(w)
		f.out += int64(w)
		return b, nil
	}
}

// Next implements Operator.
func (f *BatchFilter) Next() (value.Row, error) { return f.next(f.NextBatch) }

// Close implements Operator.
func (f *BatchFilter) Close() error { return f.child.Close() }

// Describe implements Operator.
func (f *BatchFilter) Describe() string { return "Filter: " + f.label }

// Children implements Operator.
func (f *BatchFilter) Children() []Operator { return []Operator{f.child} }

// ActualRows implements rowCounter.
func (f *BatchFilter) ActualRows() int64 { return f.out }

// ---------------------------------------------------------------------------
// Batch project

// BatchProject evaluates the output expressions over each chunk into its own
// output batch (the child's chunk cannot be reused: the output width
// differs).
type BatchProject struct {
	execState
	batchCursor
	child  BatchOperator
	exprs  []expr.Compiled
	schema value.Schema
	out    int64
	batch  *value.Batch
}

// NewBatchProject builds a batch projection; schema names the output columns.
func NewBatchProject(child BatchOperator, exprs []expr.Compiled, schema value.Schema) *BatchProject {
	return &BatchProject{child: child, exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *BatchProject) Schema() value.Schema { return p.schema }

// BatchSize implements BatchOperator.
func (p *BatchProject) BatchSize() int { return p.child.BatchSize() }

// Open implements Operator.
func (p *BatchProject) Open() error {
	p.out = 0
	p.reset()
	if p.batch == nil {
		p.batch = value.NewBatch(len(p.exprs), p.child.BatchSize())
	}
	return p.child.Open()
}

// NextBatch implements BatchOperator.
func (p *BatchProject) NextBatch() (*value.Batch, error) {
	if err := p.stepChunk(); err != nil {
		return nil, err
	}
	in, err := p.child.NextBatch()
	if err != nil || in == nil {
		return nil, err
	}
	out := p.batch
	out.Reset()
	for i := 0; i < in.Len(); i++ {
		r := in.Row(i)
		dst := out.PushRow()
		for j, e := range p.exprs {
			v, err := e(r)
			if err != nil {
				return nil, err
			}
			dst[j] = v
		}
	}
	p.out += int64(out.Len())
	return out, nil
}

// Next implements Operator.
func (p *BatchProject) Next() (value.Row, error) { return p.next(p.NextBatch) }

// Close implements Operator.
func (p *BatchProject) Close() error { return p.child.Close() }

// Describe implements Operator.
func (p *BatchProject) Describe() string { return "Project " + p.schema.String() }

// Children implements Operator.
func (p *BatchProject) Children() []Operator { return []Operator{p.child} }

// ActualRows implements rowCounter.
func (p *BatchProject) ActualRows() int64 { return p.out }

// ---------------------------------------------------------------------------
// Adapters

// BatchOf returns op's stream as a BatchOperator with chunks of up to size
// rows. Operators that already speak the batch protocol are returned as-is;
// anything else is wrapped in an adapter that gathers child rows into a
// reused chunk (copying them, since a child row is only valid until its next
// Next call).
func BatchOf(op Operator, size int) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &batchAdapter{child: op, size: size}
}

type batchAdapter struct {
	execState
	child Operator
	size  int
	batch *value.Batch
	done  bool
}

func (a *batchAdapter) Schema() value.Schema { return a.child.Schema() }
func (a *batchAdapter) BatchSize() int       { return a.size }

func (a *batchAdapter) Open() error {
	a.done = false
	if a.batch == nil {
		a.batch = value.NewBatch(len(a.child.Schema()), a.size)
	}
	return a.child.Open()
}

func (a *batchAdapter) NextBatch() (*value.Batch, error) {
	if a.done {
		return nil, nil
	}
	if err := a.stepChunk(); err != nil {
		return nil, err
	}
	b := a.batch
	b.Reset()
	for b.Len() < a.size {
		if err := a.step(); err != nil {
			return nil, err
		}
		r, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			a.done = true
			break
		}
		b.AppendRow(r)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (a *batchAdapter) Next() (value.Row, error) { return a.child.Next() }
func (a *batchAdapter) Close() error             { return a.child.Close() }
func (a *batchAdapter) Describe() string         { return "Batch Adapter" }
func (a *batchAdapter) Children() []Operator     { return []Operator{a.child} }

// RowsOf returns a plain row-protocol view of a batch operator. Every
// BatchOperator already implements Operator, so this is only needed when a
// caller wants an explicit row-only facade (tests comparing the two
// protocols, mostly).
func RowsOf(op BatchOperator) Operator { return &rowsAdapter{child: op} }

type rowsAdapter struct {
	batchCursor
	child BatchOperator
}

func (a *rowsAdapter) Schema() value.Schema { return a.child.Schema() }
func (a *rowsAdapter) Open() error {
	a.reset()
	return a.child.Open()
}
func (a *rowsAdapter) Next() (value.Row, error) { return a.next(a.child.NextBatch) }
func (a *rowsAdapter) Close() error             { return a.child.Close() }
func (a *rowsAdapter) Describe() string         { return "Row Adapter" }
func (a *rowsAdapter) Children() []Operator     { return []Operator{a.child} }

// ---------------------------------------------------------------------------
// Batch drain

// RunExecBatch drains op through the batch protocol in chunks of size rows,
// with the same guarantees as RunExec: ec is bound to the whole plan, panics
// surface as *PanicError after a best-effort Close, and a cancellation that
// lands after the last chunk still fails the query. Cancellation, failpoint,
// and budget checks happen per chunk. size <= 0 falls back to the row-at-a-
// time RunExec.
func RunExecBatch(ec *ExecContext, op Operator, size int) (rows []value.Row, err error) {
	if size <= 0 {
		return RunExec(ec, op)
	}
	if ec == nil {
		ec = backgroundExec
	}
	bop := BatchOf(op, size)
	Bind(bop, ec)
	defer func() {
		if r := recover(); r != nil {
			_ = bop.Close() // best-effort release while panicking
			rows, err = nil, NewPanicError(bop.Describe(), r)
		}
	}()
	if err := bop.Open(); err != nil {
		//lint:ignore closecheck the Open failure takes precedence; Close here only releases partial state
		_ = bop.Close()
		return nil, err
	}
	var out []value.Row
	var runErr error
	for {
		if runErr = ec.Err(); runErr != nil {
			break
		}
		var b *value.Batch
		b, runErr = bop.NextBatch()
		if runErr != nil || b == nil {
			break
		}
		out = b.CloneRows(out)
	}
	if cerr := bop.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr == nil {
		// A cancel between the last chunk and end of stream (or during
		// Close) still invalidates the result, mirroring RunExec.
		runErr = ec.Err()
	}
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}
