package engine

import (
	"math/rand"
	"strings"
	"testing"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

func TestOrderByAggregateAndAlias(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT item, COUNT(*) AS cnt FROM Basket
		GROUP BY item ORDER BY COUNT(*) DESC, item ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "a" || res.Rows[0][1].I != 4 {
		t.Fatalf("expected item a first: %v", res.Rows)
	}
	// Same ordering via the select alias.
	res2, err := Exec(cat, `
		SELECT item, COUNT(*) AS cnt FROM Basket
		GROUP BY item ORDER BY cnt DESC, item ASC`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i][0].S != res2.Rows[i][0].S {
			t.Fatalf("alias ordering differs at %d: %v vs %v", i, res.Rows, res2.Rows)
		}
	}
}

func TestHavingWithoutSelectAggregate(t *testing.T) {
	cat := testCatalog(t)
	// The HAVING aggregate does not appear in the SELECT list.
	res, err := Exec(cat, `
		SELECT item FROM Basket GROUP BY item HAVING COUNT(*) >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"a", "b"})
}

func TestGroupByExpression(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT x + y, COUNT(*) FROM Object GROUP BY x + y ORDER BY x + y`)
	if err != nil {
		t.Fatal(err)
	}
	// sums: 2,4,6,5,5 -> groups 2:1, 4:1, 5:2, 6:1.
	assertRows(t, res.Rows, []string{"2|1", "4|1", "5|2", "6|1"})
}

func TestDistinctSelect(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, "SELECT DISTINCT bid FROM Basket ORDER BY bid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 distinct bids, got %v", res.Rows)
	}
}

func TestVendorAWithCTE(t *testing.T) {
	cat := testCatalog(t)
	sql := `
		WITH freq AS (SELECT item, COUNT(*) cnt FROM Basket GROUP BY item)
		SELECT f.cnt, COUNT(*) FROM freq f, Basket b
		WHERE f.item = b.item
		GROUP BY f.cnt HAVING COUNT(*) >= 1`
	stmt, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewPlanner(cat)
	opS, err := serial.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsS, err := Run(opS)
	if err != nil {
		t.Fatal(err)
	}
	par := NewPlanner(cat)
	par.Parallel = true
	par.Workers = 2
	opP, err := par.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsP, err := Run(opP)
	if err != nil {
		t.Fatal(err)
	}
	gs, gp := rowsToStrings(rowsS), rowsToStrings(rowsP)
	if strings.Join(gs, ";") != strings.Join(gp, ";") {
		t.Fatalf("parallel CTE result differs: %v vs %v", gs, gp)
	}
}

func TestNoIndexPlannerMatchesIndexed(t *testing.T) {
	cat := testCatalog(t)
	sql := `
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y
		GROUP BY L.id HAVING COUNT(*) <= 3`
	stmt, _ := sqlparser.ParseSelect(sql)
	withIdx := NewPlanner(cat)
	noIdx := NewPlanner(cat)
	noIdx.UseIndexes = false
	op1, err := withIdx.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := noIdx.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(op1), "Indexed Nested Loop") {
		t.Errorf("indexed planner should use a range join:\n%s", Explain(op1))
	}
	if strings.Contains(Explain(op2), "Indexed Nested Loop") {
		t.Errorf("PK-only planner must not use a range join:\n%s", Explain(op2))
	}
	r1, err := Run(op1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(op2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowsToStrings(r1), rowsToStrings(r2)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("plans disagree: %v vs %v", a, b)
	}
}

func TestThreeWayJoin(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT a.bid, COUNT(*)
		FROM Basket a, Basket b, Basket c
		WHERE a.bid = b.bid AND b.bid = c.bid
		GROUP BY a.bid
		HAVING COUNT(*) >= 27`)
	if err != nil {
		t.Fatal(err)
	}
	// Basket 1 has 3 items: 3^3 = 27 triples.
	assertRows(t, res.Rows, []string{"1|27"})
}

func TestArithmeticInSelect(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, "SELECT id, x * 2 + y / 2 FROM Object WHERE id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsFloat() != 4 {
		t.Fatalf("expected 1*2+4/2 = 4: %v", res.Rows)
	}
}

func TestInsertNullAndIsNull(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := Exec(cat, "CREATE TABLE t (a BIGINT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(cat, "INSERT INTO t VALUES (1, NULL), (NULL, 'x'), (2, 'y')"); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(cat, "SELECT a FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"1"})
	res, err = Exec(cat, "SELECT COUNT(*), COUNT(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"3|2"})
	// NULLs group together.
	res, err = Exec(cat, "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 groups incl. the NULL group: %v", res.Rows)
	}
}

func TestErrorPropagation(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT nope FROM Object",
		"SELECT id FROM Missing",
		"SELECT id FROM Object o1, Object o2 WHERE o1.id = o3.id",
		"SELECT id, COUNT(*) FROM Object",            // id not grouped
		"SELECT * FROM Object GROUP BY id",           // star with grouping
		"INSERT INTO Object VALUES (1)",              // arity
		"INSERT INTO Object (id, wat) VALUES (1, 2)", // bad column
		"SELECT bid FROM Basket ORDER BY nothere",    // bad order key
	}
	for _, sql := range bad {
		if _, err := Exec(cat, sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

// TestJoinMethodsAgreeRandomized cross-checks hash, range, and block joins
// on random instances by forcing different plans via predicate shapes.
func TestJoinMethodsAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		cat := storage.NewCatalog()
		tab := storage.NewTable("r", []value.Column{
			{Name: "a", Type: value.Int},
			{Name: "b", Type: value.Int},
		}, nil)
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			tab.Rows = append(tab.Rows, value.Row{
				value.NewInt(int64(rng.Intn(6))),
				value.NewInt(int64(rng.Intn(6))),
			})
		}
		cat.Put(tab)
		// Equivalent formulations steering toward hash vs range vs block.
		queries := []string{
			"SELECT x.a, COUNT(*) FROM r x, r y WHERE x.a = y.a AND x.b <= y.b GROUP BY x.a",
			"SELECT x.a, COUNT(*) FROM r x, r y WHERE x.b <= y.b AND x.a = y.a GROUP BY x.a",
			"SELECT x.a, COUNT(*) FROM r x, r y WHERE NOT x.a <> y.a AND x.b <= y.b GROUP BY x.a",
		}
		var want []string
		for qi, sql := range queries {
			res, err := Exec(cat, sql)
			if err != nil {
				t.Fatalf("iter %d q%d: %v", iter, qi, err)
			}
			got := rowsToStrings(res.Rows)
			if want == nil {
				want = got
				continue
			}
			if strings.Join(got, ";") != strings.Join(want, ";") {
				t.Fatalf("iter %d: q%d disagrees: %v vs %v", iter, qi, got, want)
			}
		}
	}
}
