package engine

import (
	"sort"
	"strings"
	"testing"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// testCatalog builds a tiny catalog with a Basket table and an Object table
// matching the paper's running examples.
func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := Exec(cat, sql); err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE Basket (bid BIGINT, item TEXT, PRIMARY KEY (bid, item))")
	mustExec(`INSERT INTO Basket VALUES
		(1,'a'),(1,'b'),(1,'c'),
		(2,'a'),(2,'b'),
		(3,'a'),(3,'b'),
		(4,'c'),(4,'d'),
		(5,'a'),(5,'d')`)
	mustExec("CREATE TABLE Object (id BIGINT, x DOUBLE, y DOUBLE, PRIMARY KEY (id))")
	mustExec(`INSERT INTO Object VALUES
		(1, 1, 1),
		(2, 2, 2),
		(3, 3, 3),
		(4, 1, 4),
		(5, 4, 1)`)
	return cat
}

// rowsToStrings renders rows canonically for order-insensitive comparison.
func rowsToStrings(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func assertRows(t *testing.T, got []value.Row, want []string) {
	t.Helper()
	g := rowsToStrings(got)
	sort.Strings(want)
	if len(g) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(g), g, len(want), want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("row %d: got %q, want %q\nall got: %v", i, g[i], want[i], g)
		}
	}
}

func TestMarketBasketQuery(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT i1.item, i2.item, COUNT(*)
		FROM Basket i1, Basket i2
		WHERE i1.bid = i2.bid AND i1.item < i2.item
		GROUP BY i1.item, i2.item
		HAVING COUNT(*) >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (a,b): baskets 1,2,3 -> 3. (a,d): basket 5 only... plus none.
	// (a,c): basket 1. (c,d): basket 4. So only (a,b) qualifies.
	assertRows(t, res.Rows, []string{"a|b|3"})
}

func TestSkybandQuery(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		GROUP BY L.id
		HAVING COUNT(*) <= 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Dominance counts: obj1 dominated by 2,3 (and 4? 1<=1,1<=4 yes strict
	// on y -> yes) and 5 (1<=4,1<=1, strict x) -> 4 dominators.
	// obj2 dominated by 3 -> 1. obj3 -> 0 (no group). obj4 -> 0. obj5 -> 0.
	assertRows(t, res.Rows, []string{"2|1"})
}

func TestScalarAggregate(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, "SELECT COUNT(*), SUM(x), MIN(y), MAX(y), AVG(x) FROM Object")
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"5|11|1|4|2.2"})
}

func TestWhereFilterAndOrder(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, "SELECT id, x FROM Object WHERE x >= 2 ORDER BY x DESC, id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 5 || res.Rows[1][0].I != 3 {
		t.Fatalf("unexpected rows: %v", res.Rows)
	}
}

func TestCTEAndDerivedTable(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		WITH freq AS (
			SELECT item, COUNT(*) cnt FROM Basket GROUP BY item
		)
		SELECT f.item, f.cnt FROM freq f WHERE f.cnt >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"a|4", "b|3"})

	res, err = Exec(cat, `
		SELECT d.item FROM (SELECT item, COUNT(*) cnt FROM Basket GROUP BY item) d
		WHERE d.cnt = 2`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"c", "d"})
}

func TestInSubquery(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT bid, item FROM Basket
		WHERE item IN (SELECT item FROM Basket GROUP BY item HAVING COUNT(*) >= 3) AND bid = 1`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"1|a", "1|b"})

	// Tuple IN.
	res, err = Exec(cat, `
		SELECT bid, item FROM Basket
		WHERE (bid, item) IN (SELECT bid, item FROM Basket WHERE item = 'd')`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"4|d", "5|d"})
}

func TestParallelMatchesSerial(t *testing.T) {
	cat := testCatalog(t)
	sql := `
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		GROUP BY L.id
		HAVING COUNT(*) <= 50`
	stmt, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewPlanner(cat)
	par := NewPlanner(cat)
	par.Parallel = true
	par.Workers = 3
	opS, err := serial.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	opP, err := par.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsS, err := Run(opS)
	if err != nil {
		t.Fatal(err)
	}
	rowsP, err := Run(opP)
	if err != nil {
		t.Fatal(err)
	}
	gs, gp := rowsToStrings(rowsS), rowsToStrings(rowsP)
	if len(gs) != len(gp) {
		t.Fatalf("serial %v != parallel %v", gs, gp)
	}
	for i := range gs {
		if gs[i] != gp[i] {
			t.Fatalf("serial %v != parallel %v", gs, gp)
		}
	}
}

func TestExplainShapes(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sqlparser.ParseSelect(`
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y
		GROUP BY L.id HAVING COUNT(*) <= 1`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(cat)
	op, err := p.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := Explain(op)
	for _, want := range []string{"HashAggregate", "Indexed Nested Loop", "Seq Scan"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}
