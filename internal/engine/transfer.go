package engine

import (
	"fmt"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/value"
)

// Sideways predicate transfer, join side: after a BatchNLJoin materializes
// its build side (and hashMethod folded the keys into a KeyFilter), the
// filter is pushed onto the probe side's scans before they open. The walk
// only descends through operators where early row removal is provably
// invisible — filters (commute), nested joins (a dropped row can only produce
// concatenations the transferring join would discard) — and stops at
// everything else (aggregates, limits, subquery boundaries), because those
// change behavior when their input shrinks.

// transferTarget is the scan-side surface of predicate transfer; both
// BatchMemScan and ParallelBatchScan implement it.
type transferTarget interface {
	Schema() value.Schema
	ZoneMaps() *value.ZoneMaps
	FuseZonePred(expr.ZonePred)
	AddTransferKernel(expr.SelKernel)
	CanTransfer() bool
}

// installTransfer pushes hm's filter onto the probe-side scans. Every fault —
// a missing filter after a FilterBuild fault, an injected FilterTransfer
// error or panic, a budget refusal for the filter's memory — degrades to "no
// transfer" (recorded as skip-disabled) and never fails the join: the hash
// table is authoritative, pre-filtering is purely an optimization.
func (j *BatchNLJoin) installTransfer(hm *hashMethod) {
	if hm.filterFault {
		j.exec().Degrade(DegradeSkipDisabled)
		return
	}
	if hm.filter == nil {
		return
	}
	skipTotals.built.Add(1)
	if err := j.transferApply(hm); err != nil {
		j.exec().Degrade(DegradeSkipDisabled)
	}
}

func (j *BatchNLJoin) transferApply(hm *hashMethod) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("filter transfer: %v", r)
		}
	}()
	if err := failpoint.Inject(failpoint.FilterTransfer); err != nil {
		return err
	}
	// The filter lives as long as the probe phase; charge it like the build
	// side. The charge is folded into j.reserved so Close releases both.
	size := hm.filter.SizeBytes()
	if err := j.exec().Charge("transfer filter", size); err != nil {
		return err
	}
	j.reserved += size
	if installTransferOnScans(j.outer, hm) {
		j.transferred = true
		skipTotals.transferred.Add(1)
	}
	return nil
}

// installTransferOnScans walks the probe subtree and installs the filter on
// every scan it can soundly reach, reporting whether anything was installed.
func installTransferOnScans(op Operator, hm *hashMethod) bool {
	switch o := op.(type) {
	case *BatchMemScan:
		return installTransferOnScan(o, hm)
	case *ParallelBatchScan:
		return installTransferOnScan(o, hm)
	case *BatchFilter:
		return installTransferOnScans(o.child, hm)
	case *BatchNLJoin:
		// Both sides of a nested join feed concatenations into this join's
		// probe stream, so rows failing the filter on either side can only
		// produce probe rows the filter (and therefore the hash table) would
		// reject. Install on both; column references resolve on at most one
		// scan per alias, so nothing double-filters.
		a := installTransferOnScans(o.outer, hm)
		b := installTransferOnScans(o.inner, hm)
		return a || b
	}
	// Anything else — aggregates, sorts, limits, subquery reschemas, row
	// adapters — is a boundary: shrinking its input could change its output.
	return false
}

// installTransferOnScan resolves the filter's probe-key columns against one
// scan. Positions that resolve get the filter's min/max envelope as a zone
// predicate (per-position pruning is sound: a row outside any key position's
// build-side range cannot equi-join). The Bloom membership kernel needs the
// full key and installs only when every position resolves on this scan.
func installTransferOnScan(t transferTarget, hm *hashMethod) bool {
	if !t.CanTransfer() {
		return false
	}
	schema := t.Schema()
	keyCols := make([]int, len(hm.outerRefs))
	all := len(hm.outerRefs) > 0
	installed := false
	for p, ref := range hm.outerRefs {
		keyCols[p] = -1
		if ref == nil {
			all = false
			continue
		}
		ci, err := schema.Resolve(ref.Qualifier, ref.Name)
		if err != nil {
			all = false
			continue
		}
		keyCols[p] = ci
		if t.ZoneMaps() != nil {
			if min, max, ok := hm.filter.Envelope(p); ok {
				t.FuseZonePred(expr.ZoneRange(ci, min, max))
				installed = true
			}
		}
	}
	if all {
		t.AddTransferKernel(expr.MembershipKernel(hm.filter, keyCols))
		installed = true
	}
	return installed
}

// TransferInfo implements transferReporter.
func (j *BatchNLJoin) TransferInfo() (built bool, keys int, probesSkipped int64) {
	hm, ok := j.method.(*hashMethod)
	if !ok || hm.filter == nil {
		return false, 0, 0
	}
	return true, hm.filter.Len(), hm.skippedProbes.Load()
}
