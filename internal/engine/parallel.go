package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/value"
)

// ParallelJoinAgg fuses a join with grouping/aggregation and runs the outer
// side across worker goroutines with per-worker partial aggregation and a
// final merge. It is the stand-in for the paper's "Vendor A", whose edge
// over single-threaded executions came from using all four cores for
// identical plan shapes (Section 8.1, Appendix E).
type ParallelJoinAgg struct {
	execState
	join    *NLJoin
	groupBy []expr.Compiled
	aggs    []*expr.Aggregate
	having  expr.Compiled
	schema  value.Schema
	workers int

	groups   []*aggGroup
	reserved atomic.Int64
	pos      int
}

// NewParallelJoinAgg fuses join+aggregate. workers <= 0 selects
// min(4, GOMAXPROCS), matching the paper's 4-core testbed.
func NewParallelJoinAgg(join *NLJoin, groupBy []expr.Compiled, aggs []*expr.Aggregate, having expr.Compiled, schema value.Schema, workers int) *ParallelJoinAgg {
	return &ParallelJoinAgg{join: join, groupBy: groupBy, aggs: aggs, having: having, schema: schema, workers: DefaultWorkers(workers)}
}

// Schema implements Operator.
func (p *ParallelJoinAgg) Schema() value.Schema { return p.schema }

// errStopped is an internal sentinel: the feeder was unblocked by the stop
// channel. The real failure is in a worker's partial; the sentinel never
// escapes Open.
var errStopped = fmt.Errorf("parallel join: stopped by worker failure")

// Open implements Operator.
func (p *ParallelJoinAgg) Open() error {
	innerRows, err := RunExec(p.exec(), p.join.inner)
	if err != nil {
		return err
	}
	innerBytes := resource.RowsBytes(innerRows)
	if err := p.exec().Charge("parallel join build side", innerBytes); err != nil {
		return err
	}
	p.reserved.Add(innerBytes)
	if err := p.join.method.Build(innerRows); err != nil {
		return err
	}
	outerWidth := len(p.join.outer.Schema())

	type partial struct {
		index  map[string]*aggGroup
		groups []*aggGroup
		err    error
	}
	parts := make([]partial, p.workers)
	// stop lets whoever fails first (a worker or the feeder) unblock
	// everyone else: the feeder's sends select on it, so workers that exited
	// early can never strand the feeder on a full channel.
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func() { stopOnce.Do(func() { close(stop) }) }
	// Stream the outer input in bounded batches rather than materializing
	// it: the outer side may itself be a large join.
	const batchSize = 2048
	batches := make(chan []value.Row, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &parts[w]
			defer func() {
				if r := recover(); r != nil {
					part.err = NewPanicError("parallel join worker", r)
					fail()
					// Keep draining so the feeder never blocks on a send
					// this worker would have consumed.
					for range batches {
					}
				}
			}()
			if err := failpoint.Inject(failpoint.ParallelWorkerStart); err != nil {
				part.err = err
				fail()
				for range batches {
				}
				return
			}
			part.index = make(map[string]*aggGroup)
			scratch := make(value.Row, len(p.join.schema))
			keyVals := make([]value.Value, len(p.groupBy))
			var keyBuf []byte
			var tick uint32
			abort := func(err error) {
				part.err = err
				fail()
				for range batches {
				}
			}
			for batch := range batches {
				for _, outer := range batch {
					tick++
					if tick%cancelCheckEvery == 0 {
						if err := p.exec().Err(); err != nil {
							abort(err)
							return
						}
					}
					matches, err := p.join.method.Probe(outer)
					if err != nil {
						abort(err)
						return
					}
					copy(scratch, outer)
					for _, m := range matches {
						copy(scratch[outerWidth:], innerRows[m])
						if p.join.residual != nil {
							ok, err := expr.EvalBool(p.join.residual, scratch)
							if err != nil {
								abort(err)
								return
							}
							if !ok {
								continue
							}
						}
						for i, g := range p.groupBy {
							v, err := g(scratch)
							if err != nil {
								abort(err)
								return
							}
							keyVals[i] = v
						}
						keyBuf = keyBuf[:0]
						for _, v := range keyVals {
							keyBuf = value.AppendKey(keyBuf, v)
						}
						grp, ok := part.index[string(keyBuf)]
						if !ok {
							grp = &aggGroup{key: append(value.Row(nil), keyVals...), states: make([]*expr.State, len(p.aggs))}
							for i, a := range p.aggs {
								grp.states[i] = a.NewState()
							}
							n := 48 + resource.RowBytes(grp.key) + 56*int64(len(p.aggs))
							if err := p.exec().Charge("parallel aggregation", n); err != nil {
								abort(err)
								return
							}
							p.reserved.Add(n)
							part.index[string(keyBuf)] = grp
							part.groups = append(part.groups, grp)
						}
						for _, st := range grp.states {
							if err := st.Add(scratch); err != nil {
								abort(err)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	var feedErr error
	if err := p.join.outer.Open(); err != nil {
		feedErr = err
	} else {
		batch := make([]value.Row, 0, batchSize)
		for {
			if err := p.step(); err != nil {
				feedErr = err
				break
			}
			r, err := p.join.outer.Next()
			if err != nil {
				feedErr = err
				break
			}
			if r == nil {
				break
			}
			batch = append(batch, r.Clone())
			if len(batch) == batchSize {
				select {
				case batches <- batch:
				case <-stop:
					feedErr = errStopped
				}
				if feedErr != nil {
					break
				}
				batch = make([]value.Row, 0, batchSize)
			}
		}
		if feedErr == nil && len(batch) > 0 {
			select {
			case batches <- batch:
			case <-stop:
				feedErr = errStopped
			}
		}
		if cerr := p.join.outer.Close(); cerr != nil && (feedErr == nil || feedErr == errStopped) {
			feedErr = cerr
		}
	}
	close(batches)
	wg.Wait()
	// A worker's failure takes precedence over the sentinel it caused; a
	// genuine feeder failure (outer error, cancellation) wins otherwise.
	var workerErr error
	for w := range parts {
		if parts[w].err != nil {
			workerErr = parts[w].err
			break
		}
	}
	if feedErr != nil && feedErr != errStopped {
		return feedErr
	}
	if workerErr != nil {
		return workerErr
	}
	if feedErr == errStopped {
		// stop fired but no error was recorded (cannot normally happen);
		// surface the cancellation state rather than inventing an error.
		if err := p.exec().Err(); err != nil {
			return err
		}
		return fmt.Errorf("parallel join: aborted")
	}

	merged := make(map[string]*aggGroup)
	p.groups = p.groups[:0]
	p.pos = 0
	var keyBuf []byte
	for w := range parts {
		for _, grp := range parts[w].groups {
			keyBuf = keyBuf[:0]
			for _, v := range grp.key {
				keyBuf = value.AppendKey(keyBuf, v)
			}
			if m, ok := merged[string(keyBuf)]; ok {
				for i := range m.states {
					m.states[i].Merge(grp.states[i])
				}
			} else {
				merged[string(keyBuf)] = grp
				p.groups = append(p.groups, grp)
			}
		}
	}
	if len(p.groupBy) == 0 && len(p.groups) == 0 {
		grp := &aggGroup{states: make([]*expr.State, len(p.aggs))}
		for i, a := range p.aggs {
			grp.states[i] = a.NewState()
		}
		p.groups = append(p.groups, grp)
	}
	return nil
}

// Next implements Operator.
func (p *ParallelJoinAgg) Next() (value.Row, error) {
	for p.pos < len(p.groups) {
		grp := p.groups[p.pos]
		p.pos++
		out := make(value.Row, 0, len(grp.key)+len(grp.states))
		out = append(out, grp.key...)
		for _, st := range grp.states {
			out = append(out, st.Value())
		}
		if p.having != nil {
			ok, err := expr.EvalBool(p.having, out)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		return out, nil
	}
	return nil, nil
}

// Close implements Operator.
func (p *ParallelJoinAgg) Close() error {
	p.exec().Release(p.reserved.Swap(0))
	p.groups = nil
	return nil
}

// Describe implements Operator.
func (p *ParallelJoinAgg) Describe() string {
	return fmt.Sprintf("Parallel JoinAggregate (%d workers, %s)", p.workers, p.join.Describe())
}

// Children implements Operator.
func (p *ParallelJoinAgg) Children() []Operator { return []Operator{p.join.outer, p.join.inner} }
