package engine

import (
	"fmt"
	"sync"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/value"
)

// ParallelJoinAgg fuses a join with grouping/aggregation and runs the outer
// side across worker goroutines with per-worker partial aggregation and a
// final merge. It is the stand-in for the paper's "Vendor A", whose edge
// over single-threaded executions came from using all four cores for
// identical plan shapes (Section 8.1, Appendix E).
type ParallelJoinAgg struct {
	join    *NLJoin
	groupBy []expr.Compiled
	aggs    []*expr.Aggregate
	having  expr.Compiled
	schema  value.Schema
	workers int

	groups []*aggGroup
	pos    int
}

// NewParallelJoinAgg fuses join+aggregate. workers <= 0 selects
// min(4, GOMAXPROCS), matching the paper's 4-core testbed.
func NewParallelJoinAgg(join *NLJoin, groupBy []expr.Compiled, aggs []*expr.Aggregate, having expr.Compiled, schema value.Schema, workers int) *ParallelJoinAgg {
	return &ParallelJoinAgg{join: join, groupBy: groupBy, aggs: aggs, having: having, schema: schema, workers: DefaultWorkers(workers)}
}

// Schema implements Operator.
func (p *ParallelJoinAgg) Schema() value.Schema { return p.schema }

// Open implements Operator.
func (p *ParallelJoinAgg) Open() error {
	innerRows, err := Run(p.join.inner)
	if err != nil {
		return err
	}
	if err := p.join.method.Build(innerRows); err != nil {
		return err
	}
	outerWidth := len(p.join.outer.Schema())

	type partial struct {
		index  map[string]*aggGroup
		groups []*aggGroup
		err    error
	}
	parts := make([]partial, p.workers)
	// Stream the outer input in bounded batches rather than materializing
	// it: the outer side may itself be a large join.
	const batchSize = 2048
	batches := make(chan []value.Row, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &parts[w]
			part.index = make(map[string]*aggGroup)
			scratch := make(value.Row, len(p.join.schema))
			keyVals := make([]value.Value, len(p.groupBy))
			var keyBuf []byte
			for batch := range batches {
				for _, outer := range batch {
					matches, err := p.join.method.Probe(outer)
					if err != nil {
						part.err = err
						return
					}
					copy(scratch, outer)
					for _, m := range matches {
						copy(scratch[outerWidth:], innerRows[m])
						if p.join.residual != nil {
							ok, err := expr.EvalBool(p.join.residual, scratch)
							if err != nil {
								part.err = err
								return
							}
							if !ok {
								continue
							}
						}
						for i, g := range p.groupBy {
							v, err := g(scratch)
							if err != nil {
								part.err = err
								return
							}
							keyVals[i] = v
						}
						keyBuf = keyBuf[:0]
						for _, v := range keyVals {
							keyBuf = value.AppendKey(keyBuf, v)
						}
						grp, ok := part.index[string(keyBuf)]
						if !ok {
							grp = &aggGroup{key: append(value.Row(nil), keyVals...), states: make([]*expr.State, len(p.aggs))}
							for i, a := range p.aggs {
								grp.states[i] = a.NewState()
							}
							part.index[string(keyBuf)] = grp
							part.groups = append(part.groups, grp)
						}
						for _, st := range grp.states {
							if err := st.Add(scratch); err != nil {
								part.err = err
								return
							}
						}
					}
				}
			}
		}(w)
	}
	var feedErr error
	if err := p.join.outer.Open(); err != nil {
		feedErr = err
	} else {
		batch := make([]value.Row, 0, batchSize)
		for {
			r, err := p.join.outer.Next()
			if err != nil {
				feedErr = err
				break
			}
			if r == nil {
				break
			}
			batch = append(batch, r.Clone())
			if len(batch) == batchSize {
				batches <- batch
				batch = make([]value.Row, 0, batchSize)
			}
		}
		if len(batch) > 0 {
			batches <- batch
		}
		if cerr := p.join.outer.Close(); cerr != nil && feedErr == nil {
			feedErr = cerr
		}
	}
	close(batches)
	wg.Wait()
	if feedErr != nil {
		return feedErr
	}

	merged := make(map[string]*aggGroup)
	p.groups = p.groups[:0]
	p.pos = 0
	var keyBuf []byte
	for w := range parts {
		if parts[w].err != nil {
			return parts[w].err
		}
		for _, grp := range parts[w].groups {
			keyBuf = keyBuf[:0]
			for _, v := range grp.key {
				keyBuf = value.AppendKey(keyBuf, v)
			}
			if m, ok := merged[string(keyBuf)]; ok {
				for i := range m.states {
					m.states[i].Merge(grp.states[i])
				}
			} else {
				merged[string(keyBuf)] = grp
				p.groups = append(p.groups, grp)
			}
		}
	}
	if len(p.groupBy) == 0 && len(p.groups) == 0 {
		grp := &aggGroup{states: make([]*expr.State, len(p.aggs))}
		for i, a := range p.aggs {
			grp.states[i] = a.NewState()
		}
		p.groups = append(p.groups, grp)
	}
	return nil
}

// Next implements Operator.
func (p *ParallelJoinAgg) Next() (value.Row, error) {
	for p.pos < len(p.groups) {
		grp := p.groups[p.pos]
		p.pos++
		out := make(value.Row, 0, len(grp.key)+len(grp.states))
		out = append(out, grp.key...)
		for _, st := range grp.states {
			out = append(out, st.Value())
		}
		if p.having != nil {
			ok, err := expr.EvalBool(p.having, out)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		return out, nil
	}
	return nil, nil
}

// Close implements Operator.
func (p *ParallelJoinAgg) Close() error {
	p.groups = nil
	return nil
}

// Describe implements Operator.
func (p *ParallelJoinAgg) Describe() string {
	return fmt.Sprintf("Parallel JoinAggregate (%d workers, %s)", p.workers, p.join.Describe())
}

// Children implements Operator.
func (p *ParallelJoinAgg) Children() []Operator { return []Operator{p.join.outer, p.join.inner} }
