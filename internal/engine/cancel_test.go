package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// The cancellation contract under test: once the context is cancelled, every
// operator must surface context.Canceled within cancelCheckEvery Next calls,
// and Close must still succeed so resources are released.

var cancelSchema = value.Schema{
	{Name: "g", Type: value.Int},
	{Name: "v", Type: value.Int},
}

func cancelRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i % 997)), value.NewInt(int64(i))}
	}
	return rows
}

// col compiles to a bare column reference.
func colAt(i int) expr.Compiled {
	return func(r value.Row) (value.Value, error) { return r[i], nil }
}

func truePred(value.Row) (value.Value, error) { return value.NewBool(true), nil }

// driveCancelled opens op under a cancellable context, pulls warm rows, then
// cancels and counts Next calls until the typed error surfaces.
func driveCancelled(t *testing.T, name string, op Operator, warm int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Bind(op, NewExecContext(ctx, nil))
	if err := op.Open(); err != nil {
		t.Fatalf("%s: open: %v", name, err)
	}
	for i := 0; i < warm; i++ {
		r, err := op.Next()
		if err != nil {
			t.Fatalf("%s: warmup next: %v", name, err)
		}
		if r == nil {
			t.Fatalf("%s: stream ended after %d rows, need more data for the test", name, i)
		}
	}
	cancel()
	var err error
	for calls := 0; err == nil; calls++ {
		// One full tick window is the contract; allow one extra for ticks
		// consumed during warmup.
		if calls > 2*cancelCheckEvery {
			t.Fatalf("%s: no cancellation after %d Next calls past cancel()", name, calls)
		}
		var r value.Row
		r, err = op.Next()
		if err == nil && r == nil {
			t.Fatalf("%s: stream ended cleanly before cancellation surfaced", name)
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: Next error = %v, want context.Canceled", name, err)
	}
	if cerr := op.Close(); cerr != nil {
		t.Fatalf("%s: Close after cancellation: %v", name, cerr)
	}
}

// TestCancelMidStream covers the streaming phase of every operator kind: the
// cancel lands between two Next calls and must surface within the tick
// window.
func TestCancelMidStream(t *testing.T) {
	rows := cancelRows(20000)
	newScan := func() Operator { return NewMemScan("t", cancelSchema, rows) }
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}

	cases := []struct {
		name string
		op   func() Operator
	}{
		{"MemScan", newScan},
		{"Filter", func() Operator { return NewFilter(newScan(), truePred, "true") }},
		{"Distinct", func() Operator {
			return NewDistinct(NewProject(newScan(), []expr.Compiled{colAt(1)}, cancelSchema[1:2]))
		}},
		{"NLJoin-hash", func() Operator {
			return NewNLJoin("Hash Join", newScan(), newScan(),
				NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
		}},
		{"NLJoin-scan", func() Operator {
			return NewNLJoin("Nested Loop", newScan(),
				NewMemScan("inner", cancelSchema, cancelRows(4)), NewScanProber(), nil)
		}},
		// HashAggregate's streaming phase is group emission; 997 groups leave
		// plenty of stream after warmup.
		{"HashAggregate-emit", func() Operator {
			return NewHashAggregate(newScan(), []expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			driveCancelled(t, tc.name, tc.op(), 100)
		})
	}
}

// cancelAfterHits returns a failpoint action that cancels the context on the
// n-th trigger and lets execution continue — the engine's own tick checks
// must then stop the query.
func cancelAfterHits(cancel context.CancelFunc, n int64) failpoint.Action {
	var hits atomic.Int64
	return func(string) error {
		if hits.Add(1) == n {
			cancel()
		}
		return nil
	}
}

// TestCancelDuringMaterialization covers the build phase of the blocking
// operators: the cancel lands while Open is still consuming the child, long
// before the first output row.
func TestCancelDuringMaterialization(t *testing.T) {
	rows := cancelRows(20000)
	newScan := func() Operator { return NewMemScan("t", cancelSchema, rows) }
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}

	cases := []struct {
		name string
		op   func() Operator
	}{
		{"Sort-build", func() Operator { return NewSort(newScan(), []expr.Compiled{colAt(1)}, []bool{false}) }},
		{"HashAggregate-build", func() Operator {
			return NewHashAggregate(newScan(), []expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
		}},
		{"NLJoin-build", func() Operator {
			return NewNLJoin("Hash Join", NewMemScan("outer", cancelSchema, cancelRows(4)), newScan(),
				NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
		}},
		{"ParallelJoinAgg-build", func() Operator {
			join := NewNLJoin("Hash Join", newScan(), newScan(),
				NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
			return NewParallelJoinAgg(join, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema, 4)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testleak.Check(t)
			defer failpoint.Reset()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Cancel deep inside the child drain, then let the ticks react.
			failpoint.Enable(failpoint.ScanNext, cancelAfterHits(cancel, 5000))
			_, err := RunExec(NewExecContext(ctx, nil), tc.op())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: RunExec error = %v, want context.Canceled", tc.name, err)
			}
		})
	}
}

// TestCancelParallelProbe cancels while ParallelJoinAgg workers are probing:
// the feeder and all workers must shut down cleanly (the leak check enforces
// it) and the typed error must win over any internal sentinel.
func TestCancelParallelProbe(t *testing.T) {
	testleak.Check(t)
	rows := cancelRows(20000)
	join := NewNLJoin("Hash Join",
		NewMemScan("outer", cancelSchema, rows),
		NewMemScan("inner", cancelSchema, cancelRows(1000)),
		NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
	op := NewParallelJoinAgg(join, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema, 4)

	defer failpoint.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The inner build drains 1000 scan rows first; hit 10000 lands mid-probe
	// in the outer feed.
	failpoint.Enable(failpoint.ScanNext, cancelAfterHits(cancel, 10000))
	_, err := RunExec(NewExecContext(ctx, nil), op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunExec error = %v, want context.Canceled", err)
	}
}

// TestRunCtxDeadline: an already-expired deadline stops the query before it
// produces a result, surfacing as context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	op := NewMemScan("t", cancelSchema, cancelRows(20000))
	if _, err := RunCtx(ctx, op); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx error = %v, want context.DeadlineExceeded", err)
	}
}
