package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"testing"

	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
)

type selfClassified struct{ c ErrClass }

func (e *selfClassified) Error() string      { return "self-classified" }
func (e *selfClassified) ErrClass() ErrClass { return e.c }

func TestClassify(t *testing.T) {
	budgetErr := &resource.BudgetError{Site: "t", Requested: 1, Used: 1, Limit: 1}
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ClassNone},
		{"canceled", context.Canceled, ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassCanceled},
		{"wrapped deadline", fmt.Errorf("query: %w", context.DeadlineExceeded), ClassCanceled},
		{"budget", budgetErr, ClassResource},
		{"wrapped budget", fmt.Errorf("agg: %w", budgetErr), ClassResource},
		{"panic", NewPanicError("worker", "boom"), ClassTransient},
		{"wrapped panic", fmt.Errorf("CTE x: %w", NewPanicError("w", 1)), ClassTransient},
		{"injected", failpoint.ErrInjected, ClassTransient},
		{"wrapped injected", fmt.Errorf("scan: %w", failpoint.ErrInjected), ClassTransient},
		{"spill corrupt", fmt.Errorf("%w: frame 3", spill.ErrCorrupt), ClassTransient},
		{"path error", &fs.PathError{Op: "write", Path: "/tmp/x", Err: errors.New("disk gone")}, ClassTransient},
		{"short read", io.ErrUnexpectedEOF, ClassTransient},
		{"self-classified overload", &selfClassified{c: ClassOverload}, ClassOverload},
		{"wrapped self-classified", fmt.Errorf("w: %w", &selfClassified{c: ClassOverload}), ClassOverload},
		{"unknown", errors.New("parse error at line 1"), ClassFatal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestErrClassRetryable(t *testing.T) {
	want := map[ErrClass]bool{
		ClassNone: false, ClassTransient: true, ClassResource: true,
		ClassOverload: false, ClassCanceled: false, ClassFatal: false,
	}
	for c, w := range want {
		if c.Retryable() != w {
			t.Fatalf("%v.Retryable() = %v, want %v", c, c.Retryable(), w)
		}
	}
}

func TestErrClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := ClassNone; c < NumErrClasses; c++ {
		s := c.String()
		if s == "" || s == "unknown" {
			t.Fatalf("class %d has no stable name", c)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
}
