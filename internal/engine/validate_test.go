package engine

import (
	"context"
	"strings"
	"testing"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/value"
)

// Every plan the test suite builds goes through ValidatePlan.
func init() { Validate = true }

func col(q, n string, k value.Kind) value.Column {
	return value.Column{Qualifier: q, Name: n, Type: k}
}

func intRow(vs ...int64) value.Row {
	r := make(value.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func identity(i int) expr.Compiled {
	return func(r value.Row) (value.Value, error) { return r[i], nil }
}

func wantViolation(t *testing.T, op Operator, substr string) {
	t.Helper()
	err := ValidatePlan(op)
	if err == nil {
		t.Fatalf("ValidatePlan accepted an invalid plan; wanted error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("ValidatePlan error = %q; wanted it to contain %q", err, substr)
	}
}

func TestValidatePlanAcceptsWellFormedTree(t *testing.T) {
	scan := NewMemScan("t", value.Schema{col("t", "a", value.Int), col("t", "b", value.Int)},
		[]value.Row{intRow(1, 2), intRow(3, 4)})
	proj := NewProject(scan, []expr.Compiled{identity(0)}, value.Schema{col("", "a", value.Int)})
	if err := ValidatePlan(NewLimit(NewDistinct(proj), 10)); err != nil {
		t.Fatalf("ValidatePlan rejected a well-formed plan: %v", err)
	}
}

func TestValidatePlanRowArity(t *testing.T) {
	scan := NewMemScan("t", value.Schema{col("t", "a", value.Int), col("t", "b", value.Int)},
		[]value.Row{intRow(1, 2), intRow(3)})
	wantViolation(t, scan, "row 1 has 1 values, schema declares 2 columns")
}

func TestValidatePlanProjectArity(t *testing.T) {
	scan := NewMemScan("t", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1)})
	proj := NewProject(scan, []expr.Compiled{identity(0), identity(0)},
		value.Schema{col("", "a", value.Int)})
	wantViolation(t, proj, "2 output expressions but 1 schema columns")
}

func TestValidatePlanJoinSchema(t *testing.T) {
	left := NewMemScan("l", value.Schema{col("l", "a", value.Int)}, []value.Row{intRow(1)})
	right := NewMemScan("r", value.Schema{col("r", "b", value.Int)}, []value.Row{intRow(1)})

	join := NewNLJoin("Nested Loop", left, right, NewScanProber(), nil)
	if err := ValidatePlan(join); err != nil {
		t.Fatalf("ValidatePlan rejected a well-formed join: %v", err)
	}

	// Corrupt the concatenated schema the way a planner bug would.
	join.schema = join.schema[:1]
	wantViolation(t, join, "schema has 1 columns, outer+inner have 2")
}

func TestValidatePlanDuplicateQualifiedColumns(t *testing.T) {
	left := NewMemScan("l", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1)})
	right := NewMemScan("r", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1)})
	join := NewNLJoin("Nested Loop", left, right, NewScanProber(), nil)
	wantViolation(t, join, "duplicate qualified column t.a")
}

func TestValidatePlanAggregateArity(t *testing.T) {
	scan := NewMemScan("t", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1)})
	agg := NewHashAggregate(scan, []expr.Compiled{identity(0)}, nil, nil,
		value.Schema{col("", "a", value.Int), col("", "n", value.Int)})
	wantViolation(t, agg, "expected 1 group keys + 0 aggregates")
}

func TestValidatePlanChecksDescendants(t *testing.T) {
	bad := NewMemScan("t", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1, 2)})
	wrapped := NewLimit(NewDistinct(bad), 5)
	wantViolation(t, wrapped, "row 0 has 2 values")
}

func TestValidatePlanMixedBinding(t *testing.T) {
	scan := NewMemScan("t", value.Schema{col("t", "a", value.Int)}, []value.Row{intRow(1)})
	plan := NewLimit(NewDistinct(scan), 10)
	ecA := NewExecContext(context.Background(), nil)
	ecB := NewExecContext(context.Background(), nil)
	Bind(plan, ecA)
	if err := ValidatePlan(plan); err != nil {
		t.Fatalf("uniformly bound plan rejected: %v", err)
	}
	scan.BindExec(ecB)
	wantViolation(t, plan, "bound to a different ExecContext")
}
