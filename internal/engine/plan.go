package engine

import (
	"fmt"
	"sync"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/fd"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// MaterializedRel is a named, already-computed relation available to a query
// (a CTE, or an intermediate produced by the iceberg rewriter). Its schema
// uses bare column names (empty qualifiers). FDs and Positive carry derived
// constraint metadata (over bare column names) that the iceberg optimizer
// uses for its schema-based safety checks.
type MaterializedRel struct {
	Name     string
	Schema   value.Schema
	Rows     []value.Row
	FDs      *fd.Set
	Positive map[string]bool
	// Unique records that the relation cannot contain duplicate rows (e.g.
	// it is the result of a GROUP BY). The iceberg superkey checks require
	// genuine tuple identity, not just functional determination, so they
	// are only sound over duplicate-free inputs.
	Unique bool
}

// Env maps names to materialized relations visible during planning; CTEs are
// added as the planner walks WITH lists.
type Env map[string]*MaterializedRel

// clone returns a shallow copy so CTE scopes do not leak upward.
func (e Env) clone() Env {
	out := make(Env, len(e)+2)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Planner turns analyzed SELECT statements into operator trees.
type Planner struct {
	Catalog *storage.Catalog
	// Parallel enables the Vendor A executor: joins feeding a grouping
	// operator are fused and run across worker goroutines.
	Parallel bool
	// Workers is the Vendor A degree of parallelism (0 = default 4, the
	// core count of the paper's testbed).
	Workers int
	// UseIndexes permits index (range) nested-loop joins; clearing it
	// models the paper's "PK only" index configuration of Figure 4.
	UseIndexes bool
	// AliasOverrides substitutes pre-computed rows for specific FROM-item
	// aliases (keyed by lower-cased alias). The iceberg rewriter uses it to
	// splice reduced relations (a-priori semijoins) under an otherwise
	// unchanged query.
	AliasOverrides map[string]*MaterializedRel
	// Exec carries the query's cancellation context and memory budget into
	// every materialization the planner performs (CTEs, scalar subqueries).
	// Nil means background context, unlimited budget.
	Exec *ExecContext
	// BatchSize > 0 plans onto the vectorized batch pipeline with chunks of
	// that many rows: Batchify rewrites every planned tree (including CTE
	// and subquery materializations) and results stay byte-identical to the
	// row path. 0 keeps the row-at-a-time Volcano pipeline. When the batch
	// pipeline is on, Workers (the same knob that sizes the Vendor A
	// executor) also sizes the morsel worker pool of parallel table scans;
	// results are byte-identical at every worker count.
	BatchSize int
	// NoZoneSkip disables zone-map block skipping on batch scans (skipping is
	// on by default and byte-identical to off; the knob exists for A/B
	// benchmarks and the equivalence sweep).
	NoZoneSkip bool
	// NoTransfer disables sideways predicate transfer: hash joins then build
	// no key filters and probe-side scans are never pre-filtered. Like
	// NoZoneSkip, transfer defaults to on and never changes results.
	NoTransfer bool
}

// NewPlanner returns a baseline planner (indexes on, serial execution).
func NewPlanner(cat *storage.Catalog) *Planner {
	return &Planner{Catalog: cat, UseIndexes: true}
}

// relation is one planned FROM item.
type relation struct {
	alias  string
	schema value.Schema // qualified by alias
	op     Operator
	// table is non-nil when the item is a base-table scan, letting join
	// planning consult declared indexes.
	table *storage.Table
}

// PlanSelect plans a SELECT under the given environment (nil is fine).
func (p *Planner) PlanSelect(sel *sqlparser.Select, env Env) (Operator, error) {
	if env == nil {
		env = Env{}
	} else {
		env = env.clone()
	}
	for _, cte := range sel.With {
		rel, err := p.Materialize(cte.Query, env, cte.Name)
		if err != nil {
			return nil, fmt.Errorf("planning CTE %s: %w", cte.Name, err)
		}
		env[lower(cte.Name)] = rel
	}
	op, err := p.planBody(sel, env)
	if err != nil {
		return nil, err
	}
	op = p.batchifyPlan(op)
	if Validate {
		if err := ValidatePlan(op); err != nil {
			return nil, err
		}
	}
	return op, nil
}

// Materialize plans and fully evaluates a SELECT, returning its rows with a
// bare-name schema.
func (p *Planner) Materialize(sel *sqlparser.Select, env Env, name string) (*MaterializedRel, error) {
	op, err := p.PlanSelect(sel, env)
	if err != nil {
		return nil, err
	}
	rows, err := RunExecBatch(p.Exec, op, p.BatchSize)
	if err != nil {
		return nil, err
	}
	schema := make(value.Schema, len(op.Schema()))
	for i, c := range op.Schema() {
		schema[i] = value.Column{Name: c.Name, Type: c.Type}
	}
	return &MaterializedRel{Name: name, Schema: schema, Rows: rows}, nil
}

func (p *Planner) planFromItem(te sqlparser.TableExpr, env Env) (*relation, error) {
	switch te := te.(type) {
	case *sqlparser.TableRef:
		alias := te.AliasName()
		if rel, ok := p.AliasOverrides[lower(alias)]; ok {
			return &relation{
				alias:  alias,
				schema: rel.Schema.Requalify(alias),
				op:     NewMemScan(rel.Name+" as "+alias, rel.Schema.Requalify(alias), rel.Rows),
			}, nil
		}
		if rel, ok := env[lower(te.Name)]; ok {
			return &relation{
				alias:  alias,
				schema: rel.Schema.Requalify(alias),
				op:     NewMemScan(te.Name+" as "+alias, rel.Schema.Requalify(alias), rel.Rows),
			}, nil
		}
		t, err := p.Catalog.Get(te.Name)
		if err != nil {
			return nil, err
		}
		scan := NewMemScan(t.Name+" as "+alias, t.Schema.Requalify(alias), t.Rows)
		scan.SetColumnSource(t)
		return &relation{
			alias:  alias,
			schema: t.Schema.Requalify(alias),
			op:     scan,
			table:  t,
		}, nil
	case *sqlparser.SubqueryRef:
		op, err := p.PlanSelect(te.Query, env)
		if err != nil {
			return nil, err
		}
		schema := op.Schema().Requalify(te.Alias)
		return &relation{alias: te.Alias, schema: schema, op: &reschema{child: op, schema: schema}}, nil
	}
	return nil, fmt.Errorf("unsupported FROM item %T", te)
}

// reschema relabels a child operator's schema (derived-table aliasing).
type reschema struct {
	child  Operator
	schema value.Schema
}

func (r *reschema) Schema() value.Schema     { return r.schema }
func (r *reschema) Open() error              { return r.child.Open() }
func (r *reschema) Next() (value.Row, error) { return r.child.Next() }
func (r *reschema) Close() error             { return r.child.Close() }
func (r *reschema) Describe() string         { return "Subquery Scan" }
func (r *reschema) Children() []Operator     { return []Operator{r.child} }

func (p *Planner) planBody(sel *sqlparser.Select, env Env) (Operator, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("SELECT without FROM is not supported")
	}
	rels := make([]*relation, len(sel.From))
	combined := value.Schema{}
	for i, te := range sel.From {
		rel, err := p.planFromItem(te, env)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
		combined = combined.Concat(rel.schema)
	}

	// Qualify and split the WHERE clause.
	var conjuncts []sqlparser.Expr
	if sel.Where != nil {
		q, err := QualifyExpr(sel.Where, combined)
		if err != nil {
			return nil, err
		}
		conjuncts = SplitConjuncts(q)
	}

	joined, remaining, err := p.planJoinTree(rels, conjuncts, env)
	if err != nil {
		return nil, err
	}
	if len(remaining) > 0 {
		pred, err := p.compile(AndAll(remaining), joined.Schema(), env)
		if err != nil {
			return nil, err
		}
		filt := NewFilter(joined, pred, AndAll(remaining).String())
		filt.SetExpr(AndAll(remaining))
		joined = filt
	}
	return p.planAggProject(sel, joined, combined, env)
}

// planJoinTree builds a left-deep join in FROM order, consuming the
// conjuncts it uses; unconsumed conjuncts are returned for a final filter.
func (p *Planner) planJoinTree(rels []*relation, conjuncts []sqlparser.Expr, env Env) (Operator, []sqlparser.Expr, error) {
	// Push single-relation conjuncts down as filters.
	used := make([]bool, len(conjuncts))
	relByAlias := map[string]*relation{}
	for _, r := range rels {
		relByAlias[lower(r.alias)] = r
	}
	for i, c := range conjuncts {
		aliases := ExprAliases(c)
		if len(aliases) != 1 {
			continue
		}
		r, ok := relByAlias[lower(aliases[0])]
		if !ok {
			return nil, nil, fmt.Errorf("unknown alias %q in predicate %s", aliases[0], c.String())
		}
		pred, err := p.compile(c, r.schema, env)
		if err != nil {
			return nil, nil, err
		}
		filt := NewFilter(r.op, pred, c.String())
		filt.SetExpr(c)
		r.op = filt
		used[i] = true
	}

	cur := rels[0].op
	joinedAliases := map[string]bool{lower(rels[0].alias): true}
	for _, next := range rels[1:] {
		// Applicable conjuncts reference only joined aliases + the next one,
		// and actually touch the next one.
		var applicable []int
		for i, c := range conjuncts {
			if used[i] {
				continue
			}
			ok, touchesNext := true, false
			for _, a := range ExprAliases(c) {
				switch {
				case lower(a) == lower(next.alias):
					touchesNext = true
				case !joinedAliases[lower(a)]:
					ok = false
				}
			}
			if ok && touchesNext {
				applicable = append(applicable, i)
			}
		}
		method, residualIdx, err := p.chooseJoinMethod(cur.Schema(), next, conjuncts, applicable, env)
		if err != nil {
			return nil, nil, err
		}
		var residual expr.Compiled
		name := "Nested Loop"
		switch method.(type) {
		case *hashMethod:
			name = "Hash Join"
		case *rangeMethod:
			name = "Indexed Nested Loop"
		}
		concatSchema := cur.Schema().Concat(next.schema)
		if len(residualIdx) > 0 {
			var parts []sqlparser.Expr
			for _, i := range residualIdx {
				parts = append(parts, conjuncts[i])
			}
			residual, err = p.compile(AndAll(parts), concatSchema, env)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, i := range applicable {
			used[i] = true
		}
		cur = NewNLJoin(name, cur, next.op, method, residual)
		joinedAliases[lower(next.alias)] = true
	}
	var remaining []sqlparser.Expr
	for i, c := range conjuncts {
		if !used[i] {
			remaining = append(remaining, c)
		}
	}
	return cur, remaining, nil
}

// chooseJoinMethod picks hash (equality keys) > index range (one
// comparison) > block scan, returning the method and indexes of leftover
// residual conjuncts.
func (p *Planner) chooseJoinMethod(outerSchema value.Schema, next *relation, conjuncts []sqlparser.Expr, applicable []int, env Env) (Prober, []int, error) {
	type side struct {
		outer sqlparser.Expr // references only joined aliases
		inner sqlparser.Expr // references only next
		op    string         // outer OP inner
	}
	classify := func(c sqlparser.Expr) *side {
		b, ok := c.(*sqlparser.BinOp)
		if !ok {
			return nil
		}
		switch b.Op {
		case sqlparser.OpEq, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		default:
			return nil
		}
		lAliases, rAliases := ExprAliases(b.L), ExprAliases(b.R)
		onlyNext := func(as []string) bool {
			return len(as) == 1 && lower(as[0]) == lower(next.alias)
		}
		noneNext := func(as []string) bool {
			if len(as) == 0 {
				return false
			}
			for _, a := range as {
				if lower(a) == lower(next.alias) {
					return false
				}
			}
			return true
		}
		if noneNext(lAliases) && onlyNext(rAliases) {
			return &side{outer: b.L, inner: b.R, op: b.Op}
		}
		if onlyNext(lAliases) && noneNext(rAliases) {
			return &side{outer: b.R, inner: b.L, op: flip(b.Op)}
		}
		return nil
	}

	var equis []*side
	var ranges []*side
	sides := make(map[int]*side)
	for _, i := range applicable {
		s := classify(conjuncts[i])
		if s == nil {
			continue
		}
		sides[i] = s
		if s.op == sqlparser.OpEq {
			equis = append(equis, s)
		} else if _, ok := s.inner.(*sqlparser.ColRef); ok {
			ranges = append(ranges, s)
		}
	}

	residualOf := func(isPrimary func(i int) bool) []int {
		var out []int
		for _, i := range applicable {
			if !isPrimary(i) {
				out = append(out, i)
			}
		}
		return out
	}

	if len(equis) > 0 {
		m := &hashMethod{label: ""}
		// Arm sideways predicate transfer: on the batch pipeline the join's
		// Build also folds its keys into a Bloom filter that pre-filters the
		// probe side (BatchNLJoin installs it before opening the outer).
		// outerRefs keeps each probe key's column reference (nil for computed
		// keys) so the filter can be pushed onto the scan holding that column.
		m.transfer = !p.NoTransfer && p.BatchSize > 0
		primary := map[string]bool{}
		for _, s := range equis {
			ok, err := p.compile(s.outer, outerSchema, env)
			if err != nil {
				return nil, nil, err
			}
			ik, err := p.compile(s.inner, next.schema, env)
			if err != nil {
				return nil, nil, err
			}
			m.outerKeys = append(m.outerKeys, ok)
			m.innerKeys = append(m.innerKeys, ik)
			ref, _ := s.outer.(*sqlparser.ColRef)
			m.outerRefs = append(m.outerRefs, ref)
			if m.label != "" {
				m.label += " AND "
			}
			m.label += s.outer.String() + " = " + s.inner.String()
			primary[s.outer.String()+"="+s.inner.String()] = true
		}
		res := residualOf(func(i int) bool {
			s, ok := sides[i]
			return ok && s.op == sqlparser.OpEq && primary[s.outer.String()+"="+s.inner.String()]
		})
		return m, res, nil
	}

	if p.UseIndexes && len(ranges) > 0 {
		s := ranges[0]
		// Prefer a range conjunct whose inner column has a declared index,
		// mirroring how the optimizer picks the BT index in Figure 4.
		if next.table != nil {
			for _, cand := range ranges {
				col := cand.inner.(*sqlparser.ColRef)
				if next.table.FindIndex(col.Name) != nil {
					s = cand
					break
				}
			}
		}
		outerE, err := p.compile(s.outer, outerSchema, env)
		if err != nil {
			return nil, nil, err
		}
		col := s.inner.(*sqlparser.ColRef)
		ci, err := next.schema.Resolve(col.Qualifier, col.Name)
		if err != nil {
			return nil, nil, err
		}
		m := &rangeMethod{outerExpr: outerE, innerCol: ci, op: s.op,
			label: s.outer.String() + " " + s.op + " " + s.inner.String()}
		res := residualOf(func(i int) bool { return sides[i] == s })
		return m, res, nil
	}

	m := &scanMethod{}
	return m, residualOf(func(int) bool { return false }), nil
}

func flip(op string) string {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op
}

// compile wires IN-subquery and scalar-subquery support into expression
// compilation. Subqueries must be uncorrelated; they are evaluated lazily
// exactly once.
func (p *Planner) compile(e sqlparser.Expr, schema value.Schema, env Env) (expr.Compiled, error) {
	return expr.Compile(e, schema, func(e sqlparser.Expr) (expr.Compiled, error) {
		if sq, ok := e.(*sqlparser.ScalarSubquery); ok {
			var once sync.Once
			var result value.Value
			var resultErr error
			query := sq.Query
			envCopy := env
			return func(value.Row) (value.Value, error) {
				once.Do(func() {
					op, err := p.PlanSelect(query, envCopy)
					if err != nil {
						resultErr = err
						return
					}
					rows, err := RunExecBatch(p.Exec, op, p.BatchSize)
					if err != nil {
						resultErr = err
						return
					}
					switch {
					case len(rows) == 0:
						result = value.NullValue
					case len(rows) > 1:
						resultErr = fmt.Errorf("scalar subquery returned %d rows", len(rows))
					case len(rows[0]) != 1:
						resultErr = fmt.Errorf("scalar subquery returned %d columns", len(rows[0]))
					default:
						result = rows[0][0]
					}
				})
				return result, resultErr
			}, nil
		}
		in, ok := e.(*sqlparser.InSubquery)
		if !ok {
			return nil, fmt.Errorf("unsupported expression %s", e.String())
		}
		var items []expr.Compiled
		for _, x := range in.Exprs {
			c, err := expr.Compile(x, schema, nil)
			if err != nil {
				return nil, err
			}
			items = append(items, c)
		}
		// The subquery is uncorrelated; evaluate it lazily exactly once.
		var once sync.Once
		var set map[string]bool
		var setErr error
		negated := in.Negated
		query := in.Query
		envCopy := env
		return func(r value.Row) (value.Value, error) {
			once.Do(func() {
				op, err := p.PlanSelect(query, envCopy)
				if err != nil {
					setErr = err
					return
				}
				rows, err := RunExecBatch(p.Exec, op, p.BatchSize)
				if err != nil {
					setErr = err
					return
				}
				set = make(map[string]bool, len(rows))
				for _, row := range rows {
					set[value.Key(row)] = true
				}
			})
			if setErr != nil {
				return value.NullValue, setErr
			}
			vals := make([]value.Value, len(items))
			for i, it := range items {
				v, err := it(r)
				if err != nil {
					return value.NullValue, err
				}
				vals[i] = v
			}
			return value.NewBool(set[value.Key(vals)] != negated), nil
		}, nil
	})
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
