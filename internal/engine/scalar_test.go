package engine

import (
	"fmt"
	"strings"
	"testing"

	"smarticeberg/internal/sqlparser"
)

func TestScalarSubquery(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT id, x FROM Object WHERE x > (SELECT AVG(x) FROM Object)`)
	if err != nil {
		t.Fatal(err)
	}
	// AVG(x) = 2.2; objects with x > 2.2: ids 3 (x=3) and 5 (x=4).
	assertRows(t, res.Rows, []string{"3|3", "5|4"})
}

func TestScalarSubqueryInSelect(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT id, x - (SELECT MIN(x) FROM Object) FROM Object WHERE id <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"1|0", "2|1"})
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	cat := testCatalog(t)
	_, err := Exec(cat, "SELECT id FROM Object WHERE x > (SELECT x FROM Object)")
	if err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Fatalf("expected cardinality error, got %v", err)
	}
	// Zero rows -> NULL -> predicate unknown -> empty result, no error.
	res, err := Exec(cat, "SELECT id FROM Object WHERE x > (SELECT x FROM Object WHERE id = 99)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL comparison must filter everything: %v", res.Rows)
	}
}

func TestCaseWhen(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT id, CASE WHEN x < 2 THEN 'low' WHEN x < 4 THEN 'mid' ELSE 'high' END
		FROM Object ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1|low", "2|mid", "3|mid", "4|low", "5|high"}
	assertRows(t, res.Rows, want)
}

func TestCaseWhenNoElseAndAggregation(t *testing.T) {
	cat := testCatalog(t)
	// Conditional counting: SUM(CASE WHEN ... THEN 1 ELSE 0 END).
	res, err := Exec(cat, `
		SELECT SUM(CASE WHEN x >= 2 THEN 1 ELSE 0 END),
		       COUNT(CASE WHEN x >= 2 THEN 1 END)
		FROM Object`)
	if err != nil {
		t.Fatal(err)
	}
	// x values: 1,2,3,1,4 -> three are >= 2; COUNT skips the NULL arms.
	assertRows(t, res.Rows, []string{"3|3"})
}

func TestCaseWhenInGroupBy(t *testing.T) {
	cat := testCatalog(t)
	res, err := Exec(cat, `
		SELECT CASE WHEN x < 3 THEN 'small' ELSE 'big' END AS bucket, COUNT(*)
		FROM Object
		GROUP BY CASE WHEN x < 3 THEN 'small' ELSE 'big' END
		HAVING COUNT(*) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{"big|2", "small|3"})
}

func TestExplainAnalyze(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sqlparser.ParseSelect(`
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y
		GROUP BY L.id HAVING COUNT(*) <= 3`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(cat)
	op, err := p.PlanSelect(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, rows, err := ExplainAnalyze(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("expected results")
	}
	if !strings.Contains(text, "actual rows=") {
		t.Errorf("missing actual row counts:\n%s", text)
	}
	// The aggregate's actual output must equal the result row count.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "HashAggregate") {
			want := fmt.Sprintf("actual rows=%d", len(rows))
			if !strings.Contains(line, want) {
				t.Errorf("aggregate line %q should contain %q", line, want)
			}
		}
	}
}
