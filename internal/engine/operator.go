// Package engine is the relational execution engine: Volcano-style physical
// operators, an analyzer that resolves parsed queries, a baseline planner
// that mimics the plans the paper observed in PostgreSQL (Appendix E), and a
// parallel execution variant standing in for the paper's "Vendor A".
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Operator is a Volcano-style iterator. Next returns a nil row at end of
// stream. Returned rows are valid until the next call to Next; operators
// that buffer rows clone them.
type Operator interface {
	Schema() value.Schema
	Open() error
	Next() (value.Row, error)
	Close() error
	// Describe returns a one-line description for EXPLAIN.
	Describe() string
	// Children returns the operator's inputs, for EXPLAIN.
	Children() []Operator
}

// Run drains an operator and returns all rows (cloned). A Close failure is
// reported unless the drain itself already failed. Panics anywhere in the
// plan surface as a *PanicError; cancellation and budgets are available
// through RunCtx / RunExec.
func Run(op Operator) ([]value.Row, error) {
	return RunExec(nil, op)
}

// RunCtx is Run under a context: the plan observes cancellation and
// deadlines within cancelCheckEvery rows at every operator.
func RunCtx(ctx context.Context, op Operator) ([]value.Row, error) {
	return RunExec(NewExecContext(ctx, nil), op)
}

// RunExec drains an operator under an execution context (nil means no
// deadline and no budget). It binds ec to the whole plan, contains panics
// from Open/Next/Close as *PanicError (closing the plan best-effort first so
// resources are released), and reports a cancellation that landed after the
// last row so a cancelled query never returns a successful partial result.
func RunExec(ec *ExecContext, op Operator) (rows []value.Row, err error) {
	if ec == nil {
		ec = backgroundExec
	}
	Bind(op, ec)
	defer func() {
		if r := recover(); r != nil {
			_ = op.Close() // best-effort release while panicking
			rows, err = nil, NewPanicError(op.Describe(), r)
		}
	}()
	if err := op.Open(); err != nil {
		//lint:ignore closecheck the Open failure takes precedence; Close here only releases partial state
		_ = op.Close()
		return nil, err
	}
	var out []value.Row
	var runErr error
	var tick uint32
	for {
		tick++
		if tick%cancelCheckEvery == 0 {
			if runErr = ec.Err(); runErr != nil {
				break
			}
		}
		var r value.Row
		r, runErr = op.Next()
		if runErr != nil || r == nil {
			break
		}
		out = append(out, r.Clone())
	}
	if cerr := op.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr == nil {
		// A cancel that fired between the last tick check and end of stream
		// (or during Close) still invalidates the result.
		runErr = ec.Err()
	}
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

// Explain renders an operator tree as an indented plan, in the style of the
// plans shown in Appendix E of the paper. Each line is annotated with the
// operator's execution mode: [batch N] for chunk-at-a-time operators (N is
// the effective chunk capacity) and [row] for the Volcano path.
func Explain(op Operator) string {
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(o.Describe())
		b.WriteString(pipelineTag(o))
		b.WriteByte('\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// pipelineTag renders the execution-mode annotation for EXPLAIN.
func pipelineTag(o Operator) string {
	if b, ok := o.(BatchOperator); ok {
		return fmt.Sprintf("  [batch %d]", b.BatchSize())
	}
	return "  [row]"
}

// ---------------------------------------------------------------------------
// Materialized relation scan

// MemScan iterates rows held in memory. It backs base-table scans, CTE
// scans, and derived-table scans.
type MemScan struct {
	execState
	Label  string
	schema value.Schema
	rows   []value.Row
	colSrc ColumnarSource
	pos    int
	out    int64
}

// ColumnarSource supplies a column-major twin of a scanned row set.
// storage.Table satisfies it; Batchify asks the source for columns when it
// rewrites a MemScan into a batch scan, so the columnar path activates for
// base tables without the planner copying any data.
type ColumnarSource interface {
	Columns() *value.Columns
}

// NewMemScan builds a scan over rows with the given schema.
func NewMemScan(label string, schema value.Schema, rows []value.Row) *MemScan {
	return &MemScan{Label: label, schema: schema, rows: rows}
}

// SetColumnSource attaches a provider of the rows' column-major form, to be
// consulted when the scan is batchified.
func (s *MemScan) SetColumnSource(src ColumnarSource) { s.colSrc = src }

// Schema implements Operator.
func (s *MemScan) Schema() value.Schema { return s.schema }

// Open implements Operator.
func (s *MemScan) Open() error {
	if err := failpoint.Inject(failpoint.ScanOpen); err != nil {
		return err
	}
	s.pos = 0
	s.out = 0
	return nil
}

// Next implements Operator.
func (s *MemScan) Next() (value.Row, error) {
	if err := failpoint.Inject(failpoint.ScanNext); err != nil {
		return nil, err
	}
	if err := s.step(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	s.out++
	return r, nil
}

// Close implements Operator.
func (s *MemScan) Close() error { return failpoint.Inject(failpoint.ScanClose) }

// Describe implements Operator.
func (s *MemScan) Describe() string {
	return fmt.Sprintf("Seq Scan on %s (%d rows)", s.Label, len(s.rows))
}

// Children implements Operator.
func (s *MemScan) Children() []Operator { return nil }

// ---------------------------------------------------------------------------
// Filter

// Filter passes through rows satisfying a predicate.
type Filter struct {
	execState
	child Operator
	pred  expr.Compiled
	// srcExpr, when set, is the predicate's source AST. Batchify uses it to
	// compile a typed selection kernel for the columnar path; the compiled
	// closure remains authoritative for row execution.
	srcExpr sqlparser.Expr
	label   string
	out     int64
}

// NewFilter wraps child with a predicate. label is used by EXPLAIN.
func NewFilter(child Operator, pred expr.Compiled, label string) *Filter {
	return &Filter{child: child, pred: pred, label: label}
}

// SetExpr retains the predicate's source AST for kernel compilation.
func (f *Filter) SetExpr(e sqlparser.Expr) { f.srcExpr = e }

// Schema implements Operator.
func (f *Filter) Schema() value.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { f.out = 0; return f.child.Open() }

// Next implements Operator.
func (f *Filter) Next() (value.Row, error) {
	if err := failpoint.Inject(failpoint.FilterNext); err != nil {
		return nil, err
	}
	for {
		if err := f.step(); err != nil {
			return nil, err
		}
		r, err := f.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		ok, err := expr.EvalBool(f.pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			f.out++
			return r, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter: " + f.label }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.child} }

// ---------------------------------------------------------------------------
// Project

// Project computes output expressions per input row.
type Project struct {
	child  Operator
	exprs  []expr.Compiled
	schema value.Schema
	out    int64
}

// NewProject builds a projection. schema names the output columns.
func NewProject(child Operator, exprs []expr.Compiled, schema value.Schema) *Project {
	return &Project{child: child, exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() value.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { p.out = 0; return p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (value.Row, error) {
	r, err := p.child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	out := make(value.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	p.out++
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Describe implements Operator.
func (p *Project) Describe() string { return "Project " + p.schema.String() }

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.child} }

// ---------------------------------------------------------------------------
// Distinct

// Distinct removes duplicate rows (by grouping-key identity).
type Distinct struct {
	execState
	child Operator
	seen  map[string]bool
	out   int64
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct { return &Distinct{child: child} }

// Schema implements Operator.
func (d *Distinct) Schema() value.Schema { return d.child.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	d.out = 0
	return d.child.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (value.Row, error) {
	for {
		if err := d.step(); err != nil {
			return nil, err
		}
		r, err := d.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		k := value.Key(r)
		if !d.seen[k] {
			d.seen[k] = true
			d.out++
			return r, nil
		}
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { return d.child.Close() }

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.child} }

// ---------------------------------------------------------------------------
// Sort

// Sort materializes and orders its input.
type Sort struct {
	execState
	child    Operator
	keys     []expr.Compiled
	desc     []bool
	rows     []value.Row
	pos      int
	reserved int64
}

// NewSort orders child by the given key expressions.
func NewSort(child Operator, keys []expr.Compiled, desc []bool) *Sort {
	return &Sort{child: child, keys: keys, desc: desc}
}

// Schema implements Operator.
func (s *Sort) Schema() value.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	if err := failpoint.Inject(failpoint.SortOpen); err != nil {
		return err
	}
	var rows []value.Row
	var err error
	if bc, ok := s.child.(BatchOperator); ok {
		// A batch child is drained chunk-at-a-time: same rows, fewer
		// allocations and per-row checks.
		rows, err = RunExecBatch(s.exec(), bc, bc.BatchSize())
	} else {
		rows, err = RunExec(s.exec(), s.child)
	}
	if err != nil {
		return err
	}
	s.reserved = resource.RowsBytes(rows)
	if err := s.exec().Charge("sort materialization", s.reserved); err != nil {
		s.reserved = 0
		return err
	}
	type keyed struct {
		row  value.Row
		keys []value.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		kv := make([]value.Value, len(s.keys))
		for j, k := range s.keys {
			v, err := k(r)
			if err != nil {
				return err
			}
			kv[j] = v
		}
		ks[i] = keyed{row: r, keys: kv}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range s.keys {
			cmp, _ := value.Compare(ks[a].keys[j], ks[b].keys[j])
			if cmp == 0 {
				continue
			}
			if s.desc[j] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	s.rows = make([]value.Row, len(ks))
	for i := range ks {
		s.rows[i] = ks[i].row
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.exec().Release(s.reserved)
	s.reserved = 0
	s.rows = nil
	return nil
}

// Describe implements Operator.
func (s *Sort) Describe() string { return fmt.Sprintf("Sort (%d keys)", len(s.keys)) }

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.child} }

// ---------------------------------------------------------------------------
// Limit

// Limit caps the number of rows.
type Limit struct {
	child Operator
	n     int64
	seen  int64
}

// NewLimit caps child at n rows.
func NewLimit(child Operator, n int64) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() value.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.child.Open() }

// Next implements Operator.
func (l *Limit) Next() (value.Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	r, err := l.child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	l.seen++
	return r, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.n) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.child} }

// ActualRows implementations report rows produced by the last execution,
// consumed by ExplainAnalyze.

// ActualRows implements rowCounter.
func (s *MemScan) ActualRows() int64 { return s.out }

// ActualRows implements rowCounter.
func (f *Filter) ActualRows() int64 { return f.out }

// ActualRows implements rowCounter.
func (p *Project) ActualRows() int64 { return p.out }

// ActualRows implements rowCounter.
func (d *Distinct) ActualRows() int64 { return d.out }

// rowCounter is implemented by operators that track the rows they produced
// during the last execution.
type rowCounter interface {
	ActualRows() int64
}

// ExplainAnalyze executes the plan, then renders it with per-operator
// actual row counts (in the spirit of EXPLAIN ANALYZE).
func ExplainAnalyze(op Operator) (string, []value.Row, error) {
	return ExplainAnalyzeExec(nil, op)
}

// ExplainAnalyzeExec is ExplainAnalyze under an execution context: the run
// observes its deadline, budget, and spill manager, and the rendered plan
// ends with a "Degraded:" line when the query descended the degradation
// ladder (cache-shed, spill, baseline-fallback).
func ExplainAnalyzeExec(ec *ExecContext, op Operator) (string, []value.Row, error) {
	rows, err := RunExec(ec, op)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(o.Describe())
		b.WriteString(pipelineTag(o))
		if rc, ok := o.(rowCounter); ok {
			fmt.Fprintf(&b, "  [actual rows=%d]", rc.ActualRows())
		}
		if sr, ok := o.(skipReporter); ok {
			if blocks, skRows, probes := sr.SkipCounts(); blocks > 0 || skRows > 0 || probes > 0 {
				fmt.Fprintf(&b, " [skipped blocks=%d rows=%d probes=%d]", blocks, skRows, probes)
			}
		}
		if tr, ok := o.(transferReporter); ok {
			if built, keys, probes := tr.TransferInfo(); built {
				fmt.Fprintf(&b, " [transfer filter keys=%d probes skipped=%d]", keys, probes)
			}
		}
		b.WriteByte('\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	if degs := ec.Degradations(); len(degs) > 0 {
		fmt.Fprintf(&b, "Degraded: %s\n", strings.Join(DegradeReasonStrings(degs), ", "))
	}
	return b.String(), rows, nil
}
