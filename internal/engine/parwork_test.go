package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestRunChunkedCoversRange: every index in [0, items) is processed exactly
// once, for a spread of sizes and worker counts, under the race detector.
func TestRunChunkedCoversRange(t *testing.T) {
	for _, items := range []int{0, 1, 7, 100, 1023} {
		for _, chunk := range []int{1, 16, 1000} {
			for _, workers := range []int{1, 3, 8} {
				seen := make([]int32, items)
				var mu sync.Mutex
				err := RunChunked(items, chunk, workers, func(worker, c, lo, hi int) error {
					if lo < 0 || hi > items || lo >= hi {
						return fmt.Errorf("bad range [%d,%d) for %d items", lo, hi, items)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						seen[i]++
					}
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("items=%d chunk=%d workers=%d: %v", items, chunk, workers, err)
				}
				for i, n := range seen {
					if n != 1 {
						t.Fatalf("items=%d chunk=%d workers=%d: index %d processed %d times", items, chunk, workers, i, n)
					}
				}
			}
		}
	}
}

// TestRunChunkedErrorDeterminism: when several chunks fail, the error of the
// lowest-index failing chunk is returned — scheduling cannot change which
// error the caller sees among chunks that ran.
func TestRunChunkedErrorDeterminism(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := RunChunked(100, 10, 4, func(worker, c, lo, hi int) error {
			switch c {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, errHigh) {
			// Chunk 7 may fail before chunk 2 is claimed only if chunk 2
			// never ran; with 4 workers claiming chunks in index order,
			// chunk 2 is always claimed before chunk 7.
			t.Fatalf("trial %d: got the high-index chunk's error", trial)
		}
	}
}

// TestRunChunkedAborts: after a failure, the remaining chunks are skipped
// (workers observe the failure flag and drain).
func TestRunChunkedAborts(t *testing.T) {
	var processed int32
	var mu sync.Mutex
	boom := errors.New("boom")
	err := RunChunked(1000, 1, 2, func(worker, c, lo, hi int) error {
		mu.Lock()
		processed++
		mu.Unlock()
		if c == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if processed == 1000 {
		t.Error("failure should abort remaining chunks")
	}
}

// TestDefaultWorkers pins the resolution rule shared by ParallelJoinAgg and
// the NLJP binding loop.
func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(3); got != 3 {
		t.Errorf("explicit request: got %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 4 {
		want = 4
	}
	for _, req := range []int{0, -1} {
		if got := DefaultWorkers(req); got != want {
			t.Errorf("DefaultWorkers(%d) = %d, want %d", req, got, want)
		}
	}
}
