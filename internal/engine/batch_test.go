package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// batchTestSizes are the chunk sizes every equivalence test runs at: the
// degenerate size, an even and an odd divisor of nothing in particular, and
// the production default.
var batchTestSizes = []int{1, 2, 7, 1024}

// sameValue is byte-identity: same kind and, for floats, the same bit
// pattern (value.Identical would accept cross-kind numeric equality and
// -0 == +0, which is weaker than the equivalence the batch path promises).
func sameValue(a, b value.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == value.Float {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return value.Identical(a, b)
}

// assertIdenticalRows requires got and want to match row for row, value for
// value, in order — batch execution must not even reorder groups.
func assertIdenticalRows(t *testing.T, label string, got, want []value.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d arity %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !sameValue(got[i][j], want[i][j]) {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// batchEquivRows builds a small table with int and float columns so float
// accumulation order is observable.
var batchEquivSchema = value.Schema{
	{Name: "g", Type: value.Int},
	{Name: "v", Type: value.Int},
	{Name: "f", Type: value.Float},
}

func batchEquivRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(i % 13)),
			value.NewInt(int64(i)),
			value.NewFloat(float64(i)*0.1 + 1e9), // large base: order-sensitive float sums
		}
	}
	return rows
}

func evenPred(r value.Row) (value.Value, error) {
	return value.NewBool(r[1].I%2 == 0), nil
}

// TestBatchOperatorEquivalence hand-builds row and batch versions of each
// operator shape and requires byte-identical output at every chunk size.
func TestBatchOperatorEquivalence(t *testing.T) {
	rows := batchEquivRows(3000)
	inner := func() []value.Row { return batchEquivRows(40) }
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCountStar},
		{Kind: expr.AggSum, Arg: colAt(2)},
	}
	aggSchema := value.Schema{
		{Name: "g", Type: value.Int},
		{Name: "count", Type: value.Int},
		{Name: "sum", Type: value.Float},
	}
	having := func(r value.Row) (value.Value, error) {
		return value.NewBool(r[1].I > 10), nil
	}

	cases := []struct {
		name  string
		row   func() Operator
		batch func(size int) Operator
	}{
		{
			name: "scan",
			row:  func() Operator { return NewMemScan("t", batchEquivSchema, rows) },
			batch: func(size int) Operator {
				return NewBatchMemScan("t", batchEquivSchema, rows, size)
			},
		},
		{
			name: "scan+filter fused",
			row: func() Operator {
				return NewFilter(NewMemScan("t", batchEquivSchema, rows), evenPred, "even(v)")
			},
			batch: func(size int) Operator {
				s := NewBatchMemScan("t", batchEquivSchema, rows, size)
				s.FusePredicate(evenPred, "even(v)")
				return s
			},
		},
		{
			name: "standalone batch filter",
			row: func() Operator {
				return NewFilter(NewMemScan("t", batchEquivSchema, rows), evenPred, "even(v)")
			},
			batch: func(size int) Operator {
				return NewBatchFilter(NewBatchMemScan("t", batchEquivSchema, rows, size), evenPred, "even(v)")
			},
		},
		{
			name: "project",
			row: func() Operator {
				return NewProject(NewMemScan("t", batchEquivSchema, rows),
					[]expr.Compiled{colAt(2), colAt(0)},
					value.Schema{{Name: "f", Type: value.Float}, {Name: "g", Type: value.Int}})
			},
			batch: func(size int) Operator {
				return NewBatchProject(NewBatchMemScan("t", batchEquivSchema, rows, size),
					[]expr.Compiled{colAt(2), colAt(0)},
					value.Schema{{Name: "f", Type: value.Float}, {Name: "g", Type: value.Int}})
			},
		},
		{
			name: "hash aggregate",
			row: func() Operator {
				return NewHashAggregate(NewMemScan("t", batchEquivSchema, rows),
					[]expr.Compiled{colAt(0)}, aggs, having, aggSchema)
			},
			batch: func(size int) Operator {
				return NewBatchHashAggregate(NewBatchMemScan("t", batchEquivSchema, rows, size),
					[]expr.Compiled{colAt(0)}, aggs, having, aggSchema)
			},
		},
		{
			name: "hash join",
			row: func() Operator {
				return NewNLJoin("Hash Join",
					NewMemScan("t", batchEquivSchema, rows),
					NewMemScan("u", batchEquivSchema, inner()),
					NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"),
					evenPred)
			},
			batch: func(size int) Operator {
				return NewBatchNLJoin("Hash Join",
					NewBatchMemScan("t", batchEquivSchema, rows, size),
					NewMemScan("u", batchEquivSchema, inner()),
					NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"),
					evenPred, size)
			},
		},
		{
			name: "adapter round trip",
			row:  func() Operator { return NewMemScan("t", batchEquivSchema, rows) },
			batch: func(size int) Operator {
				return RowsOf(BatchOf(NewMemScan("t", batchEquivSchema, rows), size))
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunExec(nil, tc.row())
			if err != nil {
				t.Fatalf("row plan: %v", err)
			}
			for _, size := range batchTestSizes {
				got, err := RunExecBatch(nil, tc.batch(size), size)
				if err != nil {
					t.Fatalf("batch plan size %d: %v", size, err)
				}
				assertIdenticalRows(t, fmt.Sprintf("size %d", size), got, want)
			}
		})
	}
}

// TestBatchifyPlannerEquivalence runs whole SQL statements through the
// planner with and without a batch size; the batch pipeline must be
// byte-identical including group first-seen order and float accumulation
// order.
func TestBatchifyPlannerEquivalence(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		`SELECT i1.item, i2.item, COUNT(*)
		 FROM Basket i1, Basket i2
		 WHERE i1.bid = i2.bid AND i1.item < i2.item
		 GROUP BY i1.item, i2.item
		 HAVING COUNT(*) >= 2`,
		`SELECT L.id, COUNT(*)
		 FROM Object L, Object R
		 WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		 GROUP BY L.id HAVING COUNT(*) <= 1`,
		`SELECT COUNT(*), SUM(x), MIN(y), MAX(y), AVG(x) FROM Object`,
		`SELECT id, x + y FROM Object WHERE x >= 2 ORDER BY id DESC LIMIT 3`,
		`SELECT DISTINCT item FROM Basket`,
		`SELECT bid, COUNT(*) FROM Basket GROUP BY bid`,
	}
	run := func(sql string, size int) []value.Row {
		t.Helper()
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		p := NewPlanner(cat)
		p.BatchSize = size
		op, err := p.PlanSelect(sel, nil)
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		rows, err := RunExecBatch(nil, op, size)
		if err != nil {
			t.Fatalf("run %q size %d: %v", sql, size, err)
		}
		return rows
	}
	for qi, sql := range queries {
		want := run(sql, 0)
		for _, size := range batchTestSizes {
			assertIdenticalRows(t, fmt.Sprintf("query %d size %d", qi, size), run(sql, size), want)
		}
	}
}

// TestExplainBatchAnnotation: EXPLAIN marks every node with its pipeline and
// the effective chunk size.
func TestExplainBatchAnnotation(t *testing.T) {
	cat := testCatalog(t)
	sel, err := sqlparser.ParseSelect(`SELECT bid, COUNT(*) FROM Basket WHERE item < 'd' GROUP BY bid`)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPlanner(cat)
	p.BatchSize = 64
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(op)
	if !strings.Contains(text, "[batch 64]") {
		t.Fatalf("EXPLAIN with BatchSize=64 lacks [batch 64] annotation:\n%s", text)
	}

	p = NewPlanner(cat)
	op, err = p.PlanSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	text = Explain(op)
	if !strings.Contains(text, "[row]") {
		t.Fatalf("EXPLAIN with BatchSize=0 lacks [row] annotation:\n%s", text)
	}
	if strings.Contains(text, "[batch") {
		t.Fatalf("row-mode EXPLAIN claims a batch pipeline:\n%s", text)
	}
}

// batchFaultPlan mirrors faultPlan with the batch pipeline underneath:
// Sort(BatchHashAggregate(BatchNLJoin(fused BatchMemScan, MemScan))).
func batchFaultPlan(size int) Operator {
	outer := NewBatchMemScan("t", cancelSchema, cancelRows(2000), size)
	outer.FusePredicate(truePred, "true")
	inner := NewMemScan("u", cancelSchema, cancelRows(500))
	join := NewBatchNLJoin("Hash Join", outer, inner,
		NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil, size)
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
	agg := NewBatchHashAggregate(join, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	return NewSort(agg, []expr.Compiled{colAt(0)}, []bool{false})
}

// TestBatchFaultMatrix re-runs the fault matrix against the batch pipeline:
// every failpoint site the row plan hits must also be live on the batch
// path, fail with one typed error, and release every charged byte.
func TestBatchFaultMatrix(t *testing.T) {
	points := []string{
		failpoint.ScanOpen, failpoint.ScanNext, failpoint.ScanClose,
		failpoint.FilterNext,
		failpoint.JoinOpen, failpoint.JoinNext, failpoint.JoinClose,
		failpoint.AggOpen, failpoint.AggNext, failpoint.AggClose,
		failpoint.SortOpen,
	}
	for _, pt := range points {
		for _, mode := range []string{"error", "panic"} {
			t.Run(fmt.Sprintf("%s/%s", pt, mode), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(pt, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(pt, failpoint.Once(failpoint.Panic("batch matrix")))
				}
				budget := resource.NewBudget(1 << 30)
				rows, err := RunExecBatch(NewExecContext(nil, budget), batchFaultPlan(64), 64)
				if err == nil {
					t.Fatalf("%s/%s: query succeeded with %d rows, want injected failure", pt, mode, len(rows))
				}
				if hits := failpoint.Hits(pt); hits == 0 {
					t.Fatalf("%s: never fired — the site is not reachable in the batch plan", pt)
				}
				switch mode {
				case "error":
					if !errors.Is(err, errBoom) {
						t.Fatalf("%s: error = %v, want the injected errBoom", pt, err)
					}
				case "panic":
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("%s: error = %v (%T), want *PanicError", pt, err, err)
					}
				}
				if used := budget.Used(); used != 0 {
					t.Fatalf("%s/%s: %d bytes still reserved after failure; resources leaked", pt, mode, used)
				}
			})
		}
	}
}

// TestBatchCancelMidStream: with a small chunk size the per-chunk
// cancellation poll must surface context.Canceled within the same tick
// window the row contract promises.
func TestBatchCancelMidStream(t *testing.T) {
	rows := cancelRows(20000)
	const size = 16
	newScan := func() *BatchMemScan { return NewBatchMemScan("t", cancelSchema, rows, size) }
	cases := []struct {
		name string
		op   func() Operator
	}{
		{"BatchMemScan", func() Operator { return newScan() }},
		{"BatchMemScan fused filter", func() Operator {
			s := newScan()
			s.FusePredicate(truePred, "true")
			return s
		}},
		{"BatchFilter", func() Operator { return NewBatchFilter(newScan(), truePred, "true") }},
		{"BatchNLJoin", func() Operator {
			return NewBatchNLJoin("Hash Join", newScan(),
				NewMemScan("u", cancelSchema, cancelRows(500)),
				NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil, size)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testleak.Check(t)
			driveCancelled(t, tc.name, tc.op(), 100)
		})
	}
}

// TestBatchCancelDuringAggBuild: a cancel that lands while the batch
// aggregate is draining its input chunks must abort the build phase.
func TestBatchCancelDuringAggBuild(t *testing.T) {
	testleak.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Open's first chunk poll must see it
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
	agg := NewBatchHashAggregate(NewBatchMemScan("t", cancelSchema, cancelRows(20000), 32),
		[]expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	_, err := RunExecBatch(NewExecContext(ctx, nil), agg, 32)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunExecBatch under cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestBatchBudgetEquivalence: the batch aggregate charges the budget with
// the same accounting formula as the row aggregate, so a budget that fails
// the row plan fails the batch plan too (and vice versa).
func TestBatchBudgetEquivalence(t *testing.T) {
	rows := batchEquivRows(5000)
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
	rowPlan := func() Operator {
		return NewHashAggregate(NewMemScan("t", batchEquivSchema, rows),
			[]expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	}
	batchPlan := func() Operator {
		return NewBatchHashAggregate(NewBatchMemScan("t", batchEquivSchema, rows, 128),
			[]expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	}
	for _, limit := range []int64{1 << 30, 512} {
		rowBudget := resource.NewBudget(limit)
		_, rowErr := RunExec(NewExecContext(nil, rowBudget), rowPlan())
		batchBudget := resource.NewBudget(limit)
		_, batchErr := RunExecBatch(NewExecContext(nil, batchBudget), batchPlan(), 128)
		if (rowErr == nil) != (batchErr == nil) {
			t.Fatalf("limit %d: row err = %v, batch err = %v — paths disagree", limit, rowErr, batchErr)
		}
		if rowErr != nil && !errors.Is(batchErr, resource.ErrBudgetExceeded) {
			t.Fatalf("limit %d: batch err = %v, want budget error", limit, batchErr)
		}
		if rowBudget.Used() != 0 || batchBudget.Used() != 0 {
			t.Fatalf("limit %d: leaked reservations (row %d, batch %d)", limit, rowBudget.Used(), batchBudget.Used())
		}
	}
}

// TestHashAggregateNextAllocs: group emission reuses one scratch row, so a
// drained aggregate hands out rows without allocating.
func TestHashAggregateNextAllocs(t *testing.T) {
	rows := batchEquivRows(4000)
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}, {Kind: expr.AggSum, Arg: colAt(1)}}
	aggSchema := value.Schema{
		{Name: "g", Type: value.Int},
		{Name: "count", Type: value.Int},
		{Name: "sum", Type: value.Int},
	}
	agg := NewHashAggregate(NewMemScan("t", batchEquivSchema, rows),
		[]expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	Bind(agg, NewExecContext(nil, nil))
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := agg.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := agg.Next(); err != nil { // warm once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := agg.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("HashAggregate.Next allocates %.1f objects per row, want 0", allocs)
	}
}

// TestHashProbeAllocs: probing a built hash table through caller-owned
// scratch is allocation-free.
func TestHashProbeAllocs(t *testing.T) {
	build := batchEquivRows(512)
	method := NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g")
	if err := method.Build(build); err != nil {
		t.Fatal(err)
	}
	probeRow := value.Row{value.NewInt(7), value.NewInt(1), value.NewFloat(0)}
	var scratch ProbeScratch
	if _, err := ProbeInto(method, probeRow, &scratch); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ProbeInto(method, probeRow, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ProbeInto allocates %.1f objects per probe, want 0", allocs)
	}
}

// TestBatchRepeatedEOS: after exhaustion every batch operator keeps
// returning (nil, nil) from both protocols — BatchNLJoin relies on this.
func TestBatchRepeatedEOS(t *testing.T) {
	ops := []struct {
		name string
		op   Operator
	}{
		{"BatchMemScan", NewBatchMemScan("t", batchEquivSchema, batchEquivRows(10), 4)},
		{"BatchFilter", NewBatchFilter(NewBatchMemScan("t", batchEquivSchema, batchEquivRows(10), 4), evenPred, "even")},
		{"BatchHashAggregate", NewBatchHashAggregate(
			NewBatchMemScan("t", batchEquivSchema, batchEquivRows(10), 4),
			[]expr.Compiled{colAt(0)},
			[]*expr.Aggregate{{Kind: expr.AggCountStar}}, nil,
			value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}})},
	}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			Bind(tc.op, NewExecContext(nil, nil))
			if err := tc.op.Open(); err != nil {
				t.Fatal(err)
			}
			bo := tc.op.(BatchOperator)
			for {
				b, err := bo.NextBatch()
				if err != nil {
					t.Fatal(err)
				}
				if b == nil {
					break
				}
			}
			for i := 0; i < 3; i++ {
				if b, err := bo.NextBatch(); err != nil || b != nil {
					t.Fatalf("NextBatch after EOS #%d = (%v, %v), want (nil, nil)", i, b, err)
				}
				if r, err := tc.op.Next(); err != nil || r != nil {
					t.Fatalf("Next after EOS #%d = (%v, %v), want (nil, nil)", i, r, err)
				}
			}
			if err := tc.op.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
