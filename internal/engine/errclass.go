package engine

import (
	"context"
	"errors"
	"io"
	"io/fs"

	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
)

// ErrClass partitions every error the engine and server can surface into
// the recovery taxonomy icebergd acts on. The classes are ordered by what a
// caller should do next:
//
//   - Transient: the fault was momentary (an injected I/O error, a spill
//     corruption detected by checksum, a contained panic in one worker).
//     Re-executing the same query — possibly one rung down the degradation
//     ladder — is expected to succeed, and every rung is byte-identical or
//     strictly safer, so the retry can never produce a wrong answer.
//   - Resource: the query exceeded its memory carve. A retry with spill
//     enabled or on the baseline plan trades time for memory and completes.
//   - Overload: the server refused the work (full queue, depleted global
//     budget, open circuit breaker). Retrying locally only adds load; the
//     client should back off for the advertised Retry-After.
//   - Canceled: the caller's own context expired or was cancelled. Retrying
//     inside the original deadline is pointless by definition.
//   - Fatal: everything else — parse errors, planner bugs, unknown
//     failures. Retrying cannot help and may hide a real defect.
//
// ClassNone is the class of a nil error.
type ErrClass int

const (
	ClassNone ErrClass = iota
	ClassTransient
	ClassResource
	ClassOverload
	ClassCanceled
	ClassFatal

	// NumErrClasses sizes per-class counter arrays.
	NumErrClasses
)

// String returns the stable wire name used in icebergd responses, /stats,
// and BENCH_chaos.json.
func (c ErrClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassResource:
		return "resource"
	case ClassOverload:
		return "overload"
	case ClassCanceled:
		return "canceled"
	case ClassFatal:
		return "fatal"
	default:
		return "unknown"
	}
}

// Retryable reports whether a degraded re-execution of the same query has a
// reasonable chance of succeeding. Only Transient and Resource qualify:
// Overload retries amplify the overload, Canceled retries cannot beat the
// caller's own deadline, and Fatal retries repeat the failure.
func (c ErrClass) Retryable() bool {
	return c == ClassTransient || c == ClassResource
}

// Classified lets error types outside this package declare their own class;
// Classify honors it before any other rule. The server's overload and
// breaker errors use this (the server imports engine, not vice versa).
type Classified interface {
	ErrClass() ErrClass
}

// Classify maps any error onto the taxonomy. The rules run most-specific
// first; an unrecognized error is Fatal, because retrying an unknown
// failure is how wrong answers and retry storms happen.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var classified Classified
	if errors.As(err, &classified) {
		return classified.ErrClass()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	if errors.Is(err, resource.ErrBudgetExceeded) {
		return ClassResource
	}
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		// A contained panic killed one attempt, not the server; the state it
		// corrupted died with the attempt's operators, so a fresh attempt
		// starts clean.
		return ClassTransient
	case errors.Is(err, failpoint.ErrInjected),
		errors.Is(err, spill.ErrCorrupt):
		return ClassTransient
	}
	// Raw I/O failures (spill disk hiccups surface as *fs.PathError through
	// os, short reads as io errors) are the canonical transient fault.
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) {
		return ClassTransient
	}
	return ClassFatal
}
