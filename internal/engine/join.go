package engine

import (
	"fmt"
	"sort"
	"sync/atomic"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// Prober is the probing strategy of a join: given an outer row it returns
// the positions of candidate inner rows. Implementations are read-only after
// Build and safe for concurrent probing (the Vendor A parallel executor and
// the iceberg NLJP operator rely on this).
type Prober interface {
	// Build prepares the prober over the materialized inner rows.
	Build(rows []value.Row) error
	// Probe returns candidate inner row positions for one outer row. The
	// returned slice is read-only and may alias internal state.
	Probe(outer value.Row) ([]int32, error)
	// Describe returns a one-line description for EXPLAIN.
	Describe() string
}

// NewHashProber probes a hash table built over equality keys; outerKeys are
// compiled over the outer schema and innerKeys over the inner schema.
func NewHashProber(outerKeys, innerKeys []expr.Compiled, label string) Prober {
	return &hashMethod{outerKeys: outerKeys, innerKeys: innerKeys, label: label}
}

// NewRangeProber probes a sorted projection of the inner rows with a bound
// computed from the outer row: outerExpr op inner[innerCol], with op one of
// = < <= > >=.
func NewRangeProber(outerExpr expr.Compiled, innerCol int, op, label string) Prober {
	return &rangeMethod{outerExpr: outerExpr, innerCol: innerCol, op: op, label: label}
}

// NewScanProber returns every inner row for every probe (block nested loop).
func NewScanProber() Prober { return &scanMethod{} }

// ProbeScratch holds one prober caller's reusable key buffers. Prober
// implementations must stay read-only after Build so concurrent probers can
// share them; moving the per-probe scratch to the caller is what makes the
// probe loop allocation-free without breaking that contract — each worker
// (NLJoin, BatchNLJoin, ParallelJoinAgg workers, NLJP bindings) owns its own
// scratch. The zero value is ready to use.
type ProbeScratch struct {
	keys []value.Value
	buf  []byte
}

// probeKeyer is implemented by probers that can probe through a caller-owned
// scratch instead of allocating per probe.
type probeKeyer interface {
	ProbeWith(outer value.Row, s *ProbeScratch) ([]int32, error)
}

// ProbeInto probes p for one outer row, routing through the caller-owned
// scratch when the prober supports it. The returned slice is read-only and
// may alias the prober's internal state, exactly as Prober.Probe.
func ProbeInto(p Prober, outer value.Row, s *ProbeScratch) ([]int32, error) {
	if pk, ok := p.(probeKeyer); ok {
		return pk.ProbeWith(outer, s)
	}
	return p.Probe(outer)
}

// hashMethod probes a hash table built on equality keys.
type hashMethod struct {
	outerKeys []expr.Compiled
	innerKeys []expr.Compiled
	label     string
	table     map[string][]int32

	// Sideways predicate transfer. When transfer is armed (planner, batch
	// pipeline only), Build also folds the non-NULL build keys into filter, a
	// blocked Bloom with per-key envelopes; BatchNLJoin installs it on the
	// probe side's scans before opening them. outerRefs holds each probe
	// key's column reference when it is a plain column (nil entries mark
	// computed keys, which cannot be pushed to a scan). filterFault records a
	// FilterBuild fault: the join then runs without a filter — same answer,
	// no pre-filtering — and the degrade is reported by BatchNLJoin.
	// skippedProbes counts probes the Bloom pre-check cut short; atomic
	// because probers are probed concurrently (ParallelJoinAgg, NLJP).
	transfer      bool
	outerRefs     []*sqlparser.ColRef
	filter        *expr.KeyFilter
	filterFault   bool
	skippedProbes atomic.Int64
}

func (h *hashMethod) Build(rows []value.Row) error {
	h.table = make(map[string][]int32, len(rows))
	keys := make([]value.Value, len(h.innerKeys))
	var buf []byte
	for i, r := range rows {
		for j, k := range h.innerKeys {
			v, err := k(r)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		buf = value.AppendKeys(buf[:0], keys)
		h.table[string(buf)] = append(h.table[string(buf)], int32(i))
	}
	if h.transfer {
		h.filterFault = false
		h.skippedProbes.Store(0)
		h.buildFilter(rows)
	}
	return nil
}

// buildFilter folds the build-side keys into the transfer filter. Any fault —
// an injected FilterBuild error, a panic — leaves the join filterless but
// fully functional: the hash table above is already built and authoritative,
// so the only consequence is that no probe pre-filtering happens.
func (h *hashMethod) buildFilter(rows []value.Row) {
	h.filter = nil
	defer func() {
		if r := recover(); r != nil {
			h.filter = nil
			h.filterFault = true
		}
	}()
	if err := failpoint.Inject(failpoint.FilterBuild); err != nil {
		h.filterFault = true
		return
	}
	f := expr.NewKeyFilter(len(rows), len(h.innerKeys))
	keys := make([]value.Value, len(h.innerKeys))
	var buf []byte
	for _, r := range rows {
		hasNull := false
		for j, k := range h.innerKeys {
			v, err := k(r)
			if err != nil {
				// Build above evaluated the same keys without error; treat a
				// divergence as a fault and drop the filter.
				h.filterFault = true
				return
			}
			if v.IsNull() {
				hasNull = true
				break
			}
			keys[j] = v
		}
		if hasNull {
			// A NULL key never equi-joins; ProbeWith bails on NULL outer keys
			// before consulting the filter, so omitting the row keeps the
			// no-false-negative guarantee.
			continue
		}
		buf = value.AppendKeys(buf[:0], keys)
		f.Add(buf, keys)
	}
	h.filter = f
}

func (h *hashMethod) Probe(outer value.Row) ([]int32, error) {
	var s ProbeScratch
	return h.ProbeWith(outer, &s)
}

// ProbeWith implements probeKeyer: key evaluation and encoding go through the
// caller's scratch, and the table lookup converts the byte key in place
// (string(s.buf) in a map index does not allocate), so a probe costs zero
// allocations.
func (h *hashMethod) ProbeWith(outer value.Row, s *ProbeScratch) ([]int32, error) {
	if cap(s.keys) < len(h.outerKeys) {
		s.keys = make([]value.Value, len(h.outerKeys))
	}
	keys := s.keys[:len(h.outerKeys)]
	for j, k := range h.outerKeys {
		v, err := k(outer)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil // NULL never equi-joins
		}
		keys[j] = v
	}
	s.buf = value.AppendKeys(s.buf[:0], keys)
	if h.filter != nil && !h.filter.MayContain(s.buf) {
		// No false negatives: a rejected key is provably absent from the
		// table, so returning early is byte-identical to the map miss.
		h.skippedProbes.Add(1)
		return nil, nil
	}
	return h.table[string(s.buf)], nil
}

func (h *hashMethod) Describe() string { return "Hash Cond: " + h.label }

// rangeMethod probes a sorted projection of the inner input with a bound
// computed from the outer row — the stand-in for an index nested-loop join
// over a B-tree (the dominant baseline plan in Appendix E).
type rangeMethod struct {
	outerExpr expr.Compiled
	innerCol  int
	op        string // comparison: outerVal OP innerVal, one of = < <= > >=
	label     string
	rows      []value.Row
	perm      []int32
}

func (m *rangeMethod) Build(rows []value.Row) error {
	m.rows = rows
	m.perm = make([]int32, len(rows))
	for i := range m.perm {
		m.perm[i] = int32(i)
	}
	c := m.innerCol
	sort.Slice(m.perm, func(a, b int) bool {
		cmp, _ := value.Compare(rows[m.perm[a]][c], rows[m.perm[b]][c])
		return cmp < 0
	})
	return nil
}

func (m *rangeMethod) Probe(outer value.Row) ([]int32, error) {
	v, err := m.outerExpr(outer)
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	n := len(m.perm)
	c := m.innerCol
	geIdx := func(strict bool) int {
		return sort.Search(n, func(p int) bool {
			cmp, _ := value.Compare(m.rows[m.perm[p]][c], v)
			if strict {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	switch m.op {
	case "=":
		lo, hi := geIdx(false), geIdx(true)
		return m.perm[lo:hi], nil
	case "<": // outer < inner: inner values strictly above v
		return m.perm[geIdx(true):], nil
	case "<=":
		return m.perm[geIdx(false):], nil
	case ">": // outer > inner: inner values strictly below v
		return m.perm[:geIdx(false)], nil
	case ">=":
		return m.perm[:geIdx(true)], nil
	}
	return nil, fmt.Errorf("rangeMethod: bad op %q", m.op)
}

func (m *rangeMethod) Describe() string { return "Index Cond: " + m.label }

// scanMethod probes by scanning every inner row (block nested loop).
type scanMethod struct {
	all []int32
}

func (m *scanMethod) Build(rows []value.Row) error {
	m.all = make([]int32, len(rows))
	for i := range m.all {
		m.all[i] = int32(i)
	}
	return nil
}

func (m *scanMethod) Probe(value.Row) ([]int32, error) { return m.all, nil }

func (m *scanMethod) Describe() string { return "Block Scan" }

// NLJoin joins an outer operator against a materialized inner operator using
// a joinMethod, applying a residual predicate over concatenated rows.
type NLJoin struct {
	execState
	outer    Operator
	inner    Operator
	method   Prober
	residual expr.Compiled // over outerSchema ++ innerSchema; may be nil
	name     string
	schema   value.Schema

	innerRows []value.Row
	reserved  int64
	out       int64
	curOuter  value.Row
	matches   []int32
	matchPos  int
	scratch   value.Row
	probe     ProbeScratch
}

// NewNLJoin builds a join. name is shown by EXPLAIN ("Hash Join",
// "Indexed Nested Loop", "Nested Loop").
func NewNLJoin(name string, outer, inner Operator, method Prober, residual expr.Compiled) *NLJoin {
	return &NLJoin{
		outer: outer, inner: inner, method: method, residual: residual,
		name:   name,
		schema: outer.Schema().Concat(inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NLJoin) Schema() value.Schema { return j.schema }

// Open implements Operator.
func (j *NLJoin) Open() error {
	if err := failpoint.Inject(failpoint.JoinOpen); err != nil {
		return err
	}
	rows, err := RunExec(j.exec(), j.inner)
	if err != nil {
		return err
	}
	// The build side is materialized for the whole probe phase; charge it so
	// a runaway inner join fails with a typed budget error, not an OOM kill.
	j.reserved = resource.RowsBytes(rows)
	if err := j.exec().Charge("join build side", j.reserved); err != nil {
		j.reserved = 0
		return err
	}
	j.innerRows = rows
	if err := j.method.Build(rows); err != nil {
		return err
	}
	j.curOuter = nil
	j.matches = nil
	j.matchPos = 0
	j.out = 0
	j.scratch = make(value.Row, len(j.schema))
	return j.outer.Open()
}

// Next implements Operator.
func (j *NLJoin) Next() (value.Row, error) {
	if err := failpoint.Inject(failpoint.JoinNext); err != nil {
		return nil, err
	}
	for {
		if err := j.step(); err != nil {
			return nil, err
		}
		for j.matchPos < len(j.matches) {
			ir := j.innerRows[j.matches[j.matchPos]]
			j.matchPos++
			copy(j.scratch, j.curOuter)
			copy(j.scratch[len(j.curOuter):], ir)
			if j.residual != nil {
				ok, err := expr.EvalBool(j.residual, j.scratch)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.out++
			return j.scratch, nil
		}
		outer, err := j.outer.Next()
		if err != nil || outer == nil {
			return nil, err
		}
		//lint:ignore rowalias curOuter is only read until the next j.outer.Next call, within the row's validity window
		j.curOuter = outer
		j.matches, err = ProbeInto(j.method, outer, &j.probe)
		if err != nil {
			return nil, err
		}
		j.matchPos = 0
	}
}

// Close implements Operator.
func (j *NLJoin) Close() error {
	j.exec().Release(j.reserved)
	j.reserved = 0
	if err := failpoint.Inject(failpoint.JoinClose); err != nil {
		//lint:ignore closecheck injected fault takes precedence; the real close still runs
		_ = j.outer.Close()
		return err
	}
	return j.outer.Close()
}

// Describe implements Operator.
func (j *NLJoin) Describe() string {
	d := j.name + " (" + j.method.Describe() + ")"
	if j.residual != nil {
		d += " + residual filter"
	}
	return d
}

// Children implements Operator.
func (j *NLJoin) Children() []Operator { return []Operator{j.outer, j.inner} }

// ActualRows implements rowCounter.
func (j *NLJoin) ActualRows() int64 { return j.out }
