package engine

import (
	"errors"
	"fmt"
	"testing"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

var errBoom = errors.New("boom: injected by test")

// faultPlan builds a plan containing every sequential operator kind the
// failpoint sites live in: Sort(HashAggregate(NLJoin(Filter(Scan), Scan))).
func faultPlan() Operator {
	outer := NewFilter(NewMemScan("t", cancelSchema, cancelRows(2000)), truePred, "true")
	inner := NewMemScan("u", cancelSchema, cancelRows(500))
	join := NewNLJoin("Hash Join", outer, inner,
		NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
	aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
	aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
	agg := NewHashAggregate(join, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema)
	return NewSort(agg, []expr.Compiled{colAt(0)}, []bool{false})
}

// TestFaultMatrix injects a single fault — an error or a panic — at every
// engine failpoint and asserts the invariant of the resilience layer: the
// query fails with exactly one typed error and every byte charged to the
// budget is released again.
func TestFaultMatrix(t *testing.T) {
	points := []string{
		failpoint.ScanOpen, failpoint.ScanNext, failpoint.ScanClose,
		failpoint.FilterNext,
		failpoint.JoinOpen, failpoint.JoinNext, failpoint.JoinClose,
		failpoint.AggOpen, failpoint.AggNext, failpoint.AggClose,
		failpoint.SortOpen,
	}
	for _, pt := range points {
		for _, mode := range []string{"error", "panic"} {
			t.Run(fmt.Sprintf("%s/%s", pt, mode), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(pt, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(pt, failpoint.Once(failpoint.Panic("matrix")))
				}
				budget := resource.NewBudget(1 << 30)
				rows, err := RunExec(NewExecContext(nil, budget), faultPlan())
				if err == nil {
					t.Fatalf("%s/%s: query succeeded with %d rows, want injected failure", pt, mode, len(rows))
				}
				// Close sites are re-hit during best-effort cleanup; Once
				// guarantees the fault itself fired a single time.
				if hits := failpoint.Hits(pt); hits == 0 {
					t.Fatalf("%s: never fired — the site is not reachable in this plan", pt)
				}
				switch mode {
				case "error":
					if !errors.Is(err, errBoom) {
						t.Fatalf("%s: error = %v, want the injected errBoom", pt, err)
					}
				case "panic":
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("%s: error = %v (%T), want *PanicError", pt, err, err)
					}
					if pe.Site == "" || len(pe.Stack) == 0 {
						t.Fatalf("%s: PanicError missing site or stack: %+v", pt, pe)
					}
				}
				if used := budget.Used(); used != 0 {
					t.Fatalf("%s/%s: %d bytes still reserved after failure; resources leaked", pt, mode, used)
				}
			})
		}
	}
}

// TestFaultParallelWorkers injects faults at worker startup of the Vendor A
// executor: the failure must surface as one typed error, the feeder must not
// deadlock, and no goroutine may outlive the query.
func TestFaultParallelWorkers(t *testing.T) {
	plan := func() Operator {
		join := NewNLJoin("Hash Join",
			NewMemScan("t", cancelSchema, cancelRows(20000)),
			NewMemScan("u", cancelSchema, cancelRows(500)),
			NewHashProber([]expr.Compiled{colAt(0)}, []expr.Compiled{colAt(0)}, "g = g"), nil)
		aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}}
		aggSchema := value.Schema{{Name: "g", Type: value.Int}, {Name: "count", Type: value.Int}}
		return NewParallelJoinAgg(join, []expr.Compiled{colAt(0)}, aggs, nil, aggSchema, 4)
	}
	for _, mode := range []string{"error", "panic", "error-all-workers"} {
		t.Run(mode, func(t *testing.T) {
			testleak.Check(t)
			defer failpoint.Reset()
			switch mode {
			case "error":
				failpoint.Enable(failpoint.ParallelWorkerStart, failpoint.Once(failpoint.Error(errBoom)))
			case "panic":
				failpoint.Enable(failpoint.ParallelWorkerStart, failpoint.Once(failpoint.Panic("worker")))
			case "error-all-workers":
				// Every worker dies at startup; the feeder must still drain.
				failpoint.Enable(failpoint.ParallelWorkerStart, failpoint.Error(errBoom))
			}
			_, err := RunExec(nil, plan())
			if err == nil {
				t.Fatal("query succeeded, want injected worker failure")
			}
			if mode == "panic" {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("error = %v (%T), want *PanicError", err, err)
				}
			} else if !errors.Is(err, errBoom) {
				t.Fatalf("error = %v, want the injected errBoom", err)
			}
		})
	}
}

// TestFaultChunkWorkers exercises the shared chunked-loop harness the
// parallel NLJP binding loop runs on.
func TestFaultChunkWorkers(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(failpoint.ChunkWorkerStart, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(failpoint.ChunkWorkerStart, failpoint.Once(failpoint.Panic("chunk")))
				}
				err := RunChunked(10000, 64, workers, func(w, c, lo, hi int) error { return nil })
				if err == nil {
					t.Fatal("RunChunked succeeded, want injected failure")
				}
				if mode == "panic" {
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("error = %v (%T), want *PanicError", err, err)
					}
				} else if !errors.Is(err, errBoom) {
					t.Fatalf("error = %v, want the injected errBoom", err)
				}
			})
		}
	}
}

// TestFaultProcessPanic: a panic raised by user code mid-plan (not at a
// failpoint) is still contained by Run and reported with the operator site.
func TestFaultProcessPanic(t *testing.T) {
	boom := func(value.Row) (value.Value, error) { panic("predicate exploded") }
	op := NewFilter(NewMemScan("t", cancelSchema, cancelRows(100)), boom, "boom")
	_, err := Run(op)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
}
