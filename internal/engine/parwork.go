package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smarticeberg/internal/failpoint"
)

// DefaultWorkers resolves a worker-count knob: a positive request is taken
// as-is, anything else selects min(4, GOMAXPROCS), matching the paper's
// 4-core "Vendor A" testbed. Shared by ParallelJoinAgg and the iceberg
// NLJP operator so every parallel executor sizes itself the same way.
func DefaultWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

// RunChunked partitions [0, items) into contiguous chunks of chunkSize and
// processes them on up to workers goroutines. Chunks are claimed dynamically
// (an atomic counter, so fast workers steal remaining chunks) but the chunk
// index space itself is deterministic: chunk c always covers
// [c*chunkSize, min((c+1)*chunkSize, items)). Callers that accumulate
// per-chunk partial results and fold them in chunk-index order therefore get
// results independent of scheduling — the foundation of the NLJP parallel
// binding loop's determinism guarantee.
//
// process receives the claiming worker's id (for worker-local scratch), the
// chunk index, and the chunk's [lo, hi) range. The first error (lowest chunk
// index among failures, so error identity is deterministic too) aborts the
// remaining chunks and is returned.
func RunChunked(items, chunkSize, workers int, process func(worker, chunk, lo, hi int) error) error {
	if items <= 0 {
		return nil
	}
	if chunkSize <= 0 {
		chunkSize = items
	}
	numChunks := (items + chunkSize - 1) / chunkSize
	if workers > numChunks {
		workers = numChunks
	}
	if workers <= 1 {
		return runChunkedSerial(items, chunkSize, numChunks, process)
	}

	var (
		next       atomic.Int64
		failed     atomic.Bool
		errs       = make([]error, numChunks)
		workerErrs = make([]error, workers)
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					err := NewPanicError("chunk worker", r)
					if cur >= 0 {
						errs[cur] = err
					} else {
						workerErrs[w] = err
					}
					failed.Store(true)
				}
			}()
			if err := failpoint.Inject(failpoint.ChunkWorkerStart); err != nil {
				workerErrs[w] = err
				failed.Store(true)
				return
			}
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks || failed.Load() {
					return
				}
				cur = c
				lo, hi := c*chunkSize, (c+1)*chunkSize
				if hi > items {
					hi = items
				}
				if err := process(w, c, lo, hi); err != nil {
					errs[c] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, err := range workerErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChunkedSerial is the workers<=1 path, with the same panic conversion as
// the parallel path so callers see one error taxonomy.
func runChunkedSerial(items, chunkSize, numChunks int, process func(worker, chunk, lo, hi int) error) (err error) {
	defer CapturePanic("chunk worker", &err)
	if ferr := failpoint.Inject(failpoint.ChunkWorkerStart); ferr != nil {
		return ferr
	}
	for c := 0; c < numChunks; c++ {
		lo, hi := c*chunkSize, (c+1)*chunkSize
		if hi > items {
			hi = items
		}
		if err := process(0, c, lo, hi); err != nil {
			return err
		}
	}
	return nil
}
