package engine

import (
	"testing"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/testleak"
	"smarticeberg/internal/value"
)

// parallelTestCatalog builds a Fact/Dim catalog large enough that the
// ParallelJoinAgg outer feed spans multiple batches, so worker scheduling
// genuinely interleaves. Row values come from a fixed LCG, keeping the data
// identical across runs.
func parallelTestCatalog(tb testing.TB) *storage.Catalog {
	tb.Helper()
	seed := uint64(42)
	next := func(n uint64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int64((seed >> 33) % n)
	}
	fact := storage.NewTable("Fact", []value.Column{
		{Name: "k", Type: value.Int},
		{Name: "v", Type: value.Int},
	}, nil)
	for i := 0; i < 5000; i++ {
		fact.Rows = append(fact.Rows, value.Row{value.NewInt(int64(i % 97)), value.NewInt(next(50))})
	}
	dim := storage.NewTable("Dim", []value.Column{
		{Name: "k", Type: value.Int},
		{Name: "w", Type: value.Int},
	}, nil)
	for i := 0; i < 300; i++ {
		dim.Rows = append(dim.Rows, value.Row{value.NewInt(int64(i % 97)), value.NewInt(next(50))})
	}
	cat := storage.NewCatalog()
	cat.Put(fact)
	cat.Put(dim)
	return cat
}

func planParallelJoinAgg(tb testing.TB, cat *storage.Catalog, workers int) Operator {
	tb.Helper()
	sql := `
		SELECT f.k, COUNT(*), SUM(d.w)
		FROM Fact f, Dim d
		WHERE f.k = d.k AND f.v <= d.w
		GROUP BY f.k
		HAVING COUNT(*) >= 1`
	stmt, err := sqlparser.ParseSelect(sql)
	if err != nil {
		tb.Fatal(err)
	}
	p := NewPlanner(cat)
	p.Parallel = workers > 0
	p.Workers = workers
	op, err := p.PlanSelect(stmt, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return op
}

func hasParallelJoinAgg(op Operator) bool {
	if _, ok := op.(*ParallelJoinAgg); ok {
		return true
	}
	for _, c := range op.Children() {
		if hasParallelJoinAgg(c) {
			return true
		}
	}
	return false
}

// TestParallelJoinAggDeterministic checks that the Vendor A executor is a
// pure optimization: the same query produces the same multiset of rows with
// one worker, with four workers, and across repeated four-worker runs. Under
// -race this also drives the worker pool hard enough to surface unsound
// sharing between the feeder and the workers.
func TestParallelJoinAggDeterministic(t *testing.T) {
	testleak.Check(t)
	cat := parallelTestCatalog(t)

	serial, err := Run(planParallelJoinAgg(t, cat, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("query produced no rows; the test data is broken")
	}
	want := rowsToStrings(serial)

	for _, workers := range []int{1, 4} {
		op := planParallelJoinAgg(t, cat, workers)
		if !hasParallelJoinAgg(op) {
			t.Fatalf("workers=%d: plan does not use ParallelJoinAgg:\n%s", workers, Explain(op))
		}
		// Repeat to give the scheduler chances to interleave differently.
		for run := 0; run < 3; run++ {
			rows, err := Run(op)
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, run, err)
			}
			got := rowsToStrings(rows)
			if len(got) != len(want) {
				t.Fatalf("workers=%d run %d: got %d rows, want %d", workers, run, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d run %d: row %d = %q, want %q", workers, run, i, got[i], want[i])
				}
			}
		}
	}
}
