package engine

import (
	"context"
	"fmt"
	"strings"

	"smarticeberg/internal/expr"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
)

// Result is a fully evaluated query result.
type Result struct {
	Columns value.Schema
	Rows    []value.Row
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	header := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for j, s := range vals {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(s)
			b.WriteString(strings.Repeat(" ", widths[j]-len(s)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for j := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	b.WriteString(fmt.Sprintf("(%d rows)\n", len(r.Rows)))
	return b.String()
}

// ExecStatement executes a parsed statement against the catalog. DDL/DML
// statements return a nil result.
func ExecStatement(cat *storage.Catalog, stmt sqlparser.Statement) (*Result, error) {
	return ExecStatementExec(nil, cat, stmt)
}

// ExecStatementCtx is ExecStatement with cancellation/deadline support for
// the query's whole lifetime, including nested materializations.
func ExecStatementCtx(ctx context.Context, cat *storage.Catalog, stmt sqlparser.Statement) (*Result, error) {
	return ExecStatementExec(NewExecContext(ctx, nil), cat, stmt)
}

// ExecStatementExec executes a parsed statement under an execution context
// (nil = background, unlimited budget).
func ExecStatementExec(ec *ExecContext, cat *storage.Catalog, stmt sqlparser.Statement) (*Result, error) {
	switch stmt := stmt.(type) {
	case *sqlparser.CreateTable:
		cols := make([]value.Column, len(stmt.Columns))
		for i, c := range stmt.Columns {
			cols[i] = value.Column{Name: c.Name, Type: c.Type}
		}
		cat.Put(storage.NewTable(stmt.Name, cols, stmt.PrimaryKey))
		return nil, nil
	case *sqlparser.Insert:
		return nil, execInsert(cat, stmt)
	case *sqlparser.Select:
		p := NewPlanner(cat)
		p.Exec = ec
		op, err := p.PlanSelect(stmt, nil)
		if err != nil {
			return nil, err
		}
		rows, err := RunExec(ec, op)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: op.Schema(), Rows: rows}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", stmt)
}

func execInsert(cat *storage.Catalog, ins *sqlparser.Insert) error {
	t, err := cat.Get(ins.Table)
	if err != nil {
		return err
	}
	colIdx := make([]int, 0, len(ins.Columns))
	if len(ins.Columns) == 0 {
		for i := range t.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range ins.Columns {
			i, err := t.ColumnIndex(c)
			if err != nil {
				return err
			}
			colIdx = append(colIdx, i)
		}
	}
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(colIdx) {
			return fmt.Errorf("INSERT row has %d values, want %d", len(exprRow), len(colIdx))
		}
		row := make(value.Row, len(t.Schema))
		for i, e := range exprRow {
			c, err := expr.Compile(e, nil, nil)
			if err != nil {
				return err
			}
			v, err := c(nil)
			if err != nil {
				return err
			}
			row[colIdx[i]] = coerce(v, t.Schema[colIdx[i]].Type)
		}
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// coerce converts literal values to the declared column type when loss-free.
func coerce(v value.Value, k value.Kind) value.Value {
	switch {
	case v.IsNull():
		return v
	case k == value.Float && v.K == value.Int:
		return value.NewFloat(float64(v.I))
	case k == value.Int && v.K == value.Float && v.F == float64(int64(v.F)):
		return value.NewInt(int64(v.F))
	}
	return v
}

// Exec parses and executes a SQL string.
func Exec(cat *storage.Catalog, sql string) (*Result, error) {
	return ExecCtx(context.Background(), cat, sql)
}

// ExecCtx parses and executes a SQL string under ctx; cancellation and
// deadlines are observed mid-stream.
func ExecCtx(ctx context.Context, cat *storage.Catalog, sql string) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return ExecStatementCtx(ctx, cat, stmt)
}
