package engine

import (
	"fmt"
	"sort"

	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/value"
)

// SplitConjuncts flattens nested ANDs into a list of conjuncts.
func SplitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinOp); ok && b.Op == sqlparser.OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// AndAll combines conjuncts back into a single expression (nil when empty).
func AndAll(conjuncts []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &sqlparser.BinOp{Op: sqlparser.OpAnd, L: out, R: c}
		}
	}
	return out
}

// QualifyExpr returns a copy of e with every column reference fully
// qualified against schema. References inside IN-subquery bodies are left
// alone (they resolve in their own scope).
func QualifyExpr(e sqlparser.Expr, schema value.Schema) (sqlparser.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sqlparser.Lit:
		return e, nil
	case *sqlparser.ColRef:
		if e.Qualifier != "" {
			if _, err := schema.Resolve(e.Qualifier, e.Name); err != nil {
				return nil, err
			}
			return e, nil
		}
		i, err := schema.Resolve("", e.Name)
		if err != nil {
			return nil, err
		}
		return &sqlparser.ColRef{Qualifier: schema[i].Qualifier, Name: schema[i].Name}, nil
	case *sqlparser.BinOp:
		l, err := QualifyExpr(e.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := QualifyExpr(e.R, schema)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinOp{Op: e.Op, L: l, R: r}, nil
	case *sqlparser.UnOp:
		inner, err := QualifyExpr(e.E, schema)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnOp{Op: e.Op, E: inner}, nil
	case *sqlparser.IsNull:
		inner, err := QualifyExpr(e.E, schema)
		if err != nil {
			return nil, err
		}
		return &sqlparser.IsNull{E: inner, Negated: e.Negated}, nil
	case *sqlparser.FuncCall:
		out := &sqlparser.FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			qa, err := QualifyExpr(a, schema)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, qa)
		}
		return out, nil
	case *sqlparser.InSubquery:
		out := &sqlparser.InSubquery{Query: e.Query, Negated: e.Negated}
		for _, x := range e.Exprs {
			qx, err := QualifyExpr(x, schema)
			if err != nil {
				return nil, err
			}
			out.Exprs = append(out.Exprs, qx)
		}
		return out, nil
	case *sqlparser.ScalarSubquery:
		return e, nil // resolves in its own scope
	case *sqlparser.CaseWhen:
		out := &sqlparser.CaseWhen{}
		for _, w := range e.Whens {
			qc, err := QualifyExpr(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			qt, err := QualifyExpr(w.Then, schema)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sqlparser.WhenClause{Cond: qc, Then: qt})
		}
		if e.Else != nil {
			qe, err := QualifyExpr(e.Else, schema)
			if err != nil {
				return nil, err
			}
			out.Else = qe
		}
		return out, nil
	}
	return nil, fmt.Errorf("QualifyExpr: unsupported expression %T", e)
}

// ExprAliases returns the sorted set of table aliases (column qualifiers)
// referenced by e. e must already be fully qualified.
func ExprAliases(e sqlparser.Expr) []string {
	set := map[string]bool{}
	collectAliases(e, set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func collectAliases(e sqlparser.Expr, set map[string]bool) {
	switch e := e.(type) {
	case *sqlparser.ColRef:
		set[e.Qualifier] = true
	case *sqlparser.BinOp:
		collectAliases(e.L, set)
		collectAliases(e.R, set)
	case *sqlparser.UnOp:
		collectAliases(e.E, set)
	case *sqlparser.IsNull:
		collectAliases(e.E, set)
	case *sqlparser.FuncCall:
		for _, a := range e.Args {
			collectAliases(a, set)
		}
	case *sqlparser.InSubquery:
		for _, x := range e.Exprs {
			collectAliases(x, set)
		}
	case *sqlparser.CaseWhen:
		for _, w := range e.Whens {
			collectAliases(w.Cond, set)
			collectAliases(w.Then, set)
		}
		if e.Else != nil {
			collectAliases(e.Else, set)
		}
	}
}

// ColumnsOf returns all fully-qualified column references in e, deduplicated
// and in first-appearance order.
func ColumnsOf(e sqlparser.Expr) []*sqlparser.ColRef {
	var out []*sqlparser.ColRef
	seen := map[string]bool{}
	var walk func(sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		switch e := e.(type) {
		case *sqlparser.ColRef:
			key := e.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, e)
			}
		case *sqlparser.BinOp:
			walk(e.L)
			walk(e.R)
		case *sqlparser.UnOp:
			walk(e.E)
		case *sqlparser.IsNull:
			walk(e.E)
		case *sqlparser.FuncCall:
			for _, a := range e.Args {
				walk(a)
			}
		case *sqlparser.InSubquery:
			for _, x := range e.Exprs {
				walk(x)
			}
		case *sqlparser.CaseWhen:
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if e.Else != nil {
				walk(e.Else)
			}
		}
	}
	walk(e)
	return out
}

// CollectAggregates returns the distinct aggregate calls appearing in e, in
// first-appearance order (deduplicated by printed form).
func CollectAggregates(e sqlparser.Expr, seen map[string]*sqlparser.FuncCall, order *[]*sqlparser.FuncCall) {
	switch e := e.(type) {
	case nil:
	case *sqlparser.FuncCall:
		if IsAggregateCall(e) {
			key := e.String()
			if _, ok := seen[key]; !ok {
				seen[key] = e
				*order = append(*order, e)
			}
			return // no nested aggregates
		}
		for _, a := range e.Args {
			CollectAggregates(a, seen, order)
		}
	case *sqlparser.BinOp:
		CollectAggregates(e.L, seen, order)
		CollectAggregates(e.R, seen, order)
	case *sqlparser.UnOp:
		CollectAggregates(e.E, seen, order)
	case *sqlparser.IsNull:
		CollectAggregates(e.E, seen, order)
	case *sqlparser.CaseWhen:
		for _, w := range e.Whens {
			CollectAggregates(w.Cond, seen, order)
			CollectAggregates(w.Then, seen, order)
		}
		CollectAggregates(e.Else, seen, order)
	}
}

// IsAggregateCall reports whether e is an aggregate function call.
func IsAggregateCall(e sqlparser.Expr) bool {
	f, ok := e.(*sqlparser.FuncCall)
	if !ok {
		return false
	}
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// HasAggregate reports whether e contains an aggregate call.
func HasAggregate(e sqlparser.Expr) bool {
	seen := map[string]*sqlparser.FuncCall{}
	var order []*sqlparser.FuncCall
	CollectAggregates(e, seen, &order)
	return len(order) > 0
}

// ReplaceExprs returns a copy of e in which any subexpression whose printed
// form appears in repl is substituted. It is used to rewrite aggregate calls
// and grouping expressions into references to aggregate-output columns.
func ReplaceExprs(e sqlparser.Expr, repl map[string]sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	if r, ok := repl[e.String()]; ok {
		return r
	}
	switch e := e.(type) {
	case *sqlparser.BinOp:
		return &sqlparser.BinOp{Op: e.Op, L: ReplaceExprs(e.L, repl), R: ReplaceExprs(e.R, repl)}
	case *sqlparser.UnOp:
		return &sqlparser.UnOp{Op: e.Op, E: ReplaceExprs(e.E, repl)}
	case *sqlparser.IsNull:
		return &sqlparser.IsNull{E: ReplaceExprs(e.E, repl), Negated: e.Negated}
	case *sqlparser.FuncCall:
		out := &sqlparser.FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, ReplaceExprs(a, repl))
		}
		return out
	case *sqlparser.InSubquery:
		out := &sqlparser.InSubquery{Query: e.Query, Negated: e.Negated}
		for _, x := range e.Exprs {
			out.Exprs = append(out.Exprs, ReplaceExprs(x, repl))
		}
		return out
	case *sqlparser.CaseWhen:
		out := &sqlparser.CaseWhen{}
		for _, w := range e.Whens {
			out.Whens = append(out.Whens, sqlparser.WhenClause{
				Cond: ReplaceExprs(w.Cond, repl),
				Then: ReplaceExprs(w.Then, repl),
			})
		}
		if e.Else != nil {
			out.Else = ReplaceExprs(e.Else, repl)
		}
		return out
	}
	return e
}
