package engine

import (
	"context"
	"sync"

	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
)

// ExecContext carries one query's cross-cutting execution state: the
// caller's context (cancellation, deadlines), the memory budget, the
// optional spill manager that lets operators overflow to disk instead of
// failing the budget, and the record of degradations the query suffered. It
// is attached to every operator of a plan by Bind (RunExec does this
// automatically) and shared by all goroutines the plan spawns.
type ExecContext struct {
	ctx    context.Context
	budget *resource.Budget
	spill  *spill.Manager

	mu       sync.Mutex
	degraded []DegradeReason
}

// NewExecContext builds an execution context; ctx nil means Background and
// budget nil means unlimited.
func NewExecContext(ctx context.Context, budget *resource.Budget) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx, budget: budget}
}

// backgroundExec is what unbound operators and plain Run use: no deadline,
// no budget.
var backgroundExec = &ExecContext{ctx: context.Background()}

// Context returns the carried context (never nil).
func (ec *ExecContext) Context() context.Context {
	if ec == nil {
		return context.Background()
	}
	return ec.ctx
}

// Err reports the context's cancellation state. Nil-safe.
func (ec *ExecContext) Err() error {
	if ec == nil {
		return nil
	}
	return ec.ctx.Err()
}

// Budget returns the carried budget (nil = unlimited). Nil-safe.
func (ec *ExecContext) Budget() *resource.Budget {
	if ec == nil {
		return nil
	}
	return ec.budget
}

// Charge reserves n bytes against the budget, returning a typed
// resource.ErrBudgetExceeded failure when it does not fit. Nil-safe.
func (ec *ExecContext) Charge(site string, n int64) error {
	if ec == nil {
		return nil
	}
	return ec.budget.Reserve(site, n)
}

// Release returns n bytes to the budget. Nil-safe.
func (ec *ExecContext) Release(n int64) {
	if ec != nil {
		ec.budget.Release(n)
	}
}

// SetSpill attaches a query-scoped spill manager; operators that support
// disk overflow consult it when a Charge fails. Nil (the default) disables
// spilling, restoring PR 3's shed → baseline → error ladder.
func (ec *ExecContext) SetSpill(m *spill.Manager) {
	if ec != nil {
		ec.spill = m
	}
}

// Spill returns the attached spill manager (nil = spilling disabled).
// Nil-safe.
func (ec *ExecContext) Spill() *spill.Manager {
	if ec == nil {
		return nil
	}
	return ec.spill
}

// Degrade records that the query left the fast path for the given reason.
// Reasons are deduplicated; recording is safe from concurrent workers and on
// a nil receiver.
func (ec *ExecContext) Degrade(r DegradeReason) {
	if ec == nil {
		return
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for _, have := range ec.degraded {
		if have == r {
			return
		}
	}
	ec.degraded = append(ec.degraded, r)
}

// Degradations returns the recorded reasons in ladder order (cache-shed →
// spill → baseline-fallback), or nil when the query ran clean. Nil-safe.
func (ec *ExecContext) Degradations() []DegradeReason {
	if ec == nil {
		return nil
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if len(ec.degraded) == 0 {
		return nil
	}
	out := make([]DegradeReason, len(ec.degraded))
	copy(out, ec.degraded)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ExecAware is implemented by operators that consume the execution context;
// Bind walks a plan and attaches it.
type ExecAware interface {
	BindExec(*ExecContext)
}

// Bind attaches an execution context to every operator of a plan tree.
// Binding nil is a no-op; rebinding an already-bound tree with the same
// context is harmless (nested materializations do it).
func Bind(op Operator, ec *ExecContext) {
	if op == nil || ec == nil {
		return
	}
	if a, ok := op.(ExecAware); ok {
		a.BindExec(ec)
	}
	for _, c := range op.Children() {
		Bind(c, ec)
	}
}

// cancelCheckEvery is how many Next steps an operator may take between
// context checks; deadlines and cancellation are therefore observed within
// this many rows at every level of the plan.
const cancelCheckEvery = 64

// execState is the embeddable per-operator slice of the resilience layer:
// the bound ExecContext plus a tick counter that rate-limits context checks
// to one every cancelCheckEvery rows. The zero value (unbound) never fails.
type execState struct {
	ec   *ExecContext
	tick uint32
}

// BindExec implements ExecAware for every operator embedding execState.
func (s *execState) BindExec(ec *ExecContext) { s.ec = ec }

// exec returns the bound context for nested RunExec calls (may be nil;
// RunExec substitutes the background context).
func (s *execState) exec() *ExecContext { return s.ec }

// step performs the rate-limited cancellation check; Next loops call it once
// per row.
func (s *execState) step() error {
	if s.ec == nil {
		return nil
	}
	s.tick++
	if s.tick%cancelCheckEvery != 0 {
		return nil
	}
	return s.ec.Err()
}

// stepChunk is the batch-path counterpart of step: one unconditional context
// poll per NextBatch call. A chunk bounds the rows processed between checks,
// so cancellation latency stays within one batch instead of cancelCheckEvery
// rows — the per-chunk granularity the vectorized path trades for throughput.
func (s *execState) stepChunk() error {
	if s.ec == nil {
		return nil
	}
	return s.ec.Err()
}
