// Package fd implements functional-dependency reasoning: attribute closure,
// superkey tests, and inference of dependencies that hold in a join result
// from base-table dependencies plus equality join predicates. The iceberg
// optimizer uses it for the schema-based safety checks of Theorem 2 and the
// multiway-join reasoning of Appendix D (Example 13) of the paper.
package fd

import (
	"sort"
	"strings"
)

// FD is one functional dependency From → To over attribute names.
// Attribute names are opaque strings; the engine uses "alias.column".
type FD struct {
	From []string
	To   []string
}

// String renders the dependency.
func (f FD) String() string {
	return strings.Join(f.From, ",") + " -> " + strings.Join(f.To, ",")
}

// Set is a collection of functional dependencies.
type Set struct {
	fds []FD
}

// NewSet returns a set holding the given dependencies.
func NewSet(fds ...FD) *Set {
	s := &Set{}
	for _, f := range fds {
		s.Add(f)
	}
	return s
}

// Add inserts a dependency.
func (s *Set) Add(f FD) {
	s.fds = append(s.fds, FD{From: append([]string(nil), f.From...), To: append([]string(nil), f.To...)})
}

// AddEquiv inserts a ↔ b (both directions), the dependency contributed by an
// equality predicate a = b.
func (s *Set) AddEquiv(a, b string) {
	s.Add(FD{From: []string{a}, To: []string{b}})
	s.Add(FD{From: []string{b}, To: []string{a}})
}

// AddConstant records that attribute a is constant (∅ → a), contributed by a
// predicate a = literal.
func (s *Set) AddConstant(a string) {
	s.Add(FD{From: nil, To: []string{a}})
}

// All returns the dependencies in the set.
func (s *Set) All() []FD {
	if s == nil {
		return nil
	}
	return s.fds
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := &Set{}
	if s != nil {
		for _, f := range s.fds {
			out.Add(f)
		}
	}
	return out
}

// Merge adds every dependency of other into s.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for _, f := range other.fds {
		s.Add(f)
	}
}

// Rename returns a copy of the set with every attribute passed through f.
// It is used to instantiate base-table FDs for an aliased occurrence of the
// table (self-joins produce several instances of the same FD set).
func (s *Set) Rename(f func(string) string) *Set {
	out := &Set{}
	if s == nil {
		return out
	}
	for _, d := range s.fds {
		nd := FD{}
		for _, a := range d.From {
			nd.From = append(nd.From, f(a))
		}
		for _, a := range d.To {
			nd.To = append(nd.To, f(a))
		}
		out.fds = append(out.fds, nd)
	}
	return out
}

// Closure computes the attribute closure of attrs under the set, using the
// standard fixed-point algorithm.
func (s *Set) Closure(attrs []string) map[string]bool {
	closure := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		closure[a] = true
	}
	if s == nil {
		return closure
	}
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if !allIn(f.From, closure) {
				continue
			}
			for _, a := range f.To {
				if !closure[a] {
					closure[a] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// Implies reports whether from → to follows from the set.
func (s *Set) Implies(from, to []string) bool {
	closure := s.Closure(from)
	return allIn(to, closure)
}

// IsSuperkey reports whether attrs functionally determine all of rel's
// attributes.
func (s *Set) IsSuperkey(attrs, rel []string) bool {
	return s.Implies(attrs, rel)
}

func allIn(attrs []string, set map[string]bool) bool {
	for _, a := range attrs {
		if !set[a] {
			return false
		}
	}
	return true
}

// SortedClosure returns the closure as a sorted slice, convenient for tests
// and debug output.
func (s *Set) SortedClosure(attrs []string) []string {
	m := s.Closure(attrs)
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
