package fd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClosureTextbook(t *testing.T) {
	// Classic example: R(A,B,C,D,E) with A→B, B→C, CD→E.
	s := NewSet(
		FD{From: []string{"A"}, To: []string{"B"}},
		FD{From: []string{"B"}, To: []string{"C"}},
		FD{From: []string{"C", "D"}, To: []string{"E"}},
	)
	got := s.SortedClosure([]string{"A"})
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("closure(A) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure(A) = %v, want %v", got, want)
		}
	}
	if !s.Implies([]string{"A", "D"}, []string{"E"}) {
		t.Error("AD → E should follow")
	}
	if s.Implies([]string{"A"}, []string{"E"}) {
		t.Error("A → E should not follow")
	}
	if !s.IsSuperkey([]string{"A", "D"}, []string{"A", "B", "C", "D", "E"}) {
		t.Error("AD should be a superkey")
	}
	if s.IsSuperkey([]string{"B", "D"}, []string{"A", "B", "C", "D", "E"}) {
		t.Error("BD is not a superkey (A not derivable)")
	}
}

func TestEquivAndConstant(t *testing.T) {
	s := NewSet()
	s.AddEquiv("l.x", "r.x")
	s.AddConstant("l.c")
	if !s.Implies([]string{"r.x"}, []string{"l.x"}) || !s.Implies([]string{"l.x"}, []string{"r.x"}) {
		t.Error("equivalence must work both ways")
	}
	if !s.Implies(nil, []string{"l.c"}) {
		t.Error("constants follow from the empty set")
	}
}

func TestRenameAndMerge(t *testing.T) {
	s := NewSet(FD{From: []string{"id"}, To: []string{"name", "age"}})
	r := s.Rename(func(a string) string { return "t1." + a })
	if !r.Implies([]string{"t1.id"}, []string{"t1.age"}) {
		t.Error("renamed FD lost")
	}
	if r.Implies([]string{"id"}, []string{"age"}) {
		t.Error("original attribute names must be gone after rename")
	}
	m := NewSet()
	m.Merge(r)
	m.Merge(s)
	if !m.Implies([]string{"t1.id"}, []string{"t1.name"}) || !m.Implies([]string{"id"}, []string{"name"}) {
		t.Error("merge lost dependencies")
	}
}

func TestNilSetSafe(t *testing.T) {
	var s *Set
	if s.Implies([]string{"a"}, []string{"b"}) {
		t.Error("nil set implies nothing")
	}
	if !s.Implies([]string{"a"}, []string{"a"}) {
		t.Error("reflexivity must hold on nil set")
	}
	if s.All() != nil {
		t.Error("nil set has no FDs")
	}
	if s.Clone() == nil {
		t.Error("clone of nil should be usable")
	}
}

// TestClosureProperties checks closure laws on random FD sets with
// testing/quick: monotonicity (bigger seed, bigger closure), idempotence,
// and soundness of Implies against a brute-force model over random
// instances is covered indirectly by extensivity + transitivity here.
func TestClosureProperties(t *testing.T) {
	attrs := []string{"a", "b", "c", "d", "e"}
	build := func(seed int64) *Set {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		for i := 0; i < rng.Intn(6); i++ {
			var from, to []string
			for _, a := range attrs {
				if rng.Intn(3) == 0 {
					from = append(from, a)
				}
				if rng.Intn(3) == 0 {
					to = append(to, a)
				}
			}
			s.Add(FD{From: from, To: to})
		}
		return s
	}
	err := quick.Check(func(seed int64, pick uint8) bool {
		s := build(seed)
		var x []string
		for i, a := range attrs {
			if pick&(1<<i) != 0 {
				x = append(x, a)
			}
		}
		cl := s.Closure(x)
		// Extensive: X ⊆ closure(X).
		for _, a := range x {
			if !cl[a] {
				return false
			}
		}
		// Idempotent: closure(closure(X)) = closure(X).
		var clAttrs []string
		for a := range cl {
			clAttrs = append(clAttrs, a)
		}
		cl2 := s.Closure(clAttrs)
		if len(cl2) != len(cl) {
			return false
		}
		// Monotone: adding an attribute never shrinks the closure.
		bigger := s.Closure(append(append([]string{}, x...), "e"))
		for a := range cl {
			if !bigger[a] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}
