// Package storage provides the in-memory relational storage layer: heap
// tables with declared constraints (primary key, functional dependencies,
// positive-domain columns), a catalog, and secondary sorted indexes that
// stand in for the B-tree indexes the paper's experiments configure (the
// "PK", "BT", and "CI" configurations of Figure 4).
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"smarticeberg/internal/fd"
	"smarticeberg/internal/value"
)

// Table is an in-memory heap of rows plus declared metadata.
type Table struct {
	Name   string
	Schema value.Schema // qualifiers are the table name
	Rows   []value.Row

	// PrimaryKey lists the key columns (may be empty).
	PrimaryKey []string
	// FDs holds the declared functional dependencies over bare column
	// names (the primary key's FD is added automatically).
	FDs *fd.Set
	// Positive marks columns whose domain is known to be strictly
	// positive reals; Table 2's SUM rows require this for monotonicity.
	Positive map[string]bool

	indexes []*Index

	// cols caches the column-major form of Rows for the engine's columnar
	// scan path; Insert invalidates it like the indexes. zones caches the
	// per-block min/max summaries over cols and is rebuilt whenever cols is.
	cols      *value.Columns
	zones     *value.ZoneMaps
	colsStale bool
	colsMu    sync.Mutex
}

// NewTable creates an empty table. cols use bare names; the schema qualifier
// is set to the table name.
func NewTable(name string, cols []value.Column, primaryKey []string) *Table {
	schema := make(value.Schema, len(cols))
	for i, c := range cols {
		schema[i] = value.Column{Qualifier: name, Name: c.Name, Type: c.Type}
	}
	t := &Table{
		Name:       name,
		Schema:     schema,
		PrimaryKey: append([]string(nil), primaryKey...),
		FDs:        fd.NewSet(),
		Positive:   make(map[string]bool),
	}
	if len(primaryKey) > 0 {
		all := make([]string, len(cols))
		for i, c := range cols {
			all[i] = c.Name
		}
		t.FDs.Add(fd.FD{From: primaryKey, To: all})
	}
	return t
}

// ColumnNames returns the bare column names in schema order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		out[i] = c.Name
	}
	return out
}

// ColumnIndex returns the position of the named column, or an error.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.Schema {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("table %s has no column %q", t.Name, name)
}

// Insert appends a row after checking arity. Indexes are invalidated; call
// BuildIndexes (or CreateIndex again) after bulk loading.
func (t *Table) Insert(row value.Row) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(row), len(t.Schema))
	}
	t.Rows = append(t.Rows, row)
	for _, idx := range t.indexes {
		idx.stale = true
	}
	t.colsMu.Lock()
	t.colsStale = true
	t.colsMu.Unlock()
	return nil
}

// Columns returns the column-major form of the table's rows (typed vectors,
// dictionary-encoded strings, null bitmaps), building it on first use and
// rebuilding after inserts. Every cell round-trips exactly (value.ColumnsOf),
// so executing over the columns is byte-identical to executing over Rows.
// The returned Columns is shared and read-only; it stays valid even if the
// table grows afterwards (it snapshots the rows it was built from).
func (t *Table) Columns() *value.Columns {
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if t.cols == nil || t.colsStale {
		t.cols = value.ColumnsOf(len(t.Schema), t.Rows)
		t.zones = nil
		t.colsStale = false
	}
	return t.cols
}

// Zones returns zone maps (per-block min/max/null-count summaries) over the
// same column snapshot Columns returns, building them on first use and
// rebuilding alongside the columns after inserts. Like Columns, the result is
// shared, read-only, and stays consistent with the snapshot it was built from
// (zones.Len() matches the snapshot's row count, which the scan layer checks
// before pruning).
func (t *Table) Zones() *value.ZoneMaps {
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if t.cols == nil || t.colsStale {
		t.cols = value.ColumnsOf(len(t.Schema), t.Rows)
		t.zones = nil
		t.colsStale = false
	}
	if t.zones == nil {
		t.zones = value.BuildZoneMaps(t.cols, value.ZoneBlockSize)
	}
	return t.zones
}

// InsertAll appends rows in bulk.
func (t *Table) InsertAll(rows []value.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Index is a secondary sorted index over one or more columns. It stores a
// permutation of row positions ordered by the key columns, supporting the
// range scans an index nested-loop join needs. It is the stand-in for the
// paper's secondary B-tree indexes ("BT" in Figure 4).
type Index struct {
	Name    string
	Columns []string
	colIdx  []int
	perm    []int32
	table   *Table
	stale   bool
}

// CreateIndex builds (or rebuilds) a sorted index over the given columns.
func (t *Table) CreateIndex(name string, columns ...string) (*Index, error) {
	colIdx := make([]int, len(columns))
	for i, c := range columns {
		j, err := t.ColumnIndex(c)
		if err != nil {
			return nil, err
		}
		colIdx[i] = j
	}
	idx := &Index{Name: name, Columns: append([]string(nil), columns...), colIdx: colIdx, table: t, stale: true}
	idx.build()
	t.indexes = append(t.indexes, idx)
	return idx, nil
}

// Indexes returns the table's secondary indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// DropIndexes removes all secondary indexes (used by the index-configuration
// experiments).
func (t *Table) DropIndexes() { t.indexes = nil }

// FindIndex returns an index whose leading column is col, if any.
func (t *Table) FindIndex(col string) *Index {
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Columns[0], col) {
			return idx
		}
	}
	return nil
}

func (i *Index) build() {
	rows := i.table.Rows
	i.perm = make([]int32, len(rows))
	for j := range i.perm {
		i.perm[j] = int32(j)
	}
	sort.Slice(i.perm, func(a, b int) bool {
		ra, rb := rows[i.perm[a]], rows[i.perm[b]]
		for _, c := range i.colIdx {
			cmp, _ := value.Compare(ra[c], rb[c])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return i.perm[a] < i.perm[b]
	})
	i.stale = false
}

// Refresh rebuilds the index if rows were inserted since the last build.
func (i *Index) Refresh() {
	if i.stale {
		i.build()
	}
}

// leadCol returns the payload of the leading key column for permutation
// position p.
func (i *Index) leadVal(p int) value.Value {
	return i.table.Rows[i.perm[p]][i.colIdx[0]]
}

// RangeScan returns the row positions whose leading key column v satisfies
// lo ⋈ v ⋈ hi. Nil bounds are unbounded; loStrict/hiStrict select < vs <=.
// The returned slice aliases the index and must not be modified.
func (i *Index) RangeScan(lo *value.Value, loStrict bool, hi *value.Value, hiStrict bool) []int32 {
	i.Refresh()
	n := len(i.perm)
	start := 0
	if lo != nil {
		start = sort.Search(n, func(p int) bool {
			cmp, _ := value.Compare(i.leadVal(p), *lo)
			if loStrict {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	end := n
	if hi != nil {
		end = sort.Search(n, func(p int) bool {
			cmp, _ := value.Compare(i.leadVal(p), *hi)
			if hiStrict {
				return cmp >= 0
			}
			return cmp > 0
		})
	}
	if start > end {
		return nil
	}
	return i.perm[start:end]
}

// Catalog maps table names to tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Put registers a table, replacing any previous table of the same name.
func (c *Catalog) Put(t *Table) { c.tables[strings.ToLower(t.Name)] = t }

// Get looks up a table by name.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("table %q not found", name)
	}
	return t, nil
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
