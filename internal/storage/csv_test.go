package storage

import (
	"bytes"
	"strings"
	"testing"

	"smarticeberg/internal/fd"
	"smarticeberg/internal/value"
)

func csvTable() *Table {
	return NewTable("t", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "name", Type: value.Str},
		{Name: "score", Type: value.Float},
		{Name: "ok", Type: value.Bool},
	}, []string{"id"})
}

func TestLoadCSVWithHeader(t *testing.T) {
	tab := csvTable()
	in := "score,id,name,ok\n1.5,1,alice,true\n,2,bob,false\n"
	n, err := tab.LoadCSV(strings.NewReader(in), true)
	if err != nil || n != 2 {
		t.Fatalf("loaded %d, err %v", n, err)
	}
	if tab.Rows[0][0].I != 1 || tab.Rows[0][1].S != "alice" || tab.Rows[0][2].F != 1.5 || !tab.Rows[0][3].Bool() {
		t.Errorf("row 0 wrong: %v", tab.Rows[0])
	}
	if !tab.Rows[1][2].IsNull() {
		t.Errorf("empty field must load as NULL: %v", tab.Rows[1])
	}
}

func TestLoadCSVPositional(t *testing.T) {
	tab := csvTable()
	n, err := tab.LoadCSV(strings.NewReader("3,carol,2.25,false\n"), false)
	if err != nil || n != 1 {
		t.Fatalf("loaded %d, err %v", n, err)
	}
	if tab.Rows[0][1].S != "carol" {
		t.Errorf("row wrong: %v", tab.Rows[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tab := csvTable()
	if _, err := tab.LoadCSV(strings.NewReader("id,wat,score,ok\n"), true); err == nil {
		t.Error("unknown header column must fail")
	}
	tab = csvTable()
	if _, err := tab.LoadCSV(strings.NewReader("1,alice\n"), false); err == nil {
		t.Error("short record must fail")
	}
	tab = csvTable()
	if _, err := tab.LoadCSV(strings.NewReader("x,alice,1.5,true\n"), false); err == nil {
		t.Error("non-integer id must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := csvTable()
	in := "id,name,score,ok\n1,alice,1.5,true\n2,bob,,false\n"
	if _, err := tab.LoadCSV(strings.NewReader(in), true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tab2 := csvTable()
	n, err := tab2.LoadCSV(&buf, true)
	if err != nil || n != 2 {
		t.Fatalf("round trip loaded %d, err %v", n, err)
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if !value.Identical(tab.Rows[i][j], tab2.Rows[i][j]) {
				t.Errorf("row %d col %d: %v vs %v", i, j, tab.Rows[i][j], tab2.Rows[i][j])
			}
		}
	}
}

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := NewCatalog()
	tab := NewTable("players", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "name", Type: value.Str},
		{Name: "avg", Type: value.Float},
		{Name: "active", Type: value.Bool},
	}, []string{"id"})
	tab.Positive["avg"] = true
	tab.FDs.Add(fd.FD{From: []string{"name"}, To: []string{"avg"}})
	tab.Rows = append(tab.Rows,
		value.Row{value.NewInt(1), value.NewStr("ann"), value.NewFloat(0.31), value.NewBool(true)},
		value.Row{value.NewInt(2), value.NewStr("bob"), value.NewFloat(0.27), value.NewBool(false)},
		value.Row{value.NewInt(3), value.NewStr("cay"), value.NullValue, value.NewBool(true)},
	)
	if _, err := tab.CreateIndex("avg_idx", "avg"); err != nil {
		t.Fatal(err)
	}
	cat.Put(tab)

	if err := cat.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := loaded.Get("players")
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Rows) != 3 {
		t.Fatalf("rows: %d", len(lt.Rows))
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if !value.Identical(tab.Rows[i][j], lt.Rows[i][j]) {
				t.Errorf("row %d col %d: %v vs %v", i, j, tab.Rows[i][j], lt.Rows[i][j])
			}
		}
	}
	if !lt.Positive["avg"] {
		t.Error("positive flag lost")
	}
	if len(lt.PrimaryKey) != 1 || lt.PrimaryKey[0] != "id" {
		t.Errorf("primary key lost: %v", lt.PrimaryKey)
	}
	if !lt.FDs.Implies([]string{"name"}, []string{"avg"}) {
		t.Error("declared FD lost")
	}
	if lt.FindIndex("avg") == nil {
		t.Error("index lost")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("missing manifest must fail")
	}
}
