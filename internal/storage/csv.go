package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smarticeberg/internal/value"
)

// LoadCSV bulk-loads rows from CSV into the table. When header is true the
// first record names the columns (any order, case-insensitive, extra file
// columns rejected); otherwise records must match the schema order. Fields
// are coerced to the column types; empty fields become NULL.
func (t *Table) LoadCSV(r io.Reader, header bool) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.TrimLeadingSpace = true

	colIdx := make([]int, len(t.Schema))
	for i := range colIdx {
		colIdx[i] = i
	}
	first := true
	loaded := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, err
		}
		if first && header {
			first = false
			if len(rec) != len(t.Schema) {
				return 0, fmt.Errorf("csv header has %d columns, table %s has %d", len(rec), t.Name, len(t.Schema))
			}
			for i, name := range rec {
				j, err := t.ColumnIndex(strings.TrimSpace(name))
				if err != nil {
					return 0, err
				}
				colIdx[i] = j
			}
			continue
		}
		first = false
		if len(rec) != len(t.Schema) {
			return loaded, fmt.Errorf("csv record %d has %d fields, want %d", loaded+1, len(rec), len(t.Schema))
		}
		row := make(value.Row, len(t.Schema))
		for i, field := range rec {
			v, err := parseCSVField(field, t.Schema[colIdx[i]].Type)
			if err != nil {
				return loaded, fmt.Errorf("csv record %d, column %s: %w", loaded+1, t.Schema[colIdx[i]].Name, err)
			}
			row[colIdx[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return loaded, err
		}
		loaded++
	}
}

func parseCSVField(field string, kind value.Kind) (value.Value, error) {
	if field == "" {
		return value.NullValue, nil
	}
	switch kind {
	case value.Int:
		i, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return value.NullValue, err
		}
		return value.NewInt(i), nil
	case value.Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return value.NullValue, err
		}
		return value.NewFloat(f), nil
	case value.Bool:
		b, err := strconv.ParseBool(strings.TrimSpace(field))
		if err != nil {
			return value.NullValue, err
		}
		return value.NewBool(b), nil
	default:
		return value.NewStr(field), nil
	}
}

// WriteCSV writes the table (or any schema+rows pair via WriteRowsCSV) with
// a header line.
func (t *Table) WriteCSV(w io.Writer) error {
	return WriteRowsCSV(w, t.Schema, t.Rows)
}

// WriteRowsCSV writes rows with a header derived from the schema. NULLs
// become empty fields.
func WriteRowsCSV(w io.Writer, schema value.Schema, rows []value.Row) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(schema))
	for i, c := range schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(schema))
	for _, row := range rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
