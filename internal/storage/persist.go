package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"smarticeberg/internal/fd"
	"smarticeberg/internal/value"
)

// The on-disk layout of a saved catalog is one directory holding a
// `catalog.json` manifest (schemas and constraints) plus one CSV file per
// table. It is deliberately human-readable: rows can be inspected or edited
// with ordinary tools and re-loaded.

// manifest is the serialized catalog metadata.
type manifest struct {
	Tables []tableMeta `json:"tables"`
}

type tableMeta struct {
	Name       string      `json:"name"`
	Columns    []columnDef `json:"columns"`
	PrimaryKey []string    `json:"primary_key,omitempty"`
	FDs        []fdDef     `json:"fds,omitempty"`
	Positive   []string    `json:"positive,omitempty"`
	Indexes    []indexDef  `json:"indexes,omitempty"`
	File       string      `json:"file"`
}

type columnDef struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type fdDef struct {
	From []string `json:"from"`
	To   []string `json:"to"`
}

type indexDef struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
}

func kindName(k value.Kind) string {
	switch k {
	case value.Int:
		return "bigint"
	case value.Float:
		return "double"
	case value.Str:
		return "text"
	case value.Bool:
		return "boolean"
	}
	return "text"
}

func kindFromName(s string) (value.Kind, error) {
	switch strings.ToLower(s) {
	case "bigint", "int", "integer":
		return value.Int, nil
	case "double", "float", "real":
		return value.Float, nil
	case "text", "varchar", "string":
		return value.Str, nil
	case "boolean", "bool":
		return value.Bool, nil
	}
	return value.Null, fmt.Errorf("unknown column type %q", s)
}

// SaveDir writes the catalog to a directory (created if needed):
// catalog.json plus one CSV per table.
func (c *Catalog) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var m manifest
	for _, name := range c.Names() {
		t, err := c.Get(name)
		if err != nil {
			return err
		}
		meta := tableMeta{
			Name:       t.Name,
			PrimaryKey: t.PrimaryKey,
			File:       strings.ToLower(t.Name) + ".csv",
		}
		for _, col := range t.Schema {
			meta.Columns = append(meta.Columns, columnDef{Name: col.Name, Type: kindName(col.Type)})
		}
		for _, dep := range t.FDs.All() {
			meta.FDs = append(meta.FDs, fdDef{From: dep.From, To: dep.To})
		}
		for col, pos := range t.Positive {
			if pos {
				meta.Positive = append(meta.Positive, col)
			}
		}
		for _, idx := range t.Indexes() {
			meta.Indexes = append(meta.Indexes, indexDef{Name: idx.Name, Columns: idx.Columns})
		}
		f, err := os.Create(filepath.Join(dir, meta.File))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		m.Tables = append(m.Tables, meta)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "catalog.json"), data, 0o644)
}

// LoadDir reads a catalog saved by SaveDir.
func LoadDir(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parsing catalog.json: %w", err)
	}
	cat := NewCatalog()
	for _, meta := range m.Tables {
		cols := make([]value.Column, len(meta.Columns))
		for i, cd := range meta.Columns {
			k, err := kindFromName(cd.Type)
			if err != nil {
				return nil, fmt.Errorf("table %s: %w", meta.Name, err)
			}
			cols[i] = value.Column{Name: cd.Name, Type: k}
		}
		t := NewTable(meta.Name, cols, meta.PrimaryKey)
		for _, dep := range meta.FDs {
			t.FDs.Add(fd.FD{From: dep.From, To: dep.To})
		}
		for _, col := range meta.Positive {
			t.Positive[strings.ToLower(col)] = true
		}
		f, err := os.Open(filepath.Join(dir, meta.File))
		if err != nil {
			return nil, err
		}
		if _, err := t.LoadCSV(f, true); err != nil {
			f.Close()
			return nil, fmt.Errorf("loading %s: %w", meta.File, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		for _, idx := range meta.Indexes {
			if _, err := t.CreateIndex(idx.Name, idx.Columns...); err != nil {
				return nil, fmt.Errorf("rebuilding index %s on %s: %w", idx.Name, meta.Name, err)
			}
		}
		cat.Put(t)
	}
	return cat, nil
}
