package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smarticeberg/internal/value"
)

func numTable(t *testing.T, vals []int64) *Table {
	if t != nil {
		t.Helper()
	}
	tab := NewTable("t", []value.Column{
		{Name: "id", Type: value.Int},
		{Name: "v", Type: value.Int},
	}, []string{"id"})
	for i, v := range vals {
		if err := tab.Insert(value.Row{value.NewInt(int64(i)), value.NewInt(v)}); err != nil {
			panic(err)
		}
	}
	return tab
}

func TestInsertArity(t *testing.T) {
	tab := numTable(t, nil)
	if err := tab.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("short row must fail")
	}
	if err := tab.InsertAll([]value.Row{{value.NewInt(1), value.NewInt(2)}}); err != nil {
		t.Error(err)
	}
}

func TestColumnIndexAndNames(t *testing.T) {
	tab := numTable(t, nil)
	if i, err := tab.ColumnIndex("V"); err != nil || i != 1 {
		t.Errorf("case-insensitive lookup: %d %v", i, err)
	}
	if _, err := tab.ColumnIndex("nope"); err == nil {
		t.Error("missing column must fail")
	}
	names := tab.ColumnNames()
	if len(names) != 2 || names[0] != "id" {
		t.Errorf("names: %v", names)
	}
}

func TestPrimaryKeyFD(t *testing.T) {
	tab := numTable(t, nil)
	if !tab.FDs.Implies([]string{"id"}, []string{"v"}) {
		t.Error("primary key FD missing")
	}
}

// TestIndexRangeScan compares index range scans against brute-force
// filtering over random data, for all bound combinations.
func TestIndexRangeScan(t *testing.T) {
	err := quick.Check(func(seed int64, loRaw, hiRaw int8, loStrict, hiStrict, noLo, noHi bool) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, 40)
		for i := range vals {
			vals[i] = int64(rng.Intn(20) - 10)
		}
		tab := numTable(nil, vals)
		idx, err := tab.CreateIndex("v_idx", "v")
		if err != nil {
			return false
		}
		var lo, hi *value.Value
		loV := value.NewInt(int64(loRaw % 12))
		hiV := value.NewInt(int64(hiRaw % 12))
		if !noLo {
			lo = &loV
		}
		if !noHi {
			hi = &hiV
		}
		got := map[int32]bool{}
		for _, p := range idx.RangeScan(lo, loStrict, hi, hiStrict) {
			got[p] = true
		}
		for i, v := range vals {
			in := true
			if lo != nil {
				if loStrict && v <= lo.I {
					in = false
				}
				if !loStrict && v < lo.I {
					in = false
				}
			}
			if hi != nil {
				if hiStrict && v >= hi.I {
					in = false
				}
				if !hiStrict && v > hi.I {
					in = false
				}
			}
			if in != got[int32(i)] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestIndexRefreshAfterInsert(t *testing.T) {
	tab := numTable(t, []int64{5, 1, 3})
	idx, err := tab.CreateIndex("v_idx", "v")
	if err != nil {
		t.Fatal(err)
	}
	lo := value.NewInt(4)
	if got := idx.RangeScan(&lo, false, nil, false); len(got) != 1 {
		t.Fatalf("before insert: %v", got)
	}
	if err := tab.Insert(value.Row{value.NewInt(3), value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	if got := idx.RangeScan(&lo, false, nil, false); len(got) != 2 {
		t.Fatalf("index must refresh after insert: %v", got)
	}
}

func TestFindIndexAndDrop(t *testing.T) {
	tab := numTable(t, []int64{1})
	if _, err := tab.CreateIndex("v_idx", "v"); err != nil {
		t.Fatal(err)
	}
	if tab.FindIndex("V") == nil {
		t.Error("FindIndex should be case-insensitive")
	}
	if tab.FindIndex("id") != nil {
		t.Error("no index on id")
	}
	tab.DropIndexes()
	if len(tab.Indexes()) != 0 {
		t.Error("DropIndexes failed")
	}
	if _, err := tab.CreateIndex("bad", "nope"); err == nil {
		t.Error("index on missing column must fail")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Put(numTable(t, nil))
	if _, err := c.Get("T"); err != nil {
		t.Error("catalog lookup should be case-insensitive")
	}
	if _, err := c.Get("missing"); err == nil {
		t.Error("missing table must fail")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "t" {
		t.Errorf("names: %v", names)
	}
}
